package des

import (
	"testing"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(3, func() { order = append(order, 3) })
	s.Schedule(1, func() { order = append(order, 1) })
	s.Schedule(2, func() { order = append(order, 2) })
	if n := s.Run(); n != 3 {
		t.Fatalf("ran %d events", n)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 3 {
		t.Fatalf("clock = %v, want 3", s.Now())
	}
}

func TestTiesBreakFIFO(t *testing.T) {
	s := New()
	var order []string
	s.Schedule(1, func() { order = append(order, "a") })
	s.Schedule(1, func() { order = append(order, "b") })
	s.Schedule(1, func() { order = append(order, "c") })
	s.Run()
	if order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("tie order = %v", order)
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var times []float64
	s.Schedule(1, func() {
		times = append(times, s.Now())
		s.Schedule(2, func() { times = append(times, s.Now()) })
	})
	s.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Fatalf("times = %v", times)
	}
}

func TestZeroDelaySelfLoopTerminatesViaRunUntil(t *testing.T) {
	s := New()
	count := 0
	var tick func()
	tick = func() {
		count++
		s.Schedule(0.5, tick)
	}
	s.Schedule(0, tick)
	s.RunUntil(10)
	// Events at t = 0, 0.5, ..., 10: 21 executions.
	if count != 21 {
		t.Fatalf("count = %d, want 21", count)
	}
	if s.Now() != 10 {
		t.Fatalf("clock = %v", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want the one event beyond the horizon", s.Pending())
	}
}

func TestRunUntilAdvancesClockWithoutEvents(t *testing.T) {
	s := New()
	s.RunUntil(5)
	if s.Now() != 5 {
		t.Fatalf("clock = %v", s.Now())
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Schedule(-1, func() {})
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.Schedule(5, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.At(1, func() {})
}

func TestStepOnEmpty(t *testing.T) {
	s := New()
	if s.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestManyEventsStaySorted(t *testing.T) {
	s := New()
	// Schedule in a scrambled deterministic order.
	prev := -1.0
	n := 0
	for i := 0; i < 1000; i++ {
		tm := float64((i*7919)%1000) / 10
		s.At(tm, func() {
			if s.Now() < prev {
				t.Errorf("time went backwards: %v after %v", s.Now(), prev)
			}
			prev = s.Now()
			n++
		})
	}
	s.Run()
	if n != 1000 {
		t.Fatalf("ran %d events", n)
	}
}
