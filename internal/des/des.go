// Package des is a minimal deterministic discrete-event simulator: a
// virtual clock and a time-ordered event queue with FIFO tie-breaking.
// The distributed neural runtime uses it to model per-neuron computation
// latencies for the boosting scheme of Corollary 2 without real sleeps,
// so experiments measuring "waiting time" run in microseconds and are
// exactly reproducible.
package des

import (
	"container/heap"
	"fmt"
)

// event is one scheduled action.
type event struct {
	time   float64
	seq    int64 // insertion order breaks time ties deterministically
	action func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Sim is a single-threaded discrete-event simulation. The zero value is
// ready to use.
type Sim struct {
	now   float64
	seq   int64
	queue eventHeap
}

// New returns an empty simulation at time 0.
func New() *Sim { return &Sim{} }

// Now returns the current virtual time.
func (s *Sim) Now() float64 { return s.now }

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return len(s.queue) }

// Schedule queues action to run delay units after the current time.
// Negative delays panic: the simulator never travels backwards.
func (s *Sim) Schedule(delay float64, action func()) {
	if delay < 0 {
		panic(fmt.Sprintf("des: negative delay %v", delay))
	}
	s.At(s.now+delay, action)
}

// At queues action at the absolute virtual time t >= Now().
func (s *Sim) At(t float64, action func()) {
	if t < s.now {
		panic(fmt.Sprintf("des: scheduling at %v before now %v", t, s.now))
	}
	s.seq++
	heap.Push(&s.queue, &event{time: t, seq: s.seq, action: action})
}

// Step executes the earliest event. It returns false when the queue is
// empty.
func (s *Sim) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*event)
	s.now = e.time
	e.action()
	return true
}

// Run executes events until the queue drains and returns how many ran.
func (s *Sim) Run() int {
	n := 0
	for s.Step() {
		n++
	}
	return n
}

// RunUntil executes events with time <= t and returns how many ran. The
// clock is advanced to t even if fewer events existed.
func (s *Sim) RunUntil(t float64) int {
	n := 0
	for len(s.queue) > 0 && s.queue[0].time <= t {
		s.Step()
		n++
	}
	if s.now < t {
		s.now = t
	}
	return n
}
