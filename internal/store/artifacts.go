package store

import (
	"fmt"
	"sort"

	"repro/internal/conv"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/quant"
)

// PutNetwork stores a trained network (kind "network"). Networks
// serialise through nn.Network's JSON codec, whose float64 encoding
// round-trips exactly: a loaded network's forward outputs are
// bit-identical to the saved one's.
func (s *Store) PutNetwork(net *nn.Network, meta map[string]string) (Entry, error) {
	if err := net.Validate(); err != nil {
		return Entry{}, err
	}
	return s.Put(KindNetwork, net, meta)
}

// Network loads a stored network by ID or unique prefix.
func (s *Store) Network(ref string) (*nn.Network, Entry, error) {
	var net nn.Network
	e, err := s.Get(ref, &net)
	if err != nil {
		return nil, Entry{}, err
	}
	if e.Kind != KindNetwork {
		return nil, Entry{}, fmt.Errorf("store: artifact %s is a %q, not a network", shortID(e.ID), e.Kind)
	}
	return &net, e, nil
}

// PutModel stores any nn.Model under its architecture's kind: dense
// networks as "network", conv nets as "conv", sparse-DAG graphs as
// "graph" — conv and graph documents carry their architecture tag
// ("arch": conv1d/conv2d/graph). Every codec round-trips float64
// exactly, so a loaded model's forward outputs are bit-identical to
// the saved one's. The returned entry's meta carries the architecture
// tag.
func (s *Store) PutModel(m nn.Model, meta map[string]string) (Entry, error) {
	if err := m.Validate(); err != nil {
		return Entry{}, err
	}
	if net, ok := m.(*nn.Network); ok {
		return s.PutNetwork(net, meta)
	}
	kind := ""
	switch m.(type) {
	case *conv.Net, *conv.Net2D:
		kind = KindConv
	case *graph.Net:
		kind = KindGraph
	default:
		return Entry{}, fmt.Errorf("store: unsupported model type %T", m)
	}
	withArch := make(map[string]string, len(meta)+1)
	for k, v := range meta {
		withArch[k] = v
	}
	// Written last: the tag must reflect the document, never a
	// caller-supplied override.
	withArch["arch"] = conv.ArchOf(m)
	return s.Put(kind, m, withArch)
}

// Model loads a stored model (kind "network", "conv" or "graph") by ID
// or unique prefix, dispatching on the document's architecture tag.
func (s *Store) Model(ref string) (nn.Model, Entry, error) {
	data, e, err := s.Raw(ref)
	if err != nil {
		return nil, Entry{}, err
	}
	if e.Kind != KindNetwork && e.Kind != KindConv && e.Kind != KindGraph {
		return nil, Entry{}, fmt.Errorf("store: artifact %s is a %q, not a model", shortID(e.ID), e.Kind)
	}
	m, err := conv.ParseModel(data)
	if err != nil {
		return nil, Entry{}, fmt.Errorf("store: artifact %s: %w", shortID(e.ID), err)
	}
	return m, e, nil
}

// Models lists every stored model entry — dense networks, conv nets
// and graphs — oldest first with ID as the tiebreak (List's order).
func (s *Store) Models() []Entry {
	out := s.List(KindNetwork)
	out = append(out, s.List(KindConv)...)
	out = append(out, s.List(KindGraph)...)
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Created.Equal(out[j].Created) {
			return out[i].Created.Before(out[j].Created)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// QuantRecipe is the stored form of a quantised model: the content
// address of the full-precision network plus the fixed-point format.
// Quantisation is deterministic, so the recipe reconstructs the
// quantised weights (and the Theorem 5 certificate) exactly — the store
// never duplicates the parameter payload.
type QuantRecipe struct {
	NetworkID string        `json:"network_id"`
	Options   quant.Options `json:"options"`
}

// PutQuantized stores a quantised-model recipe (kind "quantized")
// referencing a stored network. The recipe is validated by running the
// quantisation once.
func (s *Store) PutQuantized(netRef string, opts quant.Options, meta map[string]string) (Entry, error) {
	net, netEntry, err := s.Network(netRef)
	if err != nil {
		return Entry{}, err
	}
	if _, err := quant.Quantize(net, opts); err != nil {
		return Entry{}, err
	}
	return s.Put(KindQuantized, QuantRecipe{NetworkID: netEntry.ID, Options: opts}, meta)
}

// Quantized reconstructs a stored quantised model by ID or unique
// prefix.
func (s *Store) Quantized(ref string) (*quant.Quantized, Entry, error) {
	e, err := s.Resolve(ref)
	if err != nil {
		return nil, Entry{}, err
	}
	if e.Kind != KindQuantized {
		return nil, Entry{}, fmt.Errorf("store: artifact %s is a %q, not a quantized model", shortID(e.ID), e.Kind)
	}
	var r QuantRecipe
	if _, err := s.Get(e.ID, &r); err != nil {
		return nil, Entry{}, err
	}
	net, _, err := s.Network(r.NetworkID)
	if err != nil {
		return nil, Entry{}, fmt.Errorf("store: quantized %s: %w", shortID(e.ID), err)
	}
	q, err := quant.Quantize(net, r.Options)
	if err != nil {
		return nil, Entry{}, err
	}
	return q, e, nil
}

// shortID abbreviates an ID for error messages and listings.
func shortID(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}

// ShortID abbreviates a content address for human-readable listings.
func ShortID(id string) string { return shortID(id) }
