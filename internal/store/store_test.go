package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/activation"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/rng"
)

func testNet(seed uint64) *nn.Network {
	return nn.NewRandom(rng.New(seed), nn.Config{
		InputDim: 2,
		Widths:   []int{12, 8},
		Act:      activation.NewSigmoid(1),
		Bias:     true,
	}, 1.5)
}

// TestNetworkRoundTripBitIdentical is the store's core contract: a
// loaded network computes bit-for-bit what the saved one computes.
func TestNetworkRoundTripBitIdentical(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	net := testNet(1)
	e, err := s.PutNetwork(net, map[string]string{"target": "random"})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.ID) != 64 {
		t.Fatalf("id %q is not a sha256 hex digest", e.ID)
	}
	loaded, _, err := s.Network(e.ID)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range metrics.Grid(2, 17) {
		if got, want := loaded.Forward(x), net.Forward(x); got != want {
			t.Fatalf("Forward(%v) = %v after round trip, want exactly %v", x, got, want)
		}
	}
}

// TestContentAddressing pins dedup and determinism: the same content
// stores to the same ID, different content to a different one.
func TestContentAddressing(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.PutNetwork(testNet(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	again, err := s.PutNetwork(testNet(1), map[string]string{"label": "dup"})
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != a.ID {
		t.Fatalf("identical networks stored under %s and %s", a.ID, again.ID)
	}
	b, err := s.PutNetwork(testNet(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if b.ID == a.ID {
		t.Fatal("different networks collided")
	}
	if n := len(s.List(KindNetwork)); n != 2 {
		t.Fatalf("listed %d networks, want 2", n)
	}
}

func TestResolvePrefix(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e, err := s.PutNetwork(testNet(3), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Resolve(e.ID[:12])
	if err != nil || got.ID != e.ID {
		t.Fatalf("Resolve(prefix) = %v, %v", got.ID, err)
	}
	if _, err := s.Resolve("abcd"); err == nil || !strings.Contains(err.Error(), "too short") {
		t.Fatalf("short ref error = %v", err)
	}
	if _, err := s.Resolve("ffffffffffff"); err == nil {
		t.Fatal("unknown ref did not error")
	}
}

// TestReopenSeesManifest checks persistence across Store instances.
func TestReopenSeesManifest(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e, err := s.PutNetwork(testNet(4), map[string]string{"target": "sine"})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Resolve(e.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindNetwork || got.Meta["target"] != "sine" {
		t.Fatalf("reopened entry = %+v", got)
	}
}

// TestQuantizedRecipeRoundTrip: a stored recipe reconstructs the
// quantised model exactly (deterministic quantisation), including its
// certificate.
func TestQuantizedRecipeRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	net := testNet(5)
	ne, err := s.PutNetwork(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	qe, err := s.PutQuantized(ne.ID, quant.Options{WeightBits: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	q, _, err := s.Quantized(qe.ID[:16])
	if err != nil {
		t.Fatal(err)
	}
	want, err := quant.Quantize(net, quant.Options{WeightBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	if q.Bound() != want.Bound() {
		t.Fatalf("reconstructed certificate %v != %v", q.Bound(), want.Bound())
	}
	for _, x := range metrics.Grid(2, 9) {
		if q.Forward(x) != want.Forward(x) {
			t.Fatalf("reconstructed quantised forward differs at %v", x)
		}
	}
	// Kind confusion is an error, not a silent mis-parse.
	if _, _, err := s.Network(qe.ID); err == nil {
		t.Fatal("loading a quantized recipe as a network did not error")
	}
	if _, _, err := s.Quantized(ne.ID); err == nil {
		t.Fatal("loading a network as a quantized model did not error")
	}
}

// TestCrossProcessVisibility models a CLI ingest next to a running
// server: two Store instances on one root see each other's artifacts
// without reopening, and neither clobbers the other's manifest entries.
func TestCrossProcessVisibility(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ea, err := a.PutNetwork(testNet(10), nil)
	if err != nil {
		t.Fatal(err)
	}
	// b was opened before a's Put: Resolve must fall back to disk.
	if _, err := b.Resolve(ea.ID); err != nil {
		t.Fatalf("b cannot see a's artifact: %v", err)
	}
	// b's own Put must not drop a's entry from the manifest.
	eb, err := b.PutNetwork(testNet(11), nil)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{ea.ID, eb.ID} {
		if _, err := fresh.Resolve(id); err != nil {
			t.Fatalf("manifest lost %s: %v", id[:12], err)
		}
	}
	if n := len(fresh.List(KindNetwork)); n != 2 {
		t.Fatalf("manifest lists %d networks, want 2", n)
	}
	// And a's List picks up b's artifact without reopening.
	if n := len(a.List(KindNetwork)); n != 2 {
		t.Fatalf("a lists %d networks after b's Put, want 2", n)
	}
}

// TestRebuildRecoversManifest deletes manifest.json and reconstructs it
// from the entry sidecars.
func TestRebuildRecoversManifest(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := s.PutNetwork(testNet(12), map[string]string{"target": "sine"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PutNetwork(testNet(13), nil); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "manifest.json")); err != nil {
		t.Fatal(err)
	}
	recovered, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := recovered.Rebuild()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Indexed != 2 || rep.Quarantined != 0 {
		t.Fatalf("rebuilt %+v, want 2 indexed / 0 quarantined", rep)
	}
	got, err := recovered.Resolve(e1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindNetwork || got.Meta["target"] != "sine" {
		t.Fatalf("rebuilt entry = %+v", got)
	}
	if _, _, err := recovered.Network(e1.ID); err != nil {
		t.Fatalf("rebuilt store cannot load network: %v", err)
	}
}

func TestCorruptObjectDetected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e, err := s.PutNetwork(testNet(6), nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "objects", e.ID[:2], e.ID+".json")
	if err := os.WriteFile(path, []byte(`{"tampered":true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Raw(e.ID); err == nil || !strings.Contains(err.Error(), "corrupted") {
		t.Fatalf("tampered object error = %v", err)
	}
}

func TestPutRejectsBadInput(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PutRaw("", []byte(`{}`), nil); err == nil {
		t.Fatal("empty kind accepted")
	}
	if _, err := s.PutRaw("blob", []byte(`{not json`), nil); err == nil {
		t.Fatal("invalid JSON accepted")
	}
	if _, err := s.PutNetwork(&nn.Network{}, nil); err == nil {
		t.Fatal("invalid network accepted")
	}
}
