package store_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/store"
)

// FuzzOpenManifest feeds arbitrary bytes to the store as its on-disk
// manifest. The manifest is a derived index over the object tree, so a
// corrupt one must never panic or brick the store: Open must succeed,
// self-heal by rebuilding from the objects, and keep every committed
// artifact reachable.
func FuzzOpenManifest(f *testing.F) {
	f.Add([]byte(`{"entries":[]}`))
	f.Add([]byte(`{"entries":[{"id":"deadbeef","kind":"network","bytes":12}]}`))
	f.Add([]byte(`{"entries":null}`))
	f.Add([]byte(`garbage`))
	f.Add([]byte(``))
	f.Add([]byte(`{"entries":[{"id":""}]}`))

	f.Fuzz(func(t *testing.T, manifest []byte) {
		dir := t.TempDir()

		// Commit one artifact through the real API so the object tree
		// holds ground truth the fuzzed manifest cannot invent.
		s, err := store.Open(dir)
		if err != nil {
			t.Fatalf("fresh open: %v", err)
		}
		entry, err := s.PutRaw(store.KindOutcomes, []byte(`{"kept":true}`), map[string]string{"origin": "fuzz"})
		if err != nil {
			t.Fatalf("put: %v", err)
		}

		if err := os.WriteFile(filepath.Join(dir, "manifest.json"), manifest, 0o644); err != nil {
			t.Fatalf("write manifest: %v", err)
		}
		s2, err := store.Open(dir)
		if err != nil {
			t.Fatalf("open with fuzzed manifest: %v", err)
		}
		// A manifest that fails to parse triggers the rebuild path, and
		// rebuild recovers from the object tree — the artifact must come
		// back. A manifest that parses is trusted as the index, so the
		// artifact is only guaranteed when the rebuild ran; either way
		// the lookup must fail cleanly, not panic.
		var m struct {
			Entries []json.RawMessage `json:"entries"`
		}
		rebuilt := json.Unmarshal(manifest, &m) != nil
		data, _, err := s2.Raw(entry.ID)
		if rebuilt && err != nil {
			t.Fatalf("artifact lost after manifest rebuild: %v", err)
		}
		if err == nil && string(data) != `{"kept":true}` {
			t.Fatalf("artifact bytes corrupted: %q", data)
		}
		s2.List("")
	})
}
