// Package store is a content-addressed JSON artifact store: every
// artifact (trained network, quantised model recipe, experiment outcome
// set) is serialised to canonical JSON, addressed by the sha256 of those
// bytes, and indexed in a human-readable manifest. Content addressing
// makes campaigns resumable and comparable — saving the same network
// twice yields the same ID, and an ID retrieved from a report always
// names exactly the bytes that produced it.
//
// Layout under the root directory:
//
//	<root>/manifest.json                — the index: one Entry per artifact
//	<root>/objects/<aa>/<id>.json       — the artifact bytes (aa = id[:2])
//	<root>/objects/<aa>/<id>.entry.json — the artifact's Entry (sidecar)
//
// Object files are immutable once written (writes go through a
// temp-file + rename, so readers never observe partial objects) and are
// plain JSON, inspectable with jq. The manifest is rewritten atomically
// on every Put after merging the on-disk index, and Resolve falls back
// to re-reading it on a miss, so artifacts added by another process
// (a CLI ingest next to a running server) become visible without a
// restart. Each object also carries its Entry as a sidecar — the
// manifest is a derived index, and Rebuild reconstructs it from the
// object tree if it is ever lost or clobbered.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Kinds used by the typed helpers. Put accepts any non-empty kind.
const (
	KindNetwork   = "network"
	KindConv      = "conv"
	KindGraph     = "graph"
	KindQuantized = "quantized"
	KindOutcomes  = "outcomes"
)

// Entry is one manifest record: the addressable identity of an artifact.
type Entry struct {
	// ID is the lowercase hex sha256 of the artifact bytes.
	ID string `json:"id"`
	// Kind classifies the artifact (network, quantized, outcomes, ...).
	Kind string `json:"kind"`
	// Created is the wall-clock time of the first Put.
	Created time.Time `json:"created"`
	// Bytes is the serialised size.
	Bytes int `json:"bytes"`
	// Meta carries free-form labels (target, widths, campaign name, ...).
	Meta map[string]string `json:"meta,omitempty"`
}

// manifest is the serialised index.
type manifest struct {
	Entries []Entry `json:"entries"`
}

// Store is an artifact store rooted at one directory. Methods are safe
// for concurrent use by multiple goroutines.
type Store struct {
	root string

	mu      sync.RWMutex
	entries map[string]Entry
}

// Open opens (creating if needed) the store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty root directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{root: dir, entries: map[string]Entry{}}
	data, err := os.ReadFile(s.manifestPath())
	switch {
	case os.IsNotExist(err):
		// Fresh store — unless the object tree already holds artifacts,
		// in which case the index was lost: self-heal by rebuilding it
		// from the objects instead of serving an empty store.
		if s.hasObjects() {
			if _, err := s.Rebuild(); err != nil {
				return nil, err
			}
		}
	case err != nil:
		return nil, fmt.Errorf("store: %w", err)
	default:
		var m manifest
		if err := json.Unmarshal(data, &m); err != nil {
			// A corrupt manifest is recoverable state, not a fatal error:
			// the object tree is the source of truth, the manifest only a
			// derived index. Rebuild it, quarantining unreadable objects.
			if _, err := s.Rebuild(); err != nil {
				return nil, fmt.Errorf("store: manifest corrupt and rebuild failed: %w", err)
			}
			return s, nil
		}
		for _, e := range m.Entries {
			s.entries[e.ID] = e
		}
	}
	return s, nil
}

// hasObjects reports whether the object tree holds at least one
// artifact file.
func (s *Store) hasObjects() bool {
	matches, err := filepath.Glob(filepath.Join(s.root, "objects", "*", "*.json"))
	return err == nil && len(matches) > 0
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

func (s *Store) manifestPath() string { return filepath.Join(s.root, "manifest.json") }

func (s *Store) objectPath(id string) string {
	return filepath.Join(s.root, "objects", id[:2], id+".json")
}

func (s *Store) entryPath(id string) string {
	return filepath.Join(s.root, "objects", id[:2], id+".entry.json")
}

// ID returns the content address of the given artifact bytes.
func ID(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Put serialises v as JSON and stores it under its content address.
// Storing identical content twice is a no-op returning the original
// entry (the first meta wins — the ID names the bytes, not the labels).
func (s *Store) Put(kind string, v any, meta map[string]string) (Entry, error) {
	data, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		return Entry{}, fmt.Errorf("store: %w", err)
	}
	return s.PutRaw(kind, data, meta)
}

// PutRaw stores pre-serialised JSON bytes under their content address.
func (s *Store) PutRaw(kind string, data []byte, meta map[string]string) (Entry, error) {
	if kind == "" {
		return Entry{}, fmt.Errorf("store: empty artifact kind")
	}
	if !json.Valid(data) {
		return Entry{}, fmt.Errorf("store: artifact is not valid JSON")
	}
	id := ID(data)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[id]; ok {
		return e, nil
	}
	// Another process may have both stored this artifact and extended
	// the manifest since we last read it: merge before deciding and
	// before rewriting, so concurrent stores do not drop each other's
	// entries.
	if err := s.mergeManifestLocked(); err != nil {
		return Entry{}, err
	}
	if e, ok := s.entries[id]; ok {
		return e, nil
	}
	path := s.objectPath(id)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return Entry{}, fmt.Errorf("store: %w", err)
	}
	if err := atomicWrite(path, data); err != nil {
		return Entry{}, fmt.Errorf("store: %w", err)
	}
	e := Entry{ID: id, Kind: kind, Created: time.Now().UTC().Truncate(time.Second), Bytes: len(data), Meta: meta}
	sidecar, err := json.MarshalIndent(e, "", " ")
	if err != nil {
		return Entry{}, fmt.Errorf("store: %w", err)
	}
	if err := atomicWrite(s.entryPath(id), sidecar); err != nil {
		return Entry{}, fmt.Errorf("store: %w", err)
	}
	s.entries[id] = e
	if err := s.writeManifestLocked(); err != nil {
		return Entry{}, err
	}
	return e, nil
}

// Resolve returns the entry for an ID or a unique ID prefix (at least 6
// hex characters). Unknown and ambiguous references are errors. A miss
// re-reads the on-disk manifest first, so artifacts stored by another
// process resolve without reopening the store.
func (s *Store) Resolve(ref string) (Entry, error) {
	ref = strings.ToLower(strings.TrimSpace(ref))
	if len(ref) < 6 {
		return Entry{}, fmt.Errorf("store: id %q too short (need >= 6 hex chars)", ref)
	}
	s.mu.RLock()
	e, err := s.resolveLocked(ref)
	s.mu.RUnlock()
	if err == nil {
		return e, nil
	}
	// The miss may just be staleness: merge the on-disk manifest and
	// retry once.
	s.mu.Lock()
	defer s.mu.Unlock()
	if mergeErr := s.mergeManifestLocked(); mergeErr != nil {
		return Entry{}, mergeErr
	}
	return s.resolveLocked(ref)
}

// resolveLocked resolves an exact ID or unique prefix; s.mu must be
// held (read or write).
func (s *Store) resolveLocked(ref string) (Entry, error) {
	if e, ok := s.entries[ref]; ok {
		return e, nil
	}
	var found []Entry
	for id, e := range s.entries {
		if strings.HasPrefix(id, ref) {
			found = append(found, e)
		}
	}
	switch len(found) {
	case 0:
		return Entry{}, fmt.Errorf("store: no artifact with id %q", ref)
	case 1:
		return found[0], nil
	default:
		return Entry{}, fmt.Errorf("store: id prefix %q is ambiguous (%d matches)", ref, len(found))
	}
}

// mergeManifestLocked folds the on-disk manifest into the in-memory
// index (in-memory entries win on conflict — both name the same
// immutable bytes); s.mu must be held for writing.
func (s *Store) mergeManifestLocked() error {
	data, err := os.ReadFile(s.manifestPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("store: parsing %s: %w", s.manifestPath(), err)
	}
	for _, e := range m.Entries {
		if _, ok := s.entries[e.ID]; !ok {
			s.entries[e.ID] = e
		}
	}
	return nil
}

// RebuildReport summarises a manifest reconstruction.
type RebuildReport struct {
	// Indexed counts the artifacts recovered into the new manifest.
	Indexed int
	// Quarantined counts unreadable objects moved aside (bad JSON, or
	// content that no longer hashes to its filename).
	Quarantined int
}

// Rebuild reconstructs the index by scanning the object tree and
// rewrites the manifest — the recovery path for a lost or damaged
// manifest.json (Open takes it automatically). The objects themselves
// are the source of truth: every readable object whose content still
// hashes to its filename is re-indexed (its entry sidecar supplies
// kind/meta when readable, and is re-synthesised otherwise), while
// unreadable or corrupted objects are quarantined under
// <root>/quarantine/ instead of failing the whole store open.
func (s *Store) Rebuild() (RebuildReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var rep RebuildReport
	objects, err := filepath.Glob(filepath.Join(s.root, "objects", "*", "*.json"))
	if err != nil {
		return rep, fmt.Errorf("store: %w", err)
	}
	entries := map[string]Entry{}
	for _, path := range objects {
		name := filepath.Base(path)
		if strings.HasSuffix(name, ".entry.json") {
			continue // sidecars are handled with their object
		}
		id := strings.TrimSuffix(name, ".json")
		data, err := os.ReadFile(path)
		if err != nil || !json.Valid(data) || ID(data) != id {
			// The object cannot back its own address: quarantine it (and
			// its sidecar) rather than indexing bytes Raw would reject.
			rep.Quarantined++
			s.quarantineFiles(path, s.entryPath(id))
			continue
		}
		e, ok := readSidecar(s.entryPath(id), id)
		if !ok {
			// Lost sidecar: synthesise an entry from the object itself so
			// the artifact stays reachable, and rewrite the sidecar.
			info, statErr := os.Stat(path)
			created := time.Now().UTC().Truncate(time.Second)
			if statErr == nil {
				created = info.ModTime().UTC().Truncate(time.Second)
			}
			e = Entry{ID: id, Kind: sniffKind(data), Created: created, Bytes: len(data),
				Meta: map[string]string{"recovered": "rebuild"}}
			if sidecar, err := json.MarshalIndent(e, "", " "); err == nil {
				_ = atomicWrite(s.entryPath(id), sidecar)
			}
		}
		entries[id] = e
	}
	s.entries = entries
	rep.Indexed = len(entries)
	if err := s.writeManifestLocked(); err != nil {
		return rep, err
	}
	return rep, nil
}

// readSidecar loads an entry sidecar, accepting it only when it names
// the object it sits next to.
func readSidecar(path, id string) (Entry, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Entry{}, false
	}
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil || e.ID != id || e.Kind == "" {
		return Entry{}, false
	}
	return e, true
}

// sniffKind classifies an artifact document whose sidecar is lost, from
// the document's own structure.
func sniffKind(data []byte) string {
	trimmed := strings.TrimLeftFunc(string(data), func(r rune) bool {
		return r == ' ' || r == '\t' || r == '\n' || r == '\r'
	})
	if strings.HasPrefix(trimmed, "[") {
		return KindOutcomes
	}
	var probe struct {
		Arch      string          `json:"arch"`
		Hidden    json.RawMessage `json:"hidden"`
		NetworkID string          `json:"network_id"`
		Options   json.RawMessage `json:"options"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return "unknown"
	}
	switch {
	case probe.Arch == "graph":
		return KindGraph
	case probe.Arch != "":
		return KindConv
	case probe.NetworkID != "" && len(probe.Options) > 0:
		return KindQuantized
	case len(probe.Hidden) > 0:
		return KindNetwork
	}
	return "unknown"
}

// quarantineFiles moves damaged files into <root>/quarantine/ (best
// effort: quarantine must never make recovery worse).
func (s *Store) quarantineFiles(paths ...string) {
	qdir := filepath.Join(s.root, "quarantine")
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return
	}
	for _, p := range paths {
		if _, err := os.Stat(p); err != nil {
			continue
		}
		_ = os.Rename(p, filepath.Join(qdir, filepath.Base(p)))
	}
}

// Raw returns the stored bytes and entry for an ID or unique prefix.
func (s *Store) Raw(ref string) ([]byte, Entry, error) {
	e, err := s.Resolve(ref)
	if err != nil {
		return nil, Entry{}, err
	}
	data, err := os.ReadFile(s.objectPath(e.ID))
	if err != nil {
		return nil, Entry{}, fmt.Errorf("store: %w", err)
	}
	if got := ID(data); got != e.ID {
		return nil, Entry{}, fmt.Errorf("store: object %s corrupted (content hashes to %s)", e.ID, got)
	}
	return data, e, nil
}

// Get unmarshals the artifact for an ID or unique prefix into v.
func (s *Store) Get(ref string, v any) (Entry, error) {
	data, e, err := s.Raw(ref)
	if err != nil {
		return Entry{}, err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return Entry{}, fmt.Errorf("store: parsing artifact %s: %w", e.ID, err)
	}
	return e, nil
}

// List returns the entries of the given kind ("" lists everything),
// oldest first with ID as the tiebreak. The on-disk manifest is merged
// first so other processes' artifacts are listed too.
func (s *Store) List(kind string) []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Best effort: a damaged manifest should not take listing down with
	// it — the in-memory index still serves.
	_ = s.mergeManifestLocked()
	out := make([]Entry, 0, len(s.entries))
	for _, e := range s.entries {
		if kind == "" || e.Kind == kind {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Created.Equal(out[j].Created) {
			return out[i].Created.Before(out[j].Created)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// writeManifestLocked rewrites the manifest atomically; s.mu must be
// held for writing.
func (s *Store) writeManifestLocked() error {
	m := manifest{Entries: make([]Entry, 0, len(s.entries))}
	for _, e := range s.entries {
		m.Entries = append(m.Entries, e)
	}
	sort.Slice(m.Entries, func(i, j int) bool {
		if !m.Entries[i].Created.Equal(m.Entries[j].Created) {
			return m.Entries[i].Created.Before(m.Entries[j].Created)
		}
		return m.Entries[i].ID < m.Entries[j].ID
	})
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := atomicWrite(s.manifestPath(), data); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// atomicWrite writes data to path via a temp file + rename so readers
// never observe a partial file.
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
