package store

import (
	"os"
	"path/filepath"
	"testing"
)

// TestOpenSelfHealsCorruptManifest injects corruption into a populated
// store — a clobbered manifest and one flipped object — and verifies
// that Open recovers instead of failing: the intact artifacts resolve,
// the damaged object is quarantined, and the rebuilt manifest persists.
func TestOpenSelfHealsCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	good, err := s.PutNetwork(testNet(21), map[string]string{"target": "sine"})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := s.PutNetwork(testNet(22), nil)
	if err != nil {
		t.Fatal(err)
	}

	// Corruption injection: truncate the manifest mid-token and flip the
	// second object's content so it no longer hashes to its name.
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte(`{"entries": [{"id`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.objectPath(bad.ID), []byte(`{"tampered": true}`), 0o644); err != nil {
		t.Fatal(err)
	}

	healed, err := Open(dir)
	if err != nil {
		t.Fatalf("Open on corrupt manifest = %v, want self-heal", err)
	}
	if _, err := healed.Resolve(good.ID); err != nil {
		t.Fatalf("healed store lost the intact artifact: %v", err)
	}
	if _, _, err := healed.Network(good.ID); err != nil {
		t.Fatalf("healed store cannot load the intact network: %v", err)
	}
	if got, err := healed.Resolve(bad.ID); err == nil {
		t.Fatalf("corrupt object still resolves: %+v", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine", bad.ID+".json")); err != nil {
		t.Fatalf("corrupt object not quarantined: %v", err)
	}
	// The healed manifest is durable: a further plain Open sees the same
	// index without another rebuild.
	again, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := again.Resolve(good.ID); err != nil {
		t.Fatalf("rebuilt manifest did not persist: %v", err)
	}
}

// TestOpenSelfHealsMissingManifest deletes the manifest outright: Open
// must rebuild it from the object tree rather than serving an empty
// store, synthesising entries for objects whose sidecars are lost too.
func TestOpenSelfHealsMissingManifest(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e, err := s.PutNetwork(testNet(23), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "manifest.json")); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(s.entryPath(e.ID)); err != nil {
		t.Fatal(err)
	}
	healed, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := healed.Resolve(e.ID)
	if err != nil {
		t.Fatalf("healed store lost the artifact: %v", err)
	}
	// The sidecar was gone: the kind comes from sniffing the document.
	if got.Kind != KindNetwork {
		t.Fatalf("synthesised entry kind = %q, want %q", got.Kind, KindNetwork)
	}
	if _, _, err := healed.Network(e.ID); err != nil {
		t.Fatalf("healed store cannot load network: %v", err)
	}
}

// TestJobRecordsRoundTrip covers the keyed mutable records backing the
// job tier: records overwrite atomically, checkpoints replace, memo
// entries are append-once.
func TestJobRecordsRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	type rec struct {
		State string `json:"state"`
		Done  int    `json:"done"`
	}
	id := "deadbeef0123"
	if ok, err := s.JobRecord(id, &rec{}); err != nil || ok {
		t.Fatalf("JobRecord on empty store = %v, %v", ok, err)
	}
	if err := s.PutJobRecord(id, rec{State: "queued"}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutJobRecord(id, rec{State: "running", Done: 3}); err != nil {
		t.Fatal(err)
	}
	var got rec
	if ok, err := s.JobRecord(id, &got); err != nil || !ok {
		t.Fatalf("JobRecord = %v, %v", ok, err)
	}
	if got.State != "running" || got.Done != 3 {
		t.Fatalf("record = %+v, want latest write", got)
	}
	ids, err := s.JobRecordIDs()
	if err != nil || len(ids) != 1 || ids[0] != id {
		t.Fatalf("JobRecordIDs = %v, %v", ids, err)
	}

	if err := s.PutJobCheckpoint(id, rec{Done: 7}); err != nil {
		t.Fatal(err)
	}
	var ck rec
	if ok, err := s.JobCheckpoint(id, &ck); err != nil || !ok || ck.Done != 7 {
		t.Fatalf("JobCheckpoint = %+v, %v, %v", ck, ok, err)
	}
	// Checkpoints must not surface as job records.
	if ids, _ := s.JobRecordIDs(); len(ids) != 1 {
		t.Fatalf("checkpoint leaked into JobRecordIDs: %v", ids)
	}
	if err := s.DeleteJobCheckpoint(id); err != nil {
		t.Fatal(err)
	}
	if ok, _ := s.JobCheckpoint(id, &ck); ok {
		t.Fatal("checkpoint survived delete")
	}
	if err := s.DeleteJobCheckpoint(id); err != nil {
		t.Fatalf("double delete = %v, want nil", err)
	}

	key, err := MemoKey(map[string]any{"kind": "montecarlo", "trials": 256})
	if err != nil {
		t.Fatal(err)
	}
	key2, _ := MemoKey(map[string]any{"kind": "montecarlo", "trials": 257})
	if key == key2 {
		t.Fatal("distinct requests share a memo key")
	}
	if ok, _ := s.Memo(key, &got); ok {
		t.Fatal("memo hit before put")
	}
	if err := s.PutMemo(key, rec{State: "done", Done: 256}); err != nil {
		t.Fatal(err)
	}
	// Append-once: a second put must not clobber the original.
	if err := s.PutMemo(key, rec{State: "clobbered"}); err != nil {
		t.Fatal(err)
	}
	var memo rec
	if ok, err := s.Memo(key, &memo); err != nil || !ok || memo.State != "done" {
		t.Fatalf("memo = %+v, %v, %v", memo, ok, err)
	}

	// Path traversal in keys is rejected, not resolved.
	if err := s.PutJobRecord("../evil", rec{}); err == nil {
		t.Fatal("PutJobRecord accepted a path-traversal key")
	}
}
