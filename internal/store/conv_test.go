package store

import (
	"strings"
	"testing"

	"repro/internal/activation"
	"repro/internal/conv"
	"repro/internal/nn"
	"repro/internal/rng"
)

func testConv1D(t *testing.T) *conv.Net {
	t.Helper()
	n, err := conv.NewRandom(rng.New(40), 10, []int{3}, []int{2}, activation.NewSigmoid(1), 0.6, true)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func testConv2D(t *testing.T) *conv.Net2D {
	t.Helper()
	n, err := conv.NewRandom2D(rng.New(41), 6, 6, []int{3}, []int{2}, activation.NewSigmoid(1), 0.5, false)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestConvModelRoundTripBitIdentical stores both conv architectures and
// requires the reloaded models' forward outputs to be bit-identical.
func TestConvModelRoundTripBitIdentical(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		model nn.Model
		dim   int
		arch  string
	}{
		{"1d", testConv1D(t), 10, conv.Arch1D},
		{"2d", testConv2D(t), 36, conv.Arch2D},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e, err := s.PutModel(tc.model, map[string]string{"source": "test"})
			if err != nil {
				t.Fatal(err)
			}
			if e.Kind != KindConv {
				t.Fatalf("kind %q, want %q", e.Kind, KindConv)
			}
			if e.Meta["arch"] != tc.arch || e.Meta["source"] != "test" {
				t.Fatalf("meta %v missing arch/source", e.Meta)
			}
			loaded, _, err := s.Model(e.ID)
			if err != nil {
				t.Fatal(err)
			}
			r := rng.New(42)
			sc := nn.NewScratch(tc.model)
			lsc := nn.NewScratch(loaded)
			for trial := 0; trial < 20; trial++ {
				x := make([]float64, tc.dim)
				r.Floats(x, 0, 1)
				a := nn.ForwardModel(tc.model, sc, x)
				b := nn.ForwardModel(loaded, lsc, x)
				if a != b {
					t.Fatalf("trial %d: stored %v != reloaded %v", trial, a, b)
				}
			}
		})
	}
}

// TestPutModelArchNotOverridable pins the meta contract: the "arch"
// tag always reflects the document, never a caller-supplied override.
func TestPutModelArchNotOverridable(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e, err := s.PutModel(testConv2D(t), map[string]string{"arch": "conv1d", "note": "kept"})
	if err != nil {
		t.Fatal(err)
	}
	if e.Meta["arch"] != conv.Arch2D {
		t.Fatalf("arch meta %q, want %q (caller override must lose)", e.Meta["arch"], conv.Arch2D)
	}
	if e.Meta["note"] != "kept" {
		t.Fatalf("other meta lost: %v", e.Meta)
	}
}

// TestModelLoadsDenseToo pins the generic loader on dense artifacts and
// the Models listing across both kinds.
func TestModelLoadsDenseToo(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	dense := nn.NewRandom(rng.New(43), nn.Config{InputDim: 3, Widths: []int{4}, Act: activation.NewSigmoid(1)}, 0.5)
	de, err := s.PutModel(dense, nil)
	if err != nil {
		t.Fatal(err)
	}
	if de.Kind != KindNetwork {
		t.Fatalf("dense stored as %q", de.Kind)
	}
	ce, err := s.PutModel(testConv1D(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := s.Model(de.ID)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.(*nn.Network); !ok {
		t.Fatalf("dense artifact loaded as %T", m)
	}
	models := s.Models()
	if len(models) != 2 {
		t.Fatalf("Models lists %d entries, want 2", len(models))
	}
	ids := map[string]bool{models[0].ID: true, models[1].ID: true}
	if !ids[de.ID] || !ids[ce.ID] {
		t.Fatalf("Models %v missing %s or %s", models, de.ID, ce.ID)
	}
	// The generic loader refuses non-model kinds.
	oe, err := s.Put(KindOutcomes, []int{1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Model(oe.ID); err == nil || !strings.Contains(err.Error(), "not a model") {
		t.Fatalf("outcomes loaded as model: %v", err)
	}
	// And the dense-only loader refuses conv artifacts.
	if _, _, err := s.Network(ce.ID); err == nil {
		t.Fatal("conv artifact loaded as dense network")
	}
}
