package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// The job tier's durable state lives next to the content-addressed
// object tree, but under different rules: job records and checkpoints
// are *mutable* documents keyed by job ID (a job's state changes as it
// runs), while the memo index is an append-only map from a request hash
// to the completed record. Layout:
//
//	<root>/jobs/<id>.json            — job record (atomic overwrite)
//	<root>/jobs/<id>.checkpoint.json — latest mid-campaign checkpoint
//	<root>/memo/<aa>/<key>.json      — memoized completion, aa = key[:2]
//
// Everything is written through the same temp-file + rename path as the
// object tree, so a crashed process never leaves a partial record: the
// restart either sees the previous state or the new one, which is
// exactly what checkpoint/resume needs.

// KindResult is the artifact kind for completed job results (the
// payloads memoized results point at).
const KindResult = "result"

// jobIDPattern guards the keyed-record filenames: job IDs and memo keys
// are hex strings, never path fragments.
var jobIDPattern = regexp.MustCompile(`^[a-f0-9]{6,64}$`)

func validKey(id string) error {
	if !jobIDPattern.MatchString(id) {
		return fmt.Errorf("store: invalid record key %q (want 6-64 lowercase hex chars)", id)
	}
	return nil
}

func (s *Store) jobPath(id string) string {
	return filepath.Join(s.root, "jobs", id+".json")
}

func (s *Store) checkpointPath(id string) string {
	return filepath.Join(s.root, "jobs", id+".checkpoint.json")
}

func (s *Store) memoPath(key string) string {
	return filepath.Join(s.root, "memo", key[:2], key+".json")
}

// MemoKey derives the content-addressed memoization key for a request:
// the sha256 of its canonical JSON serialisation. Identical robustness
// questions hash identically, so a million clients asking one question
// pay for one campaign.
func MemoKey(v any) (string, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("store: memo key: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// putKeyed atomically writes v as JSON at path, creating parents.
func putKeyed(path string, v any) error {
	data, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := atomicWrite(path, data); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// getKeyed loads the JSON document at path into v, reporting whether it
// existed.
func getKeyed(path string, v any) (bool, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("store: %w", err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return false, fmt.Errorf("store: parsing %s: %w", path, err)
	}
	return true, nil
}

// PutJobRecord persists a job record under its ID, overwriting the
// previous state atomically.
func (s *Store) PutJobRecord(id string, v any) error {
	if err := validKey(id); err != nil {
		return err
	}
	return putKeyed(s.jobPath(id), v)
}

// JobRecord loads the job record for id into v, reporting whether one
// exists.
func (s *Store) JobRecord(id string, v any) (bool, error) {
	if err := validKey(id); err != nil {
		return false, err
	}
	return getKeyed(s.jobPath(id), v)
}

// JobRecordIDs lists the IDs of every persisted job record — the
// restart-recovery scan.
func (s *Store) JobRecordIDs() ([]string, error) {
	matches, err := filepath.Glob(filepath.Join(s.root, "jobs", "*.json"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	ids := make([]string, 0, len(matches))
	for _, m := range matches {
		name := strings.TrimSuffix(filepath.Base(m), ".json")
		if strings.HasSuffix(name, ".checkpoint") {
			continue
		}
		if jobIDPattern.MatchString(name) {
			ids = append(ids, name)
		}
	}
	return ids, nil
}

// PutJobCheckpoint persists the latest mid-campaign checkpoint for a
// job, replacing any previous one. The write is atomic: a worker killed
// mid-checkpoint leaves the previous checkpoint intact.
func (s *Store) PutJobCheckpoint(id string, v any) error {
	if err := validKey(id); err != nil {
		return err
	}
	return putKeyed(s.checkpointPath(id), v)
}

// JobCheckpoint loads the latest checkpoint for a job into v, reporting
// whether one exists.
func (s *Store) JobCheckpoint(id string, v any) (bool, error) {
	if err := validKey(id); err != nil {
		return false, err
	}
	return getKeyed(s.checkpointPath(id), v)
}

// DeleteJobCheckpoint removes a job's checkpoint (on completion, the
// result artifact supersedes it). Missing checkpoints are not an error.
func (s *Store) DeleteJobCheckpoint(id string) error {
	if err := validKey(id); err != nil {
		return err
	}
	if err := os.Remove(s.checkpointPath(id)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// PutMemo records a completed computation under its request hash. The
// index is append-once: an existing memo wins (both describe the same
// deterministic computation).
func (s *Store) PutMemo(key string, v any) error {
	if err := validKey(key); err != nil {
		return err
	}
	path := s.memoPath(key)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	return putKeyed(path, v)
}

// Memo loads the memoized completion for a request hash into v,
// reporting whether one exists.
func (s *Store) Memo(key string, v any) (bool, error) {
	if err := validKey(key); err != nil {
		return false, err
	}
	return getKeyed(s.memoPath(key), v)
}
