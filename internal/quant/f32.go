package quant

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/parallel"
)

// unitRoundoff32 is u = 2^-24, the relative rounding bound of float32
// round-to-nearest.
const unitRoundoff32 = 1.0 / (1 << 24)

// Float32Lane is the single-precision inference implementation of a
// network together with its accuracy certificate. Rounding every weight
// to float32 is a (non-uniform) quantisation, so the Theorem 5 machinery
// applies unchanged: each layer's swap from float64 to float32
// arithmetic perturbs its neurons' outputs by at most λ_l, and
// core.PrecisionBound propagates the λ_l to an output bound. Unlike the
// batched float64 engine, the lane is NOT bit-identical to the oracle —
// this certificate is its correctness contract instead.
type Float32Lane struct {
	// Original is the full-precision network.
	Original *nn.Network
	// Net is the single-precision implementation.
	Net *nn.Network32
	// Lambdas[l-1] bounds the per-neuron output error introduced by
	// computing layer l in float32 (weight rounding + input rounding +
	// accumulation rounding + activation-output rounding).
	Lambdas []float64
	// OutputStageErr bounds the additional error of the float32 output
	// stage (additive, outside Theorem 5's sum — same split as Quantized).
	OutputStageErr float64
}

// gamma32 is the classic summation-error factor γ_n = n·u/(1-n·u) for
// float32: |fl(Σ a_i) - Σ a_i| <= γ_{n-1} Σ|a_i| for any evaluation
// order, which covers the lane kernels' 4-way unrolled accumulation.
func gamma32(n int) float64 {
	nu := float64(n) * unitRoundoff32
	if nu >= 1 {
		return math.Inf(1)
	}
	return nu / (1 - nu)
}

// maxRoundDelta returns the largest actual |v - float64(float32(v))|
// over the slice — the exact weight-rounding amplitude, tighter than
// the worst-case u·max|v| when the weights avoid the ulp boundary.
func maxRoundDelta(xs []float64) float64 {
	worst := 0.0
	for _, v := range xs {
		if d := math.Abs(v - float64(float32(v))); d > worst {
			worst = d
		}
	}
	return worst
}

func maxAbs(xs []float64) float64 {
	worst := 0.0
	for _, v := range xs {
		if a := math.Abs(v); a > worst {
			worst = a
		}
	}
	return worst
}

// Float32 builds the single-precision lane and its certificate.
// Like Quantize it refuses unbounded activations: the λ_l need an
// activation cap to bound the summands.
func Float32(n *nn.Network) (*Float32Lane, error) {
	if math.IsInf(n.Act.Max(), 1) || math.IsInf(n.Act.Min(), -1) {
		return nil, fmt.Errorf("quant: unbounded activation %s cannot be certified", n.Act.Name())
	}
	L := n.Layers()
	lane := &Float32Lane{
		Original: n,
		Net:      nn.NewNetwork32(n),
		Lambdas:  make([]float64, L),
	}

	actCap := math.Max(math.Abs(n.Act.Min()), math.Abs(n.Act.Max()))
	k := n.Act.Lipschitz()
	u := unitRoundoff32
	for l := 1; l <= L; l++ {
		fanIn := n.Width(l - 1)
		// Inputs to layer l: [0,1]^d for the input layer, activation
		// outputs after it.
		inCap := actCap
		if l == 1 {
			inCap = 1
		}
		deltaW := maxRoundDelta(n.Hidden[l-1].Data)
		wCap := maxAbs(n.Hidden[l-1].Data) + deltaW
		deltaB, bCap := 0.0, 0.0
		if n.Biases != nil && n.Biases[l-1] != nil {
			deltaB = maxRoundDelta(n.Biases[l-1])
			bCap = maxAbs(n.Biases[l-1]) + deltaB
		}
		// Received-sum error of one neuron, three sources:
		//   weight rounding   Σ|Δw|·|y|           <= N·δw·inCap  (+ δb)
		//   input rounding    Σ|ŵ|·|Δy|           <= N·ŵcap·u·inCap
		//   accumulation      γ_{N+1}·Σ|terms|    (any order, so the
		//                     4-way unrolled kernels are covered)
		// The K-Lipschitz activation scales the sum error; rounding the
		// activation output to float32 adds u·actCap on top.
		sumErr := float64(fanIn)*inCap*(deltaW+wCap*u) + deltaB +
			gamma32(fanIn+1)*(float64(fanIn)*wCap*inCap*(1+u)+bCap)
		lane.Lambdas[l-1] = k*sumErr + u*actCap
	}

	// Output stage: linear, no activation; inputs are layer-L
	// activations (already float32 in the lane, their rounding is
	// counted in λ_L's u·actCap term — here only the exact-input swap
	// error is needed, same hybrid split as Quantized.OutputStageErr).
	nL := n.Width(L)
	deltaV := maxRoundDelta(n.Output)
	vCap := maxAbs(n.Output) + deltaV
	deltaC := math.Abs(n.OutputBias - float64(float32(n.OutputBias)))
	cCap := math.Abs(n.OutputBias) + deltaC
	lane.OutputStageErr = float64(nL)*actCap*(deltaV+vCap*u) + deltaC +
		gamma32(nL+1)*(float64(nL)*vCap*actCap*(1+u)+cCap)
	return lane, nil
}

// Forward evaluates the single-precision lane on a float64 input
// (rounded on entry) and widens the result.
func (f *Float32Lane) Forward(x []float64) float64 { return f.Net.Forward(x) }

// Bound is the total certificate: propagated per-layer λ_l plus the
// additive output-stage error, exactly the Quantized split. Every
// admissible input satisfies |F(x) - F32(x)| <= Bound().
func (f *Float32Lane) Bound() float64 {
	return core.PrecisionBound(core.ShapeOf(f.Original), f.Lambdas) + f.OutputStageErr
}

// MeasuredError returns the empirical sup |F(x) - F32(x)| over the
// inputs, in parallel — the quantity Bound() must dominate.
func (f *Float32Lane) MeasuredError(inputs [][]float64) float64 {
	return parallel.MaxFloat64(len(inputs), func(i int) float64 {
		return math.Abs(f.Original.Forward(inputs[i]) - f.Forward(inputs[i]))
	})
}

// MemoryBits reports the lane's parameter memory: 32 bits per
// parameter, half the float64 baseline — the Proteus-style trade the
// certificate prices.
func (f *Float32Lane) MemoryBits() int {
	return f.Original.Parameters() * 32
}
