package quant

import (
	"math"
	"testing"

	"repro/internal/activation"
	"repro/internal/nn"
	"repro/internal/rng"
)

// TestFloat32LaneBoundDominates is the lane's correctness contract:
// the certified bound must dominate the measured float64-vs-float32 gap
// on every network tried — depths, widths, biases, weight scales.
func TestFloat32LaneBoundDominates(t *testing.T) {
	r := rng.New(211)
	cases := []struct {
		widths []int
		scale  float64
		bias   bool
	}{
		{[]int{8}, 0.5, false},
		{[]int{16, 16}, 1.0, true},
		{[]int{32, 24, 8}, 2.0, true},
		{[]int{5, 5, 5, 5}, 0.8, false},
	}
	for _, tc := range cases {
		net := nn.NewRandom(r, nn.Config{InputDim: 4, Widths: tc.widths, Act: activation.NewSigmoid(1), Bias: tc.bias}, tc.scale)
		lane, err := Float32(net)
		if err != nil {
			t.Fatalf("%v: %v", tc.widths, err)
		}
		bound := lane.Bound()
		if !(bound > 0) || math.IsInf(bound, 1) {
			t.Fatalf("%v: degenerate bound %v", tc.widths, bound)
		}
		inputs := make([][]float64, 200)
		for i := range inputs {
			x := make([]float64, 4)
			r.Floats(x, 0, 1)
			inputs[i] = x
		}
		measured := lane.MeasuredError(inputs)
		if measured > bound {
			t.Fatalf("%v: measured %v exceeds bound %v", tc.widths, measured, bound)
		}
		// The lane must actually be close: a certificate over a broken
		// implementation would still "dominate" if the bound were huge.
		if measured > 1e-4 {
			t.Fatalf("%v: float32 lane off by %v — implementation broken?", tc.widths, measured)
		}
		if lane.MemoryBits()*2 != FullPrecisionBits(net) {
			t.Fatalf("%v: MemoryBits %d is not half of %d", tc.widths, lane.MemoryBits(), FullPrecisionBits(net))
		}
	}
}

// TestFloat32LaneRefusesUnbounded mirrors Quantize's activation check.
func TestFloat32LaneRefusesUnbounded(t *testing.T) {
	r := rng.New(223)
	net := nn.NewRandom(r, nn.Config{InputDim: 2, Widths: []int{4}, Act: activation.ReLU{}}, 0.5)
	if _, err := Float32(net); err == nil {
		t.Fatal("expected error for unbounded activation")
	}
}

// TestFloat32LaneBatchForward pins ForwardBatch to the scalar lane.
func TestFloat32LaneBatchForward(t *testing.T) {
	r := rng.New(227)
	net := nn.NewRandom(r, nn.Config{InputDim: 3, Widths: []int{12, 6}, Act: activation.NewSigmoid(1), Bias: true}, 1.0)
	lane, err := Float32(net)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([][]float64, 17)
	for i := range inputs {
		x := make([]float64, 3)
		r.Floats(x, 0, 1)
		inputs[i] = x
	}
	got := lane.Net.ForwardBatch(inputs)
	for i, x := range inputs {
		if want := lane.Forward(x); got[i] != want {
			t.Fatalf("input %d: batch %v != scalar %v", i, got[i], want)
		}
	}
}
