// Package quant implements the memory-cost-reduction application of
// Section V-A: reduced-precision (fixed-point) implementations of a
// trained network, together with the Theorem 5 certificate bounding the
// accuracy lost. This reproduces, in simulation, the precision-
// variability experiments of Proteus [31] that the paper explains
// theoretically: per-layer quantisation induces a per-neuron output error
// λ_l, and Theorem 5 turns the λ_l into an output accuracy bound.
package quant

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/nn"
	"repro/internal/parallel"
)

// Options selects the fixed-point format.
type Options struct {
	// WeightBits is the signed fixed-point width for weights (>= 2).
	WeightBits int
	// ActBits, when positive, also quantises activations to unsigned
	// fixed point over the activation's range.
	ActBits int
	// PerLayerBits, when non-nil, overrides WeightBits with one width
	// per synapse layer (length L+1, the last entry for the output
	// synapses) — the per-layer precision variability of Proteus [31].
	PerLayerBits []int
}

// bitsFor returns the weight width for synapse layer l (1..L+1).
func (o Options) bitsFor(l int) int {
	if o.PerLayerBits != nil {
		return o.PerLayerBits[l-1]
	}
	return o.WeightBits
}

// Quantized is a reduced-precision implementation of a network.
type Quantized struct {
	// Original is the full-precision network.
	Original *nn.Network
	// Net holds the weight-quantised parameters.
	Net *nn.Network
	// Opts echoes the format.
	Opts Options
	// Lambdas[l-1] bounds the output error of every neuron of layer l
	// introduced by the quantisation (the λ_l of Theorem 5).
	Lambdas []float64
	// OutputStageErr bounds the additional error introduced by the
	// quantised output synapses (the output node is outside Theorem 5's
	// sum and enters additively).
	OutputStageErr float64
	// steps[l-1] is the weight quantisation step of layer l (1..L+1).
	steps []float64
	// actStep is the activation quantisation step (0 when disabled).
	actStep float64
	// actMin anchors activation quantisation.
	actMin float64
}

// step returns the symmetric quantiser step for the given magnitude.
func step(maxAbs float64, bits int) float64 {
	levels := float64(int64(1)<<(bits-1)) - 1 // e.g. 127 for 8 bits
	if maxAbs == 0 {
		return 0
	}
	return maxAbs / levels
}

// snap rounds v to the lattice {k·q}.
func snap(v, q float64) float64 {
	if q == 0 {
		return v
	}
	return math.Round(v/q) * q
}

// Quantize produces the fixed-point implementation and its Theorem 5
// certificate.
func Quantize(n *nn.Network, opts Options) (*Quantized, error) {
	if opts.PerLayerBits != nil {
		if len(opts.PerLayerBits) != n.Layers()+1 {
			return nil, fmt.Errorf("quant: %d per-layer widths for %d synapse layers", len(opts.PerLayerBits), n.Layers()+1)
		}
		for l, b := range opts.PerLayerBits {
			if b < 2 || b > 52 {
				return nil, fmt.Errorf("quant: layer %d bits %d outside [2, 52]", l+1, b)
			}
		}
	} else if opts.WeightBits < 2 || opts.WeightBits > 52 {
		return nil, fmt.Errorf("quant: weight bits %d outside [2, 52]", opts.WeightBits)
	}
	if opts.ActBits < 0 || opts.ActBits > 52 {
		return nil, fmt.Errorf("quant: activation bits %d outside [0, 52]", opts.ActBits)
	}
	if math.IsInf(n.Act.Max(), 1) || math.IsInf(n.Act.Min(), -1) {
		return nil, fmt.Errorf("quant: unbounded activation %s cannot be certified", n.Act.Name())
	}
	L := n.Layers()
	q := &Quantized{
		Original: n,
		Net:      n.Clone(),
		Opts:     opts,
		Lambdas:  make([]float64, L),
		steps:    make([]float64, L+1),
		actMin:   n.Act.Min(),
	}
	if opts.ActBits > 0 {
		span := n.Act.Max() - n.Act.Min()
		q.actStep = span / (math.Pow(2, float64(opts.ActBits)) - 1)
	}

	actCap := math.Max(math.Abs(n.Act.Min()), math.Abs(n.Act.Max()))
	k := n.Act.Lipschitz()
	for l := 1; l <= L+1; l++ {
		ql := step(n.MaxWeight(l), opts.bitsFor(l))
		q.steps[l-1] = ql
		if l == L+1 {
			tensorSnap(q.Net.Output, ql)
			q.Net.OutputBias = snap(q.Net.OutputBias, ql)
			// Output stage: |Σ Δv·y + Δc| <= (N_L·actCap + 1)·q/2, plus
			// the rounding of already-quantised activations feeding it
			// is counted in λ_L.
			q.OutputStageErr = (float64(n.Width(L))*actCap + 1) * ql / 2
			continue
		}
		for i := range q.Net.Hidden[l-1].Data {
			q.Net.Hidden[l-1].Data[i] = snap(q.Net.Hidden[l-1].Data[i], ql)
		}
		if q.Net.Biases != nil && q.Net.Biases[l-1] != nil {
			tensorSnap(q.Net.Biases[l-1], ql)
		}
		// Per-neuron received-sum error: N_{l-1} inputs each bounded by
		// actCap (or 1 for the input layer, which [0,1]^d guarantees),
		// each weight off by at most q/2, plus the bias; the K-Lipschitz
		// activation then scales it. Activation rounding adds its own
		// half-step after the squashing.
		inCap := actCap
		if l == 1 {
			inCap = 1
		}
		lambda := k * (float64(n.Width(l-1))*inCap + 1) * ql / 2
		if q.actStep > 0 {
			lambda += q.actStep / 2
		}
		q.Lambdas[l-1] = lambda
	}
	return q, nil
}

func tensorSnap(xs []float64, q float64) {
	for i := range xs {
		xs[i] = snap(xs[i], q)
	}
}

// Forward evaluates the reduced-precision implementation: quantised
// weights, and (when enabled) activations rounded to the fixed-point
// lattice after every layer.
func (q *Quantized) Forward(x []float64) float64 {
	if q.actStep == 0 {
		return q.Net.Forward(x)
	}
	y := x
	for l := 1; l <= q.Net.Layers(); l++ {
		s := q.Net.Hidden[l-1].MulVec(y)
		if q.Net.Biases != nil && q.Net.Biases[l-1] != nil {
			for j := range s {
				s[j] += q.Net.Biases[l-1][j]
			}
		}
		out := make([]float64, len(s))
		for j := range s {
			v := q.Net.Act.Eval(s[j])
			out[j] = q.actMin + snap(v-q.actMin, q.actStep)
		}
		y = out
	}
	sum := q.Net.OutputBias
	for i, v := range y {
		sum += q.Net.Output[i] * v
	}
	return sum
}

// Bound is the total Theorem 5 certificate: the propagated per-layer λ_l
// plus the additive output-stage error. The propagation shape is the
// original network's (the hybrid argument swaps one layer at a time and
// propagates through full-precision downstream layers).
func (q *Quantized) Bound() float64 {
	return core.PrecisionBound(core.ShapeOf(q.Original), q.Lambdas) + q.OutputStageErr
}

// MeasuredError returns the empirical sup |F(x) - F_quant(x)| over the
// inputs, in parallel.
func (q *Quantized) MeasuredError(inputs [][]float64) float64 {
	return parallel.MaxFloat64(len(inputs), func(i int) float64 {
		return math.Abs(q.Original.Forward(inputs[i]) - q.Forward(inputs[i]))
	})
}

// MemoryBits reports the parameter memory of the quantised network in
// bits, the quantity Proteus-style deployments trade against accuracy.
// With per-layer widths, each layer's parameters are counted at that
// layer's precision.
func (q *Quantized) MemoryBits() int {
	n := q.Original
	total := 0
	for l := 1; l <= n.Layers(); l++ {
		params := len(n.Hidden[l-1].Data)
		if n.Biases != nil && n.Biases[l-1] != nil {
			params += len(n.Biases[l-1])
		}
		total += params * q.Opts.bitsFor(l)
	}
	total += (len(n.Output) + 1) * q.Opts.bitsFor(n.Layers()+1)
	return total
}

// FullPrecisionBits reports the float64 baseline memory in bits.
func FullPrecisionBits(n *nn.Network) int {
	return n.Parameters() * 64
}

// BitFlipParams returns the fault-model registry parameters that
// instantiate the "bitflip" model against this fixed-point
// implementation: single-event upsets flip bit `bit` of the stored
// weight codes (bit = WeightBits-1 is the sign bit, the worst upset).
// The model's SynapseDeviation then feeds core.SynapseFep, certifying
// the upset exactly like any other registered fault model.
func (q *Quantized) BitFlipParams(bit int) fault.Params {
	return fault.Params{Net: q.Net, Bits: q.Opts.WeightBits, Bit: bit}
}

// BitFlipInjector instantiates the registry's bit-flip model on the
// quantised network (see BitFlipParams).
func (q *Quantized) BitFlipInjector(bit int) (fault.Injector, error) {
	if q.Opts.PerLayerBits != nil {
		return nil, fmt.Errorf("quant: bit-flip injection with per-layer widths is not supported")
	}
	return fault.NewInjector("bitflip", q.BitFlipParams(bit))
}
