package quant

import (
	"math"
	"testing"

	"repro/internal/activation"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/rng"
)

func testNet(r *rng.Rand, widths []int) *nn.Network {
	return nn.NewRandom(r, nn.Config{
		InputDim: 2,
		Widths:   widths,
		Act:      activation.NewSigmoid(1),
		Bias:     true,
	}, 0.8)
}

func TestQuantizeSnapsToLattice(t *testing.T) {
	r := rng.New(1)
	n := testNet(r, []int{5, 4})
	q, err := Quantize(n, Options{WeightBits: 6})
	if err != nil {
		t.Fatal(err)
	}
	for l := 1; l <= n.Layers(); l++ {
		ql := q.steps[l-1]
		if ql <= 0 {
			t.Fatalf("layer %d: non-positive step", l)
		}
		for _, w := range q.Net.Hidden[l-1].Data {
			ratio := w / ql
			if math.Abs(ratio-math.Round(ratio)) > 1e-9 {
				t.Fatalf("layer %d weight %v not on lattice %v", l, w, ql)
			}
		}
	}
}

func TestQuantizeErrorPerWeightWithinHalfStep(t *testing.T) {
	r := rng.New(2)
	n := testNet(r, []int{6})
	q, err := Quantize(n, Options{WeightBits: 5})
	if err != nil {
		t.Fatal(err)
	}
	for l := range n.Hidden {
		for i := range n.Hidden[l].Data {
			d := math.Abs(n.Hidden[l].Data[i] - q.Net.Hidden[l].Data[i])
			if d > q.steps[l]/2+1e-12 {
				t.Fatalf("weight error %v exceeds half step %v", d, q.steps[l]/2)
			}
		}
	}
}

func TestMeasuredErrorWithinBound(t *testing.T) {
	// The central Theorem 5 check: measured degradation <= certificate,
	// across architectures and bit widths, with and without activation
	// quantisation.
	r := rng.New(3)
	for trial := 0; trial < 40; trial++ {
		L := r.Intn(3) + 1
		widths := make([]int, L)
		for i := range widths {
			widths[i] = r.Intn(6) + 2
		}
		n := testNet(r, widths)
		opts := Options{WeightBits: r.Intn(10) + 3}
		if r.Bool(0.5) {
			opts.ActBits = r.Intn(8) + 4
		}
		q, err := Quantize(n, opts)
		if err != nil {
			t.Fatal(err)
		}
		inputs := metrics.RandomPoints(r, 2, 40)
		measured := q.MeasuredError(inputs)
		bound := q.Bound()
		if measured > bound*(1+1e-9)+1e-12 {
			t.Fatalf("trial %d (bits=%+v): measured %v exceeds bound %v", trial, opts, measured, bound)
		}
	}
}

func TestMoreBitsTightensBoundAndError(t *testing.T) {
	r := rng.New(4)
	n := testNet(r, []int{8, 6})
	inputs := metrics.RandomPoints(r, 2, 50)
	prevBound := math.Inf(1)
	for _, bits := range []int{4, 8, 12, 16} {
		q, err := Quantize(n, Options{WeightBits: bits})
		if err != nil {
			t.Fatal(err)
		}
		b := q.Bound()
		if b >= prevBound {
			t.Fatalf("bound did not shrink with more bits: %v -> %v at %d bits", prevBound, b, bits)
		}
		prevBound = b
		if m := q.MeasuredError(inputs); m > b {
			t.Fatalf("measured %v above bound %v at %d bits", m, b, bits)
		}
	}
}

func TestHighPrecisionQuantizationIsNearExact(t *testing.T) {
	r := rng.New(5)
	n := testNet(r, []int{5})
	q, err := Quantize(n, Options{WeightBits: 40})
	if err != nil {
		t.Fatal(err)
	}
	inputs := metrics.RandomPoints(r, 2, 30)
	if m := q.MeasuredError(inputs); m > 1e-8 {
		t.Fatalf("40-bit quantisation error %v", m)
	}
}

func TestActivationQuantizationForward(t *testing.T) {
	r := rng.New(6)
	n := testNet(r, []int{4})
	q, err := Quantize(n, Options{WeightBits: 30, ActBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	// With 4 activation bits the lattice has 16 levels; outputs of the
	// quantised forward differ from the plain quantised net.
	x := []float64{0.3, 0.6}
	plain := q.Net.Forward(x)
	rounded := q.Forward(x)
	if plain == rounded {
		t.Skip("activation rounding coincided; acceptable but uninformative")
	}
	// Error still certified.
	if math.Abs(q.Original.Forward(x)-rounded) > q.Bound() {
		t.Fatal("activation-quantised forward exceeds bound")
	}
}

func TestQuantizeValidation(t *testing.T) {
	r := rng.New(7)
	n := testNet(r, []int{3})
	for _, opts := range []Options{{WeightBits: 1}, {WeightBits: 60}, {WeightBits: 8, ActBits: -1}, {WeightBits: 8, ActBits: 60}} {
		if _, err := Quantize(n, opts); err == nil {
			t.Fatalf("options %+v accepted", opts)
		}
	}
	relu := nn.NewRandom(r, nn.Config{InputDim: 2, Widths: []int{3}, Act: activation.ReLU{}}, 1)
	if _, err := Quantize(relu, Options{WeightBits: 8}); err == nil {
		t.Fatal("unbounded activation accepted")
	}
}

func TestMemoryAccounting(t *testing.T) {
	r := rng.New(8)
	n := testNet(r, []int{4})
	q, err := Quantize(n, Options{WeightBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	if q.MemoryBits() != n.Parameters()*8 {
		t.Fatal("MemoryBits wrong")
	}
	if FullPrecisionBits(n) != n.Parameters()*64 {
		t.Fatal("FullPrecisionBits wrong")
	}
	if q.MemoryBits()*8 != FullPrecisionBits(n) {
		t.Fatal("8-bit quantisation should be an 8x memory reduction")
	}
}

func TestPerLayerBitsWithinBound(t *testing.T) {
	// Proteus-style per-layer precision: deeper layers (whose λ_l
	// propagate through more multiplications) get more bits; the
	// certificate still covers the measurement.
	r := rng.New(10)
	n := testNet(r, []int{6, 5})
	q, err := Quantize(n, Options{PerLayerBits: []int{10, 8, 6}})
	if err != nil {
		t.Fatal(err)
	}
	inputs := metrics.RandomPoints(r, 2, 40)
	if m := q.MeasuredError(inputs); m > q.Bound() {
		t.Fatalf("per-layer quantisation measured %v above bound %v", m, q.Bound())
	}
}

func TestPerLayerBitsMemoryAccounting(t *testing.T) {
	r := rng.New(11)
	n := testNet(r, []int{4, 3})
	q, err := Quantize(n, Options{PerLayerBits: []int{12, 8, 4}})
	if err != nil {
		t.Fatal(err)
	}
	// Layer 1: (4*2 + 4) params @12; layer 2: (3*4 + 3) @8; output: (3+1) @4.
	want := 12*12 + 15*8 + 4*4
	if q.MemoryBits() != want {
		t.Fatalf("MemoryBits = %d, want %d", q.MemoryBits(), want)
	}
}

func TestPerLayerBitsBeatUniformAtEqualMemory(t *testing.T) {
	// The Proteus observation the paper explains: spending precision
	// where the λ_l sensitivities are largest gives a better certificate
	// than a uniform format of the same (or lower) memory. The test
	// searches the small allocation grid rather than hard-coding which
	// layer merits the bits — that depends on the trained weights.
	r := rng.New(12)
	n := testNet(r, []int{8, 8})
	uniform, err := Quantize(n, Options{WeightBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	bestBound := uniform.Bound()
	var best []int
	for b1 := 4; b1 <= 13; b1++ {
		for b2 := 4; b2 <= 13; b2++ {
			for b3 := 4; b3 <= 13; b3++ {
				q, err := Quantize(n, Options{PerLayerBits: []int{b1, b2, b3}})
				if err != nil {
					t.Fatal(err)
				}
				if q.MemoryBits() <= uniform.MemoryBits() && q.Bound() < bestBound {
					bestBound = q.Bound()
					best = []int{b1, b2, b3}
				}
			}
		}
	}
	if best == nil {
		t.Fatal("no per-layer allocation beat the uniform format at equal memory — Proteus effect absent")
	}
	t.Logf("best allocation %v: bound %v vs uniform %v", best, bestBound, uniform.Bound())
	// And the winner still certifies its measurement.
	q, _ := Quantize(n, Options{PerLayerBits: best})
	inputs := metrics.RandomPoints(r, 2, 40)
	if m := q.MeasuredError(inputs); m > q.Bound() {
		t.Fatalf("winner's measurement %v above its bound %v", m, q.Bound())
	}
}

func TestPerLayerBitsValidation(t *testing.T) {
	r := rng.New(13)
	n := testNet(r, []int{4})
	if _, err := Quantize(n, Options{PerLayerBits: []int{8}}); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if _, err := Quantize(n, Options{PerLayerBits: []int{8, 1}}); err == nil {
		t.Fatal("1-bit layer accepted")
	}
}

func TestOriginalNetworkUntouched(t *testing.T) {
	r := rng.New(9)
	n := testNet(r, []int{5})
	before := n.Clone()
	if _, err := Quantize(n, Options{WeightBits: 3}); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.2, 0.9}
	if n.Forward(x) != before.Forward(x) {
		t.Fatal("Quantize mutated the original network")
	}
}

// TestBitFlipInjectorCertified wires the quantised implementation into
// the fault-model registry: single-event weight upsets on the
// fixed-point network stay within the SynapseFep bound fed by the
// bit-flip model's deviation cap.
func TestBitFlipInjectorCertified(t *testing.T) {
	r := rng.New(61)
	net := testNet(r, []int{6, 5})
	q, err := Quantize(net, Options{WeightBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	inputs := metrics.RandomPoints(r, 2, 20)
	s := core.ShapeOf(q.Net)
	synFaults := []int{1, 1, 1}
	plan := fault.AdversarialSynapsePlan(q.Net, synFaults)
	for _, bit := range []int{0, 3, 6, 7} {
		inj, err := q.BitFlipInjector(bit)
		if err != nil {
			t.Fatalf("bit %d: %v", bit, err)
		}
		m, ok := fault.Lookup("bitflip")
		if !ok {
			t.Fatal("bitflip model missing")
		}
		dev := m.SynapseDeviation(q.BitFlipParams(bit), s)
		bound := core.SynapseFep(s, synFaults, dev)
		measured := fault.MaxError(q.Net, plan, inj, inputs)
		if measured > bound*(1+1e-9) {
			t.Fatalf("bit %d: measured %v above bound %v (dev %v)", bit, measured, bound, dev)
		}
		// The sign bit is the worst upset: it must actually damage the
		// output (sanity that the injector does something).
		if bit == 7 && measured == 0 {
			t.Fatal("sign-bit flips on adversarial synapses produced zero error")
		}
	}
}

// TestBitFlipInjectorRejectsPerLayer pins the unsupported combination.
func TestBitFlipInjectorRejectsPerLayer(t *testing.T) {
	net := testNet(rng.New(67), []int{4})
	q, err := Quantize(net, Options{PerLayerBits: []int{6, 8}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.BitFlipInjector(5); err == nil {
		t.Fatal("per-layer widths accepted")
	}
}
