package conv

import (
	"math"
	"testing"

	"repro/internal/activation"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/rng"
)

// test1D builds a random biased two-layer 1-D net and its lowering.
func test1D(t *testing.T, seed uint64) (*Net, *nn.Network) {
	t.Helper()
	n, err := NewRandom(rng.New(seed), 14, []int{3, 2}, []int{2, 3}, activation.NewSigmoid(1), 0.7, true)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := Lower(n)
	if err != nil {
		t.Fatal(err)
	}
	return n, dense
}

// test2D builds a random biased two-layer 2-D net and its lowering.
func test2D(t *testing.T, seed uint64) (*Net2D, *nn.Network) {
	t.Helper()
	n, err := NewRandom2D(rng.New(seed), 7, 7, []int{3, 2}, []int{2, 2}, activation.NewSigmoid(1), 0.6, true)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := Lower2D(n)
	if err != nil {
		t.Fatal(err)
	}
	return n, dense
}

// TestModelGeometryMatchesLowered pins Width/MaxWeight/Weight of the
// virtual dense connectivity against the materialised lowering.
func TestModelGeometryMatchesLowered(t *testing.T) {
	n1, d1 := test1D(t, 1)
	n2, d2 := test2D(t, 2)
	for _, tc := range []struct {
		name  string
		model nn.Model
		dense *nn.Network
	}{
		{"1d", n1, d1},
		{"2d", n2, d2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m, dense := tc.model, tc.dense
			if m.NumLayers() != dense.NumLayers() {
				t.Fatalf("NumLayers %d != %d", m.NumLayers(), dense.NumLayers())
			}
			for l := 0; l <= m.NumLayers()+1; l++ {
				if m.Width(l) != dense.Width(l) {
					t.Fatalf("Width(%d) %d != %d", l, m.Width(l), dense.Width(l))
				}
			}
			for l := 1; l <= m.NumLayers()+1; l++ {
				if m.MaxWeight(l) != dense.MaxWeight(l) {
					t.Fatalf("MaxWeight(%d) %v != %v", l, m.MaxWeight(l), dense.MaxWeight(l))
				}
				rows, cols := dense.Width(l), dense.Width(l-1)
				if l == m.NumLayers()+1 {
					rows = 1
				}
				for to := 0; to < rows; to++ {
					for from := 0; from < cols; from++ {
						if m.Weight(l, to, from) != dense.Weight(l, to, from) {
							t.Fatalf("Weight(%d,%d,%d) %v != %v", l, to, from,
								m.Weight(l, to, from), dense.Weight(l, to, from))
						}
					}
				}
			}
			cs, ds := core.ShapeOfModel(m), core.ShapeOf(dense)
			for i := range cs.MaxW {
				if cs.MaxW[i] != ds.MaxW[i] {
					t.Fatalf("shape MaxW[%d] %v != %v", i, cs.MaxW[i], ds.MaxW[i])
				}
			}
		})
	}
}

// TestForwardIntoBitIdenticalToLowered is the native-engine contract:
// the conv forward pass must reproduce the lowered dense network's
// arithmetic bit for bit (not approximately).
func TestForwardIntoBitIdenticalToLowered(t *testing.T) {
	n1, d1 := test1D(t, 3)
	n2, d2 := test2D(t, 4)
	for _, tc := range []struct {
		name  string
		model nn.Model
		dense *nn.Network
		dim   int
	}{
		{"1d", n1, d1, 14},
		{"2d", n2, d2, 49},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := rng.New(5)
			sc := nn.NewScratch(tc.model)
			dsc := nn.NewScratch(tc.dense)
			for trial := 0; trial < 50; trial++ {
				x := make([]float64, tc.dim)
				r.Floats(x, 0, 1)
				native := nn.ForwardModel(tc.model, sc, x)
				lowered := tc.dense.ForwardInto(dsc, x)
				if native != lowered {
					t.Fatalf("trial %d: native %v != lowered %v", trial, native, lowered)
				}
			}
		})
	}
}

// TestForwardIntoZeroAllocs pins the zero-allocation contract of the
// native conv forward pass (1-D and 2-D).
func TestForwardIntoZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are a property of the uninstrumented build")
	}
	n1, _ := test1D(t, 6)
	n2, _ := test2D(t, 7)
	x1 := make([]float64, 14)
	x2 := make([]float64, 49)
	rng.New(8).Floats(x1, 0, 1)
	rng.New(9).Floats(x2, 0, 1)
	sc1 := nn.NewScratch(n1)
	sc2 := nn.NewScratch(n2)
	var sink float64
	if a := testing.AllocsPerRun(100, func() { sink += n1.ForwardInto(sc1, x1) }); a != 0 {
		t.Fatalf("1-D ForwardInto allocates %v per run", a)
	}
	if a := testing.AllocsPerRun(100, func() { sink += n2.ForwardInto(sc2, x2) }); a != 0 {
		t.Fatalf("2-D ForwardInto allocates %v per run", a)
	}
	_ = sink
}

// TestFaultedForwardZeroAllocs pins the compiled-plan damaged pass as
// allocation-free on native conv models.
func TestFaultedForwardZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are a property of the uninstrumented build")
	}
	n2, _ := test2D(t, 10)
	plan := fault.AdversarialNeuronPlan(n2, []int{2, 1})
	cp := fault.Compile(n2, plan)
	x := make([]float64, 49)
	rng.New(11).Floats(x, 0, 1)
	var sink float64
	if a := testing.AllocsPerRun(100, func() { sink += cp.Forward(fault.Crash{}, x) }); a != 0 {
		t.Fatalf("native conv CompiledPlan.Forward allocates %v per run", a)
	}
	var inj fault.Injector = fault.Byzantine{C: 0.5}
	if a := testing.AllocsPerRun(100, func() { sink += cp.ErrorOn(inj, x) }); a != 0 {
		t.Fatalf("native conv CompiledPlan.ErrorOn allocates %v per run", a)
	}
	_ = sink
}

// modelParams instantiates shared registry parameters against m.
func modelParams(m nn.Model, seed uint64) fault.Params {
	return fault.Params{
		C:     0.6,
		Sem:   core.DeviationCap,
		Value: 0.85,
		Prob:  0.6,
		Bits:  8,
		Bit:   6,
		Net:   m,
		R:     rng.New(seed),
	}
}

// TestEveryModelNativeEqualsLowered is the oracle test of the refactor:
// for EVERY registered fault model, injecting the native conv model is
// bit-identical to injecting the lowered dense network with the same
// plan — neuron faults, virtual-dense synapse faults, and shared
// kernel-value faults alike. Stochastic models run with identically
// seeded streams so the draw sequences match.
func TestEveryModelNativeEqualsLowered(t *testing.T) {
	n1, d1 := test1D(t, 12)
	n2, d2 := test2D(t, 13)
	type pair struct {
		name  string
		model nn.Model
		dense *nn.Network
		dim   int
		plans map[string]fault.Plan
	}
	pairs := []pair{
		{
			name: "1d", model: n1, dense: d1, dim: 14,
			plans: map[string]fault.Plan{
				"neurons":  fault.AdversarialNeuronPlan(n1, []int{2, 2}),
				"synapses": fault.RandomSynapsePlan(rng.New(14), n1, []int{2, 1, 1}),
				"kernel":   n1.KernelPlan(KernelFault{Layer: 1, Filter: 1, Index: 0}, KernelFault{Layer: 2, Filter: 0, Index: 1}),
				"mixed": {
					Neurons:  fault.AdversarialNeuronPlan(n1, []int{1, 1}).Neurons,
					Synapses: n1.KernelPlan(KernelFault{Layer: 1, Filter: 0, Index: 2}).Synapses,
				},
			},
		},
		{
			name: "2d", model: n2, dense: d2, dim: 49,
			plans: map[string]fault.Plan{
				"neurons":  fault.AdversarialNeuronPlan(n2, []int{3, 2}),
				"synapses": fault.RandomSynapsePlan(rng.New(15), n2, []int{2, 2, 1}),
				"kernel": n2.KernelPlan(
					KernelFault2D{Layer: 1, Filter: 0, Channel: 0, Row: 1, Col: 2},
					KernelFault2D{Layer: 2, Filter: 1, Channel: 1, Row: 0, Col: 0}),
			},
		},
	}
	inputs := metrics.RandomPoints(rng.New(16), 49, 8)
	for _, pr := range pairs {
		for planName, plan := range pr.plans {
			if err := plan.Validate(pr.model); err != nil {
				t.Fatalf("%s/%s: plan invalid on conv model: %v", pr.name, planName, err)
			}
			if err := plan.Validate(pr.dense); err != nil {
				t.Fatalf("%s/%s: plan invalid on lowered dense: %v", pr.name, planName, err)
			}
			ncp := fault.Compile(pr.model, plan)
			dcp := fault.Compile(pr.dense, plan)
			for _, m := range fault.Models() {
				t.Run(pr.name+"/"+planName+"/"+m.Name, func(t *testing.T) {
					// Identically seeded streams: the native and lowered
					// sweeps draw the same random sequences.
					seed := uint64(17)
					nativeInj, err := m.New(modelParams(pr.model, seed))
					if err != nil {
						t.Fatal(err)
					}
					loweredInj, err := m.New(modelParams(pr.dense, seed))
					if err != nil {
						t.Fatal(err)
					}
					for trial, full := range inputs {
						x := full[:pr.dim]
						nf := ncp.Forward(nativeInj, x)
						df := dcp.Forward(loweredInj, x)
						if nf != df {
							t.Fatalf("trial %d: native Ffail %v != lowered %v", trial, nf, df)
						}
						ne := ncp.ErrorOn(nativeInj, x)
						de := dcp.ErrorOn(loweredInj, x)
						if ne != de {
							t.Fatalf("trial %d: native error %v != lowered %v", trial, ne, de)
						}
					}
				})
			}
		}
	}
}

// TestErrorOnTraceNativeEqualsLowered covers the trace-amortised sweep
// (the Monte Carlo / exhaustive-search hot path) on conv models.
func TestErrorOnTraceNativeEqualsLowered(t *testing.T) {
	n2, d2 := test2D(t, 18)
	inputs := metrics.RandomPoints(rng.New(19), 49, 6)
	ntr := fault.CleanTraces(n2, inputs)
	dtr := fault.CleanTraces(d2, inputs)
	plan := fault.AdversarialNeuronPlan(n2, []int{2, 1})
	ncp := fault.Compile(n2, plan)
	dcp := fault.Compile(d2, plan)
	for i := range inputs {
		if ntr[i].Output != dtr[i].Output {
			t.Fatalf("input %d: clean trace output %v != %v", i, ntr[i].Output, dtr[i].Output)
		}
		ne := ncp.ErrorOnTrace(fault.Crash{}, ntr[i])
		de := dcp.ErrorOnTrace(fault.Crash{}, dtr[i])
		if ne != de {
			t.Fatalf("input %d: native trace error %v != lowered %v", i, ne, de)
		}
	}
}

// TestAdversarialPlanAgreesWithLowered pins plan construction through
// the Model interface: the heaviest-weight adversary must pick the same
// neurons on the conv model (via the O(R) OutgoingScorer fast path) as
// on its lowering (via the generic dense scan).
func TestAdversarialPlanAgreesWithLowered(t *testing.T) {
	n1, d1 := test1D(t, 20)
	n2, d2 := test2D(t, 23)
	for _, tc := range []struct {
		name         string
		model, dense nn.Model
	}{
		{"1d", n1, d1},
		{"2d", n2, d2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := fault.AdversarialNeuronPlan(tc.model, []int{2, 1})
			b := fault.AdversarialNeuronPlan(tc.dense, []int{2, 1})
			if len(a.Neurons) != len(b.Neurons) {
				t.Fatalf("plan sizes differ: %d vs %d", len(a.Neurons), len(b.Neurons))
			}
			for i := range a.Neurons {
				if a.Neurons[i] != b.Neurons[i] {
					t.Fatalf("neuron %d differs: %v vs %v", i, a.Neurons[i], b.Neurons[i])
				}
			}
		})
	}
}

// TestOutgoingWeightMatchesGenericScan pins the OutgoingScorer fast
// path bit-for-bit against the generic virtual-dense scan it replaces,
// for every neuron of every layer.
func TestOutgoingWeightMatchesGenericScan(t *testing.T) {
	n1, _ := test1D(t, 24)
	n2, _ := test2D(t, 25)
	genericScan := func(m nn.Model, l, idx int) float64 {
		if l == m.NumLayers() {
			return math.Abs(m.Weight(l+1, 0, idx))
		}
		best := 0.0
		for j := 0; j < m.Width(l+1); j++ {
			if w := math.Abs(m.Weight(l+1, j, idx)); w > best {
				best = w
			}
		}
		return best
	}
	for _, tc := range []struct {
		name   string
		model  nn.Model
		scorer fault.OutgoingScorer
	}{
		{"1d", n1, n1},
		{"2d", n2, n2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for l := 1; l <= tc.model.NumLayers(); l++ {
				for idx := 0; idx < tc.model.Width(l); idx++ {
					fast := tc.scorer.OutgoingWeight(l, idx)
					slow := genericScan(tc.model, l, idx)
					if fast != slow {
						t.Fatalf("layer %d neuron %d: fast %v != generic %v", l, idx, fast, slow)
					}
				}
			}
		})
	}
}

// TestKernelSynapsesRejectsBadCoordinates pins the validation: a
// mis-addressed shared weight must panic loudly, never expand to
// synapses the kernel does not own (a silent no-op injection would
// report a meaningless robustness result).
func TestKernelSynapsesRejectsBadCoordinates(t *testing.T) {
	n1, _ := test1D(t, 26)
	n2, _ := test2D(t, 27)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: bad coordinates accepted", name)
			}
		}()
		f()
	}
	mustPanic("1d layer", func() { n1.KernelSynapses(KernelFault{Layer: 9}, nil) })
	mustPanic("1d filter", func() { n1.KernelSynapses(KernelFault{Layer: 1, Filter: 9}, nil) })
	mustPanic("1d index", func() { n1.KernelSynapses(KernelFault{Layer: 1, Index: 9}, nil) })
	mustPanic("2d layer", func() { n2.KernelSynapses(KernelFault2D{Layer: 0}, nil) })
	mustPanic("2d filter", func() { n2.KernelSynapses(KernelFault2D{Layer: 1, Filter: 9}, nil) })
	mustPanic("2d channel", func() { n2.KernelSynapses(KernelFault2D{Layer: 1, Channel: 9}, nil) })
	mustPanic("2d window", func() { n2.KernelSynapses(KernelFault2D{Layer: 1, Row: 3}, nil) })
}

// TestKernelFaultBoundSound checks the receptive-field certificate
// against native kernel-fault injection: a crashed shared kernel value
// is a crash on its tied synapse instances, and the measured error must
// sit below SynapseFep on the conv shape.
func TestKernelFaultBoundSound(t *testing.T) {
	n1, _ := test1D(t, 21)
	s := core.ShapeOfModel(n1)
	plan := n1.KernelPlan(KernelFault{Layer: 1, Filter: 0, Index: 1})
	synFaults := make([]int, n1.NumLayers()+1)
	synFaults[0] = len(plan.Synapses)
	crash, ok := fault.Lookup("crash")
	if !ok {
		t.Fatal("crash model unregistered")
	}
	bound := core.SynapseFep(s, synFaults, crash.SynapseDeviation(fault.Params{}, s))
	inputs := metrics.RandomPoints(rng.New(22), 14, 30)
	measured := fault.MaxError(n1, plan, fault.Crash{}, inputs)
	if measured > bound*(1+1e-9) {
		t.Fatalf("kernel-fault error %v exceeds SynapseFep %v", measured, bound)
	}
}
