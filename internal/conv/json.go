package conv

import (
	"encoding/json"
	"fmt"

	"repro/internal/activation"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Architecture tags of the serialised model documents. Dense networks
// carry no tag (their codec predates the model layer and stays wire
// compatible); conv documents are self-describing via "arch".
const (
	Arch1D = "conv1d"
	Arch2D = "conv2d"
)

// ArchOf returns the architecture tag of a model ("dense" for
// nn.Network).
func ArchOf(m nn.Model) string {
	switch m.(type) {
	case *Net:
		return Arch1D
	case *Net2D:
		return Arch2D
	case *graph.Net:
		return graph.Arch
	default:
		return "dense"
	}
}

type jsonLayer1D struct {
	Kernels [][]float64 `json:"kernels"`
	Bias    []float64   `json:"bias,omitempty"`
}

type jsonNet1D struct {
	Arch       string        `json:"arch"`
	InputWidth int           `json:"input_width"`
	Activation string        `json:"activation"`
	Layers     []jsonLayer1D `json:"layers"`
	Output     []float64     `json:"output"`
}

// MarshalJSON serialises the net with its architecture tag and the
// activation by name. Float64 JSON encoding round-trips exactly, so a
// loaded net's forward outputs are bit-identical to the saved one's.
func (n *Net) MarshalJSON() ([]byte, error) {
	j := jsonNet1D{
		Arch:       Arch1D,
		InputWidth: n.InputWidth,
		Activation: n.Act.Name(),
		Layers:     make([]jsonLayer1D, len(n.Layers)),
		Output:     n.Output,
	}
	for i, l := range n.Layers {
		rows := make([][]float64, l.Filters())
		for f := range rows {
			rows[f] = l.Kernels.Row(f)
		}
		j.Layers[i] = jsonLayer1D{Kernels: rows, Bias: l.Bias}
	}
	return json.Marshal(j)
}

// UnmarshalJSON restores a net serialised by MarshalJSON. Unknown
// fields are errors (see nn.Network.UnmarshalJSON for the rationale).
func (n *Net) UnmarshalJSON(data []byte) error {
	var j jsonNet1D
	if err := nn.StrictUnmarshal(data, &j); err != nil {
		return err
	}
	if j.Arch != Arch1D {
		return fmt.Errorf("conv: document arch %q, want %q", j.Arch, Arch1D)
	}
	act, err := activation.FromName(j.Activation)
	if err != nil {
		return err
	}
	n.InputWidth = j.InputWidth
	n.Act = act
	n.Layers = make([]Layer, len(j.Layers))
	for i, jl := range j.Layers {
		// FromRows panics on ragged input; the codec is the trust
		// boundary for uploaded documents, so reject it as an error.
		if raggedRows(jl.Kernels) {
			return fmt.Errorf("conv: layer %d has ragged kernel rows", i+1)
		}
		n.Layers[i] = Layer{Kernels: tensor.FromRows(jl.Kernels), Bias: jl.Bias}
	}
	n.Output = j.Output
	return n.Validate()
}

// raggedRows reports whether the rows have unequal lengths, which
// tensor.FromRows rejects with a panic.
func raggedRows(rows [][]float64) bool {
	for _, row := range rows {
		if len(row) != len(rows[0]) {
			return true
		}
	}
	return false
}

type jsonLayer2D struct {
	Field   int           `json:"field"`
	Kernels [][][]float64 `json:"kernels"`
	Bias    []float64     `json:"bias,omitempty"`
}

type jsonNet2D struct {
	Arch       string        `json:"arch"`
	InputH     int           `json:"input_h"`
	InputW     int           `json:"input_w"`
	Activation string        `json:"activation"`
	Layers     []jsonLayer2D `json:"layers"`
	Output     []float64     `json:"output"`
}

// MarshalJSON serialises the net (see Net.MarshalJSON).
func (n *Net2D) MarshalJSON() ([]byte, error) {
	j := jsonNet2D{
		Arch:       Arch2D,
		InputH:     n.InputH,
		InputW:     n.InputW,
		Activation: n.Act.Name(),
		Layers:     make([]jsonLayer2D, len(n.Layers)),
		Output:     n.Output,
	}
	for i, l := range n.Layers {
		filters := make([][][]float64, l.Filters())
		for f, k := range l.Kernels {
			rows := make([][]float64, k.Rows)
			for c := range rows {
				rows[c] = k.Row(c)
			}
			filters[f] = rows
		}
		j.Layers[i] = jsonLayer2D{Field: l.Field, Kernels: filters, Bias: l.Bias}
	}
	return json.Marshal(j)
}

// UnmarshalJSON restores a net serialised by MarshalJSON.
func (n *Net2D) UnmarshalJSON(data []byte) error {
	var j jsonNet2D
	if err := nn.StrictUnmarshal(data, &j); err != nil {
		return err
	}
	if j.Arch != Arch2D {
		return fmt.Errorf("conv: document arch %q, want %q", j.Arch, Arch2D)
	}
	act, err := activation.FromName(j.Activation)
	if err != nil {
		return err
	}
	n.InputH, n.InputW = j.InputH, j.InputW
	n.Act = act
	n.Layers = make([]Layer2D, len(j.Layers))
	for i, jl := range j.Layers {
		l := Layer2D{Field: jl.Field, Bias: jl.Bias}
		for f, rows := range jl.Kernels {
			if raggedRows(rows) {
				return fmt.Errorf("conv: layer %d filter %d has ragged kernel rows", i+1, f)
			}
			l.Kernels = append(l.Kernels, tensor.FromRows(rows))
		}
		n.Layers[i] = l
	}
	n.Output = j.Output
	return n.Validate()
}

// ParseModel decodes an architecture-tagged model document: "conv1d"
// and "conv2d" documents load as native conv nets, "graph" documents
// as sparse-DAG graph.Nets, untagged documents as dense nn.Networks.
// This is the single entry point the store, the service and the CLI
// use to accept any model wire format.
func ParseModel(data []byte) (nn.Model, error) {
	var probe struct {
		Arch string `json:"arch"`
	}
	// A lenient probe: the strict per-architecture codec re-reads the
	// full document afterwards.
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("conv: model document: %w", err)
	}
	switch probe.Arch {
	case "":
		var net nn.Network
		if err := nn.StrictUnmarshal(data, &net); err != nil {
			return nil, err
		}
		return &net, nil
	case Arch1D:
		var net Net
		if err := json.Unmarshal(data, &net); err != nil {
			return nil, err
		}
		return &net, nil
	case Arch2D:
		var net Net2D
		if err := json.Unmarshal(data, &net); err != nil {
			return nil, err
		}
		return &net, nil
	case graph.Arch:
		var net graph.Net
		if err := json.Unmarshal(data, &net); err != nil {
			return nil, err
		}
		return &net, nil
	default:
		return nil, fmt.Errorf("conv: unknown model architecture %q (want %q, %q or %q, or an untagged dense network)",
			probe.Arch, Arch1D, Arch2D, graph.Arch)
	}
}
