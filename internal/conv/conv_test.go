package conv

import (
	"math"
	"testing"

	"repro/internal/activation"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// handConv: input width 4, one layer, 2 filters of field 3, identity
// activation: outputs are [k1·x[0:3], k1·x[1:4], k2·x[0:3], k2·x[1:4]].
func handConv() *Net {
	return &Net{
		InputWidth: 4,
		Act:        activation.Identity{},
		Layers: []Layer{{
			Kernels: tensor.FromRows([][]float64{{1, 0, -1}, {0.5, 0.5, 0.5}}),
		}},
		Output: []float64{1, 1, 1, 1},
	}
}

func TestForwardHandComputed(t *testing.T) {
	n := handConv()
	x := []float64{1, 2, 3, 4}
	// Filter 1: [1*1+0*2-1*3, 1*2+0*3-1*4] = [-2, -2]
	// Filter 2: [0.5*(1+2+3), 0.5*(2+3+4)] = [3, 4.5]
	// Output: -2 - 2 + 3 + 4.5 = 3.5
	got := n.Forward(x)
	if math.Abs(got-3.5) > 1e-12 {
		t.Fatalf("Forward = %v, want 3.5", got)
	}
}

func TestWidths(t *testing.T) {
	n := handConv()
	w := n.Widths()
	if len(w) != 1 || w[0] != 4 {
		t.Fatalf("Widths = %v, want [4]", w)
	}
}

func TestLowerMatchesDirectForward(t *testing.T) {
	r := rng.New(1)
	n, err := NewRandom(r, 12, []int{3, 2}, []int{2, 3}, activation.NewSigmoid(1), 0.8, true)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := Lower(n)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		x := make([]float64, 12)
		r.Floats(x, 0, 1)
		a := n.Forward(x)
		b := dense.Forward(x)
		if math.Abs(a-b) > 1e-12 {
			t.Fatalf("direct %v != lowered %v", a, b)
		}
	}
}

func TestLowerStructure(t *testing.T) {
	n := handConv()
	dense, err := Lower(n)
	if err != nil {
		t.Fatal(err)
	}
	m := dense.Hidden[0]
	if m.Rows != 4 || m.Cols != 4 {
		t.Fatalf("lowered layer is %dx%d", m.Rows, m.Cols)
	}
	// Row 0 = filter 1 at position 0: [1, 0, -1, 0].
	want := []float64{1, 0, -1, 0}
	if !tensor.EqualApprox(m.Row(0), want, 0) {
		t.Fatalf("row 0 = %v, want %v", m.Row(0), want)
	}
	// Row 1 = filter 1 at position 1: [0, 1, 0, -1].
	want = []float64{0, 1, 0, -1}
	if !tensor.EqualApprox(m.Row(1), want, 0) {
		t.Fatalf("row 1 = %v, want %v", m.Row(1), want)
	}
}

func TestShapeUsesReceptiveFieldMax(t *testing.T) {
	n := handConv()
	s := Shape(n)
	if s.MaxW[0] != 1 {
		t.Fatalf("conv w_m = %v, want 1 (max kernel value)", s.MaxW[0])
	}
	if s.MaxW[1] != 1 {
		t.Fatalf("output w_m = %v", s.MaxW[1])
	}
	// The lowered dense network must agree: zeros never raise the max.
	dense, _ := Lower(n)
	ds := core.ShapeOf(dense)
	for i := range s.MaxW {
		if math.Abs(s.MaxW[i]-ds.MaxW[i]) > 1e-15 {
			t.Fatalf("conv shape MaxW[%d]=%v != lowered %v", i, s.MaxW[i], ds.MaxW[i])
		}
	}
}

func TestShapeWithSharedBias(t *testing.T) {
	// Biases are excluded from w_m, matching the dense convention
	// (nn.Network.MaxWeight): bias synapses feed constant neurons that
	// never fail, so they carry no deviation — and excluding them keeps
	// the conv shape exactly equal to the lowered dense network's.
	n := handConv()
	n.Layers[0].Bias = []float64{5, 0}
	s := Shape(n)
	if s.MaxW[0] != 1 {
		t.Fatalf("w_m should run over kernel values only: got %v", s.MaxW[0])
	}
	dense, err := Lower(n)
	if err != nil {
		t.Fatal(err)
	}
	ds := core.ShapeOf(dense)
	for i := range s.MaxW {
		if s.MaxW[i] != ds.MaxW[i] {
			t.Fatalf("conv MaxW[%d]=%v != lowered %v", i, s.MaxW[i], ds.MaxW[i])
		}
	}
}

func TestValidateCatchesBadNets(t *testing.T) {
	bad := []*Net{
		{InputWidth: 0, Act: activation.Identity{}, Layers: []Layer{{Kernels: tensor.NewMatrix(1, 1)}}, Output: []float64{1}},
		{InputWidth: 2, Act: activation.Identity{}, Output: []float64{1}},
		{InputWidth: 2, Act: activation.Identity{}, Layers: []Layer{{Kernels: tensor.NewMatrix(1, 5)}}, Output: []float64{1}},
		{InputWidth: 4, Act: activation.Identity{}, Layers: []Layer{{Kernels: tensor.NewMatrix(1, 3)}}, Output: []float64{1, 1, 1}},
	}
	for i, n := range bad {
		if n.Validate() == nil {
			t.Fatalf("bad net %d accepted", i)
		}
	}
}

func TestFaultBoundsApplyToLoweredConv(t *testing.T) {
	// End-to-end Section VI check: crash faults injected into the lowered
	// conv net stay within CrashFep computed from the receptive-field
	// shape.
	r := rng.New(2)
	n, err := NewRandom(r, 10, []int{3}, []int{2}, activation.NewSigmoid(1), 0.6, false)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := Lower(n)
	if err != nil {
		t.Fatal(err)
	}
	s := Shape(n)
	for trial := 0; trial < 30; trial++ {
		perLayer := []int{r.Intn(s.Widths[0] + 1)}
		p := fault.RandomNeuronPlan(r, dense, perLayer)
		inputs := metrics.RandomPoints(r, 10, 20)
		measured := fault.MaxError(dense, p, fault.Crash{}, inputs)
		bound := core.CrashFep(s, perLayer)
		if measured > bound*(1+1e-9)+1e-12 {
			t.Fatalf("trial %d: conv crash error %v exceeds receptive-field CrashFep %v", trial, measured, bound)
		}
	}
}

func TestFaultBudgetAdvantage(t *testing.T) {
	// Start from the lowered conv net and untie one DOWNSTREAM weight
	// (weights into layer 2 or beyond are the ones that propagate
	// layer-1 faults): the untied dense variant has a larger w_m there,
	// so its Fep must exceed the conv net's.
	r := rng.New(3)
	convNet, err := NewRandom(r, 8, []int{3, 2}, []int{2, 2}, activation.NewSigmoid(1), 0.5, false)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := Lower(convNet)
	if err != nil {
		t.Fatal(err)
	}
	dense.Hidden[1].Set(0, 0, 3.0) // an untied outlier a free dense layer could learn
	adv := FaultBudgetAdvantage(convNet, dense, 1)
	if adv <= 1 {
		t.Fatalf("expected conv advantage > 1, got %v", adv)
	}
	// Identical weights give ratio exactly 1.
	same, _ := Lower(convNet)
	if got := FaultBudgetAdvantage(convNet, same, 1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("identical nets should have advantage 1, got %v", got)
	}
}

func TestNewRandomRejectsBadConfig(t *testing.T) {
	r := rng.New(4)
	if _, err := NewRandom(r, 4, []int{3, 3}, []int{2}, activation.NewSigmoid(1), 1, false); err == nil {
		t.Fatal("mismatched fields/filters accepted")
	}
	if _, err := NewRandom(r, 2, []int{5}, []int{1}, activation.NewSigmoid(1), 1, false); err == nil {
		t.Fatal("field larger than input accepted")
	}
}

func TestBiasLoweringSharesValues(t *testing.T) {
	r := rng.New(5)
	n, err := NewRandom(r, 6, []int{3}, []int{2}, activation.NewSigmoid(1), 0.5, true)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := Lower(n)
	if err != nil {
		t.Fatal(err)
	}
	positions := 6 - 3 + 1
	for f := 0; f < 2; f++ {
		for p := 0; p < positions; p++ {
			if dense.Biases[0][f*positions+p] != n.Layers[0].Bias[f] {
				t.Fatal("bias not shared across positions in lowering")
			}
		}
	}
}
