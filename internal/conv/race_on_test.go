//go:build race

package conv

// raceEnabled: see race_off_test.go.
const raceEnabled = true
