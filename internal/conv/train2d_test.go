package conv

import (
	"math"
	"testing"

	"repro/internal/activation"
	"repro/internal/rng"
)

// TestBackprop2DMatchesNumericGradient checks the tied-kernel gradients
// against central differences on every parameter class.
func TestBackprop2DMatchesNumericGradient(t *testing.T) {
	n, err := NewRandom2D(rng.New(50), 5, 5, []int{2, 2}, []int{2, 2}, activation.NewSigmoid(1), 0.6, true)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 25)
	rng.New(51).Floats(x, 0, 1)
	const y = 0.3
	g := NewGrads2D(n)
	Backprop2D(n, x, y, g)

	loss := func() float64 {
		d := n.Forward(x) - y
		return 0.5 * d * d
	}
	const h = 1e-6
	checkGrad := func(name string, p *float64, analytic float64) {
		t.Helper()
		old := *p
		*p = old + h
		up := loss()
		*p = old - h
		down := loss()
		*p = old
		numeric := (up - down) / (2 * h)
		if math.Abs(numeric-analytic) > 1e-5*(1+math.Abs(numeric)) {
			t.Fatalf("%s: analytic %v != numeric %v", name, analytic, numeric)
		}
	}
	for li := range n.Layers {
		for f, k := range n.Layers[li].Kernels {
			for i := range k.Data {
				checkGrad("kernel", &k.Data[i], g.Kernels[li][f].Data[i])
			}
		}
		for f := range n.Layers[li].Bias {
			checkGrad("bias", &n.Layers[li].Bias[f], g.Bias[li][f])
		}
	}
	for i := range n.Output {
		checkGrad("output", &n.Output[i], g.Output[i])
	}
}

// TestTrain2DLearnsBlobTask trains on a shift-invariant brightest-patch
// task and requires the loss to drop well below the untrained one.
func TestTrain2DLearnsBlobTask(t *testing.T) {
	n, err := NewRandom2D(rng.New(52), 6, 6, []int{3}, []int{2}, activation.NewSigmoid(1), 0.5, true)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(53)
	xs := make([][]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		xs[i] = make([]float64, 36)
		r.Floats(xs[i], 0, 1)
		ys[i] = brightestPatch(xs[i], 6, 6)
	}
	before := 0.0
	for i, x := range xs {
		d := n.Forward(x) - ys[i]
		before += d * d
	}
	before /= float64(len(xs))
	after := Train2D(n, xs, ys, TrainConfig{Epochs: 60, LR: 0.4, Seed: 54})
	if after >= before/2 {
		t.Fatalf("Train2D did not learn: MSE %v -> %v", before, after)
	}
}

// brightestPatch returns the mean of the brightest 2x2 patch — a
// shift-invariant target a small conv net learns comfortably.
func brightestPatch(x []float64, h, w int) float64 {
	best := 0.0
	for r := 0; r+1 < h; r++ {
		for c := 0; c+1 < w; c++ {
			v := (x[r*w+c] + x[r*w+c+1] + x[(r+1)*w+c] + x[(r+1)*w+c+1]) / 4
			if v > best {
				best = v
			}
		}
	}
	return best
}
