package conv

import (
	"testing"

	"repro/internal/activation"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/rng"
)

// TestBatchMatchesScalarConvModel pins the batched engine's
// LayerSumsLanesModel fallback path: conv models expose no multi-lane
// kernel, so the batch engine runs their LayerSums lane by lane — the
// results must still be bit-identical to the one-at-a-time oracle.
func TestBatchMatchesScalarConvModel(t *testing.T) {
	r := rng.New(109)
	net, err := NewRandom(r, 12, []int{3, 3}, []int{2, 1}, activation.NewSigmoid(1), 0.8, true)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([][]float64, 4)
	for i := range inputs {
		x := make([]float64, 12)
		r.Floats(x, 0, 1)
		inputs[i] = x
	}
	traces := fault.CleanTraces(net, inputs)
	plans := []fault.Plan{
		{},
		fault.RandomNeuronPlan(r, net, []int{2, 1}),
		fault.RandomNeuronPlan(r, net, []int{1, 2}),
		{Neurons: []fault.NeuronFault{{Layer: 2, Index: 0}}},
	}
	bp := fault.CompileBatch(net, len(plans))
	bp.Reset(plans)
	injs := make([]fault.Injector, len(plans))
	for p := range injs {
		injs[p] = fault.Byzantine{C: 0.5, Sem: core.DeviationCap}
	}
	out := make([]float64, len(plans))
	for _, tr := range traces {
		bp.ErrorsOnTrace(injs, tr, out)
		for p, plan := range plans {
			want := fault.Compile(net, plan).ErrorOnTrace(injs[p], tr)
			if out[p] != want {
				t.Fatalf("conv lane %d: batched %v != scalar %v", p, out[p], want)
			}
		}
	}
}
