package conv

import (
	"math"
	"testing"

	"repro/internal/activation"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// hand2D: 3x3 input, one 2x2 filter (identity activation), output sums
// the 2x2 feature map.
func hand2D() *Net2D {
	kernel := tensor.FromRows([][]float64{{1, 0, 0, -1}}) // 1 channel, [1 0; 0 -1]
	return &Net2D{
		InputH: 3, InputW: 3,
		Act: activation.Identity{},
		Layers: []Layer2D{{
			Kernels: []*tensor.Matrix{kernel},
			Field:   2,
		}},
		Output: []float64{1, 1, 1, 1},
	}
}

func TestForward2DHandComputed(t *testing.T) {
	n := hand2D()
	// Input:
	//  1 2 3
	//  4 5 6
	//  7 8 9
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	// Feature map entries (x[r][c] - x[r+1][c+1]):
	//  1-5=-4  2-6=-4
	//  4-8=-4  5-9=-4     sum = -16
	got := n.Forward(x)
	if math.Abs(got+16) > 1e-12 {
		t.Fatalf("Forward2D = %v, want -16", got)
	}
}

func TestWidths2D(t *testing.T) {
	r := rng.New(1)
	n, err := NewRandom2D(r, 6, 6, []int{3, 2}, []int{2, 3}, activation.NewSigmoid(1), 0.5, true)
	if err != nil {
		t.Fatal(err)
	}
	// Layer 1: 2 filters on 6x6 -> 2 maps of 4x4 = 32.
	// Layer 2: 3 filters, field 2 on 4x4 -> 3 maps of 3x3 = 27.
	w := n.Widths()
	if w[0] != 32 || w[1] != 27 {
		t.Fatalf("Widths2D = %v", w)
	}
}

func TestLower2DMatchesDirect(t *testing.T) {
	r := rng.New(2)
	n, err := NewRandom2D(r, 5, 5, []int{2, 2}, []int{2, 2}, activation.NewSigmoid(1), 0.6, true)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := Lower2D(n)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		x := make([]float64, 25)
		r.Floats(x, 0, 1)
		a := n.Forward(x)
		b := dense.Forward(x)
		if math.Abs(a-b) > 1e-12 {
			t.Fatalf("trial %d: direct %v != lowered %v", trial, a, b)
		}
	}
}

func TestShape2DReceptiveField(t *testing.T) {
	n := hand2D()
	s := Shape2D(n)
	if s.MaxW[0] != 1 {
		t.Fatalf("conv2d w_m = %v, want 1", s.MaxW[0])
	}
	if n.Layers[0].ReceptiveField() != 4 {
		t.Fatalf("R(l) = %d, want 4", n.Layers[0].ReceptiveField())
	}
	// Lowered shape agrees.
	dense, err := Lower2D(n)
	if err != nil {
		t.Fatal(err)
	}
	ds := core.ShapeOf(dense)
	for i := range s.MaxW {
		if math.Abs(s.MaxW[i]-ds.MaxW[i]) > 1e-15 {
			t.Fatalf("Shape2D MaxW[%d] %v != lowered %v", i, s.MaxW[i], ds.MaxW[i])
		}
	}
	if s.Widths[0] != ds.Widths[0] {
		t.Fatal("widths disagree with lowering")
	}
}

func TestFaultBoundsApplyToLowered2D(t *testing.T) {
	r := rng.New(3)
	n, err := NewRandom2D(r, 5, 5, []int{3}, []int{2}, activation.NewSigmoid(1), 0.5, false)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := Lower2D(n)
	if err != nil {
		t.Fatal(err)
	}
	s := Shape2D(n)
	for trial := 0; trial < 20; trial++ {
		perLayer := []int{r.Intn(s.Widths[0] + 1)}
		p := fault.RandomNeuronPlan(r, dense, perLayer)
		inputs := metrics.RandomPoints(r, 25, 10)
		measured := fault.MaxError(dense, p, fault.Crash{}, inputs)
		bound := core.CrashFep(s, perLayer)
		if measured > bound*(1+1e-9)+1e-12 {
			t.Fatalf("trial %d: 2-D conv crash error %v exceeds bound %v", trial, measured, bound)
		}
	}
}

func TestValidate2DCatchesBadNets(t *testing.T) {
	good := hand2D()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := hand2D()
	bad.Output = []float64{1}
	if bad.Validate() == nil {
		t.Fatal("short output accepted")
	}
	bad2 := hand2D()
	bad2.Layers[0].Field = 5
	if bad2.Validate() == nil {
		t.Fatal("oversized field accepted")
	}
	bad3 := hand2D()
	bad3.Layers[0].Bias = []float64{1, 2}
	if bad3.Validate() == nil {
		t.Fatal("bias arity accepted")
	}
}

func TestNewRandom2DRejectsShrinkage(t *testing.T) {
	r := rng.New(4)
	if _, err := NewRandom2D(r, 3, 3, []int{3, 3}, []int{1, 1}, activation.NewSigmoid(1), 0.5, false); err == nil {
		t.Fatal("map shrinking below 1x1 accepted")
	}
	if _, err := NewRandom2D(r, 3, 3, []int{2}, []int{1, 2}, activation.NewSigmoid(1), 0.5, false); err == nil {
		t.Fatal("mismatched config accepted")
	}
}

func TestMultiChannelKernelShapes(t *testing.T) {
	r := rng.New(5)
	n, err := NewRandom2D(r, 6, 6, []int{3, 2}, []int{4, 2}, activation.NewSigmoid(1), 0.5, false)
	if err != nil {
		t.Fatal(err)
	}
	// Layer 2 consumes 4 channels with 2x2 windows: R(l) = 16.
	if n.Layers[1].ReceptiveField() != 16 {
		t.Fatalf("layer 2 R(l) = %d, want 16", n.Layers[1].ReceptiveField())
	}
	if n.Layers[1].InChannels() != 4 {
		t.Fatal("channel chaining broken")
	}
}
