package conv

import (
	"fmt"

	"repro/internal/activation"
	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Layer2D is one 2-D convolutional layer: Filters kernels, each spanning
// InChannels x Field x Field weights, slid with stride 1 over the input
// feature maps (valid padding). Its receptive field size in the paper's
// sense is R(l) = InChannels·Field².
type Layer2D struct {
	// Kernels[f] is the f-th filter, an InChannels x (Field*Field)
	// matrix: row c holds the window weights for input channel c in
	// row-major order.
	Kernels []*tensor.Matrix
	// Field is the square window edge.
	Field int
	// Bias, when non-nil, holds one bias per filter.
	Bias []float64
}

// Filters returns the number of output channels.
func (l Layer2D) Filters() int { return len(l.Kernels) }

// InChannels returns the expected number of input channels.
func (l Layer2D) InChannels() int { return l.Kernels[0].Rows }

// ReceptiveField returns R(l), the number of distinct weights per filter.
func (l Layer2D) ReceptiveField() int { return l.InChannels() * l.Field * l.Field }

// MaxWeight returns the max |w| over the R(l) kernel values. Biases are
// excluded (see Layer.MaxWeight).
func (l Layer2D) MaxWeight() float64 {
	m := 0.0
	for _, k := range l.Kernels {
		if v := k.MaxAbs(); v > m {
			m = v
		}
	}
	return m
}

// Net2D is a 2-D convolutional network over a single-channel H x W input
// with a linear output node over the flattened final feature maps.
// Feature maps are laid out channel-major: index = c·(H·W) + r·W + col.
type Net2D struct {
	InputH, InputW int
	Act            activation.Func
	Layers         []Layer2D
	Output         []float64
}

// dims returns the (channels, height, width) after each layer; dims[0] is
// the input.
func (n *Net2D) dims() [][3]int {
	out := make([][3]int, len(n.Layers)+1)
	out[0] = [3]int{1, n.InputH, n.InputW}
	for i, l := range n.Layers {
		prev := out[i]
		out[i+1] = [3]int{l.Filters(), prev[1] - l.Field + 1, prev[2] - l.Field + 1}
	}
	return out
}

// Widths returns the flattened per-layer widths N_1..N_L.
func (n *Net2D) Widths() []int {
	d := n.dims()
	w := make([]int, len(n.Layers))
	for i := 1; i < len(d); i++ {
		w[i-1] = d[i][0] * d[i][1] * d[i][2]
	}
	return w
}

// Validate checks geometry.
func (n *Net2D) Validate() error {
	if n.InputH < 1 || n.InputW < 1 {
		return fmt.Errorf("conv: input %dx%d", n.InputH, n.InputW)
	}
	if len(n.Layers) == 0 {
		return fmt.Errorf("conv: no layers")
	}
	d := n.dims()
	for i, l := range n.Layers {
		if l.Filters() == 0 {
			return fmt.Errorf("conv: layer %d has no filters", i+1)
		}
		if l.InChannels() != d[i][0] {
			return fmt.Errorf("conv: layer %d expects %d channels, have %d", i+1, l.InChannels(), d[i][0])
		}
		for f, k := range l.Kernels {
			if k.Rows != l.InChannels() || k.Cols != l.Field*l.Field {
				return fmt.Errorf("conv: layer %d filter %d has shape %dx%d, want %dx%d",
					i+1, f, k.Rows, k.Cols, l.InChannels(), l.Field*l.Field)
			}
		}
		if l.Field > d[i][1] || l.Field > d[i][2] {
			return fmt.Errorf("conv: layer %d field %d exceeds input %dx%d", i+1, l.Field, d[i][1], d[i][2])
		}
		if l.Bias != nil && len(l.Bias) != l.Filters() {
			return fmt.Errorf("conv: layer %d bias length mismatch", i+1)
		}
	}
	last := d[len(d)-1]
	if len(n.Output) != last[0]*last[1]*last[2] {
		return fmt.Errorf("conv: output weights %d for final volume %d", len(n.Output), last[0]*last[1]*last[2])
	}
	return nil
}

// Forward evaluates the network directly on a flattened H x W input.
func (n *Net2D) Forward(x []float64) float64 {
	d := n.dims()
	y := x
	for li, l := range n.Layers {
		inC, inH, inW := d[li][0], d[li][1], d[li][2]
		outH, outW := inH-l.Field+1, inW-l.Field+1
		out := make([]float64, l.Filters()*outH*outW)
		for f := 0; f < l.Filters(); f++ {
			kern := l.Kernels[f]
			for r := 0; r < outH; r++ {
				for cidx := 0; cidx < outW; cidx++ {
					s := 0.0
					for c := 0; c < inC; c++ {
						krow := kern.Row(c)
						for kr := 0; kr < l.Field; kr++ {
							for kc := 0; kc < l.Field; kc++ {
								s += krow[kr*l.Field+kc] * y[c*inH*inW+(r+kr)*inW+(cidx+kc)]
							}
						}
					}
					if l.Bias != nil {
						s += l.Bias[f]
					}
					out[f*outH*outW+r*outW+cidx] = n.Act.Eval(s)
				}
			}
		}
		y = out
	}
	s := 0.0
	for i, w := range n.Output {
		s += w * y[i]
	}
	return s
}

// Lower converts the 2-D conv net into the equivalent dense nn.Network.
func Lower2D(n *Net2D) (*nn.Network, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	d := n.dims()
	dense := &nn.Network{
		InputDim: n.InputH * n.InputW,
		Act:      n.Act,
		Output:   tensor.Clone(n.Output),
	}
	anyBias := false
	for _, l := range n.Layers {
		if l.Bias != nil {
			anyBias = true
		}
	}
	if anyBias {
		dense.Biases = make([][]float64, len(n.Layers))
	}
	for li, l := range n.Layers {
		inC, inH, inW := d[li][0], d[li][1], d[li][2]
		outH, outW := inH-l.Field+1, inW-l.Field+1
		rows := l.Filters() * outH * outW
		cols := inC * inH * inW
		m := tensor.NewMatrix(rows, cols)
		for f := 0; f < l.Filters(); f++ {
			kern := l.Kernels[f]
			for r := 0; r < outH; r++ {
				for cidx := 0; cidx < outW; cidx++ {
					row := m.Row(f*outH*outW + r*outW + cidx)
					for c := 0; c < inC; c++ {
						krow := kern.Row(c)
						for kr := 0; kr < l.Field; kr++ {
							for kc := 0; kc < l.Field; kc++ {
								row[c*inH*inW+(r+kr)*inW+(cidx+kc)] = krow[kr*l.Field+kc]
							}
						}
					}
				}
			}
		}
		dense.Hidden = append(dense.Hidden, m)
		if anyBias {
			b := make([]float64, rows)
			if l.Bias != nil {
				for f := 0; f < l.Filters(); f++ {
					for p := 0; p < outH*outW; p++ {
						b[f*outH*outW+p] = l.Bias[f]
					}
				}
			}
			dense.Biases[li] = b
		}
	}
	return dense, dense.Validate()
}

// Shape2D returns the core.Shape with w_m over receptive-field values.
func Shape2D(n *Net2D) core.Shape { return core.ShapeOfModel(n) }

// NewRandom2D builds a random 2-D conv net: layer i has filters[i]
// kernels with square field fields[i].
func NewRandom2D(r *rng.Rand, h, w int, fields, filters []int, act activation.Func, scale float64, bias bool) (*Net2D, error) {
	if len(fields) != len(filters) {
		return nil, fmt.Errorf("conv: %d fields for %d filter counts", len(fields), len(filters))
	}
	n := &Net2D{InputH: h, InputW: w, Act: act}
	inC := 1
	curH, curW := h, w
	for i := range fields {
		l := Layer2D{Field: fields[i]}
		for f := 0; f < filters[i]; f++ {
			l.Kernels = append(l.Kernels, tensor.RandomMatrix(r, inC, fields[i]*fields[i], scale))
		}
		if bias {
			l.Bias = make([]float64, filters[i])
			r.Floats(l.Bias, -scale, scale)
		}
		n.Layers = append(n.Layers, l)
		curH -= fields[i] - 1
		curW -= fields[i] - 1
		if curH < 1 || curW < 1 {
			return nil, fmt.Errorf("conv: layer %d shrinks the map below 1x1", i+1)
		}
		inC = filters[i]
	}
	n.Output = make([]float64, inC*curH*curW)
	r.Floats(n.Output, -scale, scale)
	return n, n.Validate()
}
