package conv

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/nn"
	"repro/internal/rng"
)

// TestJSONRoundTripBitIdentical saves and reloads both architectures
// and requires the reloaded model's forward outputs to be bit-identical
// to the original's — the store contract for typed conv artifacts.
func TestJSONRoundTripBitIdentical(t *testing.T) {
	n1, _ := test1D(t, 30)
	n2, _ := test2D(t, 31)
	for _, tc := range []struct {
		name  string
		model nn.Model
		dim   int
	}{
		{"1d", n1, 14},
		{"2d", n2, 49},
	} {
		t.Run(tc.name, func(t *testing.T) {
			data, err := json.Marshal(tc.model)
			if err != nil {
				t.Fatal(err)
			}
			loaded, err := ParseModel(data)
			if err != nil {
				t.Fatal(err)
			}
			if ArchOf(loaded) != ArchOf(tc.model) {
				t.Fatalf("arch %q != %q", ArchOf(loaded), ArchOf(tc.model))
			}
			r := rng.New(32)
			sc := nn.NewScratch(tc.model)
			lsc := nn.NewScratch(loaded)
			for trial := 0; trial < 20; trial++ {
				x := make([]float64, tc.dim)
				r.Floats(x, 0, 1)
				a := nn.ForwardModel(tc.model, sc, x)
				b := nn.ForwardModel(loaded, lsc, x)
				if a != b {
					t.Fatalf("trial %d: original %v != reloaded %v", trial, a, b)
				}
			}
		})
	}
}

// TestParseModelDense loads an untagged document as a dense network.
func TestParseModelDense(t *testing.T) {
	_, dense := test1D(t, 33)
	data, err := json.Marshal(dense)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ParseModel(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.(*nn.Network); !ok {
		t.Fatalf("untagged document decoded as %T", m)
	}
}

// TestParseModelRejections pins the error paths: unknown arch, unknown
// fields, geometry violations.
func TestParseModelRejections(t *testing.T) {
	for _, tc := range []struct {
		name, doc, wantErr string
	}{
		{"unknown arch", `{"arch":"conv3d"}`, "unknown model architecture"},
		{"unknown field", `{"arch":"conv1d","input_width":4,"activation":"sigmoid(K=1)","layerz":[],"output":[]}`, "unknown field"},
		{"bad geometry", `{"arch":"conv1d","input_width":2,"activation":"sigmoid(K=1)","layers":[{"kernels":[[1,2,3]]}],"output":[1]}`, "field"},
		{"not json", `]`, "model document"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseModel([]byte(tc.doc))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}
