package conv

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/activation"
	"repro/internal/fault"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Net and Net2D implement nn.Model natively: the forward kernels below
// evaluate the convolution directly — R(l) multiplies per neuron
// instead of the N_{l-1} a lowered dense row costs — while replaying
// the dense accumulation order (tensor.ConvAcc), so every result is
// bit-identical to evaluating Lower/Lower2D's network. That identity is
// what the equivalence tests pin and what lets the fault engine, the
// bounds and the service treat conv and dense models uniformly.

// ---- 1-D ----------------------------------------------------------------

// widthAt returns the flattened width after layer l (0 = the input).
func (n *Net) widthAt(l int) int {
	w := n.InputWidth
	for i := 0; i < l; i++ {
		w = n.Layers[i].OutWidth(w)
	}
	return w
}

// NumLayers returns L.
func (n *Net) NumLayers() int { return len(n.Layers) }

// Width returns the flattened width of layer l (0 = input, L+1 = the
// output node).
func (n *Net) Width(l int) int {
	L := len(n.Layers)
	switch {
	case l == 0:
		return n.InputWidth
	case l >= 1 && l <= L:
		return n.widthAt(l)
	case l == L+1:
		return 1
	}
	panic(fmt.Sprintf("conv: Width(%d) out of range for %d layers", l, L))
}

// MaxWeight returns w_m^{(l)} over the R(l) distinct kernel values
// (l = L+1 selects the output synapses). It equals the lowered dense
// network's maximum — zeros outside the receptive field never attain
// it — which is Section VI's observation: the constraint runs over R(l)
// values instead of N_l x N_{l-1}.
func (n *Net) MaxWeight(l int) float64 {
	if l == len(n.Layers)+1 {
		return tensor.MaxAbs(n.Output)
	}
	return n.Layers[l-1].MaxWeight()
}

// Activation returns ϕ.
func (n *Net) Activation() activation.Func { return n.Act }

// anyBias reports whether any layer carries biases — the lowered dense
// network then materialises a (possibly zero) bias vector for EVERY
// layer, whose additions the native kernels must replay for bit
// identity.
func (n *Net) anyBias() bool { return hasBias(n) }

// LayerSums computes the pre-activation sums of layer l natively. skip
// is accepted per the Model contract but not exploited: a conv neuron
// costs only R(l) multiplies, so segmenting around overridden rows
// saves less than it complicates.
func (n *Net) LayerSums(l int, dst, y []float64, _ []int) {
	lay := n.Layers[l-1]
	field := lay.Field()
	positions := len(y) - field + 1
	addBias := n.anyBias()
	acc := tensor.NewConvAcc(len(y))
	for f := 0; f < lay.Filters(); f++ {
		kernel := lay.Kernels.Row(f)
		bias := 0.0
		if lay.Bias != nil {
			bias = lay.Bias[f]
		}
		base := f * positions
		for p := 0; p < positions; p++ {
			acc.Reset()
			acc.Add(kernel, y, p)
			s := acc.Sum()
			if addBias {
				s += bias
			}
			dst[base+p] = s
		}
	}
}

// LayerSums2 is the fused two-input sweep.
func (n *Net) LayerSums2(l int, dst1, y1, dst2, y2 []float64) {
	lay := n.Layers[l-1]
	field := lay.Field()
	positions := len(y1) - field + 1
	addBias := n.anyBias()
	acc := tensor.NewConvAcc2(len(y1))
	for f := 0; f < lay.Filters(); f++ {
		kernel := lay.Kernels.Row(f)
		bias := 0.0
		if lay.Bias != nil {
			bias = lay.Bias[f]
		}
		base := f * positions
		for p := 0; p < positions; p++ {
			acc.Reset()
			acc.Add(kernel, y1, y2, p)
			s1, s2 := acc.Sums()
			if addBias {
				s1 += bias
				s2 += bias
			}
			dst1[base+p] = s1
			dst2[base+p] = s2
		}
	}
}

// Weight returns the virtual dense synapse weight into neuron `to` of
// layer l from neuron `from` of layer l-1: the shared kernel value when
// `from` falls inside `to`'s receptive field, 0 outside.
func (n *Net) Weight(l, to, from int) float64 {
	if l == len(n.Layers)+1 {
		return n.Output[from]
	}
	lay := n.Layers[l-1]
	positions := n.widthAt(l-1) - lay.Field() + 1
	f, p := to/positions, to%positions
	i := from - p
	if i < 0 || i >= lay.Field() {
		return 0
	}
	return lay.Kernels.At(f, i)
}

// OutputSum evaluates the linear output node. The lowered network's
// output bias is always zero; adding the literal 0.0 replays its
// arithmetic exactly.
func (n *Net) OutputSum(y []float64) float64 {
	return tensor.Dot(n.Output, y) + 0.0
}

// ForwardInto evaluates the net on sc's buffers: zero steady-state
// allocations, bit-identical to the lowered dense network's ForwardInto
// (NOT to the naive Forward, whose sequential accumulation orders
// floating-point additions differently).
func (n *Net) ForwardInto(sc *nn.Scratch, x []float64) float64 {
	return nn.ForwardModel(n, sc, x)
}

// OutgoingWeight implements fault.OutgoingScorer: the largest |w| a
// neuron feeds forward through, read off the kernel structure in O(R)
// instead of scanning the virtual dense row. Neuron idx of layer l is
// column idx of the next layer's virtual rows: kernel value i of any
// filter reaches it from receiving position idx-i, valid while
// 0 <= idx-i < positions'.
func (n *Net) OutgoingWeight(l, idx int) float64 {
	if l == len(n.Layers) {
		return math.Abs(n.Output[idx])
	}
	lay := n.Layers[l] // synapses into layer l+1
	positions := n.widthAt(l) - lay.Field() + 1
	best := 0.0
	for f := 0; f < lay.Filters(); f++ {
		for i, w := range lay.Kernels.Row(f) {
			if recv := idx - i; recv < 0 || recv >= positions {
				continue
			}
			if a := math.Abs(w); a > best {
				best = a
			}
		}
	}
	return best
}

// OutgoingWeight implements fault.OutgoingScorer for the 2-D net:
// neuron idx of layer l sits at channel ch, row ir, column iw of the
// next layer's input volume; kernel value (kr, kc) of any filter
// reaches it from receiving position (ir-kr, iw-kc), valid while
// inside the output map.
func (n *Net2D) OutgoingWeight(l, idx int) float64 {
	if l == len(n.Layers) {
		return math.Abs(n.Output[idx])
	}
	lay := n.Layers[l] // synapses into layer l+1
	_, inH, inW := n.dimAt(l)
	field := lay.Field
	outH, outW := inH-field+1, inW-field+1
	ch := idx / (inH * inW)
	ir := (idx % (inH * inW)) / inW
	iw := idx % inW
	best := 0.0
	for _, kern := range lay.Kernels {
		krow := kern.Row(ch)
		for kr := 0; kr < field; kr++ {
			if r := ir - kr; r < 0 || r >= outH {
				continue
			}
			for kc := 0; kc < field; kc++ {
				if c := iw - kc; c < 0 || c >= outW {
					continue
				}
				if a := math.Abs(krow[kr*field+kc]); a > best {
					best = a
				}
			}
		}
	}
	return best
}

// ---- 2-D ----------------------------------------------------------------

// dimAt returns (channels, height, width) after layer l (0 = input).
func (n *Net2D) dimAt(l int) (c, h, w int) {
	c, h, w = 1, n.InputH, n.InputW
	for i := 0; i < l; i++ {
		c = n.Layers[i].Filters()
		h -= n.Layers[i].Field - 1
		w -= n.Layers[i].Field - 1
	}
	return c, h, w
}

// NumLayers returns L.
func (n *Net2D) NumLayers() int { return len(n.Layers) }

// Width returns the flattened volume of layer l (0 = input, L+1 = the
// output node).
func (n *Net2D) Width(l int) int {
	L := len(n.Layers)
	switch {
	case l >= 0 && l <= L:
		c, h, w := n.dimAt(l)
		return c * h * w
	case l == L+1:
		return 1
	}
	panic(fmt.Sprintf("conv: Width(%d) out of range for %d layers", l, L))
}

// MaxWeight returns w_m^{(l)} over the R(l) = InChannels·Field² distinct
// kernel values (l = L+1 selects the output synapses).
func (n *Net2D) MaxWeight(l int) float64 {
	if l == len(n.Layers)+1 {
		return tensor.MaxAbs(n.Output)
	}
	return n.Layers[l-1].MaxWeight()
}

// Activation returns ϕ.
func (n *Net2D) Activation() activation.Func { return n.Act }

func (n *Net2D) anyBias() bool {
	for _, l := range n.Layers {
		if l.Bias != nil {
			return true
		}
	}
	return false
}

// LayerSums computes the pre-activation sums of layer l natively: each
// output position accumulates its InChannels·Field window rows as
// ascending segments of the virtual dense row.
func (n *Net2D) LayerSums(l int, dst, y []float64, _ []int) {
	inC, inH, inW := n.dimAt(l - 1)
	lay := n.Layers[l-1]
	field := lay.Field
	outH, outW := inH-field+1, inW-field+1
	addBias := n.anyBias()
	acc := tensor.NewConvAcc(inC * inH * inW)
	for f := 0; f < lay.Filters(); f++ {
		kern := lay.Kernels[f]
		bias := 0.0
		if lay.Bias != nil {
			bias = lay.Bias[f]
		}
		base := f * outH * outW
		for r := 0; r < outH; r++ {
			for cx := 0; cx < outW; cx++ {
				acc.Reset()
				for c := 0; c < inC; c++ {
					krow := kern.Row(c)
					for kr := 0; kr < field; kr++ {
						acc.Add(krow[kr*field:(kr+1)*field], y, c*inH*inW+(r+kr)*inW+cx)
					}
				}
				s := acc.Sum()
				if addBias {
					s += bias
				}
				dst[base+r*outW+cx] = s
			}
		}
	}
}

// LayerSums2 is the fused two-input sweep.
func (n *Net2D) LayerSums2(l int, dst1, y1, dst2, y2 []float64) {
	inC, inH, inW := n.dimAt(l - 1)
	lay := n.Layers[l-1]
	field := lay.Field
	outH, outW := inH-field+1, inW-field+1
	addBias := n.anyBias()
	acc := tensor.NewConvAcc2(inC * inH * inW)
	for f := 0; f < lay.Filters(); f++ {
		kern := lay.Kernels[f]
		bias := 0.0
		if lay.Bias != nil {
			bias = lay.Bias[f]
		}
		base := f * outH * outW
		for r := 0; r < outH; r++ {
			for cx := 0; cx < outW; cx++ {
				acc.Reset()
				for c := 0; c < inC; c++ {
					krow := kern.Row(c)
					for kr := 0; kr < field; kr++ {
						acc.Add(krow[kr*field:(kr+1)*field], y1, y2, c*inH*inW+(r+kr)*inW+cx)
					}
				}
				s1, s2 := acc.Sums()
				if addBias {
					s1 += bias
					s2 += bias
				}
				dst1[base+r*outW+cx] = s1
				dst2[base+r*outW+cx] = s2
			}
		}
	}
}

// Weight returns the virtual dense synapse weight into neuron `to` of
// layer l from neuron `from` of layer l-1.
func (n *Net2D) Weight(l, to, from int) float64 {
	if l == len(n.Layers)+1 {
		return n.Output[from]
	}
	inC, inH, inW := n.dimAt(l - 1)
	lay := n.Layers[l-1]
	field := lay.Field
	outH, outW := inH-field+1, inW-field+1
	f := to / (outH * outW)
	r := (to % (outH * outW)) / outW
	cx := to % outW
	c := from / (inH * inW)
	ir := (from % (inH * inW)) / inW
	iw := from % inW
	kr, kc := ir-r, iw-cx
	if c < 0 || c >= inC || kr < 0 || kr >= field || kc < 0 || kc >= field {
		return 0
	}
	return lay.Kernels[f].At(c, kr*field+kc)
}

// OutputSum evaluates the linear output node (see Net.OutputSum).
func (n *Net2D) OutputSum(y []float64) float64 {
	return tensor.Dot(n.Output, y) + 0.0
}

// ForwardInto evaluates the net on sc's buffers: zero steady-state
// allocations, bit-identical to the lowered dense network's ForwardInto
// (see Net.ForwardInto on the accumulation-order caveat vs Forward).
func (n *Net2D) ForwardInto(sc *nn.Scratch, x []float64) float64 {
	return nn.ForwardModel(n, sc, x)
}

// ---- shared-weight (kernel) faults --------------------------------------

// KernelFault addresses one shared kernel value of a 1-D conv layer:
// Index runs over the Field positions of filter Filter in layer Layer.
// A fault on a shared value is a fault on EVERY synapse instance tied to
// it — the sparse plan representation expands it to the W tied
// per-position instances, which the native engine then injects without
// ever materialising the lowered matrix.
type KernelFault struct {
	Layer, Filter, Index int
}

// KernelSynapses appends the tied synapse instances of kf to dst. It
// panics on out-of-range coordinates (the plan-constructor convention):
// a silently mis-addressed shared weight would expand to synapses the
// kernel does not own and report a meaningless robustness result.
func (n *Net) KernelSynapses(kf KernelFault, dst []fault.SynapseFault) []fault.SynapseFault {
	if kf.Layer < 1 || kf.Layer > len(n.Layers) {
		panic(fmt.Sprintf("conv: kernel fault layer %d outside 1..%d", kf.Layer, len(n.Layers)))
	}
	lay := n.Layers[kf.Layer-1]
	if kf.Filter < 0 || kf.Filter >= lay.Filters() {
		panic(fmt.Sprintf("conv: kernel fault filter %d outside 0..%d", kf.Filter, lay.Filters()-1))
	}
	if kf.Index < 0 || kf.Index >= lay.Field() {
		panic(fmt.Sprintf("conv: kernel fault index %d outside 0..%d", kf.Index, lay.Field()-1))
	}
	positions := n.widthAt(kf.Layer-1) - lay.Field() + 1
	for p := 0; p < positions; p++ {
		dst = append(dst, fault.SynapseFault{
			Layer: kf.Layer,
			To:    kf.Filter*positions + p,
			From:  p + kf.Index,
		})
	}
	return dst
}

// KernelPlan expands shared kernel-value faults into a fault.Plan over
// the tied synapse instances.
func (n *Net) KernelPlan(kfs ...KernelFault) fault.Plan {
	var p fault.Plan
	for _, kf := range kfs {
		p.Synapses = n.KernelSynapses(kf, p.Synapses)
	}
	return p
}

// kernelCand scores one shared kernel value for the adversary: its
// magnitude and the expansion of its tied synapse instances.
type kernelCand struct {
	w      float64
	expand func(dst []fault.SynapseFault) []fault.SynapseFault
}

// takeTopKernels expands the k largest-magnitude candidates into p —
// the shared tail of both AdversarialKernelPlan variants.
func takeTopKernels(p *fault.Plan, all []kernelCand, k int) {
	sort.Slice(all, func(a, b int) bool { return all[a].w > all[b].w })
	if k > len(all) {
		panic("conv: more kernel faults than kernel values in layer")
	}
	for _, c := range all[:k] {
		p.Synapses = c.expand(p.Synapses)
	}
}

// AdversarialKernelPlan fails, in each layer, the perLayer[l-1]
// largest-magnitude shared kernel values — the heaviest-weights
// adversary of the tightness arguments lifted to the shared-weight
// setting, where one fault simultaneously hits every tied synapse
// instance.
func (n *Net) AdversarialKernelPlan(perLayer []int) fault.Plan {
	if len(perLayer) != len(n.Layers) {
		panic("conv: perLayer length must equal the number of layers")
	}
	var p fault.Plan
	for l := 1; l <= len(n.Layers); l++ {
		lay := n.Layers[l-1]
		var all []kernelCand
		for f := 0; f < lay.Filters(); f++ {
			for i := 0; i < lay.Field(); i++ {
				kf := KernelFault{Layer: l, Filter: f, Index: i}
				all = append(all, kernelCand{
					w:      math.Abs(lay.Kernels.At(f, i)),
					expand: func(dst []fault.SynapseFault) []fault.SynapseFault { return n.KernelSynapses(kf, dst) },
				})
			}
		}
		takeTopKernels(&p, all, perLayer[l-1])
	}
	return p
}

// KernelFault2D addresses one shared kernel value of a 2-D conv layer:
// channel Channel, window row Row and column Col of filter Filter.
type KernelFault2D struct {
	Layer, Filter, Channel, Row, Col int
}

// KernelSynapses appends the tied synapse instances of kf to dst,
// panicking on out-of-range coordinates (see Net.KernelSynapses).
func (n *Net2D) KernelSynapses(kf KernelFault2D, dst []fault.SynapseFault) []fault.SynapseFault {
	if kf.Layer < 1 || kf.Layer > len(n.Layers) {
		panic(fmt.Sprintf("conv: kernel fault layer %d outside 1..%d", kf.Layer, len(n.Layers)))
	}
	lay := n.Layers[kf.Layer-1]
	inC, inH, inW := n.dimAt(kf.Layer - 1)
	field := lay.Field
	if kf.Filter < 0 || kf.Filter >= lay.Filters() {
		panic(fmt.Sprintf("conv: kernel fault filter %d outside 0..%d", kf.Filter, lay.Filters()-1))
	}
	if kf.Channel < 0 || kf.Channel >= inC {
		panic(fmt.Sprintf("conv: kernel fault channel %d outside 0..%d", kf.Channel, inC-1))
	}
	if kf.Row < 0 || kf.Row >= field || kf.Col < 0 || kf.Col >= field {
		panic(fmt.Sprintf("conv: kernel fault window (%d,%d) outside %dx%d", kf.Row, kf.Col, field, field))
	}
	outH, outW := inH-field+1, inW-field+1
	for r := 0; r < outH; r++ {
		for cx := 0; cx < outW; cx++ {
			dst = append(dst, fault.SynapseFault{
				Layer: kf.Layer,
				To:    kf.Filter*outH*outW + r*outW + cx,
				From:  kf.Channel*inH*inW + (r+kf.Row)*inW + (cx + kf.Col),
			})
		}
	}
	return dst
}

// KernelPlan expands shared kernel-value faults into a fault.Plan over
// the tied synapse instances.
func (n *Net2D) KernelPlan(kfs ...KernelFault2D) fault.Plan {
	var p fault.Plan
	for _, kf := range kfs {
		p.Synapses = n.KernelSynapses(kf, p.Synapses)
	}
	return p
}

// AdversarialKernelPlan fails the perLayer[l-1] largest-magnitude
// shared kernel values of each layer (see Net.AdversarialKernelPlan).
func (n *Net2D) AdversarialKernelPlan(perLayer []int) fault.Plan {
	if len(perLayer) != len(n.Layers) {
		panic("conv: perLayer length must equal the number of layers")
	}
	var p fault.Plan
	for l := 1; l <= len(n.Layers); l++ {
		lay := n.Layers[l-1]
		var all []kernelCand
		for f, k := range lay.Kernels {
			for c := 0; c < k.Rows; c++ {
				for kr := 0; kr < lay.Field; kr++ {
					for kc := 0; kc < lay.Field; kc++ {
						kf := KernelFault2D{Layer: l, Filter: f, Channel: c, Row: kr, Col: kc}
						all = append(all, kernelCand{
							w:      math.Abs(k.At(c, kr*lay.Field+kc)),
							expand: func(dst []fault.SynapseFault) []fault.SynapseFault { return n.KernelSynapses(kf, dst) },
						})
					}
				}
			}
		}
		takeTopKernels(&p, all, perLayer[l-1])
	}
	return p
}
