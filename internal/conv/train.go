package conv

import (
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Grads mirrors a conv net's parameters: per-layer kernel and bias
// gradients plus the output weights'.
type Grads struct {
	Kernels []*tensor.Matrix
	Bias    [][]float64
	Output  []float64
}

// NewGrads allocates zeroed gradients shaped like n.
func NewGrads(n *Net) *Grads {
	g := &Grads{
		Kernels: make([]*tensor.Matrix, len(n.Layers)),
		Bias:    make([][]float64, len(n.Layers)),
		Output:  make([]float64, len(n.Output)),
	}
	for i, l := range n.Layers {
		g.Kernels[i] = tensor.NewMatrix(l.Filters(), l.Field())
		if l.Bias != nil {
			g.Bias[i] = make([]float64, l.Filters())
		}
	}
	return g
}

// Zero clears the gradients in place.
func (g *Grads) Zero() {
	for _, k := range g.Kernels {
		tensor.Fill(k.Data, 0)
	}
	for _, b := range g.Bias {
		if b != nil {
			tensor.Fill(b, 0)
		}
	}
	tensor.Fill(g.Output, 0)
}

// Backprop accumulates the gradient of 0.5(out-y)^2 for one example into
// g, with weight sharing handled natively: each kernel value receives the
// summed gradient over every position it is tied to. Returns the squared
// error.
func Backprop(n *Net, x []float64, y float64, g *Grads) float64 {
	L := len(n.Layers)
	// Forward with caches.
	sums := make([][]float64, L)
	outs := make([][]float64, L)
	widths := make([]int, L+1)
	widths[0] = n.InputWidth
	cur := x
	for li, l := range n.Layers {
		positions := len(cur) - l.Field() + 1
		s := make([]float64, l.Filters()*positions)
		for f := 0; f < l.Filters(); f++ {
			kernel := l.Kernels.Row(f)
			for p := 0; p < positions; p++ {
				acc := 0.0
				for i, w := range kernel {
					acc += w * cur[p+i]
				}
				if l.Bias != nil {
					acc += l.Bias[f]
				}
				s[f*positions+p] = acc
			}
		}
		sums[li] = s
		o := make([]float64, len(s))
		for j := range s {
			o[j] = n.Act.Eval(s[j])
		}
		outs[li] = o
		widths[li+1] = len(o)
		cur = o
	}
	out := 0.0
	for i, w := range n.Output {
		out += w * cur[i]
	}
	diff := out - y

	// Output gradient and last-layer delta (w.r.t. sums).
	tensor.Axpy(diff, cur, g.Output)
	delta := make([]float64, len(cur))
	for j := range delta {
		delta[j] = diff * n.Output[j] * n.Act.Deriv(sums[L-1][j])
	}

	for li := L - 1; li >= 0; li-- {
		l := n.Layers[li]
		prev := x
		if li > 0 {
			prev = outs[li-1]
		}
		positions := len(prev) - l.Field() + 1
		// Tied kernel gradients: sum over positions.
		for f := 0; f < l.Filters(); f++ {
			kRow := g.Kernels[li].Row(f)
			for p := 0; p < positions; p++ {
				d := delta[f*positions+p]
				if d == 0 {
					continue
				}
				for i := range kRow {
					kRow[i] += d * prev[p+i]
				}
				if g.Bias[li] != nil {
					g.Bias[li][f] += d
				}
			}
		}
		if li == 0 {
			break
		}
		// Delta for the previous layer's outputs, then through ϕ'.
		prevDelta := make([]float64, len(prev))
		for f := 0; f < l.Filters(); f++ {
			kernel := l.Kernels.Row(f)
			for p := 0; p < positions; p++ {
				d := delta[f*positions+p]
				if d == 0 {
					continue
				}
				for i, w := range kernel {
					prevDelta[p+i] += w * d
				}
			}
		}
		for j := range prevDelta {
			prevDelta[j] *= n.Act.Deriv(sums[li-1][j])
		}
		delta = prevDelta
	}
	return diff * diff
}

// TrainConfig controls conv SGD.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Seed      uint64
}

// Train runs minibatch SGD on the conv net (mutated in place) against a
// supervised sample and returns the final MSE. Weight sharing is
// preserved exactly: kernels move by their tied gradients.
func Train(n *Net, xs [][]float64, ys []float64, cfg TrainConfig) float64 {
	if len(xs) == 0 || len(xs) != len(ys) {
		panic("conv: bad dataset")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.LR <= 0 {
		cfg.LR = 0.1
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 100
	}
	r := rng.New(cfg.Seed + 0x51ed270b)
	g := NewGrads(n)
	order := make([]int, len(xs))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			g.Zero()
			for _, idx := range order[start:end] {
				Backprop(n, xs[idx], ys[idx], g)
			}
			scale := cfg.LR / float64(end-start)
			for li := range n.Layers {
				tensor.Axpy(-scale, g.Kernels[li].Data, n.Layers[li].Kernels.Data)
				if n.Layers[li].Bias != nil && g.Bias[li] != nil {
					tensor.Axpy(-scale, g.Bias[li], n.Layers[li].Bias)
				}
			}
			tensor.Axpy(-scale, g.Output, n.Output)
		}
	}
	mse := 0.0
	for i, x := range xs {
		d := n.Forward(x) - ys[i]
		mse += d * d
	}
	return mse / float64(len(xs))
}
