package conv_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/activation"
	"repro/internal/conv"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/rng"
)

// FuzzParseModel hammers the single entry point every wire format
// flows through (store, service, CLI): arbitrary bytes must either
// parse into a valid model or return an error — never panic — and an
// accepted document must re-marshal to a document that parses back to
// the same architecture with a stable encoding.
func FuzzParseModel(f *testing.F) {
	r := rng.New(99)
	if n, err := conv.NewRandom(r.Split(), 8, []int{3}, []int{2}, activation.NewSigmoid(1), 0.5, true); err == nil {
		if doc, err := json.Marshal(n); err == nil {
			f.Add(doc)
		}
	}
	if n, err := conv.NewRandom2D(r.Split(), 4, 4, []int{2}, []int{2}, activation.NewTanh(1), 0.5, false); err == nil {
		if doc, err := json.Marshal(n); err == nil {
			f.Add(doc)
		}
	}
	dense := nn.NewRandom(r.Split(), nn.Config{InputDim: 2, Widths: []int{3, 2}, Act: activation.NewSigmoid(1), Bias: true}, 0.5)
	if doc, err := json.Marshal(dense); err == nil {
		f.Add(doc)
	}
	g := graph.NewSmallWorld(r.Split(), 2, []int{4, 3}, activation.NewHardSigmoid(1), 2, 0.5)
	if doc, err := json.Marshal(g); err == nil {
		f.Add(doc)
	}
	f.Add([]byte(`{"arch":"conv1d"}`))
	f.Add([]byte(`{"arch":"graph","input_dim":1}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := conv.ParseModel(data)
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("ParseModel accepted an invalid model: %v", err)
		}
		doc, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("accepted model failed to marshal: %v", err)
		}
		m2, err := conv.ParseModel(doc)
		if err != nil {
			t.Fatalf("re-marshalled document rejected: %v", err)
		}
		if conv.ArchOf(m2) != conv.ArchOf(m) {
			t.Fatalf("round trip changed architecture %q -> %q", conv.ArchOf(m), conv.ArchOf(m2))
		}
		doc2, err := json.Marshal(m2)
		if err != nil {
			t.Fatalf("round-tripped model failed to marshal: %v", err)
		}
		if !bytes.Equal(doc, doc2) {
			t.Fatalf("encoding not stable:\n%s\n%s", doc, doc2)
		}
	})
}
