package conv

import (
	"math"
	"testing"

	"repro/internal/activation"
	"repro/internal/rng"
)

func TestConvBackpropMatchesNumericGradient(t *testing.T) {
	r := rng.New(61)
	n, err := NewRandom(r, 8, []int{3, 2}, []int{2, 2}, activation.NewSigmoid(1), 0.7, true)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 8)
	r.Floats(x, 0, 1)
	y := 0.3

	g := NewGrads(n)
	Backprop(n, x, y, g)

	loss := func() float64 {
		d := n.Forward(x) - y
		return 0.5 * d * d
	}
	const h = 1e-6
	check := func(name string, param, grad []float64) {
		t.Helper()
		for i := range param {
			orig := param[i]
			param[i] = orig + h
			up := loss()
			param[i] = orig - h
			down := loss()
			param[i] = orig
			numeric := (up - down) / (2 * h)
			if math.Abs(numeric-grad[i]) > 1e-5*(math.Abs(numeric)+1) {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", name, i, grad[i], numeric)
			}
		}
	}
	for li := range n.Layers {
		check("kernel", n.Layers[li].Kernels.Data, g.Kernels[li].Data)
		check("bias", n.Layers[li].Bias, g.Bias[li])
	}
	check("output", n.Output, g.Output)
}

// convTarget1D is a synthetic shift-invariant detection task: the label
// is high when the input signal contains an up-down edge anywhere — the
// kind of task weight sharing is built for.
func convTarget1D(x []float64) float64 {
	best := 0.0
	for i := 0; i+2 < len(x); i++ {
		v := x[i+1] - (x[i]+x[i+2])/2
		if v > best {
			best = v
		}
	}
	return best
}

func TestConvTrainingReducesLoss(t *testing.T) {
	r := rng.New(63)
	n, err := NewRandom(r, 10, []int{3}, []int{3}, activation.NewSigmoid(1), 0.5, true)
	if err != nil {
		t.Fatal(err)
	}
	const samples = 200
	xs := make([][]float64, samples)
	ys := make([]float64, samples)
	for i := range xs {
		xs[i] = make([]float64, 10)
		r.Floats(xs[i], 0, 1)
		ys[i] = convTarget1D(xs[i])
	}
	before := 0.0
	for i := range xs {
		d := n.Forward(xs[i]) - ys[i]
		before += d * d
	}
	before /= samples
	after := Train(n, xs, ys, TrainConfig{Epochs: 400, LR: 0.3, Seed: 63})
	if after >= before {
		t.Fatalf("conv training did not reduce loss: %v -> %v", before, after)
	}
	if after > 0.01 {
		t.Fatalf("conv fit too poor: MSE %v", after)
	}
}

func TestConvTrainingPreservesSharing(t *testing.T) {
	// After training, lowering must still agree with the direct conv
	// forward — i.e. the update respected the tied structure.
	r := rng.New(65)
	n, err := NewRandom(r, 8, []int{3}, []int{2}, activation.NewSigmoid(1), 0.5, false)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([][]float64, 50)
	ys := make([]float64, 50)
	for i := range xs {
		xs[i] = make([]float64, 8)
		r.Floats(xs[i], 0, 1)
		ys[i] = convTarget1D(xs[i])
	}
	Train(n, xs, ys, TrainConfig{Epochs: 20, LR: 0.2, Seed: 65})
	dense, err := Lower(n)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range xs[:10] {
		if math.Abs(n.Forward(x)-dense.Forward(x)) > 1e-12 {
			t.Fatal("training broke the shared-weight structure")
		}
	}
}

func TestConvTrainPanicsOnBadDataset(t *testing.T) {
	r := rng.New(67)
	n, _ := NewRandom(r, 8, []int{3}, []int{2}, activation.NewSigmoid(1), 0.5, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Train(n, nil, nil, TrainConfig{})
}
