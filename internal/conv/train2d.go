package conv

import (
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Grads2D mirrors a 2-D conv net's parameters: per-layer, per-filter
// kernel gradients (InChannels x Field² like the kernels), per-filter
// bias gradients, and the output weights'.
type Grads2D struct {
	Kernels [][]*tensor.Matrix
	Bias    [][]float64
	Output  []float64
}

// NewGrads2D allocates zeroed gradients shaped like n.
func NewGrads2D(n *Net2D) *Grads2D {
	g := &Grads2D{
		Kernels: make([][]*tensor.Matrix, len(n.Layers)),
		Bias:    make([][]float64, len(n.Layers)),
		Output:  make([]float64, len(n.Output)),
	}
	for i, l := range n.Layers {
		g.Kernels[i] = make([]*tensor.Matrix, l.Filters())
		for f := range g.Kernels[i] {
			g.Kernels[i][f] = tensor.NewMatrix(l.InChannels(), l.Field*l.Field)
		}
		if l.Bias != nil {
			g.Bias[i] = make([]float64, l.Filters())
		}
	}
	return g
}

// Zero clears the gradients in place.
func (g *Grads2D) Zero() {
	for _, ks := range g.Kernels {
		for _, k := range ks {
			tensor.Fill(k.Data, 0)
		}
	}
	for _, b := range g.Bias {
		if b != nil {
			tensor.Fill(b, 0)
		}
	}
	tensor.Fill(g.Output, 0)
}

// Backprop2D accumulates the gradient of 0.5(out-y)² for one example
// into g, with weight sharing handled natively: each kernel value
// receives the summed gradient over every position it is tied to.
// Returns the squared error.
func Backprop2D(n *Net2D, x []float64, y float64, g *Grads2D) float64 {
	L := len(n.Layers)
	d := n.dims()
	// Forward with caches.
	sums := make([][]float64, L)
	outs := make([][]float64, L)
	cur := x
	for li, l := range n.Layers {
		inC, inH, inW := d[li][0], d[li][1], d[li][2]
		outH, outW := inH-l.Field+1, inW-l.Field+1
		s := make([]float64, l.Filters()*outH*outW)
		for f := 0; f < l.Filters(); f++ {
			kern := l.Kernels[f]
			for r := 0; r < outH; r++ {
				for c := 0; c < outW; c++ {
					acc := 0.0
					for ch := 0; ch < inC; ch++ {
						krow := kern.Row(ch)
						for kr := 0; kr < l.Field; kr++ {
							for kc := 0; kc < l.Field; kc++ {
								acc += krow[kr*l.Field+kc] * cur[ch*inH*inW+(r+kr)*inW+(c+kc)]
							}
						}
					}
					if l.Bias != nil {
						acc += l.Bias[f]
					}
					s[f*outH*outW+r*outW+c] = acc
				}
			}
		}
		sums[li] = s
		o := make([]float64, len(s))
		for j := range s {
			o[j] = n.Act.Eval(s[j])
		}
		outs[li] = o
		cur = o
	}
	out := 0.0
	for i, w := range n.Output {
		out += w * cur[i]
	}
	diff := out - y

	// Output gradient and last-layer delta (w.r.t. sums).
	tensor.Axpy(diff, cur, g.Output)
	delta := make([]float64, len(cur))
	for j := range delta {
		delta[j] = diff * n.Output[j] * n.Act.Deriv(sums[L-1][j])
	}

	for li := L - 1; li >= 0; li-- {
		l := n.Layers[li]
		inC, inH, inW := d[li][0], d[li][1], d[li][2]
		outH, outW := inH-l.Field+1, inW-l.Field+1
		prev := x
		if li > 0 {
			prev = outs[li-1]
		}
		// Tied kernel gradients: sum over positions.
		for f := 0; f < l.Filters(); f++ {
			gk := g.Kernels[li][f]
			for r := 0; r < outH; r++ {
				for c := 0; c < outW; c++ {
					dl := delta[f*outH*outW+r*outW+c]
					if dl == 0 {
						continue
					}
					for ch := 0; ch < inC; ch++ {
						gRow := gk.Row(ch)
						for kr := 0; kr < l.Field; kr++ {
							for kc := 0; kc < l.Field; kc++ {
								gRow[kr*l.Field+kc] += dl * prev[ch*inH*inW+(r+kr)*inW+(c+kc)]
							}
						}
					}
					if g.Bias[li] != nil {
						g.Bias[li][f] += dl
					}
				}
			}
		}
		if li == 0 {
			break
		}
		// Delta for the previous layer's outputs, then through ϕ'.
		prevDelta := make([]float64, len(prev))
		for f := 0; f < l.Filters(); f++ {
			kern := l.Kernels[f]
			for r := 0; r < outH; r++ {
				for c := 0; c < outW; c++ {
					dl := delta[f*outH*outW+r*outW+c]
					if dl == 0 {
						continue
					}
					for ch := 0; ch < inC; ch++ {
						krow := kern.Row(ch)
						for kr := 0; kr < l.Field; kr++ {
							for kc := 0; kc < l.Field; kc++ {
								prevDelta[ch*inH*inW+(r+kr)*inW+(c+kc)] += krow[kr*l.Field+kc] * dl
							}
						}
					}
				}
			}
		}
		for j := range prevDelta {
			prevDelta[j] *= n.Act.Deriv(sums[li-1][j])
		}
		delta = prevDelta
	}
	return diff * diff
}

// Train2D runs minibatch SGD on the 2-D conv net (mutated in place)
// against a supervised sample and returns the final MSE. Weight sharing
// is preserved exactly: kernels move by their tied gradients.
func Train2D(n *Net2D, xs [][]float64, ys []float64, cfg TrainConfig) float64 {
	if len(xs) == 0 || len(xs) != len(ys) {
		panic("conv: bad dataset")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.LR <= 0 {
		cfg.LR = 0.1
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 100
	}
	r := rng.New(cfg.Seed + 0x2dc0ffee)
	g := NewGrads2D(n)
	order := make([]int, len(xs))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			g.Zero()
			for _, idx := range order[start:end] {
				Backprop2D(n, xs[idx], ys[idx], g)
			}
			scale := cfg.LR / float64(end-start)
			for li := range n.Layers {
				for f := range n.Layers[li].Kernels {
					tensor.Axpy(-scale, g.Kernels[li][f].Data, n.Layers[li].Kernels[f].Data)
				}
				if n.Layers[li].Bias != nil && g.Bias[li] != nil {
					tensor.Axpy(-scale, g.Bias[li], n.Layers[li].Bias)
				}
			}
			tensor.Axpy(-scale, g.Output, n.Output)
		}
	}
	mse := 0.0
	for i, x := range xs {
		d := n.Forward(x) - ys[i]
		mse += d * d
	}
	return mse / float64(len(xs))
}
