// Package conv implements the convolutional extension of Section VI: a
// 1-D convolutional feed-forward network with limited receptive fields
// R(l) and weight sharing. Each conv layer is lowered to the equivalent
// dense layer (zeros outside the receptive field, tied values inside), so
// the paper's theorems apply verbatim — and w_m^{(l)} runs over only the
// R(l) distinct kernel values, which is the source of the "less
// restrictive bounds" the paper points out.
package conv

import (
	"fmt"
	"math"

	"repro/internal/activation"
	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Layer is one 1-D convolutional layer: Filters kernels of length Field
// slid with stride 1 over the input (valid padding). The layer maps an
// input vector of width W to Filters·(W-Field+1) outputs, filter-major.
type Layer struct {
	// Kernels is Filters x Field: row f holds filter f's shared weights.
	Kernels *tensor.Matrix
	// Bias, when non-nil, holds one bias per filter (shared across
	// positions, the usual convolutional convention).
	Bias []float64
}

// Filters returns the number of kernels.
func (l Layer) Filters() int { return l.Kernels.Rows }

// Field returns R(l), the receptive field size.
func (l Layer) Field() int { return l.Kernels.Cols }

// OutWidth returns the layer's output width for the given input width.
func (l Layer) OutWidth(inWidth int) int {
	return l.Filters() * (inWidth - l.Field() + 1)
}

// MaxWeight returns the max |w| over the R(l) kernel values: the
// receptive-field w_m^{(l)} of Section VI. Biases are excluded, matching
// the dense convention (nn.Network.MaxWeight): they are weights to
// constant neurons, which never fail, so they carry no deviation — and
// excluding them keeps the conv shape exactly equal to the lowered
// dense network's.
func (l Layer) MaxWeight() float64 {
	return l.Kernels.MaxAbs()
}

// Net is a 1-D convolutional network with a linear output node, mirroring
// the paper's computation model with convolutional hidden layers.
type Net struct {
	// InputWidth is the input signal length.
	InputWidth int
	// Act is the shared squashing function.
	Act activation.Func
	// Layers holds the convolutional hidden layers.
	Layers []Layer
	// Output holds the output-node weights over the final feature map.
	Output []float64
}

// Widths returns the per-layer output widths N_1..N_L.
func (n *Net) Widths() []int {
	w := make([]int, len(n.Layers))
	width := n.InputWidth
	for i, l := range n.Layers {
		width = l.OutWidth(width)
		w[i] = width
	}
	return w
}

// Validate checks that every layer fits its input and the output weights
// match the final width.
func (n *Net) Validate() error {
	if n.InputWidth <= 0 {
		return fmt.Errorf("conv: input width %d", n.InputWidth)
	}
	if len(n.Layers) == 0 {
		return fmt.Errorf("conv: no layers")
	}
	width := n.InputWidth
	for i, l := range n.Layers {
		if l.Field() > width {
			return fmt.Errorf("conv: layer %d field %d exceeds input width %d", i+1, l.Field(), width)
		}
		if l.Filters() < 1 {
			return fmt.Errorf("conv: layer %d has no filters", i+1)
		}
		if l.Bias != nil && len(l.Bias) != l.Filters() {
			return fmt.Errorf("conv: layer %d bias per filter mismatch", i+1)
		}
		width = l.OutWidth(width)
	}
	if len(n.Output) != width {
		return fmt.Errorf("conv: output weights %d for final width %d", len(n.Output), width)
	}
	return nil
}

// Forward evaluates the network directly (without lowering).
func (n *Net) Forward(x []float64) float64 {
	y := x
	for _, l := range n.Layers {
		positions := len(y) - l.Field() + 1
		out := make([]float64, l.Filters()*positions)
		for f := 0; f < l.Filters(); f++ {
			kernel := l.Kernels.Row(f)
			for p := 0; p < positions; p++ {
				s := 0.0
				for i, w := range kernel {
					s += w * y[p+i]
				}
				if l.Bias != nil {
					s += l.Bias[f]
				}
				out[f*positions+p] = n.Act.Eval(s)
			}
		}
		y = out
	}
	s := 0.0
	for i, w := range n.Output {
		s += w * y[i]
	}
	return s
}

// Lower converts the convolutional network into the equivalent dense
// nn.Network (zeros outside receptive fields, shared values inside), on
// which the fault injectors and bound code operate directly.
func Lower(n *Net) (*nn.Network, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	dense := &nn.Network{
		InputDim: n.InputWidth,
		Act:      n.Act,
		Output:   tensor.Clone(n.Output),
	}
	width := n.InputWidth
	for _, l := range n.Layers {
		positions := width - l.Field() + 1
		rows := l.Filters() * positions
		m := tensor.NewMatrix(rows, width)
		for f := 0; f < l.Filters(); f++ {
			kernel := l.Kernels.Row(f)
			for p := 0; p < positions; p++ {
				row := m.Row(f*positions + p)
				for i, w := range kernel {
					row[p+i] = w
				}
			}
		}
		dense.Hidden = append(dense.Hidden, m)
		width = rows
	}
	if hasBias(n) {
		dense.Biases = make([][]float64, len(n.Layers))
		width = n.InputWidth
		for li, l := range n.Layers {
			positions := width - l.Field() + 1
			rows := l.Filters() * positions
			b := make([]float64, rows)
			if l.Bias != nil {
				for f := 0; f < l.Filters(); f++ {
					for p := 0; p < positions; p++ {
						b[f*positions+p] = l.Bias[f]
					}
				}
			}
			dense.Biases[li] = b
			width = rows
		}
	}
	return dense, dense.Validate()
}

func hasBias(n *Net) bool {
	for _, l := range n.Layers {
		if l.Bias != nil {
			return true
		}
	}
	return false
}

// Shape returns the core.Shape of the conv net with w_m^{(l)} computed
// over the receptive-field values only. It equals the lowered network's
// shape (zeros never attain a max), which is Section VI's observation: the
// constraint runs over R(l) values instead of N_l x N_{l-1}.
func Shape(n *Net) core.Shape { return core.ShapeOfModel(n) }

// NewRandom builds a random conv net: fields[i] and filters[i] configure
// layer i; weights are uniform in [-scale, scale).
func NewRandom(r *rng.Rand, inputWidth int, fields, filters []int, act activation.Func, scale float64, bias bool) (*Net, error) {
	if len(fields) != len(filters) {
		return nil, fmt.Errorf("conv: %d fields for %d filter counts", len(fields), len(filters))
	}
	n := &Net{InputWidth: inputWidth, Act: act}
	width := inputWidth
	for i := range fields {
		l := Layer{Kernels: tensor.RandomMatrix(r, filters[i], fields[i], scale)}
		if bias {
			l.Bias = make([]float64, filters[i])
			r.Floats(l.Bias, -scale, scale)
		}
		n.Layers = append(n.Layers, l)
		if fields[i] > width {
			return nil, fmt.Errorf("conv: layer %d field %d exceeds width %d", i+1, fields[i], width)
		}
		width = l.OutWidth(width)
	}
	n.Output = make([]float64, width)
	r.Floats(n.Output, -scale, scale)
	return n, n.Validate()
}

// FaultBudgetAdvantage quantifies Section VI's point on a concrete pair:
// given a conv net and a dense net of identical widths and activation, it
// returns the ratio denseFep/convFep for the same uniform one-fault-per-
// layer distribution (>1 means the conv topology tolerates more).
func FaultBudgetAdvantage(convNet *Net, dense *nn.Network, c float64) float64 {
	cs := Shape(convNet)
	ds := core.ShapeOf(dense)
	faults := make([]int, len(cs.Widths))
	for i := range faults {
		faults[i] = 1
	}
	convFep := core.Fep(cs, faults, c)
	denseFep := core.Fep(ds, faults, c)
	if convFep == 0 {
		return math.Inf(1)
	}
	return denseFep / convFep
}
