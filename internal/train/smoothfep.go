package train

import (
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// smoothMaxP is the exponent of the p-norm smooth maximum. The p-norm
// over-estimates the true maximum by at most n^{1/p} (n = #weights of a
// layer), so SmoothFep is a genuine upper bound on Fep and approaches it
// as p grows; p = 16 keeps the over-estimate below ~1.6x for layers of up
// to a thousand weights while giving useful gradients to every large
// weight, not only the argmax.
const smoothMaxP = 16

// smoothMax returns the p-norm (Σ |w|^p)^{1/p} of all weights into layer
// l (1-indexed; L+1 selects the output weights), including biases.
// Computation is rescaled by the true maximum for numerical stability.
func smoothMax(n *nn.Network, l int) float64 {
	w := layerWeights(n, l)
	m := 0.0
	for _, v := range w {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	if m == 0 {
		return 0
	}
	s := 0.0
	for _, v := range w {
		s += math.Pow(math.Abs(v)/m, smoothMaxP)
	}
	return m * math.Pow(s, 1.0/smoothMaxP)
}

// layerWeights gathers the weights into layer l as one flat view. Biases
// are excluded, mirroring nn.MaxWeight (bias synapses come from constant
// neurons that never fail, so they carry no deviation).
func layerWeights(n *nn.Network, l int) []float64 {
	if l == n.Layers()+1 {
		return n.Output
	}
	return n.Hidden[l-1].Data
}

// SmoothFep is the differentiable surrogate of core.Fep: the per-layer
// maximum |w| is replaced by the p-norm smooth maximum. Because
// p-norm >= max, SmoothFep >= Fep: minimising the surrogate minimises a
// valid upper bound (Section VI's proposed learning target).
func SmoothFep(n *nn.Network, faults []int, c float64) float64 {
	L := n.Layers()
	if len(faults) != L {
		panic("train: SmoothFep fault distribution length mismatch")
	}
	m := make([]float64, L+1)
	for l := 1; l <= L+1; l++ {
		m[l-1] = smoothMax(n, l)
	}
	return fepFromMax(n, faults, c, m)
}

// fepFromMax evaluates the Fep expression given per-layer weight maxima.
func fepFromMax(n *nn.Network, faults []int, c float64, m []float64) float64 {
	L := n.Layers()
	suffix := make([]float64, L+2)
	suffix[L+1] = 1
	suffix[L] = m[L]
	for l := L - 1; l >= 0; l-- {
		suffix[l] = float64(n.Width(l+1)-faults[l]) * m[l] * suffix[l+1]
	}
	k := n.Act.Lipschitz()
	total := 0.0
	for l := 1; l <= L; l++ {
		total += float64(faults[l-1]) * math.Pow(k, float64(L-l)) * suffix[l]
	}
	return c * total
}

// smoothFepGradient returns ∂SmoothFep/∂w for every parameter. The chain
// rule factors through the per-layer smooth maxima:
//
//	∂Fep/∂w = Σ_j (∂Fep/∂m_j)(∂m_j/∂w),
//
// where ∂m_j/∂w = sign(w)(|w|/m_j)^{p-1} and ∂Fep/∂m_j is obtained by a
// product-with-hole over the suffix factors.
func smoothFepGradient(n *nn.Network, faults []int, c float64) *grads {
	L := n.Layers()
	g := newGrads(n)
	m := make([]float64, L+1)
	for l := 1; l <= L+1; l++ {
		m[l-1] = smoothMax(n, l)
	}

	// dFep/dm[j] computed by finite structure (exact, not numeric):
	// Fep = c Σ_l f_l K^{L-l} Π_{l'=l+1..L+1} (N-f)_{l'} m_{l'}, where the
	// (N-f) factor of the output layer is 1.
	k := n.Act.Lipschitz()
	nf := make([]float64, L+2) // (N-f) factor per layer index 1..L+1
	for l := 1; l <= L; l++ {
		nf[l] = float64(n.Width(l) - faults[l-1])
	}
	nf[L+1] = 1

	dm := make([]float64, L+1) // ∂Fep/∂m_{j} for j = 1..L+1
	for j := 1; j <= L+1; j++ {
		total := 0.0
		for l := 1; l < j; l++ {
			if l > L || faults[l-1] == 0 {
				continue
			}
			prod := 1.0
			for lp := l + 1; lp <= L+1; lp++ {
				if lp == j {
					prod *= nf[lp]
					continue
				}
				prod *= nf[lp] * m[lp-1]
			}
			total += float64(faults[l-1]) * math.Pow(k, float64(L-l)) * prod
		}
		dm[j-1] = c * total
	}

	// Distribute onto the weights through the p-norm derivative.
	apply := func(params []float64, out []float64, mj, dmj float64) {
		if mj == 0 || dmj == 0 {
			return
		}
		for i, w := range params {
			if w == 0 {
				continue
			}
			ratio := math.Abs(w) / mj
			d := math.Pow(ratio, smoothMaxP-1)
			if w < 0 {
				d = -d
			}
			out[i] += dmj * d
		}
	}
	for l := 1; l <= L; l++ {
		apply(n.Hidden[l-1].Data, g.hidden[l-1].Data, m[l-1], dm[l-1])
	}
	apply(n.Output, g.output, m[L], dm[L])
	return g
}

// MaxWeightDecayClip scales all weights of the network so that no layer
// maximum exceeds cap — the blunt instrument counterpart to Fep-penalised
// training, used as an experimental baseline.
func MaxWeightDecayClip(n *nn.Network, cap float64) {
	for l := 1; l <= n.Layers()+1; l++ {
		m := n.MaxWeight(l)
		if m <= cap || m == 0 {
			continue
		}
		scale := cap / m
		if l == n.Layers()+1 {
			tensor.Scale(scale, n.Output)
			n.OutputBias *= scale
			continue
		}
		n.Hidden[l-1].Scale(scale)
		if n.Biases != nil && n.Biases[l-1] != nil {
			tensor.Scale(scale, n.Biases[l-1])
		}
	}
}
