// Package train implements the learning side of the reproduction:
// backpropagation with minibatch SGD (momentum, weight decay, inverted
// dropout) for the paper's network model, plus Fep-regularised training —
// the future-work scheme of Section VI that takes the forward error
// propagation as an additional minimisation target, here made
// differentiable through a p-norm smooth maximum of the per-layer
// weights.
package train

import (
	"fmt"

	"repro/internal/activation"
	"repro/internal/approx"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// Dataset is a supervised sample of a target function.
type Dataset struct {
	X [][]float64
	Y []float64
}

// Len returns the number of examples.
func (d Dataset) Len() int { return len(d.X) }

// FromTarget samples n uniform inputs from [0,1]^d and labels them.
func FromTarget(r *rng.Rand, target approx.Target, n int) Dataset {
	ds := Dataset{X: metrics.RandomPoints(r, target.Dim(), n), Y: make([]float64, n)}
	for i, x := range ds.X {
		ds.Y[i] = target.Eval(x)
	}
	return ds
}

// FromGrid labels a regular lattice (useful for 1-D and 2-D targets).
func FromGrid(target approx.Target, perDim int) Dataset {
	pts := metrics.Grid(target.Dim(), perDim)
	ds := Dataset{X: pts, Y: make([]float64, len(pts))}
	for i, x := range pts {
		ds.Y[i] = target.Eval(x)
	}
	return ds
}

// Config controls training.
type Config struct {
	// Epochs is the number of passes over the dataset.
	Epochs int
	// BatchSize is the minibatch size (<= 0 selects 16).
	BatchSize int
	// LR is the learning rate (<= 0 selects 0.5, a reasonable default
	// for sigmoid nets on [0,1] targets).
	LR float64
	// Momentum in [0,1) applies classical momentum.
	Momentum float64
	// WeightDecay is the L2 coefficient; it is the paper's Section V-C
	// "imposing low weights" lever.
	WeightDecay float64
	// Dropout is the probability of dropping each hidden neuron during
	// training (Srivastava et al., cited as the a-priori robustness
	// scheme the paper's bounds deliberately do not rely on).
	Dropout float64
	// FepPenalty, when positive, adds FepPenalty · SmoothFep(weights) to
	// the loss: the Section VI future-work scheme. FepFaults and FepC
	// configure the anticipated fault distribution.
	FepPenalty float64
	FepFaults  []int
	FepC       float64
	// ClipWeights, when positive, projects every weight (and bias) into
	// [-ClipWeights, ClipWeights] after each update: projected SGD under
	// a hard weight budget, the regime in which Section V-C's K dilemma
	// is stated.
	ClipWeights float64
	// Seed derives the private RNG stream for shuffling and dropout.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if c.LR <= 0 {
		c.LR = 0.5
	}
	if c.Epochs <= 0 {
		c.Epochs = 100
	}
	if c.FepC <= 0 {
		c.FepC = 1
	}
	return c
}

// Report summarises a training run.
type Report struct {
	// Losses holds the dataset MSE after each epoch.
	Losses []float64
	// FinalLoss is the last entry of Losses.
	FinalLoss float64
	// Epochs actually run.
	Epochs int
}

// grads mirrors a network's parameters.
type grads struct {
	hidden  []*tensor.Matrix
	biases  [][]float64
	output  []float64
	outBias float64
}

func newGrads(n *nn.Network) *grads {
	g := &grads{
		hidden: make([]*tensor.Matrix, len(n.Hidden)),
		output: make([]float64, len(n.Output)),
	}
	for i, m := range n.Hidden {
		g.hidden[i] = tensor.NewMatrix(m.Rows, m.Cols)
	}
	if n.Biases != nil {
		g.biases = make([][]float64, len(n.Biases))
		for i, b := range n.Biases {
			if b != nil {
				g.biases[i] = make([]float64, len(b))
			}
		}
	}
	return g
}

func (g *grads) zero() {
	for _, m := range g.hidden {
		tensor.Fill(m.Data, 0)
	}
	for _, b := range g.biases {
		if b != nil {
			tensor.Fill(b, 0)
		}
	}
	tensor.Fill(g.output, 0)
	g.outBias = 0
}

// backprop accumulates the gradient of 0.5(out-y)^2 for one example into
// g and returns the squared error. mask, when non-nil, holds the dropout
// masks per layer (0 = dropped, 1/(1-p) = kept).
func backprop(n *nn.Network, x []float64, y float64, g *grads, mask [][]float64) float64 {
	L := n.Layers()
	// Forward with cached sums/outputs (and dropout masks applied).
	sums := make([][]float64, L)
	outs := make([][]float64, L)
	cur := x
	for l := 0; l < L; l++ {
		s := n.Hidden[l].MulVec(cur)
		if n.Biases != nil && n.Biases[l] != nil {
			tensor.Add(s, s, n.Biases[l])
		}
		sums[l] = s
		o := make([]float64, len(s))
		for j := range s {
			o[j] = n.Act.Eval(s[j])
		}
		if mask != nil {
			tensor.Hadamard(o, o, mask[l])
		}
		outs[l] = o
		cur = o
	}
	out := tensor.Dot(n.Output, cur) + n.OutputBias
	diff := out - y

	// Output layer gradient.
	tensor.Axpy(diff, cur, g.output)
	g.outBias += diff

	// Delta for the last hidden layer.
	delta := make([]float64, len(cur))
	for j := range delta {
		d := diff * n.Output[j]
		if mask != nil {
			d *= mask[L-1][j]
		}
		delta[j] = d * n.Act.Deriv(sums[L-1][j])
	}

	for l := L - 1; l >= 0; l-- {
		prev := x
		if l > 0 {
			prev = outs[l-1]
		}
		g.hidden[l].AddOuterScaled(1, delta, prev)
		if g.biases != nil && g.biases[l] != nil {
			tensor.Add(g.biases[l], g.biases[l], delta)
		}
		if l > 0 {
			// delta_{l-1} = (W_lᵀ delta) ⊙ mask ⊙ ϕ'(s_{l-1}).
			back := n.Hidden[l].MulVecT(delta)
			next := make([]float64, len(back))
			for j := range back {
				d := back[j]
				if mask != nil {
					d *= mask[l-1][j]
				}
				next[j] = d * n.Act.Deriv(sums[l-1][j])
			}
			delta = next
		}
	}
	return diff * diff
}

// Trainer runs SGD on a network. It owns momentum state; reuse across
// calls to continue training.
type Trainer struct {
	cfg Config
	r   *rng.Rand
	vel *grads
}

// NewTrainer prepares a trainer for the given configuration.
func NewTrainer(cfg Config) *Trainer {
	cfg = cfg.withDefaults()
	return &Trainer{cfg: cfg, r: rng.New(cfg.Seed + 0x9e3779b97f4a7c15)}
}

// Train runs cfg.Epochs of minibatch SGD on net (mutated in place) and
// reports per-epoch losses.
func (t *Trainer) Train(net *nn.Network, ds Dataset) Report {
	cfg := t.cfg
	if ds.Len() == 0 {
		panic("train: empty dataset")
	}
	if cfg.FepPenalty > 0 && len(cfg.FepFaults) != net.Layers() {
		panic(fmt.Sprintf("train: FepFaults has %d entries for %d layers", len(cfg.FepFaults), net.Layers()))
	}
	if t.vel == nil {
		t.vel = newGrads(net)
	}
	g := newGrads(net)
	report := Report{Epochs: cfg.Epochs}

	order := make([]int, ds.Len())
	for i := range order {
		order[i] = i
	}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		t.r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			g.zero()
			for _, idx := range order[start:end] {
				mask := t.dropoutMasks(net)
				backprop(net, ds.X[idx], ds.Y[idx], g, mask)
			}
			t.applyUpdate(net, g, end-start)
		}
		report.Losses = append(report.Losses, EvalMSE(net, ds))
	}
	if len(report.Losses) > 0 {
		report.FinalLoss = report.Losses[len(report.Losses)-1]
	}
	return report
}

// dropoutMasks draws inverted-dropout masks, or nil when disabled.
func (t *Trainer) dropoutMasks(net *nn.Network) [][]float64 {
	p := t.cfg.Dropout
	if p <= 0 {
		return nil
	}
	keep := 1 - p
	masks := make([][]float64, net.Layers())
	for l := 1; l <= net.Layers(); l++ {
		m := make([]float64, net.Width(l))
		for j := range m {
			if t.r.Float64() < keep {
				m[j] = 1 / keep
			}
		}
		masks[l-1] = m
	}
	return masks
}

// applyUpdate performs one SGD step from accumulated gradients over
// batchSize examples, including weight decay, momentum, and the smooth
// Fep penalty.
func (t *Trainer) applyUpdate(net *nn.Network, g *grads, batchSize int) {
	cfg := t.cfg
	scale := 1.0 / float64(batchSize)

	var fepGrad *grads
	if cfg.FepPenalty > 0 {
		fepGrad = smoothFepGradient(net, cfg.FepFaults, cfg.FepC)
	}

	step := func(param, grad []float64, vel []float64, fep []float64) {
		for i := range param {
			d := grad[i]*scale + cfg.WeightDecay*param[i]
			if fep != nil {
				d += cfg.FepPenalty * fep[i]
			}
			v := cfg.Momentum*vel[i] - cfg.LR*d
			vel[i] = v
			param[i] += v
		}
	}

	for l, m := range net.Hidden {
		var fep []float64
		if fepGrad != nil {
			fep = fepGrad.hidden[l].Data
		}
		step(m.Data, g.hidden[l].Data, t.vel.hidden[l].Data, fep)
	}
	if net.Biases != nil {
		for l, b := range net.Biases {
			if b == nil {
				continue
			}
			var fep []float64
			if fepGrad != nil && fepGrad.biases != nil {
				fep = fepGrad.biases[l]
			}
			step(b, g.biases[l], t.vel.biases[l], fep)
		}
	}
	var fepOut []float64
	if fepGrad != nil {
		fepOut = fepGrad.output
	}
	step(net.Output, g.output, t.vel.output, fepOut)
	// Output bias (part of the linear output client; no Fep term).
	d := g.outBias*scale + cfg.WeightDecay*net.OutputBias
	if fepGrad != nil {
		d += cfg.FepPenalty * fepGrad.outBias
	}
	v := cfg.Momentum*t.vel.outBias - cfg.LR*d
	t.vel.outBias = v
	net.OutputBias += v

	if cfg.ClipWeights > 0 {
		clip := func(xs []float64) {
			for i, x := range xs {
				if x > cfg.ClipWeights {
					xs[i] = cfg.ClipWeights
				} else if x < -cfg.ClipWeights {
					xs[i] = -cfg.ClipWeights
				}
			}
		}
		for l, m := range net.Hidden {
			clip(m.Data)
			if net.Biases != nil && net.Biases[l] != nil {
				clip(net.Biases[l])
			}
		}
		clip(net.Output)
	}
}

// EvalMSE returns the mean squared error of net over ds.
func EvalMSE(net *nn.Network, ds Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	s := 0.0
	for i, x := range ds.X {
		d := net.Forward(x) - ds.Y[i]
		s += d * d
	}
	return s / float64(ds.Len())
}

// Fit is the one-call convenience: build a Glorot network for the target,
// train it, and return it with the training report and the empirical
// sup-norm error ε' on a validation sample.
func Fit(target approx.Target, widths []int, act activation.Func, cfg Config) (*nn.Network, Report, float64) {
	cfg = cfg.withDefaults()
	r := rng.New(cfg.Seed)
	net := nn.NewGlorot(r, nn.Config{
		InputDim: target.Dim(),
		Widths:   widths,
		Act:      act,
		Bias:     true,
	})
	ds := FromTarget(r.Split(), target, 256*target.Dim())
	rep := NewTrainer(cfg).Train(net, ds)
	val := metrics.RandomPoints(r.Split(), target.Dim(), 2048)
	sup := approx.SupDistance(target, net, val)
	return net, rep, sup
}
