package train

import (
	"math"
	"testing"

	"repro/internal/activation"
	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/rng"
)

func TestBackpropMatchesNumericalGradient(t *testing.T) {
	r := rng.New(1)
	net := nn.NewRandom(r, nn.Config{
		InputDim: 3,
		Widths:   []int{4, 3},
		Act:      activation.NewSigmoid(1),
		Bias:     true,
	}, 0.7)
	x := []float64{0.2, 0.5, 0.8}
	y := 0.4

	g := newGrads(net)
	backprop(net, x, y, g, nil)

	loss := func() float64 {
		d := net.Forward(x) - y
		return 0.5 * d * d
	}
	const h = 1e-6
	checkParam := func(name string, param []float64, grad []float64) {
		for i := range param {
			orig := param[i]
			param[i] = orig + h
			up := loss()
			param[i] = orig - h
			down := loss()
			param[i] = orig
			numeric := (up - down) / (2 * h)
			if math.Abs(numeric-grad[i]) > 1e-5*(math.Abs(numeric)+1) {
				t.Fatalf("%s[%d]: backprop %v vs numeric %v", name, i, grad[i], numeric)
			}
		}
	}
	for l := range net.Hidden {
		checkParam("W", net.Hidden[l].Data, g.hidden[l].Data)
		checkParam("b", net.Biases[l], g.biases[l])
	}
	checkParam("out", net.Output, g.output)

	// Output bias.
	orig := net.OutputBias
	net.OutputBias = orig + h
	up := loss()
	net.OutputBias = orig - h
	down := loss()
	net.OutputBias = orig
	numeric := (up - down) / (2 * h)
	if math.Abs(numeric-g.outBias) > 1e-6 {
		t.Fatalf("outBias: backprop %v vs numeric %v", g.outBias, numeric)
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	target := approx.Sine1D(1)
	r := rng.New(2)
	net := nn.NewGlorot(r, nn.Config{InputDim: 1, Widths: []int{12}, Act: activation.NewSigmoid(1), Bias: true})
	ds := FromGrid(target, 64)
	before := EvalMSE(net, ds)
	rep := NewTrainer(Config{Epochs: 800, LR: 0.1, Momentum: 0.9, Seed: 7}).Train(net, ds)
	if rep.FinalLoss >= before {
		t.Fatalf("training did not reduce loss: %v -> %v", before, rep.FinalLoss)
	}
	if rep.FinalLoss > 0.005 {
		t.Fatalf("sine fit too poor: MSE %v", rep.FinalLoss)
	}
	if len(rep.Losses) != 800 {
		t.Fatalf("expected 800 epoch losses, got %d", len(rep.Losses))
	}
}

func TestMomentumAcceleratesEarlyTraining(t *testing.T) {
	target := approx.Sine1D(1)
	ds := FromGrid(target, 64)
	run := func(mom float64) float64 {
		r := rng.New(5)
		net := nn.NewGlorot(r, nn.Config{InputDim: 1, Widths: []int{10}, Act: activation.NewSigmoid(1), Bias: true})
		rep := NewTrainer(Config{Epochs: 30, LR: 0.3, Momentum: mom, Seed: 5}).Train(net, ds)
		return rep.FinalLoss
	}
	plain := run(0)
	withMom := run(0.9)
	// Momentum should not be catastrophically worse; usually better.
	if withMom > plain*3 {
		t.Fatalf("momentum hurt badly: %v vs %v", withMom, plain)
	}
}

func TestWeightDecayShrinksMaxWeights(t *testing.T) {
	target := approx.Sine1D(2)
	ds := FromGrid(target, 64)
	run := func(wd float64) float64 {
		r := rng.New(3)
		net := nn.NewGlorot(r, nn.Config{InputDim: 1, Widths: []int{16}, Act: activation.NewSigmoid(1), Bias: true})
		NewTrainer(Config{Epochs: 120, LR: 0.5, WeightDecay: wd, Seed: 3}).Train(net, ds)
		m := 0.0
		for l := 1; l <= net.Layers()+1; l++ {
			if w := net.MaxWeight(l); w > m {
				m = w
			}
		}
		return m
	}
	free := run(0)
	decayed := run(1e-3)
	if decayed >= free {
		t.Fatalf("weight decay did not shrink max weight: %v vs %v", decayed, free)
	}
}

func TestDropoutTrainingStillLearns(t *testing.T) {
	target := approx.Sine1D(1)
	ds := FromGrid(target, 64)
	r := rng.New(4)
	net := nn.NewGlorot(r, nn.Config{InputDim: 1, Widths: []int{20}, Act: activation.NewSigmoid(1), Bias: true})
	rep := NewTrainer(Config{Epochs: 400, LR: 0.1, Momentum: 0.9, Dropout: 0.2, Seed: 4}).Train(net, ds)
	if rep.FinalLoss > 0.08 {
		t.Fatalf("dropout training failed to learn: MSE %v", rep.FinalLoss)
	}
}

func TestTrainDeterministicForSeed(t *testing.T) {
	target := approx.XORLike()
	run := func() float64 {
		r := rng.New(9)
		net := nn.NewGlorot(r, nn.Config{InputDim: 2, Widths: []int{8}, Act: activation.NewSigmoid(1), Bias: true})
		ds := FromTarget(rng.New(10), target, 128)
		rep := NewTrainer(Config{Epochs: 20, Seed: 11}).Train(net, ds)
		return rep.FinalLoss
	}
	if run() != run() {
		t.Fatal("training is not deterministic under fixed seeds")
	}
}

func TestSmoothFepUpperBoundsTrueFep(t *testing.T) {
	r := rng.New(6)
	for trial := 0; trial < 100; trial++ {
		L := r.Intn(3) + 1
		widths := make([]int, L)
		faults := make([]int, L)
		for i := range widths {
			widths[i] = r.Intn(5) + 1
			faults[i] = r.Intn(widths[i] + 1)
		}
		net := nn.NewRandom(r, nn.Config{
			InputDim: 2, Widths: widths, Act: activation.NewSigmoid(r.Range(0.3, 2)), Bias: true,
		}, r.Range(0.1, 1.5))
		c := r.Range(0.1, 2)
		smooth := SmoothFep(net, faults, c)
		exact := core.Fep(core.ShapeOf(net), faults, c)
		if smooth < exact*(1-1e-9) {
			t.Fatalf("trial %d: SmoothFep %v below true Fep %v", trial, smooth, exact)
		}
		// p-norm over-estimate is bounded by n^{1/p} per layer.
		maxParams := 1.0
		for l := 1; l <= net.Layers()+1; l++ {
			n := float64(len(layerWeights(net, l)))
			maxParams *= math.Pow(n, 1.0/smoothMaxP)
		}
		if exact > 0 && smooth > exact*maxParams*(1+1e-9) {
			t.Fatalf("trial %d: SmoothFep %v exceeds worst-case slack over %v", trial, smooth, exact)
		}
	}
}

func TestSmoothFepGradientMatchesNumeric(t *testing.T) {
	r := rng.New(7)
	net := nn.NewRandom(r, nn.Config{
		InputDim: 2, Widths: []int{3, 2}, Act: activation.NewSigmoid(1), Bias: true,
	}, 0.8)
	faults := []int{1, 1}
	c := 1.0
	g := smoothFepGradient(net, faults, c)
	const h = 1e-6
	check := func(name string, param, grad []float64) {
		for i := range param {
			orig := param[i]
			param[i] = orig + h
			up := SmoothFep(net, faults, c)
			param[i] = orig - h
			down := SmoothFep(net, faults, c)
			param[i] = orig
			numeric := (up - down) / (2 * h)
			if math.Abs(numeric-grad[i]) > 1e-4*(math.Abs(numeric)+1) {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", name, i, grad[i], numeric)
			}
		}
	}
	for l := range net.Hidden {
		check("W", net.Hidden[l].Data, g.hidden[l].Data)
		check("b", net.Biases[l], g.biases[l])
	}
	check("out", net.Output, g.output)
	// Output bias requires perturbing the field itself.
	orig := net.OutputBias
	net.OutputBias = orig + h
	up := SmoothFep(net, faults, c)
	net.OutputBias = orig - h
	down := SmoothFep(net, faults, c)
	net.OutputBias = orig
	numeric := (up - down) / (2 * h)
	if math.Abs(numeric-g.outBias) > 1e-4*(math.Abs(numeric)+1) {
		t.Fatalf("outBias: analytic %v vs numeric %v", g.outBias, numeric)
	}
}

func TestFepPenaltyReducesAchievedFep(t *testing.T) {
	target := approx.Sine1D(1)
	ds := FromGrid(target, 64)
	faults := []int{2}
	run := func(penalty float64) (float64, float64) {
		r := rng.New(8)
		net := nn.NewGlorot(r, nn.Config{InputDim: 1, Widths: []int{16}, Act: activation.NewSigmoid(1), Bias: true})
		rep := NewTrainer(Config{
			Epochs: 150, LR: 0.5, Seed: 8,
			FepPenalty: penalty, FepFaults: faults, FepC: 1,
		}).Train(net, ds)
		return core.Fep(core.ShapeOf(net), faults, 1), rep.FinalLoss
	}
	fepFree, _ := run(0)
	fepPen, lossPen := run(0.01)
	if fepPen >= fepFree {
		t.Fatalf("Fep penalty did not reduce Fep: %v vs %v", fepPen, fepFree)
	}
	if lossPen > 0.05 {
		t.Fatalf("Fep-regularised training destroyed accuracy: MSE %v", lossPen)
	}
}

func TestClipWeightsProjectsEveryUpdate(t *testing.T) {
	target := approx.Sine1D(1)
	ds := FromGrid(target, 32)
	r := rng.New(20)
	net := nn.NewGlorot(r, nn.Config{InputDim: 1, Widths: []int{10}, Act: activation.NewSigmoid(1), Bias: true})
	NewTrainer(Config{Epochs: 50, LR: 0.5, ClipWeights: 0.3, Seed: 20}).Train(net, ds)
	for _, m := range net.Hidden {
		for _, w := range m.Data {
			if math.Abs(w) > 0.3 {
				t.Fatalf("hidden weight %v escaped the clip", w)
			}
		}
	}
	for _, b := range net.Biases {
		for _, w := range b {
			if math.Abs(w) > 0.3 {
				t.Fatalf("bias %v escaped the clip", w)
			}
		}
	}
	for _, w := range net.Output {
		if math.Abs(w) > 0.3 {
			t.Fatalf("output weight %v escaped the clip", w)
		}
	}
}

func TestMaxWeightDecayClip(t *testing.T) {
	r := rng.New(12)
	net := nn.NewRandom(r, nn.Config{InputDim: 2, Widths: []int{4}, Act: activation.NewSigmoid(1), Bias: true}, 3)
	MaxWeightDecayClip(net, 0.5)
	for l := 1; l <= net.Layers()+1; l++ {
		if net.MaxWeight(l) > 0.5+1e-12 {
			t.Fatalf("layer %d max weight %v exceeds clip", l, net.MaxWeight(l))
		}
	}
}

func TestFromTargetAndGrid(t *testing.T) {
	target := approx.XORLike()
	ds := FromTarget(rng.New(13), target, 50)
	if ds.Len() != 50 {
		t.Fatal("FromTarget size wrong")
	}
	for i, x := range ds.X {
		if ds.Y[i] != target.Eval(x) {
			t.Fatal("label mismatch")
		}
	}
	grid := FromGrid(target, 5)
	if grid.Len() != 25 {
		t.Fatalf("FromGrid size %d, want 25", grid.Len())
	}
}

func TestFitReachesReasonableSup(t *testing.T) {
	net, rep, sup := Fit(approx.Sine1D(1), []int{24}, activation.NewSigmoid(1),
		Config{Epochs: 800, LR: 0.1, Momentum: 0.9, Seed: 21})
	if sup > 0.15 {
		t.Fatalf("Fit sup error %v too large (final MSE %v)", sup, rep.FinalLoss)
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTrainPanicsOnEmptyDataset(t *testing.T) {
	r := rng.New(14)
	net := nn.NewGlorot(r, nn.Config{InputDim: 1, Widths: []int{4}, Act: activation.NewSigmoid(1)})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTrainer(Config{}).Train(net, Dataset{})
}

func TestTrainPanicsOnBadFepFaults(t *testing.T) {
	r := rng.New(15)
	net := nn.NewGlorot(r, nn.Config{InputDim: 1, Widths: []int{4}, Act: activation.NewSigmoid(1)})
	ds := FromGrid(approx.Sine1D(1), 8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTrainer(Config{FepPenalty: 1, FepFaults: []int{1, 2}}).Train(net, ds)
}

func TestEvalMSEEmpty(t *testing.T) {
	r := rng.New(16)
	net := nn.NewGlorot(r, nn.Config{InputDim: 1, Widths: []int{2}, Act: activation.NewSigmoid(1)})
	if EvalMSE(net, Dataset{}) != 0 {
		t.Fatal("empty MSE should be 0")
	}
}

func TestSupDistanceConsistentWithTargets(t *testing.T) {
	// approx.SupDistance against a network that is identically 0.5:
	// sup |target - 0.5| over the grid.
	r := rng.New(17)
	net := nn.NewGlorot(r, nn.Config{InputDim: 1, Widths: []int{2}, Act: activation.NewSigmoid(1), Bias: true})
	// Zero all weights: output = OutputBias.
	for _, m := range net.Hidden {
		for i := range m.Data {
			m.Data[i] = 0
		}
	}
	for i := range net.Output {
		net.Output[i] = 0
	}
	net.OutputBias = 0.5
	target := approx.Sine1D(1)
	pts := metrics.Grid(1, 201)
	got := approx.SupDistance(target, net, pts)
	if math.Abs(got-0.5) > 1e-6 {
		t.Fatalf("SupDistance = %v, want 0.5", got)
	}
}
