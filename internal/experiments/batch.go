package experiments

import (
	"time"

	"repro/internal/activation"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/rng"
)

func init() {
	Register(Experiment{ID: "BE", Title: "Batched evaluation: multi-lane engine vs scalar oracle, float32 lane certificate",
		Tags: []string{"extension", "engine", "faultmodels", "precision"}, Run: BatchedEvaluation})
}

// BatchedEvaluation exercises the two contracts of the batched
// plan-evaluation engine. First, exactness: for every registered fault
// model, a full batch of random plans evaluated by the fused multi-lane
// sweep must be bit-identical, lane for lane, to the one-at-a-time
// compiled oracle (stochastic models run on twin-seeded streams).
// Second, the certified precision trade: the float32 inference lane is
// NOT bit-identical by design, so its measured deviation from the
// float64 oracle must sit under the Theorem 5 certificate that prices
// the halved memory traffic. A final note reports the measured batched
// vs scalar throughput on the exhaustive-search shape — informational
// only, wall-clock on a shared machine is not asserted.
func BatchedEvaluation() *Result {
	res := &Result{ID: "BE", Title: "Batched evaluation: multi-lane engine vs scalar oracle, float32 lane certificate"}
	r := rng.New(0xba7c4)

	net := nn.NewRandom(r.Split(), nn.Config{InputDim: 4, Widths: []int{24, 24, 12}, Act: activation.NewSigmoid(1), Bias: true}, 0.6)
	inputs := metrics.RandomPoints(r.Split(), 4, 24)
	traces := fault.CleanTraces(net, inputs)

	plans := make([]fault.Plan, fault.BatchLanes)
	for p := range plans {
		plans[p] = fault.RandomNeuronPlan(r, net, []int{2, 1, 1})
	}

	params := func(seed uint64) fault.Params {
		return fault.Params{C: 0.7, Sem: core.DeviationCap, Value: 0.8, Prob: 0.5, Bits: 8, Bit: 6, Net: net, R: rng.New(seed)}
	}

	bt := metrics.NewTable("batched engine vs scalar oracle: full 8-lane batch of random plans, all inputs",
		"model", "lanes", "traces", "bit_identical")
	for _, m := range fault.Models() {
		bp := fault.CompileBatch(net, fault.BatchLanes)
		bp.Reset(plans)
		injs := make([]fault.Injector, fault.BatchLanes)
		oracle := make([]fault.Injector, fault.BatchLanes)
		scalars := make([]*fault.CompiledPlan, fault.BatchLanes)
		ok := true
		for p := range plans {
			var err error
			if injs[p], err = m.New(params(uint64(300 + p))); err != nil {
				res.note("VIOLATION: model %s failed to instantiate: %v", m.Name, err)
				ok = false
				break
			}
			oracle[p], _ = m.New(params(uint64(300 + p)))
			scalars[p] = fault.Compile(net, plans[p])
		}
		if !ok {
			continue
		}
		identical := true
		out := make([]float64, fault.BatchLanes)
		for _, tr := range traces {
			bp.ErrorsOnTrace(injs, tr, out)
			for p := range plans {
				if out[p] != scalars[p].ErrorOnTrace(oracle[p], tr) {
					identical = false
				}
			}
		}
		bt.AddRow(m.Name, fmtF(float64(fault.BatchLanes)), fmtF(float64(len(traces))), fmtBool(identical))
		if !identical {
			res.note("VIOLATION: %s batched evaluation diverged from the scalar oracle", m.Name)
		}
	}
	res.Tables = append(res.Tables, bt)

	// Float32 lane: certificate must dominate the measurement.
	lane, err := quant.Float32(net)
	if err != nil {
		res.note("VIOLATION: float32 lane construction failed: %v", err)
		return res
	}
	measured := lane.MeasuredError(inputs)
	bound := lane.Bound()
	ft := metrics.NewTable("float32 inference lane: measured deviation vs Theorem 5 certificate",
		"measured", "bound", "utilisation_%", "memory_bits_vs_float64")
	util := 0.0
	if bound > 0 {
		util = 100 * measured / bound
	}
	ft.AddRow(fmtF(measured), fmtF(bound), fmtF(util), "1/2")
	res.Tables = append(res.Tables, ft)
	if measured > bound {
		res.note("VIOLATION: float32 lane measured %v above certificate %v", measured, bound)
	}

	// Informational throughput: the exhaustive-search shape, batched vs
	// scalar, one timed pass each.
	scalarStart := time.Now()
	for _, plan := range plans {
		cp := fault.Compile(net, plan)
		for _, tr := range traces {
			cp.ErrorOnTrace(fault.Crash{}, tr)
		}
	}
	scalarDur := time.Since(scalarStart)
	bp := fault.CompileBatch(net, fault.BatchLanes)
	bp.Reset(plans)
	injs := make([]fault.Injector, fault.BatchLanes)
	for p := range injs {
		injs[p] = fault.Crash{}
	}
	out := make([]float64, fault.BatchLanes)
	batchStart := time.Now()
	for _, tr := range traces {
		bp.ErrorsOnTrace(injs, tr, out)
	}
	batchDur := time.Since(batchStart)
	res.note("every registered model is bit-identical through the 8-lane batch; float32 lane certified at %.1f%% bound utilisation", util)
	res.note("informational: %d-plan crash sweep took %v scalar vs %v batched on this run (not asserted — shared-machine wall clock)",
		len(plans), scalarDur, batchDur)
	return res
}
