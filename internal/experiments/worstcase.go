package experiments

import (
	"context"
	"time"

	"repro/internal/activation"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/rng"
)

func init() {
	Register(Experiment{ID: "WC", Title: "Tree-structured exhaustive search: prefix sharing and bound-guided pruning vs flat enumeration",
		Tags: []string{"extension", "engine", "perf"}, Run: WorstCaseTree})
}

// WorstCaseTree compares the tree-structured exhaustive engine against
// the flat reference enumeration on the Section I shapes. The tree
// shares damaged prefixes across sibling configurations and prunes
// whole subtrees whose Fep-style bound cannot beat the incumbent, so
// it visits a fraction of the configurations — but soundness demands
// the worst error stay bit-identical to the flat oracle's, and the
// reported plan must attain it exactly. The table's visited/pruned
// split (from a sequential run, where the counters are deterministic)
// is the source of the README's pruned-vs-full numbers.
func WorstCaseTree() *Result {
	res := &Result{ID: "WC", Title: "Tree-structured exhaustive search: prefix sharing and bound-guided pruning vs flat enumeration"}
	r := rng.New(0x7ee5)
	inputs := metrics.RandomPoints(r, 2, 8)

	t := metrics.NewTable("tree engine vs flat enumeration (f = 2 per layer, sequential counters)",
		"widths", "configurations", "visited", "pruned_%", "flat_ms", "tree_ms", "bit_identical")
	for _, w := range []int{6, 9, 12, 15} {
		// Weight scale 2: partially saturated sigmoids give neurons
		// heterogeneous crash deviations, which is exactly when the
		// subtree bound can separate weak prefixes from the incumbent
		// (at small scales every neuron matters equally and the bound
		// stays above the floor everywhere — pruning soundly does
		// nothing).
		net := nn.NewRandom(r.Split(), nn.Config{
			InputDim: 2,
			Widths:   []int{w, w},
			Act:      activation.NewSigmoid(1),
		}, 2)
		perLayer := []int{2, 2}
		shape := core.ShapeOf(net)

		start := time.Now()
		flat, err := fault.ExhaustiveWorstCrashFlat(net, perLayer, inputs, 5_000_000)
		flatMS := float64(time.Since(start).Microseconds()) / 1000
		if err != nil {
			res.note("width %d: flat: %v", w, err)
			continue
		}

		eng, err := fault.NewWorstCase(net, perLayer, inputs, fault.WorstCaseOptions{
			Prune: true, Sequential: true, MaxConfigs: 5_000_000,
		})
		if err != nil {
			res.note("width %d: tree: %v", w, err)
			continue
		}
		start = time.Now()
		tree, err := eng.Run(context.Background())
		treeMS := float64(time.Since(start).Microseconds()) / 1000
		if err != nil {
			res.note("width %d: tree run: %v", w, err)
			continue
		}

		identical := tree.WorstError == flat.WorstError
		attained := fault.MaxError(net, tree.WorstPlan, fault.Crash{}, inputs) == tree.WorstError
		prunedPct := 100 * float64(tree.Pruned) / float64(tree.Configurations)
		t.AddRow(fmtInt(w)+"x"+fmtInt(w), fmtInt(int(tree.Configurations)), fmtInt(int(tree.Visited)),
			fmtF(prunedPct), fmtF(flatMS), fmtF(treeMS), fmtBool(identical && attained))
		if !identical {
			res.note("VIOLATION: tree worst %v differs from flat oracle %v at width %d", tree.WorstError, flat.WorstError, w)
		}
		if !attained {
			res.note("VIOLATION: tree plan does not attain its reported worst error at width %d", w)
		}
		bound := core.CrashFep(shape, perLayer)
		if tree.WorstError > bound*(1+1e-9) {
			res.note("VIOLATION: tree worst %v above Fep %v at width %d", tree.WorstError, bound, w)
		}
	}
	res.Tables = append(res.Tables, t)
	res.note("prefix sharing re-evaluates only layers at or below the deepest changed digit; pruning discards subtrees whose bound cannot beat the incumbent, and neither may change the answer")
	return res
}
