package experiments

import (
	"repro/internal/activation"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/rng"
)

func init() {
	Register(Experiment{ID: "MX", Title: "Extension: mixed fault distributions and run-time degradation",
		Tags: []string{"extension"}, Run: MixedFaults})
}

// MixedFaults exercises the joint certificate beyond the paper's
// one-kind-at-a-time theorems: simultaneous crashed neurons, Byzantine
// neurons and Byzantine synapses, bounded by the shared recursion of
// core.MixedFep, plus the run-time degradation forecast on a failure
// stream.
func MixedFaults() *Result {
	res := &Result{ID: "MX", Title: "Mixed fault distributions and run-time degradation (extension)"}
	r := rng.New(404)
	net := nn.NewRandom(r, nn.Config{
		InputDim: 2,
		Widths:   []int{8, 6},
		Act:      activation.NewSigmoid(1),
	}, 0.5)
	shape := core.ShapeOf(net)
	inputs := evalInputs(2)
	c := 0.8

	t := metrics.NewTable("simultaneous crash + Byzantine + synapse failures (C=0.8)",
		"crash/layer", "byz/layer", "syn/layer", "measured_worst", "mixed_fep")
	for _, mix := range [][3]int{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {1, 1, 0}, {1, 1, 1}, {2, 1, 2}} {
		crash := []int{mix[0], mix[0]}
		byz := []int{mix[1], mix[1]}
		syn := []int{mix[2], mix[2], 0}
		total := []int{mix[0] + mix[1], mix[0] + mix[1]}
		plan := fault.RandomNeuronPlan(r, net, total)
		sp := fault.RandomSynapsePlan(r, net, syn)
		plan.Synapses = sp.Synapses

		inj := fault.Mixed{
			CrashSet: map[fault.NeuronFault]bool{},
			Byz:      fault.Byzantine{C: c, Sem: core.DeviationCap, Sign: map[fault.NeuronFault]float64{}},
		}
		seen := []int{0, 0}
		for i, f := range plan.Neurons {
			if seen[f.Layer-1] < crash[f.Layer-1] {
				inj.CrashSet[f] = true
			} else if i%2 == 0 {
				inj.Byz.Sign[f] = -1
			}
			seen[f.Layer-1]++
		}
		measured := fault.MaxError(net, plan, inj, inputs)
		bound := core.MixedFep(shape, core.MixedDistribution{Crash: crash, Byzantine: byz, Synapses: syn}, c)
		t.AddNumericRow(float64(mix[0]), float64(mix[1]), float64(mix[2]), measured, bound)
		if measured > bound*(1+1e-9) {
			res.note("VIOLATION: mixed %v measured %v above bound %v", mix, measured, bound)
		}
	}
	res.Tables = append(res.Tables, t)
	res.note("one recursion covers all three sources at once; each pure column reduces to the corresponding theorem")

	// Run-time degradation: neurons die on a schedule; the forecast from
	// the topology names the round where certification is lost.
	worst := fault.AdversarialNeuronPlan(net, []int{3, 3})
	var schedule []dist.FailureEvent
	for i, nf := range worst.Neurons {
		schedule = append(schedule, dist.FailureEvent{Round: 2 * i, Neuron: nf})
	}
	const rounds = 12
	epsPrime := 0.05
	eps := epsPrime + 2.5*core.CrashFep(shape, []int{1, 0})
	forecast, err := dist.DegradationPoint(net, rounds, schedule, 1, eps, epsPrime)
	if err != nil {
		res.note("degradation forecast failed: %v", err)
		return res
	}

	xs := metrics.RandomPoints(r, 2, rounds)
	stream, err := dist.Stream(net, xs, schedule, 1)
	if err != nil {
		res.note("stream failed: %v", err)
		return res
	}
	st := metrics.NewTable("failure stream: per-round certificates",
		"round", "faulty", "measured_err", "certificate")
	for _, sres := range stream {
		st.AddNumericRow(float64(sres.Round), float64(sres.Faulty), sres.Err, sres.Certified)
		if sres.Err > sres.Certified*(1+1e-9) {
			res.note("VIOLATION: round %d error %v above certificate %v", sres.Round, sres.Err, sres.Certified)
		}
	}
	res.Tables = append(res.Tables, st)
	res.note("degradation forecast (topology only): certification lost at round %d of %d", forecast, rounds)
	return res
}

// thm5PerLayerRow extends T5 with the Proteus per-layer allocation: the
// best allocation found on a small grid at the memory of the uniform
// format. Shared by Thm5Quantisation.
func thm5PerLayerRow(net *nn.Network, uniformBits int) (alloc []int, bound, memory float64) {
	uniform, err := quant.Quantize(net, quant.Options{WeightBits: uniformBits})
	if err != nil {
		return nil, 0, 0
	}
	bestBound := uniform.Bound()
	L := net.Layers()
	var best []int
	var try func(prefix []int)
	try = func(prefix []int) {
		if len(prefix) == L+1 {
			q, err := quant.Quantize(net, quant.Options{PerLayerBits: append([]int(nil), prefix...)})
			if err != nil {
				return
			}
			if q.MemoryBits() <= uniform.MemoryBits() && q.Bound() < bestBound {
				bestBound = q.Bound()
				best = append([]int(nil), prefix...)
			}
			return
		}
		for b := uniformBits - 4; b <= uniformBits+4; b++ {
			if b < 2 || b > 52 {
				continue
			}
			try(append(prefix, b))
		}
	}
	try(nil)
	if best == nil {
		return nil, uniform.Bound(), float64(uniform.MemoryBits())
	}
	q, _ := quant.Quantize(net, quant.Options{PerLayerBits: best})
	return best, bestBound, float64(q.MemoryBits())
}
