package experiments

import (
	"repro/internal/activation"
	"repro/internal/conv"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/rng"
)

func init() {
	Register(Experiment{ID: "CS", Title: "Conv sweep: native engine vs lowering under every registered fault model",
		Tags: []string{"extension", "sweep", "faultmodels", "conv"}, Run: ConvModelSweep})
}

// ConvModelSweep is the model-layer counterpart of S1: one 2-D
// convolutional net evaluated NATIVELY (no dense lowering on the
// evaluation path), swept under every registered fault model, each
// measured worst-case error compared against the Fep bound computed
// from the Section VI receptive-field shape. Two invariants are
// asserted per model: the native faulted forward is bit-identical to
// injecting the lowered dense network with the same plan (the lowering
// stays as the oracle), and the measurement respects the bound. A final
// table quantifies the fault-budget advantage — the same Fep formulas
// fed the receptive-field shape versus an untied dense net of identical
// widths — per fault model's deviation cap.
func ConvModelSweep() *Result {
	res := &Result{ID: "CS", Title: "Conv sweep: native engine vs lowering under every registered fault model"}
	r := rng.New(0xc5eed)

	convNet, err := conv.NewRandom2D(r.Split(), 8, 8, []int{3, 3}, []int{2, 2}, activation.NewSigmoid(1), 0.5, true)
	if err != nil {
		res.note("conv construction failed: %v", err)
		return res
	}
	lowered, err := conv.Lower2D(convNet)
	if err != nil {
		res.note("lowering failed: %v", err)
		return res
	}
	cs := core.ShapeOfModel(convNet)
	inputs := metrics.RandomPoints(r.Split(), 64, 40)

	neuronFaults := []int{2, 1}
	plan := fault.AdversarialNeuronPlan(convNet, neuronFaults)
	nativeCP := fault.Compile(convNet, plan)
	loweredCP := fault.Compile(lowered, plan)

	params := func(m nn.Model) fault.Params {
		return fault.Params{
			C:     0.6,
			Sem:   core.DeviationCap,
			Value: 0.85,
			Prob:  0.6,
			Bits:  8,
			Bit:   6,
			Net:   m,
			R:     rng.NewStream(0xfeed, 7),
		}
	}

	nt := metrics.NewTable("native conv injection, adversarial neuron faults f = [2 1] (8x8 input, 3x3 kernels)",
		"model", "measured_native", "fep_bound", "utilisation_%", "bit_identical_to_lowered")
	for _, m := range fault.Models() {
		p := params(convNet)
		nativeInj, err := m.New(p)
		if err != nil {
			res.note("VIOLATION: model %s failed to instantiate: %v", m.Name, err)
			continue
		}
		// Identically seeded stream for the lowered oracle, so
		// stochastic models draw the same sequences.
		loweredInj, err := m.New(params(lowered))
		if err != nil {
			res.note("VIOLATION: model %s failed on the lowered net: %v", m.Name, err)
			continue
		}
		dev := m.NeuronDeviation(p, cs)
		bound := core.Fep(cs, neuronFaults, dev)
		measured := 0.0
		identical := true
		for _, x := range inputs {
			ne := nativeCP.ErrorOn(nativeInj, x)
			de := loweredCP.ErrorOn(loweredInj, x)
			if ne != de {
				identical = false
			}
			if ne > measured {
				measured = ne
			}
		}
		util := 0.0
		if bound > 0 {
			util = 100 * measured / bound
		}
		nt.AddRow(m.Name, fmtF(measured), fmtF(bound), fmtF(util), fmtBool(identical))
		if !identical {
			res.note("VIOLATION: %s native evaluation diverged from the lowered oracle", m.Name)
		}
		if measured > bound*(1+1e-9) {
			res.note("VIOLATION: %s measured %v above receptive-field Fep bound %v", m.Name, measured, bound)
		}
	}
	res.Tables = append(res.Tables, nt)

	// Fault-budget advantage per model: the same deviation cap fed the
	// receptive-field shape vs an untied dense net of identical widths.
	dense := nn.NewRandom(r.Split(), nn.Config{
		InputDim: 64,
		Widths:   cs.Widths,
		Act:      activation.NewSigmoid(1),
	}, 0.5)
	ds := core.ShapeOf(dense)
	at := metrics.NewTable("fault-budget advantage: dense Fep over conv Fep at each model's deviation cap",
		"model", "deviation_cap", "conv_fep", "dense_fep", "dense_over_conv")
	for _, m := range fault.Models() {
		p := params(convNet)
		devConv := m.NeuronDeviation(p, cs)
		devDense := m.NeuronDeviation(params(dense), ds)
		cf := core.Fep(cs, neuronFaults, devConv)
		df := core.Fep(ds, neuronFaults, devDense)
		ratio := 0.0
		if cf > 0 {
			ratio = df / cf
		}
		at.AddRow(m.Name, fmtF(devConv), fmtF(cf), fmtF(df), fmtF(ratio))
		if df <= cf {
			res.note("VIOLATION: %s dense Fep %v not above conv Fep %v", m.Name, df, cf)
		}
	}
	res.Tables = append(res.Tables, at)

	res.note("native conv evaluation (zero lowering on the hot path) is bit-identical to the lowered oracle for all %d models", len(fault.Models()))
	res.note("the receptive-field w_m over R(l) shared values keeps every model's bound below its untied dense counterpart — Section VI at engine speed")
	return res
}

// fmtBool renders a boolean table cell.
func fmtBool(b bool) string {
	if b {
		return "yes"
	}
	return "NO"
}
