package experiments

import (
	"math"
	"time"

	"repro/internal/activation"
	"repro/internal/approx"
	"repro/internal/conv"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/train"
)

// Boosting regenerates the Application B experiment: a network whose
// neurons have heavy-tailed latencies, evaluated baseline (wait for all
// signals) vs boosted (wait for N_l - f_l per Corollary 2), comparing
// completion time and verifying the certified accuracy envelope.
func init() {
	Register(Experiment{ID: "B1", Title: "Corollary 2 / App. B: boosting computations",
		Tags: []string{"application"}, Run: Boosting})
	Register(Experiment{ID: "L1", Title: "Lemma 1: unbounded transmission",
		Tags: []string{"lemma", "training"}, Run: Lemma1UnboundedByzantine})
	Register(Experiment{ID: "TR", Title: "App. C: robustness vs ease of learning",
		Tags: []string{"application", "training"}, Run: TradeoffRobustnessLearning})
	Register(Experiment{ID: "CV", Title: "Section VI: convolutional receptive fields",
		Tags: []string{"analysis", "conv"}, Run: ConvReceptiveField})
	Register(Experiment{ID: "CX", Title: "Section I: combinatorial explosion vs Fep",
		Tags: []string{"analysis"}, Run: CombinatorialVsFep})
	Register(Experiment{ID: "OP", Title: "Section II-C / Cor. 1: over-provisioning",
		Tags: []string{"application", "training"}, Run: OverProvisioning})
	Register(Experiment{ID: "FR", Title: "Section VI future work: Fep-regularised learning",
		Tags: []string{"extension", "training"}, Run: FepRegularisedTraining})
}

func Boosting() *Result {
	res := &Result{ID: "B1", Title: "Boosting computations (Corollary 2)"}
	r := rng.New(77)
	net := nn.NewRandom(r, nn.Config{
		InputDim: 3,
		Widths:   []int{12, 12},
		Act:      activation.NewSigmoid(1),
	}, 0.3)
	s := core.ShapeOf(net)
	lat := dist.HeavyTail{Base: 1, TailProb: 0.25, TailScale: 25}
	epsPrime := 0.05

	t := metrics.NewTable("waiting-time reduction under heavy-tailed latencies (mean of 40 runs)",
		"f_per_layer", "certified_slack", "mean_T_baseline", "mean_T_boosted", "speedup", "worst_err", "mean_resets")
	for _, f := range []int{0, 1, 2, 3, 4} {
		faults := []int{f, f}
		slack := core.CrashFep(s, faults)
		eps := epsPrime + slack*1.001
		var waits []int
		if f > 0 {
			var err error
			waits, err = dist.CertifiedWaits(net, faults, eps, epsPrime)
			if err != nil {
				res.note("f=%d rejected: %v", f, err)
				continue
			}
		}
		var tBase, tBoost, worstErr, resets float64
		const trials = 40
		for trial := 0; trial < trials; trial++ {
			x := []float64{r.Float64(), r.Float64(), r.Float64()}
			seed := r.Uint64()
			base, err := dist.Simulate(net, x, lat, nil, rng.New(seed))
			if err != nil {
				res.note("simulate failed: %v", err)
				return res
			}
			boost := base
			if f > 0 {
				boost, err = dist.Simulate(net, x, lat, waits, rng.New(seed))
				if err != nil {
					res.note("simulate failed: %v", err)
					return res
				}
			}
			tBase += base.FinishTime
			tBoost += boost.FinishTime
			resets += float64(boost.Resets)
			if e := math.Abs(boost.Output - net.Forward(x)); e > worstErr {
				worstErr = e
			}
		}
		tBase /= trials
		tBoost /= trials
		resets /= trials
		t.AddNumericRow(float64(f), slack, tBase, tBoost, tBase/tBoost, worstErr, resets)
		if worstErr > slack*(1+1e-9)+1e-12 {
			res.note("VIOLATION at f=%d: boosted error %v exceeds certified slack %v", f, worstErr, slack)
		}
	}
	res.Tables = append(res.Tables, t)
	res.note("boosting trades certified accuracy slack for completion time; speedup grows with f under heavy-tailed stragglers")
	return res
}

// Lemma1UnboundedByzantine regenerates Lemma 1: with growing transmission
// capacity a single Byzantine neuron inflicts unbounded damage (log-log
// slope 1 in C), while a crashed neuron's damage is capacity-independent.
func Lemma1UnboundedByzantine() *Result {
	res := &Result{ID: "L1", Title: "Unbounded transmission (Lemma 1)"}
	target := approx.Sine1D(1)
	net, epsPrime := fitted(3, target, []int{12}, 1, 250)
	inputs := evalInputs(1)
	plan := fault.AdversarialNeuronPlan(net, []int{1})

	byzS := metrics.NewSeries("byzantine_err", 7)
	crashS := metrics.NewSeries("crash_err", 7)
	crashErr := fault.MaxError(net, plan, fault.Crash{}, inputs)
	for _, c := range []float64{0.5, 1, 2, 4, 8, 16, 32} {
		e := fault.MaxError(net, plan, fault.Byzantine{C: c, Sem: core.DeviationCap}, inputs)
		byzS.Add(c, e)
		crashS.Add(c, crashErr)
	}
	res.Tables = append(res.Tables, metrics.SeriesTable(
		"single faulty neuron: error vs synaptic capacity C", "C", byzS, crashS))
	slope := metrics.LogLogSlope(byzS.X, byzS.Y)
	res.note("byzantine error grows with log-log slope %.3f (theory: 1.0 — linear in C, unbounded as C->inf)", slope)
	res.note("crash error is constant %.4f: bounded by the activation range regardless of capacity", crashErr)
	res.note("ε' = %.4f: any fixed ε is eventually broken by one Byzantine neuron, Lemma 1", epsPrime)
	return res
}

// TradeoffRobustnessLearning regenerates Application C: the two levers of
// Section V-C. Sweep K (discrimination vs robustness) and weight decay
// (low weights vs capacity), reporting learning effort and the fault
// budget the trained network certifiably tolerates.
func TradeoffRobustnessLearning() *Result {
	res := &Result{ID: "TR", Title: "Robustness vs ease of learning (Application C)"}
	target := approx.SmoothStep(8)

	// K dilemma. Section V-C states the trade-off under a weight budget:
	// with weights constrained (projected SGD, |w| <= 0.6), a low-K
	// activation is less discriminating — it learns the sharp step
	// slowly or not at all — while its K^{L-l} factors leave room for
	// many more tolerated faults. Two-layer nets so K actually enters
	// Fep.
	const lossTarget = 0.005
	kt := metrics.NewTable("Lipschitz-constant trade-off (widths 12x8, |w| <= 0.6, loss target 0.005)",
		"K", "epochs_to_target", "final_mse", "max_uniform_faults(budget=2)", "fep_1_per_layer")
	for _, k := range []float64{0.25, 0.5, 1, 2, 4} {
		net, rep, _ := train.Fit(target, []int{12, 8}, activation.NewSigmoid(k), train.Config{
			Epochs: 400, LR: 0.1, Momentum: 0.9, Seed: 31, ClipWeights: 0.6,
		})
		epochs := len(rep.Losses)
		for i, l := range rep.Losses {
			if l <= lossTarget {
				epochs = i + 1
				break
			}
		}
		s := core.ShapeOf(net)
		maxF := core.MaxUniformFaults(s, s.ActCap, 2.0)
		kt.AddNumericRow(k, float64(epochs), rep.FinalLoss, float64(maxF), core.CrashFep(s, []int{1, 1}))
	}
	res.Tables = append(res.Tables, kt)
	res.note("under the weight budget, small K needs more epochs on the sharp step (less discriminating) but its K^{L-l} factors leave room for more faults — the K dilemma")

	// Weight dilemma: impose low weights with decay; more neurons would
	// be needed to recover accuracy (Section V-C).
	wt := metrics.NewTable("weight-decay trade-off (K=1, widths 12x8, 400 epochs)",
		"weight_decay", "final_mse", "w_m_max", "max_uniform_faults(budget=2)")
	for _, wd := range []float64{0, 1e-3, 3e-3, 1e-2} {
		net, rep, _ := train.Fit(target, []int{12, 8}, activation.NewSigmoid(1), train.Config{
			Epochs: 400, LR: 0.1, Momentum: 0.9, WeightDecay: wd, Seed: 32,
		})
		s := core.ShapeOf(net)
		wmMax := 0.0
		for _, w := range s.MaxW {
			if w > wmMax {
				wmMax = w
			}
		}
		maxF := core.MaxUniformFaults(s, s.ActCap, 2.0)
		wt.AddNumericRow(wd, rep.FinalLoss, wmMax, float64(maxF))
	}
	res.Tables = append(res.Tables, wt)
	res.note("stronger decay shrinks w_m and buys fault budget at some accuracy cost — the weight dilemma")
	return res
}

// convEdgeTask is a shift-invariant 1-D detection task (the label is high
// when an up-down edge appears anywhere in the signal) — the workload
// convolutional weight sharing exists for.
func convEdgeTask(r *rng.Rand, width, samples int) ([][]float64, []float64) {
	xs := make([][]float64, samples)
	ys := make([]float64, samples)
	for i := range xs {
		xs[i] = make([]float64, width)
		r.Floats(xs[i], 0, 1)
		best := 0.0
		for j := 0; j+2 < width; j++ {
			v := xs[i][j+1] - (xs[i][j]+xs[i][j+2])/2
			if v > best {
				best = v
			}
		}
		ys[i] = best
	}
	return xs, ys
}

// ConvReceptiveField regenerates the Section VI observation: with weight
// sharing and limited receptive fields, w_m^{(l)} runs over R(l) values
// and the bounds are less restrictive than for an unconstrained dense
// layer of the same size. The primary table is the structural claim
// (identical weight distributions: the max over R(l) draws is smaller
// than over N_l x N_{l-1} draws). A second table trains both nets on the
// same shift-invariant task and documents a caveat the paper does not
// discuss: gradient pressure concentrates on the few shared kernel
// values, which can erase — even invert — the structural advantage.
func ConvReceptiveField() *Result {
	res := &Result{ID: "CV", Title: "Convolutional receptive fields (Section VI)"}
	r := rng.New(55)
	const width = 12

	// Structural comparison at identical init scale.
	convNet, err := conv.NewRandom(r.Split(), width, []int{3, 3}, []int{2, 2}, activation.NewSigmoid(1), 0.5, false)
	if err != nil {
		res.note("conv construction failed: %v", err)
		return res
	}
	denseInit := nn.NewRandom(r.Split(), nn.Config{
		InputDim: width,
		Widths:   convNet.Widths(),
		Act:      activation.NewSigmoid(1),
	}, 0.5)
	cs := conv.Shape(convNet)
	dsInit := core.ShapeOf(denseInit)
	ft := metrics.NewTable("structural claim: same weight distribution, C=1",
		"faults_per_layer", "conv_fep", "dense_fep", "dense_over_conv")
	for _, f := range []int{1, 2, 3} {
		faults := make([]int, len(cs.Widths))
		for i := range faults {
			faults[i] = f
		}
		cf := core.Fep(cs, faults, 1)
		df := core.Fep(dsInit, faults, 1)
		ft.AddNumericRow(float64(f), cf, df, df/cf)
		if df <= cf {
			res.note("VIOLATION: structural dense Fep %v not above conv %v at f=%d", df, cf, f)
		}
	}
	res.Tables = append(res.Tables, ft)
	res.note("the max over N_l x N_{l-1} i.i.d. weights dominates the max over R(l) shared values: less restrictive conv bounds, as Section VI argues")

	// Measured tightness through the NATIVE conv engine: adversarial
	// crashes injected directly into the conv model (no lowering on the
	// evaluation path), validated bit-for-bit against the lowered
	// oracle and against the receptive-field CrashFep.
	lowered, err := conv.Lower(convNet)
	if err != nil {
		res.note("lowering failed: %v", err)
		return res
	}
	engineInputs := metrics.RandomPoints(r.Split(), width, 40)
	et := metrics.NewTable("native engine: adversarial crashes on the conv model vs the receptive-field bound",
		"faults_per_layer", "measured_native", "crash_fep", "utilisation_%", "bit_identical_to_lowered")
	for _, f := range []int{1, 2, 3} {
		faults := make([]int, len(cs.Widths))
		for i := range faults {
			faults[i] = f
		}
		plan := fault.AdversarialNeuronPlan(convNet, faults)
		nativeCP := fault.Compile(convNet, plan)
		loweredCP := fault.Compile(lowered, plan)
		measured := 0.0
		identical := true
		for _, x := range engineInputs {
			ne := nativeCP.ErrorOn(fault.Crash{}, x)
			if ne != loweredCP.ErrorOn(fault.Crash{}, x) {
				identical = false
			}
			if ne > measured {
				measured = ne
			}
		}
		bound := core.CrashFep(cs, faults)
		et.AddRow(fmtF(float64(f)), fmtF(measured), fmtF(bound), fmtF(100*measured/bound), fmtBool(identical))
		if !identical {
			res.note("VIOLATION: native conv evaluation diverged from the lowered oracle at f=%d", f)
		}
		if measured > bound*(1+1e-9) {
			res.note("VIOLATION: native measured %v above receptive-field CrashFep %v at f=%d", measured, bound, f)
		}
	}
	res.Tables = append(res.Tables, et)

	// Trained comparison on a shift-invariant task.
	trainedConv, err := conv.NewRandom(r.Split(), width, []int{3, 3}, []int{2, 2}, activation.NewSigmoid(1), 0.5, true)
	if err != nil {
		res.note("conv construction failed: %v", err)
		return res
	}
	xs, ys := convEdgeTask(r.Split(), width, 300)
	convMSE := conv.Train(trainedConv, xs, ys, conv.TrainConfig{Epochs: 250, LR: 0.3, Seed: 55})
	trainedDense := nn.NewGlorot(r.Split(), nn.Config{
		InputDim: width,
		Widths:   trainedConv.Widths(),
		Act:      activation.NewSigmoid(1),
		Bias:     true,
	})
	denseRep := train.NewTrainer(train.Config{Epochs: 250, LR: 0.1, Momentum: 0.9, Seed: 56}).
		Train(trainedDense, train.Dataset{X: xs, Y: ys})

	tcs := conv.Shape(trainedConv)
	tds := core.ShapeOf(trainedDense)
	tt := metrics.NewTable("after training on the same edge-detection task",
		"layer", "R(l)", "conv_w_m", "dense_w_m")
	for l := 0; l < len(tcs.MaxW); l++ {
		field := 0.0
		if l < len(trainedConv.Layers) {
			field = float64(trainedConv.Layers[l].Field())
		}
		tt.AddNumericRow(float64(l+1), field, tcs.MaxW[l], tds.MaxW[l])
	}
	res.Tables = append(res.Tables, tt)
	faults := make([]int, len(tcs.Widths))
	for i := range faults {
		faults[i] = 1
	}
	res.note("task MSE: conv %.5f vs dense %.5f; trained Fep(1 per layer): conv %.2f vs dense %.2f", convMSE, denseRep.FinalLoss,
		core.Fep(tcs, faults, 1), core.Fep(tds, faults, 1))
	res.note("CAVEAT (finding beyond the paper): training concentrates gradient mass on the few shared kernel values, which can erase the structural advantage — another argument for the Fep-regularised learning of experiment FR")
	return res
}

// CombinatorialVsFep regenerates the Section I motivation: assessing
// robustness experimentally means enumerating all failure configurations
// (and all inputs), while Fep needs one O(L) formula. The table reports
// configuration counts and wall times as the layer widens.
func CombinatorialVsFep() *Result {
	res := &Result{ID: "CX", Title: "Combinatorial explosion vs topology-only bound (Section I)"}
	r := rng.New(99)
	inputs := metrics.RandomPoints(r, 2, 8)

	t := metrics.NewTable("exhaustive worst-case search vs Fep (f = 2 per layer)",
		"widths", "configurations", "exhaustive_ms", "fep_ns", "exhaustive_worst", "fep_bound")
	for _, w := range []int{6, 9, 12, 15} {
		net := nn.NewRandom(r.Split(), nn.Config{
			InputDim: 2,
			Widths:   []int{w, w},
			Act:      activation.NewSigmoid(1),
		}, 0.5)
		perLayer := []int{2, 2}
		shape := core.ShapeOf(net)

		start := time.Now()
		ex, err := fault.ExhaustiveWorstCrash(net, perLayer, inputs, 5_000_000)
		exMS := float64(time.Since(start).Microseconds()) / 1000
		if err != nil {
			res.note("width %d: %v", w, err)
			continue
		}
		start = time.Now()
		const reps = 1000
		var bound float64
		for i := 0; i < reps; i++ {
			bound = core.CrashFep(shape, perLayer)
		}
		fepNS := float64(time.Since(start).Nanoseconds()) / reps

		t.AddRow(fmtInt(w)+"x"+fmtInt(w), fmtInt(int(ex.Configurations)), fmtF(exMS), fmtF(fepNS),
			fmtF(ex.WorstError), fmtF(bound))
		if ex.WorstError > bound*(1+1e-9) {
			res.note("VIOLATION: exhaustive worst %v above Fep %v at width %d", ex.WorstError, bound, w)
		}
	}
	res.Tables = append(res.Tables, t)
	res.note("configurations grow as C(N,f)^L while Fep stays O(L): the motivation for a topology-only bound")
	return res
}

// OverProvisioning regenerates the Section II-C / Corollary 1 discussion
// with the constructive universal approximator (approx.Staircase): wider
// constructions achieve finer ε' (Barron ~1/N) with output weights ~1/N,
// so at fixed ε the tolerated crash count of Theorem 1 grows with width —
// over-provisioning converted into certified robustness. A second table
// shows why free SGD training does NOT exhibit this: it concentrates
// weight mass, which is precisely the behaviour Fep-regularised training
// (experiment FR) corrects.
func OverProvisioning() *Result {
	res := &Result{ID: "OP", Title: "Over-provisioning buys robustness (Section II-C, Corollary 1)"}
	target := approx.Sine1D(1)
	eps := 0.3
	inputs := evalInputs(1)

	t := metrics.NewTable("constructive staircase approximations at fixed ε = 0.3",
		"width", "eps_prime", "w_m_out", "thm1_max_crashes", "measured_max_crashes")
	var widths, epsPrimes []float64
	for _, w := range []int{8, 16, 32, 64, 128} {
		net, err := approx.Staircase(target, w, 12*float64(w))
		if err != nil {
			res.note("staircase width %d failed: %v", w, err)
			continue
		}
		epsPrime := approx.SupDistance(target, net, inputs)
		wm := net.MaxWeight(2)
		nMax := core.Theorem1MaxCrashes(eps, epsPrime, wm)
		measuredMax := measuredCrashTolerance(net, target, eps, inputs)
		nMaxF := float64(nMax)
		if nMax > 1<<30 {
			nMaxF = math.Inf(1)
		}
		t.AddNumericRow(float64(w), epsPrime, wm, nMaxF, float64(measuredMax))
		widths = append(widths, float64(w))
		epsPrimes = append(epsPrimes, epsPrime)
		if measuredMax < nMax {
			res.note("VIOLATION: width %d guarantees %d crashes but measured only %d", w, nMax, measuredMax)
		}
	}
	res.Tables = append(res.Tables, t)
	slope := metrics.LogLogSlope(widths, epsPrimes)
	res.note("ε'(N) log-log slope %.2f (Barron-style ~1/N decay)", slope)
	res.note("both ε' and w_m shrink with width, so the certified crash count grows — Corollary 1 made constructive")

	// Contrast: freely trained networks of growing width do not spread
	// their weights, so the certificate does not improve.
	ft := metrics.NewTable("freely SGD-trained networks (same ε)",
		"width", "eps_prime", "w_m_out", "thm1_max_crashes")
	for _, w := range []int{8, 16, 32} {
		net, epsPrime := fitted(uint64(200+w), target, []int{w}, 1, 350)
		wm := net.MaxWeight(2)
		nMax := core.Theorem1MaxCrashes(eps, epsPrime, wm)
		nMaxF := float64(nMax)
		if nMax > 1<<30 {
			nMaxF = math.Inf(1)
		}
		ft.AddNumericRow(float64(w), epsPrime, wm, nMaxF)
	}
	res.Tables = append(res.Tables, ft)
	res.note("free SGD concentrates weight mass (w_m stays ~2-3) regardless of width: over-provisioning alone is not enough, the learning scheme must spread the function — the paper's closing research question")

	// The mechanical fix: split every neuron of the trained net into k
	// copies with outgoing weights /k. The function — and hence ε' — is
	// EXACTLY preserved while w_m drops by k: Corollary 1 applied to a
	// finished network, no retraining.
	base, baseEps := fitted(208, target, []int{8}, 1, 350)
	st := metrics.NewTable("neuron splitting on the trained width-8 net (function preserved exactly)",
		"split_k", "width", "w_m_out", "thm1_max_crashes")
	prevCrashes := -1
	for _, k := range []int{1, 4, 16, 64} {
		split, err := nn.SplitNeurons(base, 1, k)
		if err != nil {
			res.note("split %d failed: %v", k, err)
			continue
		}
		wm := split.MaxWeight(2)
		nMax := core.Theorem1MaxCrashes(eps, baseEps, wm)
		st.AddNumericRow(float64(k), float64(split.Width(1)), wm, float64(nMax))
		if nMax < prevCrashes {
			res.note("VIOLATION: splitting reduced the certificate at k=%d", k)
		}
		prevCrashes = nMax
	}
	res.Tables = append(res.Tables, st)
	res.note("splitting buys certified crashes linearly in k at zero accuracy cost — granular over-provisioning as a post-hoc transform")
	return res
}

// measuredCrashTolerance returns the largest adversarial crash count whose
// measured sup error against the target stays within eps.
func measuredCrashTolerance(net *nn.Network, target approx.Target, eps float64, inputs [][]float64) int {
	measuredMax := 0
	for f := 0; f <= net.Width(1); f++ {
		cp := fault.Compile(net, fault.AdversarialNeuronPlan(net, []int{f}))
		worst := metrics.SupDistance(target.Eval, func(x []float64) float64 {
			return cp.Forward(fault.Crash{}, x)
		}, inputs)
		if worst <= eps {
			measuredMax = f
		} else {
			break
		}
	}
	return measuredMax
}

// FepRegularisedTraining regenerates the Section VI future-work proposal:
// take Fep as an additional minimisation target. Sweep the penalty weight
// and report accuracy vs achieved Fep and the certified fault budget.
func FepRegularisedTraining() *Result {
	res := &Result{ID: "FR", Title: "Fep-regularised learning (Section VI future work)"}
	target := approx.Sine1D(1)
	faults := []int{2}
	budget := 0.3

	t := metrics.NewTable("penalty sweep (width 16, 300 epochs, anticipated faults f=(2))",
		"fep_penalty", "final_mse", "crash_fep(f)", "max_uniform_faults")
	for _, pen := range []float64{0, 0.001, 0.003, 0.01, 0.03} {
		net, rep, _ := train.Fit(target, []int{16}, activation.NewSigmoid(1), train.Config{
			Epochs: 300, LR: 0.1, Momentum: 0.9, Seed: 41,
			FepPenalty: pen, FepFaults: faults, FepC: 1,
		})
		s := core.ShapeOf(net)
		t.AddNumericRow(pen, rep.FinalLoss, core.CrashFep(s, faults), float64(core.MaxUniformFaults(s, s.ActCap, budget)))
	}
	res.Tables = append(res.Tables, t)
	res.note("increasing the penalty drives the achieved Fep down (more certifiable faults) at a growing accuracy cost — the optimisation problem the paper poses")
	return res
}
