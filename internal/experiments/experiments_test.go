package experiments

import (
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/store"
)

// cell reads a numeric cell back out of a rendered table.
func cell(t *testing.T, tb *metrics.Table, row, col int) float64 {
	t.Helper()
	s := tb.Rows[row][col]
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %d,%d = %q not numeric: %v", row, col, s, err)
	}
	return v
}

func noViolations(t *testing.T, res *Result) {
	t.Helper()
	for _, n := range res.Notes {
		if strings.Contains(n, "VIOLATION") {
			t.Fatalf("[%s] %s", res.ID, n)
		}
	}
}

func TestFig2Profiles(t *testing.T) {
	res := Fig2SigmoidProfiles()
	if len(res.Tables) != 1 {
		t.Fatal("expected one table")
	}
	tb := res.Tables[0]
	if len(tb.Columns) != 6 {
		t.Fatalf("columns = %v", tb.Columns)
	}
	// All values in (0,1); larger K steeper at x > 0: compare the K=4
	// column against K=0.25 at the last positive x.
	last := len(tb.Rows) - 1
	low := cell(t, tb, last, 1)
	high := cell(t, tb, last, 5)
	if high <= low {
		t.Fatalf("K=4 profile (%v) not steeper than K=0.25 (%v) at x=6", high, low)
	}
	noViolations(t, res)
}

func TestThm1CrashBoundShape(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	res := Thm1CrashBound()
	noViolations(t, res)
	sweep := res.Tables[0]
	// measured_err <= total bound column ... measured column 1, f*wm col 2.
	for i := range sweep.Rows {
		if cell(t, sweep, i, 1) > cell(t, sweep, i, 2)*(1+1e-9)+1e-12 {
			t.Fatalf("row %d: measured above f*wm", i)
		}
	}
	// Tightness table: ratios ~ 1 for f >= 1.
	tight := res.Tables[1]
	for i := 1; i < len(tight.Rows); i++ {
		ratio := cell(t, tight, i, 3)
		if ratio < 0.999 || ratio > 1.001 {
			t.Fatalf("tightness ratio %v at row %d", ratio, i)
		}
	}
}

func TestThm2DepthShape(t *testing.T) {
	res := Thm2DepthPropagation()
	noViolations(t, res)
	tb := res.Tables[0]
	// Bound decreases towards the output (col 2), measured <= bound.
	for i := range tb.Rows {
		if cell(t, tb, i, 1) > cell(t, tb, i, 2)*(1+1e-9) {
			t.Fatalf("row %d: measured above bound", i)
		}
		if i > 0 && cell(t, tb, i, 2) >= cell(t, tb, i-1, 2) {
			t.Fatalf("bound not decreasing with depth at row %d", i)
		}
	}
}

func TestThm4SynapseShape(t *testing.T) {
	res := Thm4SynapseBound()
	noViolations(t, res)
	tb := res.Tables[0]
	for i := range tb.Rows {
		if cell(t, tb, i, 1) > cell(t, tb, i, 2)*(1+1e-9) {
			t.Fatalf("row %d: measured above Lemma 2 bound", i)
		}
	}
}

func TestThm5QuantShape(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	res := Thm5Quantisation()
	noViolations(t, res)
	tb := res.Tables[0]
	for i := range tb.Rows {
		if cell(t, tb, i, 1) > cell(t, tb, i, 2)*(1+1e-9) {
			t.Fatalf("row %d: measured above Theorem 5 bound", i)
		}
		if i > 0 && cell(t, tb, i, 2) >= cell(t, tb, i-1, 2) {
			t.Fatalf("bound not shrinking with bits at row %d", i)
		}
	}
}

func TestBoostingShape(t *testing.T) {
	res := Boosting()
	noViolations(t, res)
	tb := res.Tables[0]
	// Speedup column (4) should be >= 1 for f >= 1 and grow overall.
	first := cell(t, tb, 1, 4)
	last := cell(t, tb, len(tb.Rows)-1, 4)
	if first < 1-1e-9 {
		t.Fatalf("boosting slowdown at f=1: %v", first)
	}
	if last < first {
		t.Fatalf("speedup not growing with f: %v -> %v", first, last)
	}
}

func TestLemma1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	res := Lemma1UnboundedByzantine()
	noViolations(t, res)
	tb := res.Tables[0]
	// Byzantine error grows with C; crash error constant.
	n := len(tb.Rows)
	if cell(t, tb, n-1, 1) <= cell(t, tb, 0, 1) {
		t.Fatal("byzantine error did not grow with capacity")
	}
	if cell(t, tb, n-1, 2) != cell(t, tb, 0, 2) {
		t.Fatal("crash error should be capacity-independent")
	}
}

func TestTradeoffShape(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	res := TradeoffRobustnessLearning()
	noViolations(t, res)
	kt := res.Tables[0]
	last := len(kt.Rows) - 1
	// Robustness side: the smallest K tolerates strictly more faults
	// than the largest, and the per-fault Fep grows monotonically in K.
	if cell(t, kt, 0, 3) <= cell(t, kt, last, 3) {
		t.Fatal("small K should tolerate strictly more faults than large K under the weight budget")
	}
	for i := 1; i < len(kt.Rows); i++ {
		if cell(t, kt, i, 4) <= cell(t, kt, i-1, 4) {
			t.Fatalf("Fep per fault not increasing in K at row %d", i)
		}
	}
	// Ease side: the smallest K needs more epochs than K = 1 (row 2).
	if cell(t, kt, 0, 1) <= cell(t, kt, 2, 1) {
		t.Fatal("small K should learn the sharp step more slowly")
	}
	wt := res.Tables[1]
	// Stronger decay shrinks w_m (col 2) and buys faults (col 3).
	if cell(t, wt, len(wt.Rows)-1, 2) >= cell(t, wt, 0, 2) {
		t.Fatal("weight decay did not shrink w_m")
	}
	if cell(t, wt, len(wt.Rows)-1, 3) <= cell(t, wt, 0, 3) {
		t.Fatal("weight decay did not buy fault budget")
	}
}

func TestConvShape(t *testing.T) {
	res := ConvReceptiveField()
	noViolations(t, res)
	// Structural claim (first table): dense/conv Fep ratio > 1.
	ft := res.Tables[0]
	for i := range ft.Rows {
		if cell(t, ft, i, 3) <= 1 {
			t.Fatalf("dense/conv Fep ratio %v not > 1 at row %d", cell(t, ft, i, 3), i)
		}
	}
	// The trained caveat must be reported.
	found := false
	for _, n := range res.Notes {
		if strings.Contains(n, "CAVEAT") {
			found = true
		}
	}
	if !found {
		t.Fatal("trained-weights caveat note missing")
	}
}

func TestCombinatorialShape(t *testing.T) {
	res := CombinatorialVsFep()
	noViolations(t, res)
	tb := res.Tables[0]
	if len(tb.Rows) < 3 {
		t.Fatalf("too few widths succeeded: %d", len(tb.Rows))
	}
	// Configurations explode; Fep time stays within the same order.
	if cell(t, tb, len(tb.Rows)-1, 1) <= cell(t, tb, 0, 1) {
		t.Fatal("configuration count did not grow")
	}
	for i := range tb.Rows {
		if cell(t, tb, i, 4) > cell(t, tb, i, 5)*(1+1e-9) {
			t.Fatalf("exhaustive worst above Fep at row %d", i)
		}
	}
}

func TestWorstCaseTreeShape(t *testing.T) {
	res := WorstCaseTree()
	noViolations(t, res)
	tb := res.Tables[0]
	if len(tb.Rows) < 3 {
		t.Fatalf("too few widths succeeded: %d", len(tb.Rows))
	}
	pruned := false
	for i := range tb.Rows {
		// visited never exceeds the configuration count...
		if cell(t, tb, i, 2) > cell(t, tb, i, 1) {
			t.Fatalf("visited above configurations at row %d", i)
		}
		if cell(t, tb, i, 2) < cell(t, tb, i, 1) {
			pruned = true
		}
	}
	// ...and the bound-guided pruning must actually discard subtrees
	// somewhere, or the engine's reason to exist evaporates.
	if !pruned {
		t.Fatal("no row pruned any configurations")
	}
}

func TestOverProvisioningShape(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	res := OverProvisioning()
	noViolations(t, res)
	tb := res.Tables[0]
	// ε' at the largest width should be well below the smallest width's.
	first := cell(t, tb, 0, 1)
	last := cell(t, tb, len(tb.Rows)-1, 1)
	if last >= first {
		t.Fatalf("ε' did not improve with width: %v -> %v", first, last)
	}
	// Guaranteed crashes never exceed measured ones, never decrease with
	// width, and actually grow across the sweep.
	for i := range tb.Rows {
		if cell(t, tb, i, 3) > cell(t, tb, i, 4) {
			t.Fatalf("row %d: guaranteed crashes exceed measured", i)
		}
		if i > 0 && cell(t, tb, i, 3) < cell(t, tb, i-1, 3) {
			t.Fatalf("row %d: certified crashes decreased with width", i)
		}
	}
	if cell(t, tb, len(tb.Rows)-1, 3) < 5 {
		t.Fatal("widest construction should certify several crashes")
	}
	// Splitting table: certified crashes never decrease in k and the
	// largest split certifies at least one crash on the previously
	// uncertifiable trained net.
	st := res.Tables[2]
	for i := 1; i < len(st.Rows); i++ {
		if cell(t, st, i, 3) < cell(t, st, i-1, 3) {
			t.Fatalf("splitting reduced the certificate at row %d", i)
		}
	}
	if cell(t, st, len(st.Rows)-1, 3) < 1 {
		t.Fatal("largest split should certify at least one crash")
	}
}

func TestFepRegularisedShape(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	res := FepRegularisedTraining()
	noViolations(t, res)
	tb := res.Tables[0]
	// Achieved Fep (col 2) at the strongest penalty is below the
	// unpenalised one.
	if cell(t, tb, len(tb.Rows)-1, 2) >= cell(t, tb, 0, 2) {
		t.Fatal("penalty did not reduce achieved Fep")
	}
}

func TestMixedFaultsShape(t *testing.T) {
	res := MixedFaults()
	noViolations(t, res)
	mixTable := res.Tables[0]
	for i := range mixTable.Rows {
		if cell(t, mixTable, i, 3) > cell(t, mixTable, i, 4)*(1+1e-9) {
			t.Fatalf("row %d: measured above MixedFep", i)
		}
	}
	st := res.Tables[1]
	for i := range st.Rows {
		if cell(t, st, i, 2) > cell(t, st, i, 3)*(1+1e-9) {
			t.Fatalf("stream round %d: error above certificate", i)
		}
	}
}

func TestTopologySweepShape(t *testing.T) {
	res := TopologySweep()
	noViolations(t, res)
	if len(res.Tables) != 3 {
		t.Fatalf("have %d tables, want 3", len(res.Tables))
	}
	sweep := res.Tables[1]
	if len(sweep.Rows) != 4 {
		t.Fatalf("rewiring sweep has %d rows, want 4", len(sweep.Rows))
	}
	for i := range sweep.Rows {
		if cell(t, sweep, i, 2) > cell(t, sweep, i, 3)*(1+1e-9) {
			t.Fatalf("beta row %d: byzantine error above per-node bound", i)
		}
		if cell(t, sweep, i, 5) > cell(t, sweep, i, 6)*(1+1e-9) {
			t.Fatalf("beta row %d: crash error above per-node crash bound", i)
		}
	}
	comp := res.Tables[2]
	if len(comp.Rows) == 0 {
		t.Fatal("no composed cuts on the layered sweep point")
	}
	for i := range comp.Rows {
		if cell(t, comp, i, 3) > cell(t, comp, i, 1)*(1+1e-9) {
			t.Fatalf("cut row %d: measured above stitched bound", i)
		}
		if cell(t, comp, i, 1)*(1+1e-9) < cell(t, comp, i, 2) {
			t.Fatalf("cut row %d: stitched bound below monolithic bound", i)
		}
	}
}

func TestAllExperimentsHaveDistinctIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if len(seen) != 19 {
		t.Fatalf("expected 19 experiments, have %d", len(seen))
	}
}

func TestAllSortedWithTitlesAndTags(t *testing.T) {
	all := All()
	for i, e := range all {
		if i > 0 && all[i-1].ID >= e.ID {
			t.Fatalf("All() not sorted by ID at %s", e.ID)
		}
		if e.Title == "" {
			t.Fatalf("%s has no title", e.ID)
		}
		if len(e.Tags) == 0 {
			t.Fatalf("%s has no tags", e.ID)
		}
	}
}

func TestSelectByIDAndTag(t *testing.T) {
	exps, err := Select(Options{IDs: []string{"f2", " t2 "}})
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 2 || exps[0].ID != "F2" || exps[1].ID != "T2" {
		t.Fatalf("ID selection = %v", exps)
	}
	if _, err := Select(Options{IDs: []string{"F2", "ZZ"}}); err == nil || !strings.Contains(err.Error(), "ZZ") {
		t.Fatalf("unknown id not reported: %v", err)
	}
	figs, err := Select(Options{Tags: []string{"figure"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("figure tag selected %d experiments, want 2", len(figs))
	}
	none, err := Select(Options{Tags: []string{"no-such-tag"}})
	if err != nil || len(none) != 0 {
		t.Fatalf("bogus tag selected %d experiments (err %v)", len(none), err)
	}
}

// TestSelectPreservesRequestedOrder is the regression test for the
// -only ordering bug: `paperrepro -only T1,F3` must run and render T1
// before F3, not registry-sorted F3 first.
func TestSelectPreservesRequestedOrder(t *testing.T) {
	exps, err := Select(Options{IDs: []string{"T2", "F2"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 2 || exps[0].ID != "T2" || exps[1].ID != "F2" {
		ids := make([]string, len(exps))
		for i, e := range exps {
			ids[i] = e.ID
		}
		t.Fatalf("Select(T2,F2) returned %v, want [T2 F2]", ids)
	}
	// Duplicates collapse onto the first occurrence, keeping its slot.
	exps, err = Select(Options{IDs: []string{"t4", "F2", "T4"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 2 || exps[0].ID != "T4" || exps[1].ID != "F2" {
		t.Fatalf("duplicate selection = %v", exps)
	}
}

func TestEngineRunTimesAndOrders(t *testing.T) {
	exps, err := Select(Options{IDs: []string{"F2", "T2", "T4"}})
	if err != nil {
		t.Fatal(err)
	}
	outs := Run(exps, 2)
	if len(outs) != 3 {
		t.Fatalf("ran %d of 3", len(outs))
	}
	for i, o := range outs {
		if o.Result == nil {
			t.Fatalf("outcome %d has no result", i)
		}
		if o.Result.ID != exps[i].ID {
			t.Fatalf("outcome %d out of order: %s != %s", i, o.Result.ID, exps[i].ID)
		}
		if o.Elapsed <= 0 {
			t.Fatalf("outcome %s not timed", o.Result.ID)
		}
		noViolations(t, o.Result)
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	exps, err := Select(Options{IDs: []string{"F2"}})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteJSON(&sb, Run(exps, 1)); err != nil {
		t.Fatal(err)
	}
	var decoded []struct {
		ID             string   `json:"id"`
		Title          string   `json:"title"`
		Tags           []string `json:"tags"`
		ElapsedSeconds float64  `json:"elapsed_seconds"`
		Tables         []struct {
			Title   string     `json:"title"`
			Columns []string   `json:"columns"`
			Rows    [][]string `json:"rows"`
		} `json:"tables"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if len(decoded) != 1 || decoded[0].ID != "F2" {
		t.Fatalf("decoded %+v", decoded)
	}
	if len(decoded[0].Tables) == 0 || len(decoded[0].Tables[0].Rows) == 0 {
		t.Fatal("tables did not serialise")
	}
	if decoded[0].Tags[0] != "figure" {
		t.Fatalf("tags = %v", decoded[0].Tags)
	}
}

// TestPersistOutcomesRoundTrip: a campaign saved to the artifact store
// loads back with its tables intact.
func TestPersistOutcomesRoundTrip(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	exps, err := Select(Options{IDs: []string{"F2"}})
	if err != nil {
		t.Fatal(err)
	}
	outs := Run(exps, 1)
	entry, err := PersistOutcomes(st, outs, map[string]string{"only": "F2"})
	if err != nil {
		t.Fatal(err)
	}
	if entry.Kind != store.KindOutcomes {
		t.Fatalf("persisted kind %q", entry.Kind)
	}
	recs, err := LoadOutcomes(st, entry.ID[:12])
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ID != "F2" || len(recs[0].Tables) == 0 {
		t.Fatalf("loaded records = %+v", recs)
	}
	if len(recs[0].Tables[0].Rows) != len(outs[0].Result.Tables[0].Rows) {
		t.Fatal("table rows did not round-trip")
	}
}

func TestFaultModelSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	res := FaultModelSweep()
	noViolations(t, res)
	if len(res.Tables) != 2 {
		t.Fatalf("expected neuron + synapse tables, have %d", len(res.Tables))
	}
	for ti, tb := range res.Tables {
		if got, want := len(tb.Rows), len(faultModelNames(t)); got != want {
			t.Fatalf("table %d has %d rows for %d models", ti, got, want)
		}
	}
	// measured (col 3) <= bound (col 4) on the neuron table.
	nt := res.Tables[0]
	for i := range nt.Rows {
		if cell(t, nt, i, 3) > cell(t, nt, i, 4)*(1+1e-9) {
			t.Fatalf("row %d (%s): measured above bound", i, nt.Rows[i][0])
		}
	}
	// Every registered model appears by name.
	for i, name := range faultModelNames(t) {
		if nt.Rows[i][0] != name {
			t.Fatalf("row %d: model %q, want %q", i, nt.Rows[i][0], name)
		}
	}
}

func faultModelNames(t *testing.T) []string {
	t.Helper()
	names := fault.ModelNames()
	if len(names) < 7 {
		t.Fatalf("registry has %d models", len(names))
	}
	return names
}

func TestRunAllRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite is slow")
	}
	var sb strings.Builder
	results, err := RunAll(&sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(All()) {
		t.Fatalf("ran %d of %d experiments", len(results), len(All()))
	}
	out := sb.String()
	for _, e := range All() {
		if !strings.Contains(out, "["+e.ID+"]") {
			t.Fatalf("output missing experiment %s", e.ID)
		}
	}
	for _, r := range results {
		noViolations(t, r)
	}
}
