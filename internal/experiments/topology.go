package experiments

import (
	"repro/internal/activation"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/rng"
)

func init() {
	Register(Experiment{ID: "GS", Title: "Topology sweep: robustness of layered vs small-world graphs under per-node bounds",
		Tags: []string{"extension", "sweep", "graph", "topology"}, Run: TopologySweep})
}

// TopologySweep extends the paper's layered analysis to arbitrary
// topologies. Three claims are exercised:
//
//  1. Oracle: on a layer-expressible graph the sparse-DAG engine is
//     bit-identical to injecting the lowered dense network with the
//     same plan, for every registered fault model.
//  2. Soundness: along a Watts-Strogatz rewiring sweep (beta 0 -> 1,
//     increasingly non-layered) the measured adversarial error never
//     exceeds the per-node Fep bound — the layered Theorem 2 algebra
//     does not apply once skip connections appear, NodeShape does.
//  3. Composition: where an admissible cut exists, the stitched
//     certificate of the two independently certified halves still
//     dominates the measured error of the monolith.
func TopologySweep() *Result {
	res := &Result{ID: "GS", Title: "Topology sweep: robustness of layered vs small-world graphs under per-node bounds"}
	r := rng.New(0x9afe7)
	act := activation.NewSigmoid(1)
	widths := []int{8, 6, 5}
	const in = 3

	// 1. Bit-identity against the lowered oracle on a layer-expressible
	// sparse graph.
	g0 := graph.NewSparse(r.Split(), in, widths, act, 0.6)
	lowered, err := g0.Lower()
	if err != nil {
		res.note("VIOLATION: layer-expressible graph failed to lower: %v", err)
		return res
	}
	inputs := metrics.RandomPoints(r.Split(), in, 40)
	neuronFaults := []int{2, 1, 1}
	plan := fault.AdversarialNeuronPlan(g0, neuronFaults)
	nativeCP := fault.Compile(g0, plan)
	loweredCP := fault.Compile(lowered, plan)
	params := func(m nn.Model) fault.Params {
		return fault.Params{
			C: 0.6, Sem: core.DeviationCap, Value: 0.85, Prob: 0.6,
			Bits: 8, Bit: 6, Net: m, R: rng.NewStream(0x70b0, 3),
		}
	}
	ot := metrics.NewTable("sparse-DAG engine vs lowered dense oracle, adversarial faults f = [2 1 1]",
		"model", "measured_native", "bit_identical_to_lowered")
	for _, m := range fault.Models() {
		nativeInj, err := m.New(params(g0))
		if err != nil {
			res.note("VIOLATION: model %s failed to instantiate: %v", m.Name, err)
			continue
		}
		loweredInj, err := m.New(params(lowered))
		if err != nil {
			res.note("VIOLATION: model %s failed on the lowered net: %v", m.Name, err)
			continue
		}
		measured, identical := 0.0, true
		for _, x := range inputs {
			ne := nativeCP.ErrorOn(nativeInj, x)
			if ne != loweredCP.ErrorOn(loweredInj, x) {
				identical = false
			}
			if ne > measured {
				measured = ne
			}
		}
		ot.AddRow(m.Name, fmtF(measured), fmtBool(identical))
		if !identical {
			res.note("VIOLATION: %s sparse-DAG evaluation diverged from the lowered oracle", m.Name)
		}
	}
	res.Tables = append(res.Tables, ot)

	// 2. Watts-Strogatz rewiring sweep: same node budget, increasing
	// skip-connection share; adversarial byzantine and crash errors vs
	// the per-node bounds.
	st := metrics.NewTable("Watts-Strogatz sweep, faults 1 per level, C = 0.6 (ring degree 2)",
		"beta", "layered", "byz_measured", "byz_bound", "byz_util_%", "crash_measured", "crash_bound")
	faults := []int{1, 1, 1}
	for _, beta := range []float64{0, 0.25, 0.5, 1} {
		g := graph.NewSmallWorld(rng.New(0x5717), in, widths, act, 2, beta)
		ns, err := core.NodeShapeOf(g)
		if err != nil {
			res.note("VIOLATION: NodeShape failed at beta %.2f: %v", beta, err)
			continue
		}
		p := fault.AdversarialNeuronPlan(g, faults)
		byz := fault.MaxError(g, p, fault.Byzantine{C: 0.6, Sem: core.DeviationCap}, inputs)
		byzBound := ns.Fep(faults, 0.6)
		crash := fault.MaxError(g, p, fault.Crash{}, inputs)
		crashBound := ns.CrashFep(faults)
		util := 0.0
		if byzBound > 0 {
			util = 100 * byz / byzBound
		}
		st.AddRow(fmtF(beta), fmtBool(nn.IsLayered(g)), fmtF(byz), fmtF(byzBound), fmtF(util), fmtF(crash), fmtF(crashBound))
		if byz > byzBound*(1+1e-9) {
			res.note("VIOLATION: beta %.2f byzantine error %v above per-node bound %v", beta, byz, byzBound)
		}
		if crash > crashBound*(1+1e-9) {
			res.note("VIOLATION: beta %.2f crash error %v above per-node crash bound %v", beta, crash, crashBound)
		}
	}
	res.Tables = append(res.Tables, st)

	// 3. Compositional certification on the layered sweep point: cut
	// the graph, certify the halves independently, stitch, and compare
	// against both the monolithic bound and the measured error.
	gl := graph.NewSmallWorld(rng.New(0x5717), in, widths, act, 2, 0)
	ns, err := core.NodeShapeOf(gl)
	if err != nil {
		res.note("VIOLATION: NodeShape failed on the layered graph: %v", err)
		return res
	}
	L := gl.NumLayers()
	p := fault.AdversarialNeuronPlan(gl, faults)
	measured := fault.MaxError(gl, p, fault.Byzantine{C: 0.6, Sem: core.DeviationCap}, inputs)
	mono := ns.Fep(faults, 0.6)
	ct := metrics.NewTable("compositional certification, faults 1 per level, C = 0.6",
		"cut_after_level", "stitched_fep", "monolithic_fep", "measured", "stitched_over_monolithic")
	stitchedCuts := 0
	for _, cut := range core.Cuts(gl) {
		if cut < 1 || cut > L-1 {
			continue
		}
		a, err := core.CertifySpan(gl, 1, cut, faults[:cut], 0.6)
		if err != nil {
			res.note("VIOLATION: CertifySpan below cut %d: %v", cut, err)
			continue
		}
		b, err := core.CertifySpan(gl, cut+1, L+1, faults[cut:], 0.6)
		if err != nil {
			res.note("VIOLATION: CertifySpan above cut %d: %v", cut, err)
			continue
		}
		stitched, err := core.Compose(a, b)
		if err != nil {
			res.note("VIOLATION: Compose at cut %d: %v", cut, err)
			continue
		}
		stitchedCuts++
		ratio := 0.0
		if mono > 0 {
			ratio = stitched.Fep[0] / mono
		}
		ct.AddRow(fmtInt(cut), fmtF(stitched.Fep[0]), fmtF(mono), fmtF(measured), fmtF(ratio))
		if measured > stitched.Fep[0]*(1+1e-9) {
			res.note("VIOLATION: measured %v above stitched bound %v at cut %d", measured, stitched.Fep[0], cut)
		}
	}
	res.Tables = append(res.Tables, ct)
	if stitchedCuts == 0 {
		res.note("VIOLATION: layered graph offered no interior cut to compose across")
	}

	res.note("sparse-DAG engine matches the lowered dense oracle bit-for-bit on layer-expressible graphs for all %d models", len(fault.Models()))
	res.note("per-node Fep stays sound across the rewiring sweep where the layered algebra no longer applies; stitched certificates dominate the measured monolith at every admissible cut")
	return res
}
