// Package experiments regenerates every figure of the paper's evaluation
// and one harness per theorem/application, as indexed in DESIGN.md. Each
// experiment is a deterministic function returning tables (the rows/series
// the paper plots) plus notes recording the shape checks — who wins, what
// grows polynomially vs exponentially, where bounds sit relative to
// measurements.
//
// Experiments self-register into a scenario engine: they declare an ID,
// a title and tags at init time, and the engine selects by ID or tag,
// executes on a worker pool with per-experiment wall-clock timing, and
// serialises results to text or JSON. cmd/paperrepro renders them all
// (-json, -tags, -only); bench_test.go wraps each in a testing.B
// benchmark.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/activation"
	"repro/internal/approx"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/rng"
	"repro/internal/store"
	"repro/internal/train"
)

// Result is one regenerated experiment.
type Result struct {
	// ID matches the DESIGN.md experiment index (F2, F3, T1, ...).
	ID string
	// Title describes the paper artefact being reproduced.
	Title string
	// Tables holds the regenerated rows/series.
	Tables []*metrics.Table
	// Notes records the shape checks and summary statistics.
	Notes []string
}

// note appends a formatted note.
func (r *Result) note(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render writes the result as text.
func (r *Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "\n###### [%s] %s ######\n\n", r.ID, r.Title); err != nil {
		return err
	}
	for _, t := range r.Tables {
		if err := t.Render(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// Experiment is one registered scenario: a named, tagged generator.
type Experiment struct {
	// ID is the DESIGN.md index key (unique, upper-case by convention).
	ID string
	// Title describes the reproduced artefact.
	Title string
	// Tags classify the experiment for engine-level selection
	// ("figure", "theorem", "application", "extension", "training" for
	// the slow ones that fit networks, ...).
	Tags []string
	// Run regenerates the experiment. It must be safe to call
	// concurrently with other experiments' Run functions (all
	// randomness through explicit rng streams, no shared state).
	Run func() *Result
}

// HasTag reports whether the experiment carries the tag
// (case-insensitive).
func (e Experiment) HasTag(tag string) bool {
	for _, t := range e.Tags {
		if strings.EqualFold(t, tag) {
			return true
		}
	}
	return false
}

var (
	expMu  sync.RWMutex
	expReg = map[string]Experiment{}
)

// Register adds an experiment to the engine. It panics on an empty or
// duplicate ID or a nil Run — registration happens at init time, where
// a panic is a programming error caught by the first test run.
func Register(e Experiment) {
	if e.ID == "" {
		panic("experiments: Register with empty ID")
	}
	if e.Run == nil {
		panic(fmt.Sprintf("experiments: %s registered without a Run function", e.ID))
	}
	expMu.Lock()
	defer expMu.Unlock()
	if _, dup := expReg[e.ID]; dup {
		panic(fmt.Sprintf("experiments: %s registered twice", e.ID))
	}
	expReg[e.ID] = e
}

// All lists every registered experiment in DESIGN.md index order
// (sorted by ID).
func All() []Experiment {
	expMu.RLock()
	defer expMu.RUnlock()
	out := make([]Experiment, 0, len(expReg))
	for _, e := range expReg {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Get returns the experiment registered under id.
func Get(id string) (Experiment, bool) {
	expMu.RLock()
	defer expMu.RUnlock()
	e, ok := expReg[strings.ToUpper(id)]
	return e, ok
}

// Options selects and sizes an engine run.
type Options struct {
	// IDs restricts the run to these experiment IDs (case-insensitive);
	// empty selects all.
	IDs []string
	// Tags restricts the run to experiments carrying at least one of
	// these tags (case-insensitive); empty applies no tag filter.
	Tags []string
	// Workers sizes the worker pool; <= 0 selects the default degree of
	// parallelism.
	Workers int
}

// Select resolves the options against the registry, erroring on unknown
// IDs (and naming them). Explicit IDs are returned in the order they
// were requested (duplicates collapse onto the first occurrence): a
// user asking for T1,F3 gets T1 before F3, not the registry's sorted
// order.
func Select(opts Options) ([]Experiment, error) {
	selected := All()
	if len(opts.IDs) > 0 {
		var byID []Experiment
		var unknown []string
		seen := map[string]bool{}
		for _, raw := range opts.IDs {
			id := strings.ToUpper(strings.TrimSpace(raw))
			if id == "" || seen[id] {
				continue
			}
			seen[id] = true
			e, ok := Get(id)
			if !ok {
				unknown = append(unknown, id)
				continue
			}
			byID = append(byID, e)
		}
		if len(unknown) > 0 {
			sort.Strings(unknown)
			return nil, fmt.Errorf("experiments: unknown experiment ids %v", unknown)
		}
		selected = byID
	}
	if len(opts.Tags) > 0 {
		var byTag []Experiment
		for _, e := range selected {
			for _, tag := range opts.Tags {
				if e.HasTag(strings.TrimSpace(tag)) {
					byTag = append(byTag, e)
					break
				}
			}
		}
		selected = byTag
	}
	return selected, nil
}

// Outcome is one executed experiment with its wall-clock cost.
type Outcome struct {
	Experiment Experiment
	Result     *Result
	Elapsed    time.Duration
}

// Run executes the experiments on a worker pool of the given size,
// timing each, and returns outcomes in input order. Experiments are
// independent and deterministic, so parallel execution regenerates
// exactly what a sequential sweep would.
func Run(exps []Experiment, workers int) []Outcome {
	out := make([]Outcome, len(exps))
	pool := parallel.NewPool(workers)
	defer pool.Close()
	for i, e := range exps {
		i, e := i, e
		pool.Submit(func() {
			t0 := time.Now()
			res := e.Run()
			out[i] = Outcome{Experiment: e, Result: res, Elapsed: time.Since(t0)}
		})
	}
	pool.Wait()
	return out
}

// RunAll executes every registered experiment (on the default pool) and
// renders each to w in index order.
func RunAll(w io.Writer) ([]*Result, error) {
	outs := Run(All(), 0)
	results := make([]*Result, 0, len(outs))
	for _, o := range outs {
		results = append(results, o.Result)
		if err := o.Result.Render(w); err != nil {
			return results, err
		}
	}
	return results, nil
}

// Record is the serialised form of one outcome: what `paperrepro
// -json` emits and what the artifact store persists (kind "outcomes").
type Record struct {
	ID             string           `json:"id"`
	Title          string           `json:"title"`
	Tags           []string         `json:"tags,omitempty"`
	ElapsedSeconds float64          `json:"elapsed_seconds"`
	Tables         []*metrics.Table `json:"tables"`
	Notes          []string         `json:"notes,omitempty"`
}

// Records converts executed outcomes to their serialised form.
func Records(outs []Outcome) []Record {
	payload := make([]Record, 0, len(outs))
	for _, o := range outs {
		// The registry entry is authoritative for ID and title: -json
		// must agree with -list and with the -only/-tags selection keys
		// even when a Result carries its own phrasing.
		payload = append(payload, Record{
			ID:             o.Experiment.ID,
			Title:          o.Experiment.Title,
			Tags:           o.Experiment.Tags,
			ElapsedSeconds: o.Elapsed.Seconds(),
			Tables:         o.Result.Tables,
			Notes:          o.Result.Notes,
		})
	}
	return payload
}

// WriteJSON serialises the outcomes as an indented JSON array — the
// machine-readable form behind `paperrepro -json`.
func WriteJSON(w io.Writer, outs []Outcome) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Records(outs))
}

// PersistOutcomes saves the outcome set as one content-addressed
// artifact, making campaigns resumable and comparable across runs.
func PersistOutcomes(st *store.Store, outs []Outcome, meta map[string]string) (store.Entry, error) {
	return st.Put(store.KindOutcomes, Records(outs), meta)
}

// LoadOutcomes reads a persisted outcome set back by ID or unique
// prefix.
func LoadOutcomes(st *store.Store, ref string) ([]Record, error) {
	e, err := st.Resolve(ref)
	if err != nil {
		return nil, err
	}
	if e.Kind != store.KindOutcomes {
		return nil, fmt.Errorf("experiments: artifact %s is a %q, not an outcome set", store.ShortID(e.ID), e.Kind)
	}
	var recs []Record
	if _, err := st.Get(e.ID, &recs); err != nil {
		return nil, err
	}
	return recs, nil
}

// fitted trains a sigmoid network on a target and reports the achieved
// sup-norm ε'. Shared by several experiments; all sizes kept modest so
// the full suite runs in tens of seconds.
func fitted(seed uint64, target approx.Target, widths []int, k float64, epochs int) (*nn.Network, float64) {
	net, _, sup := train.Fit(target, widths, activation.NewSigmoid(k), train.Config{
		Epochs:   epochs,
		LR:       0.1,
		Momentum: 0.9,
		Seed:     seed,
	})
	return net, sup
}

// evalInputs returns the standard evaluation sample for a d-dimensional
// input space: a grid for d <= 2, random points beyond.
func evalInputs(d int) [][]float64 {
	switch d {
	case 1:
		return metrics.Grid(1, 201)
	case 2:
		return metrics.Grid(2, 25)
	default:
		return metrics.RandomPoints(rng.New(0xe7a1), d, 600)
	}
}
