// Package experiments regenerates every figure of the paper's evaluation
// and one harness per theorem/application, as indexed in DESIGN.md. Each
// experiment is a deterministic function returning tables (the rows/series
// the paper plots) plus notes recording the shape checks — who wins, what
// grows polynomially vs exponentially, where bounds sit relative to
// measurements. cmd/paperrepro renders them all; bench_test.go wraps each
// in a testing.B benchmark.
package experiments

import (
	"fmt"
	"io"

	"repro/internal/activation"
	"repro/internal/approx"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/train"
)

// Result is one regenerated experiment.
type Result struct {
	// ID matches the DESIGN.md experiment index (F2, F3, T1, ...).
	ID string
	// Title describes the paper artefact being reproduced.
	Title string
	// Tables holds the regenerated rows/series.
	Tables []*metrics.Table
	// Notes records the shape checks and summary statistics.
	Notes []string
}

// note appends a formatted note.
func (r *Result) note(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render writes the result as text.
func (r *Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "\n###### [%s] %s ######\n\n", r.ID, r.Title); err != nil {
		return err
	}
	for _, t := range r.Tables {
		if err := t.Render(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// Experiment is a named generator.
type Experiment struct {
	ID   string
	Name string
	Run  func() *Result
}

// All lists every experiment in DESIGN.md index order.
func All() []Experiment {
	return []Experiment{
		{"F2", "Figure 2: sigmoid profiles vs K", Fig2SigmoidProfiles},
		{"F3", "Figure 3: output error vs Lipschitz constant (Nets 1-8)", Fig3ErrorVsLipschitz},
		{"T1", "Theorem 1: single-layer crash bound and tightness", Thm1CrashBound},
		{"T2", "Theorem 2/3: depth propagation of faults", Thm2DepthPropagation},
		{"T4", "Theorem 4: Byzantine synapse bound", Thm4SynapseBound},
		{"T5", "Theorem 5 / App. A: precision reduction (Proteus)", Thm5Quantisation},
		{"B1", "Corollary 2 / App. B: boosting computations", Boosting},
		{"L1", "Lemma 1: unbounded transmission", Lemma1UnboundedByzantine},
		{"TR", "App. C: robustness vs ease of learning", TradeoffRobustnessLearning},
		{"CV", "Section VI: convolutional receptive fields", ConvReceptiveField},
		{"CX", "Section I: combinatorial explosion vs Fep", CombinatorialVsFep},
		{"OP", "Section II-C / Cor. 1: over-provisioning", OverProvisioning},
		{"FR", "Section VI future work: Fep-regularised learning", FepRegularisedTraining},
		{"MX", "Extension: mixed fault distributions and run-time degradation", MixedFaults},
	}
}

// RunAll executes every experiment and renders it to w.
func RunAll(w io.Writer) ([]*Result, error) {
	var out []*Result
	for _, e := range All() {
		res := e.Run()
		out = append(out, res)
		if err := res.Render(w); err != nil {
			return out, err
		}
	}
	return out, nil
}

// fitted trains a sigmoid network on a target and reports the achieved
// sup-norm ε'. Shared by several experiments; all sizes kept modest so
// the full suite runs in tens of seconds.
func fitted(seed uint64, target approx.Target, widths []int, k float64, epochs int) (*nn.Network, float64) {
	net, _, sup := train.Fit(target, widths, activation.NewSigmoid(k), train.Config{
		Epochs:   epochs,
		LR:       0.1,
		Momentum: 0.9,
		Seed:     seed,
	})
	return net, sup
}

// evalInputs returns the standard evaluation sample for a d-dimensional
// input space: a grid for d <= 2, random points beyond.
func evalInputs(d int) [][]float64 {
	switch d {
	case 1:
		return metrics.Grid(1, 201)
	case 2:
		return metrics.Grid(2, 25)
	default:
		return metrics.RandomPoints(rng.New(0xe7a1), d, 600)
	}
}
