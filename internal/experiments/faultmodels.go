package experiments

import (
	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/rng"
)

func init() {
	Register(Experiment{ID: "S1", Title: "Scenario sweep: every registered fault model vs its Fep bound",
		Tags: []string{"extension", "sweep", "faultmodels", "training"}, Run: FaultModelSweep})
}

// FaultModelSweep is the scenario-engine counterpart of the registry:
// one common trained network, every registered fault model injected
// adversarially, each measured worst-case error compared against the
// Fep bound fed by that model's deviation cap. The sweep is the
// empirical demonstration that the paper's single parameterisation — a
// per-component deviation cap c — covers crash, Byzantine, stuck-at,
// intermittent/reoccurring (Sardi et al.), noisy (Roxin et al.),
// sign-flip and quantised bit-flip failures alike. Neuron faults and
// synapse faults are swept separately because the synapse caps assume
// correct upstream senders.
func FaultModelSweep() *Result {
	res := &Result{ID: "S1", Title: "Scenario sweep: every registered fault model vs its Fep bound"}

	target := approx.Sine1D(1)
	net, epsPrime := fitted(21, target, []int{12, 8}, 1, 250)
	s := core.ShapeOf(net)
	inputs := evalInputs(1)
	r := rng.New(0x5ceed)

	// Shared model parameters for the whole sweep: capacity 0.6 for the
	// bounded-arbitrary and noise families, a stuck value inside the
	// activation range, a 60% intermittence, and 8-bit codes with the
	// top magnitude bit flipped.
	params := func() fault.Params {
		return fault.Params{
			C:     0.6,
			Sem:   core.DeviationCap,
			Value: 0.85,
			Prob:  0.6,
			Bits:  8,
			Bit:   6,
			Net:   net,
			R:     r.Split(),
		}
	}

	neuronFaults := []int{2, 1}
	plan := fault.AdversarialNeuronPlan(net, neuronFaults)
	nt := metrics.NewTable("adversarial neuron faults (f = [2 1]) under every registered model",
		"model", "deterministic", "deviation_cap", "measured_worst", "fep_bound", "utilisation_%")
	for _, m := range fault.Models() {
		p := params()
		inj, err := m.New(p)
		if err != nil {
			res.note("VIOLATION: model %s failed to instantiate: %v", m.Name, err)
			continue
		}
		dev := m.NeuronDeviation(p, s)
		bound := core.Fep(s, neuronFaults, dev)
		measured := measuredWorst(net, plan, inj, m.Deterministic, inputs)
		util := 0.0
		if bound > 0 {
			util = 100 * measured / bound
		}
		nt.AddRow(m.Name, detLabel(m), fmtF(dev), fmtF(measured), fmtF(bound), fmtF(util))
		if measured > bound*(1+1e-9) {
			res.note("VIOLATION: %s measured %v above Fep bound %v", m.Name, measured, bound)
		}
	}
	res.Tables = append(res.Tables, nt)

	synFaults := []int{1, 1, 1}
	synPlan := fault.AdversarialSynapsePlan(net, synFaults)
	st := metrics.NewTable("adversarial synapse faults (one per layer) under every registered model",
		"model", "deviation_cap", "measured_worst", "synapse_fep_bound")
	for _, m := range fault.Models() {
		p := params()
		inj, err := m.New(p)
		if err != nil {
			res.note("VIOLATION: model %s failed to instantiate: %v", m.Name, err)
			continue
		}
		dev := m.SynapseDeviation(p, s)
		bound := core.SynapseFep(s, synFaults, dev)
		measured := measuredWorst(net, synPlan, inj, m.Deterministic, inputs)
		st.AddRow(m.Name, fmtF(dev), fmtF(measured), fmtF(bound))
		if measured > bound*(1+1e-9) {
			res.note("VIOLATION: %s measured %v above SynapseFep bound %v", m.Name, measured, bound)
		}
	}
	res.Tables = append(res.Tables, st)

	res.note("common network: widths %v, ε' = %.4f, K = %g", s.Widths, epsPrime, s.K)
	res.note("%d models registered; every measured error sits below its model's closed-form bound", len(fault.Models()))
	res.note("one deviation cap per model is all the analysis needs: Theorems 2-4 cover the whole catalogue")
	return res
}

// measuredWorst measures the max error over the inputs. Deterministic
// injectors sweep in parallel; stochastic injectors are not
// concurrency-safe and redraw per evaluation, so they run sequentially
// and keep the worst realisation of several sweeps.
func measuredWorst(net *nn.Network, plan fault.Plan, inj fault.Injector, deterministic bool, inputs [][]float64) float64 {
	if deterministic {
		return fault.MaxError(net, plan, inj, inputs)
	}
	worst := 0.0
	for trial := 0; trial < 5; trial++ {
		if e := fault.MaxErrorSeq(net, plan, inj, inputs); e > worst {
			worst = e
		}
	}
	return worst
}

// detLabel renders the determinism column.
func detLabel(m fault.Model) string {
	if m.Deterministic {
		return "yes"
	}
	return "no"
}
