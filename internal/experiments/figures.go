package experiments

import (
	"fmt"

	"repro/internal/activation"
	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Fig2SigmoidProfiles regenerates Figure 2: the profile of the K-tuned
// sigmoid for several K, showing that larger K is steeper ("more
// discriminating").
func init() {
	Register(Experiment{ID: "F2", Title: "Figure 2: sigmoid profiles vs K",
		Tags: []string{"figure"}, Run: Fig2SigmoidProfiles})
	Register(Experiment{ID: "F3", Title: "Figure 3: output error vs Lipschitz constant (Nets 1-8)",
		Tags: []string{"figure", "training"}, Run: Fig3ErrorVsLipschitz})
}

func Fig2SigmoidProfiles() *Result {
	res := &Result{ID: "F2", Title: "Profile of the K-tuned sigmoid (Figure 2)"}
	ks := []float64{0.25, 0.5, 1, 2, 4}
	xs := tensor.Linspace(-6, 6, 25)
	var series []*metrics.Series
	for _, k := range ks {
		s := metrics.NewSeries(fmt.Sprintf("K=%g", k), len(xs))
		f := activation.NewSigmoid(k)
		for _, x := range xs {
			s.Add(x, f.Eval(x))
		}
		series = append(series, s)
	}
	res.Tables = append(res.Tables, metrics.SeriesTable("sigmoid(4Kx) profiles", "x", series...))

	// Shape check: slope at 0 equals K exactly (Lipschitz constant is
	// attained at the centre).
	for _, k := range ks {
		f := activation.NewSigmoid(k)
		slope := (f.Eval(1e-6) - f.Eval(-1e-6)) / 2e-6
		res.note("K=%g: central slope %.4f (matches Lipschitz constant)", k, slope)
	}
	return res
}

// fig3Net describes one of the eight networks of Figure 3.
type fig3Net struct {
	name   string
	target approx.Target
	widths []int
}

// fig3Nets returns the eight architectures. The paper does not specify
// Net 1..Net 8; we vary depth (1-4 layers) and width (8-24) across four
// targets, which is what the figure needs: several distinct networks
// carrying a similar amount of neuron failures.
func fig3Nets() []fig3Net {
	return []fig3Net{
		{"Net1", approx.Sine1D(1), []int{8}},
		{"Net2", approx.Sine1D(1), []int{16}},
		{"Net3", approx.Sine1D(2), []int{24}},
		{"Net4", approx.SmoothStep(8), []int{12, 8}},
		{"Net5", approx.XORLike(), []int{12, 8}},
		{"Net6", approx.Franke2D(), []int{16, 12}},
		{"Net7", approx.XORLike(), []int{10, 8, 6}},
		{"Net8", approx.Bump(1, 0.5, 0.15), []int{8, 8, 6, 6}},
	}
}

// fig3FaultMass is the "similar amount of neuron failures" applied to
// every network: two faulty neurons in the first hidden layer.
func fig3FaultMass(n *nn.Network) []int {
	perLayer := make([]int, n.Layers())
	perLayer[0] = 2
	return perLayer
}

// Fig3ErrorVsLipschitz regenerates Figure 3: for eight trained networks
// carrying the same fault mass, the measured output error against the
// activation's Lipschitz constant K on a log scale. The claim being
// reproduced is the SHAPE: the error grows polynomially in K (straight
// line in log-log, modest slope), exactly as Fep's K^{L-l} dependency
// predicts — not exponentially.
func Fig3ErrorVsLipschitz() *Result {
	res := &Result{ID: "F3", Title: "Output error vs Lipschitz constant, Nets 1-8 (Figure 3)"}
	ks := tensor.Logspace(0.25, 8, 7)
	nets := fig3Nets()

	measured := make([]*metrics.Series, len(nets))
	bounds := make([]*metrics.Series, len(nets))
	var slopes []float64

	for i, cfg := range nets {
		// Train once at K=1, then sweep K by swapping the activation:
		// the weights stay fixed so the K-dependency is not confounded
		// by retraining.
		net, _ := fitted(uint64(100+i), cfg.target, cfg.widths, 1, 250)
		perLayer := fig3FaultMass(net)
		plan := fault.AdversarialNeuronPlan(net, perLayer)
		inputs := evalInputs(net.InputDim)

		ms := metrics.NewSeries(cfg.name, len(ks))
		bs := metrics.NewSeries(cfg.name+"_Fep", len(ks))
		for _, k := range ks {
			swapped := net.Clone()
			swapped.Act = activation.NewSigmoid(k)
			err := fault.MaxError(swapped, plan, fault.Crash{}, inputs)
			ms.Add(k, err)
			bs.Add(k, core.CrashFep(core.ShapeOf(swapped), perLayer))
		}
		measured[i] = ms
		bounds[i] = bs
		slope := metrics.LogLogSlope(ms.X, ms.Y)
		slopes = append(slopes, slope)
		res.note("%s (L=%d): measured log-log slope in K = %.2f; Fep slope = %.2f",
			cfg.name, len(cfg.widths), slope, metrics.LogLogSlope(bs.X, bs.Y))
	}

	res.Tables = append(res.Tables,
		metrics.SeriesTable("measured error Er vs K (log scale)", "K", measured...),
		metrics.SeriesTable("Fep bound vs K (log scale)", "K", bounds...),
	)
	st := metrics.Summarize(slopes)
	res.note("slopes across nets: mean %.2f, max %.2f — finite and modest, i.e. polynomial in K as the Fep's K^{L-l} factor predicts", st.Mean, st.Max)
	return res
}
