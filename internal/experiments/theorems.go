package experiments

import (
	"math"

	"repro/internal/activation"
	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/rng"
	"repro/internal/tensor"
)

func init() {
	Register(Experiment{ID: "T1", Title: "Theorem 1: single-layer crash bound and tightness",
		Tags: []string{"theorem", "training"}, Run: Thm1CrashBound})
	Register(Experiment{ID: "T2", Title: "Theorem 2/3: depth propagation of faults",
		Tags: []string{"theorem"}, Run: Thm2DepthPropagation})
	Register(Experiment{ID: "T4", Title: "Theorem 4: Byzantine synapse bound",
		Tags: []string{"theorem"}, Run: Thm4SynapseBound})
	Register(Experiment{ID: "T5", Title: "Theorem 5 / App. A: precision reduction (Proteus)",
		Tags: []string{"theorem", "application", "training"}, Run: Thm5Quantisation})
}

// Thm1CrashBound regenerates the Theorem 1 experiment: a single-layer
// ε'-approximation, an adversary crashing the heaviest neurons, and the
// sweep of Nfail against the guaranteed error ε' + Nfail·wm. A second
// table demonstrates tightness on the worst-case construction of the
// proof (uniform maximal weights, saturating activation).
func Thm1CrashBound() *Result {
	res := &Result{ID: "T1", Title: "Single-layer crash bound (Theorem 1)"}

	target := approx.Sine1D(1)
	net, epsPrime := fitted(1, target, []int{16}, 1, 300)
	wm := net.MaxWeight(2)
	inputs := evalInputs(1)
	eps := epsPrime + 4*wm*1.05 // chosen so ~4 crashes are tolerated
	nMax := core.Theorem1MaxCrashes(eps, epsPrime, wm)

	t := metrics.NewTable("crash sweep on a trained ε'-approximation",
		"Nfail", "measured_err", "thm1_bound", "total_err_bound", "tolerated")
	lastOK := 0
	for f := 0; f <= 8; f++ {
		plan := fault.AdversarialNeuronPlan(net, []int{f})
		measured := fault.MaxError(net, plan, fault.Crash{}, inputs)
		bound := core.Theorem1ErrorBound(epsPrime, wm, f)
		tol := "no"
		if f <= nMax {
			tol = "yes"
			lastOK = f
		}
		t.AddRow(fmtInt(f), fmtF(measured), fmtF(float64(f)*wm), fmtF(bound), tol)
		if measured > float64(f)*wm*(1+1e-9)+1e-12 {
			res.note("VIOLATION at f=%d: measured %v > f·wm %v", f, measured, float64(f)*wm)
		}
	}
	res.Tables = append(res.Tables, t)
	res.note("ε' = %.4f, wm = %.4f, ε = %.4f: Theorem 1 tolerates Nfail <= %d", epsPrime, wm, eps, nMax)
	res.note("largest tolerated Nfail exercised: %d", lastOK)

	// Tightness: the proof's worst case — all output weights equal wm,
	// saturating activation driving every y to 1, adversary kills any f
	// neurons. The measured damage is then exactly f·wm.
	worst := worstCaseSingleLayer(8, 0.3)
	wt := metrics.NewTable("tightness on the worst-case construction",
		"Nfail", "measured_err", "fep_bound", "ratio")
	for f := 0; f <= 4; f++ {
		plan := fault.AdversarialNeuronPlan(worst, []int{f})
		measured := fault.MaxError(worst, plan, fault.Crash{}, inputs)
		bound := core.CrashFep(core.ShapeOf(worst), []int{f})
		ratio := 1.0
		if bound > 0 {
			ratio = measured / bound
		}
		wt.AddNumericRow(float64(f), measured, bound, ratio)
		if f > 0 && ratio < 0.999 {
			res.note("tightness gap at f=%d: ratio %.6f", f, ratio)
		}
	}
	res.Tables = append(res.Tables, wt)
	res.note("worst-case construction attains the bound (ratio = 1): the bound is tight")
	return res
}

// worstCaseSingleLayer builds the equality-case network of Theorem 1's
// proof: N neurons, all output weights exactly wm, hard-saturating
// activation so inputs exist with every y = 1.
func worstCaseSingleLayer(n int, wm float64) *nn.Network {
	hidden := tensor.NewMatrix(n, 1)
	for j := 0; j < n; j++ {
		hidden.Set(j, 0, 5) // large weight: ϕ saturates to 1 on x close to 1
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = wm
	}
	return &nn.Network{
		InputDim: 1,
		Act:      activation.NewHardSigmoid(1),
		Hidden:   []*tensor.Matrix{hidden},
		Output:   out,
	}
}

// Thm2DepthPropagation regenerates the depth claim of Theorem 2: the same
// fault hurts more the further it sits from the output, with the bound
// growing by a factor K·N·w per layer (exponential in depth).
func Thm2DepthPropagation() *Result {
	res := &Result{ID: "T2", Title: "Forward error propagation vs fault depth (Theorem 2)"}
	const L = 4
	r := rng.New(42)
	net := nn.NewRandom(r, nn.Config{
		InputDim: 2,
		Widths:   []int{6, 6, 6, 6},
		Act:      activation.NewSigmoid(1.5),
	}, 0.5)
	shape := core.ShapeOf(net)
	inputs := evalInputs(2)
	c := 1.0

	t := metrics.NewTable("one Byzantine neuron at layer l (K=1.5, C=1)",
		"layer", "measured_worst", "fep_bound", "bound_ratio_vs_next")
	var bounds, measures []float64
	for l := 1; l <= L; l++ {
		perLayer := make([]int, L)
		perLayer[l-1] = 1
		plan := fault.AdversarialNeuronPlan(net, perLayer)
		measured := fault.WorstSignError(net, plan, fault.Byzantine{C: c, Sem: core.DeviationCap}, inputs)
		bound := core.Fep(shape, perLayer, c)
		bounds = append(bounds, bound)
		measures = append(measures, measured)
		ratio := math.NaN()
		if l < L {
			next := make([]int, L)
			next[l] = 1
			ratio = bound / core.Fep(shape, next, c)
		}
		t.AddNumericRow(float64(l), measured, bound, ratio)
	}
	res.Tables = append(res.Tables, t)
	for l := 0; l < L; l++ {
		if measures[l] > bounds[l]*(1+1e-9) {
			res.note("VIOLATION: measured %v exceeds bound %v at layer %d", measures[l], bounds[l], l+1)
		}
	}
	res.note("bound shrinks monotonically towards the output: K^{L-l} depth dependency")
	for l := 0; l+1 < L; l++ {
		if bounds[l] <= bounds[l+1] {
			res.note("NOTE: bound not decreasing between layers %d and %d", l+1, l+2)
		}
	}
	return res
}

// Thm4SynapseBound regenerates the synapse-failure bound: Byzantine
// synapses per layer, measured worst-sign error against the Lemma 2
// reduction (sound) and the paper's printed Theorem 4 expression.
func Thm4SynapseBound() *Result {
	res := &Result{ID: "T4", Title: "Byzantine synapses (Theorem 4 via Lemma 2)"}
	r := rng.New(7)
	net := nn.NewRandom(r, nn.Config{
		InputDim: 2,
		Widths:   []int{5, 4},
		Act:      activation.NewSigmoid(1),
	}, 0.6)
	shape := core.ShapeOf(net)
	inputs := evalInputs(2)
	c := 0.8

	t := metrics.NewTable("one Byzantine synapse into layer l (C=0.8)",
		"into_layer", "measured_worst", "lemma2_bound", "paper_thm4_bound")
	L := net.Layers()
	for l := 1; l <= L+1; l++ {
		perLayer := make([]int, L+1)
		perLayer[l-1] = 1
		plan := fault.AdversarialSynapsePlan(net, perLayer)
		measured := fault.WorstSignError(net, plan, fault.Byzantine{C: c, Sem: core.DeviationCap}, inputs)
		sound := core.SynapseFep(shape, perLayer, c)
		paper := core.SynapseFepPaper(shape, perLayer, c)
		t.AddNumericRow(float64(l), measured, sound, paper)
		if measured > sound*(1+1e-9) {
			res.note("VIOLATION: measured %v exceeds Lemma 2 bound %v at layer %d", measured, sound, l)
		}
	}
	res.Tables = append(res.Tables, t)
	res.note("the printed Theorem 4 expression carries an extra w_m^{(l)} factor; the Lemma 2 reduction is the sound deviation-semantics bound (see DESIGN.md)")
	return res
}

// Thm5Quantisation regenerates the Application A experiment (Proteus):
// sweep the fixed-point width, report measured accuracy loss against the
// Theorem 5 certificate and the memory saving.
func Thm5Quantisation() *Result {
	res := &Result{ID: "T5", Title: "Reduced-precision implementation (Theorem 5 / Proteus)"}
	target := approx.Franke2D()
	net, epsPrime := fitted(5, target, []int{12, 10}, 1, 250)
	inputs := evalInputs(2)

	t := metrics.NewTable("fixed-point weight quantisation",
		"bits", "measured_err", "thm5_bound", "memory_reduction_x")
	prevBound := math.Inf(1)
	for _, bits := range []int{4, 6, 8, 10, 12, 16} {
		q, err := quant.Quantize(net, quant.Options{WeightBits: bits})
		if err != nil {
			res.note("quantize %d bits failed: %v", bits, err)
			continue
		}
		measured := q.MeasuredError(inputs)
		bound := q.Bound()
		t.AddNumericRow(float64(bits), measured, bound, float64(quant.FullPrecisionBits(net))/float64(q.MemoryBits()))
		if measured > bound*(1+1e-9) {
			res.note("VIOLATION at %d bits: measured %v > bound %v", bits, measured, bound)
		}
		if bound >= prevBound {
			res.note("NOTE: bound did not shrink from %d bits", bits)
		}
		prevBound = bound
	}
	res.Tables = append(res.Tables, t)
	res.note("trained ε' = %.4f; the certificate decays ~2x per extra bit, the Proteus-style trade-off", epsPrime)

	// Proteus's actual move: vary the precision per layer. Search the
	// allocation grid at the memory of the uniform 8-bit format.
	if alloc, bound, mem := thm5PerLayerRow(net, 8); alloc != nil {
		uniform, _ := quant.Quantize(net, quant.Options{WeightBits: 8})
		res.note("per-layer allocation %v: certificate %.4f vs uniform-8's %.4f at %.0f <= %d bits of memory",
			alloc, bound, uniform.Bound(), mem, uniform.MemoryBits())
	}
	return res
}

func fmtInt(v int) string { return metrics.FormatNum(float64(v)) }

func fmtF(v float64) string { return metrics.FormatNum(v) }
