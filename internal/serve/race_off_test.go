//go:build !race

package serve

// raceEnabled reports whether the race detector instruments this build;
// allocation-count assertions are skipped under it (the instrumented
// sync.Pool allocates on Get, which is a property of the detector, not
// of the server).
const raceEnabled = false
