package serve

import (
	"fmt"
	"net/http"
	"strings"

	"repro/internal/core"
	"repro/internal/fault"
)

// ---- POST /v1/worstcase ----

type worstCaseRequest struct {
	netRef
	Faults     faultSpec   `json:"faults,omitempty"`
	Model      string      `json:"model,omitempty"`
	C          *float64    `json:"c,omitempty"`
	Value      *float64    `json:"value,omitempty"`
	Bits       *int        `json:"bits,omitempty"`
	Bit        *int        `json:"bit,omitempty"`
	Inputs     [][]float64 `json:"inputs,omitempty"`
	MaxConfigs int64       `json:"max_configs,omitempty"`
}

// maxWorstConfigs bounds one exhaustive certification request. The tree
// engine prunes, but the worst case is still a full enumeration; larger
// sweeps belong in the async job tier (and even there the same cap
// applies — split the fault distribution instead).
const maxWorstConfigs = 2_000_000

// wcResolved is a validated exhaustive-certification request: defaults
// applied, faults resolved against the layer widths, the injector
// built. Its scalar fields plus the network identity and inputs are
// exactly what determines the result — the job memo key hashes them
// (max_configs is a guard, not an input, and is excluded).
type wcResolved struct {
	cn     *cachedNet
	model  fault.Model
	faults []int
	params fault.Params
	inj    fault.Injector
	inputs [][]float64
	total  int64
}

// resolveWorstCase validates a request, applying the same defaults for
// the synchronous path, the job tier and the memo key. Stochastic
// models are rejected: an exhaustive sweep certifies a worst case only
// when every configuration's error is a deterministic function of the
// configuration — randomised deviations are a profile, not a
// certificate, and belong to /v1/montecarlo.
func (s *Server) resolveWorstCase(req worstCaseRequest) (wcResolved, error) {
	var wc wcResolved
	modelName := req.Model
	if modelName == "" {
		modelName = "crash"
	}
	model, ok := fault.Lookup(modelName)
	if !ok {
		return wc, badRequest(fmt.Sprintf("unknown fault model %q; registered models: %s",
			modelName, strings.Join(fault.ModelNames(), ", ")))
	}
	if !model.Deterministic {
		return wc, badRequest(fmt.Sprintf("fault model %q is stochastic; exhaustive worst-case search needs a deterministic model — profile stochastic models with /v1/montecarlo", model.Name))
	}
	cn, err := s.network(req.netRef)
	if err != nil {
		return wc, err
	}
	faults, err := req.Faults.resolve(cn.shape.Widths)
	if err != nil {
		return wc, err
	}
	// Same rationale as computeInject: C-agnostic models would carry a
	// negative cap into the Fep computation, which panics on it.
	if req.C != nil && *req.C < 0 {
		return wc, badRequest("c is negative")
	}
	params := fault.Params{
		C:     orDefault(req.C, 1),
		Sem:   core.DeviationCap,
		Value: orDefault(req.Value, 0.8),
		Bits:  orDefaultInt(req.Bits, 8),
		Bit:   orDefaultInt(req.Bit, 7),
		Net:   cn.model,
	}
	inj, err := model.New(params)
	if err != nil {
		return wc, badRequest(err.Error())
	}
	if req.MaxConfigs < 0 {
		return wc, badRequest("max_configs is negative")
	}
	limit := req.MaxConfigs
	if limit == 0 || limit > maxWorstConfigs {
		limit = maxWorstConfigs
	}
	total, err := fault.CountConfigurations(cn.shape.Widths, faults)
	if err != nil {
		return wc, badRequest(err.Error())
	}
	if total > limit {
		return wc, badRequest(fmt.Sprintf("%d configurations exceed limit %d (cap %d); lower the fault counts", total, limit, maxWorstConfigs))
	}
	inputs := req.Inputs
	if len(inputs) > 0 {
		for i, x := range inputs {
			if len(x) != cn.model.Width(0) {
				return wc, badRequest(fmt.Sprintf("inputs[%d] has dimension %d, want %d", i, len(x), cn.model.Width(0)))
			}
		}
	} else {
		inputs, _ = cn.standardInputs()
	}
	return wcResolved{cn: cn, model: model, faults: faults, params: params, inj: inj, inputs: inputs, total: total}, nil
}

// worstCaseEngine builds the pruned tree engine for a resolved request,
// sharded over the server's worker pool.
func (s *Server) worstCaseEngine(wc wcResolved) (*fault.WorstCase, error) {
	return fault.NewWorstCase(wc.cn.model, wc.faults, wc.inputs, fault.WorstCaseOptions{
		Injector:   wc.inj,
		Prune:      true,
		MaxConfigs: maxWorstConfigs,
		Pool:       s.pool,
	})
}

// worstCaseResponse compares the completed search against the matching
// closed-form certificate and assembles the result document. It
// deliberately excludes the visited/pruned counters: they depend on the
// racy pruning floor under parallel sharding, and the async job tier
// content-addresses this document — a killed-and-resumed job must
// reproduce the identical ResultID. The synchronous handler adds them
// on top.
func (s *Server) worstCaseResponse(wc wcResolved, res fault.ExhaustiveResult) (map[string]any, error) {
	dev := wc.model.NeuronDeviation(wc.params, wc.cn.shape)
	b := wc.cn.getBounds()
	bound := b.cert.Fep(wc.faults, dev)
	wc.cn.putBounds(b)
	plan := make([]map[string]int, 0, len(res.WorstPlan.Neurons))
	for _, f := range res.WorstPlan.Neurons {
		plan = append(plan, map[string]int{"layer": f.Layer, "index": f.Index})
	}
	resp := map[string]any{
		"network_id":     wc.cn.id,
		"model":          wc.model.Name,
		"deterministic":  true,
		"faults":         wc.faults,
		"configurations": res.Configurations,
		"inputs":         len(wc.inputs),
		"worst_error":    res.WorstError,
		"worst_plan":     plan,
		"deviation_cap":  dev,
		"bound":          bound,
	}
	if bound > 0 {
		resp["utilization"] = res.WorstError / bound
	}
	if res.WorstError > bound*(1+1e-9) {
		// A violated bound is a bug in the engine, never a valid answer.
		return nil, &httpError{status: http.StatusInternalServerError,
			msg: fmt.Sprintf("bound violated: worst error %g > bound %g", res.WorstError, bound)}
	}
	return resp, nil
}

func (s *Server) handleWorstCase(w http.ResponseWriter, r *http.Request) {
	var req worstCaseRequest
	if err := decode(r, &req); err != nil {
		fail(w, err)
		return
	}
	wc, err := s.resolveWorstCase(req)
	if err != nil {
		fail(w, err)
		return
	}
	eng, err := s.worstCaseEngine(wc)
	if err != nil {
		fail(w, badRequest(err.Error()))
		return
	}
	res, err := eng.Run(r.Context())
	if err != nil {
		// The client is gone: nobody is listening, and a partial sweep
		// certifies nothing.
		writeError(w, statusClientClosedRequest, err.Error())
		return
	}
	resp, err := s.worstCaseResponse(wc, res)
	if err != nil {
		fail(w, err)
		return
	}
	resp["visited"] = res.Visited
	resp["pruned"] = res.Pruned
	writeJSON(w, http.StatusOK, resp)
}
