package serve

import (
	"context"
	"sync"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/nn"
	"repro/internal/rng"
)

// shardedMonteCarlo samples random failure configurations with the
// trials sharded over the server's persistent worker pool. Each shard
// owns a compiled plan it re-indexes per trial; the clean traces are
// shared by all shards (they are the expensive part and are cached per
// network for the standard input set).
//
// The result is deterministic for a given seed regardless of pool size
// or scheduling: trial t always draws from the splittable stream
// rng.NewStream(seed, t), so sharding only changes who runs the trial,
// never what it samples.
//
// ctx bounds the campaign: when the request is abandoned (client gone,
// server shutting down) the shards stop between trials and ctx.Err()
// is returned — a 200,000-trial sweep must not keep burning the pool
// for a caller that already hung up.
func (s *Server) shardedMonteCarlo(ctx context.Context, net nn.Model, perLayer []int, c float64, traces []*nn.Trace, trials int, seed uint64) (fault.Profile, error) {
	errs := make([]float64, trials)
	workers := s.pool.Size()
	shard := (trials + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * shard
		hi := lo + shard
		if hi > trials {
			hi = trials
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		s.pool.Submit(func() {
			defer wg.Done()
			cp := fault.Compile(net, fault.Plan{})
			for t := lo; t < hi; t++ {
				if ctx.Err() != nil {
					return
				}
				r := rng.NewStream(seed, uint64(t))
				cp.Reset(fault.RandomNeuronPlan(r, net, perLayer))
				var inj fault.Injector
				if c == 0 {
					inj = fault.Crash{}
				} else {
					inj = fault.RandomByzantine{C: c, Sem: core.DeviationCap, R: r.Split()}
				}
				worst := 0.0
				for _, tr := range traces {
					if e := cp.ErrorOnTrace(inj, tr); e > worst {
						worst = e
					}
				}
				errs[t] = worst
			}
		})
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return fault.Profile{}, err
	}
	return fault.ProfileOf(errs), nil
}
