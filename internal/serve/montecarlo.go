package serve

import (
	"context"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/nn"
	"repro/internal/rng"
)

// mcRange computes the worst-case error for Monte Carlo trials
// [base, base+len(errs)) into errs, sharded over the server's worker
// pool via ForCtx: cancellation or deadline stops the shards between
// trials and every in-flight chunk is joined before the error returns.
//
// The result is deterministic for a given seed regardless of pool
// size, scheduling, or the base offset: trial t always draws from the
// splittable stream rng.NewStream(seed, t), so sharding and
// checkpoint/resume only change who runs a trial, never what it
// samples — a resumed campaign is bit-identical to an uninterrupted
// one.
func (s *Server) mcRange(ctx context.Context, net nn.Model, perLayer []int, c float64, traces []*nn.Trace, seed uint64, base int, errs []float64) error {
	return s.pool.ForCtx(ctx, len(errs), 0, func(lo, hi int) {
		// Each chunk owns a batched evaluator it loads BatchLanes trials
		// at a time; the clean traces are shared by all shards (they are
		// the expensive part and are cached per network for the standard
		// input set). Each trial still draws from its own splittable
		// stream and each lane replays the scalar evaluation exactly, so
		// batching — like sharding — changes who runs a trial, never
		// what it computes.
		bp := fault.CompileBatch(net, fault.BatchLanes)
		var plans [fault.BatchLanes]fault.Plan
		var injs [fault.BatchLanes]fault.Injector
		var laneErr, laneWorst [fault.BatchLanes]float64
		for i := lo; i < hi; i += fault.BatchLanes {
			lanes := fault.BatchLanes
			if rem := hi - i; rem < lanes {
				lanes = rem
			}
			for p := 0; p < lanes; p++ {
				r := rng.NewStream(seed, uint64(base+i+p))
				plans[p] = fault.RandomNeuronPlan(r, net, perLayer)
				if c == 0 {
					injs[p] = fault.Crash{}
				} else {
					injs[p] = fault.RandomByzantine{C: c, Sem: core.DeviationCap, R: r.Split()}
				}
				laneWorst[p] = 0
			}
			bp.Reset(plans[:lanes])
			for _, tr := range traces {
				bp.ErrorsOnTrace(injs[:lanes], tr, laneErr[:lanes])
				for p := 0; p < lanes; p++ {
					if laneErr[p] > laneWorst[p] {
						laneWorst[p] = laneErr[p]
					}
				}
			}
			copy(errs[i:i+lanes], laneWorst[:lanes])
		}
	})
}

// shardedMonteCarlo samples random failure configurations for the
// synchronous /v1/montecarlo path: one full sweep, no checkpointing.
//
// ctx bounds the campaign: when the request is abandoned (client gone,
// server shutting down) the shards stop between trials and ctx.Err()
// is returned — a 200,000-trial sweep must not keep burning the pool
// for a caller that already hung up.
func (s *Server) shardedMonteCarlo(ctx context.Context, net nn.Model, perLayer []int, c float64, traces []*nn.Trace, trials int, seed uint64) (fault.Profile, error) {
	errs := make([]float64, trials)
	if err := s.mcRange(ctx, net, perLayer, c, traces, seed, 0, errs); err != nil {
		return fault.Profile{}, err
	}
	return fault.ProfileOf(errs), nil
}
