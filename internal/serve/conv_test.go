package serve

import (
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/activation"
	"repro/internal/conv"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/store"
)

func testConv2D(t *testing.T) *conv.Net2D {
	t.Helper()
	n, err := conv.NewRandom2D(rng.New(7), 6, 6, []int{3}, []int{2}, activation.NewSigmoid(1), 0.5, true)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestConvEndToEnd is the acceptance round trip of the model layer:
// upload a 2-D conv model, list it, evaluate it, certify it, inject
// every kind of query against it — all five /v1 endpoints accept the
// stored conv model and answer from the native engine.
func TestConvEndToEnd(t *testing.T) {
	s, _, _ := newTestServer(t)
	net := testConv2D(t)
	doc, err := json.Marshal(net)
	if err != nil {
		t.Fatal(err)
	}

	// Upload.
	var up struct {
		ID     string `json:"id"`
		Arch   string `json:"arch"`
		Layers int    `json:"layers"`
		Widths []int  `json:"widths"`
	}
	if code := do(t, s, "POST", "/v1/networks", string(doc), &up); code != http.StatusCreated {
		t.Fatalf("upload status %d", code)
	}
	if up.Arch != conv.Arch2D || up.Layers != 1 || len(up.Widths) != 1 || up.Widths[0] != 32 {
		t.Fatalf("upload response %+v", up)
	}

	// List includes it, architecture-tagged.
	var list struct {
		Networks []struct {
			ID   string `json:"id"`
			Kind string `json:"kind"`
			Arch string `json:"arch"`
		} `json:"networks"`
	}
	if code := do(t, s, "GET", "/v1/networks", nil, &list); code != http.StatusOK {
		t.Fatalf("list status %d", code)
	}
	found := false
	for _, e := range list.Networks {
		if e.ID == up.ID {
			found = true
			if e.Kind != store.KindConv || e.Arch != conv.Arch2D {
				t.Fatalf("listed as kind=%q arch=%q", e.Kind, e.Arch)
			}
		}
	}
	if !found {
		t.Fatal("uploaded conv model not listed")
	}

	// Eval: outputs bit-identical to the local native forward pass.
	x := make([]float64, 36)
	rng.New(8).Floats(x, 0, 1)
	var ev struct {
		Outputs []float64 `json:"outputs"`
	}
	if code := do(t, s, "POST", "/v1/eval",
		map[string]any{"network_id": up.ID, "inputs": [][]float64{x}}, &ev); code != http.StatusOK {
		t.Fatalf("eval status %d", code)
	}
	want := nn.ForwardModel(net, nn.NewScratch(net), x)
	if len(ev.Outputs) != 1 || ev.Outputs[0] != want {
		t.Fatalf("eval %v, want [%v]", ev.Outputs, want)
	}

	// Bounds: the shape is the Section VI receptive-field shape — w_m
	// over the R(l) kernel values, bit-equal to conv.Shape2D.
	var bd struct {
		Arch       string    `json:"arch"`
		MaxWeights []float64 `json:"max_weights"`
		Fep        float64   `json:"fep"`
	}
	if code := do(t, s, "POST", "/v1/bounds",
		map[string]any{"network_id": up.ID, "faults": 1, "c": 1.0}, &bd); code != http.StatusOK {
		t.Fatalf("bounds status %d", code)
	}
	cs := conv.Shape2D(net)
	if bd.Arch != conv.Arch2D {
		t.Fatalf("bounds arch %q", bd.Arch)
	}
	for i := range cs.MaxW {
		if bd.MaxWeights[i] != cs.MaxW[i] {
			t.Fatalf("bounds MaxW[%d] = %v, want receptive-field %v", i, bd.MaxWeights[i], cs.MaxW[i])
		}
	}
	if bd.Fep <= 0 {
		t.Fatalf("fep %v", bd.Fep)
	}

	// Inject: every registered model against the native conv engine.
	for _, model := range []string{"crash", "byzantine", "stuck", "intermittent", "noise", "signflip", "bitflip", "byzantine-random"} {
		var inj struct {
			Measured float64 `json:"measured"`
			Bound    float64 `json:"bound"`
		}
		if code := do(t, s, "POST", "/v1/inject",
			map[string]any{"network_id": up.ID, "faults": 1, "model": model}, &inj); code != http.StatusOK {
			t.Fatalf("inject %s status %d", model, code)
		}
		if inj.Measured > inj.Bound*(1+1e-9) {
			t.Fatalf("inject %s: measured %v above bound %v", model, inj.Measured, inj.Bound)
		}
	}

	// Monte Carlo.
	var mc struct {
		Trials int     `json:"trials"`
		Max    float64 `json:"max"`
		Bound  float64 `json:"bound"`
	}
	if code := do(t, s, "POST", "/v1/montecarlo",
		map[string]any{"network_id": up.ID, "faults": 1, "trials": 64, "seed": 3}, &mc); code != http.StatusOK {
		t.Fatalf("montecarlo status %d", code)
	}
	if mc.Trials != 64 || mc.Max > mc.Bound*(1+1e-9) {
		t.Fatalf("montecarlo %+v", mc)
	}
}

// TestConvInlineNetwork serves arch-tagged inline documents without a
// store round trip.
func TestConvInlineNetwork(t *testing.T) {
	s, _, _ := newTestServer(t)
	net := testConv2D(t)
	doc, err := json.Marshal(net)
	if err != nil {
		t.Fatal(err)
	}
	var bd struct {
		Arch   string `json:"arch"`
		Widths []int  `json:"widths"`
	}
	code := do(t, s, "POST", "/v1/bounds",
		map[string]any{"network": json.RawMessage(doc), "faults": 2}, &bd)
	if code != http.StatusOK {
		t.Fatalf("inline conv bounds status %d", code)
	}
	if bd.Arch != conv.Arch2D || bd.Widths[0] != 32 {
		t.Fatalf("inline conv bounds %+v", bd)
	}
}

// TestQuantizeEndpoint pins /v1/quantize: the recipe persists through
// the store helpers and reconstructs deterministically.
func TestQuantizeEndpoint(t *testing.T) {
	s, _, id := newTestServer(t)
	var q struct {
		ID        string  `json:"id"`
		NetworkID string  `json:"network_id"`
		Bound     float64 `json:"bound"`
		Memory    int     `json:"memory_bits"`
		Full      int     `json:"full_precision_bits"`
	}
	if code := do(t, s, "POST", "/v1/quantize",
		map[string]any{"network_id": id, "bits": 6}, &q); code != http.StatusCreated {
		t.Fatalf("quantize status %d", code)
	}
	if q.NetworkID != id || q.Bound <= 0 || q.Memory <= 0 || q.Memory >= q.Full {
		t.Fatalf("quantize response %+v", q)
	}
	// The recipe is a stored artifact reconstructible by the store
	// helpers alone.
	loaded, entry, err := s.st.Quantized(q.ID)
	if err != nil {
		t.Fatal(err)
	}
	if entry.Kind != store.KindQuantized || loaded.Bound() != q.Bound {
		t.Fatalf("recipe kind %q bound %v, want %v", entry.Kind, loaded.Bound(), q.Bound)
	}
	// Same recipe, same content address: re-quantising is idempotent.
	var q2 struct {
		ID string `json:"id"`
	}
	if code := do(t, s, "POST", "/v1/quantize",
		map[string]any{"network_id": id, "bits": 6}, &q2); code != http.StatusCreated {
		t.Fatalf("repeat quantize status %d", code)
	}
	if q2.ID != q.ID {
		t.Fatalf("repeat quantize gave %s, want %s", q2.ID, q.ID)
	}
}

// TestQuantizeRejections pins the endpoint's error paths.
func TestQuantizeRejections(t *testing.T) {
	s, _, denseID := newTestServer(t)
	net := testConv2D(t)
	doc, _ := json.Marshal(net)
	var up struct {
		ID string `json:"id"`
	}
	if code := do(t, s, "POST", "/v1/networks", string(doc), &up); code != http.StatusCreated {
		t.Fatalf("upload status %d", code)
	}
	for _, tc := range []struct {
		name string
		body any
		code int
	}{
		{"missing id", map[string]any{"bits": 8}, http.StatusBadRequest},
		{"unknown id", map[string]any{"network_id": "feedfeed", "bits": 8}, http.StatusNotFound},
		{"conv artifact", map[string]any{"network_id": up.ID, "bits": 8}, 422},
		{"bad bits", map[string]any{"network_id": denseID, "bits": 99}, http.StatusBadRequest},
	} {
		var e struct {
			Error string `json:"error"`
		}
		if code := do(t, s, "POST", "/v1/quantize", tc.body, &e); code != tc.code {
			t.Fatalf("%s: status %d (%s), want %d", tc.name, code, e.Error, tc.code)
		}
		if e.Error == "" {
			t.Fatalf("%s: missing error envelope", tc.name)
		}
	}
}
