// Package serve is the long-running robustness-query service: an HTTP
// JSON API over the store and the evaluation engine that answers
// Fep-bound, fault-injection and Monte Carlo queries on demand — the
// paper's core promise (cheap topology-only robustness certificates)
// operationalised as a service instead of a one-shot CLI run.
//
// Endpoints (see DESIGN.md §5 for request/response schemas):
//
//	GET  /healthz               — liveness + cache and job-tier statistics
//	GET  /v1/networks           — list stored networks
//	POST /v1/networks           — upload a network into the store
//	POST /v1/eval               — batched forward evaluation
//	POST /v1/bounds             — Fep / tolerance certificates
//	POST /v1/inject             — fault injection: measured error vs bound
//	POST /v1/montecarlo         — sharded random-failure profile
//	POST /v1/worstcase          — exhaustive worst-case search (tree engine, bound-guided pruning)
//	POST /v1/quantize           — persist a fixed-point recipe with its Theorem 5 certificate
//	POST /v1/jobs               — submit an async job (eval/bounds/inject/montecarlo/worstcase/experiments)
//	GET  /v1/jobs               — list jobs
//	GET  /v1/jobs/{id}          — job record; ?watch=1 streams NDJSON updates
//	GET  /v1/jobs/{id}/result   — completed job's result document
//	POST /v1/jobs/{id}/cancel   — cancel a queued or running job
//
// Every model-accepting endpoint serves dense networks and native
// convolutional models (conv1d/conv2d documents) alike; conv queries
// run on the native engine and their bounds use the Section VI
// receptive-field shape.
//
// Steady-state hot paths allocate nothing beyond the HTTP/JSON shell:
// per-network state (shape, certifier scratch, compiled fault plans,
// clean traces of the standard input set) is cached on first use, eval
// runs on pooled nn.Scratch buffers, and Monte Carlo trials are sharded
// over a persistent parallel.Pool.
//
// Long campaigns go through the async job tier (DESIGN.md §7): a
// bounded worker pool with queue-depth backpressure (429 + Retry-After
// when full), per-attempt deadlines, retry with exponential backoff,
// durable checkpoint/resume through the artifact store, and
// request-hash memoization of completed results. SIGTERM drains the
// tier: running campaigns checkpoint and park, and the next process
// resumes them.
package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/jobs"
	"repro/internal/parallel"
	"repro/internal/store"
)

// Config sizes a Server.
type Config struct {
	// Store backs upload/list, network_id resolution, and the async job
	// tier. When nil, only inline-network queries work; uploads and jobs
	// are rejected.
	Store *store.Store
	// Workers sizes the Monte Carlo worker pool (<= 0 selects the
	// default degree of parallelism).
	Workers int

	// JobWorkers bounds concurrently executing async jobs (default 2).
	JobWorkers int
	// JobQueue bounds jobs accepted but not yet running; a full queue
	// rejects submissions with 429 + Retry-After (default 64).
	JobQueue int
	// JobDeadline bounds one job attempt (0 = unbounded). A deadline hit
	// retries from the last checkpoint.
	JobDeadline time.Duration
	// JobRetries bounds attempts per job (default 3).
	JobRetries int
	// JobCheckpointTrials sets the Monte Carlo campaign checkpoint
	// interval in trials (default 2048).
	JobCheckpointTrials int
	// Logf, when non-nil, receives operational messages from the job
	// tier (persistence failures, recovered panics).
	Logf func(format string, args ...any)
}

// Server answers robustness queries over HTTP. Create with New, expose
// with Handler (or let Run manage the listener), release with Close.
type Server struct {
	st      *store.Store
	pool    *parallel.Pool
	jobs    *jobs.Manager
	mux     *http.ServeMux
	start   time.Time
	mcChunk int

	mu   sync.RWMutex
	nets map[string]*cachedNet // by full store ID
}

// Body limits per route class: model-bearing requests carry networks
// with millions of parameters; control-plane requests do not.
const (
	maxBodyBytes   = 64 << 20
	smallBodyBytes = 1 << 20
)

// New builds a Server from cfg. With a store configured it also starts
// the async job tier, recovering and resuming any jobs a previous
// process left queued, running, or checkpointed.
func New(cfg Config) (*Server, error) {
	s := &Server{
		st:      cfg.Store,
		pool:    parallel.NewPool(cfg.Workers),
		mux:     http.NewServeMux(),
		start:   time.Now(),
		mcChunk: cfg.JobCheckpointTrials,
		nets:    map[string]*cachedNet{},
	}
	if s.mcChunk <= 0 {
		s.mcChunk = 2048
	}
	s.handle("GET /healthz", smallBodyBytes, s.handleHealthz)
	s.handle("GET /v1/networks", smallBodyBytes, s.handleListNetworks)
	s.handle("POST /v1/networks", maxBodyBytes, s.handleUploadNetwork)
	s.handle("POST /v1/eval", maxBodyBytes, s.handleEval)
	s.handle("POST /v1/bounds", maxBodyBytes, s.handleBounds)
	s.handle("POST /v1/inject", maxBodyBytes, s.handleInject)
	s.handle("POST /v1/montecarlo", maxBodyBytes, s.handleMonteCarlo)
	s.handle("POST /v1/worstcase", maxBodyBytes, s.handleWorstCase)
	s.handle("POST /v1/quantize", smallBodyBytes, s.handleQuantize)
	s.handle("POST /v1/jobs", maxBodyBytes, s.handleJobSubmit)
	s.handle("GET /v1/jobs", smallBodyBytes, s.handleJobList)
	s.handle("GET /v1/jobs/{id}", smallBodyBytes, s.handleJobGet)
	s.handle("GET /v1/jobs/{id}/result", smallBodyBytes, s.handleJobResult)
	s.handle("POST /v1/jobs/{id}/cancel", smallBodyBytes, s.handleJobCancel)
	if cfg.Store != nil {
		m, err := jobs.New(jobs.Config{
			Store:       cfg.Store,
			Exec:        s.execJob,
			Workers:     cfg.JobWorkers,
			QueueDepth:  cfg.JobQueue,
			Deadline:    cfg.JobDeadline,
			MaxAttempts: cfg.JobRetries,
			Logf:        cfg.Logf,
		})
		if err != nil {
			s.pool.Close()
			return nil, fmt.Errorf("job tier: %w", err)
		}
		s.jobs = m
	}
	return s, nil
}

// handle registers a route with its request-body limit: every /v1/*
// handler reads through a MaxBytesReader sized for its route class.
func (s *Server) handle(pattern string, limit int64, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, limit)
		}
		h(w, r)
	})
}

// Handler returns the service's HTTP handler with the panic-recovery
// middleware applied (body limits are per route).
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", p))
			}
		}()
		s.mux.ServeHTTP(w, r)
	})
}

// Drain gracefully shuts the async job tier down: submissions are
// rejected, running campaigns checkpoint and park as resumable records,
// and the job workers exit. ctx bounds the wait. Without a job tier it
// is a no-op.
func (s *Server) Drain(ctx context.Context) error {
	if s.jobs == nil {
		return nil
	}
	return s.jobs.Close(ctx)
}

// Close drains the job tier (bounded) and releases the worker pool.
// The Server must not serve requests afterwards.
func (s *Server) Close() {
	if s.jobs != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		s.jobs.Close(ctx) //nolint:errcheck // best effort on the way out
		cancel()
	}
	s.pool.Close()
}

// Run listens on addr and serves until ctx is cancelled, then shuts
// down gracefully: in-flight requests drain (bounded), then the job
// tier checkpoints and parks its campaigns so the next process resumes
// them. logf, when non-nil, receives one "listening on <addr>" line
// once the listener is bound — with addr ":0" this is how callers learn
// the port.
func Run(ctx context.Context, addr string, cfg Config, logf func(format string, args ...any)) error {
	if cfg.Logf == nil {
		cfg.Logf = logf
	}
	s, err := New(cfg)
	if err != nil {
		return err
	}
	defer s.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if logf != nil {
		logf("listening on %s", ln.Addr())
	}
	hs := &http.Server{
		Handler: s.Handler(),
		// Slowloris and stuck-peer protection: no request may hold a
		// connection open indefinitely. Streaming watches stay well
		// inside WriteTimeout (watchWindow).
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case <-ctx.Done():
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		err := hs.Shutdown(shCtx)
		<-errc // Serve has returned http.ErrServerClosed
		if derr := s.Drain(shCtx); derr != nil && err == nil {
			err = derr
		}
		return err
	case err := <-errc:
		return err
	}
}
