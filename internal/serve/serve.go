// Package serve is the long-running robustness-query service: an HTTP
// JSON API over the store and the evaluation engine that answers
// Fep-bound, fault-injection and Monte Carlo queries on demand — the
// paper's core promise (cheap topology-only robustness certificates)
// operationalised as a service instead of a one-shot CLI run.
//
// Endpoints (see DESIGN.md §5 for request/response schemas):
//
//	GET  /healthz        — liveness + cache statistics
//	GET  /v1/networks    — list stored networks
//	POST /v1/networks    — upload a network into the store
//	POST /v1/eval        — batched forward evaluation
//	POST /v1/bounds      — Fep / tolerance certificates
//	POST /v1/inject      — fault injection: measured error vs bound
//	POST /v1/montecarlo  — sharded random-failure profile
//	POST /v1/quantize    — persist a fixed-point recipe with its Theorem 5 certificate
//
// Every model-accepting endpoint serves dense networks and native
// convolutional models (conv1d/conv2d documents) alike; conv queries
// run on the native engine and their bounds use the Section VI
// receptive-field shape.
//
// Steady-state hot paths allocate nothing beyond the HTTP/JSON shell:
// per-network state (shape, certifier scratch, compiled fault plans,
// clean traces of the standard input set) is cached on first use, eval
// runs on pooled nn.Scratch buffers, and Monte Carlo trials are sharded
// over a persistent parallel.Pool.
package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/parallel"
	"repro/internal/store"
)

// Config sizes a Server.
type Config struct {
	// Store backs upload/list and network_id resolution. When nil, only
	// inline-network queries work and uploads are rejected.
	Store *store.Store
	// Workers sizes the Monte Carlo worker pool (<= 0 selects the
	// default degree of parallelism).
	Workers int
}

// Server answers robustness queries over HTTP. Create with New, expose
// with Handler (or let Run manage the listener), release the worker
// pool with Close.
type Server struct {
	st    *store.Store
	pool  *parallel.Pool
	mux   *http.ServeMux
	start time.Time

	mu   sync.RWMutex
	nets map[string]*cachedNet // by full store ID
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	s := &Server{
		st:    cfg.Store,
		pool:  parallel.NewPool(cfg.Workers),
		mux:   http.NewServeMux(),
		start: time.Now(),
		nets:  map[string]*cachedNet{},
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/networks", s.handleListNetworks)
	s.mux.HandleFunc("POST /v1/networks", s.handleUploadNetwork)
	s.mux.HandleFunc("POST /v1/eval", s.handleEval)
	s.mux.HandleFunc("POST /v1/bounds", s.handleBounds)
	s.mux.HandleFunc("POST /v1/inject", s.handleInject)
	s.mux.HandleFunc("POST /v1/montecarlo", s.handleMonteCarlo)
	s.mux.HandleFunc("POST /v1/quantize", s.handleQuantize)
	return s
}

// Handler returns the service's HTTP handler with the panic-recovery
// and body-limit middleware applied.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", p))
			}
		}()
		r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
		s.mux.ServeHTTP(w, r)
	})
}

// maxBodyBytes bounds request bodies (networks with millions of
// parameters fit comfortably; unbounded uploads do not).
const maxBodyBytes = 64 << 20

// Close releases the worker pool. The Server must not serve requests
// afterwards.
func (s *Server) Close() { s.pool.Close() }

// Run listens on addr and serves until ctx is cancelled, then shuts
// down gracefully (in-flight requests drain, bounded by a timeout).
// logf, when non-nil, receives one "listening on <addr>" line once the
// listener is bound — with addr ":0" this is how callers learn the
// port.
func Run(ctx context.Context, addr string, cfg Config, logf func(format string, args ...any)) error {
	s := New(cfg)
	defer s.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if logf != nil {
		logf("listening on %s", ln.Addr())
	}
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case <-ctx.Done():
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		err := hs.Shutdown(shCtx)
		<-errc // Serve has returned http.ErrServerClosed
		return err
	case err := <-errc:
		return err
	}
}
