package serve

import (
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/activation"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/store"
)

// testSkipGraph builds a small-world graph with skip connections — a
// model the layered certificate algebra cannot price.
func testSkipGraph(t *testing.T) *graph.Net {
	t.Helper()
	g := graph.NewSmallWorld(rng.New(41), 2, []int{5, 4, 4}, activation.NewSigmoid(1), 2, 0.7)
	if nn.IsLayered(g) {
		t.Fatal("test graph is layered; pick another seed")
	}
	return g
}

// TestGraphEndToEnd is the serving acceptance round trip for
// arbitrary-topology models: upload a skip graph, list it, evaluate
// it, certify it via the per-node shape, inject every registered fault
// model, profile it, and exhaustively certify it through the flat
// worst-case fallback — all against the native sparse-DAG engine.
func TestGraphEndToEnd(t *testing.T) {
	s, _, _ := newTestServer(t)
	g := testSkipGraph(t)
	doc, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}

	// Upload.
	var up struct {
		ID     string `json:"id"`
		Arch   string `json:"arch"`
		Layers int    `json:"layers"`
		Widths []int  `json:"widths"`
	}
	if code := do(t, s, "POST", "/v1/networks", string(doc), &up); code != http.StatusCreated {
		t.Fatalf("upload status %d", code)
	}
	if up.Arch != graph.Arch || up.Layers != 3 || len(up.Widths) != 3 {
		t.Fatalf("upload response %+v", up)
	}

	// List includes it under its own kind, architecture-tagged.
	var list struct {
		Networks []struct {
			ID   string `json:"id"`
			Kind string `json:"kind"`
			Arch string `json:"arch"`
		} `json:"networks"`
	}
	if code := do(t, s, "GET", "/v1/networks", nil, &list); code != http.StatusOK {
		t.Fatalf("list status %d", code)
	}
	found := false
	for _, e := range list.Networks {
		if e.ID == up.ID {
			found = true
			if e.Kind != store.KindGraph || e.Arch != graph.Arch {
				t.Fatalf("listed as kind=%q arch=%q", e.Kind, e.Arch)
			}
		}
	}
	if !found {
		t.Fatal("uploaded graph model not listed")
	}

	// Eval: bit-identical to the local native forward pass.
	x := []float64{0.3, 0.7}
	var ev struct {
		Outputs []float64 `json:"outputs"`
	}
	if code := do(t, s, "POST", "/v1/eval",
		map[string]any{"network_id": up.ID, "inputs": [][]float64{x}}, &ev); code != http.StatusOK {
		t.Fatalf("eval status %d", code)
	}
	want := nn.ForwardModel(g, nn.NewScratch(g), x)
	if len(ev.Outputs) != 1 || ev.Outputs[0] != want {
		t.Fatalf("eval %v, want [%v]", ev.Outputs, want)
	}

	// Bounds: priced by the per-node shape, bit-equal to a direct
	// NodeShape query — the layered algebra must not be consulted.
	ns, err := core.NodeShapeOf(g)
	if err != nil {
		t.Fatal(err)
	}
	var bd struct {
		Fep        float64 `json:"fep"`
		CrashFep   float64 `json:"crash_fep"`
		SynapseFep float64 `json:"synapse_fep"`
		Tolerated  *bool   `json:"tolerated"`
	}
	if code := do(t, s, "POST", "/v1/bounds",
		map[string]any{"network_id": up.ID, "faults": 1, "c": 0.5, "eps": 100.0}, &bd); code != http.StatusOK {
		t.Fatalf("bounds status %d", code)
	}
	faults := []int{1, 1, 1}
	if bd.Fep != ns.Fep(faults, 0.5) || bd.CrashFep != ns.CrashFep(faults) {
		t.Fatalf("bounds fep %v crash %v, want NodeShape %v / %v",
			bd.Fep, bd.CrashFep, ns.Fep(faults, 0.5), ns.CrashFep(faults))
	}
	if bd.SynapseFep != ns.SynapseFep([]int{1, 1, 1, 0}, 0.5) {
		t.Fatalf("bounds synapse fep %v, want NodeShape %v", bd.SynapseFep, ns.SynapseFep([]int{1, 1, 1, 0}, 0.5))
	}
	if bd.Tolerated == nil || !*bd.Tolerated {
		t.Fatalf("tolerated = %v with eps 100", bd.Tolerated)
	}

	// Inject: every registered model against the sparse-DAG engine,
	// measured error within the NodeShape bound.
	for _, model := range []string{"crash", "byzantine", "stuck", "intermittent", "noise", "signflip", "bitflip", "byzantine-random"} {
		var inj struct {
			Measured float64 `json:"measured"`
			Bound    float64 `json:"bound"`
		}
		if code := do(t, s, "POST", "/v1/inject",
			map[string]any{"network_id": up.ID, "faults": 1, "model": model}, &inj); code != http.StatusOK {
			t.Fatalf("inject %s status %d", model, code)
		}
		if inj.Measured > inj.Bound*(1+1e-9) {
			t.Fatalf("inject %s: measured %v above bound %v", model, inj.Measured, inj.Bound)
		}
	}

	// Monte Carlo through the batched DAG fallback.
	var mc struct {
		Trials int     `json:"trials"`
		Max    float64 `json:"max"`
		Bound  float64 `json:"bound"`
	}
	if code := do(t, s, "POST", "/v1/montecarlo",
		map[string]any{"network_id": up.ID, "faults": 1, "trials": 64, "seed": 3, "c": 0.5}, &mc); code != http.StatusOK {
		t.Fatalf("montecarlo status %d", code)
	}
	if mc.Trials != 64 || mc.Max > mc.Bound*(1+1e-9) {
		t.Fatalf("montecarlo %+v", mc)
	}
	if mc.Bound != ns.Fep(faults, 0.5) {
		t.Fatalf("montecarlo bound %v, want NodeShape %v", mc.Bound, ns.Fep(faults, 0.5))
	}

	// Exhaustive worst case through the flat fallback of the tree
	// engine (prefix sharing assumes strict layering).
	var wc struct {
		Configurations int64   `json:"configurations"`
		WorstError     float64 `json:"worst_error"`
		Bound          float64 `json:"bound"`
	}
	if code := do(t, s, "POST", "/v1/worstcase",
		map[string]any{"network_id": up.ID, "faults": 1}, &wc); code != http.StatusOK {
		t.Fatalf("worstcase status %d", code)
	}
	if wc.Configurations != 5*4*4 {
		t.Fatalf("worstcase visited %d configurations, want 80", wc.Configurations)
	}
	if wc.WorstError <= 0 || wc.WorstError > wc.Bound*(1+1e-9) {
		t.Fatalf("worstcase error %v, bound %v", wc.WorstError, wc.Bound)
	}
}

// TestGraphInlineNetwork serves inline graph documents without a store
// round trip.
func TestGraphInlineNetwork(t *testing.T) {
	s, _, _ := newTestServer(t)
	doc, err := json.Marshal(testSkipGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	var bd struct {
		Arch   string `json:"arch"`
		Widths []int  `json:"widths"`
	}
	code := do(t, s, "POST", "/v1/bounds",
		map[string]any{"network": json.RawMessage(doc), "faults": 2}, &bd)
	if code != http.StatusOK {
		t.Fatalf("inline graph bounds status %d", code)
	}
	if bd.Arch != graph.Arch || len(bd.Widths) != 3 {
		t.Fatalf("inline graph bounds %+v", bd)
	}
}

// TestTypedRejections extends the malformed-request table with the
// error paths the graph work added: negative capacities on C-agnostic
// models (previously a panic in the Fep computation), stochastic
// models in the exhaustive engine, malformed graph documents, and the
// same shape mismatches against a NodeShape-priced network.
func TestTypedRejections(t *testing.T) {
	s, _, id := newTestServer(t)
	graphDoc, err := json.Marshal(testSkipGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	// An edge reading a future level: structurally well-formed JSON
	// rejected by graph validation.
	badGraph := `{"arch":"graph","input_dim":1,"activation":"sigmoid(K=1)",
		"levels":[{"n":1,"ptr":[0,1],"src_level":[1],"src_idx":[0],"w":[1]}],
		"output":{"n":1,"ptr":[0,1],"src_level":[1],"src_idx":[0],"w":[1]}}`

	for _, tc := range []struct {
		name string
		path string
		body any
		code int
	}{
		{"eval malformed inline model", "/v1/eval", map[string]any{"network": json.RawMessage(`{"arch":"alien"}`), "inputs": [][]float64{{1}}}, 400},
		{"eval invalid graph document", "/v1/eval", map[string]any{"network": json.RawMessage(badGraph), "inputs": [][]float64{{1}}}, 400},
		{"bounds negative fault count", "/v1/bounds", map[string]any{"network_id": id, "faults": -1}, 400},

		{"inject negative c", "/v1/inject", map[string]any{"network_id": id, "model": "crash", "c": -1.0}, 400},
		{"inject negative c byzantine", "/v1/inject", map[string]any{"network_id": id, "model": "byzantine", "c": -1.0}, 400},
		{"inject bad probability", "/v1/inject", map[string]any{"network_id": id, "model": "intermittent", "prob": 1.5}, 400},

		{"montecarlo negative c", "/v1/montecarlo", map[string]any{"network_id": id, "c": -0.1}, 400},
		{"montecarlo wrong input dimension", "/v1/montecarlo", map[string]any{"network_id": id, "inputs": [][]float64{{1, 2, 3, 4, 5}}}, 400},

		{"worstcase stochastic model", "/v1/worstcase", map[string]any{"network_id": id, "model": "noise"}, 400},
		{"worstcase negative c", "/v1/worstcase", map[string]any{"network_id": id, "model": "crash", "c": -2.0}, 400},
		{"worstcase negative cap", "/v1/worstcase", map[string]any{"network_id": id, "max_configs": -1}, 400},
	} {
		var e struct {
			Error string `json:"error"`
		}
		if code := do(t, s, "POST", tc.path, tc.body, &e); code != tc.code {
			t.Fatalf("%s: status %d (%q), want %d", tc.name, code, e.Error, tc.code)
		}
		if e.Error == "" {
			t.Fatalf("%s: missing error envelope", tc.name)
		}
	}

	// The same malformed shapes against a graph-backed network: the
	// NodeShape pricing path must reject, not panic.
	var up struct {
		ID string `json:"id"`
	}
	if code := do(t, s, "POST", "/v1/networks", string(graphDoc), &up); code != http.StatusCreated {
		t.Fatalf("upload status %d", code)
	}
	for _, tc := range []struct {
		name string
		path string
		body any
	}{
		{"graph bounds negative c", "/v1/bounds", map[string]any{"network_id": up.ID, "faults": 1, "c": -0.5}},
		{"graph bounds fault above width", "/v1/bounds", map[string]any{"network_id": up.ID, "faults": 100}},
		{"graph inject negative c", "/v1/inject", map[string]any{"network_id": up.ID, "model": "crash", "c": -1.0}},
		{"graph montecarlo negative c", "/v1/montecarlo", map[string]any{"network_id": up.ID, "c": -0.1}},
		{"graph worstcase negative c", "/v1/worstcase", map[string]any{"network_id": up.ID, "model": "crash", "c": -2.0}},
	} {
		var e struct {
			Error string `json:"error"`
		}
		if code := do(t, s, "POST", tc.path, tc.body, &e); code != 400 {
			t.Fatalf("%s: status %d (%q), want 400", tc.name, code, e.Error)
		}
	}
}
