package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"repro/internal/activation"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/jobs"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/store"
)

// testSkipGraph builds a small-world graph with skip connections — a
// model the layered certificate algebra cannot price.
func testSkipGraph(t *testing.T) *graph.Net {
	t.Helper()
	g := graph.NewSmallWorld(rng.New(41), 2, []int{5, 4, 4}, activation.NewSigmoid(1), 2, 0.7)
	if nn.IsLayered(g) {
		t.Fatal("test graph is layered; pick another seed")
	}
	return g
}

// TestGraphEndToEnd is the serving acceptance round trip for
// arbitrary-topology models: upload a skip graph, list it, evaluate
// it, certify it via the per-node shape, inject every registered fault
// model, profile it, and exhaustively certify it through the pruned
// level-scheduled tree walk — all against the native sparse-DAG engine.
func TestGraphEndToEnd(t *testing.T) {
	s, _, _ := newTestServer(t)
	g := testSkipGraph(t)
	doc, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}

	// Upload.
	var up struct {
		ID     string `json:"id"`
		Arch   string `json:"arch"`
		Layers int    `json:"layers"`
		Widths []int  `json:"widths"`
	}
	if code := do(t, s, "POST", "/v1/networks", string(doc), &up); code != http.StatusCreated {
		t.Fatalf("upload status %d", code)
	}
	if up.Arch != graph.Arch || up.Layers != 3 || len(up.Widths) != 3 {
		t.Fatalf("upload response %+v", up)
	}

	// List includes it under its own kind, architecture-tagged.
	var list struct {
		Networks []struct {
			ID   string `json:"id"`
			Kind string `json:"kind"`
			Arch string `json:"arch"`
		} `json:"networks"`
	}
	if code := do(t, s, "GET", "/v1/networks", nil, &list); code != http.StatusOK {
		t.Fatalf("list status %d", code)
	}
	found := false
	for _, e := range list.Networks {
		if e.ID == up.ID {
			found = true
			if e.Kind != store.KindGraph || e.Arch != graph.Arch {
				t.Fatalf("listed as kind=%q arch=%q", e.Kind, e.Arch)
			}
		}
	}
	if !found {
		t.Fatal("uploaded graph model not listed")
	}

	// Eval: bit-identical to the local native forward pass.
	x := []float64{0.3, 0.7}
	var ev struct {
		Outputs []float64 `json:"outputs"`
	}
	if code := do(t, s, "POST", "/v1/eval",
		map[string]any{"network_id": up.ID, "inputs": [][]float64{x}}, &ev); code != http.StatusOK {
		t.Fatalf("eval status %d", code)
	}
	want := nn.ForwardModel(g, nn.NewScratch(g), x)
	if len(ev.Outputs) != 1 || ev.Outputs[0] != want {
		t.Fatalf("eval %v, want [%v]", ev.Outputs, want)
	}

	// Bounds: priced by the per-node shape, bit-equal to a direct
	// NodeShape query — the layered algebra must not be consulted.
	ns, err := core.NodeShapeOf(g)
	if err != nil {
		t.Fatal(err)
	}
	var bd struct {
		Fep        float64 `json:"fep"`
		CrashFep   float64 `json:"crash_fep"`
		SynapseFep float64 `json:"synapse_fep"`
		Tolerated  *bool   `json:"tolerated"`
	}
	if code := do(t, s, "POST", "/v1/bounds",
		map[string]any{"network_id": up.ID, "faults": 1, "c": 0.5, "eps": 100.0}, &bd); code != http.StatusOK {
		t.Fatalf("bounds status %d", code)
	}
	faults := []int{1, 1, 1}
	if bd.Fep != ns.Fep(faults, 0.5) || bd.CrashFep != ns.CrashFep(faults) {
		t.Fatalf("bounds fep %v crash %v, want NodeShape %v / %v",
			bd.Fep, bd.CrashFep, ns.Fep(faults, 0.5), ns.CrashFep(faults))
	}
	if bd.SynapseFep != ns.SynapseFep([]int{1, 1, 1, 0}, 0.5) {
		t.Fatalf("bounds synapse fep %v, want NodeShape %v", bd.SynapseFep, ns.SynapseFep([]int{1, 1, 1, 0}, 0.5))
	}
	if bd.Tolerated == nil || !*bd.Tolerated {
		t.Fatalf("tolerated = %v with eps 100", bd.Tolerated)
	}

	// Inject: every registered model against the sparse-DAG engine,
	// measured error within the NodeShape bound.
	for _, model := range []string{"crash", "byzantine", "stuck", "intermittent", "noise", "signflip", "bitflip", "byzantine-random"} {
		var inj struct {
			Measured float64 `json:"measured"`
			Bound    float64 `json:"bound"`
		}
		if code := do(t, s, "POST", "/v1/inject",
			map[string]any{"network_id": up.ID, "faults": 1, "model": model}, &inj); code != http.StatusOK {
			t.Fatalf("inject %s status %d", model, code)
		}
		if inj.Measured > inj.Bound*(1+1e-9) {
			t.Fatalf("inject %s: measured %v above bound %v", model, inj.Measured, inj.Bound)
		}
	}

	// Monte Carlo through the batched DAG fallback.
	var mc struct {
		Trials int     `json:"trials"`
		Max    float64 `json:"max"`
		Bound  float64 `json:"bound"`
	}
	if code := do(t, s, "POST", "/v1/montecarlo",
		map[string]any{"network_id": up.ID, "faults": 1, "trials": 64, "seed": 3, "c": 0.5}, &mc); code != http.StatusOK {
		t.Fatalf("montecarlo status %d", code)
	}
	if mc.Trials != 64 || mc.Max > mc.Bound*(1+1e-9) {
		t.Fatalf("montecarlo %+v", mc)
	}
	if mc.Bound != ns.Fep(faults, 0.5) {
		t.Fatalf("montecarlo bound %v, want NodeShape %v", mc.Bound, ns.Fep(faults, 0.5))
	}

	// Exhaustive worst case through the tree engine's level-scheduled
	// walk (prefix sharing and per-node pruning on the skip topology).
	var wc struct {
		Configurations int64   `json:"configurations"`
		WorstError     float64 `json:"worst_error"`
		Bound          float64 `json:"bound"`
	}
	if code := do(t, s, "POST", "/v1/worstcase",
		map[string]any{"network_id": up.ID, "faults": 1}, &wc); code != http.StatusOK {
		t.Fatalf("worstcase status %d", code)
	}
	if wc.Configurations != 5*4*4 {
		t.Fatalf("worstcase visited %d configurations, want 80", wc.Configurations)
	}
	if wc.WorstError <= 0 || wc.WorstError > wc.Bound*(1+1e-9) {
		t.Fatalf("worstcase error %v, bound %v", wc.WorstError, wc.Bound)
	}
}

// TestGraphInlineNetwork serves inline graph documents without a store
// round trip.
func TestGraphInlineNetwork(t *testing.T) {
	s, _, _ := newTestServer(t)
	doc, err := json.Marshal(testSkipGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	var bd struct {
		Arch   string `json:"arch"`
		Widths []int  `json:"widths"`
	}
	code := do(t, s, "POST", "/v1/bounds",
		map[string]any{"network": json.RawMessage(doc), "faults": 2}, &bd)
	if code != http.StatusOK {
		t.Fatalf("inline graph bounds status %d", code)
	}
	if bd.Arch != graph.Arch || len(bd.Widths) != 3 {
		t.Fatalf("inline graph bounds %+v", bd)
	}
}

// TestTypedRejections extends the malformed-request table with the
// error paths the graph work added: negative capacities on C-agnostic
// models (previously a panic in the Fep computation), stochastic
// models in the exhaustive engine, malformed graph documents, and the
// same shape mismatches against a NodeShape-priced network.
func TestTypedRejections(t *testing.T) {
	s, _, id := newTestServer(t)
	graphDoc, err := json.Marshal(testSkipGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	// An edge reading a future level: structurally well-formed JSON
	// rejected by graph validation.
	badGraph := `{"arch":"graph","input_dim":1,"activation":"sigmoid(K=1)",
		"levels":[{"n":1,"ptr":[0,1],"src_level":[1],"src_idx":[0],"w":[1]}],
		"output":{"n":1,"ptr":[0,1],"src_level":[1],"src_idx":[0],"w":[1]}}`

	for _, tc := range []struct {
		name string
		path string
		body any
		code int
	}{
		{"eval malformed inline model", "/v1/eval", map[string]any{"network": json.RawMessage(`{"arch":"alien"}`), "inputs": [][]float64{{1}}}, 400},
		{"eval invalid graph document", "/v1/eval", map[string]any{"network": json.RawMessage(badGraph), "inputs": [][]float64{{1}}}, 400},
		{"bounds negative fault count", "/v1/bounds", map[string]any{"network_id": id, "faults": -1}, 400},

		{"inject negative c", "/v1/inject", map[string]any{"network_id": id, "model": "crash", "c": -1.0}, 400},
		{"inject negative c byzantine", "/v1/inject", map[string]any{"network_id": id, "model": "byzantine", "c": -1.0}, 400},
		{"inject bad probability", "/v1/inject", map[string]any{"network_id": id, "model": "intermittent", "prob": 1.5}, 400},

		{"montecarlo negative c", "/v1/montecarlo", map[string]any{"network_id": id, "c": -0.1}, 400},
		{"montecarlo wrong input dimension", "/v1/montecarlo", map[string]any{"network_id": id, "inputs": [][]float64{{1, 2, 3, 4, 5}}}, 400},

		{"worstcase stochastic model", "/v1/worstcase", map[string]any{"network_id": id, "model": "noise"}, 400},
		{"worstcase negative c", "/v1/worstcase", map[string]any{"network_id": id, "model": "crash", "c": -2.0}, 400},
		{"worstcase negative cap", "/v1/worstcase", map[string]any{"network_id": id, "max_configs": -1}, 400},
	} {
		var e struct {
			Error string `json:"error"`
		}
		if code := do(t, s, "POST", tc.path, tc.body, &e); code != tc.code {
			t.Fatalf("%s: status %d (%q), want %d", tc.name, code, e.Error, tc.code)
		}
		if e.Error == "" {
			t.Fatalf("%s: missing error envelope", tc.name)
		}
	}

	// The same malformed shapes against a graph-backed network: the
	// NodeShape pricing path must reject, not panic.
	var up struct {
		ID string `json:"id"`
	}
	if code := do(t, s, "POST", "/v1/networks", string(graphDoc), &up); code != http.StatusCreated {
		t.Fatalf("upload status %d", code)
	}
	for _, tc := range []struct {
		name string
		path string
		body any
	}{
		{"graph bounds negative c", "/v1/bounds", map[string]any{"network_id": up.ID, "faults": 1, "c": -0.5}},
		{"graph bounds fault above width", "/v1/bounds", map[string]any{"network_id": up.ID, "faults": 100}},
		{"graph inject negative c", "/v1/inject", map[string]any{"network_id": up.ID, "model": "crash", "c": -1.0}},
		{"graph montecarlo negative c", "/v1/montecarlo", map[string]any{"network_id": up.ID, "c": -0.1}},
		{"graph worstcase negative c", "/v1/worstcase", map[string]any{"network_id": up.ID, "model": "crash", "c": -2.0}},
	} {
		var e struct {
			Error string `json:"error"`
		}
		if code := do(t, s, "POST", tc.path, tc.body, &e); code != 400 {
			t.Fatalf("%s: status %d (%q), want 400", tc.name, code, e.Error)
		}
	}
}

// TestGraphWorstCaseJobDrainResume is the resumability claim on the
// sparse-DAG engine: an exhaustive sweep over a genuinely non-layered
// skip graph — now walked by the pruned, prefix-sharing tree engine
// instead of the historical flat fallback — interrupted mid-frontier by
// a drain parks durably, a second server finishes it, and the result
// document AND its content address are bit-identical to an
// uninterrupted run.
func TestGraphWorstCaseJobDrainResume(t *testing.T) {
	skipGraph := func() *graph.Net {
		g := graph.NewSmallWorld(rng.New(17), 2, []int{14, 14, 6}, activation.NewSigmoid(1), 2, 0.6)
		if nn.IsLayered(g) {
			t.Fatal("test graph is layered; pick another seed")
		}
		return g
	}
	dir := t.TempDir()
	stA, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	entry, err := stA.PutModel(skipGraph(), nil)
	if err != nil {
		t.Fatal(err)
	}
	pts, _ := json.Marshal(metricsPoints(20))
	// C(14,2)^2 * C(6,1) = 49686 configurations in checkpointed chunks.
	request := fmt.Sprintf(`{"network_id": %q, "faults": [2, 2, 1], "inputs": %s}`, entry.ID, pts)

	a := mustNew(t, Config{Store: stA, Workers: 2, JobWorkers: 1, JobCheckpointTrials: 4})
	jr, rec := submitJob(t, a, "worstcase", request)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", rec.Code, rec.Body.Bytes())
	}
	// Wait for a durable frontier, then drain mid-sweep.
	pollJob(t, a, jr.ID, func(r jobs.Record) bool { return r.Checkpoints >= 2 })
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := a.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	a.Close()

	var parked jobs.Record
	if ok, err := stA.JobRecord(jr.ID, &parked); err != nil || !ok {
		t.Fatalf("parked record: %v %v", ok, err)
	}
	if parked.State != jobs.StateCheckpointed {
		t.Fatalf("parked state = %s, want checkpointed", parked.State)
	}
	if parked.Completed == 0 || parked.Completed >= parked.Total {
		t.Fatalf("parked mid-sweep progress = %d/%d", parked.Completed, parked.Total)
	}

	// Server B recovers the store and finishes the sweep.
	stB, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b := mustNew(t, Config{Store: stB, Workers: 2, JobWorkers: 1, JobCheckpointTrials: 4})
	defer b.Close()
	final := pollJob(t, b, jr.ID, func(r jobs.Record) bool { return r.State.Terminal() })
	if final.State != jobs.StateDone {
		t.Fatalf("resumed job ended %s (%s)", final.State, final.Error)
	}
	resumed := doRec(t, b, "GET", "/v1/jobs/"+jr.ID+"/result", nil)
	if resumed.Code != http.StatusOK {
		t.Fatalf("resumed result status %d: %s", resumed.Code, resumed.Body.Bytes())
	}

	// Reference: the same sweep, uninterrupted, on a fresh store.
	stC, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stC.PutModel(skipGraph(), nil); err != nil {
		t.Fatal(err)
	}
	c := mustNew(t, Config{Store: stC, Workers: 2, JobWorkers: 1, JobCheckpointTrials: 4})
	defer c.Close()
	ref, rc := submitJob(t, c, "worstcase", request)
	if rc.Code != http.StatusAccepted {
		t.Fatalf("reference submit status %d: %s", rc.Code, rc.Body.Bytes())
	}
	refFinal := pollJob(t, c, ref.ID, func(r jobs.Record) bool { return r.State.Terminal() })
	if refFinal.State != jobs.StateDone {
		t.Fatalf("reference ended %s (%s)", refFinal.State, refFinal.Error)
	}
	refRes := doRec(t, c, "GET", "/v1/jobs/"+ref.ID+"/result", nil)

	if !bytes.Equal(resumed.Body.Bytes(), refRes.Body.Bytes()) {
		t.Fatalf("resumed result differs from uninterrupted run:\n%s\nvs\n%s",
			resumed.Body.Bytes(), refRes.Body.Bytes())
	}
	// Same content address too: the artifacts are identical objects.
	if final.ResultID != refFinal.ResultID {
		t.Fatalf("result content addresses differ: %s vs %s", final.ResultID, refFinal.ResultID)
	}
}
