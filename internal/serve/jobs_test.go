package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/rng"
	"repro/internal/store"
)

// jobServer builds a Server over a fresh store holding one test
// network, with the given job-tier sizing.
func jobServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	entry, err := st.PutNetwork(testNet(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = st
	s := mustNew(t, cfg)
	t.Cleanup(s.Close)
	return s, entry.ID
}

// doRec issues a request against the in-process handler and returns
// the recorder (status, headers and body).
func doRec(t *testing.T, s *Server, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	switch b := body.(type) {
	case nil:
		rd = bytes.NewReader(nil)
	case string:
		rd = bytes.NewReader([]byte(b))
	default:
		data, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// submitJob posts a job and decodes the returned record.
func submitJob(t *testing.T, s *Server, kind, request string) (jobs.Record, *httptest.ResponseRecorder) {
	t.Helper()
	rec := doRec(t, s, "POST", "/v1/jobs",
		fmt.Sprintf(`{"kind": %q, "request": %s}`, kind, request))
	var jr jobs.Record
	if rec.Code == http.StatusAccepted || rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &jr); err != nil {
			t.Fatalf("job record: %v\n%s", err, rec.Body.Bytes())
		}
	}
	return jr, rec
}

// pollJob polls a job until pred holds, failing after a deadline.
func pollJob(t *testing.T, s *Server, id string, pred func(jobs.Record) bool) jobs.Record {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	var jr jobs.Record
	for time.Now().Before(deadline) {
		rec := doRec(t, s, "GET", "/v1/jobs/"+id, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("GET job: status %d: %s", rec.Code, rec.Body.Bytes())
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &jr); err != nil {
			t.Fatal(err)
		}
		if pred(jr) {
			return jr
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never satisfied predicate (last: %+v)", id, jr)
	return jr
}

// TestMonteCarloRangeSplitDeterministic is the resume-correctness
// kernel: a campaign computed in arbitrary splits over mcRange is
// bit-identical to one full sweep, because trial t depends only on
// (seed, t).
func TestMonteCarloRangeSplitDeterministic(t *testing.T) {
	s, id := jobServer(t, Config{Workers: 4})
	cn, err := s.storedNetwork(id)
	if err != nil {
		t.Fatal(err)
	}
	_, traces := cn.standardInputs()
	const trials = 700
	faults := []int{1, 1}
	full := make([]float64, trials)
	if err := s.mcRange(context.Background(), cn.model, faults, 1, traces, 42, 0, full); err != nil {
		t.Fatal(err)
	}
	split := make([]float64, trials)
	cuts := []int{0, 137, 138, 400, trials}
	for i := 0; i+1 < len(cuts); i++ {
		lo, hi := cuts[i], cuts[i+1]
		if err := s.mcRange(context.Background(), cn.model, faults, 1, traces, 42, lo, split[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	for i := range full {
		if full[i] != split[i] {
			t.Fatalf("trial %d differs across splits: %g vs %g", i, full[i], split[i])
		}
	}
}

// TestJobSubmitPollResult runs a Monte Carlo campaign through the job
// tier and checks its result agrees with the synchronous path.
func TestJobSubmitPollResult(t *testing.T) {
	s, id := jobServer(t, Config{JobCheckpointTrials: 64})
	request := fmt.Sprintf(`{"network_id": %q, "faults": 1, "c": 1, "trials": 300, "seed": 11}`, id)

	jr, rec := submitJob(t, s, "montecarlo", request)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", rec.Code, rec.Body.Bytes())
	}
	final := pollJob(t, s, jr.ID, func(r jobs.Record) bool { return r.State.Terminal() })
	if final.State != jobs.StateDone {
		t.Fatalf("job ended %s (%s)", final.State, final.Error)
	}
	if final.Completed != 300 || final.Total != 300 {
		t.Fatalf("progress = %d/%d, want 300/300", final.Completed, final.Total)
	}

	res := doRec(t, s, "GET", "/v1/jobs/"+jr.ID+"/result", nil)
	if res.Code != http.StatusOK {
		t.Fatalf("result status %d: %s", res.Code, res.Body.Bytes())
	}
	var async map[string]any
	if err := json.Unmarshal(res.Body.Bytes(), &async); err != nil {
		t.Fatal(err)
	}

	sync := doRec(t, s, "POST", "/v1/montecarlo", request)
	if sync.Code != http.StatusOK {
		t.Fatalf("sync status %d: %s", sync.Code, sync.Body.Bytes())
	}
	var syncResp map[string]any
	if err := json.Unmarshal(sync.Body.Bytes(), &syncResp); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(async, syncResp) {
		t.Fatalf("async result differs from sync path:\n%v\nvs\n%v", async, syncResp)
	}
}

// TestJobMemoizedDuplicate: an identical resubmission is answered from
// the memo index — HTTP 200, Memoized set, no second campaign.
func TestJobMemoizedDuplicate(t *testing.T) {
	s, id := jobServer(t, Config{})
	request := fmt.Sprintf(`{"network_id": %q, "trials": 200, "seed": 5}`, id)

	first, rec := submitJob(t, s, "montecarlo", request)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", rec.Code, rec.Body.Bytes())
	}
	done := pollJob(t, s, first.ID, func(r jobs.Record) bool { return r.State.Terminal() })
	if done.State != jobs.StateDone {
		t.Fatalf("job ended %s (%s)", done.State, done.Error)
	}

	dup, rec2 := submitJob(t, s, "montecarlo", request)
	if rec2.Code != http.StatusOK {
		t.Fatalf("memoized submit status %d, want 200: %s", rec2.Code, rec2.Body.Bytes())
	}
	if !dup.Memoized || dup.State != jobs.StateDone || dup.ResultID != done.ResultID {
		t.Fatalf("memoized record = %+v", dup)
	}
	// No second job was created.
	var list struct {
		Jobs []jobs.Record `json:"jobs"`
	}
	lr := doRec(t, s, "GET", "/v1/jobs", nil)
	if err := json.Unmarshal(lr.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 {
		t.Fatalf("%d jobs exist after memoized resubmit, want 1", len(list.Jobs))
	}
}

// slowCampaign is a request big enough to keep a worker busy for a
// while: the given trial count over 50 explicit inputs.
func slowCampaign(id string, seed uint64, trials int) string {
	pts := metricsPoints(50)
	data, _ := json.Marshal(pts)
	return fmt.Sprintf(`{"network_id": %q, "trials": %d, "seed": %d, "inputs": %s}`,
		id, trials, seed, data)
}

func metricsPoints(n int) [][]float64 {
	r := rng.New(99)
	out := make([][]float64, n)
	for i := range out {
		out[i] = []float64{r.Float64()*2 - 1, r.Float64()*2 - 1}
	}
	return out
}

// TestJobQueueFullBackpressure: with one worker and one queue slot, a
// third concurrent campaign is rejected with 429 + Retry-After.
func TestJobQueueFullBackpressure(t *testing.T) {
	s, id := jobServer(t, Config{Workers: 2, JobWorkers: 1, JobQueue: 1})

	j1, rec1 := submitJob(t, s, "montecarlo", slowCampaign(id, 1, maxTrials))
	if rec1.Code != http.StatusAccepted {
		t.Fatalf("submit 1 status %d: %s", rec1.Code, rec1.Body.Bytes())
	}
	pollJob(t, s, j1.ID, func(r jobs.Record) bool { return r.State == jobs.StateRunning })

	j2, rec2 := submitJob(t, s, "montecarlo", slowCampaign(id, 2, maxTrials))
	if rec2.Code != http.StatusAccepted {
		t.Fatalf("submit 2 status %d: %s", rec2.Code, rec2.Body.Bytes())
	}

	_, rec3 := submitJob(t, s, "montecarlo", slowCampaign(id, 3, maxTrials))
	if rec3.Code != http.StatusTooManyRequests {
		t.Fatalf("submit 3 status %d, want 429: %s", rec3.Code, rec3.Body.Bytes())
	}
	if ra := rec3.Header().Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After header")
	}

	// Cancel both; the running one unwinds between trials.
	for _, jid := range []string{j2.ID, j1.ID} {
		cr := doRec(t, s, "POST", "/v1/jobs/"+jid+"/cancel", nil)
		if cr.Code != http.StatusOK {
			t.Fatalf("cancel status %d: %s", cr.Code, cr.Body.Bytes())
		}
	}
	pollJob(t, s, j1.ID, func(r jobs.Record) bool { return r.State == jobs.StateCancelled })
	pollJob(t, s, j2.ID, func(r jobs.Record) bool { return r.State == jobs.StateCancelled })
}

// TestJobValidation: submissions fail fast with client errors instead
// of failing asynchronously.
func TestJobValidation(t *testing.T) {
	s, id := jobServer(t, Config{})
	for _, tc := range []struct {
		name, body string
		want       int
	}{
		{"unknown kind", `{"kind": "frobnicate", "request": {}}`, 400},
		{"missing kind", `{"request": {}}`, 400},
		{"bad trials", fmt.Sprintf(`{"kind": "montecarlo", "request": {"network_id": %q, "trials": -4}}`, id), 400},
		{"unknown network", `{"kind": "bounds", "request": {"network_id": "feedfeed"}}`, 404},
		{"unknown experiment", `{"kind": "experiments", "request": {"ids": ["ZZ9"]}}`, 400},
		{"unknown field", fmt.Sprintf(`{"kind": "montecarlo", "request": {"network_id": %q, "trails": 7}}`, id), 400},
	} {
		rec := doRec(t, s, "POST", "/v1/jobs", tc.body)
		if rec.Code != tc.want {
			t.Errorf("%s: status %d, want %d: %s", tc.name, rec.Code, tc.want, rec.Body.Bytes())
		}
	}

	// Storeless servers have no job tier.
	storeless := mustNew(t, Config{})
	defer storeless.Close()
	rec := doRec(t, storeless, "POST", "/v1/jobs", `{"kind": "bounds", "request": {}}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("storeless submit status %d, want 503", rec.Code)
	}
}

// TestJobBodyLimit: control-plane routes cap their request bodies; an
// oversized document is 413, not an async failure.
func TestJobBodyLimit(t *testing.T) {
	s, _ := jobServer(t, Config{})
	big := `{"network_id": "` + strings.Repeat("a", smallBodyBytes+1024) + `"}`
	rec := doRec(t, s, "POST", "/v1/quantize", big)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized quantize status %d, want 413", rec.Code)
	}
}

// TestJobWatchStream: ?watch=1 streams NDJSON records ending with the
// terminal one.
func TestJobWatchStream(t *testing.T) {
	s, id := jobServer(t, Config{JobCheckpointTrials: 32})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	jr, rec := submitJob(t, s, "montecarlo",
		fmt.Sprintf(`{"network_id": %q, "trials": 400, "seed": 3}`, id))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", rec.Code, rec.Body.Bytes())
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + jr.ID + "?watch=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("watch content type %q", ct)
	}
	var last jobs.Record
	n := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("watch line %d: %v: %s", n, err, sc.Bytes())
		}
		n++
	}
	if n == 0 {
		t.Fatal("watch streamed no records")
	}
	if !last.State.Terminal() {
		t.Fatalf("watch ended on non-terminal state %s after %d records", last.State, n)
	}
}

// TestJobDrainResumeAcrossServers is the process-restart path over
// HTTP: server A's drain interrupts a campaign mid-flight and parks it
// durably; server B over the same store resumes it and produces a
// result bit-identical to an uninterrupted run on a fresh store.
func TestJobDrainResumeAcrossServers(t *testing.T) {
	dir := t.TempDir()
	stA, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	entry, err := stA.PutNetwork(testNet(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	request := slowCampaign(entry.ID, 77, 20000)

	a := mustNew(t, Config{Store: stA, JobWorkers: 1, JobCheckpointTrials: 256})
	jr, rec := submitJob(t, a, "montecarlo", request)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", rec.Code, rec.Body.Bytes())
	}
	// Wait for durable partial state, then drain mid-campaign.
	pollJob(t, a, jr.ID, func(r jobs.Record) bool { return r.Checkpoints >= 1 })
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := a.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Draining rejects new submissions.
	if _, rec := submitJob(t, a, "montecarlo", request); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", rec.Code)
	}
	a.Close()

	var parked jobs.Record
	if ok, err := stA.JobRecord(jr.ID, &parked); err != nil || !ok {
		t.Fatalf("parked record: %v %v", ok, err)
	}
	if parked.State != jobs.StateCheckpointed {
		t.Fatalf("parked state = %s, want checkpointed", parked.State)
	}
	if parked.Completed == 0 || parked.Completed >= parked.Total {
		t.Fatalf("parked mid-campaign progress = %d/%d", parked.Completed, parked.Total)
	}

	// Server B recovers the store and finishes the campaign.
	stB, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b := mustNew(t, Config{Store: stB, JobWorkers: 1, JobCheckpointTrials: 256})
	defer b.Close()
	final := pollJob(t, b, jr.ID, func(r jobs.Record) bool { return r.State.Terminal() })
	if final.State != jobs.StateDone {
		t.Fatalf("resumed job ended %s (%s)", final.State, final.Error)
	}
	resumed := doRec(t, b, "GET", "/v1/jobs/"+jr.ID+"/result", nil)
	if resumed.Code != http.StatusOK {
		t.Fatalf("resumed result status %d: %s", resumed.Code, resumed.Body.Bytes())
	}

	// Reference: the same campaign, uninterrupted, on a fresh store.
	stC, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stC.PutNetwork(testNet(1), nil); err != nil {
		t.Fatal(err)
	}
	c := mustNew(t, Config{Store: stC, JobWorkers: 1, JobCheckpointTrials: 256})
	defer c.Close()
	ref, rc := submitJob(t, c, "montecarlo", request)
	if rc.Code != http.StatusAccepted {
		t.Fatalf("reference submit status %d: %s", rc.Code, rc.Body.Bytes())
	}
	refFinal := pollJob(t, c, ref.ID, func(r jobs.Record) bool { return r.State.Terminal() })
	if refFinal.State != jobs.StateDone {
		t.Fatalf("reference ended %s (%s)", refFinal.State, refFinal.Error)
	}
	refRes := doRec(t, c, "GET", "/v1/jobs/"+ref.ID+"/result", nil)

	if !bytes.Equal(resumed.Body.Bytes(), refRes.Body.Bytes()) {
		t.Fatalf("resumed result differs from uninterrupted run:\n%s\nvs\n%s",
			resumed.Body.Bytes(), refRes.Body.Bytes())
	}
	// Same content address too: the artifacts are identical objects.
	if final.ResultID != refFinal.ResultID {
		t.Fatalf("result content addresses differ: %s vs %s", final.ResultID, refFinal.ResultID)
	}
}
