package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/jobs"
	"repro/internal/store"
)

// Job kinds accepted by POST /v1/jobs. Each wraps one synchronous
// query path; montecarlo and experiments additionally checkpoint
// partial state so campaigns survive worker and process failures.
const (
	jobKindEval        = "eval"
	jobKindBounds      = "bounds"
	jobKindInject      = "inject"
	jobKindMonteCarlo  = "montecarlo"
	jobKindWorstCase   = "worstcase"
	jobKindExperiments = "experiments"
)

func jobKinds() string {
	return strings.Join([]string{jobKindEval, jobKindBounds, jobKindInject, jobKindMonteCarlo, jobKindWorstCase, jobKindExperiments}, ", ")
}

// jobSubmitRequest is the POST /v1/jobs body: a kind plus that kind's
// synchronous request document.
type jobSubmitRequest struct {
	Kind    string          `json:"kind"`
	Request json.RawMessage `json:"request,omitempty"`
}

// experimentsJobRequest selects registered experiments by ID and/or
// tag, exactly like the paperrepro CLI flags.
type experimentsJobRequest struct {
	IDs  []string `json:"ids,omitempty"`
	Tags []string `json:"tags,omitempty"`
}

// netMemoKey identifies the network for memoization: the content
// address for stored networks, the hash of the raw document for inline
// ones. Either way, identical networks hash identically.
func netMemoKey(ref netRef, cn *cachedNet) string {
	if cn.id != "" {
		return cn.id
	}
	return store.ID(ref.Network)
}

// validateJob strictly decodes and resolves a job request at submit
// time — garbage fails the submission with a client error instead of
// failing the job later — and derives the memo key from the resolved
// canonical form (defaults applied), so equivalent requests collide.
func (s *Server) validateJob(kind string, raw json.RawMessage) (string, error) {
	switch kind {
	case jobKindEval:
		var req evalRequest
		if err := strictUnmarshal(raw, &req); err != nil {
			return "", badRequest(err.Error())
		}
		cn, err := s.network(req.netRef)
		if err != nil {
			return "", err
		}
		if len(req.Inputs) == 0 {
			return "", badRequest("inputs is empty")
		}
		return memoKey(jobKindEval, struct {
			Net    string      `json:"net"`
			Inputs [][]float64 `json:"inputs"`
		}{netMemoKey(req.netRef, cn), req.Inputs})
	case jobKindBounds:
		var req boundsRequest
		if err := strictUnmarshal(raw, &req); err != nil {
			return "", badRequest(err.Error())
		}
		cn, err := s.network(req.netRef)
		if err != nil {
			return "", err
		}
		faults, err := req.Faults.resolve(cn.shape.Widths)
		if err != nil {
			return "", err
		}
		c := 1.0
		if req.C != nil {
			c = *req.C
		}
		return memoKey(jobKindBounds, struct {
			Net      string  `json:"net"`
			Faults   []int   `json:"faults"`
			C        float64 `json:"c"`
			Eps      float64 `json:"eps"`
			EpsPrime float64 `json:"eps_prime"`
		}{netMemoKey(req.netRef, cn), faults, c, req.Eps, req.EpsPrime})
	case jobKindInject:
		var req injectRequest
		if err := strictUnmarshal(raw, &req); err != nil {
			return "", badRequest(err.Error())
		}
		modelName := req.Model
		if modelName == "" {
			modelName = "crash"
		}
		if _, ok := fault.Lookup(modelName); !ok {
			return "", badRequest(fmt.Sprintf("unknown fault model %q; registered models: %s",
				modelName, strings.Join(fault.ModelNames(), ", ")))
		}
		cn, err := s.network(req.netRef)
		if err != nil {
			return "", err
		}
		faults, err := req.Faults.resolve(cn.shape.Widths)
		if err != nil {
			return "", err
		}
		seed := req.Seed
		if seed == 0 {
			seed = 7
		}
		return memoKey(jobKindInject, struct {
			Net         string  `json:"net"`
			Faults      []int   `json:"faults"`
			Model       string  `json:"model"`
			Adversarial bool    `json:"adversarial"`
			Seed        uint64  `json:"seed"`
			C           float64 `json:"c"`
			Value       float64 `json:"value"`
			Prob        float64 `json:"prob"`
			Bits        int     `json:"bits"`
			Bit         int     `json:"bit"`
		}{netMemoKey(req.netRef, cn), faults, modelName,
			req.Adversarial == nil || *req.Adversarial, seed,
			orDefault(req.C, 1), orDefault(req.Value, 0.8), orDefault(req.Prob, 0.5),
			orDefaultInt(req.Bits, 8), orDefaultInt(req.Bit, 7)})
	case jobKindMonteCarlo:
		var req monteCarloRequest
		if err := strictUnmarshal(raw, &req); err != nil {
			return "", badRequest(err.Error())
		}
		mc, err := s.resolveMonteCarlo(req)
		if err != nil {
			return "", err
		}
		return memoKey(jobKindMonteCarlo, struct {
			Net    string      `json:"net"`
			Faults []int       `json:"faults"`
			C      float64     `json:"c"`
			Trials int         `json:"trials"`
			Seed   uint64      `json:"seed"`
			Inputs [][]float64 `json:"inputs,omitempty"`
		}{netMemoKey(req.netRef, mc.cn), mc.faults, mc.c, mc.trials, mc.seed, req.Inputs})
	case jobKindWorstCase:
		var req worstCaseRequest
		if err := strictUnmarshal(raw, &req); err != nil {
			return "", badRequest(err.Error())
		}
		wc, err := s.resolveWorstCase(req)
		if err != nil {
			return "", err
		}
		// max_configs is an admission guard, not a result input: two
		// requests differing only there produce the same document, so it
		// stays out of the memo key.
		return memoKey(jobKindWorstCase, struct {
			Net    string      `json:"net"`
			Faults []int       `json:"faults"`
			Model  string      `json:"model"`
			C      float64     `json:"c"`
			Value  float64     `json:"value"`
			Bits   int         `json:"bits"`
			Bit    int         `json:"bit"`
			Inputs [][]float64 `json:"inputs,omitempty"`
		}{netMemoKey(req.netRef, wc.cn), wc.faults, wc.model.Name,
			wc.params.C, wc.params.Value, wc.params.Bits, wc.params.Bit, req.Inputs})
	case jobKindExperiments:
		var req experimentsJobRequest
		if err := strictUnmarshal(raw, &req); err != nil {
			return "", badRequest(err.Error())
		}
		exps, err := experiments.Select(experiments.Options{IDs: req.IDs, Tags: req.Tags})
		if err != nil {
			return "", badRequest(err.Error())
		}
		if len(exps) == 0 {
			return "", badRequest("selection matches no experiments")
		}
		ids := make([]string, len(exps))
		for i, e := range exps {
			ids[i] = e.ID
		}
		return memoKey(jobKindExperiments, struct {
			IDs []string `json:"ids"`
		}{ids})
	default:
		return "", badRequest(fmt.Sprintf("unknown job kind %q; kinds: %s", kind, jobKinds()))
	}
}

// memoKey hashes {kind, canonical resolved request} — the schema
// DESIGN.md §7 documents.
func memoKey(kind string, v any) (string, error) {
	return store.MemoKey(struct {
		Kind    string `json:"kind"`
		Request any    `json:"request"`
	}{kind, v})
}

// execJob is the jobs.Exec adapter: it dispatches one attempt of any
// job kind onto the corresponding compute path.
func (s *Server) execJob(t *jobs.Task) (any, error) {
	switch t.Kind() {
	case jobKindEval:
		var req evalRequest
		if err := strictUnmarshal(t.Request(), &req); err != nil {
			return nil, err
		}
		return s.computeEval(req)
	case jobKindBounds:
		var req boundsRequest
		if err := strictUnmarshal(t.Request(), &req); err != nil {
			return nil, err
		}
		return s.computeBounds(req)
	case jobKindInject:
		var req injectRequest
		if err := strictUnmarshal(t.Request(), &req); err != nil {
			return nil, err
		}
		return s.computeInject(req)
	case jobKindMonteCarlo:
		return s.execMonteCarlo(t)
	case jobKindWorstCase:
		return s.execWorstCase(t)
	case jobKindExperiments:
		return s.execExperiments(t)
	default:
		return nil, fmt.Errorf("unknown job kind %q", t.Kind())
	}
}

// mcCheckpoint is the durable partial state of a Monte Carlo campaign:
// the worst-case errors of the completed trial prefix. Trial t depends
// only on (seed, t), so the prefix plus recomputation of the remainder
// reproduces the uninterrupted profile bit-identically.
type mcCheckpoint struct {
	Completed int       `json:"completed"`
	Errs      []float64 `json:"errs"`
}

// execMonteCarlo runs a Monte Carlo campaign in checkpointed chunks:
// every chunk boundary persists the completed prefix, so a killed
// worker or process resumes there instead of restarting the campaign.
func (s *Server) execMonteCarlo(t *jobs.Task) (any, error) {
	var req monteCarloRequest
	if err := strictUnmarshal(t.Request(), &req); err != nil {
		return nil, err
	}
	mc, err := s.resolveMonteCarlo(req)
	if err != nil {
		return nil, err
	}
	errs := make([]float64, mc.trials)
	done := 0
	var ck mcCheckpoint
	if ok, err := t.RestoreCheckpoint(&ck); err != nil {
		return nil, err
	} else if ok && ck.Completed > 0 && ck.Completed <= mc.trials && len(ck.Errs) >= ck.Completed {
		copy(errs, ck.Errs[:ck.Completed])
		done = ck.Completed
	}
	t.Progress(int64(done), int64(mc.trials))
	for done < mc.trials {
		end := done + s.mcChunk
		if end > mc.trials {
			end = mc.trials
		}
		if err := s.mcRange(t.Ctx(), mc.cn.model, mc.faults, mc.c, mc.traces, mc.seed, done, errs[done:end]); err != nil {
			return nil, err
		}
		done = end
		if done < mc.trials {
			if err := t.Checkpoint(mcCheckpoint{Completed: done, Errs: errs[:done]}, int64(done), int64(mc.trials)); err != nil {
				return nil, err
			}
		} else {
			t.Progress(int64(done), int64(mc.trials))
		}
	}
	return mcResponse(mc, fault.ProfileOf(errs)), nil
}

// wcCheckpoint is the durable partial state of an exhaustive worst-case
// sweep: the subtree frontier. Next is the first tree-order
// configuration index not yet covered; State carries the incumbent
// (error, first-attaining flat index, plan) and the visited/pruned
// tallies of the completed prefix. Resuming seeds the pruning floor
// from State.WorstError — a tighter floor prunes MORE than the fresh
// run but never differently in outcome (pruning is sound), so the
// resumed sweep reproduces the uninterrupted result document
// bit-identically.
type wcCheckpoint struct {
	Next  int64             `json:"next"`
	State fault.SearchState `json:"state"`
}

// execWorstCase runs an exhaustive sweep in checkpointed frontier
// chunks. Chunks are large multiples of the Monte Carlo interval: a
// configuration costs one damaged partial sweep, far less than a
// trial's full plan compile.
func (s *Server) execWorstCase(t *jobs.Task) (any, error) {
	var req worstCaseRequest
	if err := strictUnmarshal(t.Request(), &req); err != nil {
		return nil, err
	}
	wc, err := s.resolveWorstCase(req)
	if err != nil {
		return nil, err
	}
	eng, err := s.worstCaseEngine(wc)
	if err != nil {
		return nil, err
	}
	total := eng.Total()
	st := fault.NewSearchState()
	done := int64(0)
	var ck wcCheckpoint
	if ok, err := t.RestoreCheckpoint(&ck); err != nil {
		return nil, err
	} else if ok && ck.Next > 0 && ck.Next <= total &&
		ck.State.Visited+ck.State.Pruned == ck.Next && ck.State.WorstFlat < ck.Next {
		st = ck.State
		done = ck.Next
	}
	t.Progress(done, total)
	chunk := int64(s.mcChunk) * 16
	for done < total {
		end := done + chunk
		if end > total {
			end = total
		}
		if err := eng.Search(t.Ctx(), done, end, &st); err != nil {
			return nil, err
		}
		done = end
		if done < total {
			if err := t.Checkpoint(wcCheckpoint{Next: done, State: st}, done, total); err != nil {
				return nil, err
			}
		} else {
			t.Progress(done, total)
		}
	}
	// The result document excludes the visited/pruned counters: under
	// parallel sharding they depend on how fast the pruning floor
	// propagates between workers, and the content-addressed ResultID of
	// a resumed job must match an uninterrupted run's exactly.
	return s.worstCaseResponse(wc, eng.Result(st))
}

// expCheckpoint is the durable partial state of an experiments job:
// the records of every experiment completed so far.
type expCheckpoint struct {
	Records []experiments.Record `json:"records"`
}

// execExperiments regenerates the selected experiments one at a time,
// checkpointing after each — a restarted campaign skips everything
// already recorded.
func (s *Server) execExperiments(t *jobs.Task) (any, error) {
	var req experimentsJobRequest
	if err := strictUnmarshal(t.Request(), &req); err != nil {
		return nil, err
	}
	exps, err := experiments.Select(experiments.Options{IDs: req.IDs, Tags: req.Tags})
	if err != nil {
		return nil, err
	}
	if len(exps) == 0 {
		return nil, fmt.Errorf("selection matches no experiments")
	}
	var ck expCheckpoint
	if _, err := t.RestoreCheckpoint(&ck); err != nil {
		return nil, err
	}
	completed := map[string]bool{}
	for _, r := range ck.Records {
		completed[r.ID] = true
	}
	records := ck.Records
	t.Progress(int64(len(records)), int64(len(exps)))
	for _, e := range exps {
		if completed[e.ID] {
			continue
		}
		if err := t.Ctx().Err(); err != nil {
			return nil, err
		}
		out := experiments.Run([]experiments.Experiment{e}, s.pool.Size())
		records = append(records, experiments.Records(out)...)
		if err := t.Checkpoint(expCheckpoint{Records: records}, int64(len(records)), int64(len(exps))); err != nil {
			return nil, err
		}
	}
	return map[string]any{"count": len(records), "experiments": records}, nil
}

// ---- POST /v1/jobs ----

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if s.jobs == nil {
		writeError(w, http.StatusServiceUnavailable, "no artifact store configured (async jobs require one)")
		return
	}
	var req jobSubmitRequest
	if err := decode(r, &req); err != nil {
		fail(w, err)
		return
	}
	if req.Kind == "" {
		fail(w, badRequest(fmt.Sprintf("missing kind; kinds: %s", jobKinds())))
		return
	}
	raw := req.Request
	if len(raw) == 0 {
		raw = json.RawMessage("{}")
	}
	key, err := s.validateJob(req.Kind, raw)
	if err != nil {
		fail(w, err)
		return
	}
	rec, err := s.jobs.Submit(req.Kind, raw, key)
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		// The backpressure contract: the client backs off and retries.
		secs := int(math.Ceil(s.jobs.RetryAfter().Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusTooManyRequests, "job queue full; retry later")
	case errors.Is(err, jobs.ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "server draining; not accepting jobs")
	case err != nil:
		fail(w, err)
	case rec.State.Terminal():
		// Memoized: the completed record, no recomputation, no queue slot.
		writeJSON(w, http.StatusOK, rec)
	default:
		writeJSON(w, http.StatusAccepted, rec)
	}
}

// ---- GET /v1/jobs ----

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	if s.jobs == nil {
		writeError(w, http.StatusServiceUnavailable, "no artifact store configured (async jobs require one)")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.jobs.List()})
}

// watchWindow bounds one streaming watch response so it completes well
// inside the server's write timeout; clients re-watch to keep
// following.
const watchWindow = 50 * time.Second

// ---- GET /v1/jobs/{id} ----

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if s.jobs == nil {
		writeError(w, http.StatusServiceUnavailable, "no artifact store configured (async jobs require one)")
		return
	}
	id := r.PathValue("id")
	if r.URL.Query().Get("watch") == "" {
		rec, err := s.jobs.Get(id)
		if err != nil {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, rec)
		return
	}
	// watch=1 streams NDJSON records — the current one immediately, one
	// per update after — until the job terminates or the window closes.
	ch, stop, err := s.jobs.Watch(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	defer stop()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	fl, _ := w.(http.Flusher)
	window := time.NewTimer(watchWindow)
	defer window.Stop()
	for {
		select {
		case rec, ok := <-ch:
			if !ok {
				return
			}
			if enc.Encode(rec) != nil {
				return // client gone
			}
			if fl != nil {
				fl.Flush()
			}
		case <-window.C:
			return
		case <-r.Context().Done():
			return
		}
	}
}

// ---- GET /v1/jobs/{id}/result ----

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	if s.jobs == nil {
		writeError(w, http.StatusServiceUnavailable, "no artifact store configured (async jobs require one)")
		return
	}
	data, rec, err := s.jobs.Result(r.PathValue("id"))
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		writeError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, jobs.ErrNotDone):
		writeJSON(w, http.StatusConflict, map[string]any{
			"error": "job has no result yet", "state": rec.State,
		})
	case err != nil:
		fail(w, err)
	default:
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Result-Id", rec.ResultID)
		w.WriteHeader(http.StatusOK)
		w.Write(data) //nolint:errcheck // the client is gone if this fails
	}
}

// ---- POST /v1/jobs/{id}/cancel ----

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	if s.jobs == nil {
		writeError(w, http.StatusServiceUnavailable, "no artifact store configured (async jobs require one)")
		return
	}
	rec, ok, err := s.jobs.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"cancelled": ok, "job": rec})
}
