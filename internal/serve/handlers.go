package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/conv"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/quant"
	"repro/internal/rng"
	"repro/internal/store"
)

// httpError carries a status code with a client-facing message.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(msg string) *httpError { return &httpError{status: http.StatusBadRequest, msg: msg} }

// writeJSON writes v as the JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v) //nolint:errcheck // the client is gone if this fails
}

// writeError writes the service's uniform error envelope.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// fail maps an error to its HTTP response.
func fail(w http.ResponseWriter, err error) {
	if he, ok := err.(*httpError); ok {
		writeError(w, he.status, he.msg)
		return
	}
	writeError(w, http.StatusInternalServerError, err.Error())
}

// decode parses the request body strictly: unknown fields, trailing
// data and type mismatches are client errors; a body exceeding the
// route's limit is 413.
func decode(r *http.Request, v any) error {
	data, err := io.ReadAll(r.Body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return &httpError{status: http.StatusRequestEntityTooLarge,
				msg: fmt.Sprintf("request body exceeds %d bytes", mbe.Limit)}
		}
		return badRequest(fmt.Sprintf("reading body: %v", err))
	}
	if err := strictUnmarshal(data, v); err != nil {
		return badRequest(err.Error())
	}
	return nil
}

// strictUnmarshal rejects unknown fields and trailing garbage.
func strictUnmarshal(data []byte, v any) error {
	return nn.StrictUnmarshal(data, v)
}

// netRef selects the network a query runs against: a store ID (cached
// across requests) or an inline network document.
type netRef struct {
	NetworkID string          `json:"network_id,omitempty"`
	Network   json.RawMessage `json:"network,omitempty"`
}

// faultSpec accepts a per-layer fault distribution as either a single
// integer (broadcast uniformly, the CLI convention) or an explicit
// array.
type faultSpec struct {
	perLayer []int
	uniform  int
	isUnif   bool
	set      bool
}

func (f *faultSpec) UnmarshalJSON(b []byte) error {
	f.set = true
	var u int
	if err := json.Unmarshal(b, &u); err == nil {
		f.uniform, f.isUnif = u, true
		return nil
	}
	var arr []int
	if err := json.Unmarshal(b, &arr); err == nil {
		f.perLayer = arr
		return nil
	}
	return fmt.Errorf("faults must be an integer or an array of per-layer integers")
}

// resolve validates the spec against the layer widths. Defaults to one
// fault per layer when the field was omitted.
func (f *faultSpec) resolve(widths []int) ([]int, error) {
	out := make([]int, len(widths))
	switch {
	case !f.set:
		for i := range out {
			out[i] = 1
		}
	case f.isUnif:
		for i := range out {
			out[i] = f.uniform
		}
	default:
		if len(f.perLayer) != len(widths) {
			return nil, badRequest(fmt.Sprintf("faults has %d entries for %d layers", len(f.perLayer), len(widths)))
		}
		copy(out, f.perLayer)
	}
	for l, v := range out {
		if v < 0 {
			return nil, badRequest(fmt.Sprintf("faults[%d] = %d is negative", l, v))
		}
		if v > widths[l] {
			return nil, badRequest(fmt.Sprintf("faults[%d] = %d exceeds layer width %d", l, v, widths[l]))
		}
	}
	return out, nil
}

// ---- GET /healthz ----

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	stored := -1
	if s.st != nil {
		stored = len(s.st.Models())
	}
	resp := map[string]any{
		"status":          "ok",
		"uptime_seconds":  time.Since(s.start).Seconds(),
		"cached_networks": s.cachedNetworks(),
		"stored_networks": stored,
		"workers":         s.pool.Size(),
	}
	if s.jobs != nil {
		resp["jobs"] = s.jobs.Stats()
	}
	writeJSON(w, http.StatusOK, resp)
}

// ---- GET /v1/networks ----

type networkInfo struct {
	ID      string            `json:"id"`
	ShortID string            `json:"short_id"`
	Kind    string            `json:"kind"`
	Arch    string            `json:"arch"`
	Created time.Time         `json:"created"`
	Bytes   int               `json:"bytes"`
	Meta    map[string]string `json:"meta,omitempty"`
}

func (s *Server) handleListNetworks(w http.ResponseWriter, r *http.Request) {
	if s.st == nil {
		writeError(w, http.StatusServiceUnavailable, "no artifact store configured")
		return
	}
	entries := s.st.Models()
	infos := make([]networkInfo, 0, len(entries))
	for _, e := range entries {
		arch := e.Meta["arch"]
		if arch == "" {
			arch = "dense"
		}
		infos = append(infos, networkInfo{
			ID: e.ID, ShortID: store.ShortID(e.ID), Kind: e.Kind, Arch: arch,
			Created: e.Created, Bytes: e.Bytes, Meta: e.Meta,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"networks": infos})
}

// ---- POST /v1/networks ----

func (s *Server) handleUploadNetwork(w http.ResponseWriter, r *http.Request) {
	if s.st == nil {
		writeError(w, http.StatusServiceUnavailable, "no artifact store configured")
		return
	}
	data, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("reading body: %v", err))
		return
	}
	// Any model document is accepted: untagged dense networks and
	// "arch"-tagged conv1d/conv2d/graph nets, stored under their own
	// kinds.
	m, err := conv.ParseModel(data)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("network document: %v", err))
		return
	}
	entry, err := s.st.PutModel(m, map[string]string{"source": "upload"})
	if err != nil {
		fail(w, err)
		return
	}
	shape := core.ShapeOfModel(m)
	writeJSON(w, http.StatusCreated, map[string]any{
		"id":       entry.ID,
		"short_id": store.ShortID(entry.ID),
		"arch":     conv.ArchOf(m),
		"layers":   m.NumLayers(),
		"widths":   shape.Widths,
	})
}

// ---- POST /v1/eval ----

type evalRequest struct {
	netRef
	Inputs [][]float64 `json:"inputs"`
}

func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	var req evalRequest
	if err := decode(r, &req); err != nil {
		fail(w, err)
		return
	}
	resp, err := s.computeEval(req)
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// computeEval is the transport-free eval path, shared by the
// synchronous handler and the async job tier.
func (s *Server) computeEval(req evalRequest) (map[string]any, error) {
	cn, err := s.network(req.netRef)
	if err != nil {
		return nil, err
	}
	if len(req.Inputs) == 0 {
		return nil, badRequest("inputs is empty")
	}
	for i, x := range req.Inputs {
		if len(x) != cn.model.Width(0) {
			return nil, badRequest(fmt.Sprintf("inputs[%d] has dimension %d, want %d", i, len(x), cn.model.Width(0)))
		}
	}
	outputs := nn.ForwardBatchModel(cn.model, req.Inputs)
	return map[string]any{
		"network_id": cn.id,
		"count":      len(outputs),
		"outputs":    outputs,
	}, nil
}

// ---- POST /v1/bounds ----

type boundsRequest struct {
	netRef
	Faults   faultSpec `json:"faults,omitempty"`
	C        *float64  `json:"c,omitempty"`
	Eps      float64   `json:"eps,omitempty"`
	EpsPrime float64   `json:"eps_prime,omitempty"`
}

type boundsResponse struct {
	NetworkID  string    `json:"network_id,omitempty"`
	Arch       string    `json:"arch"`
	Widths     []int     `json:"widths"`
	MaxWeights []float64 `json:"max_weights"`
	K          float64   `json:"k"`
	Faults     []int     `json:"faults"`
	C          float64   `json:"c"`
	Fep        float64   `json:"fep"`
	CrashFep   float64   `json:"crash_fep"`
	SynapseFep float64   `json:"synapse_fep"`
	// Tolerance certificates, present when eps > 0.
	Tolerated       *bool `json:"tolerated,omitempty"`
	CrashTolerated  *bool `json:"crash_tolerated,omitempty"`
	RequiredSignals []int `json:"required_signals,omitempty"`
}

func (s *Server) handleBounds(w http.ResponseWriter, r *http.Request) {
	var req boundsRequest
	if err := decode(r, &req); err != nil {
		fail(w, err)
		return
	}
	resp, err := s.computeBounds(req)
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// computeBounds is the transport-free bounds path, shared by the
// synchronous handler and the async job tier.
func (s *Server) computeBounds(req boundsRequest) (boundsResponse, error) {
	cn, err := s.network(req.netRef)
	if err != nil {
		return boundsResponse{}, err
	}
	faults, err := req.Faults.resolve(cn.shape.Widths)
	if err != nil {
		return boundsResponse{}, err
	}
	c := 1.0
	if req.C != nil {
		c = *req.C
	}
	if c < 0 {
		return boundsResponse{}, badRequest("c is negative")
	}
	// The certificate computations run on pooled per-network scratch:
	// zero allocations in the steady state (see BenchmarkBoundsCompute).
	b := cn.getBounds()
	resp := boundsResponse{
		NetworkID:  cn.id,
		Arch:       conv.ArchOf(cn.model),
		Widths:     cn.shape.Widths,
		MaxWeights: cn.shape.MaxW,
		K:          cn.shape.K,
		Faults:     faults,
		C:          c,
		Fep:        b.cert.Fep(faults, c),
		CrashFep:   b.cert.CrashFep(faults),
	}
	copy(b.synFaults, faults)
	b.synFaults[len(b.synFaults)-1] = 0
	if cn.node != nil {
		// A sparse level can have fewer in-edges than nodes; cap the
		// derived synapse distribution at the edges that exist (beyond
		// that every edge into the level is already faulty).
		for l := range b.synFaults {
			if n := cn.node.SynapseCount(l + 1); b.synFaults[l] > n {
				b.synFaults[l] = n
			}
		}
	}
	resp.SynapseFep = b.cert.SynapseFep(b.synFaults, c)
	if req.Eps > 0 {
		tol := b.cert.Tolerates(faults, c, req.Eps, req.EpsPrime)
		crashTol := b.cert.CrashTolerates(faults, req.Eps, req.EpsPrime)
		resp.Tolerated = &tol
		resp.CrashTolerated = &crashTol
		resp.RequiredSignals = append([]int(nil), b.cert.RequiredSignals(faults)...)
	}
	cn.putBounds(b)
	return resp, nil
}

// ---- POST /v1/inject ----

type injectRequest struct {
	netRef
	Faults      faultSpec `json:"faults,omitempty"`
	Model       string    `json:"model,omitempty"`
	Adversarial *bool     `json:"adversarial,omitempty"`
	Seed        uint64    `json:"seed,omitempty"`
	C           *float64  `json:"c,omitempty"`
	Value       *float64  `json:"value,omitempty"`
	Prob        *float64  `json:"prob,omitempty"`
	Bits        *int      `json:"bits,omitempty"`
	Bit         *int      `json:"bit,omitempty"`
}

func (s *Server) handleInject(w http.ResponseWriter, r *http.Request) {
	var req injectRequest
	if err := decode(r, &req); err != nil {
		fail(w, err)
		return
	}
	resp, err := s.computeInject(req)
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// computeInject is the transport-free inject path, shared by the
// synchronous handler and the async job tier.
func (s *Server) computeInject(req injectRequest) (map[string]any, error) {
	modelName := req.Model
	if modelName == "" {
		modelName = "crash"
	}
	model, ok := fault.Lookup(modelName)
	if !ok {
		return nil, badRequest(fmt.Sprintf("unknown fault model %q; registered models: %s",
			modelName, strings.Join(fault.ModelNames(), ", ")))
	}
	cn, err := s.network(req.netRef)
	if err != nil {
		return nil, err
	}
	faults, err := req.Faults.resolve(cn.shape.Widths)
	if err != nil {
		return nil, err
	}
	// Checked here, not left to the model constructor: models that
	// ignore C (crash, stuck, ...) would otherwise carry the negative
	// cap into the Fep computation, which panics on it.
	if req.C != nil && *req.C < 0 {
		return nil, badRequest("c is negative")
	}
	seed := req.Seed
	if seed == 0 {
		seed = 7
	}
	params := fault.Params{
		C:     orDefault(req.C, 1),
		Sem:   core.DeviationCap,
		Value: orDefault(req.Value, 0.8),
		Prob:  orDefault(req.Prob, 0.5),
		Bits:  orDefaultInt(req.Bits, 8),
		Bit:   orDefaultInt(req.Bit, 7),
		Net:   cn.model,
		R:     rng.New(seed ^ 0xfa0175),
	}
	inj, err := model.New(params)
	if err != nil {
		return nil, badRequest(err.Error())
	}
	adversarial := req.Adversarial == nil || *req.Adversarial
	var cp *fault.CompiledPlan
	if adversarial {
		cp = cn.adversarialPlan(faults)
	} else {
		cp = fault.Compile(cn.model, fault.RandomNeuronPlan(rng.New(seed), cn.model, faults))
	}
	inputs, traces := cn.standardInputs()
	var measured float64
	if model.Deterministic {
		measured = parallel.MaxFloat64(len(traces), func(i int) float64 {
			return cp.ErrorOnTrace(inj, traces[i])
		})
	} else {
		for _, tr := range traces {
			if e := cp.ErrorOnTrace(inj, tr); e > measured {
				measured = e
			}
		}
	}
	dev := model.NeuronDeviation(params, cn.shape)
	b := cn.getBounds()
	bound := b.cert.Fep(faults, dev)
	cn.putBounds(b)
	resp := map[string]any{
		"network_id":    cn.id,
		"model":         model.Name,
		"deterministic": model.Deterministic,
		"adversarial":   adversarial,
		"faults":        faults,
		"deviation_cap": dev,
		"inputs":        len(inputs),
		"measured":      measured,
		"bound":         bound,
	}
	if bound > 0 {
		resp["utilization"] = measured / bound
	}
	if measured > bound*(1+1e-9) {
		// A violated bound is a bug in the engine, never a valid answer.
		return nil, &httpError{status: http.StatusInternalServerError,
			msg: fmt.Sprintf("bound violated: measured %g > bound %g", measured, bound)}
	}
	return resp, nil
}

func orDefault(p *float64, def float64) float64 {
	if p != nil {
		return *p
	}
	return def
}

func orDefaultInt(p *int, def int) int {
	if p != nil {
		return *p
	}
	return def
}

// ---- POST /v1/quantize ----

type quantizeRequest struct {
	NetworkID    string `json:"network_id"`
	Bits         int    `json:"bits,omitempty"`
	ActBits      int    `json:"act_bits,omitempty"`
	PerLayerBits []int  `json:"per_layer_bits,omitempty"`
}

// handleQuantize builds a fixed-point implementation of a stored dense
// network and persists the {network_id, options} recipe as a content-
// addressed "quantized" artifact — quantisation is deterministic, so
// the recipe reconstructs the quantised weights and the Theorem 5
// certificate exactly without duplicating the parameter payload.
func (s *Server) handleQuantize(w http.ResponseWriter, r *http.Request) {
	if s.st == nil {
		writeError(w, http.StatusServiceUnavailable, "no artifact store configured")
		return
	}
	var req quantizeRequest
	if err := decode(r, &req); err != nil {
		fail(w, err)
		return
	}
	if req.NetworkID == "" {
		fail(w, badRequest("missing network_id (quantize persists a recipe, so the network must be stored)"))
		return
	}
	entry, err := s.st.Resolve(req.NetworkID)
	if err != nil {
		fail(w, &httpError{status: 404, msg: err.Error()})
		return
	}
	if entry.Kind != store.KindNetwork {
		fail(w, &httpError{status: 422, msg: fmt.Sprintf(
			"artifact %s is a %q: quantisation certificates (Theorem 5) are defined for dense networks",
			store.ShortID(entry.ID), entry.Kind)})
		return
	}
	opts := quant.Options{WeightBits: req.Bits, ActBits: req.ActBits, PerLayerBits: req.PerLayerBits}
	if opts.WeightBits == 0 && opts.PerLayerBits == nil {
		opts.WeightBits = 8
	}
	// One load and one quantisation serve both the validation and the
	// response; the persisted recipe reconstructs the same Quantized
	// deterministically. Option errors are the client's (400), store
	// write failures are ours (500).
	net, _, err := s.st.Network(entry.ID)
	if err != nil {
		fail(w, &httpError{status: 404, msg: err.Error()})
		return
	}
	q, err := quant.Quantize(net, opts)
	if err != nil {
		fail(w, badRequest(err.Error()))
		return
	}
	qe, err := s.st.Put(store.KindQuantized, store.QuantRecipe{NetworkID: entry.ID, Options: opts},
		map[string]string{"source": "quantize"})
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{
		"id":                  qe.ID,
		"short_id":            store.ShortID(qe.ID),
		"network_id":          entry.ID,
		"options":             q.Opts,
		"bound":               q.Bound(),
		"memory_bits":         q.MemoryBits(),
		"full_precision_bits": quant.FullPrecisionBits(q.Original),
	})
}

// ---- POST /v1/montecarlo ----

type monteCarloRequest struct {
	netRef
	Faults faultSpec   `json:"faults,omitempty"`
	C      float64     `json:"c,omitempty"`
	Trials int         `json:"trials,omitempty"`
	Seed   uint64      `json:"seed,omitempty"`
	Inputs [][]float64 `json:"inputs,omitempty"`
}

// maxTrials bounds one Monte Carlo request; larger campaigns should be
// split (and their seeds varied) by the client.
const maxTrials = 200000

// statusClientClosedRequest is nginx's convention for "the client went
// away before the response"; no standard library constant exists.
const statusClientClosedRequest = 499

// mcResolved is a validated Monte Carlo campaign: defaults applied,
// faults resolved against the layer widths, clean traces materialised.
// Its scalar fields (plus the network identity and inputs) are exactly
// what determines the result — the memo key hashes them.
type mcResolved struct {
	cn     *cachedNet
	faults []int
	c      float64
	trials int
	seed   uint64
	traces []*nn.Trace
}

// resolveMonteCarlo validates a campaign request, applying the same
// defaults for the synchronous path, the job tier and the memo key.
func (s *Server) resolveMonteCarlo(req monteCarloRequest) (mcResolved, error) {
	var mc mcResolved
	cn, err := s.network(req.netRef)
	if err != nil {
		return mc, err
	}
	faults, err := req.Faults.resolve(cn.shape.Widths)
	if err != nil {
		return mc, err
	}
	if req.C < 0 {
		return mc, badRequest("c is negative")
	}
	trials := req.Trials
	if trials == 0 {
		trials = 500
	}
	if trials < 1 || trials > maxTrials {
		return mc, badRequest(fmt.Sprintf("trials %d outside [1, %d]", trials, maxTrials))
	}
	seed := req.Seed
	if seed == 0 {
		seed = 9
	}
	var traces []*nn.Trace
	if len(req.Inputs) > 0 {
		for i, x := range req.Inputs {
			if len(x) != cn.model.Width(0) {
				return mc, badRequest(fmt.Sprintf("inputs[%d] has dimension %d, want %d", i, len(x), cn.model.Width(0)))
			}
		}
		traces = fault.CleanTraces(cn.model, req.Inputs)
	} else {
		_, traces = cn.standardInputs()
	}
	return mcResolved{cn: cn, faults: faults, c: req.C, trials: trials, seed: seed, traces: traces}, nil
}

// mcResponse compares a completed profile against the matching
// closed-form bound and assembles the response document.
func mcResponse(mc mcResolved, prof fault.Profile) map[string]any {
	b := mc.cn.getBounds()
	var bound float64
	if mc.c == 0 {
		bound = b.cert.CrashFep(mc.faults)
	} else {
		bound = b.cert.Fep(mc.faults, mc.c)
	}
	mc.cn.putBounds(b)
	resp := map[string]any{
		"network_id": mc.cn.id,
		"faults":     mc.faults,
		"c":          mc.c,
		"trials":     prof.Trials,
		"mean":       prof.Stats.Mean,
		"median":     prof.Stats.Median,
		"q90":        prof.Q90,
		"q99":        prof.Q99,
		"max":        prof.Stats.Max,
		"bound":      bound,
	}
	if bound > 0 {
		resp["max_vs_bound"] = prof.Stats.Max / bound
	}
	return resp
}

func (s *Server) handleMonteCarlo(w http.ResponseWriter, r *http.Request) {
	var req monteCarloRequest
	if err := decode(r, &req); err != nil {
		fail(w, err)
		return
	}
	mc, err := s.resolveMonteCarlo(req)
	if err != nil {
		fail(w, err)
		return
	}
	prof, err := s.shardedMonteCarlo(r.Context(), mc.cn.model, mc.faults, mc.c, mc.traces, mc.trials, mc.seed)
	if err != nil {
		// The client is gone or the server is draining: there is nobody
		// to answer, and the partial profile would be wrong anyway.
		writeError(w, statusClientClosedRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, mcResponse(mc, prof))
}
