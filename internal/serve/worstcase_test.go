package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"repro/internal/activation"
	"repro/internal/fault"
	"repro/internal/jobs"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/store"
)

// TestWorstCaseSync: the synchronous endpoint reproduces the tree
// engine's result exactly and stays under the closed-form certificate.
func TestWorstCaseSync(t *testing.T) {
	s, net, id := newTestServer(t)
	inputs := metricsPoints(20)
	body := map[string]any{"network_id": id, "faults": []int{1, 1}, "inputs": inputs}
	var resp map[string]any
	if code := do(t, s, "POST", "/v1/worstcase", body, &resp); code != http.StatusOK {
		t.Fatalf("status %d: %v", code, resp)
	}
	want, err := fault.ExhaustiveWorstCrash(net, []int{1, 1}, inputs, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp["worst_error"].(float64); got != want.WorstError {
		t.Fatalf("worst_error = %v, want %v", got, want.WorstError)
	}
	if got := resp["bound"].(float64); resp["worst_error"].(float64) > got*(1+1e-9) {
		t.Fatalf("worst_error %v above bound %v", resp["worst_error"], got)
	}
	if int64(resp["configurations"].(float64)) != want.Configurations {
		t.Fatalf("configurations = %v, want %d", resp["configurations"], want.Configurations)
	}
	visited := int64(resp["visited"].(float64))
	pruned := int64(resp["pruned"].(float64))
	if visited+pruned != want.Configurations {
		t.Fatalf("visited %d + pruned %d != configurations %d", visited, pruned, want.Configurations)
	}
	plan := resp["worst_plan"].([]any)
	if len(plan) != len(want.WorstPlan.Neurons) {
		t.Fatalf("worst_plan %v, want %v", plan, want.WorstPlan.Neurons)
	}
	for i, p := range plan {
		m := p.(map[string]any)
		f := want.WorstPlan.Neurons[i]
		if int(m["layer"].(float64)) != f.Layer || int(m["index"].(float64)) != f.Index {
			t.Fatalf("worst_plan[%d] = %v, want %+v", i, m, f)
		}
	}
}

// TestWorstCaseValidation: stochastic models, oversized sweeps and
// malformed inputs fail fast with client errors.
func TestWorstCaseValidation(t *testing.T) {
	s, _, id := newTestServer(t)
	for _, tc := range []struct {
		name string
		body string
		want int
	}{
		{"stochastic model", fmt.Sprintf(`{"network_id": %q, "faults": 1, "model": "byzantine-random"}`, id), 400},
		{"unknown model", fmt.Sprintf(`{"network_id": %q, "model": "gremlins"}`, id), 400},
		{"over budget", fmt.Sprintf(`{"network_id": %q, "faults": [2, 2], "max_configs": 10}`, id), 400},
		{"negative cap", fmt.Sprintf(`{"network_id": %q, "max_configs": -1}`, id), 400},
		{"bad faults", fmt.Sprintf(`{"network_id": %q, "faults": [1, 1, 1]}`, id), 400},
		{"bad input dim", fmt.Sprintf(`{"network_id": %q, "inputs": [[1, 2, 3]]}`, id), 400},
		{"unknown network", `{"network_id": "feedfeed"}`, 404},
	} {
		var resp map[string]any
		if code := do(t, s, "POST", "/v1/worstcase", tc.body, &resp); code != tc.want {
			t.Errorf("%s: status %d, want %d: %v", tc.name, code, tc.want, resp)
		}
	}
}

// TestWorstCaseJobMatchesSync: the async result document is the sync
// response minus the visited/pruned counters (those depend on parallel
// floor propagation and would break the content address).
func TestWorstCaseJobMatchesSync(t *testing.T) {
	s, _ := jobServer(t, Config{Workers: 4, JobCheckpointTrials: 16})
	// jobServer stored testNet(1); fetch its ID from the listing.
	var list struct {
		Networks []networkInfo `json:"networks"`
	}
	if code := do(t, s, "GET", "/v1/networks", nil, &list); code != http.StatusOK || len(list.Networks) != 1 {
		t.Fatalf("network listing: %d %+v", code, list)
	}
	request := fmt.Sprintf(`{"network_id": %q, "faults": [1, 2], "model": "stuck", "value": 0.6}`, list.Networks[0].ID)

	jr, rec := submitJob(t, s, "worstcase", request)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", rec.Code, rec.Body.Bytes())
	}
	final := pollJob(t, s, jr.ID, func(r jobs.Record) bool { return r.State.Terminal() })
	if final.State != jobs.StateDone {
		t.Fatalf("job ended %s (%s)", final.State, final.Error)
	}
	res := doRec(t, s, "GET", "/v1/jobs/"+jr.ID+"/result", nil)
	if res.Code != http.StatusOK {
		t.Fatalf("result status %d: %s", res.Code, res.Body.Bytes())
	}
	var async map[string]any
	if err := json.Unmarshal(res.Body.Bytes(), &async); err != nil {
		t.Fatal(err)
	}
	var sync map[string]any
	if code := do(t, s, "POST", "/v1/worstcase", request, &sync); code != http.StatusOK {
		t.Fatalf("sync status %d: %v", code, sync)
	}
	if _, ok := async["visited"]; ok {
		t.Fatal("async result leaks the nondeterministic visited counter")
	}
	delete(sync, "visited")
	delete(sync, "pruned")
	if len(async) != len(sync) {
		t.Fatalf("async keys differ from sync:\n%v\nvs\n%v", async, sync)
	}
	for k, v := range sync {
		av, ok := async[k]
		if !ok {
			t.Fatalf("async result missing %q", k)
		}
		ab, _ := json.Marshal(av)
		sb, _ := json.Marshal(v)
		if !bytes.Equal(ab, sb) {
			t.Fatalf("async[%q] = %s, sync has %s", k, ab, sb)
		}
	}
}

// TestWorstCaseJobDrainResume is the tentpole's resumability claim: a
// sweep interrupted mid-frontier by a drain parks durably, a second
// server finishes it, and the result — content address included — is
// bit-identical to an uninterrupted run.
func TestWorstCaseJobDrainResume(t *testing.T) {
	wideNet := func() *nn.Network {
		return nn.NewRandom(rng.New(3), nn.Config{
			InputDim: 2,
			Widths:   []int{20, 20},
			Act:      activation.NewSigmoid(1),
			Bias:     true,
		}, 1.2)
	}
	dir := t.TempDir()
	stA, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	entry, err := stA.PutNetwork(wideNet(), nil)
	if err != nil {
		t.Fatal(err)
	}
	pts, _ := json.Marshal(metricsPoints(40))
	// C(20,2)^2 = 36100 configurations in frontier chunks of 64.
	request := fmt.Sprintf(`{"network_id": %q, "faults": [2, 2], "inputs": %s}`, entry.ID, pts)

	a := mustNew(t, Config{Store: stA, Workers: 2, JobWorkers: 1, JobCheckpointTrials: 4})
	jr, rec := submitJob(t, a, "worstcase", request)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", rec.Code, rec.Body.Bytes())
	}
	// Wait for a durable frontier, then drain mid-sweep.
	pollJob(t, a, jr.ID, func(r jobs.Record) bool { return r.Checkpoints >= 2 })
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := a.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	a.Close()

	var parked jobs.Record
	if ok, err := stA.JobRecord(jr.ID, &parked); err != nil || !ok {
		t.Fatalf("parked record: %v %v", ok, err)
	}
	if parked.State != jobs.StateCheckpointed {
		t.Fatalf("parked state = %s, want checkpointed", parked.State)
	}
	if parked.Completed == 0 || parked.Completed >= parked.Total {
		t.Fatalf("parked mid-sweep progress = %d/%d", parked.Completed, parked.Total)
	}

	// Server B recovers the store and finishes the sweep.
	stB, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b := mustNew(t, Config{Store: stB, Workers: 2, JobWorkers: 1, JobCheckpointTrials: 4})
	defer b.Close()
	final := pollJob(t, b, jr.ID, func(r jobs.Record) bool { return r.State.Terminal() })
	if final.State != jobs.StateDone {
		t.Fatalf("resumed job ended %s (%s)", final.State, final.Error)
	}
	resumed := doRec(t, b, "GET", "/v1/jobs/"+jr.ID+"/result", nil)
	if resumed.Code != http.StatusOK {
		t.Fatalf("resumed result status %d: %s", resumed.Code, resumed.Body.Bytes())
	}

	// Reference: the same sweep, uninterrupted, on a fresh store.
	stC, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stC.PutNetwork(wideNet(), nil); err != nil {
		t.Fatal(err)
	}
	c := mustNew(t, Config{Store: stC, Workers: 2, JobWorkers: 1, JobCheckpointTrials: 4})
	defer c.Close()
	ref, rc := submitJob(t, c, "worstcase", request)
	if rc.Code != http.StatusAccepted {
		t.Fatalf("reference submit status %d: %s", rc.Code, rc.Body.Bytes())
	}
	refFinal := pollJob(t, c, ref.ID, func(r jobs.Record) bool { return r.State.Terminal() })
	if refFinal.State != jobs.StateDone {
		t.Fatalf("reference ended %s (%s)", refFinal.State, refFinal.Error)
	}
	refRes := doRec(t, c, "GET", "/v1/jobs/"+ref.ID+"/result", nil)

	if !bytes.Equal(resumed.Body.Bytes(), refRes.Body.Bytes()) {
		t.Fatalf("resumed result differs from uninterrupted run:\n%s\nvs\n%s",
			resumed.Body.Bytes(), refRes.Body.Bytes())
	}
	// Same content address too: the artifacts are identical objects.
	if final.ResultID != refFinal.ResultID {
		t.Fatalf("result content addresses differ: %s vs %s", final.ResultID, refFinal.ResultID)
	}
}
