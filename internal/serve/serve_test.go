package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/activation"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/store"
)

func testNet(seed uint64) *nn.Network {
	return nn.NewRandom(rng.New(seed), nn.Config{
		InputDim: 2,
		Widths:   []int{10, 6},
		Act:      activation.NewSigmoid(1),
		Bias:     true,
	}, 1.2)
}

// mustNew builds a Server, failing the test on error.
func mustNew(tb testing.TB, cfg Config) *Server {
	tb.Helper()
	s, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// newTestServer returns a server over a fresh store holding one
// network, plus that network and its ID.
func newTestServer(t *testing.T) (*Server, *nn.Network, string) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	net := testNet(1)
	entry, err := st.PutNetwork(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := mustNew(t, Config{Store: st, Workers: 4})
	t.Cleanup(s.Close)
	return s, net, entry.ID
}

// do issues a request against the in-process handler and decodes the
// JSON response into out (when non-nil), returning the status code.
func do(t *testing.T, s *Server, method, path string, body any, out any) int {
	t.Helper()
	var rd *bytes.Reader
	switch b := body.(type) {
	case nil:
		rd = bytes.NewReader(nil)
	case string:
		rd = bytes.NewReader([]byte(b))
	default:
		data, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: invalid response JSON: %v\n%s", method, path, err, rec.Body.String())
		}
	}
	return rec.Code
}

func TestHealthz(t *testing.T) {
	s, _, _ := newTestServer(t)
	var resp struct {
		Status  string `json:"status"`
		Stored  int    `json:"stored_networks"`
		Workers int    `json:"workers"`
	}
	if code := do(t, s, "GET", "/healthz", nil, &resp); code != 200 {
		t.Fatalf("healthz status %d", code)
	}
	if resp.Status != "ok" || resp.Stored != 1 || resp.Workers != 4 {
		t.Fatalf("healthz = %+v", resp)
	}
}

func TestUploadAndListNetworks(t *testing.T) {
	s, _, id := newTestServer(t)
	data, err := json.Marshal(testNet(2))
	if err != nil {
		t.Fatal(err)
	}
	var up struct {
		ID     string `json:"id"`
		Widths []int  `json:"widths"`
	}
	if code := do(t, s, "POST", "/v1/networks", string(data), &up); code != 201 {
		t.Fatalf("upload status %d", code)
	}
	if up.ID == id || len(up.ID) != 64 || up.Widths[0] != 10 {
		t.Fatalf("upload = %+v", up)
	}
	var list struct {
		Networks []struct {
			ID string `json:"id"`
		} `json:"networks"`
	}
	if code := do(t, s, "GET", "/v1/networks", nil, &list); code != 200 {
		t.Fatalf("list status %d", code)
	}
	if len(list.Networks) != 2 {
		t.Fatalf("listed %d networks, want 2", len(list.Networks))
	}
}

// TestEvalMatchesForward: the service's batched eval is bit-identical
// to in-process evaluation, addressed by ID prefix.
func TestEvalMatchesForward(t *testing.T) {
	s, net, id := newTestServer(t)
	inputs := metrics.Grid(2, 7)
	var resp struct {
		Outputs []float64 `json:"outputs"`
	}
	req := map[string]any{"network_id": id[:12], "inputs": inputs}
	if code := do(t, s, "POST", "/v1/eval", req, &resp); code != 200 {
		t.Fatalf("eval status %d", code)
	}
	if len(resp.Outputs) != len(inputs) {
		t.Fatalf("eval returned %d outputs for %d inputs", len(resp.Outputs), len(inputs))
	}
	for i, x := range inputs {
		if want := net.Forward(x); resp.Outputs[i] != want {
			t.Fatalf("output[%d] = %v, want exactly %v", i, resp.Outputs[i], want)
		}
	}
}

// TestBoundsMatchesCore: the service's certificates equal the library's.
func TestBoundsMatchesCore(t *testing.T) {
	s, net, id := newTestServer(t)
	shape := core.ShapeOf(net)
	faults := []int{2, 1}
	var resp boundsResponse
	req := map[string]any{"network_id": id, "faults": faults, "c": 0.5, "eps": 9.0, "eps_prime": 0.1}
	if code := do(t, s, "POST", "/v1/bounds", req, &resp); code != 200 {
		t.Fatalf("bounds status %d", code)
	}
	if want := core.Fep(shape, faults, 0.5); resp.Fep != want {
		t.Fatalf("fep = %v, want %v", resp.Fep, want)
	}
	if want := core.CrashFep(shape, faults); resp.CrashFep != want {
		t.Fatalf("crash_fep = %v, want %v", resp.CrashFep, want)
	}
	synFaults := []int{2, 1, 0}
	if want := core.SynapseFep(shape, synFaults, 0.5); resp.SynapseFep != want {
		t.Fatalf("synapse_fep = %v, want %v", resp.SynapseFep, want)
	}
	if resp.Tolerated == nil || resp.CrashTolerated == nil {
		t.Fatal("tolerance certificates missing despite eps > 0")
	}
	if want := core.Tolerates(shape, faults, 0.5, 9, 0.1); *resp.Tolerated != want {
		t.Fatalf("tolerated = %v, want %v", *resp.Tolerated, want)
	}
	wantSig := core.RequiredSignals(shape, faults)
	if len(resp.RequiredSignals) != len(wantSig) {
		t.Fatalf("required_signals = %v, want %v", resp.RequiredSignals, wantSig)
	}
	for i := range wantSig {
		if resp.RequiredSignals[i] != wantSig[i] {
			t.Fatalf("required_signals = %v, want %v", resp.RequiredSignals, wantSig)
		}
	}
	// Uniform broadcast: "faults": 1 means one per layer.
	var uni boundsResponse
	if code := do(t, s, "POST", "/v1/bounds", map[string]any{"network_id": id, "faults": 1}, &uni); code != 200 {
		t.Fatalf("uniform bounds status %d", code)
	}
	if want := core.Fep(shape, []int{1, 1}, 1); uni.Fep != want {
		t.Fatalf("uniform fep = %v, want %v", uni.Fep, want)
	}
}

// TestInjectMeasuredWithinBound drives /v1/inject for every registered
// model and checks the measured-vs-bound invariant end to end.
func TestInjectMeasuredWithinBound(t *testing.T) {
	s, _, id := newTestServer(t)
	for _, name := range fault.ModelNames() {
		var resp struct {
			Model    string  `json:"model"`
			Measured float64 `json:"measured"`
			Bound    float64 `json:"bound"`
		}
		req := map[string]any{"network_id": id, "faults": 2, "model": name, "c": 0.6, "bits": 8, "bit": 6}
		if code := do(t, s, "POST", "/v1/inject", req, &resp); code != 200 {
			t.Fatalf("inject %s status %d", name, code)
		}
		if resp.Model != name {
			t.Fatalf("inject %s answered for model %s", name, resp.Model)
		}
		if resp.Measured > resp.Bound*(1+1e-9) {
			t.Fatalf("inject %s: measured %v above bound %v", name, resp.Measured, resp.Bound)
		}
	}
	// Identical adversarial distributions share one compiled plan.
	s.mu.RLock()
	cn := s.nets[id]
	s.mu.RUnlock()
	if got := cn.plansCached(); got != 1 {
		t.Fatalf("plan cache holds %d plans after identical requests, want 1", got)
	}
}

// TestMonteCarloDeterministicAndBounded: same seed → same profile; the
// empirical max respects the Fep bound; distinct seeds differ.
func TestMonteCarloDeterministicAndBounded(t *testing.T) {
	s, _, id := newTestServer(t)
	type mcResp struct {
		Trials int     `json:"trials"`
		Mean   float64 `json:"mean"`
		Max    float64 `json:"max"`
		Bound  float64 `json:"bound"`
	}
	req := map[string]any{"network_id": id, "faults": 1, "trials": 60, "seed": 11}
	var a, b mcResp
	if code := do(t, s, "POST", "/v1/montecarlo", req, &a); code != 200 {
		t.Fatalf("montecarlo status %d", code)
	}
	if code := do(t, s, "POST", "/v1/montecarlo", req, &b); code != 200 {
		t.Fatalf("montecarlo status %d", code)
	}
	if a != b {
		t.Fatalf("same seed produced %+v then %+v", a, b)
	}
	if a.Trials != 60 || a.Max > a.Bound*(1+1e-9) || a.Mean <= 0 {
		t.Fatalf("profile %+v", a)
	}
	req["seed"] = uint64(12)
	var c mcResp
	do(t, s, "POST", "/v1/montecarlo", req, &c)
	if c.Mean == a.Mean {
		t.Fatal("different seeds produced identical profiles")
	}
}

// TestMonteCarloCancellation: an abandoned request stops the campaign
// between trials instead of running 200k trials for nobody.
func TestMonteCarloCancellation(t *testing.T) {
	s, _, id := newTestServer(t)
	cn, err := s.storedNetwork(id)
	if err != nil {
		t.Fatal(err)
	}
	_, traces := cn.standardInputs()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already abandoned before the campaign starts
	if _, err := s.shardedMonteCarlo(ctx, cn.model, []int{1, 1}, 0, traces, maxTrials, 1); err == nil {
		t.Fatal("cancelled campaign returned a profile")
	}
	// Through the handler: a cancelled request context maps to 499.
	req := httptest.NewRequest("POST", "/v1/montecarlo",
		strings.NewReader(`{"network_id": "`+id+`", "faults": 1, "trials": 50000}`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != statusClientClosedRequest {
		t.Fatalf("cancelled request answered %d, want %d", rec.Code, statusClientClosedRequest)
	}
}

// TestInlineNetworkQueries: stateless queries carry the network in the
// request body.
func TestInlineNetworkQueries(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := mustNew(t, Config{Store: st})
	defer s.Close()
	net := testNet(3)
	data, err := json.Marshal(net)
	if err != nil {
		t.Fatal(err)
	}
	var resp boundsResponse
	body := fmt.Sprintf(`{"network": %s, "faults": 1}`, data)
	if code := do(t, s, "POST", "/v1/bounds", body, &resp); code != 200 {
		t.Fatalf("inline bounds status %d", code)
	}
	if want := core.Fep(core.ShapeOf(net), []int{1, 1}, 1); resp.Fep != want {
		t.Fatalf("inline fep = %v, want %v", resp.Fep, want)
	}
}

// TestMalformedRequests pins the error envelope across the failure
// modes a client can produce.
func TestMalformedRequests(t *testing.T) {
	s, net, id := newTestServer(t)
	netJSON, _ := json.Marshal(net)
	cases := []struct {
		name, path, body string
		wantStatus       int
		wantErr          string
	}{
		{"syntax", "/v1/bounds", `{not json`, 400, "invalid character"},
		{"unknown field", "/v1/bounds", `{"network_id": "` + id + `", "fualts": 2}`, 400, "fualts"},
		{"missing network", "/v1/bounds", `{"faults": 1}`, 400, "missing network_id"},
		{"unknown id", "/v1/bounds", `{"network_id": "ffffffffffff"}`, 404, "no artifact"},
		{"both refs", "/v1/bounds", `{"network_id": "` + id + `", "network": ` + string(netJSON) + `}`, 400, "not both"},
		{"faults exceed width", "/v1/bounds", `{"network_id": "` + id + `", "faults": [11, 1]}`, 400, "exceeds layer width"},
		{"faults arity", "/v1/bounds", `{"network_id": "` + id + `", "faults": [1]}`, 400, "2 layers"},
		{"negative c", "/v1/bounds", `{"network_id": "` + id + `", "c": -1}`, 400, "negative"},
		{"faults type", "/v1/bounds", `{"network_id": "` + id + `", "faults": "two"}`, 400, "integer"},
		{"empty inputs", "/v1/eval", `{"network_id": "` + id + `"}`, 400, "inputs is empty"},
		{"bad dimension", "/v1/eval", `{"network_id": "` + id + `", "inputs": [[1, 2, 3]]}`, 400, "dimension"},
		{"unknown model", "/v1/inject", `{"network_id": "` + id + `", "model": "gremlin"}`, 400, "registered models"},
		{"trials too large", "/v1/montecarlo", `{"network_id": "` + id + `", "trials": 1000000}`, 400, "trials"},
		{"inline invalid net", "/v1/bounds", `{"network": {"input_dim": 0}}`, 400, "network"},
		{"network typo field", "/v1/bounds",
			`{"network": {"input_dim":1,"activation":"sigmoid(k=1)","hidden":[[[1]]],"output":[1],"output_bais":5}}`,
			400, "output_bais"},
	}
	for _, tc := range cases {
		var resp struct {
			Error string `json:"error"`
		}
		code := do(t, s, "POST", tc.path, tc.body, &resp)
		if code != tc.wantStatus {
			t.Errorf("%s: status %d, want %d (error %q)", tc.name, code, tc.wantStatus, resp.Error)
			continue
		}
		if !strings.Contains(resp.Error, tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, resp.Error, tc.wantErr)
		}
	}
}

// TestConcurrentClients is the acceptance scenario: parallel clients
// mixing /v1/bounds and /v1/montecarlo against one cached network all
// get correct, deterministic answers.
func TestConcurrentClients(t *testing.T) {
	s, net, id := newTestServer(t)
	shape := core.ShapeOf(net)
	wantFep := core.Fep(shape, []int{2, 1}, 1)

	// Reference Monte Carlo answer, computed once.
	mcReq := map[string]any{"network_id": id, "faults": 1, "trials": 40, "seed": 5}
	var ref struct {
		Mean float64 `json:"mean"`
		Max  float64 `json:"max"`
	}
	if code := do(t, s, "POST", "/v1/montecarlo", mcReq, &ref); code != 200 {
		t.Fatalf("montecarlo status %d", code)
	}

	const clients = 16
	var wg sync.WaitGroup
	errs := make(chan error, 2*clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := httptest.NewRecorder()
			body, _ := json.Marshal(map[string]any{"network_id": id, "faults": []int{2, 1}})
			s.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/v1/bounds", bytes.NewReader(body)))
			var resp boundsResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				errs <- err
				return
			}
			if rec.Code != 200 || resp.Fep != wantFep {
				errs <- fmt.Errorf("bounds: status %d fep %v, want 200 %v", rec.Code, resp.Fep, wantFep)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := httptest.NewRecorder()
			body, _ := json.Marshal(mcReq)
			s.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/v1/montecarlo", bytes.NewReader(body)))
			var resp struct {
				Mean float64 `json:"mean"`
				Max  float64 `json:"max"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				errs <- err
				return
			}
			if rec.Code != 200 || resp.Mean != ref.Mean || resp.Max != ref.Max {
				errs <- fmt.Errorf("montecarlo: status %d profile %+v, want %+v", rec.Code, resp, ref)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestRunGracefulShutdown boots a real listener, hits /healthz, then
// cancels the context and expects a clean exit.
func TestRunGracefulShutdown(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- Run(ctx, "127.0.0.1:0", Config{Store: st}, func(format string, args ...any) {
			line := fmt.Sprintf(format, args...)
			addrCh <- strings.TrimPrefix(line, "listening on ")
		})
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(5 * time.Second):
		t.Fatal("server did not report its address")
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("healthz over TCP: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down")
	}
}
