package serve

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/conv"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/store"
)

// cachedNet is the per-model serving state: the immutable model (dense
// or convolutional — each stored artifact gets its own entry keyed by
// content address, so architectures never collide), its shape, pooled
// certifier scratch, compiled adversarial fault plans, and the clean
// traces of the standard evaluation inputs. All of it is computed at
// most once per model and shared by every request — steady-state
// queries hit only caches.
type cachedNet struct {
	id    string // store ID; "" for inline (unstored) models
	model nn.Model

	shape core.Shape
	// node prices certificates for arbitrary-topology models: the
	// layered Certifier algebra assumes every edge spans exactly one
	// level and is unsound under skip connections, so non-layered
	// models route every Fep query through the per-node shape instead.
	// nil for layered models.
	node *core.NodeShape
	// certs pools bounds scratch: Certifiers are not concurrent-safe,
	// so each request borrows one. (A NodeShape is immutable and
	// concurrent-safe; non-layered scratch shares it.)
	certs sync.Pool

	// inputsOnce guards the standard evaluation inputs and their clean
	// traces (the expensive shared reference for inject/montecarlo).
	inputsOnce sync.Once
	inputs     [][]float64
	traces     []*nn.Trace

	// plans caches compiled adversarial fault plans by distribution
	// signature. A CompiledPlan is safe for concurrent evaluation.
	plansMu sync.RWMutex
	plans   map[string]*fault.CompiledPlan
}

func newCachedNet(id string, m nn.Model) (*cachedNet, error) {
	// ShapeOfModel runs w_m over the model's distinct weights: conv
	// models get their Section VI receptive-field bounds with no dense
	// lowering anywhere in the service.
	shape := core.ShapeOfModel(m)
	if _, err := core.NewCertifier(shape); err != nil {
		return nil, err
	}
	cn := &cachedNet{
		id:    id,
		model: m,
		shape: shape,
		plans: map[string]*fault.CompiledPlan{},
	}
	if !nn.IsLayered(m) {
		ns, err := core.NodeShapeOf(m)
		if err != nil {
			return nil, err
		}
		cn.node = ns
	}
	cn.certs.New = func() any {
		bs := &boundsScratch{synFaults: make([]int, shape.Layers()+1)}
		if cn.node != nil {
			// Shared by every pooled unit: NodeShape is read-only after
			// construction.
			bs.cert = cn.node
			return bs
		}
		c, err := core.NewCertifier(shape)
		if err != nil {
			// Validated above; a failure here is a programming error.
			panic(err)
		}
		bs.cert = c
		return bs
	}
	return cn, nil
}

// certPricer is the certificate query surface shared by the layered
// core.Certifier and the arbitrary-topology core.NodeShape; every
// bounds-path computation prices through it so the handlers never care
// which algebra backs a model.
type certPricer interface {
	Fep(faults []int, c float64) float64
	CrashFep(faults []int) float64
	SynapseFep(faults []int, c float64) float64
	Tolerates(faults []int, c, eps, epsPrime float64) bool
	CrashTolerates(faults []int, eps, epsPrime float64) bool
	RequiredSignals(faults []int) []int
}

// boundsScratch is one pooled unit of bounds-path scratch: a pricer
// plus the synapse-distribution buffer, so a steady-state bounds query
// performs zero allocations in the certificate computation.
type boundsScratch struct {
	cert      certPricer
	synFaults []int
}

func (cn *cachedNet) getBounds() *boundsScratch  { return cn.certs.Get().(*boundsScratch) }
func (cn *cachedNet) putBounds(b *boundsScratch) { cn.certs.Put(b) }

// standardInputs returns the network's standard evaluation sample and
// its clean traces, computing both on first use: a grid for input
// dimension <= 2, deterministic random points beyond (matching the CLI
// and experiment conventions).
func (cn *cachedNet) standardInputs() ([][]float64, []*nn.Trace) {
	cn.inputsOnce.Do(func() {
		d := cn.model.Width(0)
		if d <= 2 {
			cn.inputs = metrics.Grid(d, 41)
		} else {
			cn.inputs = metrics.RandomPoints(rng.New(12345), d, 500)
		}
		cn.traces = fault.CleanTraces(cn.model, cn.inputs)
	})
	return cn.inputs, cn.traces
}

// adversarialPlan returns the compiled heaviest-weights plan for the
// distribution, compiling it at most once per distinct distribution.
func (cn *cachedNet) adversarialPlan(faults []int) *fault.CompiledPlan {
	key := faultsKey(faults)
	cn.plansMu.RLock()
	cp := cn.plans[key]
	cn.plansMu.RUnlock()
	if cp != nil {
		return cp
	}
	cn.plansMu.Lock()
	defer cn.plansMu.Unlock()
	if cp = cn.plans[key]; cp != nil {
		return cp
	}
	cp = fault.Compile(cn.model, fault.AdversarialNeuronPlan(cn.model, faults))
	cn.plans[key] = cp
	return cp
}

// plansCached reports the number of compiled plans held.
func (cn *cachedNet) plansCached() int {
	cn.plansMu.RLock()
	defer cn.plansMu.RUnlock()
	return len(cn.plans)
}

func faultsKey(faults []int) string {
	var b strings.Builder
	for i, f := range faults {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(f))
	}
	return b.String()
}

// network resolves a request's model reference: a store ID (cached
// across requests) or an inline model payload (served uncached). Both
// accept any architecture: untagged dense documents and "arch"-tagged
// conv1d/conv2d/graph documents.
func (s *Server) network(ref netRef) (*cachedNet, error) {
	switch {
	case ref.NetworkID != "" && len(ref.Network) > 0:
		return nil, badRequest("provide network_id or an inline network, not both")
	case ref.NetworkID != "":
		return s.storedNetwork(ref.NetworkID)
	case len(ref.Network) > 0:
		m, err := conv.ParseModel(ref.Network)
		if err != nil {
			return nil, badRequest(fmt.Sprintf("inline network: %v", err))
		}
		cn, err := newCachedNet("", m)
		if err != nil {
			return nil, badRequest(err.Error())
		}
		return cn, nil
	default:
		return nil, badRequest("missing network_id (or inline network)")
	}
}

// storedNetwork returns the cached serving state for a stored model
// (dense or conv), loading and indexing it on first use.
func (s *Server) storedNetwork(ref string) (*cachedNet, error) {
	if s.st == nil {
		return nil, &httpError{status: 503, msg: "no artifact store configured"}
	}
	entry, err := s.st.Resolve(ref)
	if err != nil {
		return nil, &httpError{status: 404, msg: err.Error()}
	}
	s.mu.RLock()
	cn := s.nets[entry.ID]
	s.mu.RUnlock()
	if cn != nil {
		return cn, nil
	}
	m, entry, err := s.st.Model(entry.ID)
	if err != nil {
		return nil, &httpError{status: 404, msg: err.Error()}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cn = s.nets[entry.ID]; cn != nil {
		return cn, nil
	}
	cn, err = newCachedNet(entry.ID, m)
	if err != nil {
		return nil, &httpError{status: 422, msg: fmt.Sprintf("stored network %s: %v", store.ShortID(entry.ID), err)}
	}
	s.nets[entry.ID] = cn
	return cn, nil
}

// cachedNetworks reports the number of networks currently cached.
func (s *Server) cachedNetworks() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.nets)
}
