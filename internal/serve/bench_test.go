package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/store"
)

// benchServer builds a server with one stored, cache-warmed network.
func benchServer(b *testing.B) (*Server, string) {
	b.Helper()
	st, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	entry, err := st.PutNetwork(testNet(1), nil)
	if err != nil {
		b.Fatal(err)
	}
	s := mustNew(b, Config{Store: st})
	b.Cleanup(s.Close)
	if _, err := s.storedNetwork(entry.ID); err != nil {
		b.Fatal(err)
	}
	return s, entry.ID
}

// boundsCompute is the request handler's certificate computation,
// isolated from the HTTP/JSON shell: what a steady-state bounds query
// costs once the network is cached.
func boundsCompute(cn *cachedNet, faults []int, c float64) float64 {
	bs := cn.getBounds()
	fep := bs.cert.Fep(faults, c)
	fep += bs.cert.CrashFep(faults)
	copy(bs.synFaults, faults)
	bs.synFaults[len(bs.synFaults)-1] = 0
	fep += bs.cert.SynapseFep(bs.synFaults, c)
	cn.putBounds(bs)
	return fep
}

// TestBoundsComputeSteadyStateAllocs pins the acceptance contract: the
// bounds hot path (pooled certifier scratch included) allocates nothing
// per request in the steady state.
func TestBoundsComputeSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-instrumented sync.Pool allocates on Get")
	}
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	entry, err := st.PutNetwork(testNet(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	s := mustNew(t, Config{Store: st})
	defer s.Close()
	cn, err := s.storedNetwork(entry.ID)
	if err != nil {
		t.Fatal(err)
	}
	faults := []int{2, 1}
	if allocs := testing.AllocsPerRun(200, func() {
		boundsCompute(cn, faults, 1)
	}); allocs != 0 {
		t.Fatalf("bounds compute path allocates %v per request, want 0", allocs)
	}
}

// BenchmarkBoundsCompute measures the cached certificate path alone —
// the part of a /v1/bounds request that is not JSON plumbing.
func BenchmarkBoundsCompute(b *testing.B) {
	s, id := benchServer(b)
	cn, err := s.storedNetwork(id)
	if err != nil {
		b.Fatal(err)
	}
	faults := []int{2, 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		boundsCompute(cn, faults, 1)
	}
}

// BenchmarkBoundsRequest measures a full /v1/bounds request through the
// handler: JSON decode + cached certificates + JSON encode.
func BenchmarkBoundsRequest(b *testing.B) {
	s, id := benchServer(b)
	h := s.Handler()
	body, err := json.Marshal(map[string]any{"network_id": id, "faults": []int{2, 1}, "c": 1.0})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/bounds", bytes.NewReader(body)))
		if rec.Code != 200 {
			b.Fatalf("status %d", rec.Code)
		}
	}
}

// BenchmarkBoundsRequestParallel is the concurrent serving story:
// parallel clients sharing one cached network and its scratch pool.
func BenchmarkBoundsRequestParallel(b *testing.B) {
	s, id := benchServer(b)
	h := s.Handler()
	body, err := json.Marshal(map[string]any{"network_id": id, "faults": []int{2, 1}, "c": 1.0})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/bounds", bytes.NewReader(body)))
			if rec.Code != 200 {
				b.Fatalf("status %d", rec.Code)
			}
		}
	})
}

// BenchmarkEvalRequestBatch measures a 64-input batched /v1/eval.
func BenchmarkEvalRequestBatch(b *testing.B) {
	s, id := benchServer(b)
	h := s.Handler()
	body, err := json.Marshal(map[string]any{"network_id": id, "inputs": metrics.Grid(2, 8)})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/eval", bytes.NewReader(body)))
		if rec.Code != 200 {
			b.Fatalf("status %d", rec.Code)
		}
	}
}

// BenchmarkMonteCarloSharded compares the pool-sharded executor against
// the sequential library sweep at equal trial counts (b.N trials per
// iteration would be unstable; fixed 256-trial campaigns are compared).
func BenchmarkMonteCarloSharded(b *testing.B) {
	s, id := benchServer(b)
	cn, err := s.storedNetwork(id)
	if err != nil {
		b.Fatal(err)
	}
	_, traces := cn.standardInputs()
	faults := []int{1, 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.shardedMonteCarlo(context.Background(), cn.model, faults, 0, traces, 256, 9); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonteCarloSequential is the library baseline for the same
// campaign.
func BenchmarkMonteCarloSequential(b *testing.B) {
	s, id := benchServer(b)
	cn, err := s.storedNetwork(id)
	if err != nil {
		b.Fatal(err)
	}
	inputs, _ := cn.standardInputs()
	faults := []int{1, 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fault.MonteCarlo(cn.model, faults, 0, core.DeviationCap, inputs, 256, rng.New(9))
	}
}
