package fault

// Soundness tests: the paper's central inequalities, checked empirically.
// For ANY network, ANY fault plan and ANY admissible fault values, the
// measured output deviation must stay below the closed-form bounds of
// Theorems 2, 3 and 4. These are the load-bearing properties of the whole
// reproduction: if any randomised case ever violated them, either the
// bound code or the injection code would be wrong.

import (
	"testing"

	"repro/internal/activation"
	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/rng"
)

// randomNet draws a random architecture, activation and weight scale.
func randomNet(r *rng.Rand) *nn.Network {
	L := r.Intn(3) + 1
	widths := make([]int, L)
	for i := range widths {
		widths[i] = r.Intn(6) + 1
	}
	var act activation.Func
	switch r.Intn(3) {
	case 0:
		act = activation.NewSigmoid(r.Range(0.25, 3))
	case 1:
		act = activation.NewTanh(r.Range(0.25, 2))
	default:
		act = activation.NewHardSigmoid(r.Range(0.5, 2))
	}
	return nn.NewRandom(r, nn.Config{
		InputDim: r.Intn(3) + 1,
		Widths:   widths,
		Act:      act,
		Bias:     r.Bool(0.5),
	}, r.Range(0.2, 2))
}

func randomPlanFor(r *rng.Rand, n *nn.Network) Plan {
	perLayer := make([]int, n.Layers())
	for l := range perLayer {
		perLayer[l] = r.Intn(n.Width(l+1) + 1)
	}
	return RandomNeuronPlan(r, n, perLayer)
}

func TestCrashErrorNeverExceedsCrashFep(t *testing.T) {
	r := rng.New(101)
	for trial := 0; trial < 300; trial++ {
		n := randomNet(r)
		p := randomPlanFor(r, n)
		shape := core.ShapeOf(n)
		bound := core.CrashFep(shape, p.PerLayerNeurons(n.Layers()))
		inputs := randomInputs(r, n.InputDim, 25)
		measured := MaxError(n, p, Crash{}, inputs)
		if measured > bound*(1+1e-9)+1e-12 {
			t.Fatalf("trial %d: crash error %v exceeds CrashFep %v (faults %v)",
				trial, measured, bound, p.PerLayerNeurons(n.Layers()))
		}
	}
}

func TestByzantineErrorNeverExceedsFep(t *testing.T) {
	r := rng.New(103)
	for trial := 0; trial < 300; trial++ {
		n := randomNet(r)
		p := randomPlanFor(r, n)
		c := r.Range(0.1, 3)
		shape := core.ShapeOf(n)
		bound := core.Fep(shape, p.PerLayerNeurons(n.Layers()), c)
		inputs := randomInputs(r, n.InputDim, 20)

		// Extreme deviations with random fixed signs.
		inj := Byzantine{C: c, Sem: core.DeviationCap, Sign: map[NeuronFault]float64{}}
		for _, f := range p.Neurons {
			if r.Bool(0.5) {
				inj.Sign[f] = -1
			}
		}
		measured := MaxError(n, p, inj, inputs)
		if measured > bound*(1+1e-9)+1e-12 {
			t.Fatalf("trial %d: byzantine error %v exceeds Fep %v", trial, measured, bound)
		}

		// Random deviations within the cap.
		randInj := RandomByzantine{C: c, Sem: core.DeviationCap, R: r.Split()}
		measured = MaxErrorSeq(n, p, randInj, inputs)
		if measured > bound*(1+1e-9)+1e-12 {
			t.Fatalf("trial %d: random byzantine error %v exceeds Fep %v", trial, measured, bound)
		}
	}
}

func TestByzantineWorstSignStillWithinFep(t *testing.T) {
	r := rng.New(107)
	for trial := 0; trial < 60; trial++ {
		n := randomNet(r)
		// Keep sign-search small: at most 8 faults.
		perLayer := make([]int, n.Layers())
		budget := 8
		for l := range perLayer {
			f := r.Intn(min(n.Width(l+1), budget) + 1)
			perLayer[l] = f
			budget -= f
			if budget <= 0 {
				break
			}
		}
		p := RandomNeuronPlan(r, n, perLayer)
		c := r.Range(0.1, 2)
		bound := core.Fep(core.ShapeOf(n), p.PerLayerNeurons(n.Layers()), c)
		inputs := randomInputs(r, n.InputDim, 10)
		measured := WorstSignError(n, p, Byzantine{C: c, Sem: core.DeviationCap}, inputs)
		if measured > bound*(1+1e-9)+1e-12 {
			t.Fatalf("trial %d: worst-sign error %v exceeds Fep %v", trial, measured, bound)
		}
	}
}

func TestTransmissionCapWithinEffectiveDeviationFep(t *testing.T) {
	// Under TransmissionCap semantics the deviation can reach C + sup|ϕ|;
	// EffectiveDeviation feeds that into Fep.
	r := rng.New(109)
	for trial := 0; trial < 150; trial++ {
		n := randomNet(r)
		p := randomPlanFor(r, n)
		c := r.Range(0.1, 3)
		shape := core.ShapeOf(n)
		eff := core.EffectiveDeviation(c, core.TransmissionCap, shape.ActCap)
		bound := core.Fep(shape, p.PerLayerNeurons(n.Layers()), eff)
		inputs := randomInputs(r, n.InputDim, 15)
		inj := Byzantine{C: c, Sem: core.TransmissionCap, Sign: map[NeuronFault]float64{}}
		for _, f := range p.Neurons {
			if r.Bool(0.5) {
				inj.Sign[f] = -1
			}
		}
		measured := MaxError(n, p, inj, inputs)
		if measured > bound*(1+1e-9)+1e-12 {
			t.Fatalf("trial %d: transmission-cap error %v exceeds Fep %v", trial, measured, bound)
		}
	}
}

func TestSynapseErrorNeverExceedsSynapseFep(t *testing.T) {
	r := rng.New(113)
	for trial := 0; trial < 200; trial++ {
		n := randomNet(r)
		L := n.Layers()
		perLayer := make([]int, L+1)
		for l := 1; l <= L+1; l++ {
			// Any placement is admitted, including several faults into
			// the same receiving neuron.
			perLayer[l-1] = r.Intn(min(n.Width(l)*n.Width(l-1), 6) + 1)
		}
		p := RandomSynapsePlan(r, n, perLayer)
		c := r.Range(0.1, 2)
		bound := core.SynapseFep(core.ShapeOf(n), p.PerLayerSynapses(L), c)
		inputs := randomInputs(r, n.InputDim, 15)
		inj := Byzantine{C: c, Sem: core.DeviationCap, SynSign: map[SynapseFault]float64{}}
		for _, f := range p.Synapses {
			if r.Bool(0.5) {
				inj.SynSign[f] = -1
			}
		}
		measured := MaxError(n, p, inj, inputs)
		if measured > bound*(1+1e-9)+1e-12 {
			t.Fatalf("trial %d: synapse error %v exceeds SynapseFep %v", trial, measured, bound)
		}
	}
}

func TestCrashSynapseWithinSynapseFep(t *testing.T) {
	// A crashed synapse's deviation is |w·y| <= w_m · sup|ϕ|; check the
	// Lemma 2 bound with c = w_m^{max} · ActCap covers it.
	r := rng.New(117)
	for trial := 0; trial < 150; trial++ {
		n := randomNet(r)
		L := n.Layers()
		shape := core.ShapeOf(n)
		wmax := 0.0
		for _, w := range shape.MaxW {
			if w > wmax {
				wmax = w
			}
		}
		c := wmax * shape.ActCap
		var p Plan
		perLayer := make([]int, L+1)
		for l := 1; l <= L+1; l++ {
			if r.Bool(0.6) && n.Width(l) > 0 {
				to := r.Intn(n.Width(l))
				from := r.Intn(n.Width(l - 1))
				p.Synapses = append(p.Synapses, SynapseFault{Layer: l, To: to, From: from})
				perLayer[l-1]++
			}
		}
		bound := core.SynapseFep(shape, perLayer, c)
		inputs := randomInputs(r, n.InputDim, 15)
		measured := MaxError(n, p, Crash{}, inputs)
		if measured > bound*(1+1e-9)+1e-12 {
			t.Fatalf("trial %d: crashed synapse error %v exceeds bound %v", trial, measured, bound)
		}
	}
}

func TestMixedErrorNeverExceedsMixedFep(t *testing.T) {
	// Simultaneous crash + Byzantine neurons + Byzantine synapses,
	// bounded by the joint recursion of core.MixedFep.
	r := rng.New(127)
	for trial := 0; trial < 200; trial++ {
		n := randomNet(r)
		L := n.Layers()
		crash := make([]int, L)
		byz := make([]int, L)
		for l := 0; l < L; l++ {
			w := n.Width(l + 1)
			byz[l] = r.Intn(w + 1)
			crash[l] = r.Intn(w + 1 - byz[l])
		}
		syn := make([]int, L+1)
		for l := 1; l <= L+1; l++ {
			syn[l-1] = r.Intn(min(n.Width(l)*n.Width(l-1), 4) + 1)
		}
		// Build one plan: crash+byz neurons (distinct), plus synapses.
		total := make([]int, L)
		for l := range total {
			total[l] = crash[l] + byz[l]
		}
		p := RandomNeuronPlan(r, n, total)
		sp := RandomSynapsePlan(r, n, syn)
		p.Synapses = sp.Synapses

		c := r.Range(0.1, 2)
		inj := Mixed{
			CrashSet: map[NeuronFault]bool{},
			Byz:      Byzantine{C: c, Sem: core.DeviationCap, Sign: map[NeuronFault]float64{}, SynSign: map[SynapseFault]float64{}},
		}
		// First crash[l] planned faults of each layer crash; rest lie.
		seen := make([]int, L)
		for _, f := range p.Neurons {
			if seen[f.Layer-1] < crash[f.Layer-1] {
				inj.CrashSet[f] = true
			} else if r.Bool(0.5) {
				inj.Byz.Sign[f] = -1
			}
			seen[f.Layer-1]++
		}
		for _, f := range p.Synapses {
			if r.Bool(0.5) {
				inj.Byz.SynSign[f] = -1
			}
		}

		d := core.MixedDistribution{Crash: crash, Byzantine: byz, Synapses: syn}
		bound := core.MixedFep(core.ShapeOf(n), d, c)
		inputs := randomInputs(r, n.InputDim, 15)
		measured := MaxError(n, p, inj, inputs)
		if measured > bound*(1+1e-9)+1e-12 {
			t.Fatalf("trial %d: mixed error %v exceeds MixedFep %v (crash %v byz %v syn %v)",
				trial, measured, bound, crash, byz, syn)
		}
	}
}

func TestExhaustiveWorstNeverExceedsCrashFep(t *testing.T) {
	// Even the true worst configuration over ALL choices stays within the
	// topology-only bound — the inequality the paper sells.
	r := rng.New(119)
	for trial := 0; trial < 20; trial++ {
		n := nn.NewRandom(r, nn.Config{
			InputDim: 2,
			Widths:   []int{r.Intn(4) + 2, r.Intn(3) + 2},
			Act:      activation.NewSigmoid(r.Range(0.5, 2)),
		}, r.Range(0.3, 1.5))
		perLayer := []int{r.Intn(2) + 1, 1}
		inputs := randomInputs(r, 2, 10)
		res, err := ExhaustiveWorstCrash(n, perLayer, inputs, 100_000)
		if err != nil {
			t.Fatal(err)
		}
		bound := core.CrashFep(core.ShapeOf(n), perLayer)
		if res.WorstError > bound*(1+1e-9)+1e-12 {
			t.Fatalf("trial %d: exhaustive worst %v exceeds CrashFep %v", trial, res.WorstError, bound)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
