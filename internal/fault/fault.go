// Package fault implements failure injection for the paper's model
// (Section II-B): crashed neurons (stop sending; read as 0), Byzantine
// neurons (arbitrary values bounded by the synaptic capacity C,
// Assumption 1), and crashed/Byzantine synapses. It evaluates the damaged
// neural function Ffail, measures empirical output errors, and provides
// the exhaustive configuration search whose combinatorial explosion the
// paper contrasts with the O(L) Fep bound.
package fault

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/rng"
)

// NeuronFault identifies one failing neuron: layer is 1..L, index is the
// neuron's position within the layer.
type NeuronFault struct {
	Layer, Index int
}

// SynapseFault identifies one failing synapse into layer (1..L+1, where
// L+1 addresses the output node's incoming synapses). To is the receiving
// neuron within the layer. For layered models From is the sending neuron
// in layer-1; for DAG models (nn.DAGModel) From is the receiving
// neuron's in-edge ORDINAL — the k-th edge in ascending (srcLevel,
// srcIdx) order, 0 <= From < FanIn(Layer, To) — so a fault can address
// a skip edge (nn.InEdgeOf resolves either form uniformly).
type SynapseFault struct {
	Layer, To, From int
}

// Plan is a set of neuron and synapse failures applied together.
type Plan struct {
	Neurons  []NeuronFault
	Synapses []SynapseFault
}

// PerLayerNeurons returns the fault distribution (f_1..f_L) of the plan's
// neuron failures for a network with L layers.
func (p Plan) PerLayerNeurons(L int) []int {
	out := make([]int, L)
	for _, f := range p.Neurons {
		if f.Layer < 1 || f.Layer > L {
			panic(fmt.Sprintf("fault: neuron fault at layer %d outside 1..%d", f.Layer, L))
		}
		out[f.Layer-1]++
	}
	return out
}

// PerLayerSynapses returns the synapse fault distribution (f_1..f_{L+1}).
func (p Plan) PerLayerSynapses(L int) []int {
	out := make([]int, L+1)
	for _, f := range p.Synapses {
		if f.Layer < 1 || f.Layer > L+1 {
			panic(fmt.Sprintf("fault: synapse fault at layer %d outside 1..%d", f.Layer, L+1))
		}
		out[f.Layer-1]++
	}
	return out
}

// Validate checks a plan against a model (dense, convolutional or
// graph): indices in range, no neuron failed twice. For conv models the
// indices address flattened feature-map positions and virtual dense
// synapses (see CompiledPlan); for DAG models synapse senders are
// in-edge ordinals validated against the receiving node's fan-in.
func (p Plan) Validate(n nn.Model) error {
	L := n.NumLayers()
	seen := map[NeuronFault]bool{}
	for _, f := range p.Neurons {
		if f.Layer < 1 || f.Layer > L {
			return fmt.Errorf("fault: neuron layer %d out of range", f.Layer)
		}
		if f.Index < 0 || f.Index >= n.Width(f.Layer) {
			return fmt.Errorf("fault: neuron index %d out of range for layer %d", f.Index, f.Layer)
		}
		if seen[f] {
			return fmt.Errorf("fault: neuron (%d,%d) failed twice", f.Layer, f.Index)
		}
		seen[f] = true
	}
	seenSyn := map[SynapseFault]bool{}
	for _, f := range p.Synapses {
		if f.Layer < 1 || f.Layer > L+1 {
			return fmt.Errorf("fault: synapse layer %d out of range", f.Layer)
		}
		if f.To < 0 || f.To >= n.Width(f.Layer) {
			return fmt.Errorf("fault: synapse receiver %d out of range for layer %d", f.To, f.Layer)
		}
		if f.From < 0 || f.From >= nn.FanInOf(n, f.Layer, f.To) {
			return fmt.Errorf("fault: synapse sender %d out of range for layer %d", f.From, f.Layer)
		}
		if seenSyn[f] {
			return fmt.Errorf("fault: synapse (%d,%d<-%d) failed twice", f.Layer, f.To, f.From)
		}
		seenSyn[f] = true
	}
	return nil
}

// Injector decides the values emitted by failing components.
//
// For NEURON faults the nominal argument is the clean (fault-free) output:
// Theorem 2's model has a Byzantine neuron broadcast "y + λ instead of the
// nominal y", where y is the unfaulted value — deviations compound against
// the clean computation, so Forward runs the clean trace alongside the
// damaged one. For SYNAPSE faults the nominal argument is the channel's
// actually transmitted contribution (weight times the possibly-corrupted
// upstream output): a crashed channel physically removes whatever was on
// it, and a Byzantine channel adds a bounded λ to the receiving sum.
type Injector interface {
	// NeuronValue returns the value a faulty neuron broadcasts in place
	// of its clean nominal output.
	NeuronValue(f NeuronFault, nominal float64) float64
	// SynapseDelta returns the additive error on the receiving sum for a
	// faulty synapse whose current transmitted contribution (w·y) is
	// given.
	SynapseDelta(f SynapseFault, nominal float64) float64
}

// Crash models crash failures: neurons stop sending (read as 0 per
// Definition 2) and synapses stop transmitting (contribution becomes 0).
type Crash struct{}

func (Crash) NeuronValue(NeuronFault, float64) float64 { return 0 }
func (Crash) SynapseDelta(_ SynapseFault, nominal float64) float64 {
	return -nominal
}

// Byzantine models Byzantine failures under a synaptic capacity C with
// selectable semantics (see core.CapSemantics) and a per-fault sign map.
// A fault's deviation is Sign(f)·C; the default sign is +1.
type Byzantine struct {
	C    float64
	Sem  core.CapSemantics
	Sign map[NeuronFault]float64
	// SynSign optionally orients synapse faults; default +1.
	SynSign map[SynapseFault]float64
}

func (b Byzantine) sign(f NeuronFault) float64 {
	if s, ok := b.Sign[f]; ok {
		return s
	}
	return 1
}

func (b Byzantine) NeuronValue(f NeuronFault, nominal float64) float64 {
	switch b.Sem {
	case core.TransmissionCap:
		// Emit the extreme value of the allowed range [-C, C].
		return b.sign(f) * b.C
	default:
		// DeviationCap: shift nominal by ±C.
		return nominal + b.sign(f)*b.C
	}
}

func (b Byzantine) SynapseDelta(f SynapseFault, nominal float64) float64 {
	s := 1.0
	if v, ok := b.SynSign[f]; ok {
		s = v
	}
	switch b.Sem {
	case core.TransmissionCap:
		// Transmitted value clamps to ±C: delta = target - nominal.
		return s*b.C - nominal
	default:
		return s * b.C
	}
}

// Mixed dispatches per fault: neurons in CrashSet crash (emit 0), all
// other faulty neurons and all faulty synapses behave as Byz prescribes.
// It realises the mixed distributions bounded by core.MixedFep.
type Mixed struct {
	CrashSet map[NeuronFault]bool
	Byz      Byzantine
}

func (m Mixed) NeuronValue(f NeuronFault, nominal float64) float64 {
	if m.CrashSet[f] {
		return 0
	}
	return m.Byz.NeuronValue(f, nominal)
}

func (m Mixed) SynapseDelta(f SynapseFault, transmitted float64) float64 {
	return m.Byz.SynapseDelta(f, transmitted)
}

// RandomByzantine emits uniformly random values within the capacity:
// deviations in [-C, C] under DeviationCap, values in [-C, C] under
// TransmissionCap. Each evaluation draws fresh values from R.
type RandomByzantine struct {
	C   float64
	Sem core.CapSemantics
	R   *rng.Rand
}

func (b RandomByzantine) NeuronValue(_ NeuronFault, nominal float64) float64 {
	v := b.R.Range(-b.C, b.C)
	if b.Sem == core.TransmissionCap {
		return v
	}
	return nominal + v
}

func (b RandomByzantine) SynapseDelta(_ SynapseFault, nominal float64) float64 {
	v := b.R.Range(-b.C, b.C)
	if b.Sem == core.TransmissionCap {
		return v - nominal
	}
	return v
}

// Forward evaluates the damaged neural function Ffail on x: faulty
// neurons' outputs are replaced via the injector after each layer, and
// faulty synapses perturb the receiving sums. Injectors receive clean
// nominal values (see Injector), so Forward also runs the fault-free
// sweep as deep as the injector needs it. For repeated evaluation of one
// plan, Compile once and reuse the CompiledPlan.
func Forward(n nn.Model, p Plan, inj Injector, x []float64) float64 {
	return Compile(n, p).Forward(inj, x)
}

// ErrorOn returns |Fneu(x) - Ffail(x)| for one input. For repeated
// evaluation, Compile the plan once and use CompiledPlan.ErrorOn (or
// ErrorOnTrace over a fixed input set).
func ErrorOn(n nn.Model, p Plan, inj Injector, x []float64) float64 {
	return Compile(n, p).ErrorOn(inj, x)
}
