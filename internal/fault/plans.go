package fault

import (
	"math"
	"sort"

	"repro/internal/nn"
	"repro/internal/rng"
)

// RandomNeuronPlan fails perLayer[l-1] uniformly chosen neurons in each
// layer l.
func RandomNeuronPlan(r *rng.Rand, n nn.Model, perLayer []int) Plan {
	if len(perLayer) != n.NumLayers() {
		panic("fault: perLayer length must equal the number of layers")
	}
	var p Plan
	for l := 1; l <= n.NumLayers(); l++ {
		k := perLayer[l-1]
		for _, idx := range r.Sample(n.Width(l), k) {
			p.Neurons = append(p.Neurons, NeuronFault{Layer: l, Index: idx})
		}
	}
	return p
}

// OutgoingScorer is an optional Model refinement: models with weight
// structure (conv receptive fields) report the largest absolute weight
// a neuron feeds forward through in O(R) instead of the generic scan
// over the full virtual dense connectivity.
type OutgoingScorer interface {
	// OutgoingWeight returns max_j |Weight(l+1, j, idx)| for neuron idx
	// of layer l (1..L; l = L scores against the output synapses).
	OutgoingWeight(l, idx int) float64
}

// outgoingWeight scores neuron idx of layer l by the largest absolute
// weight it feeds forward through — the paper's adversary targets the
// neurons "with highest weights". For conv models the weights are the
// virtual dense connectivity's (shared kernel values inside the
// receptive field, zeros outside); their OutgoingScorer fast path must
// return exactly the generic scan's value, so plans agree with the
// lowered network's.
func outgoingWeight(n nn.Model, l, idx int) float64 {
	if s, ok := n.(OutgoingScorer); ok {
		return s.OutgoingWeight(l, idx)
	}
	if l == n.NumLayers() {
		return math.Abs(n.Weight(l+1, 0, idx))
	}
	best := 0.0
	for j := 0; j < n.Width(l+1); j++ {
		if w := math.Abs(n.Weight(l+1, j, idx)); w > best {
			best = w
		}
	}
	return best
}

// AdversarialNeuronPlan fails, in each layer, the neurons with the
// largest outgoing weights — the worst-case choice used in the tightness
// arguments of Theorems 1 and 2.
func AdversarialNeuronPlan(n nn.Model, perLayer []int) Plan {
	if len(perLayer) != n.NumLayers() {
		panic("fault: perLayer length must equal the number of layers")
	}
	var p Plan
	for l := 1; l <= n.NumLayers(); l++ {
		k := perLayer[l-1]
		if k == 0 {
			continue
		}
		width := n.Width(l)
		if k > width {
			panic("fault: more faults than neurons in layer")
		}
		idx := make([]int, width)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			return outgoingWeight(n, l, idx[a]) > outgoingWeight(n, l, idx[b])
		})
		for _, i := range idx[:k] {
			p.Neurons = append(p.Neurons, NeuronFault{Layer: l, Index: i})
		}
	}
	return p
}

// RandomSynapsePlan fails perLayer[l-1] uniformly chosen distinct
// synapses into each layer l (perLayer has length L+1; the last entry
// addresses the output synapses). For DAG models the draw runs over the
// layer's REAL edges — skip edges included, absent edges excluded — and
// From is the in-edge ordinal; layered models keep the historical
// virtual-dense draw (so seeded plans stay reproducible).
func RandomSynapsePlan(r *rng.Rand, n nn.Model, perLayer []int) Plan {
	L := n.NumLayers()
	if len(perLayer) != L+1 {
		panic("fault: synapse perLayer length must be L+1")
	}
	dm, isDAG := nn.AsDAG(n)
	var p Plan
	for l := 1; l <= L+1; l++ {
		k := perLayer[l-1]
		if isDAG {
			rows := n.Width(l)
			// Cumulative fan-in: edge e of the layer belongs to the node
			// whose cumulative range contains it.
			cum := make([]int, rows+1)
			for to := 0; to < rows; to++ {
				cum[to+1] = cum[to] + dm.FanIn(l, to)
			}
			total := cum[rows]
			if k > total {
				panic("fault: more synapse faults than synapses in layer")
			}
			for _, flat := range r.Sample(total, k) {
				to := sort.SearchInts(cum, flat+1) - 1
				p.Synapses = append(p.Synapses, SynapseFault{
					Layer: l,
					To:    to,
					From:  flat - cum[to],
				})
			}
			continue
		}
		rows := n.Width(l)
		cols := n.Width(l - 1)
		if k > rows*cols {
			panic("fault: more synapse faults than synapses in layer")
		}
		for _, flat := range r.Sample(rows*cols, k) {
			p.Synapses = append(p.Synapses, SynapseFault{
				Layer: l,
				To:    flat / cols,
				From:  flat % cols,
			})
		}
	}
	return p
}

// AdversarialSynapsePlan fails the largest-magnitude synapses into each
// layer. DAG models rank their real edges (skip edges included) and
// address the chosen ones by in-edge ordinal.
func AdversarialSynapsePlan(n nn.Model, perLayer []int) Plan {
	L := n.NumLayers()
	if len(perLayer) != L+1 {
		panic("fault: synapse perLayer length must be L+1")
	}
	dm, isDAG := nn.AsDAG(n)
	var p Plan
	for l := 1; l <= L+1; l++ {
		k := perLayer[l-1]
		if k == 0 {
			continue
		}
		if isDAG {
			type scored struct {
				to, ord int
				w       float64
			}
			var all []scored
			for to := 0; to < n.Width(l); to++ {
				d := dm.FanIn(l, to)
				for e := 0; e < d; e++ {
					_, _, w := dm.InEdge(l, to, e)
					all = append(all, scored{to, e, math.Abs(w)})
				}
			}
			sort.Slice(all, func(a, b int) bool { return all[a].w > all[b].w })
			if k > len(all) {
				panic("fault: more synapse faults than synapses in layer")
			}
			for _, s := range all[:k] {
				p.Synapses = append(p.Synapses, SynapseFault{Layer: l, To: s.to, From: s.ord})
			}
			continue
		}
		rows := n.Width(l)
		cols := n.Width(l - 1)
		weightAt := func(to, from int) float64 {
			return math.Abs(n.Weight(l, to, from))
		}
		type scored struct {
			to, from int
			w        float64
		}
		all := make([]scored, 0, rows*cols)
		for to := 0; to < rows; to++ {
			for from := 0; from < cols; from++ {
				all = append(all, scored{to, from, weightAt(to, from)})
			}
		}
		sort.Slice(all, func(a, b int) bool { return all[a].w > all[b].w })
		if k > len(all) {
			panic("fault: more synapse faults than synapses in layer")
		}
		for _, s := range all[:k] {
			p.Synapses = append(p.Synapses, SynapseFault{Layer: l, To: s.to, From: s.from})
		}
	}
	return p
}
