package fault

import (
	"math"
	"testing"

	"repro/internal/activation"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// forwardReference replicates the pre-engine Forward implementation (one
// full clean trace plus a damaged pass, allocating per layer) verbatim.
// The compiled engine must agree with it bit for bit.
func forwardReference(n *nn.Network, p Plan, inj Injector, x []float64) float64 {
	L := n.Layers()
	neuronsAt := make([][]NeuronFault, L+1)
	for _, f := range p.Neurons {
		neuronsAt[f.Layer] = append(neuronsAt[f.Layer], f)
	}
	synapsesAt := make([][]SynapseFault, L+2)
	for _, f := range p.Synapses {
		synapsesAt[f.Layer] = append(synapsesAt[f.Layer], f)
	}
	clean := n.ForwardTrace(x)
	y := x
	for l := 1; l <= L; l++ {
		m := n.Hidden[l-1]
		s := m.MulVec(y)
		if n.Biases != nil && n.Biases[l-1] != nil {
			tensor.Add(s, s, n.Biases[l-1])
		}
		for _, f := range synapsesAt[l] {
			transmitted := m.At(f.To, f.From) * y[f.From]
			s[f.To] += inj.SynapseDelta(f, transmitted)
		}
		out := make([]float64, len(s))
		for j := range s {
			out[j] = n.Act.Eval(s[j])
		}
		for _, f := range neuronsAt[l] {
			out[f.Index] = inj.NeuronValue(f, clean.Outputs[l-1][f.Index])
		}
		y = out
	}
	sum := tensor.Dot(n.Output, y) + n.OutputBias
	for _, f := range synapsesAt[L+1] {
		transmitted := n.Output[f.From] * y[f.From]
		sum += inj.SynapseDelta(f, transmitted)
	}
	return sum
}

// testPlans builds a spread of plans: empty, neuron-only (shallow, deep,
// everywhere), synapse-only (hidden and output layers), and mixed.
func testPlans(r *rng.Rand, n *nn.Network) []Plan {
	L := n.Layers()
	all := make([]int, L)
	deep := make([]int, L)
	for l := range all {
		all[l] = 1
	}
	deep[L-1] = 2
	synAll := make([]int, L+1)
	for l := range synAll {
		synAll[l] = 1
	}
	plans := []Plan{
		{},
		RandomNeuronPlan(r, n, all),
		RandomNeuronPlan(r, n, deep),
		AdversarialNeuronPlan(n, all),
		RandomSynapsePlan(r, n, synAll),
		AdversarialSynapsePlan(n, synAll),
	}
	mixed := RandomNeuronPlan(r, n, all)
	mixed.Synapses = RandomSynapsePlan(r, n, synAll).Synapses
	plans = append(plans, mixed)
	// A degenerate plan listing the same neuron twice (invalid per
	// Validate, but the engine must keep the reference's last-write-wins
	// semantics rather than panic).
	dup := NeuronFault{Layer: 1, Index: 0}
	plans = append(plans, Plan{Neurons: []NeuronFault{dup, dup}})
	return plans
}

func testInjectors(n *nn.Network, p Plan) []Injector {
	byz := Byzantine{C: 0.7, Sem: core.DeviationCap, Sign: map[NeuronFault]float64{}, SynSign: map[SynapseFault]float64{}}
	for i, f := range p.Neurons {
		if i%2 == 0 {
			byz.Sign[f] = -1
		}
	}
	for i, f := range p.Synapses {
		if i%2 == 1 {
			byz.SynSign[f] = -1
		}
	}
	crashSet := map[NeuronFault]bool{}
	for i, f := range p.Neurons {
		if i%2 == 0 {
			crashSet[f] = true
		}
	}
	flip, err := NewBitFlip(n, 8, 6)
	if err != nil {
		panic(err)
	}
	// A heterogeneous dispatch routing alternating faults to different
	// registry models, the rest falling back to crash.
	disp := Dispatch{Neurons: map[NeuronFault]Injector{}, Synapses: map[SynapseFault]Injector{}}
	for i, f := range p.Neurons {
		switch i % 3 {
		case 0:
			disp.Neurons[f] = StuckAt{V: 0.3}
		case 1:
			disp.Neurons[f] = SignFlip{}
		}
	}
	for i, f := range p.Synapses {
		if i%2 == 0 {
			disp.Synapses[f] = flip
		}
	}
	return []Injector{
		Crash{},
		byz,
		Byzantine{C: 1.3, Sem: core.TransmissionCap},
		Mixed{CrashSet: crashSet, Byz: Byzantine{C: 0.5, Sem: core.DeviationCap}},
		StuckAt{V: 0.6},
		SignFlip{},
		flip,
		disp,
	}
}

// TestCompiledMatchesReference checks the compiled engine against the
// reference implementation bit for bit, across activations, biases,
// plans and injectors, on both evaluation entry points.
func TestCompiledMatchesReference(t *testing.T) {
	r := rng.New(11)
	nets := []*nn.Network{
		nn.NewRandom(r, nn.Config{InputDim: 3, Widths: []int{9, 7, 5}, Act: activation.NewSigmoid(1)}, 0.8),
		nn.NewRandom(r, nn.Config{InputDim: 2, Widths: []int{6, 6}, Act: activation.NewTanh(0.5), Bias: true}, 0.6),
		nn.NewRandom(r, nn.Config{InputDim: 4, Widths: []int{8}, Act: activation.NewHardSigmoid(2), Bias: true}, 1.1),
	}
	for _, net := range nets {
		inputs := metrics.RandomPoints(r, net.InputDim, 6)
		traces := CleanTraces(net, inputs)
		for pi, p := range testPlans(r, net) {
			cp := Compile(net, p)
			for ii, inj := range testInjectors(net, p) {
				for xi, x := range inputs {
					want := forwardReference(net, p, inj, x)
					if got := cp.Forward(inj, x); got != want {
						t.Fatalf("net %s plan %d inj %d input %d: Forward %v != reference %v",
							net.Act.Name(), pi, ii, xi, got, want)
					}
					if got := Forward(net, p, inj, x); got != want {
						t.Fatalf("plan %d inj %d: package Forward diverged", pi, ii)
					}
					wantErr := math.Abs(net.Forward(x) - want)
					if got := cp.ErrorOn(inj, x); got != wantErr {
						t.Fatalf("net %s plan %d inj %d input %d: ErrorOn %v != reference %v",
							net.Act.Name(), pi, ii, xi, got, wantErr)
					}
					if got := cp.ErrorOnTrace(inj, traces[xi]); got != wantErr {
						t.Fatalf("net %s plan %d inj %d input %d: ErrorOnTrace %v != reference %v",
							net.Act.Name(), pi, ii, xi, got, wantErr)
					}
				}
			}
		}
	}
}

// TestCompiledMatchesReferenceRandomByzantine pins the stochastic
// injector: identical RNG streams through both paths must yield
// identical outputs (the engine preserves the injector call order).
func TestCompiledMatchesReferenceRandomByzantine(t *testing.T) {
	r := rng.New(23)
	net := nn.NewRandom(r, nn.Config{InputDim: 3, Widths: []int{7, 6}, Act: activation.NewSigmoid(1)}, 0.7)
	p := RandomNeuronPlan(r, net, []int{2, 1})
	p.Synapses = RandomSynapsePlan(r, net, []int{1, 0, 1}).Synapses
	x := []float64{0.2, 0.8, 0.5}
	for _, sem := range []core.CapSemantics{core.DeviationCap, core.TransmissionCap} {
		want := forwardReference(net, p, RandomByzantine{C: 1, Sem: sem, R: rng.New(99)}, x)
		got := Compile(net, p).Forward(RandomByzantine{C: 1, Sem: sem, R: rng.New(99)}, x)
		if got != want {
			t.Fatalf("sem %v: compiled %v != reference %v", sem, got, want)
		}
	}
}

// TestCompiledReset checks that re-indexing a compiled plan in place
// matches compiling from scratch.
func TestCompiledReset(t *testing.T) {
	r := rng.New(31)
	net := nn.NewRandom(r, nn.Config{InputDim: 2, Widths: []int{8, 8}, Act: activation.NewSigmoid(1)}, 0.5)
	x := []float64{0.3, 0.9}
	cp := Compile(net, Plan{})
	for i := 0; i < 10; i++ {
		p := RandomNeuronPlan(r, net, []int{2, 2})
		cp.Reset(p)
		if got, want := cp.Forward(Crash{}, x), Compile(net, p).Forward(Crash{}, x); got != want {
			t.Fatalf("iteration %d: reset plan %v != fresh compile %v", i, got, want)
		}
	}
}

// TestCompiledSteadyStateAllocs asserts the engine's core promise: the
// steady state of every evaluation entry point allocates nothing, under
// EVERY deterministic model in the fault registry (the contract recorded
// in BENCH_2.json). Stochastic models are exercised too — their rng
// draws are also allocation-free — but the guarantee the registry
// documents is for the deterministic ones.
func TestCompiledSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-instrumented sync.Pool allocates on Get; the contract is measured without the detector")
	}
	r := rng.New(41)
	net := nn.NewRandom(r, nn.Config{InputDim: 4, Widths: []int{16, 16, 16}, Act: activation.NewSigmoid(1), Bias: true}, 0.5)
	p := AdversarialNeuronPlan(net, []int{2, 2, 2})
	p.Synapses = AdversarialSynapsePlan(net, []int{1, 1, 1, 1}).Synapses
	cp := Compile(net, p)
	x := []float64{0.1, 0.4, 0.7, 0.2}
	tr := net.ForwardTrace(x)

	for _, m := range Models() {
		params := Params{C: 1, Sem: core.DeviationCap, Value: 0.5, Prob: 0.5, Bits: 8, Bit: 6, Net: net, R: r.Split()}
		inj, err := m.New(params)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		cases := []struct {
			name string
			run  func()
		}{
			{m.Name + "/Forward", func() { cp.Forward(inj, x) }},
			{m.Name + "/ErrorOn", func() { cp.ErrorOn(inj, x) }},
			{m.Name + "/ErrorOnTrace", func() { cp.ErrorOnTrace(inj, tr) }},
		}
		for _, c := range cases {
			c.run() // warm the pooled scratch
			if allocs := testing.AllocsPerRun(100, c.run); allocs != 0 {
				t.Errorf("%s: %v allocs per run, want 0", c.name, allocs)
			}
		}
	}
}

// TestCompiledMatchesReferenceStochasticModels pins the stochastic
// registry models the way the RandomByzantine test does: identical rng
// streams through the compiled and reference paths must yield identical
// outputs.
func TestCompiledMatchesReferenceStochasticModels(t *testing.T) {
	r := rng.New(59)
	net := nn.NewRandom(r, nn.Config{InputDim: 3, Widths: []int{7, 6}, Act: activation.NewSigmoid(1)}, 0.7)
	p := RandomNeuronPlan(r, net, []int{2, 1})
	p.Synapses = RandomSynapsePlan(r, net, []int{1, 0, 1}).Synapses
	x := []float64{0.2, 0.8, 0.5}
	for _, m := range Models() {
		if m.Deterministic {
			continue
		}
		build := func(seed uint64) Injector {
			inj, err := m.New(Params{C: 1, Sem: core.DeviationCap, Prob: 0.5, Net: net, R: rng.New(seed)})
			if err != nil {
				t.Fatalf("%s: %v", m.Name, err)
			}
			return inj
		}
		want := forwardReference(net, p, build(99), x)
		if got := Compile(net, p).Forward(build(99), x); got != want {
			t.Fatalf("%s: compiled %v != reference %v", m.Name, got, want)
		}
	}
}

// TestCompiledPanicsOnBadLayer mirrors the panic contract of the plan
// indexing helpers.
func TestCompiledPanicsOnBadLayer(t *testing.T) {
	r := rng.New(43)
	net := nn.NewRandom(r, nn.Config{InputDim: 2, Widths: []int{4}, Act: activation.NewSigmoid(1)}, 0.5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range layer")
		}
	}()
	Compile(net, Plan{Neurons: []NeuronFault{{Layer: 3, Index: 0}}})
}
