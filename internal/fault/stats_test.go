package fault

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
)

func TestMonteCarloWithinFep(t *testing.T) {
	r := rng.New(31)
	n := randomSigmoidNet(r, []int{8, 6}, 1)
	perLayer := []int{2, 1}
	inputs := randomInputs(r, 2, 10)
	c := 0.8
	prof := MonteCarlo(n, perLayer, c, core.DeviationCap, inputs, 200, r)
	bound := core.Fep(core.ShapeOf(n), perLayer, c)
	if prof.Stats.Max > bound*(1+1e-9) {
		t.Fatalf("Monte Carlo max %v exceeds Fep %v", prof.Stats.Max, bound)
	}
	if prof.Stats.Mean <= 0 {
		t.Fatal("mean error should be positive with faults present")
	}
	if prof.Q90 > prof.Q99+1e-12 || prof.Q99 > prof.Stats.Max+1e-12 {
		t.Fatalf("quantiles out of order: q90=%v q99=%v max=%v", prof.Q90, prof.Q99, prof.Stats.Max)
	}
	if prof.Trials != 200 {
		t.Fatal("trial count wrong")
	}
}

func TestMonteCarloCrashMode(t *testing.T) {
	r := rng.New(33)
	n := randomSigmoidNet(r, []int{6}, 1)
	inputs := randomInputs(r, 2, 10)
	prof := MonteCarlo(n, []int{2}, 0, core.DeviationCap, inputs, 100, r)
	bound := core.CrashFep(core.ShapeOf(n), []int{2})
	if prof.Stats.Max > bound*(1+1e-9) {
		t.Fatalf("crash Monte Carlo max %v exceeds CrashFep %v", prof.Stats.Max, bound)
	}
}

func TestMonteCarloTypicalWellBelowWorstCase(t *testing.T) {
	// The point of the profile: random failures hurt far less than the
	// adversarial worst case the bound must cover.
	r := rng.New(35)
	n := randomSigmoidNet(r, []int{10}, 1)
	inputs := randomInputs(r, 2, 20)
	prof := MonteCarlo(n, []int{2}, 0, core.DeviationCap, inputs, 300, r)
	bound := core.CrashFep(core.ShapeOf(n), []int{2})
	if prof.Stats.Mean >= bound/2 {
		t.Fatalf("mean %v suspiciously close to worst-case bound %v", prof.Stats.Mean, bound)
	}
}

func TestQuantileHelper(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if q := quantile(xs, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := quantile(xs, 1); q != 5 {
		t.Fatalf("q1 = %v", q)
	}
	if q := quantile(xs, 0.5); q != 3 {
		t.Fatalf("q50 = %v", q)
	}
	if !math.IsNaN(quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

func TestWorstInputBeatsRandomSampling(t *testing.T) {
	r := rng.New(37)
	for trial := 0; trial < 10; trial++ {
		n := randomSigmoidNet(r, []int{6, 4}, 1.5)
		plan := AdversarialNeuronPlan(n, []int{2, 1})
		_, found := WorstInput(n, plan, Crash{}, r.Split(), 6, 30)
		randomMax := MaxError(n, plan, Crash{}, randomInputs(r, 2, 50))
		if found < randomMax*0.98 {
			t.Fatalf("trial %d: hill climbing found %v, random sampling %v", trial, found, randomMax)
		}
		// And it never exceeds the bound.
		bound := core.CrashFep(core.ShapeOf(n), []int{2, 1})
		if found > bound*(1+1e-9) {
			t.Fatalf("trial %d: worst input error %v exceeds bound %v", trial, found, bound)
		}
	}
}

func TestWorstInputStaysInDomain(t *testing.T) {
	r := rng.New(39)
	n := randomSigmoidNet(r, []int{5}, 1)
	plan := AdversarialNeuronPlan(n, []int{1})
	x, _ := WorstInput(n, plan, Crash{}, r, 3, 20)
	for _, v := range x {
		if v < 0 || v > 1 {
			t.Fatalf("worst input %v escaped [0,1]", x)
		}
	}
}
