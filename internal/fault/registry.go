package fault

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/rng"
)

// Params configures one instantiation of a registered fault model. Each
// model reads the fields it needs and ignores the rest; New documents
// which fields are required. The zero value selects sensible defaults
// everywhere a default exists.
type Params struct {
	// C is the capacity / deviation amplitude used by Byzantine-style
	// and noise models (Assumption 1's synaptic capacity).
	C float64
	// Sem selects the capacity semantics for Byzantine-style models
	// (see core.CapSemantics).
	Sem core.CapSemantics
	// Value is the output a stuck-at neuron emits.
	Value float64
	// Prob is the per-evaluation failure probability of intermittent
	// models, in [0, 1].
	Prob float64
	// Bits is the sign-magnitude fixed-point width (sign bit included)
	// the bit-flip model encodes values in. 0 selects 8.
	Bits int
	// Bit is the 0-based index of the flipped bit; Bits-1 is the sign
	// bit, lower indices are magnitude bits (0 = least significant).
	Bit int
	// Net is the model whose weights the bit-flip model corrupts
	// (required by models that inspect parameters, ignored elsewhere).
	// Any nn.Model — dense or convolutional — is accepted.
	Net nn.Model
	// R supplies randomness to stochastic models. Stochastic injectors
	// hold this stream through compile-time state and draw from it on
	// every evaluation without allocating; they are NOT safe for
	// concurrent use (give each goroutine its own stream via R.Split).
	R *rng.Rand
}

// Model is one named entry of the fault-model registry: a factory for
// Injectors together with the worst-case deviation caps that plug the
// model into the paper's analysis. Theorems 2-4 are parameterised only
// by a per-component deviation cap c, so ANY fault model is covered by
// the same Fep machinery once its caps are known: NeuronDeviation bounds
// |faulty output - nominal| for a faulty neuron and feeds core.Fep /
// core.DeviationFep; SynapseDeviation bounds the additive error a faulty
// synapse lands on its receiving sum and feeds core.SynapseFep.
type Model struct {
	// Name is the registry key (lower-case, stable; CLI-visible).
	Name string
	// Description is a one-line human-readable summary.
	Description string
	// Deterministic reports whether the injector's values depend only
	// on the fault and the nominal value. Deterministic injectors are
	// safe for concurrent use and evaluate with zero steady-state
	// allocations on compiled plans; stochastic ones require Params.R
	// and sequential evaluation (fault.MaxErrorSeq).
	Deterministic bool
	// New builds an injector for the given parameters.
	New func(Params) (Injector, error)
	// NeuronDeviation returns the worst-case per-neuron output
	// deviation cap for the parameters on a network of the given shape.
	NeuronDeviation func(Params, core.Shape) float64
	// SynapseDeviation returns the worst-case additive error a single
	// faulty synapse contributes to its receiving sum.
	SynapseDeviation func(Params, core.Shape) float64
}

var (
	regMu    sync.RWMutex
	registry = map[string]Model{}
)

// Register adds a model to the registry. It panics on an empty name, a
// duplicate name, or a model missing any of its functions — registration
// happens at init time, where a panic is a programming error caught by
// the first test run.
func Register(m Model) {
	if m.Name == "" {
		panic("fault: Register with empty model name")
	}
	if m.New == nil || m.NeuronDeviation == nil || m.SynapseDeviation == nil {
		panic(fmt.Sprintf("fault: model %q missing factory or deviation functions", m.Name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[m.Name]; dup {
		panic(fmt.Sprintf("fault: model %q registered twice", m.Name))
	}
	registry[m.Name] = m
}

// Lookup returns the named model.
func Lookup(name string) (Model, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	m, ok := registry[name]
	return m, ok
}

// Models returns every registered model, sorted by name.
func Models() []Model {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Model, 0, len(registry))
	for _, m := range registry {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ModelNames returns the sorted registry keys.
func ModelNames() []string {
	models := Models()
	names := make([]string, len(models))
	for i, m := range models {
		names[i] = m.Name
	}
	return names
}

// NewInjector instantiates the named model, erroring with the list of
// valid names when the model does not exist.
func NewInjector(name string, p Params) (Injector, error) {
	m, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("fault: unknown model %q (registered: %v)", name, ModelNames())
	}
	return m.New(p)
}
