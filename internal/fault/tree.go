package fault

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/activation"
	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/parallel"
)

// This file implements the tree-structured exhaustive worst-case
// engine. The flat engine (ExhaustiveWorstCrashFlat) pays a full
// damaged sweep per configuration; here the configuration space is
// walked as a DFS whose depth is the layer index, with the DEEPEST
// faulty layer varying fastest, so siblings at depth d share the
// damaged prefix of layers < d and recompute only layers >= d. Leaves
// are further collapsed: the combinations of the deepest faulty layer
// differ only in which rows of one shared base vector are overridden,
// so a whole leaf group costs one lane-batched matrix sweep plus an
// O(f·N) override/output-sum per configuration.
//
// Enumeration order ("tree order"): configurations are indexed by the
// mixed-radix number whose most significant digit is layer 1's
// combination index and whose least significant digit is the deepest
// faulty layer's — flat = ((c_1·m_2 + c_2)·m_3 + ...)·m_dl + c_dl with
// m_l = C(N_l, f_l). Within-layer combinations are lexicographic
// (Combinations). All first-attaining tie-breaks are in this order.

// pruneSlack widens every bound-vs-floor comparison: a subtree is
// pruned only when bound·pruneSlack is still strictly below the floor.
// The soundness argument (core.SubtreeBounder) is real-arithmetic, but
// both the bound and the measured errors are computed in floats whose
// accumulated relative rounding is ~n·2⁻⁵³ for n arithmetic steps —
// without slack, a configuration whose measured error lands one ulp
// ABOVE its real-valued bound (an exact tie, say) could be pruned. A
// 1e-9 relative guard covers rounding chains millions of operations
// deep while costing essentially no pruning power.
const pruneSlack = 1 + 1e-9

// WorstCaseOptions configures a WorstCase search.
type WorstCaseOptions struct {
	// Injector supplies the faulty neurons' broadcast values; nil means
	// Crash{}. With Prune set it MUST be deterministic (NeuronValue is
	// consulted while building the pruning tables and must return the
	// same value at evaluation time).
	Injector Injector
	// Prune enables sound branch-and-bound pruning: a subtree is
	// skipped only when its core.SubtreeBounder bound is STRICTLY below
	// the incumbent worst error, so the returned result — including
	// first-attaining tie-breaks — is provably identical to the
	// unpruned walk; only Visited/Pruned change.
	Prune bool
	// Sequential forces a single-walker in-order walk. Results are
	// deterministic either way; Sequential additionally makes the
	// Visited/Pruned split deterministic (parallel shards race on the
	// shared pruning floor).
	Sequential bool
	// MaxConfigs refuses searches with more configurations (<= 0 means
	// no refusal) — the refusal is the paper's point.
	MaxConfigs int64
	// Pool runs parallel searches; nil uses a transient pool.
	Pool *parallel.Pool
}

// SearchState accumulates a (possibly sharded, possibly resumed)
// search. The zero value is NOT ready — use NewSearchState (WorstFlat
// must start at -1). Seeding WorstError above zero acts as an exclusive
// floor: only strictly larger errors are recorded.
type SearchState struct {
	// WorstError is the largest |Fneu - Ffail| recorded so far.
	WorstError float64 `json:"worst_error"`
	// WorstFlat is the tree-order index of the first configuration
	// attaining WorstError, or -1 if none was recorded.
	WorstFlat int64 `json:"worst_flat"`
	// WorstPlan is that configuration's fault plan.
	WorstPlan []NeuronFault `json:"worst_plan,omitempty"`
	// Visited counts configurations actually evaluated; Pruned counts
	// configurations skipped by the bound. Visited + Pruned equals the
	// number of tree positions processed.
	Visited int64 `json:"visited"`
	Pruned  int64 `json:"pruned"`
}

// NewSearchState returns an empty state.
func NewSearchState() SearchState { return SearchState{WorstFlat: -1} }

// Merge folds a LATER shard o into st (st covers earlier tree
// positions): counts add; o's incumbent displaces st's only if strictly
// worse-case, or equal with a smaller tree index — the deterministic
// flat-order reduction that keeps sharded searches first-attaining.
func (st *SearchState) Merge(o SearchState) {
	st.Visited += o.Visited
	st.Pruned += o.Pruned
	if o.WorstFlat < 0 {
		return
	}
	if o.WorstError > st.WorstError ||
		(o.WorstError == st.WorstError && (st.WorstFlat < 0 || o.WorstFlat < st.WorstFlat)) {
		st.WorstError = o.WorstError
		st.WorstFlat = o.WorstFlat
		st.WorstPlan = o.WorstPlan
	}
}

// WorstCase is a prepared tree-structured exhaustive search. Safe for
// concurrent RunRange/Search calls (each walker owns its buffers; the
// pruning floor is shared atomically).
type WorstCase struct {
	m       nn.Model
	inj     Injector
	isCrash bool
	prune   bool
	// dag is non-nil for arbitrary-topology models: the walk then runs
	// level-scheduled — per-input per-level output pointers with
	// clean-trace aliasing off the static frontier — and pruning prices
	// subtrees through core.DAGSubtreeBounder's per-node coefficients
	// instead of the per-layer chain bound (see dagtree.go).
	dag  nn.DAGModel
	seq  bool
	pool *parallel.Pool

	L     int
	lastF int // deepest 1-based layer with faults; 0 when the plan is empty

	combos      [][][]int // combos[l-1]: layer l's combinations (l <= lastF)
	counts      []int64   // counts[l-1] = len(combos[l-1])
	groupsUnder []int64   // groups under one depth-d subtree (index d, 1..lastF-1)
	leaves      int64     // configurations per leaf group = counts[lastF-1]
	total       int64

	inputs [][]float64
	traces []*nn.Trace

	// Static frontier (dag only): dirtyLvl[l] reports whether level l
	// can differ from the clean trace under the FULL perLayer pattern
	// (own faults or any damaged source level); srcDirty[l] the source
	// half alone. Every configuration of the search damages exactly the
	// layers with perLayer > 0, so the frontier — and with it every
	// alias/copy/recompute decision — is one fixed bitmask, identical to
	// the compiled engine's per-plan frontier for each leaf.
	dirtyLvl []bool
	srcDirty []bool

	// Pruning tables (Prune only): tails[d][x] prices the free layers
	// below depth d on input x; topfLeaf[x] bounds the deepest layer's
	// own combination deviations. Layered models use the per-layer
	// bounder; DAG models the per-node nb (whose Amp weighting is
	// already folded into tails/topfLeaf/baseDelta).
	bounder  *core.SubtreeBounder
	nb       *core.DAGSubtreeBounder
	tails    [][]float64
	topfLeaf []float64

	floorBits atomic.Uint64 // math.Float64bits of the pruning floor (>= 0)
	walkers   sync.Pool
}

// wcWalker is one DFS walker: the per-depth damaged-trace stack plus
// the digits it currently embodies.
type wcWalker struct {
	ps     nn.PartialStack
	cur    []int64 // cur[d]: combination index materialised at depth d (-1 = invalid)
	digits []int64
	deltas [][]float64 // deltas[d][x]: l1 deviation at depth d (layered prune only)

	saved     []float64 // override save/restore buffer for leaf rows
	baseDelta []float64 // layered: l1 base deviation; dag: Amp-weighted
	baseGroup int64     // leaf-group whose base occupies ps.Layer(lastF); -1 = none

	// DAG walk state: lvls[x][v] points at input x's authoritative
	// level-v outputs — the clean trace for levels off the frontier, the
	// walker's stack buffers for damaged ones (levels the search never
	// dirties keep their trace alias forever). dsts/srcs are the lane
	// argument scratch for the multi-lane level kernel; nodeDeltas[d][x]
	// holds per-node |damaged - clean| at damaged depths (prune only).
	lvls       [][][]float64
	dsts       [][]float64
	srcs       [][][]float64
	nodeDeltas [][][]float64
}

// NewWorstCase prepares a search for perLayer[l-1] faulty neurons per
// layer l over the given inputs. Unlike the historical panicking paths
// it validates and returns errors — searches are reachable from serve.
func NewWorstCase(m nn.Model, perLayer []int, inputs [][]float64, opts WorstCaseOptions) (*WorstCase, error) {
	L := m.NumLayers()
	if len(perLayer) != L {
		return nil, fmt.Errorf("fault: perLayer has %d entries for %d layers", len(perLayer), L)
	}
	widths := make([]int, L)
	for l := 1; l <= L; l++ {
		widths[l-1] = m.Width(l)
	}
	for l, f := range perLayer {
		if f < 0 || f > widths[l] {
			return nil, fmt.Errorf("fault: f_%d = %d outside [0, N_%d=%d]", l+1, f, l+1, widths[l])
		}
	}
	total, err := CountConfigurations(widths, perLayer)
	if err != nil {
		return nil, err
	}
	if total == math.MaxInt64 {
		return nil, fmt.Errorf("fault: configuration count overflows int64")
	}
	if opts.MaxConfigs > 0 && total > opts.MaxConfigs {
		return nil, fmt.Errorf("fault: %d configurations exceed limit %d", total, opts.MaxConfigs)
	}
	inj := opts.Injector
	if inj == nil {
		inj = Crash{}
	}
	_, isCrash := inj.(Crash)

	w := &WorstCase{
		m:       m,
		inj:     inj,
		isCrash: isCrash,
		prune:   opts.Prune,
		seq:     opts.Sequential,
		pool:    opts.Pool,
		L:       L,
		inputs:  inputs,
		total:   total,
	}
	// Arbitrary-topology models run the same prefix-sharing walk
	// level-scheduled: the walk keeps per-input per-level output
	// pointers so a level can read ANY earlier level (damaged buffer or
	// clean-trace alias), and pruning swaps the per-layer chain bound —
	// unsound under skip edges, which route a deviation around the
	// measured layers — for core.DAGSubtreeBounder's per-node path
	// coefficients. Layered models keep the original machinery.
	if !nn.IsLayered(m) {
		dm, ok := nn.AsDAG(m)
		if !ok {
			return nil, fmt.Errorf("fault: non-layered model %T has no DAG view", m)
		}
		w.dag = dm
	}
	for l := L; l >= 1; l-- {
		if perLayer[l-1] > 0 {
			w.lastF = l
			break
		}
	}
	w.traces = CleanTraces(m, inputs)
	if w.dag != nil {
		w.dirtyLvl = make([]bool, L+1)
		w.srcDirty = make([]bool, L+1)
		for l := 1; l <= L; l++ {
			for _, v := range w.dag.SrcLevels(l) {
				if v >= 1 && w.dirtyLvl[v] {
					w.srcDirty[l] = true
					break
				}
			}
			w.dirtyLvl[l] = w.srcDirty[l] || perLayer[l-1] > 0
		}
	}

	if w.lastF > 0 {
		dl := w.lastF
		w.combos = make([][][]int, dl)
		w.counts = make([]int64, dl)
		for l := 1; l <= dl; l++ {
			var cs [][]int
			Combinations(widths[l-1], perLayer[l-1], func(idx []int) {
				cs = append(cs, append([]int(nil), idx...))
			})
			w.combos[l-1] = cs
			w.counts[l-1] = int64(len(cs))
		}
		w.leaves = w.counts[dl-1]
		w.groupsUnder = make([]int64, dl)
		if dl >= 1 {
			w.groupsUnder[dl-1] = 1
			for d := dl - 2; d >= 1; d-- {
				w.groupsUnder[d] = w.groupsUnder[d+1] * w.counts[d]
			}
		}
	}

	if w.prune && w.lastF > 0 {
		if err := w.buildPruneTables(perLayer); err != nil {
			return nil, err
		}
	}

	P := len(inputs)
	dl := w.lastF
	w.walkers.New = func() any {
		wk := &wcWalker{baseGroup: -1}
		wk.ps.Ensure(m, P)
		if w.dag != nil {
			wk.lvls = make([][][]float64, P)
			for x, tr := range w.traces {
				ys := make([][]float64, L+1)
				ys[0] = tr.Input
				for v := 1; v <= L; v++ {
					ys[v] = tr.Outputs[v-1]
				}
				wk.lvls[x] = ys
			}
			wk.dsts = make([][]float64, P)
			wk.srcs = make([][][]float64, P)
		}
		if dl > 0 {
			wk.cur = make([]int64, dl)
			wk.digits = make([]int64, dl)
			for d := range wk.cur {
				wk.cur[d] = -1
			}
			wk.saved = make([]float64, perLayer[dl-1])
			if w.prune {
				if w.dag != nil {
					wk.nodeDeltas = make([][][]float64, dl)
					for d := 1; d < dl; d++ {
						if !w.dirtyLvl[d] {
							continue // stays clean: deviations identically zero
						}
						nd := make([][]float64, P)
						for x := range nd {
							nd[x] = make([]float64, m.Width(d))
						}
						wk.nodeDeltas[d] = nd
					}
				} else {
					wk.deltas = make([][]float64, dl)
					for d := 1; d < dl; d++ {
						wk.deltas[d] = make([]float64, P)
					}
				}
				wk.baseDelta = make([]float64, P)
			}
		}
		return wk
	}
	return w, nil
}

// buildPruneTables prices every free suffix: per input x and layer l,
// topf_l(x) is the sum of the f_l largest exact per-neuron deviations
// |inj(clean_i) - clean_i| (exact because injectors always receive the
// CLEAN nominal, see core.SubtreeBounder), and tails[d][x] folds them
// through the propagation coefficients for layers > d.
func (w *WorstCase) buildPruneTables(perLayer []int) error {
	if w.dag != nil {
		return w.buildPruneTablesDAG(perLayer)
	}
	shape := core.ShapeOfModel(w.m)
	b, err := core.NewSubtreeBounder(shape, perLayer)
	if err != nil {
		return err
	}
	w.bounder = b
	P := len(w.traces)
	dl := w.lastF
	topf := make([][]float64, w.L) // topf[l-1][x]; nil for fault-free layers
	var devs []float64
	for l := 1; l <= w.L; l++ {
		f := perLayer[l-1]
		if f == 0 {
			continue
		}
		width := w.m.Width(l)
		if cap(devs) < width {
			devs = make([]float64, width)
		}
		devs = devs[:width]
		topf[l-1] = make([]float64, P)
		for x, tr := range w.traces {
			clean := tr.Outputs[l-1]
			for i := 0; i < width; i++ {
				v := 0.0
				if !w.isCrash {
					v = w.inj.NeuronValue(NeuronFault{Layer: l, Index: i}, clean[i])
				}
				devs[i] = math.Abs(v - clean[i])
			}
			sort.Float64s(devs)
			s := 0.0
			for i := width - f; i < width; i++ {
				s += devs[i]
			}
			topf[l-1][x] = s
		}
	}
	w.tails = make([][]float64, dl+1)
	for d := 0; d <= dl; d++ {
		w.tails[d] = make([]float64, P)
		for x := 0; x < P; x++ {
			t := 0.0
			for l := d + 1; l <= w.L; l++ {
				if topf[l-1] != nil {
					t += b.Coef(l) * topf[l-1][x]
				}
			}
			w.tails[d][x] = t
		}
	}
	w.topfLeaf = topf[dl-1]
	return nil
}

// Total returns the number of configurations (tree positions).
func (w *WorstCase) Total() int64 { return w.total }

// PlanAt reconstructs the configuration at a tree-order index.
func (w *WorstCase) PlanAt(flat int64) Plan {
	if w.lastF == 0 {
		return Plan{}
	}
	idx := make([]int64, w.lastF+1)
	rem := flat
	for d := w.lastF; d >= 1; d-- {
		idx[d] = rem % w.counts[d-1]
		rem /= w.counts[d-1]
	}
	var nf []NeuronFault
	for d := 1; d <= w.lastF; d++ {
		for _, i := range w.combos[d-1][idx[d]] {
			nf = append(nf, NeuronFault{Layer: d, Index: i})
		}
	}
	return Plan{Neurons: nf}
}

// floor returns the current exclusive pruning floor.
func (w *WorstCase) floor(st *SearchState) float64 {
	f := math.Float64frombits(w.floorBits.Load())
	if st.WorstError > f {
		f = st.WorstError
	}
	return f
}

// raiseFloor lifts the shared pruning floor to at least v (v >= 0, so
// the float64-bits ordering agrees with the numeric one).
func (w *WorstCase) raiseFloor(v float64) {
	if !(v > 0) {
		return
	}
	bits := math.Float64bits(v)
	for {
		old := w.floorBits.Load()
		if old >= bits || w.floorBits.CompareAndSwap(old, bits) {
			return
		}
	}
}

// RunRange walks tree positions [lo, hi) with a single walker, folding
// into st (record iff strictly above st.WorstError — ascending order
// keeps the first-attaining configuration). It polls ctx between leaf
// groups and returns its error when cancelled.
func (w *WorstCase) RunRange(ctx context.Context, lo, hi int64, st *SearchState) error {
	if lo < 0 {
		lo = 0
	}
	if hi > w.total {
		hi = w.total
	}
	if lo >= hi {
		return ctx.Err()
	}
	if w.lastF == 0 {
		// A single, empty configuration: the damaged network is the
		// clean one, error 0, nothing to record.
		st.Visited += hi - lo
		return ctx.Err()
	}
	wk := w.walkers.Get().(*wcWalker)
	defer w.walkers.Put(wk)
	return w.walk(ctx, wk, lo, hi, st)
}

func (w *WorstCase) walk(ctx context.Context, wk *wcWalker, lo, hi int64, st *SearchState) error {
	dl := w.lastF
	spine := dl - 1
	pos := lo
	for pos < hi {
		if err := ctx.Err(); err != nil {
			return err
		}
		g := pos / w.leaves
		li := pos - g*w.leaves
		leafEnd := w.leaves
		if rem := hi - g*w.leaves; rem < leafEnd {
			leafEnd = rem
		}
		// Decode the spine digits (deepest fastest).
		rem := g
		for d := spine; d >= 1; d-- {
			wk.digits[d] = rem % w.counts[d-1]
			rem /= w.counts[d-1]
		}
		// Damaged-prefix sharing: depths whose digit is unchanged keep
		// their buffers; everything from the first changed depth down
		// is recomputed.
		firstDiff := 1
		for firstDiff <= spine && wk.cur[firstDiff] == wk.digits[firstDiff] {
			firstDiff++
		}
		if firstDiff <= spine {
			wk.baseGroup = -1
		}
		pruned := false
		for d := firstDiff; d <= spine; d++ {
			w.applyDepth(wk, d, wk.digits[d])
			wk.cur[d] = wk.digits[d]
			if w.prune && w.nodeBound(wk, d)*pruneSlack < w.floor(st) {
				// The bound dominates every leaf below this node, so
				// strictly-below-the-floor means no leaf here can beat
				// or tie the incumbent: fast-forward to the subtree's
				// end (clipped to the shard).
				span := w.groupsUnder[d]
				next := (g/span + 1) * span * w.leaves
				if next > hi {
					next = hi
				}
				st.Pruned += next - pos
				pos = next
				// Deeper buffers were not rebuilt under this prefix.
				for e := d + 1; e <= spine; e++ {
					wk.cur[e] = -1
				}
				pruned = true
				break
			}
		}
		if pruned {
			continue
		}
		if wk.baseGroup != g {
			w.buildBase(wk)
			wk.baseGroup = g
		}
		if w.prune {
			if w.leafBound(wk)*pruneSlack < w.floor(st) {
				st.Pruned += leafEnd - li
				pos = g*w.leaves + leafEnd
				continue
			}
		}
		w.evalLeaves(wk, g, li, leafEnd, st)
		pos = g*w.leaves + leafEnd
	}
	return ctx.Err()
}

// applyDepth materialises depth d's damaged outputs for combination ci
// on top of the current depth d-1 state.
func (w *WorstCase) applyDepth(wk *wcWalker, d int, ci int64) {
	if w.dag != nil {
		w.applyDepthDAG(wk, d, ci)
		return
	}
	combo := w.combos[d-1][ci]
	prevDirty := wk.ps.Dirty(d - 1)
	if len(combo) == 0 && !prevDirty {
		// Clean alias: the trace is authoritative, no buffer to touch.
		wk.ps.SetDirty(d, false)
		if w.prune {
			for x := range w.traces {
				wk.deltas[d][x] = 0
			}
		}
		return
	}
	P := len(w.traces)
	dst := wk.ps.Layer(d)[:P]
	if !prevDirty {
		// First divergent layer: received sums are the clean ones, so
		// outputs are the trace's with the overrides applied (the
		// compiled engine's divergence-copy fast path).
		for x, tr := range w.traces {
			copy(dst[x], tr.Outputs[d-1])
		}
	} else {
		prev := wk.ps.Layer(d - 1)[:P]
		nn.LayerSumsLanesModel(w.m, d, dst, prev)
		act := w.m.Activation()
		for x := 0; x < P; x++ {
			activation.Eval(act, dst[x], dst[x])
		}
	}
	// Faulty neurons broadcast values derived from the CLEAN nominal —
	// the same convention as the compiled engines, and what makes the
	// pruning tables exact.
	if w.isCrash {
		for x := 0; x < P; x++ {
			row := dst[x]
			for _, idx := range combo {
				row[idx] = 0
			}
		}
	} else {
		for x, tr := range w.traces {
			row := dst[x]
			clean := tr.Outputs[d-1]
			for _, idx := range combo {
				row[idx] = w.inj.NeuronValue(NeuronFault{Layer: d, Index: idx}, clean[idx])
			}
		}
	}
	wk.ps.SetDirty(d, true)
	if w.prune {
		for x, tr := range w.traces {
			clean := tr.Outputs[d-1]
			row := dst[x]
			s := 0.0
			for i := range row {
				s += math.Abs(row[i] - clean[i])
			}
			wk.deltas[d][x] = s
		}
	}
}

// nodeBound is the branch-and-bound price of the subtree rooted at
// depth d: measured prefix deviation propagated forward plus the
// free-suffix tail, maximised over inputs.
func (w *WorstCase) nodeBound(wk *wcWalker, d int) float64 {
	if w.dag != nil {
		return w.nodeBoundDAG(wk, d)
	}
	maxB := math.Inf(-1)
	for x := range w.traces {
		b := w.bounder.Bound(d, wk.deltas[d][x], w.tails[d][x])
		if b > maxB {
			maxB = b
		}
	}
	return maxB
}

// leafBound prices a whole leaf group: the measured prefix plus the
// deepest layer bounded by its base deviation and worst own
// combination.
func (w *WorstCase) leafBound(wk *wcWalker) float64 {
	if w.dag != nil {
		return w.leafBoundDAG(wk)
	}
	dl := w.lastF
	maxB := math.Inf(-1)
	for x := range w.traces {
		b := w.bounder.Bound(dl, wk.baseDelta[x]+w.topfLeaf[x], w.tails[dl][x])
		if b > maxB {
			maxB = b
		}
	}
	return maxB
}

// buildBase materialises the deepest faulty layer's outputs under the
// current spine WITHOUT that layer's own faults — the shared base every
// leaf of the group overrides in place.
func (w *WorstCase) buildBase(wk *wcWalker) {
	if w.dag != nil {
		w.buildBaseDAG(wk)
		return
	}
	dl := w.lastF
	P := len(w.traces)
	base := wk.ps.Layer(dl)[:P]
	if !wk.ps.Dirty(dl - 1) {
		for x, tr := range w.traces {
			copy(base[x], tr.Outputs[dl-1])
		}
		if w.prune {
			for x := range w.traces {
				wk.baseDelta[x] = 0
			}
		}
		return
	}
	prev := wk.ps.Layer(dl - 1)[:P]
	nn.LayerSumsLanesModel(w.m, dl, base, prev)
	act := w.m.Activation()
	for x := 0; x < P; x++ {
		activation.Eval(act, base[x], base[x])
	}
	if w.prune {
		for x, tr := range w.traces {
			clean := tr.Outputs[dl-1]
			row := base[x]
			s := 0.0
			for i := range row {
				s += math.Abs(row[i] - clean[i])
			}
			wk.baseDelta[x] = s
		}
	}
}

// evalLeaves evaluates leaf configurations [li, leafEnd) of group g:
// each overrides its combination's rows of the shared base, reads the
// output, and restores — no subtraction tricks, so the arithmetic is
// bit-identical to a full scalar evaluation of the same configuration.
func (w *WorstCase) evalLeaves(wk *wcWalker, g, li, leafEnd int64, st *SearchState) {
	if w.dag != nil {
		w.evalLeavesDAG(wk, g, li, leafEnd, st)
		return
	}
	dl := w.lastF
	P := len(w.traces)
	base := wk.ps.Layer(dl)[:P]
	for ci := li; ci < leafEnd; ci++ {
		combo := w.combos[dl-1][ci]
		worst := 0.0
		for x, tr := range w.traces {
			row := base[x]
			if w.isCrash {
				for j, idx := range combo {
					wk.saved[j] = row[idx]
					row[idx] = 0
				}
			} else {
				clean := tr.Outputs[dl-1]
				for j, idx := range combo {
					wk.saved[j] = row[idx]
					row[idx] = w.inj.NeuronValue(NeuronFault{Layer: dl, Index: idx}, clean[idx])
				}
			}
			var out float64
			if dl == w.L {
				out = w.m.OutputSum(row)
			} else {
				out = w.propagateSuffix(wk, x, row)
			}
			for j, idx := range combo {
				row[idx] = wk.saved[j]
			}
			if e := math.Abs(tr.Output - out); e > worst {
				worst = e
			}
		}
		st.Visited++
		if worst > st.WorstError {
			st.WorstError = worst
			st.WorstFlat = g*w.leaves + ci
			st.WorstPlan = w.PlanAt(st.WorstFlat).Neurons
			w.raiseFloor(worst)
		}
	}
}

// propagateSuffix pushes one input's damaged deepest-faulty-layer
// outputs through the fault-free trailing layers (lastF < L only).
func (w *WorstCase) propagateSuffix(wk *wcWalker, x int, y []float64) float64 {
	act := w.m.Activation()
	for l := w.lastF + 1; l <= w.L; l++ {
		dst := wk.ps.Layer(l)[x]
		w.m.LayerSums(l, dst, y, nil)
		activation.Eval(act, dst, dst)
		y = dst
	}
	return w.m.OutputSum(y)
}

// Search processes tree positions [lo, hi) — sharded over the pool
// unless Sequential — and folds the outcome into st with the
// deterministic flat-order reduction. st.WorstError seeds the pruning
// floor (sound: a higher floor only prunes more, and recording is
// strict-greater either way).
func (w *WorstCase) Search(ctx context.Context, lo, hi int64, st *SearchState) error {
	if lo < 0 {
		lo = 0
	}
	if hi > w.total {
		hi = w.total
	}
	if lo >= hi {
		return ctx.Err()
	}
	w.raiseFloor(st.WorstError)
	if w.seq || w.lastF == 0 {
		return w.RunRange(ctx, lo, hi, st)
	}
	pool := w.pool
	if pool == nil {
		pool = parallel.NewPool(0)
		defer pool.Close()
	}
	n := hi - lo
	grain := n / int64(4*pool.Size())
	if grain < 1 {
		grain = 1
	}
	if w.leaves > 0 && w.groups() >= int64(4*pool.Size()) {
		// Align shards to whole leaf groups so sibling leaves stay with
		// their spine.
		grain = (grain + w.leaves - 1) / w.leaves * w.leaves
	}
	var mu sync.Mutex
	shards := make(map[int64]SearchState)
	err := pool.ForCtx64(ctx, n, grain, func(clo, chi int64) {
		local := NewSearchState()
		_ = w.RunRange(ctx, lo+clo, lo+chi, &local)
		mu.Lock()
		shards[clo] = local
		mu.Unlock()
	})
	// Deterministic flat-order reduction: merge shards by ascending
	// start position regardless of completion order.
	starts := make([]int64, 0, len(shards))
	for s := range shards {
		starts = append(starts, s)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	for _, s := range starts {
		st.Merge(shards[s])
	}
	return err
}

func (w *WorstCase) groups() int64 {
	if w.leaves <= 0 {
		return 0
	}
	return w.total / w.leaves
}

// Run walks the whole tree and packages the result.
func (w *WorstCase) Run(ctx context.Context) (ExhaustiveResult, error) {
	st := NewSearchState()
	if err := w.Search(ctx, 0, w.total, &st); err != nil {
		return ExhaustiveResult{}, err
	}
	return w.Result(st), nil
}

// Result packages an accumulated state.
func (w *WorstCase) Result(st SearchState) ExhaustiveResult {
	return ExhaustiveResult{
		WorstError:     st.WorstError,
		WorstPlan:      Plan{Neurons: st.WorstPlan},
		Configurations: w.total,
		Visited:        st.Visited,
		Pruned:         st.Pruned,
	}
}

// ExhaustiveWorstCrash enumerates every choice of perLayer[l-1] crashed
// neurons per layer l (all Π C(N_l, f_l) configurations), evaluates
// each on all inputs, and returns the worst case. Since PR 8 it runs on
// the pruned tree engine — damaged-prefix sharing plus sound
// branch-and-bound — and returns errors (not panics) on malformed
// distributions. It refuses searches above maxConfigs to keep runtimes
// sane; that refusal is the paper's point.
func ExhaustiveWorstCrash(n nn.Model, perLayer []int, inputs [][]float64, maxConfigs int64) (ExhaustiveResult, error) {
	w, err := NewWorstCase(n, perLayer, inputs, WorstCaseOptions{Prune: true, MaxConfigs: maxConfigs})
	if err != nil {
		return ExhaustiveResult{}, err
	}
	return w.Run(context.Background())
}
