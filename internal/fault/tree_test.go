package fault

import (
	"context"
	"math"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/activation"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// treeOracle enumerates [0, w.Total()) in tree order with fresh
// compiled scalar evaluations — the ground truth the tree engine must
// reproduce bit-for-bit, including the first-attaining tie-break.
func treeOracle(t *testing.T, n nn.Model, w *WorstCase, inj Injector, inputs [][]float64) SearchState {
	t.Helper()
	traces := CleanTraces(n, inputs)
	st := NewSearchState()
	for flat := int64(0); flat < w.Total(); flat++ {
		plan := w.PlanAt(flat)
		cp := Compile(n, plan)
		worst := 0.0
		for _, tr := range traces {
			if e := cp.ErrorOnTrace(inj, tr); e > worst {
				worst = e
			}
		}
		st.Visited++
		if worst > st.WorstError {
			st.WorstError = worst
			st.WorstFlat = flat
			st.WorstPlan = plan.Neurons
		}
	}
	return st
}

func assertStatesEqual(t *testing.T, label string, got, want SearchState) {
	t.Helper()
	if got.WorstError != want.WorstError {
		t.Fatalf("%s: WorstError %v != %v (must be bit-identical)", label, got.WorstError, want.WorstError)
	}
	if got.WorstFlat != want.WorstFlat {
		t.Fatalf("%s: WorstFlat %d != %d", label, got.WorstFlat, want.WorstFlat)
	}
	if !reflect.DeepEqual(got.WorstPlan, want.WorstPlan) {
		t.Fatalf("%s: WorstPlan %v != %v", label, got.WorstPlan, want.WorstPlan)
	}
}

// TestTreeMatchesFlatCrash cross-checks the tree engine (pruned,
// parallel) against the flat PR 7 reference over ragged shapes.
func TestTreeMatchesFlatCrash(t *testing.T) {
	r := rng.New(41)
	cases := []struct {
		widths   []int
		perLayer []int
	}{
		{[]int{6, 4}, []int{2, 1}},
		{[]int{5, 4, 3}, []int{1, 1, 2}},
		{[]int{4, 3, 4}, []int{1, 0, 2}},
		{[]int{4, 5, 3}, []int{1, 2, 0}}, // trailing fault-free suffix
		{[]int{9}, []int{3}},
		{[]int{3, 3}, []int{0, 0}}, // empty plan
	}
	for _, tc := range cases {
		n := randomSigmoidNet(r, tc.widths, 1)
		inputs := randomInputs(r, 2, 7)
		tree, err := ExhaustiveWorstCrash(n, tc.perLayer, inputs, 1_000_000)
		if err != nil {
			t.Fatalf("%v: %v", tc, err)
		}
		flat, err := ExhaustiveWorstCrashFlat(n, tc.perLayer, inputs, 1_000_000)
		if err != nil {
			t.Fatalf("%v: %v", tc, err)
		}
		if tree.WorstError != flat.WorstError {
			t.Fatalf("%v: tree worst %v != flat worst %v (must be bit-identical)", tc, tree.WorstError, flat.WorstError)
		}
		if tree.Configurations != flat.Configurations {
			t.Fatalf("%v: configuration counts differ: %d vs %d", tc, tree.Configurations, flat.Configurations)
		}
		if tree.Visited+tree.Pruned != tree.Configurations {
			t.Fatalf("%v: visited %d + pruned %d != %d", tc, tree.Visited, tree.Pruned, tree.Configurations)
		}
		// The reported plan must attain the reported error exactly (the
		// engines may differ under exact ties, where both plans attain).
		if len(tree.WorstPlan.Neurons) > 0 || tree.WorstError > 0 {
			if e := MaxError(n, tree.WorstPlan, Crash{}, inputs); e != tree.WorstError {
				t.Fatalf("%v: tree plan attains %v, claimed %v", tc, e, tree.WorstError)
			}
		}
	}
}

// TestTreePrunedMatchesUnpruned: pruning must be invisible in the
// result — same error, same first-attaining index, same plan.
func TestTreePrunedMatchesUnpruned(t *testing.T) {
	r := rng.New(42)
	for trial := 0; trial < 5; trial++ {
		widths := []int{3 + r.Intn(4), 3 + r.Intn(4)}
		perLayer := []int{1 + r.Intn(2), 1 + r.Intn(2)}
		n := randomSigmoidNet(r, widths, 1+r.Float64())
		inputs := randomInputs(r, 2, 5)
		run := func(prune bool) (SearchState, int64) {
			w, err := NewWorstCase(n, perLayer, inputs, WorstCaseOptions{Prune: prune, Sequential: true})
			if err != nil {
				t.Fatal(err)
			}
			st := NewSearchState()
			if err := w.Search(context.Background(), 0, w.Total(), &st); err != nil {
				t.Fatal(err)
			}
			return st, w.Total()
		}
		pruned, total := run(true)
		unpruned, _ := run(false)
		assertStatesEqual(t, "pruned vs unpruned", pruned, unpruned)
		if unpruned.Visited != total || unpruned.Pruned != 0 {
			t.Fatalf("unpruned walk visited %d/pruned %d of %d", unpruned.Visited, unpruned.Pruned, total)
		}
		if pruned.Visited+pruned.Pruned != total {
			t.Fatalf("pruned walk visited %d + pruned %d != %d", pruned.Visited, pruned.Pruned, total)
		}
	}
}

// TestTreeMatchesScalarOracleAllModels: for every deterministic
// registered fault model, the pruned tree search is bit-identical to a
// fresh scalar compiled evaluation of every configuration in tree order.
func TestTreeMatchesScalarOracleAllModels(t *testing.T) {
	r := rng.New(43)
	n := randomSigmoidNet(r, []int{5, 4}, 1.3)
	inputs := randomInputs(r, 2, 6)
	perLayer := []int{1, 2}
	for _, m := range Models() {
		if !m.Deterministic {
			continue
		}
		inj, err := m.New(Params{C: 0.8, Value: 0.7, Bits: 8, Bit: 6, Net: n})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		for _, prune := range []bool{false, true} {
			w, err := NewWorstCase(n, perLayer, inputs, WorstCaseOptions{
				Injector: inj, Prune: prune, Sequential: true,
			})
			if err != nil {
				t.Fatalf("%s: %v", m.Name, err)
			}
			st := NewSearchState()
			if err := w.Search(context.Background(), 0, w.Total(), &st); err != nil {
				t.Fatalf("%s: %v", m.Name, err)
			}
			want := treeOracle(t, n, w, inj, inputs)
			assertStatesEqual(t, m.Name, st, want)
		}
	}
}

// TestTreeStochasticTwinSeeded: with faults confined to the deepest
// faulty layer and a sequential walk, the tree engine consumes its
// random stream in exactly the scalar oracle's order, so twin-seeded
// injectors must agree bit-for-bit.
func TestTreeStochasticTwinSeeded(t *testing.T) {
	r := rng.New(44)
	n := randomSigmoidNet(r, []int{5, 4}, 1)
	inputs := randomInputs(r, 2, 4)
	perLayer := []int{0, 2}
	for _, name := range []string{"intermittent", "byzantine-random", "noise"} {
		m, ok := Lookup(name)
		if !ok {
			t.Fatalf("model %q not registered", name)
		}
		if m.Deterministic {
			t.Fatalf("model %q unexpectedly deterministic", name)
		}
		const seed = 77
		injTree, err := m.New(Params{C: 0.6, Prob: 0.4, R: rng.New(seed)})
		if err != nil {
			t.Fatal(err)
		}
		w, err := NewWorstCase(n, perLayer, inputs, WorstCaseOptions{
			Injector: injTree, Sequential: true, // no pruning: stochastic
		})
		if err != nil {
			t.Fatal(err)
		}
		st := NewSearchState()
		if err := w.Search(context.Background(), 0, w.Total(), &st); err != nil {
			t.Fatal(err)
		}
		injOracle, err := m.New(Params{C: 0.6, Prob: 0.4, R: rng.New(seed)})
		if err != nil {
			t.Fatal(err)
		}
		want := treeOracle(t, n, w, injOracle, inputs)
		assertStatesEqual(t, name, st, want)
	}
}

// symmetricNet has four indistinguishable hidden neurons, so every
// single-crash configuration attains exactly the same error — the tie
// case that exercises first-attaining semantics.
func symmetricNet() *nn.Network {
	row := []float64{0.5, -0.25}
	return &nn.Network{
		InputDim: 2,
		Act:      activation.NewSigmoid(1),
		Hidden:   []*tensor.Matrix{tensor.FromRows([][]float64{row, row, row, row})},
		Output:   []float64{0.8, 0.8, 0.8, 0.8},
	}
}

// TestTreeSearchSplitMerge: sharding at arbitrary boundaries plus the
// flat-order Merge reduction must reproduce the sequential result,
// including the smallest-index winner under exact ties.
func TestTreeSearchSplitMerge(t *testing.T) {
	n := symmetricNet()
	inputs := [][]float64{{0.2, 0.7}, {0.9, 0.1}, {0.5, 0.5}}
	w, err := NewWorstCase(n, []int{1}, inputs, WorstCaseOptions{Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	full := NewSearchState()
	if err := w.RunRange(context.Background(), 0, w.Total(), &full); err != nil {
		t.Fatal(err)
	}
	if full.WorstFlat != 0 {
		t.Fatalf("tie must record the first configuration, got flat %d", full.WorstFlat)
	}
	if !reflect.DeepEqual(full.WorstPlan, []NeuronFault{{Layer: 1, Index: 0}}) {
		t.Fatalf("tie plan %v, want neuron 0", full.WorstPlan)
	}
	// Ties are never pruned: all four leaves must be visited.
	if full.Visited != w.Total() || full.Pruned != 0 {
		t.Fatalf("tied leaves were pruned: visited %d, pruned %d", full.Visited, full.Pruned)
	}
	for split := int64(1); split < w.Total(); split++ {
		a, b := NewSearchState(), NewSearchState()
		if err := w.RunRange(context.Background(), 0, split, &a); err != nil {
			t.Fatal(err)
		}
		if err := w.RunRange(context.Background(), split, w.Total(), &b); err != nil {
			t.Fatal(err)
		}
		a.Merge(b)
		assertStatesEqual(t, "split merge", a, full)
		if a.Visited != full.Visited {
			t.Fatalf("split at %d visited %d, want %d", split, a.Visited, full.Visited)
		}
	}
	// The parallel Search must agree too.
	par := NewSearchState()
	if err := w.Search(context.Background(), 0, w.Total(), &par); err != nil {
		t.Fatal(err)
	}
	assertStatesEqual(t, "parallel search", par, full)
}

// TestFlatMergeFirstAttaining is the regression for the cross-worker
// reduction bug: with equal-error configurations straddling a worker
// shard boundary, the flat engine's final merge must keep the EARLIEST
// shard's plan (the old `>=` let the last shard win).
func TestFlatMergeFirstAttaining(t *testing.T) {
	prev := runtime.GOMAXPROCS(4) // 4 workers, 4 configs -> 1 config per shard
	defer runtime.GOMAXPROCS(prev)
	n := symmetricNet()
	inputs := [][]float64{{0.2, 0.7}, {0.9, 0.1}}
	res, err := ExhaustiveWorstCrashFlat(n, []int{1}, inputs, 1000)
	if err != nil {
		t.Fatal(err)
	}
	want := []NeuronFault{{Layer: 1, Index: 0}}
	if !reflect.DeepEqual(res.WorstPlan.Neurons, want) {
		t.Fatalf("flat merge picked %v, want first-attaining %v", res.WorstPlan.Neurons, want)
	}
}

// TestWorstCaseErrors: malformed distributions error instead of
// panicking on every entry point reachable from serve.
func TestWorstCaseErrors(t *testing.T) {
	r := rng.New(45)
	n := randomSigmoidNet(r, []int{4, 3}, 1)
	inputs := randomInputs(r, 2, 2)
	if _, err := NewWorstCase(n, []int{1}, inputs, WorstCaseOptions{}); err == nil {
		t.Fatal("short perLayer must error")
	}
	if _, err := NewWorstCase(n, []int{1, 9}, inputs, WorstCaseOptions{}); err == nil {
		t.Fatal("out-of-range fault count must error")
	}
	if _, err := ExhaustiveWorstCrash(n, []int{1, 1, 1}, inputs, 1000); err == nil {
		t.Fatal("ExhaustiveWorstCrash must error on bad perLayer length")
	}
	if _, err := ExhaustiveWorstCrashFlat(n, []int{1}, inputs, 1000); err == nil {
		t.Fatal("ExhaustiveWorstCrashFlat must error on bad perLayer length")
	}
}

// TestWorstCaseContextCancel: a cancelled walk reports the context
// error instead of a partial result.
func TestWorstCaseContextCancel(t *testing.T) {
	r := rng.New(46)
	n := randomSigmoidNet(r, []int{8, 8}, 1)
	inputs := randomInputs(r, 2, 4)
	w, err := NewWorstCase(n, []int{2, 2}, inputs, WorstCaseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := w.Run(ctx); err != context.Canceled {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
}

// TestTreeDFSAllocFree pins the walker's steady state at zero
// allocations per full sweep (recording suppressed by an infinite
// floor; pruning off so every leaf is actually evaluated).
func TestTreeDFSAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under -race")
	}
	r := rng.New(47)
	n := randomSigmoidNet(r, []int{6, 5}, 1)
	inputs := randomInputs(r, 2, 3)
	w, err := NewWorstCase(n, []int{1, 2}, inputs, WorstCaseOptions{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	warm := NewSearchState()
	if err := w.RunRange(context.Background(), 0, w.Total(), &warm); err != nil {
		t.Fatal(err)
	}
	st := NewSearchState()
	st.WorstError = math.Inf(1)
	avg := testing.AllocsPerRun(20, func() {
		if err := w.RunRange(context.Background(), 0, w.Total(), &st); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("DFS steady state allocates %v allocs/op, want 0", avg)
	}
}
