package fault

import (
	"fmt"
	"math"

	"repro/internal/nn"
)

// BatchLanes is the default lane count of the batched plan engine: 8
// damaged sweeps per matrix pass (two quad-lane kernel groups), enough
// to amortise the matrix traffic that bounds the scalar engine without
// outgrowing L1 with lane state.
const BatchLanes = 8

// BatchPlan evaluates P compiled plans against one model as a single
// multi-lane sweep. The clean prefix is shared: every lane starts from
// the input's precomputed clean trace at its plan's first divergent
// layer, and from there the damaged suffixes advance together — each
// layer's weight matrix streams from cache once per batch of lanes
// instead of once per plan (tensor.MulVecLanesAddTo), which is where
// the structural speedup over the one-at-a-time engine comes from.
//
// Per lane the arithmetic replays CompiledPlan.ErrorOnTrace exactly
// (same kernels, same accumulation order, same fault-application
// order), so batched float64 results are bit-identical to the
// one-at-a-time oracle for every injector.
//
// A BatchPlan is NOT safe for concurrent use: it owns its lane scratch.
// Give each worker its own (the sharded sweeps in measure.go and
// serve's Monte Carlo do).
type BatchPlan struct {
	net   nn.Model
	lanes []*CompiledPlan
	// dagFallback marks arbitrary-topology models: the multi-lane
	// layered sweep assumes single-source levels, so DAG models evaluate
	// lane by lane through the level-scheduled scalar engine instead
	// (same results, no lane fusion).
	dagFallback bool

	active int
	sc     nn.BatchScratch
	// xs/dsts are the per-layer kernel views of the active lanes;
	// laneOf maps a kernel slot back to its lane; trs holds each lane's
	// clean trace for the current evaluation.
	xs     [][]float64
	dsts   [][]float64
	laneOf []int
	trs    []*nn.Trace
}

// CompileBatch builds a batched evaluator with the given lane capacity
// (0 or negative selects BatchLanes). Load plans with Reset or
// ResetShared before evaluating.
func CompileBatch(m nn.Model, lanes int) *BatchPlan {
	if lanes <= 0 {
		lanes = BatchLanes
	}
	bp := &BatchPlan{
		net:    m,
		lanes:  make([]*CompiledPlan, lanes),
		xs:     make([][]float64, lanes),
		dsts:   make([][]float64, lanes),
		laneOf: make([]int, lanes),
		trs:    make([]*nn.Trace, lanes),
	}
	for p := range bp.lanes {
		bp.lanes[p] = Compile(m, Plan{})
	}
	if _, ok := m.(nn.DAGModel); ok {
		bp.dagFallback = true
		return bp
	}
	bp.sc.Ensure(m, lanes)
	return bp
}

// Lanes returns the lane capacity.
func (bp *BatchPlan) Lanes() int { return len(bp.lanes) }

// Reset re-indexes the lanes for a new group of plans (len(plans) may
// be anything up to the capacity), reusing every index buffer — the
// allocation-free way to sweep many plan groups, mirroring
// CompiledPlan.Reset lane by lane.
func (bp *BatchPlan) Reset(plans []Plan) {
	if len(plans) > len(bp.lanes) {
		panic(fmt.Sprintf("fault: BatchPlan.Reset with %d plans for %d lanes", len(plans), len(bp.lanes)))
	}
	for p, plan := range plans {
		bp.lanes[p].Reset(plan)
	}
	bp.active = len(plans)
}

// ResetShared loads the same plan into n lanes — the input-batching
// configuration: one plan evaluated against n different traces per
// call (MaxError's axis, where the plan is fixed and the inputs vary).
func (bp *BatchPlan) ResetShared(plan Plan, n int) {
	if n > len(bp.lanes) {
		panic(fmt.Sprintf("fault: BatchPlan.ResetShared with %d lanes of %d", n, len(bp.lanes)))
	}
	for p := 0; p < n; p++ {
		bp.lanes[p].Reset(plan)
	}
	bp.active = n
}

// ErrorsOnTrace evaluates every loaded lane against one clean trace:
// out[p] receives |Fneu - Ffail_p| on tr.Input, bit-identical to
// lanes[p].ErrorOnTrace(injs[p], tr). This is the plan-batching axis
// (exhaustive search, Monte Carlo: many plans, one input at a time).
func (bp *BatchPlan) ErrorsOnTrace(injs []Injector, tr *nn.Trace, out []float64) {
	for p := 0; p < bp.active; p++ {
		bp.trs[p] = tr
	}
	bp.evalLanes(injs, out)
}

// ErrorsOnTraces evaluates lane p against trs[p]: the general form
// (per-lane plan AND per-lane input). len(injs), len(trs) and len(out)
// must cover the loaded lanes.
func (bp *BatchPlan) ErrorsOnTraces(injs []Injector, trs []*nn.Trace, out []float64) {
	copy(bp.trs, trs[:bp.active])
	bp.evalLanes(injs, out)
}

// evalLanes is the fused multi-lane damaged sweep over bp.trs; out[p]
// receives lane p's absolute error.
func (bp *BatchPlan) evalLanes(injs []Injector, out []float64) {
	n := bp.active
	if len(injs) < n || len(out) < n {
		panic("fault: BatchPlan evaluation with short injector or output slice")
	}
	if bp.dagFallback {
		for p := 0; p < n; p++ {
			out[p] = bp.lanes[p].ErrorOnTrace(injs[p], bp.trs[p])
		}
		return
	}
	m := bp.net
	L := m.NumLayers()
	act := m.Activation()
	bp.sc.Ensure(m, len(bp.lanes))

	minD := L + 1
	for p := 0; p < n; p++ {
		if d := bp.lanes[p].diverge; d < minD {
			minD = d
		}
	}

	for l := minD; l <= L; l++ {
		// Gather the lanes live at this layer and their inputs: the
		// trace prefix at the divergence layer, the lane's own previous
		// buffer after it.
		k := 0
		lanebufs := bp.sc.Layer(l)
		for p := 0; p < n; p++ {
			cp := bp.lanes[p]
			d := cp.diverge
			if l < d {
				continue
			}
			if l == d {
				tr := bp.trs[p]
				if len(cp.synapsesAt[l]) == 0 {
					// Divergence layer without synapse faults: the
					// received sums equal the clean ones, so the lane's
					// outputs are bitwise the trace's — copy and
					// override here instead of joining the kernel
					// batch (same fast path as the scalar engine).
					dst := lanebufs[p]
					copy(dst, tr.Outputs[l-1])
					if _, isCrash := injs[p].(Crash); isCrash {
						for _, f := range cp.neuronsAt[l] {
							dst[f.Index] = 0
						}
					} else {
						for _, f := range cp.neuronsAt[l] {
							dst[f.Index] = injs[p].NeuronValue(f, tr.Outputs[l-1][f.Index])
						}
					}
					continue
				}
				if l == 1 {
					bp.xs[k] = tr.Input
				} else {
					bp.xs[k] = tr.Outputs[l-2]
				}
			} else {
				bp.xs[k] = bp.sc.Layer(l - 1)[p]
			}
			bp.dsts[k] = lanebufs[p]
			bp.laneOf[k] = p
			k++
		}
		// One sweep over W^{(l)} serves every live lane.
		nn.LayerSumsLanesModel(m, l, bp.dsts[:k], bp.xs[:k])
		// Fault application per lane, in the exact order of the
		// one-at-a-time engine: synapse deltas on the received sums,
		// activation around the overridden rows, then neuron overrides
		// reading nominals off the clean trace.
		for s := 0; s < k; s++ {
			p := bp.laneOf[s]
			cp := bp.lanes[p]
			inj := injs[p]
			sF := bp.dsts[s]
			yPrev := bp.xs[s]
			for _, f := range cp.synapsesAt[l] {
				transmitted := m.Weight(l, f.To, f.From) * yPrev[f.From]
				sF[f.To] += inj.SynapseDelta(f, transmitted)
			}
			evalSkip(act, sF, cp.overridden[l])
			if _, isCrash := inj.(Crash); isCrash {
				for _, f := range cp.neuronsAt[l] {
					sF[f.Index] = 0
				}
			} else {
				tr := bp.trs[p]
				for _, f := range cp.neuronsAt[l] {
					sF[f.Index] = inj.NeuronValue(f, tr.Outputs[l-1][f.Index])
				}
			}
		}
	}

	for p := 0; p < n; p++ {
		cp := bp.lanes[p]
		tr := bp.trs[p]
		yF := tr.Outputs[L-1]
		if cp.diverge <= L {
			yF = bp.sc.Layer(L)[p]
		}
		faulted := m.OutputSum(yF)
		for _, f := range cp.synapsesAt[L+1] {
			transmitted := m.Weight(L+1, f.To, f.From) * yF[f.From]
			faulted += injs[p].SynapseDelta(f, transmitted)
		}
		out[p] = math.Abs(tr.Output - faulted)
	}
}
