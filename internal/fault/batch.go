package fault

import (
	"fmt"
	"math"

	"repro/internal/activation"
	"repro/internal/nn"
)

// BatchLanes is the default lane count of the batched plan engine: 8
// damaged sweeps per matrix pass (two quad-lane kernel groups), enough
// to amortise the matrix traffic that bounds the scalar engine without
// outgrowing L1 with lane state.
const BatchLanes = 8

// BatchPlan evaluates P compiled plans against one model as a single
// multi-lane sweep. The clean prefix is shared: every lane starts from
// the input's precomputed clean trace at its plan's first divergent
// layer, and from there the damaged suffixes advance together — each
// layer's weight matrix streams from cache once per batch of lanes
// instead of once per plan (tensor.MulVecLanesAddTo), which is where
// the structural speedup over the one-at-a-time engine comes from.
//
// Arbitrary-topology models run the same fusion level-scheduled: each
// lane carries a per-level pointer array over the virtual source
// concatenation — levels off the lane's divergence frontier alias the
// clean trace, levels on it point at the lane's scratch — and every
// frontier level gathers its lanes through the multi-lane CSR kernel
// (tensor.CSR.GatherLanesAddTo) in one pass over the level's edge
// list. A divergent level with no synapse faults and clean sources
// copies the trace outputs and overrides the faulty neurons, the DAG
// form of the layered divergence-layer fast path.
//
// Per lane the arithmetic replays CompiledPlan.ErrorOnTrace exactly
// (same kernels, same accumulation order, same fault-application
// order), so batched float64 results are bit-identical to the
// one-at-a-time oracle for every injector.
//
// A BatchPlan is NOT safe for concurrent use: it owns its lane scratch.
// Give each worker its own (the sharded sweeps in measure.go and
// serve's Monte Carlo do).
type BatchPlan struct {
	net   nn.Model
	dag   nn.DAGModel // non-nil for arbitrary-topology models
	lanes []*CompiledPlan

	active int
	sc     nn.BatchScratch
	// xs/dsts are the per-layer kernel views of the active lanes;
	// laneOf maps a kernel slot back to its lane; trs holds each lane's
	// clean trace for the current evaluation.
	xs     [][]float64
	dsts   [][]float64
	laneOf []int
	trs    []*nn.Trace
	// levels[p][v] is lane p's pointer to level v's outputs during a DAG
	// sweep (entry 0 the input; clean levels alias the lane's trace,
	// frontier levels the lane's scratch buffer); srcs is the kernel's
	// per-slot view of the live lanes' level arrays.
	levels [][][]float64
	srcs   [][][]float64
}

// CompileBatch builds a batched evaluator with the given lane capacity
// (0 or negative selects BatchLanes). Load plans with Reset or
// ResetShared before evaluating.
func CompileBatch(m nn.Model, lanes int) *BatchPlan {
	if lanes <= 0 {
		lanes = BatchLanes
	}
	bp := &BatchPlan{
		net:    m,
		lanes:  make([]*CompiledPlan, lanes),
		xs:     make([][]float64, lanes),
		dsts:   make([][]float64, lanes),
		laneOf: make([]int, lanes),
		trs:    make([]*nn.Trace, lanes),
	}
	for p := range bp.lanes {
		bp.lanes[p] = Compile(m, Plan{})
	}
	bp.sc.Ensure(m, lanes)
	if dm, ok := m.(nn.DAGModel); ok {
		bp.dag = dm
		L := m.NumLayers()
		bp.levels = make([][][]float64, lanes)
		for p := range bp.levels {
			bp.levels[p] = make([][]float64, L+1)
		}
		bp.srcs = make([][][]float64, lanes)
	}
	return bp
}

// Lanes returns the lane capacity.
func (bp *BatchPlan) Lanes() int { return len(bp.lanes) }

// Reset re-indexes the lanes for a new group of plans (len(plans) may
// be anything up to the capacity), reusing every index buffer — the
// allocation-free way to sweep many plan groups, mirroring
// CompiledPlan.Reset lane by lane.
func (bp *BatchPlan) Reset(plans []Plan) {
	if len(plans) > len(bp.lanes) {
		panic(fmt.Sprintf("fault: BatchPlan.Reset with %d plans for %d lanes", len(plans), len(bp.lanes)))
	}
	for p, plan := range plans {
		bp.lanes[p].Reset(plan)
	}
	bp.active = len(plans)
}

// ResetShared loads the same plan into n lanes — the input-batching
// configuration: one plan evaluated against n different traces per
// call (MaxError's axis, where the plan is fixed and the inputs vary).
func (bp *BatchPlan) ResetShared(plan Plan, n int) {
	if n > len(bp.lanes) {
		panic(fmt.Sprintf("fault: BatchPlan.ResetShared with %d lanes of %d", n, len(bp.lanes)))
	}
	for p := 0; p < n; p++ {
		bp.lanes[p].Reset(plan)
	}
	bp.active = n
}

// ErrorsOnTrace evaluates every loaded lane against one clean trace:
// out[p] receives |Fneu - Ffail_p| on tr.Input, bit-identical to
// lanes[p].ErrorOnTrace(injs[p], tr). This is the plan-batching axis
// (exhaustive search, Monte Carlo: many plans, one input at a time).
func (bp *BatchPlan) ErrorsOnTrace(injs []Injector, tr *nn.Trace, out []float64) {
	for p := 0; p < bp.active; p++ {
		bp.trs[p] = tr
	}
	bp.evalLanes(injs, out)
}

// ErrorsOnTraces evaluates lane p against trs[p]: the general form
// (per-lane plan AND per-lane input). len(injs), len(trs) and len(out)
// must cover the loaded lanes.
func (bp *BatchPlan) ErrorsOnTraces(injs []Injector, trs []*nn.Trace, out []float64) {
	copy(bp.trs, trs[:bp.active])
	bp.evalLanes(injs, out)
}

// evalLanes is the fused multi-lane damaged sweep over bp.trs; out[p]
// receives lane p's absolute error.
func (bp *BatchPlan) evalLanes(injs []Injector, out []float64) {
	n := bp.active
	if len(injs) < n || len(out) < n {
		panic("fault: BatchPlan evaluation with short injector or output slice")
	}
	if bp.dag != nil {
		bp.evalLanesDAG(injs, out)
		return
	}
	m := bp.net
	L := m.NumLayers()
	act := m.Activation()
	bp.sc.Ensure(m, len(bp.lanes))

	minD := L + 1
	for p := 0; p < n; p++ {
		if d := bp.lanes[p].diverge; d < minD {
			minD = d
		}
	}

	for l := minD; l <= L; l++ {
		// Gather the lanes live at this layer and their inputs: the
		// trace prefix at the divergence layer, the lane's own previous
		// buffer after it.
		k := 0
		lanebufs := bp.sc.Layer(l)
		for p := 0; p < n; p++ {
			cp := bp.lanes[p]
			d := cp.diverge
			if l < d {
				continue
			}
			if l == d {
				tr := bp.trs[p]
				if len(cp.synapsesAt[l]) == 0 {
					// Divergence layer without synapse faults: the
					// received sums equal the clean ones, so the lane's
					// outputs are bitwise the trace's — copy and
					// override here instead of joining the kernel
					// batch (same fast path as the scalar engine).
					dst := lanebufs[p]
					copy(dst, tr.Outputs[l-1])
					if _, isCrash := injs[p].(Crash); isCrash {
						for _, f := range cp.neuronsAt[l] {
							dst[f.Index] = 0
						}
					} else {
						for _, f := range cp.neuronsAt[l] {
							dst[f.Index] = injs[p].NeuronValue(f, tr.Outputs[l-1][f.Index])
						}
					}
					continue
				}
				if l == 1 {
					bp.xs[k] = tr.Input
				} else {
					bp.xs[k] = tr.Outputs[l-2]
				}
			} else {
				bp.xs[k] = bp.sc.Layer(l - 1)[p]
			}
			bp.dsts[k] = lanebufs[p]
			bp.laneOf[k] = p
			k++
		}
		// One sweep over W^{(l)} serves every live lane.
		nn.LayerSumsLanesModel(m, l, bp.dsts[:k], bp.xs[:k])
		// Fault application per lane, in the exact order of the
		// one-at-a-time engine: synapse deltas on the received sums,
		// activation around the overridden rows, then neuron overrides
		// reading nominals off the clean trace.
		for s := 0; s < k; s++ {
			p := bp.laneOf[s]
			cp := bp.lanes[p]
			inj := injs[p]
			sF := bp.dsts[s]
			yPrev := bp.xs[s]
			for _, f := range cp.synapsesAt[l] {
				transmitted := m.Weight(l, f.To, f.From) * yPrev[f.From]
				sF[f.To] += inj.SynapseDelta(f, transmitted)
			}
			evalSkip(act, sF, cp.overridden[l])
			if _, isCrash := inj.(Crash); isCrash {
				for _, f := range cp.neuronsAt[l] {
					sF[f.Index] = 0
				}
			} else {
				tr := bp.trs[p]
				for _, f := range cp.neuronsAt[l] {
					sF[f.Index] = inj.NeuronValue(f, tr.Outputs[l-1][f.Index])
				}
			}
		}
	}

	for p := 0; p < n; p++ {
		cp := bp.lanes[p]
		tr := bp.trs[p]
		yF := tr.Outputs[L-1]
		if cp.diverge <= L {
			yF = bp.sc.Layer(L)[p]
		}
		faulted := m.OutputSum(yF)
		for _, f := range cp.synapsesAt[L+1] {
			transmitted := m.Weight(L+1, f.To, f.From) * yF[f.From]
			faulted += injs[p].SynapseDelta(f, transmitted)
		}
		out[p] = math.Abs(tr.Output - faulted)
	}
}

// evalLanesDAG is the level-scheduled form of evalLanes for
// arbitrary-topology models. Each lane owns a per-level pointer array:
// levels off the lane's divergence frontier alias the clean trace and
// cost nothing, frontier levels evaluate into the lane's scratch — and
// all lanes live at a level gather together through the multi-lane
// sparse kernel, one pass over the level's edge list per lane pair.
// Per lane the arithmetic replays evalDAG's trace path exactly, so
// results stay bit-identical to the scalar engine for every injector.
func (bp *BatchPlan) evalLanesDAG(injs []Injector, out []float64) {
	m := bp.dag
	L := m.NumLayers()
	act := m.Activation()
	bp.sc.Ensure(bp.net, len(bp.lanes))
	n := bp.active

	// Wire each lane's level pointers to its clean trace; frontier
	// levels are repointed at scratch as the sweep computes them.
	minD := L + 1
	for p := 0; p < n; p++ {
		tr := bp.trs[p]
		ys := bp.levels[p]
		ys[0] = tr.Input
		for l := 1; l <= L; l++ {
			ys[l] = tr.Outputs[l-1]
		}
		if d := bp.lanes[p].diverge; d < minD {
			minD = d
		}
	}

	for l := minD; l <= L; l++ {
		k := 0
		lanebufs := bp.sc.Layer(l)
		for p := 0; p < n; p++ {
			cp := bp.lanes[p]
			if !cp.frontier[l] {
				continue
			}
			if len(cp.synapsesAt[l]) == 0 && !cp.srcDirty[l] {
				// Divergent level with clean sources and no synapse
				// faults: the received sums equal the clean ones, so
				// non-overridden outputs are bitwise the trace's — copy
				// and override instead of joining the kernel batch (the
				// DAG form of the layered divergence-layer fast path).
				tr := bp.trs[p]
				dst := lanebufs[p]
				copy(dst, tr.Outputs[l-1])
				_, isCrash := injs[p].(Crash)
				cp.overrideNeurons(injs[p], isCrash, l, dst, tr.Outputs[l-1])
				bp.levels[p][l] = dst
				continue
			}
			bp.dsts[k] = lanebufs[p]
			bp.srcs[k] = bp.levels[p]
			bp.laneOf[k] = p
			k++
		}
		if k == 0 {
			continue
		}
		// One sweep over the level's edge list serves every live lane.
		nn.LevelSumsLanesModel(m, l, bp.dsts[:k], bp.srcs[:k])
		// Fault application per lane, in the exact order of the scalar
		// level-scheduled engine: synapse deltas on the received sums
		// (in-edge ordinal addressing — a fault can sit on a skip edge),
		// activation, then neuron overrides reading nominals off the
		// clean trace. Overridden rows are computed and then overwritten,
		// which leaves the same final values as the scalar skip lists.
		for s := 0; s < k; s++ {
			p := bp.laneOf[s]
			cp := bp.lanes[p]
			inj := injs[p]
			sF := bp.dsts[s]
			ys := bp.levels[p]
			for _, f := range cp.synapsesAt[l] {
				sl, si, w := m.InEdge(l, f.To, f.From)
				sF[f.To] += inj.SynapseDelta(f, w*ys[sl][si])
			}
			activation.Eval(act, sF, sF)
			_, isCrash := inj.(Crash)
			cp.overrideNeurons(inj, isCrash, l, sF, bp.trs[p].Outputs[l-1])
			ys[l] = sF
		}
	}

	for p := 0; p < n; p++ {
		cp := bp.lanes[p]
		ys := bp.levels[p]
		faulted := m.OutputSumLevels(ys)
		for _, f := range cp.synapsesAt[L+1] {
			sl, si, w := m.InEdge(L+1, f.To, f.From)
			faulted += injs[p].SynapseDelta(f, w*ys[sl][si])
		}
		out[p] = math.Abs(bp.trs[p].Output - faulted)
	}
}
