package fault

import (
	"math"
	"testing"

	"repro/internal/activation"
	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// twoLayerNet: 2 inputs -> 2 hidden (identity) -> output [2, -3].
func twoLayerNet() *nn.Network {
	return &nn.Network{
		InputDim: 2,
		Act:      activation.Identity{},
		Hidden:   []*tensor.Matrix{tensor.FromRows([][]float64{{1, -1}, {0.5, 0.5}})},
		Output:   []float64{2, -3},
	}
}

func randomSigmoidNet(r *rng.Rand, widths []int, k float64) *nn.Network {
	return nn.NewRandom(r, nn.Config{
		InputDim: 2,
		Widths:   widths,
		Act:      activation.NewSigmoid(k),
	}, 1)
}

func randomInputs(r *rng.Rand, d, n int) [][]float64 {
	xs := make([][]float64, n)
	for i := range xs {
		xs[i] = make([]float64, d)
		r.Floats(xs[i], 0, 1)
	}
	return xs
}

func TestCrashForwardHandComputed(t *testing.T) {
	n := twoLayerNet()
	x := []float64{1, 0}
	// Nominal: s = (1, 0.5); out = 2 - 1.5 = 0.5.
	// Crash neuron 0 of layer 1: out = 0 - 3*0.5 = -1.5.
	p := Plan{Neurons: []NeuronFault{{Layer: 1, Index: 0}}}
	got := Forward(n, p, Crash{}, x)
	if math.Abs(got+1.5) > 1e-15 {
		t.Fatalf("crashed forward = %v, want -1.5", got)
	}
	if e := ErrorOn(n, p, Crash{}, x); math.Abs(e-2.0) > 1e-15 {
		t.Fatalf("ErrorOn = %v, want 2.0", e)
	}
}

func TestCrashAllNeurons(t *testing.T) {
	n := twoLayerNet()
	p := Plan{Neurons: []NeuronFault{{1, 0}, {1, 1}}}
	got := Forward(n, p, Crash{}, []float64{0.3, 0.9})
	if got != 0 {
		t.Fatalf("all-crashed output = %v, want 0 (no bias)", got)
	}
}

func TestByzantineDeviationSemantics(t *testing.T) {
	n := twoLayerNet()
	x := []float64{1, 0}
	p := Plan{Neurons: []NeuronFault{{Layer: 1, Index: 1}}}
	inj := Byzantine{C: 2, Sem: core.DeviationCap}
	// Neuron 1 nominal 0.5 -> 2.5; out = 2*1 - 3*2.5 = -5.5.
	got := Forward(n, p, inj, x)
	if math.Abs(got+5.5) > 1e-15 {
		t.Fatalf("byzantine forward = %v, want -5.5", got)
	}
	// Negative sign: 0.5 - 2 = -1.5; out = 2 + 4.5 = 6.5.
	inj.Sign = map[NeuronFault]float64{{Layer: 1, Index: 1}: -1}
	got = Forward(n, p, inj, x)
	if math.Abs(got-6.5) > 1e-15 {
		t.Fatalf("byzantine negative forward = %v, want 6.5", got)
	}
}

func TestByzantineTransmissionSemantics(t *testing.T) {
	n := twoLayerNet()
	x := []float64{1, 0}
	p := Plan{Neurons: []NeuronFault{{Layer: 1, Index: 0}}}
	inj := Byzantine{C: 7, Sem: core.TransmissionCap}
	// Neuron emits exactly +7 regardless of nominal: out = 14 - 1.5 = 12.5.
	got := Forward(n, p, inj, x)
	if math.Abs(got-12.5) > 1e-15 {
		t.Fatalf("transmission-cap forward = %v, want 12.5", got)
	}
}

func TestSynapseCrashEqualsZeroedWeight(t *testing.T) {
	r := rng.New(1)
	n := randomSigmoidNet(r, []int{4, 3}, 1)
	sf := SynapseFault{Layer: 2, To: 1, From: 2}
	p := Plan{Synapses: []SynapseFault{sf}}
	inputs := randomInputs(r, 2, 20)

	zeroed := n.Clone()
	zeroed.Hidden[1].Set(1, 2, 0)

	for _, x := range inputs {
		a := Forward(n, p, Crash{}, x)
		b := zeroed.Forward(x)
		if math.Abs(a-b) > 1e-12 {
			t.Fatalf("crashed synapse %v != zeroed weight %v", a, b)
		}
	}
}

func TestOutputSynapseCrash(t *testing.T) {
	n := twoLayerNet()
	x := []float64{1, 0}
	p := Plan{Synapses: []SynapseFault{{Layer: 2, To: 0, From: 1}}}
	// Output synapse from hidden neuron 1 stops: out = 2*1 = 2.
	got := Forward(n, p, Crash{}, x)
	if math.Abs(got-2) > 1e-15 {
		t.Fatalf("output synapse crash = %v, want 2", got)
	}
}

func TestPlanValidate(t *testing.T) {
	n := twoLayerNet()
	good := Plan{
		Neurons:  []NeuronFault{{1, 0}},
		Synapses: []SynapseFault{{2, 0, 1}},
	}
	if err := good.Validate(n); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	bad := []Plan{
		{Neurons: []NeuronFault{{2, 0}}},                 // layer out of range
		{Neurons: []NeuronFault{{1, 5}}},                 // index out of range
		{Neurons: []NeuronFault{{1, 0}, {1, 0}}},         // duplicate
		{Synapses: []SynapseFault{{3, 0, 0}}},            // layer out of range
		{Synapses: []SynapseFault{{1, 0, 7}}},            // sender out of range
		{Synapses: []SynapseFault{{2, 0, 0}, {2, 0, 0}}}, // duplicate
	}
	for i, p := range bad {
		if p.Validate(n) == nil {
			t.Fatalf("bad plan %d accepted", i)
		}
	}
}

func TestPerLayerDistributions(t *testing.T) {
	p := Plan{
		Neurons:  []NeuronFault{{1, 0}, {1, 1}, {3, 2}},
		Synapses: []SynapseFault{{4, 0, 1}, {1, 0, 0}},
	}
	nl := p.PerLayerNeurons(3)
	if nl[0] != 2 || nl[1] != 0 || nl[2] != 1 {
		t.Fatalf("PerLayerNeurons = %v", nl)
	}
	sl := p.PerLayerSynapses(3)
	if sl[0] != 1 || sl[3] != 1 {
		t.Fatalf("PerLayerSynapses = %v", sl)
	}
}

func TestRandomNeuronPlanCounts(t *testing.T) {
	r := rng.New(2)
	n := randomSigmoidNet(r, []int{5, 4, 3}, 1)
	p := RandomNeuronPlan(r, n, []int{2, 0, 3})
	if err := p.Validate(n); err != nil {
		t.Fatal(err)
	}
	d := p.PerLayerNeurons(3)
	if d[0] != 2 || d[1] != 0 || d[2] != 3 {
		t.Fatalf("distribution = %v", d)
	}
}

func TestAdversarialPlanPicksTopWeights(t *testing.T) {
	n := twoLayerNet() // output weights [2, -3]: neuron 1 has larger |w|
	p := AdversarialNeuronPlan(n, []int{1})
	if len(p.Neurons) != 1 || p.Neurons[0].Index != 1 {
		t.Fatalf("adversary picked %v, want neuron 1", p.Neurons)
	}
}

func TestAdversarialPlanHiddenLayerScoring(t *testing.T) {
	// Three hidden neurons; neuron 2 has the largest outgoing weight into
	// layer 2.
	n := &nn.Network{
		InputDim: 1,
		Act:      activation.Identity{},
		Hidden: []*tensor.Matrix{
			tensor.FromRows([][]float64{{1}, {1}, {1}}),
			tensor.FromRows([][]float64{{0.1, 0.2, 5.0}}),
		},
		Output: []float64{1},
	}
	p := AdversarialNeuronPlan(n, []int{1, 0})
	if len(p.Neurons) != 1 || p.Neurons[0].Layer != 1 || p.Neurons[0].Index != 2 {
		t.Fatalf("adversary picked %v, want layer-1 neuron 2", p.Neurons)
	}
}

func TestRandomSynapsePlan(t *testing.T) {
	r := rng.New(3)
	n := randomSigmoidNet(r, []int{4, 3}, 1)
	p := RandomSynapsePlan(r, n, []int{2, 3, 1})
	if err := p.Validate(n); err != nil {
		t.Fatal(err)
	}
	d := p.PerLayerSynapses(2)
	if d[0] != 2 || d[1] != 3 || d[2] != 1 {
		t.Fatalf("synapse distribution = %v", d)
	}
}

func TestAdversarialSynapsePlanPicksLargest(t *testing.T) {
	n := twoLayerNet()
	p := AdversarialSynapsePlan(n, []int{0, 1})
	// Output weights are [2, -3]: the largest output synapse is from 1.
	if len(p.Synapses) != 1 || p.Synapses[0].From != 1 || p.Synapses[0].Layer != 2 {
		t.Fatalf("adversarial synapse = %v", p.Synapses)
	}
}

func TestMaxErrorParallelMatchesSeq(t *testing.T) {
	r := rng.New(4)
	n := randomSigmoidNet(r, []int{6, 5}, 1.5)
	p := RandomNeuronPlan(r, n, []int{2, 1})
	inputs := randomInputs(r, 2, 200)
	a := MaxError(n, p, Crash{}, inputs)
	b := MaxErrorSeq(n, p, Crash{}, inputs)
	if math.Abs(a-b) > 1e-15 {
		t.Fatalf("parallel %v != sequential %v", a, b)
	}
}

func TestWorstSignErrorDominatesFixedSigns(t *testing.T) {
	r := rng.New(5)
	n := randomSigmoidNet(r, []int{5, 4}, 1)
	p := RandomNeuronPlan(r, n, []int{2, 1})
	inputs := randomInputs(r, 2, 30)
	base := Byzantine{C: 0.5, Sem: core.DeviationCap}
	worst := WorstSignError(n, p, base, inputs)
	plain := MaxError(n, p, base, inputs)
	if worst < plain-1e-12 {
		t.Fatalf("worst-sign %v < all-positive %v", worst, plain)
	}
}

func TestWorstSignErrorRefusesHugePlans(t *testing.T) {
	r := rng.New(6)
	n := randomSigmoidNet(r, []int{20}, 1)
	p := RandomNeuronPlan(r, n, []int{17})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 17 sign bits")
		}
	}()
	WorstSignError(n, p, Byzantine{C: 1}, randomInputs(r, 2, 1))
}

func TestCombinationsEnumeratesAll(t *testing.T) {
	var got [][]int
	Combinations(5, 3, func(idx []int) {
		got = append(got, append([]int(nil), idx...))
	})
	if len(got) != 10 {
		t.Fatalf("C(5,3) enumerated %d combos, want 10", len(got))
	}
	seen := map[[3]int]bool{}
	for _, c := range got {
		if !(c[0] < c[1] && c[1] < c[2]) {
			t.Fatalf("combination not increasing: %v", c)
		}
		key := [3]int{c[0], c[1], c[2]}
		if seen[key] {
			t.Fatalf("duplicate combination %v", c)
		}
		seen[key] = true
	}
}

func TestCombinationsEdges(t *testing.T) {
	count := 0
	Combinations(4, 0, func(idx []int) { count++ })
	if count != 1 {
		t.Fatalf("C(4,0) enumerated %d times", count)
	}
	count = 0
	Combinations(4, 4, func(idx []int) { count++ })
	if count != 1 {
		t.Fatalf("C(4,4) enumerated %d times", count)
	}
}

func TestCountConfigurations(t *testing.T) {
	if got, err := CountConfigurations([]int{5, 4}, []int{2, 1}); err != nil || got != 40 {
		t.Fatalf("CountConfigurations = %d, %v, want C(5,2)*C(4,1) = 40", got, err)
	}
	if got, err := CountConfigurations([]int{3}, []int{0}); err != nil || got != 1 {
		t.Fatalf("zero faults should count 1 configuration, got %d, %v", got, err)
	}
	if got, err := CountConfigurations([]int{200, 200}, []int{100, 100}); err != nil || got != math.MaxInt64 {
		t.Fatalf("expected overflow sentinel, got %d, %v", got, err)
	}
	if _, err := CountConfigurations([]int{5, 4}, []int{1}); err == nil {
		t.Fatal("length mismatch must error, not panic")
	}
}

func TestExhaustiveWorstCrashBeatsRandom(t *testing.T) {
	r := rng.New(7)
	n := randomSigmoidNet(r, []int{6, 4}, 1)
	perLayer := []int{2, 1}
	inputs := randomInputs(r, 2, 15)
	res, err := ExhaustiveWorstCrash(n, perLayer, inputs, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	want, err := CountConfigurations(n.Widths(), perLayer)
	if err != nil || res.Configurations != want {
		t.Fatalf("configuration count mismatch: %d vs %d (%v)", res.Configurations, want, err)
	}
	if res.Visited+res.Pruned != res.Configurations {
		t.Fatalf("visited %d + pruned %d != %d configurations", res.Visited, res.Pruned, res.Configurations)
	}
	// The exhaustive worst case must dominate any sampled plan.
	for trial := 0; trial < 20; trial++ {
		p := RandomNeuronPlan(r, n, perLayer)
		e := MaxError(n, p, Crash{}, inputs)
		if e > res.WorstError+1e-12 {
			t.Fatalf("random plan error %v exceeds exhaustive worst %v", e, res.WorstError)
		}
	}
	// And it must be attained by its reported plan.
	e := MaxError(n, res.WorstPlan, Crash{}, inputs)
	if math.Abs(e-res.WorstError) > 1e-12 {
		t.Fatalf("reported plan attains %v, claimed %v", e, res.WorstError)
	}
}

func TestExhaustiveRefusesExplosion(t *testing.T) {
	r := rng.New(8)
	n := randomSigmoidNet(r, []int{30, 30}, 1)
	_, err := ExhaustiveWorstCrash(n, []int{15, 15}, randomInputs(r, 2, 1), 1000)
	if err == nil {
		t.Fatal("expected refusal for combinatorial explosion")
	}
}

func TestAdversarialBeatsAverageRandom(t *testing.T) {
	// The adversarial plan should be at least as damaging as the mean
	// random plan (it targets the heaviest weights).
	r := rng.New(9)
	n := randomSigmoidNet(r, []int{8}, 1)
	inputs := randomInputs(r, 2, 40)
	adv := MaxError(n, AdversarialNeuronPlan(n, []int{2}), Crash{}, inputs)
	sum := 0.0
	const trials = 30
	for i := 0; i < trials; i++ {
		sum += MaxError(n, RandomNeuronPlan(r, n, []int{2}), Crash{}, inputs)
	}
	if adv < sum/trials {
		t.Fatalf("adversarial %v below mean random %v", adv, sum/trials)
	}
}
