package fault

import (
	"math"
	"sort"

	"repro/internal/activation"
	"repro/internal/core"
	"repro/internal/nn"
)

// This file holds the arbitrary-topology variants of the tree-walk
// steps (tree.go dispatches here when the model is a non-layered
// DAGModel). The walk itself — spine decode, damaged-prefix sharing,
// branch-and-bound fast-forward, leaf grouping — is topology-agnostic
// and shared; what changes is how a depth is materialised and how a
// subtree is priced:
//
//   - Each walker keeps per-input per-level output pointers
//     (wcWalker.lvls): levels off the static frontier alias the clean
//     trace forever, damaged levels point at the walker's stack
//     buffers. Recomputing depths >= firstDiff in ascending level order
//     keeps every pointer authoritative, because a level only reads
//     levels before it — the same invariant the compiled
//     level-scheduled engine relies on.
//   - A depth with faults whose sources are all clean takes the
//     divergence-copy fast path (copy the clean outputs, apply the
//     overrides); otherwise the level's sums run through the
//     multi-lane level kernel across all P inputs at once, hitting the
//     CSR lanes kernel on graph models.
//   - Pruning prices subtrees with core.DAGSubtreeBounder's per-node
//     coefficients over per-node measured deviations, sound in the
//     presence of skip edges (see that type's contract). Ties are never
//     pruned, so results — including first-attaining tie-breaks — are
//     bit-identical to the unpruned walk and to the flat oracle.
//
// The arithmetic of every materialised level replays CompiledPlan's
// scalar evalDAG exactly (divergence copy, LevelSums + activation,
// overrides from the CLEAN nominal, ascending levels), so recorded
// errors are bit-identical to ErrorOnTrace on the same configuration.

// buildPruneTablesDAG is buildPruneTables over per-node coefficients:
// deviations at free levels are weighted by their node's amplification
// BEFORE the worst-f selection, so tails and topfLeaf need no further
// propagation factor.
func (w *WorstCase) buildPruneTablesDAG(perLayer []int) error {
	b, err := core.NewDAGSubtreeBounder(w.m, perLayer)
	if err != nil {
		return err
	}
	w.nb = b
	P := len(w.traces)
	dl := w.lastF
	topf := make([][]float64, w.L) // topf[l-1][x]; nil for fault-free layers
	var devs []float64
	for l := 1; l <= w.L; l++ {
		f := perLayer[l-1]
		if f == 0 {
			continue
		}
		width := w.m.Width(l)
		if cap(devs) < width {
			devs = make([]float64, width)
		}
		devs = devs[:width]
		amp := b.Amp(l)
		topf[l-1] = make([]float64, P)
		for x, tr := range w.traces {
			clean := tr.Outputs[l-1]
			for i := 0; i < width; i++ {
				v := 0.0
				if !w.isCrash {
					v = w.inj.NeuronValue(NeuronFault{Layer: l, Index: i}, clean[i])
				}
				devs[i] = amp[i] * math.Abs(v-clean[i])
			}
			sort.Float64s(devs)
			s := 0.0
			for i := width - f; i < width; i++ {
				s += devs[i]
			}
			topf[l-1][x] = s
		}
	}
	w.tails = make([][]float64, dl+1)
	for d := 0; d <= dl; d++ {
		w.tails[d] = make([]float64, P)
		for x := 0; x < P; x++ {
			t := 0.0
			for l := d + 1; l <= w.L; l++ {
				if topf[l-1] != nil {
					t += topf[l-1][x]
				}
			}
			w.tails[d][x] = t
		}
	}
	w.topfLeaf = topf[dl-1]
	return nil
}

// applyDepthDAG materialises depth d's damaged outputs for combination
// ci; shallower levels' pointers (wk.lvls) are authoritative.
func (w *WorstCase) applyDepthDAG(wk *wcWalker, d int, ci int64) {
	if !w.dirtyLvl[d] {
		// No own faults and every source clean: the trace aliases set at
		// walker construction are authoritative, deviations are zero.
		return
	}
	combo := w.combos[d-1][ci]
	P := len(w.traces)
	dst := wk.ps.Layer(d)[:P]
	if !w.srcDirty[d] {
		// First divergent level: received sums are the clean ones, so
		// outputs are the trace's with the overrides applied (the
		// compiled engine's divergence-copy fast path).
		for x, tr := range w.traces {
			copy(dst[x], tr.Outputs[d-1])
		}
	} else {
		for x := 0; x < P; x++ {
			wk.dsts[x] = dst[x]
			wk.srcs[x] = wk.lvls[x]
		}
		nn.LevelSumsLanesModel(w.dag, d, wk.dsts[:P], wk.srcs[:P])
		act := w.m.Activation()
		for x := 0; x < P; x++ {
			activation.Eval(act, dst[x], dst[x])
		}
	}
	// Faulty neurons broadcast values derived from the CLEAN nominal —
	// the same convention as the compiled engines, and what makes the
	// pruning tables exact.
	if w.isCrash {
		for x := 0; x < P; x++ {
			row := dst[x]
			for _, idx := range combo {
				row[idx] = 0
			}
		}
	} else {
		for x, tr := range w.traces {
			row := dst[x]
			clean := tr.Outputs[d-1]
			for _, idx := range combo {
				row[idx] = w.inj.NeuronValue(NeuronFault{Layer: d, Index: idx}, clean[idx])
			}
		}
	}
	for x := 0; x < P; x++ {
		wk.lvls[x][d] = dst[x]
	}
	if w.prune {
		nd := wk.nodeDeltas[d]
		for x, tr := range w.traces {
			clean := tr.Outputs[d-1]
			row := dst[x]
			out := nd[x]
			for i := range row {
				out[i] = math.Abs(row[i] - clean[i])
			}
		}
	}
}

// nodeBoundDAG prices the subtree rooted at depth d: every measured
// node's deviation times its free-suffix path coefficient, plus the
// pre-weighted free-layer tail, maximised over inputs.
func (w *WorstCase) nodeBoundDAG(wk *wcWalker, d int) float64 {
	maxB := math.Inf(-1)
	for x := range w.traces {
		b := w.tails[d][x]
		for v := 1; v <= d; v++ {
			if wk.nodeDeltas[v] == nil {
				continue // clean level: deviations identically zero
			}
			coef := w.nb.Coef(d, v)
			nd := wk.nodeDeltas[v][x]
			for i, c := range coef {
				b += c * nd[i]
			}
		}
		if b > maxB {
			maxB = b
		}
	}
	return maxB
}

// leafBoundDAG prices a whole leaf group: measured prefix through the
// depth-dl coefficients, the deepest layer's base deviation and worst
// own combination already Amp-weighted (buildBaseDAG /
// buildPruneTablesDAG), plus the (empty) tail.
func (w *WorstCase) leafBoundDAG(wk *wcWalker) float64 {
	dl := w.lastF
	maxB := math.Inf(-1)
	for x := range w.traces {
		b := w.tails[dl][x] + wk.baseDelta[x] + w.topfLeaf[x]
		for v := 1; v < dl; v++ {
			if wk.nodeDeltas[v] == nil {
				continue
			}
			coef := w.nb.Coef(dl, v)
			nd := wk.nodeDeltas[v][x]
			for i, c := range coef {
				b += c * nd[i]
			}
		}
		if b > maxB {
			maxB = b
		}
	}
	return maxB
}

// buildBaseDAG materialises the deepest faulty level's outputs under
// the current spine WITHOUT that level's own faults — the shared base
// every leaf of the group overrides in place. baseDelta is the
// Amp-weighted deviation (the per-node analogue of the layered l1
// base delta).
func (w *WorstCase) buildBaseDAG(wk *wcWalker) {
	dl := w.lastF
	P := len(w.traces)
	base := wk.ps.Layer(dl)[:P]
	if !w.srcDirty[dl] {
		for x, tr := range w.traces {
			copy(base[x], tr.Outputs[dl-1])
			wk.lvls[x][dl] = base[x]
		}
		if w.prune {
			for x := range w.traces {
				wk.baseDelta[x] = 0
			}
		}
		return
	}
	for x := 0; x < P; x++ {
		wk.dsts[x] = base[x]
		wk.srcs[x] = wk.lvls[x]
	}
	nn.LevelSumsLanesModel(w.dag, dl, wk.dsts[:P], wk.srcs[:P])
	act := w.m.Activation()
	for x := 0; x < P; x++ {
		activation.Eval(act, base[x], base[x])
		wk.lvls[x][dl] = base[x]
	}
	if w.prune {
		amp := w.nb.Amp(dl)
		for x, tr := range w.traces {
			clean := tr.Outputs[dl-1]
			row := base[x]
			s := 0.0
			for i := range row {
				s += amp[i] * math.Abs(row[i]-clean[i])
			}
			wk.baseDelta[x] = s
		}
	}
}

// evalLeavesDAG evaluates leaf configurations [li, leafEnd) of group g:
// each overrides its combination's rows of the shared base, propagates
// the dirty suffix levels, reads the output over the level pointers,
// and restores — bit-identical to a full compiled evaluation of the
// same configuration.
func (w *WorstCase) evalLeavesDAG(wk *wcWalker, g, li, leafEnd int64, st *SearchState) {
	dl := w.lastF
	base := wk.ps.Layer(dl)[:len(w.traces)]
	for ci := li; ci < leafEnd; ci++ {
		combo := w.combos[dl-1][ci]
		worst := 0.0
		for x, tr := range w.traces {
			row := base[x]
			if w.isCrash {
				for j, idx := range combo {
					wk.saved[j] = row[idx]
					row[idx] = 0
				}
			} else {
				clean := tr.Outputs[dl-1]
				for j, idx := range combo {
					wk.saved[j] = row[idx]
					row[idx] = w.inj.NeuronValue(NeuronFault{Layer: dl, Index: idx}, clean[idx])
				}
			}
			out := w.propagateSuffixDAG(wk, x)
			for j, idx := range combo {
				row[idx] = wk.saved[j]
			}
			if e := math.Abs(tr.Output - out); e > worst {
				worst = e
			}
		}
		st.Visited++
		if worst > st.WorstError {
			st.WorstError = worst
			st.WorstFlat = g*w.leaves + ci
			st.WorstPlan = w.PlanAt(st.WorstFlat).Neurons
			w.raiseFloor(worst)
		}
	}
}

// propagateSuffixDAG pushes one input's damaged state through the
// levels past the deepest faulty one: levels off the frontier keep
// their clean-trace aliases (zero cost, like the compiled engine),
// dirty ones recompute over the level pointers.
func (w *WorstCase) propagateSuffixDAG(wk *wcWalker, x int) float64 {
	ys := wk.lvls[x]
	act := w.m.Activation()
	for l := w.lastF + 1; l <= w.L; l++ {
		if !w.dirtyLvl[l] {
			continue
		}
		dst := wk.ps.Layer(l)[x]
		w.dag.LevelSums(l, dst, ys, nil)
		activation.Eval(act, dst, dst)
		ys[l] = dst
	}
	return w.dag.OutputSumLevels(ys)
}
