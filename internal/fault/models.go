// Fault-model catalogue: the injectors behind the registry's named
// models. The paper's analysis (Theorems 2-5) is parameterised only by a
// per-component deviation cap, so each model here is admitted to the
// same Fep machinery by exposing its worst-case deviation (see Model).
// The intermittent and noise families reproduce, respectively, the
// reoccurring node failures of Sardi et al. ("Vitality of Neural
// Networks under Reoccurring Catastrophic Failures") and the
// noise-driven degradation of Roxin et al. ("Self-sustained activity in
// a small-world network of excitable neurons") as injectors against
// which the analytic bounds are validated (experiment S1 in DESIGN.md).
package fault

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/rng"
)

// upstreamCap bounds the magnitude of any value transmitted over a
// synapse: hidden-layer outputs satisfy |y| <= ActCap, and network
// inputs live in [0,1]^d by the approx.Target convention, so the first
// synapse layer sees magnitudes up to 1.
func upstreamCap(s core.Shape) float64 {
	return math.Max(1, s.ActCap)
}

// maxAbsW returns the largest per-layer maximal absolute weight.
func maxAbsW(s core.Shape) float64 {
	m := 0.0
	for _, w := range s.MaxW {
		if w > m {
			m = w
		}
	}
	return m
}

// StuckAt models stuck-at-value failures: a faulty neuron's output is
// frozen at V regardless of its inputs, and a faulty synapse's
// transmitted contribution is frozen at V. Stuck-at-0 on neurons is
// exactly a crash; other values model latched outputs (e.g. a saturated
// driver). Deterministic and safe for concurrent use.
type StuckAt struct {
	V float64
}

func (s StuckAt) NeuronValue(NeuronFault, float64) float64 { return s.V }
func (s StuckAt) SynapseDelta(_ SynapseFault, transmitted float64) float64 {
	return s.V - transmitted
}

// NominalFree reports that the stuck value ignores the clean output.
func (StuckAt) NominalFree() bool { return true }

// SignFlip models polarity inversion: a faulty neuron broadcasts the
// negation of its nominal output, and a faulty synapse reverses the sign
// of its transmitted contribution. Deterministic and safe for concurrent
// use.
type SignFlip struct{}

func (SignFlip) NeuronValue(_ NeuronFault, nominal float64) float64 { return -nominal }
func (SignFlip) SynapseDelta(_ SynapseFault, transmitted float64) float64 {
	return -2 * transmitted
}

// Intermittent models reoccurring transient failures (Sardi et al.): on
// each evaluation the faulty component independently crashes with
// probability P and behaves correctly otherwise. Stochastic — holds its
// rng stream through compile-time state and draws without allocating;
// NOT safe for concurrent use (one stream per goroutine via R.Split).
type Intermittent struct {
	P float64
	R *rng.Rand
}

func (i Intermittent) NeuronValue(_ NeuronFault, nominal float64) float64 {
	if i.R.Bool(i.P) {
		return 0
	}
	return nominal
}

func (i Intermittent) SynapseDelta(_ SynapseFault, transmitted float64) float64 {
	if i.R.Bool(i.P) {
		return -transmitted
	}
	return 0
}

// ClippedNoise models additive noise degradation (Roxin et al.): the
// faulty component's value deviates by Gaussian noise with standard
// deviation Sigma, hard-clipped to the capacity [-C, C] so Assumption 1
// (and therefore the Fep bound with deviation cap C) holds surely, not
// just in probability. Stochastic — see Intermittent for the
// concurrency contract.
type ClippedNoise struct {
	C, Sigma float64
	R        *rng.Rand
}

func (g ClippedNoise) draw() float64 {
	v := g.Sigma * g.R.NormFloat64()
	if v > g.C {
		return g.C
	}
	if v < -g.C {
		return -g.C
	}
	return v
}

func (g ClippedNoise) NeuronValue(_ NeuronFault, nominal float64) float64 {
	return nominal + g.draw()
}

func (g ClippedNoise) SynapseDelta(SynapseFault, float64) float64 { return g.draw() }

// BitFlip models a single-event upset in a sign-magnitude fixed-point
// implementation (the quantised setting of Theorem 5 / Proteus): values
// are encoded with Bits bits (one sign bit, Bits-1 magnitude bits) over
// their full range, and the fault flips bit Bit of the stored code.
//
//   - A faulty SYNAPSE has bit Bit of its quantised WEIGHT flipped: the
//     transmitted contribution w·y becomes w'·y. The injector recovers y
//     from the transmitted value and the weight it looks up in Net;
//     flips on exactly-zero weights are inert (their channel is silent,
//     so the upstream output is unobservable — and contributes nothing
//     either way when the magnitude grid step is zero).
//   - A faulty NEURON has bit Bit of its quantised OUTPUT code flipped
//     (the activation encoded over [-ActCap, ActCap]).
//
// Bit = Bits-1 flips the sign bit (value negation, the worst single-bit
// upset); lower bits flip one magnitude bit of weight 2^Bit grid steps.
// Deterministic and safe for concurrent use. Construct via the registry
// ("bitflip", Params{Net, Bits, Bit}) or quant.BitFlipInjector.
type BitFlip struct {
	net    nn.Model
	bits   int
	bit    int
	actCap float64
	// steps[l-1] is the weight grid step of synapse layer l (1..L+1).
	steps []float64
}

// NewBitFlip builds the injector against n's weights (any nn.Model:
// for conv models the flipped weight is the shared kernel value of the
// faulty synapse's virtual dense connection). bits is the total code
// width (>= 2); bit indexes the flipped bit in [0, bits-1].
func NewBitFlip(n nn.Model, bits, bit int) (BitFlip, error) {
	if n == nil {
		return BitFlip{}, fmt.Errorf("fault: bitflip requires a network (Params.Net)")
	}
	if bits < 2 || bits > 52 {
		return BitFlip{}, fmt.Errorf("fault: bitflip width %d outside [2, 52]", bits)
	}
	if bit < 0 || bit >= bits {
		return BitFlip{}, fmt.Errorf("fault: bit index %d outside [0, %d]", bit, bits-1)
	}
	L := n.NumLayers()
	levels := float64(int64(1)<<(bits-1)) - 1
	steps := make([]float64, L+1)
	for l := 1; l <= L+1; l++ {
		steps[l-1] = n.MaxWeight(l) / levels
	}
	act := n.Activation()
	actCap := math.Max(math.Abs(act.Min()), math.Abs(act.Max()))
	return BitFlip{net: n, bits: bits, bit: bit, actCap: actCap, steps: steps}, nil
}

// flip encodes v on the sign-magnitude grid with step q, flips the
// configured bit, and decodes.
func (b BitFlip) flip(v, q float64) float64 {
	if q == 0 {
		return v
	}
	sign := 1.0
	if v < 0 {
		sign = -1
	}
	levels := int64(1)<<(b.bits-1) - 1
	code := int64(math.Round(math.Abs(v) / q))
	if code > levels {
		code = levels
	}
	if b.bit == b.bits-1 {
		return -sign * float64(code) * q
	}
	code ^= int64(1) << uint(b.bit)
	return sign * float64(code) * q
}

func (b BitFlip) NeuronValue(_ NeuronFault, nominal float64) float64 {
	levels := float64(int64(1)<<(b.bits-1) - 1)
	return b.flip(nominal, b.actCap/levels)
}

// weightAt looks the faulty synapse's weight up in the model. The
// fault's From field is a sender index on layered models and an in-edge
// ordinal on DAG models; nn.InEdgeOf resolves either form.
func (b BitFlip) weightAt(f SynapseFault) float64 {
	_, _, w := nn.InEdgeOf(b.net, f.Layer, f.To, f.From)
	return w
}

func (b BitFlip) SynapseDelta(f SynapseFault, transmitted float64) float64 {
	w := b.weightAt(f)
	if w == 0 {
		return 0
	}
	wf := b.flip(w, b.steps[f.Layer-1])
	return (wf - w) * transmitted / w
}

// bitFlipDeviation is the worst-case change a flip of bit `bit` in a
// `bits`-wide code over magnitude range maxAbs can cause, including the
// half-step of snapping the unquantised value to the grid first.
func bitFlipDeviation(maxAbs float64, bits, bit int) float64 {
	if bit == bits-1 {
		// Sign flip: |(-g) - v| <= g + |v| <= 2 maxAbs.
		return 2 * maxAbs
	}
	levels := float64(int64(1)<<(bits-1) - 1)
	q := maxAbs / levels
	return q * (float64(int64(1)<<uint(bit)) + 0.5)
}

// bitflipGeometry normalises the bit-flip parameters: Bits defaults to
// 8; Bit defaults (when zero-valued with Bits unset semantics kept
// simple) to the given value as-is — bit 0 is a valid, smallest flip.
func bitflipGeometry(p Params) (bits, bit int) {
	bits = p.Bits
	if bits == 0 {
		bits = 8
	}
	return bits, p.Bit
}

// Dispatch routes every fault to its own injector — the composition
// primitive for heterogeneous plans where different components fail
// under different models (e.g. a failure stream mixing crash, stuck and
// noisy neurons). Faults absent from both maps fall back to Default
// (Crash when Default is nil). Dispatch is safe for concurrent use iff
// every routed injector is.
type Dispatch struct {
	Neurons  map[NeuronFault]Injector
	Synapses map[SynapseFault]Injector
	Default  Injector
}

func (d Dispatch) fallback() Injector {
	if d.Default != nil {
		return d.Default
	}
	return Crash{}
}

func (d Dispatch) NeuronValue(f NeuronFault, nominal float64) float64 {
	if inj, ok := d.Neurons[f]; ok {
		return inj.NeuronValue(f, nominal)
	}
	return d.fallback().NeuronValue(f, nominal)
}

func (d Dispatch) SynapseDelta(f SynapseFault, transmitted float64) float64 {
	if inj, ok := d.Synapses[f]; ok {
		return inj.SynapseDelta(f, transmitted)
	}
	return d.fallback().SynapseDelta(f, transmitted)
}

// NominalFree reports whether every routed injector (and the fallback)
// ignores nominal values, letting the engine skip the clean trace.
func (d Dispatch) NominalFree() bool {
	if !injNominalFree(d.fallback()) {
		return false
	}
	for _, inj := range d.Neurons {
		if !injNominalFree(inj) {
			return false
		}
	}
	for _, inj := range d.Synapses {
		if !injNominalFree(inj) {
			return false
		}
	}
	return true
}

// injNominalFree reports whether inj declares itself nominal-free.
func injNominalFree(inj Injector) bool {
	nf, ok := inj.(NominalFree)
	return ok && nf.NominalFree()
}

func init() {
	Register(Model{
		Name:          "crash",
		Description:   "neuron stops sending (read as 0, Definition 2); synapse stops transmitting",
		Deterministic: true,
		New:           func(Params) (Injector, error) { return Crash{}, nil },
		NeuronDeviation: func(_ Params, s core.Shape) float64 {
			return s.ActCap
		},
		SynapseDeviation: func(_ Params, s core.Shape) float64 {
			return maxAbsW(s) * upstreamCap(s)
		},
	})
	Register(Model{
		Name:          "byzantine",
		Description:   "extreme bounded-arbitrary values within the capacity C (Assumption 1)",
		Deterministic: true,
		New: func(p Params) (Injector, error) {
			if p.C < 0 {
				return nil, fmt.Errorf("fault: byzantine capacity %g < 0", p.C)
			}
			return Byzantine{C: p.C, Sem: p.Sem}, nil
		},
		NeuronDeviation: func(p Params, s core.Shape) float64 {
			return core.EffectiveDeviation(p.C, p.Sem, s.ActCap)
		},
		SynapseDeviation: func(p Params, s core.Shape) float64 {
			if p.Sem == core.TransmissionCap {
				return p.C + maxAbsW(s)*upstreamCap(s)
			}
			return p.C
		},
	})
	Register(Model{
		Name:          "byzantine-random",
		Description:   "uniformly random bounded-arbitrary values within the capacity C",
		Deterministic: false,
		New: func(p Params) (Injector, error) {
			if p.C < 0 {
				return nil, fmt.Errorf("fault: byzantine-random capacity %g < 0", p.C)
			}
			if p.R == nil {
				return nil, fmt.Errorf("fault: byzantine-random requires a random stream (Params.R)")
			}
			return RandomByzantine{C: p.C, Sem: p.Sem, R: p.R}, nil
		},
		NeuronDeviation: func(p Params, s core.Shape) float64 {
			return core.EffectiveDeviation(p.C, p.Sem, s.ActCap)
		},
		SynapseDeviation: func(p Params, s core.Shape) float64 {
			if p.Sem == core.TransmissionCap {
				return p.C + maxAbsW(s)*upstreamCap(s)
			}
			return p.C
		},
	})
	Register(Model{
		Name:          "stuck",
		Description:   "output latched at a fixed value (stuck-at-V; V=0 coincides with crash)",
		Deterministic: true,
		New:           func(p Params) (Injector, error) { return StuckAt{V: p.Value}, nil },
		NeuronDeviation: func(p Params, s core.Shape) float64 {
			return math.Abs(p.Value) + s.ActCap
		},
		SynapseDeviation: func(p Params, s core.Shape) float64 {
			return math.Abs(p.Value) + maxAbsW(s)*upstreamCap(s)
		},
	})
	Register(Model{
		Name:          "intermittent",
		Description:   "reoccurring transient crash with probability P per evaluation (Sardi et al.)",
		Deterministic: false,
		New: func(p Params) (Injector, error) {
			if p.Prob < 0 || p.Prob > 1 {
				return nil, fmt.Errorf("fault: intermittent probability %g outside [0, 1]", p.Prob)
			}
			if p.R == nil {
				return nil, fmt.Errorf("fault: intermittent requires a random stream (Params.R)")
			}
			return Intermittent{P: p.Prob, R: p.R}, nil
		},
		NeuronDeviation: func(_ Params, s core.Shape) float64 {
			return s.ActCap
		},
		SynapseDeviation: func(_ Params, s core.Shape) float64 {
			return maxAbsW(s) * upstreamCap(s)
		},
	})
	Register(Model{
		Name:          "noise",
		Description:   "additive Gaussian noise (sigma = C/3) hard-clipped to the capacity C (Roxin et al.)",
		Deterministic: false,
		New: func(p Params) (Injector, error) {
			if p.C < 0 {
				return nil, fmt.Errorf("fault: noise capacity %g < 0", p.C)
			}
			if p.R == nil {
				return nil, fmt.Errorf("fault: noise requires a random stream (Params.R)")
			}
			return ClippedNoise{C: p.C, Sigma: p.C / 3, R: p.R}, nil
		},
		NeuronDeviation: func(p Params, _ core.Shape) float64 {
			return p.C
		},
		SynapseDeviation: func(p Params, _ core.Shape) float64 {
			return p.C
		},
	})
	Register(Model{
		Name:          "signflip",
		Description:   "polarity inversion: the component transmits the negation of its nominal value",
		Deterministic: true,
		New:           func(Params) (Injector, error) { return SignFlip{}, nil },
		NeuronDeviation: func(_ Params, s core.Shape) float64 {
			return 2 * s.ActCap
		},
		SynapseDeviation: func(_ Params, s core.Shape) float64 {
			return 2 * maxAbsW(s) * upstreamCap(s)
		},
	})
	Register(Model{
		Name:          "bitflip",
		Description:   "single-event upset: one bit of the sign-magnitude fixed-point code flips (quantised weights / outputs)",
		Deterministic: true,
		New: func(p Params) (Injector, error) {
			bits, bit := bitflipGeometry(p)
			return NewBitFlip(p.Net, bits, bit)
		},
		NeuronDeviation: func(p Params, s core.Shape) float64 {
			bits, bit := bitflipGeometry(p)
			return bitFlipDeviation(s.ActCap, bits, bit)
		},
		SynapseDeviation: func(p Params, s core.Shape) float64 {
			bits, bit := bitflipGeometry(p)
			return bitFlipDeviation(maxAbsW(s), bits, bit) * upstreamCap(s)
		},
	})
}
