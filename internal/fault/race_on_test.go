//go:build race

package fault

// raceEnabled: see race_off_test.go.
const raceEnabled = true
