package fault

import (
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/parallel"
)

// MaxError returns the largest |Fneu(x) - Ffail(x)| over the given
// inputs: clean traces are computed once (in parallel), then the
// damaged sweeps run through the batched multi-lane engine — the plan
// is fixed and the lanes are inputs, so each weight matrix streams once
// per BatchLanes inputs. The injector must be safe for concurrent use
// (Crash and Byzantine are; RandomByzantine is not — use MaxErrorSeq).
func MaxError(n nn.Model, p Plan, inj Injector, inputs [][]float64) float64 {
	traces := CleanTraces(n, inputs)
	errs := make([]float64, len(inputs))
	parallel.ForChunked(len(inputs), BatchLanes, func(lo, hi int) {
		bp := CompileBatch(n, BatchLanes)
		var injs [BatchLanes]Injector
		for i := range injs {
			injs[i] = inj
		}
		for i := lo; i < hi; i += BatchLanes {
			k := hi - i
			if k > BatchLanes {
				k = BatchLanes
			}
			bp.ResetShared(p, k)
			bp.ErrorsOnTraces(injs[:k], traces[i:i+k], errs[i:i+k])
		}
	})
	worst := 0.0
	for _, e := range errs {
		if e > worst {
			worst = e
		}
	}
	return worst
}

// MaxErrorSeq is the sequential variant for stateful injectors.
func MaxErrorSeq(n nn.Model, p Plan, inj Injector, inputs [][]float64) float64 {
	cp := Compile(n, p)
	worst := 0.0
	for _, x := range inputs {
		if e := cp.ErrorOn(inj, x); e > worst {
			worst = e
		}
	}
	return worst
}

// WorstSignError searches all 2^k sign assignments of the plan's Byzantine
// deviations (k = #neuron faults + #synapse faults) and returns the
// largest error over the inputs. It refuses plans with more than
// maxSignBits faults to avoid accidental exponential blow-ups; use
// MaxError with heuristic signs beyond that.
func WorstSignError(n nn.Model, p Plan, base Byzantine, inputs [][]float64) float64 {
	const maxSignBits = 16
	k := len(p.Neurons) + len(p.Synapses)
	if k > maxSignBits {
		panic(fmt.Sprintf("fault: WorstSignError with %d faults (max %d)", k, maxSignBits))
	}
	patterns := 1 << k
	cp := Compile(n, p)
	traces := CleanTraces(n, inputs)
	return parallel.MaxFloat64(patterns, func(bits int) float64 {
		inj := Byzantine{
			C:       base.C,
			Sem:     base.Sem,
			Sign:    make(map[NeuronFault]float64, len(p.Neurons)),
			SynSign: make(map[SynapseFault]float64, len(p.Synapses)),
		}
		for i, f := range p.Neurons {
			if bits&(1<<i) != 0 {
				inj.Sign[f] = -1
			} else {
				inj.Sign[f] = 1
			}
		}
		for i, f := range p.Synapses {
			if bits&(1<<(len(p.Neurons)+i)) != 0 {
				inj.SynSign[f] = -1
			} else {
				inj.SynSign[f] = 1
			}
		}
		worst := 0.0
		for _, tr := range traces {
			if e := cp.ErrorOnTrace(inj, tr); e > worst {
				worst = e
			}
		}
		return worst
	})
}

// Combinations invokes fn with every k-subset of [0, n), reusing a single
// buffer; fn must not retain it. It is the building block of the
// exhaustive configuration search.
func Combinations(n, k int, fn func(idx []int)) {
	if k < 0 || k > n {
		panic("fault: Combinations k out of range")
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	if k == 0 {
		fn(idx)
		return
	}
	for {
		fn(idx)
		// Advance to the next combination in lexicographic order.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// CountConfigurations returns Π_l C(N_l, f_l), the number of distinct
// failure configurations for the given distribution — the combinatorial
// explosion the paper's Fep avoids. Returns MaxInt64 on overflow, and
// an error (not a panic — distributions arrive from serve requests) on
// a length mismatch.
func CountConfigurations(widths, perLayer []int) (int64, error) {
	if len(widths) != len(perLayer) {
		return 0, fmt.Errorf("fault: distribution has %d entries for %d layers", len(perLayer), len(widths))
	}
	total := int64(1)
	for l, n := range widths {
		c := binomial(n, perLayer[l])
		if c < 0 || total > math.MaxInt64/max64(c, 1) {
			return math.MaxInt64, nil
		}
		total *= c
	}
	return total, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func binomial(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	res := int64(1)
	for i := 1; i <= k; i++ {
		if res > math.MaxInt64/int64(n-k+i) {
			return -1
		}
		res = res * int64(n-k+i) / int64(i)
	}
	return res
}

// ExhaustiveResult reports an exhaustive worst-case search.
type ExhaustiveResult struct {
	// WorstError is the maximal |Fneu - Ffail| over all configurations
	// and inputs.
	WorstError float64
	// WorstPlan attains it.
	WorstPlan Plan
	// Configurations is the number of failure configurations covered.
	Configurations int64
	// Visited counts configurations actually evaluated and Pruned the
	// ones skipped by the tree engine's sound branch-and-bound
	// (Visited + Pruned == Configurations for a completed tree search;
	// the flat engine evaluates everything, so Visited ==
	// Configurations and Pruned == 0 there).
	Visited int64
	Pruned  int64
}

// ExhaustiveWorstCrashFlat enumerates every choice of perLayer[l-1]
// crashed neurons per layer l by flat index, evaluating each
// configuration with a full damaged sweep on the batched multi-lane
// engine. This is the pre-tree engine, kept as the reference oracle for
// the tree-structured search (tree.go): it shares no prefixes and never
// prunes, so its result is the ground truth the tree must reproduce
// bit-for-bit. Note its flat order varies the SHALLOWEST layer fastest,
// the reverse of tree order — under exact error ties the two engines
// may report different (both first-attaining in their own order) plans.
func ExhaustiveWorstCrashFlat(n nn.Model, perLayer []int, inputs [][]float64, maxConfigs int64) (ExhaustiveResult, error) {
	L := n.NumLayers()
	if len(perLayer) != L {
		return ExhaustiveResult{}, fmt.Errorf("fault: perLayer has %d entries for %d layers", len(perLayer), L)
	}
	widths := make([]int, L)
	for l := 1; l <= L; l++ {
		widths[l-1] = n.Width(l)
	}
	total, err := CountConfigurations(widths, perLayer)
	if err != nil {
		return ExhaustiveResult{}, err
	}
	if total > maxConfigs {
		return ExhaustiveResult{}, fmt.Errorf("fault: %d configurations exceed limit %d", total, maxConfigs)
	}

	// Materialise per-layer combination lists, then walk their cross
	// product by flat index so the work parallelises trivially.
	perLayerCombos := make([][][]int, L)
	for l := 0; l < L; l++ {
		var combos [][]int
		Combinations(n.Width(l+1), perLayer[l], func(idx []int) {
			combos = append(combos, append([]int(nil), idx...))
		})
		perLayerCombos[l] = combos
	}

	// fillPlan rebuilds the configuration for a flat index into a
	// reusable buffer — the enumeration loop allocates only when a new
	// worst case is found.
	fillPlan := func(buf []NeuronFault, flat int64) []NeuronFault {
		buf = buf[:0]
		for l := 0; l < L; l++ {
			count := int64(len(perLayerCombos[l]))
			choice := perLayerCombos[l][flat%count]
			flat /= count
			for _, idx := range choice {
				buf = append(buf, NeuronFault{Layer: l + 1, Index: idx})
			}
		}
		return buf
	}

	// The clean traces are shared by every configuration: evaluate the
	// input sweep once, then each configuration costs one damaged sweep
	// per input.
	traces := CleanTraces(n, inputs)

	type worst struct {
		err  float64
		plan Plan
	}
	workers := parallel.Workers()
	partial := make([]worst, workers)
	chunk := (total + int64(workers) - 1) / int64(workers)
	done := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		go func(slot int) {
			defer func() { done <- struct{}{} }()
			lo := int64(slot) * chunk
			hi := lo + chunk
			if hi > total {
				hi = total
			}
			// Each worker owns a batched evaluator: configurations are
			// loaded BatchLanes at a time and every clean trace is swept
			// once per group, so each weight matrix streams once per
			// BatchLanes configurations instead of once per configuration.
			local := worst{}
			bp := CompileBatch(n, BatchLanes)
			var bufs [BatchLanes][]NeuronFault
			var plans [BatchLanes]Plan
			var injs [BatchLanes]Injector
			var errs, laneWorst [BatchLanes]float64
			for p := range injs {
				injs[p] = Crash{}
			}
			for flat := lo; flat < hi; flat += BatchLanes {
				lanes := BatchLanes
				if rem := hi - flat; rem < int64(lanes) {
					lanes = int(rem)
				}
				for p := 0; p < lanes; p++ {
					bufs[p] = fillPlan(bufs[p], flat+int64(p))
					plans[p] = Plan{Neurons: bufs[p]}
					laneWorst[p] = 0
				}
				bp.Reset(plans[:lanes])
				for _, tr := range traces {
					bp.ErrorsOnTrace(injs[:lanes], tr, errs[:lanes])
					for p := 0; p < lanes; p++ {
						if errs[p] > laneWorst[p] {
							laneWorst[p] = errs[p]
						}
					}
				}
				// Lanes are visited in flat order, and only a strictly
				// larger error displaces the incumbent — exactly the
				// scalar loop's first-attaining-configuration semantics.
				for p := 0; p < lanes; p++ {
					if laneWorst[p] > local.err {
						local.err = laneWorst[p]
						local.plan = Plan{Neurons: append([]NeuronFault(nil), bufs[p]...)}
					}
				}
			}
			partial[slot] = local
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	res := ExhaustiveResult{Configurations: total, Visited: total}
	// Workers cover ascending flat-index shards, so merging in slot
	// order with a STRICT comparison keeps the first-attaining
	// configuration: a later shard's equal-error plan must not displace
	// an earlier shard's.
	for _, p := range partial {
		if p.err > res.WorstError {
			res.WorstError = p.err
			res.WorstPlan = p.plan
		}
	}
	return res, nil
}
