package fault

import (
	"math"
	"strings"
	"testing"

	"repro/internal/activation"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/rng"
)

// testParams builds one parameter set exercising every model's knobs.
func testParams(n *nn.Network, r *rng.Rand) Params {
	return Params{
		C:     0.7,
		Sem:   core.DeviationCap,
		Value: 0.85,
		Prob:  0.6,
		Bits:  8,
		Bit:   6,
		Net:   n,
		R:     r,
	}
}

func TestRegistryCatalogue(t *testing.T) {
	names := ModelNames()
	if len(names) < 7 {
		t.Fatalf("registry has %d models, want >= 7: %v", len(names), names)
	}
	for _, want := range []string{"crash", "byzantine", "byzantine-random", "stuck", "intermittent", "noise", "signflip", "bitflip"} {
		if _, ok := Lookup(want); !ok {
			t.Errorf("model %q not registered", want)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("ModelNames not sorted: %v", names)
		}
	}
}

func TestNewInjectorUnknownListsNames(t *testing.T) {
	_, err := NewInjector("no-such-model", Params{})
	if err == nil {
		t.Fatal("expected error for unknown model")
	}
	if !strings.Contains(err.Error(), "crash") || !strings.Contains(err.Error(), "bitflip") {
		t.Fatalf("error %q does not list registered names", err)
	}
}

func TestStochasticModelsRequireRand(t *testing.T) {
	for _, m := range Models() {
		p := testParams(nn.NewRandom(rng.New(1), nn.Config{InputDim: 2, Widths: []int{4}, Act: activation.NewSigmoid(1)}, 0.5), nil)
		inj, err := m.New(p)
		if m.Deterministic {
			if err != nil {
				t.Errorf("%s: deterministic model failed without rng: %v", m.Name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: stochastic model accepted nil rng (injector %T)", m.Name, inj)
		}
	}
}

// TestModelNeuronDeviationSoundness is the registry's core contract:
// for every model, the measured output error under neuron faults stays
// within the Fep bound fed by the model's NeuronDeviation cap.
func TestModelNeuronDeviationSoundness(t *testing.T) {
	r := rng.New(77)
	nets := []*nn.Network{
		nn.NewRandom(r, nn.Config{InputDim: 2, Widths: []int{7, 5}, Act: activation.NewSigmoid(1)}, 0.7),
		nn.NewRandom(r, nn.Config{InputDim: 3, Widths: []int{6}, Act: activation.NewTanh(0.8), Bias: true}, 0.9),
	}
	for _, net := range nets {
		s := core.ShapeOf(net)
		inputs := metrics.RandomPoints(r, net.InputDim, 25)
		faults := make([]int, net.Layers())
		for l := range faults {
			faults[l] = 2
		}
		plan := AdversarialNeuronPlan(net, faults)
		for _, m := range Models() {
			p := testParams(net, r.Split())
			inj, err := m.New(p)
			if err != nil {
				t.Fatalf("%s: %v", m.Name, err)
			}
			dev := m.NeuronDeviation(p, s)
			if dev < 0 || math.IsNaN(dev) {
				t.Fatalf("%s: neuron deviation %v", m.Name, dev)
			}
			bound := core.Fep(s, faults, dev)
			// Stochastic injectors redraw per evaluation: repeat the
			// sweep so several realisations face the bound.
			trials := 1
			if !m.Deterministic {
				trials = 20
			}
			for trial := 0; trial < trials; trial++ {
				if measured := MaxErrorSeq(net, plan, inj, inputs); measured > bound*(1+1e-9) {
					t.Fatalf("%s on %s: measured %v above bound %v (dev %v)",
						m.Name, net.Act.Name(), measured, bound, dev)
				}
			}
		}
	}
}

// TestModelSynapseDeviationSoundness is the synapse-side contract:
// measured error under synapse-only faults stays within SynapseFep fed
// by the model's SynapseDeviation cap. (The caps assume correct
// upstream senders, hence synapse-only plans.)
func TestModelSynapseDeviationSoundness(t *testing.T) {
	r := rng.New(79)
	net := nn.NewRandom(r, nn.Config{InputDim: 2, Widths: []int{6, 5}, Act: activation.NewSigmoid(1)}, 0.8)
	s := core.ShapeOf(net)
	inputs := metrics.RandomPoints(r, 2, 25)
	synFaults := []int{1, 1, 1}
	plan := AdversarialSynapsePlan(net, synFaults)
	for _, m := range Models() {
		p := testParams(net, r.Split())
		inj, err := m.New(p)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		dev := m.SynapseDeviation(p, s)
		if dev < 0 || math.IsNaN(dev) {
			t.Fatalf("%s: synapse deviation %v", m.Name, dev)
		}
		bound := core.SynapseFep(s, synFaults, dev)
		trials := 1
		if !m.Deterministic {
			trials = 20
		}
		for trial := 0; trial < trials; trial++ {
			if measured := MaxErrorSeq(net, plan, inj, inputs); measured > bound*(1+1e-9) {
				t.Fatalf("%s: measured %v above synapse bound %v (dev %v)", m.Name, measured, bound, dev)
			}
		}
	}
}

// TestStuckAtZeroMatchesCrash pins the catalogue's overlap point:
// stuck-at-0 and crash are the same failure.
func TestStuckAtZeroMatchesCrash(t *testing.T) {
	r := rng.New(83)
	net := nn.NewRandom(r, nn.Config{InputDim: 2, Widths: []int{6, 4}, Act: activation.NewSigmoid(1)}, 0.6)
	plan := RandomNeuronPlan(r, net, []int{2, 1})
	plan.Synapses = RandomSynapsePlan(r, net, []int{1, 1, 1}).Synapses
	for _, x := range metrics.RandomPoints(r, 2, 10) {
		if got, want := Forward(net, plan, StuckAt{V: 0}, x), Forward(net, plan, Crash{}, x); got != want {
			t.Fatalf("stuck-at-0 %v != crash %v", got, want)
		}
	}
}

// TestBitFlipGeometry checks the code-level semantics: a sign-bit flip
// negates grid values exactly; a magnitude-bit flip moves the value by
// exactly 2^bit grid steps; zero weights are inert.
func TestBitFlipGeometry(t *testing.T) {
	r := rng.New(89)
	net := nn.NewRandom(r, nn.Config{InputDim: 2, Widths: []int{4}, Act: activation.NewSigmoid(1)}, 0.5)
	const bits = 8
	levels := float64(int64(1)<<(bits-1) - 1)
	sign, err := NewBitFlip(net, bits, bits-1)
	if err != nil {
		t.Fatal(err)
	}
	actCap := 1.0 // sigmoid
	q := actCap / levels
	onGrid := 57 * q
	if got := sign.NeuronValue(NeuronFault{Layer: 1}, onGrid); got != -onGrid {
		t.Fatalf("sign flip of grid value: got %v want %v", got, -onGrid)
	}
	mag, err := NewBitFlip(net, bits, 3)
	if err != nil {
		t.Fatal(err)
	}
	got := mag.NeuronValue(NeuronFault{Layer: 1}, onGrid)
	// 57 has bit 3 set: flipping clears it, moving down 8 steps.
	if want := 49 * q; math.Abs(got-want) > 1e-15 {
		t.Fatalf("magnitude flip: got %v want %v", got, want)
	}
	// Zero weight: synapse delta must be exactly 0.
	net.Hidden[0].Set(0, 0, 0)
	flip, err := NewBitFlip(net, bits, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d := flip.SynapseDelta(SynapseFault{Layer: 1, To: 0, From: 0}, 0); d != 0 {
		t.Fatalf("zero-weight flip delta %v, want 0", d)
	}
}

func TestBitFlipRejectsBadGeometry(t *testing.T) {
	net := nn.NewRandom(rng.New(1), nn.Config{InputDim: 1, Widths: []int{3}, Act: activation.NewSigmoid(1)}, 0.5)
	if _, err := NewBitFlip(nil, 8, 0); err == nil {
		t.Error("nil network accepted")
	}
	if _, err := NewBitFlip(net, 1, 0); err == nil {
		t.Error("1-bit width accepted")
	}
	if _, err := NewBitFlip(net, 8, 8); err == nil {
		t.Error("bit index == width accepted")
	}
}

// TestDispatchRoutes checks per-fault routing and the fallback.
func TestDispatchRoutes(t *testing.T) {
	r := rng.New(91)
	net := nn.NewRandom(r, nn.Config{InputDim: 2, Widths: []int{5, 5}, Act: activation.NewSigmoid(1)}, 0.6)
	a := NeuronFault{Layer: 1, Index: 0}
	b := NeuronFault{Layer: 2, Index: 3}
	c := NeuronFault{Layer: 2, Index: 1}
	plan := Plan{Neurons: []NeuronFault{a, b, c}}
	d := Dispatch{Neurons: map[NeuronFault]Injector{
		a: StuckAt{V: 0.4},
		b: SignFlip{},
	}}
	if d.NeuronValue(a, 0.9) != 0.4 {
		t.Fatal("routed stuck value lost")
	}
	if d.NeuronValue(b, 0.9) != -0.9 {
		t.Fatal("routed signflip lost")
	}
	if d.NeuronValue(c, 0.9) != 0 {
		t.Fatal("fallback should crash")
	}
	if d.NominalFree() {
		t.Fatal("dispatch with signflip must not be nominal-free")
	}
	nf := Dispatch{Neurons: map[NeuronFault]Injector{a: StuckAt{V: 0.4}}}
	if !nf.NominalFree() {
		t.Fatal("stuck+crash dispatch should be nominal-free")
	}
	// End to end through the engine vs a hand-built expectation: replace
	// the routed models by their standalone counterparts one at a time.
	x := []float64{0.3, 0.7}
	got := Forward(net, plan, d, x)
	if math.IsNaN(got) {
		t.Fatal("dispatch forward NaN")
	}
	// The same plan under pure crash must differ (sanity that routing
	// actually changed behaviour).
	if got == Forward(net, plan, Crash{}, x) {
		t.Fatal("dispatch indistinguishable from crash")
	}
}
