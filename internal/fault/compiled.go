package fault

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/activation"
	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/parallel"
)

// NominalFree is implemented by injectors whose NeuronValue ignores its
// nominal argument (crash failures, transmission-capped Byzantine
// values). For such injectors the evaluation engine skips the clean
// reference trace entirely — the damaged pass is the only pass.
type NominalFree interface {
	NominalFree() bool
}

// NominalFree reports that crashed neurons emit 0 regardless of their
// nominal output.
func (Crash) NominalFree() bool { return true }

// NominalFree reports whether the Byzantine value depends on the clean
// nominal output (it does not under TransmissionCap, where faulty
// components emit extreme values of the allowed range).
func (b Byzantine) NominalFree() bool { return b.Sem == core.TransmissionCap }

// NominalFree is the random analogue of Byzantine.NominalFree.
func (b RandomByzantine) NominalFree() bool { return b.Sem == core.TransmissionCap }

// NominalFree delegates to the Byzantine component: crash-set neurons
// emit 0 regardless of nominal.
func (m Mixed) NominalFree() bool { return m.Byz.NominalFree() }

// needsNominal reports whether inj requires clean nominal outputs.
func needsNominal(inj Injector) bool {
	nf, ok := inj.(NominalFree)
	return !(ok && nf.NominalFree())
}

// CompiledPlan is a Plan indexed once for repeated evaluation against
// any nn.Model — dense or convolutional: per-layer fault lists, the
// first divergent layer (everything before it is shared between the
// clean and damaged sweeps), and per-layer skip segments for neurons
// whose received sums are overridden anyway. For conv models the plan's
// neuron indices address flattened feature-map positions and its
// synapse (to, from) pairs address the virtual dense connectivity the
// lowering would materialise — shared kernel-value faults expand to
// their tied instances via conv's KernelPlan — so evaluation is native:
// no lowered matrix exists on any path, yet every result is
// bit-identical to evaluating the lowered network.
//
// A CompiledPlan is immutable after Compile and safe for concurrent use
// by multiple goroutines (evaluation scratch comes from an internal
// pool), provided the injector passed to each call is itself safe for
// concurrent use. Reset re-indexes a new plan in place and must not race
// with concurrent evaluations.
type CompiledPlan struct {
	net  nn.Model
	plan Plan
	// dag is non-nil when net has arbitrary topology; evaluation then
	// runs the level-scheduled sweep (evalDAG) and addresses synapse
	// faults by in-edge ordinal (see nn.DAGModel).
	dag nn.DAGModel

	// neuronsAt[l] / synapsesAt[l] hold the faults acting on layer l
	// (neurons: 1..L; synapses: 1..L+1).
	neuronsAt  [][]NeuronFault
	synapsesAt [][]SynapseFault
	// overridden[l] lists, sorted, the neuron indices of layer l whose
	// outputs are replaced by the injector — their received sums and
	// activations need not be computed.
	overridden [][]int
	// diverge is the first hidden layer whose outputs can differ from the
	// clean pass (L+1 if only output synapses are faulty or the plan is
	// empty). lastNominal is the deepest layer with neuron faults (0 if
	// none).
	diverge     int
	lastNominal int
	// frontier[l] (DAG models only) reports whether level l's faulted
	// outputs can differ from the clean pass — the DAG generalisation of
	// the single diverge layer: a level is on the divergence frontier if
	// it hosts faults or reads a frontier level. srcDirty[l] reports the
	// latter alone (some source level is on the frontier).
	frontier []bool
	srcDirty []bool
}

// Compile indexes p against m for repeated evaluation. It panics if the
// plan addresses layers outside the model (use Plan.Validate for full
// validation with errors).
func Compile(m nn.Model, p Plan) *CompiledPlan {
	cp := &CompiledPlan{net: m}
	cp.Reset(p)
	return cp
}

// Plan returns the plan as passed to Compile/Reset. The fault slices
// are retained, not copied: if the caller rebuilds the plan in a reused
// buffer (the allocation-free Reset sweep), Plan reflects the buffer's
// current contents, not the compiled index — copy the slices before
// mutating them if the original plan must stay readable.
func (cp *CompiledPlan) Plan() Plan { return cp.plan }

// Reset re-indexes cp for a new plan, reusing the index buffers — the
// allocation-free way to sweep many plans over one model (the plan's
// slices are read during Reset and retained only for Plan; evaluation
// never touches them again). Not safe to call while other goroutines
// evaluate cp.
func (cp *CompiledPlan) Reset(p Plan) {
	L := cp.net.NumLayers()
	if cap(cp.neuronsAt) < L+2 {
		cp.neuronsAt = make([][]NeuronFault, L+2)
		cp.synapsesAt = make([][]SynapseFault, L+2)
		cp.overridden = make([][]int, L+2)
	}
	cp.neuronsAt = cp.neuronsAt[:L+2]
	cp.synapsesAt = cp.synapsesAt[:L+2]
	cp.overridden = cp.overridden[:L+2]
	for l := range cp.neuronsAt {
		cp.neuronsAt[l] = cp.neuronsAt[l][:0]
		cp.synapsesAt[l] = cp.synapsesAt[l][:0]
		cp.overridden[l] = cp.overridden[l][:0]
	}
	for _, f := range p.Neurons {
		if f.Layer < 1 || f.Layer > L {
			panic(fmt.Sprintf("fault: neuron fault at layer %d outside 1..%d", f.Layer, L))
		}
		cp.neuronsAt[f.Layer] = append(cp.neuronsAt[f.Layer], f)
		cp.overridden[f.Layer] = append(cp.overridden[f.Layer], f.Index)
	}
	for _, f := range p.Synapses {
		if f.Layer < 1 || f.Layer > L+1 {
			panic(fmt.Sprintf("fault: synapse fault at layer %d outside 1..%d", f.Layer, L+1))
		}
		cp.synapsesAt[f.Layer] = append(cp.synapsesAt[f.Layer], f)
	}
	cp.diverge = L + 1
	cp.lastNominal = 0
	for l := 1; l <= L; l++ {
		sort.Ints(cp.overridden[l])
		// Compact duplicates: a (not Validate-d) plan may list a neuron
		// twice; the override loop still applies every entry in plan
		// order, but the skip segments must name each row once.
		uniq := cp.overridden[l][:0]
		for i, v := range cp.overridden[l] {
			if i == 0 || v != cp.overridden[l][i-1] {
				uniq = append(uniq, v)
			}
		}
		cp.overridden[l] = uniq
		if len(cp.neuronsAt[l]) > 0 || len(cp.synapsesAt[l]) > 0 {
			if l < cp.diverge {
				cp.diverge = l
			}
		}
		if len(cp.neuronsAt[l]) > 0 {
			cp.lastNominal = l
		}
	}
	cp.dag, _ = cp.net.(nn.DAGModel)
	if cp.dag != nil {
		if cap(cp.frontier) < L+2 {
			cp.frontier = make([]bool, L+2)
			cp.srcDirty = make([]bool, L+2)
		}
		cp.frontier = cp.frontier[:L+2]
		cp.srcDirty = cp.srcDirty[:L+2]
		cp.frontier[0], cp.srcDirty[0] = false, false
		for l := 1; l <= L+1; l++ {
			dirty := false
			for _, v := range cp.dag.SrcLevels(l) {
				if v >= 1 && cp.frontier[v] {
					dirty = true
					break
				}
			}
			cp.srcDirty[l] = dirty
			cp.frontier[l] = dirty || len(cp.neuronsAt[l]) > 0 || len(cp.synapsesAt[l]) > 0
		}
	}
	cp.plan = p
}

// planEval is the reusable scratch of one evaluation: per-layer buffers
// for the damaged sweep and (when needed) the clean reference sweep.
type planEval struct {
	// sizedFor tags the model the buffers currently fit, skipping the
	// per-layer size walk on the hot path.
	sizedFor nn.Model
	fault    [][]float64
	clean    [][]float64
	// levelsF/levelsC are the per-level output pointers of the DAG sweep
	// (index v = level v; entry 0 is the input).
	levelsF [][]float64
	levelsC [][]float64
}

func (e *planEval) ensure(m nn.Model) {
	if e.sizedFor == m {
		return
	}
	e.fault = nn.EnsureLayerSlices(m, 1, e.fault)
	e.clean = nn.EnsureLayerSlices(m, 1, e.clean)
	L := m.NumLayers()
	if cap(e.levelsF) < L+1 {
		e.levelsF = make([][]float64, L+1)
		e.levelsC = make([][]float64, L+1)
	}
	e.levelsF = e.levelsF[:L+1]
	e.levelsC = e.levelsC[:L+1]
	e.sizedFor = m
}

// evalPool recycles evaluation scratch across plans, goroutines and
// models (buffers are grow-only).
var evalPool = sync.Pool{New: func() any { return new(planEval) }}

// Forward evaluates the damaged neural function Ffail on x. Identical in
// semantics to the package-level Forward, but the fault index is reused
// across calls and the steady state allocates nothing. The clean
// reference trace is only computed as deep as the injector actually
// needs nominal values (not at all for crash failures).
func (cp *CompiledPlan) Forward(inj Injector, x []float64) float64 {
	e := evalPool.Get().(*planEval)
	f, _ := cp.eval(e, inj, x, nil, false)
	evalPool.Put(e)
	return f
}

// ErrorOn returns |Fneu(x) - Ffail(x)| with the clean and damaged sweeps
// fused: layers before the first fault are computed once and shared, and
// from there each weight is read once for both sweeps.
func (cp *CompiledPlan) ErrorOn(inj Injector, x []float64) float64 {
	e := evalPool.Get().(*planEval)
	f, c := cp.eval(e, inj, x, nil, true)
	evalPool.Put(e)
	return math.Abs(c - f)
}

// ErrorOnTrace returns |Fneu - Ffail| on tr.Input given the input's
// precomputed clean trace: only the damaged sweep runs, and it starts at
// the plan's first divergent layer. Use CleanTraces to evaluate a fixed
// input set once and sweep many plans over it.
func (cp *CompiledPlan) ErrorOnTrace(inj Injector, tr *nn.Trace) float64 {
	e := evalPool.Get().(*planEval)
	f, _ := cp.eval(e, inj, tr.Input, tr, false)
	evalPool.Put(e)
	return math.Abs(tr.Output - f)
}

// eval runs the fused sweep. tr, when non-nil, supplies the clean trace
// (no clean computation happens at all); needClean requests the clean
// output even without a trace. Returns the damaged output and, when
// available, the clean output.
func (cp *CompiledPlan) eval(e *planEval, inj Injector, x []float64, tr *nn.Trace, needClean bool) (faulted, clean float64) {
	if cp.dag != nil {
		return cp.evalDAG(e, inj, x, tr, needClean)
	}
	m := cp.net
	L := m.NumLayers()
	act := m.Activation()
	e.ensure(m)

	// How deep the clean sweep must run: to the end for the fused error,
	// to the deepest neuron fault when the injector consumes nominal
	// values, not at all alongside a precomputed trace.
	cleanUpTo := 0
	if tr == nil {
		if needClean {
			cleanUpTo = L
		} else if needsNominal(inj) {
			cleanUpTo = cp.lastNominal
		}
	}
	// Crashed neurons always emit 0: write it directly instead of an
	// interface call per fault.
	_, isCrash := inj.(Crash)

	yF, yC := x, x
	l := 1
	if tr != nil && cp.diverge > 1 {
		// Shared prefix is already on the trace: jump to the divergence.
		l = cp.diverge
		if l > L+1 {
			l = L + 1
		}
		if l > 1 {
			yF = tr.Outputs[l-2]
		}
	}
	for ; l <= L; l++ {
		sF := e.fault[l-1]
		switch {
		case l < cp.diverge:
			// Shared prefix: one sweep serves both paths.
			m.LayerSums(l, sF, yF, nil)
			activation.Eval(act, sF, sF)
			yF, yC = sF, sF
			continue
		case tr == nil && l <= cleanUpTo && !sameSlice(yF, yC):
			// Diverged and clean still needed: one fused sweep computes
			// both sums.
			sC := e.clean[l-1]
			m.LayerSums2(l, sF, yF, sC, yC)
			activation.Eval(act, sC, sC)
			yC = sC
		case tr == nil && l <= cleanUpTo:
			// First divergent layer: received sums are still identical,
			// so compute them once and branch the activations.
			m.LayerSums(l, sF, yF, nil)
			sC := e.clean[l-1]
			copy(sC, sF)
			activation.Eval(act, sC, sC)
			yC = sC
		case tr != nil && l == cp.diverge && len(cp.synapsesAt[l]) == 0:
			// First divergent layer alongside a precomputed trace, no
			// synapse faults: the received sums equal the clean ones, so
			// every non-overridden output is bitwise the trace's — copy
			// and override, skipping the matvec and the activations.
			copy(sF, tr.Outputs[l-1])
			if isCrash {
				for _, f := range cp.neuronsAt[l] {
					sF[f.Index] = 0
				}
			} else {
				for _, f := range cp.neuronsAt[l] {
					sF[f.Index] = inj.NeuronValue(f, tr.Outputs[l-1][f.Index])
				}
			}
			yF = sF
			continue
		default:
			m.LayerSums(l, sF, yF, cp.overridden[l])
		}
		for _, f := range cp.synapsesAt[l] {
			transmitted := m.Weight(l, f.To, f.From) * yF[f.From]
			sF[f.To] += inj.SynapseDelta(f, transmitted)
		}
		evalSkip(act, sF, cp.overridden[l])
		if isCrash {
			for _, f := range cp.neuronsAt[l] {
				sF[f.Index] = 0
			}
		} else {
			for _, f := range cp.neuronsAt[l] {
				// The clean output exists wherever the injector can read
				// it: injectors that never consume nominals (cleanUpTo
				// stopped short) receive a fixed 0.
				nom := 0.0
				if tr != nil {
					nom = tr.Outputs[l-1][f.Index]
				} else if l <= cleanUpTo {
					nom = yC[f.Index]
				}
				sF[f.Index] = inj.NeuronValue(f, nom)
			}
		}
		yF = sF
	}

	faulted = m.OutputSum(yF)
	for _, f := range cp.synapsesAt[L+1] {
		transmitted := m.Weight(L+1, f.To, f.From) * yF[f.From]
		faulted += inj.SynapseDelta(f, transmitted)
	}
	switch {
	case tr != nil:
		clean = tr.Output
	case needClean:
		clean = m.OutputSum(yC)
	}
	return faulted, clean
}

// sameSlice reports whether a and b share the same backing view.
func sameSlice(a, b []float64) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// evalSkip applies the activation in place to every entry of s except
// the (sorted) skipped indices, whose values are overridden afterwards.
func evalSkip(f activation.Func, s []float64, skip []int) {
	if len(skip) == 0 {
		activation.Eval(f, s, s)
		return
	}
	lo := 0
	for _, idx := range skip {
		if idx > lo {
			activation.Eval(f, s[lo:idx], s[lo:idx])
		}
		lo = idx + 1
	}
	if lo < len(s) {
		activation.Eval(f, s[lo:], s[lo:])
	}
}

// CleanTraces evaluates the fault-free trace of every input once, in
// parallel — the shared reference for sweeping many plans over a fixed
// input set (Monte Carlo profiles, sign searches, exhaustive
// configuration searches).
func CleanTraces(m nn.Model, inputs [][]float64) []*nn.Trace {
	out := make([]*nn.Trace, len(inputs))
	parallel.For(len(inputs), func(i int) { out[i] = nn.TraceModel(m, inputs[i]) })
	return out
}
