package fault

import (
	"testing"

	"repro/internal/activation"
	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/rng"
)

// batchTestNet builds a dense net with biases so every kernel path
// (bias add, skip lists, synapse layers) is exercised.
func batchTestNet(seed uint64) (*nn.Network, [][]float64) {
	r := rng.New(seed)
	net := nn.NewRandom(r, nn.Config{InputDim: 3, Widths: []int{9, 7, 5}, Act: activation.NewSigmoid(1), Bias: true}, 0.6)
	inputs := make([][]float64, 6)
	for i := range inputs {
		x := make([]float64, 3)
		r.Floats(x, 0, 1)
		inputs[i] = x
	}
	return net, inputs
}

// TestBatchMatchesScalarAllModels is the tentpole's ground-truth gate:
// for EVERY registered fault model, the batched engine's per-lane
// errors must be bit-identical to the one-at-a-time oracle —
// full-capacity batches, partial batches, and lanes with different
// divergence layers all included. Stochastic models run on twin-seeded
// streams: each lane's injector owns its rng, so lane interleaving must
// not perturb any lane's draw sequence.
func TestBatchMatchesScalarAllModels(t *testing.T) {
	net, inputs := batchTestNet(101)
	traces := CleanTraces(net, inputs)
	r := rng.New(103)

	// Lane plans with deliberately mixed divergence: an empty plan
	// (never diverges), a deep-only plan, shallow plans, and plans with
	// synapse faults either side of the output stage.
	plans := []Plan{
		{},
		{Neurons: []NeuronFault{{Layer: 3, Index: 4}}},
		RandomNeuronPlan(r, net, []int{2, 1, 1}),
		{Neurons: []NeuronFault{{Layer: 1, Index: 0}, {Layer: 1, Index: 8}}},
		{Synapses: []SynapseFault{{Layer: 4, To: 0, From: 3}}},
		{Neurons: []NeuronFault{{Layer: 2, Index: 6}},
			Synapses: []SynapseFault{{Layer: 1, To: 2, From: 1}, {Layer: 3, To: 1, From: 5}}},
		RandomNeuronPlan(r, net, []int{1, 1, 0}),
		RandomNeuronPlan(r, net, []int{3, 2, 2}),
	}

	for _, m := range Models() {
		build := func(seed uint64) Injector {
			inj, err := m.New(Params{C: 0.8, Sem: core.DeviationCap, Value: 0.4, Prob: 0.5, Bits: 8, Bit: 6, Net: net, R: rng.New(seed)})
			if err != nil {
				t.Fatalf("%s: %v", m.Name, err)
			}
			return inj
		}
		for _, lanes := range []int{1, 3, len(plans)} {
			bp := CompileBatch(net, len(plans))
			bp.Reset(plans[:lanes])
			// Stochastic injectors advance their rng across traces, so
			// the scalar oracle replays the whole trace sweep per lane
			// on a twin-seeded injector — same visit order, same draws.
			injs := make([]Injector, lanes)
			oracle := make([]Injector, lanes)
			scalars := make([]*CompiledPlan, lanes)
			for p := 0; p < lanes; p++ {
				injs[p] = build(uint64(1000 + p))
				oracle[p] = build(uint64(1000 + p))
				scalars[p] = Compile(net, plans[p])
			}
			out := make([]float64, lanes)
			for _, tr := range traces {
				bp.ErrorsOnTrace(injs, tr, out)
				for p := 0; p < lanes; p++ {
					want := scalars[p].ErrorOnTrace(oracle[p], tr)
					if out[p] != want {
						t.Fatalf("%s lanes=%d lane %d: batched %v != scalar %v", m.Name, lanes, p, out[p], want)
					}
				}
			}
		}
	}
}

// TestBatchResetSharedMatchesScalar pins the input-batching axis
// (MaxError's configuration: one plan, many traces per call).
func TestBatchResetSharedMatchesScalar(t *testing.T) {
	net, inputs := batchTestNet(113)
	traces := CleanTraces(net, inputs)
	r := rng.New(127)
	plan := RandomNeuronPlan(r, net, []int{2, 2, 1})
	cp := Compile(net, plan)
	inj := Crash{}

	bp := CompileBatch(net, 4)
	injs := []Injector{inj, inj, inj, inj}
	out := make([]float64, 4)
	for i := 0; i < len(traces); i += 4 {
		k := len(traces) - i
		if k > 4 {
			k = 4
		}
		bp.ResetShared(plan, k)
		bp.ErrorsOnTraces(injs[:k], traces[i:i+k], out[:k])
		for p := 0; p < k; p++ {
			if want := cp.ErrorOnTrace(inj, traces[i+p]); out[p] != want {
				t.Fatalf("trace %d: batched %v != scalar %v", i+p, out[p], want)
			}
		}
	}
}

// TestBatchedPathsMatchScalarSweeps pins the rewired public entry
// points end to end: MaxError against MaxErrorSeq, and MonteCarlo
// against a scalar replay of its historical trial loop — same seed,
// same draws, identical profile.
func TestBatchedPathsMatchScalarSweeps(t *testing.T) {
	net, inputs := batchTestNet(131)
	r := rng.New(137)
	plan := RandomNeuronPlan(r, net, []int{2, 1, 1})
	if got, want := MaxError(net, plan, Crash{}, inputs), MaxErrorSeq(net, plan, Crash{}, inputs); got != want {
		t.Fatalf("MaxError batched %v != sequential %v", got, want)
	}

	const trials = 37 // not a multiple of BatchLanes: exercises the tail group
	perLayer := []int{1, 1, 1}
	got := MonteCarlo(net, perLayer, 0.9, core.DeviationCap, inputs, trials, rng.New(139))

	// Scalar replay of the pre-batching MonteCarlo loop.
	traces := CleanTraces(net, inputs)
	rr := rng.New(139)
	errs := make([]float64, trials)
	for t2 := 0; t2 < trials; t2++ {
		p := RandomNeuronPlan(rr, net, perLayer)
		inj := Injector(RandomByzantine{C: 0.9, Sem: core.DeviationCap, R: rr.Split()})
		cp := Compile(net, p)
		worst := 0.0
		for _, tr := range traces {
			if e := cp.ErrorOnTrace(inj, tr); e > worst {
				worst = e
			}
		}
		errs[t2] = worst
	}
	want := ProfileOf(errs)
	if got.Stats != want.Stats || got.Q90 != want.Q90 || got.Q99 != want.Q99 {
		t.Fatalf("MonteCarlo batched profile %+v != scalar replay %+v", got, want)
	}
}

// TestBatchSteadyStateAllocs extends the zero-allocation contract to
// the batched engine: once compiled and loaded, Reset + ErrorsOnTrace
// must not allocate.
func TestBatchSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-instrumented sync.Pool allocates on Get; the contract is measured without the detector")
	}
	net, inputs := batchTestNet(149)
	traces := CleanTraces(net, inputs)
	r := rng.New(151)
	plans := make([]Plan, BatchLanes)
	for p := range plans {
		plans[p] = RandomNeuronPlan(r, net, []int{1, 1, 1})
	}
	bp := CompileBatch(net, BatchLanes)
	injs := make([]Injector, BatchLanes)
	for p := range injs {
		injs[p] = Crash{}
	}
	out := make([]float64, BatchLanes)
	run := func() {
		bp.Reset(plans)
		for _, tr := range traces {
			bp.ErrorsOnTrace(injs, tr, out)
		}
	}
	run()
	if allocs := testing.AllocsPerRun(50, run); allocs != 0 {
		t.Errorf("batched sweep: %v allocs per run, want 0", allocs)
	}
}

// TestBatchCapacityPanics pins the overload panics.
func TestBatchCapacityPanics(t *testing.T) {
	net, _ := batchTestNet(157)
	bp := CompileBatch(net, 2)
	if bp.Lanes() != 2 {
		t.Fatalf("Lanes() = %d, want 2", bp.Lanes())
	}
	for _, run := range []func(){
		func() { bp.Reset(make([]Plan, 3)) },
		func() { bp.ResetShared(Plan{}, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on over-capacity load")
				}
			}()
			run()
		}()
	}
}
