package fault

import (
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/rng"
)

// Profile is the empirical error distribution of a failure process —
// the probabilistic complement to the worst-case Fep bound: Fep certifies
// the tail's endpoint, the profile shows where the mass actually sits.
type Profile struct {
	// Stats summarises the per-trial max errors.
	Stats metrics.Stats
	// Q90, Q99 are upper quantiles of the per-trial max error.
	Q90, Q99 float64
	// Trials is the number of random failure configurations evaluated.
	Trials int
}

// MonteCarlo samples random failure configurations of the given per-layer
// distribution, each with random bounded Byzantine values (or crashes
// when c == 0), measures the max error over the inputs for each, and
// returns the empirical profile.
//
// Trials run through the batched multi-lane engine, BatchLanes
// configurations per sweep; each trial's plan and rng stream are drawn
// in trial order and each lane replays the scalar evaluation exactly,
// so the profile is bit-identical to evaluating trials one at a time.
func MonteCarlo(n nn.Model, perLayer []int, c float64, sem core.CapSemantics, inputs [][]float64, trials int, r *rng.Rand) Profile {
	// One clean sweep per input serves every sampled configuration; each
	// group of trials then costs one multi-lane damaged sweep per input.
	traces := CleanTraces(n, inputs)
	bp := CompileBatch(n, BatchLanes)
	errs := make([]float64, trials)
	var plans [BatchLanes]Plan
	var injs [BatchLanes]Injector
	var laneErr, laneWorst [BatchLanes]float64
	for t := 0; t < trials; t += BatchLanes {
		lanes := BatchLanes
		if rem := trials - t; rem < lanes {
			lanes = rem
		}
		for p := 0; p < lanes; p++ {
			plans[p] = RandomNeuronPlan(r, n, perLayer)
			if c == 0 {
				injs[p] = Crash{}
			} else {
				injs[p] = RandomByzantine{C: c, Sem: sem, R: r.Split()}
			}
			laneWorst[p] = 0
		}
		bp.Reset(plans[:lanes])
		for _, tr := range traces {
			bp.ErrorsOnTrace(injs[:lanes], tr, laneErr[:lanes])
			for p := 0; p < lanes; p++ {
				if laneErr[p] > laneWorst[p] {
					laneWorst[p] = laneErr[p]
				}
			}
		}
		copy(errs[t:t+lanes], laneWorst[:lanes])
	}
	return ProfileOf(errs)
}

// ProfileOf summarises per-trial max errors into a Profile — the shared
// tail of MonteCarlo and of executors that produce the per-trial errors
// themselves (e.g. a sharded parallel sweep).
func ProfileOf(errs []float64) Profile {
	sorted := append([]float64(nil), errs...)
	sort.Float64s(sorted)
	return Profile{
		Stats:  metrics.Summarize(errs),
		Q90:    quantile(sorted, 0.90),
		Q99:    quantile(sorted, 0.99),
		Trials: len(errs),
	}
}

// inputCand pairs a candidate worst input with its error.
type inputCand struct {
	x []float64
	e float64
}

// insertionSortCands orders candidates by error, descending.
func insertionSortCands(xs []inputCand) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j].e > xs[j-1].e; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// WorstInput searches for an input maximising the damaged-vs-nominal
// error: a random sampling phase (16 candidates per restart) seeds
// coordinate-wise hill climbing on [0,1]^d from the best points found.
// It complements grid sampling: the tightness demonstrations need inputs
// near the equality cases of the proofs, which climbing localises far
// more cheaply than a dense grid.
func WorstInput(n nn.Model, p Plan, inj Injector, r *rng.Rand, restarts, steps int) ([]float64, float64) {
	d := n.Width(0)
	cp := Compile(n, p)
	// Sampling phase: collect starting points, keep the `restarts` best.
	pool := make([]inputCand, 0, 16*restarts)
	for i := 0; i < 16*restarts; i++ {
		x := make([]float64, d)
		r.Floats(x, 0, 1)
		pool = append(pool, inputCand{x, cp.ErrorOn(inj, x)})
	}
	insertionSortCands(pool)
	if restarts > len(pool) {
		restarts = len(pool)
	}

	bestX := make([]float64, d)
	bestErr := -1.0
	for restart := 0; restart < restarts; restart++ {
		x := append([]float64(nil), pool[restart].x...)
		cur := pool[restart].e
		step := 0.25
		for s := 0; s < steps; s++ {
			improved := false
			for i := 0; i < d; i++ {
				for _, dir := range []float64{+1, -1} {
					cand := x[i] + dir*step
					if cand < 0 || cand > 1 {
						continue
					}
					old := x[i]
					x[i] = cand
					if e := cp.ErrorOn(inj, x); e > cur {
						cur = e
						improved = true
					} else {
						x[i] = old
					}
				}
			}
			if !improved {
				step /= 2
				if step < 1e-4 {
					break
				}
			}
		}
		if cur > bestErr {
			bestErr = cur
			copy(bestX, x)
		}
	}
	return bestX, bestErr
}
