package fault

import (
	"repro/internal/activation"
	"repro/internal/nn"
)

// evalDAG is eval's level-scheduled path for arbitrary-topology models.
// Every level stays resident so later levels can read it; the single
// divergence layer of the layered sweep generalises to the divergence
// FRONTIER: levels off the frontier are bitwise identical between the
// clean and damaged passes and are computed once (or taken straight
// from the precomputed trace), levels on it branch. Synapse faults are
// addressed by in-edge ordinal (nn.DAGModel), so a fault can sit on a
// skip edge as naturally as on a previous-level one.
func (cp *CompiledPlan) evalDAG(e *planEval, inj Injector, x []float64, tr *nn.Trace, needClean bool) (faulted, clean float64) {
	m := cp.dag
	L := m.NumLayers()
	act := m.Activation()
	e.ensure(cp.net)

	// How deep the clean sweep must run: to the end for the fused error,
	// to the deepest neuron fault when the injector consumes nominal
	// values, not at all alongside a precomputed trace.
	cleanUpTo := 0
	if tr == nil {
		if needClean {
			cleanUpTo = L
		} else if needsNominal(inj) {
			cleanUpTo = cp.lastNominal
		}
	}
	_, isCrash := inj.(Crash)

	ysF, ysC := e.levelsF, e.levelsC
	ysF[0], ysC[0] = x, x
	for l := 1; l <= L; l++ {
		sF := e.fault[l-1]
		if tr != nil {
			ysC[l] = tr.Outputs[l-1]
			if !cp.frontier[l] {
				ysF[l] = tr.Outputs[l-1]
				continue
			}
			if len(cp.synapsesAt[l]) == 0 && !cp.srcDirty[l] {
				// Every source is clean and no synapse fault perturbs the
				// sums: non-overridden outputs are bitwise the trace's.
				copy(sF, tr.Outputs[l-1])
				cp.overrideNeurons(inj, isCrash, l, sF, tr.Outputs[l-1])
				ysF[l] = sF
				continue
			}
		} else if !cp.frontier[l] {
			// Off the frontier: one sweep serves both passes (all sources
			// of l are themselves off the frontier, so ysF already holds
			// their clean outputs).
			m.LevelSums(l, sF, ysF, nil)
			activation.Eval(act, sF, sF)
			ysF[l], ysC[l] = sF, sF
			continue
		} else if l <= cleanUpTo {
			sC := e.clean[l-1]
			m.LevelSums(l, sC, ysC, nil)
			activation.Eval(act, sC, sC)
			ysC[l] = sC
		}
		m.LevelSums(l, sF, ysF, cp.overridden[l])
		for _, f := range cp.synapsesAt[l] {
			sl, si, w := m.InEdge(l, f.To, f.From)
			sF[f.To] += inj.SynapseDelta(f, w*ysF[sl][si])
		}
		evalSkip(act, sF, cp.overridden[l])
		var nomC []float64
		switch {
		case tr != nil:
			nomC = tr.Outputs[l-1]
		case l <= cleanUpTo:
			nomC = ysC[l]
		}
		cp.overrideNeurons(inj, isCrash, l, sF, nomC)
		ysF[l] = sF
	}

	faulted = m.OutputSumLevels(ysF)
	for _, f := range cp.synapsesAt[L+1] {
		sl, si, w := m.InEdge(L+1, f.To, f.From)
		faulted += inj.SynapseDelta(f, w*ysF[sl][si])
	}
	switch {
	case tr != nil:
		clean = tr.Output
	case needClean:
		clean = m.OutputSumLevels(ysC)
	}
	return faulted, clean
}

// overrideNeurons replaces layer l's faulty outputs in sF; nomC, when
// non-nil, supplies the clean nominal outputs (injectors that never
// consume nominals receive a fixed 0, as in the layered sweep).
func (cp *CompiledPlan) overrideNeurons(inj Injector, isCrash bool, l int, sF, nomC []float64) {
	if isCrash {
		for _, f := range cp.neuronsAt[l] {
			sF[f.Index] = 0
		}
		return
	}
	for _, f := range cp.neuronsAt[l] {
		nom := 0.0
		if nomC != nil {
			nom = nomC[f.Index]
		}
		sF[f.Index] = inj.NeuronValue(f, nom)
	}
}
