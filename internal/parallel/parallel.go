// Package parallel provides small data-parallel building blocks used by the
// tensor kernels, the exhaustive fault-configuration search, and the
// experiment sweeps. Everything is stdlib-only: goroutines, channels and
// sync primitives, in the style of a fixed worker pool fed from a shared
// index channel.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers returns the degree of parallelism used by default: GOMAXPROCS.
func Workers() int {
	return runtime.GOMAXPROCS(0)
}

// For runs body(i) for every i in [0, n) across the default number of
// workers. Iterations are distributed in contiguous chunks to preserve
// cache locality. It blocks until all iterations complete. For small n the
// loop runs inline to avoid goroutine overhead.
func For(n int, body func(i int)) {
	ForChunked(n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForChunked partitions [0, n) into contiguous chunks of at least grain
// iterations (grain <= 0 selects an automatic grain) and runs body(lo, hi)
// for each chunk across the default number of workers.
func ForChunked(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := Workers()
	if grain <= 0 {
		grain = n / (4 * workers)
		if grain < 1 {
			grain = 1
		}
	}
	chunks := (n + grain - 1) / grain
	if chunks <= 1 || workers <= 1 {
		body(0, n)
		return
	}
	if chunks < workers {
		workers = chunks
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				c := int(atomic.AddInt64(&next, 1)) - 1
				if c >= chunks {
					return
				}
				lo := c * grain
				hi := lo + grain
				if hi > n {
					hi = n
				}
				body(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// Map applies f to every index in [0, n) and collects the results in order.
func Map[T any](n int, f func(i int) T) []T {
	out := make([]T, n)
	For(n, func(i int) { out[i] = f(i) })
	return out
}

// MaxFloat64 computes max over f(i) for i in [0, n) in parallel. It returns
// negative infinity for n <= 0.
func MaxFloat64(n int, f func(i int) float64) float64 {
	if n <= 0 {
		return negInf
	}
	workers := Workers()
	if n < 64 || workers <= 1 {
		m := negInf
		for i := 0; i < n; i++ {
			if v := f(i); v > m {
				m = v
			}
		}
		return m
	}
	partial := make([]float64, workers)
	for i := range partial {
		partial[i] = negInf
	}
	var next int64
	const grain = 64
	chunks := (n + grain - 1) / grain
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(slot int) {
			defer wg.Done()
			local := negInf
			for {
				c := int(atomic.AddInt64(&next, 1)) - 1
				if c >= chunks {
					break
				}
				lo, hi := c*grain, (c+1)*grain
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					if v := f(i); v > local {
						local = v
					}
				}
			}
			partial[slot] = local
		}(w)
	}
	wg.Wait()
	m := negInf
	for _, v := range partial {
		if v > m {
			m = v
		}
	}
	return m
}

// SumFloat64 computes the sum of f(i) for i in [0, n) in parallel with
// per-worker partial sums (deterministic per worker count is not
// guaranteed bit-for-bit; callers needing exact reproducibility should use
// a sequential loop).
func SumFloat64(n int, f func(i int) float64) float64 {
	if n <= 0 {
		return 0
	}
	workers := Workers()
	if n < 64 || workers <= 1 {
		s := 0.0
		for i := 0; i < n; i++ {
			s += f(i)
		}
		return s
	}
	partial := make([]float64, workers)
	var next int64
	const grain = 64
	chunks := (n + grain - 1) / grain
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(slot int) {
			defer wg.Done()
			local := 0.0
			for {
				c := int(atomic.AddInt64(&next, 1)) - 1
				if c >= chunks {
					break
				}
				lo, hi := c*grain, (c+1)*grain
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					local += f(i)
				}
			}
			partial[slot] = local
		}(w)
	}
	wg.Wait()
	s := 0.0
	for _, v := range partial {
		s += v
	}
	return s
}

const negInf = -1.7976931348623157e308 // approx -MaxFloat64; avoids math import

// Pool is a reusable fixed-size worker pool for heterogeneous tasks. Tasks
// are closures; Wait blocks until all submitted tasks finish. A Pool may be
// reused across Wait cycles but is not safe for concurrent Submit/Wait
// races from multiple producers.
type Pool struct {
	tasks chan func()
	wg    sync.WaitGroup
	once  sync.Once
	size  int
}

// NewPool creates a pool with the given number of workers (<= 0 selects the
// default degree of parallelism).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = Workers()
	}
	p := &Pool{tasks: make(chan func(), 4*workers), size: workers}
	for i := 0; i < workers; i++ {
		go func() {
			for task := range p.tasks {
				task()
				p.wg.Done()
			}
		}()
	}
	return p
}

// Size reports the number of workers.
func (p *Pool) Size() int { return p.size }

// Submit enqueues a task. It must not be called after Close.
func (p *Pool) Submit(task func()) {
	p.wg.Add(1)
	p.tasks <- task
}

// Wait blocks until every submitted task has completed.
func (p *Pool) Wait() { p.wg.Wait() }

// Close shuts the pool down after draining outstanding tasks.
func (p *Pool) Close() {
	p.once.Do(func() {
		p.wg.Wait()
		close(p.tasks)
	})
}
