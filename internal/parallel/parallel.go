// Package parallel provides small data-parallel building blocks used by the
// tensor kernels, the exhaustive fault-configuration search, and the
// experiment sweeps. Everything is stdlib-only: goroutines, channels and
// sync primitives, in the style of a fixed worker pool fed from a shared
// index channel.
package parallel

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers returns the degree of parallelism used by default: GOMAXPROCS.
func Workers() int {
	return runtime.GOMAXPROCS(0)
}

// For runs body(i) for every i in [0, n) across the default number of
// workers. Iterations are distributed in contiguous chunks to preserve
// cache locality. It blocks until all iterations complete. For small n the
// loop runs inline to avoid goroutine overhead.
func For(n int, body func(i int)) {
	ForChunked(n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// chunkTask carries one ForChunked dispatch to the persistent helper
// workers. Instances are pooled and the helpers never retain one past
// their final wg.Done(), so a steady-state ForChunked call allocates
// nothing (the 4 allocs/op the BENCH_9 lowered matvec paid were this
// dispatch: the per-call goroutine closures and the escaping next/wg).
type chunkTask struct {
	body   func(lo, hi int)
	n      int
	grain  int
	chunks int64
	next   int64
	wg     sync.WaitGroup
}

// run claims chunks off the shared atomic cursor until none remain.
func (t *chunkTask) run() {
	for {
		c := atomic.AddInt64(&t.next, 1) - 1
		if c >= t.chunks {
			return
		}
		lo := int(c) * t.grain
		hi := lo + t.grain
		if hi > t.n {
			hi = t.n
		}
		t.body(lo, hi)
	}
}

var (
	chunkWorkOnce sync.Once
	chunkWork     chan *chunkTask
	chunkTaskPool = sync.Pool{New: func() any { return new(chunkTask) }}
)

// startChunkWorkers lazily boots the persistent helper workers that
// serve every ForChunked call in the process. Helpers idle on a channel
// receive between dispatches; they are started once and never exit.
func startChunkWorkers() {
	workers := Workers()
	// Unbuffered: a non-blocking send succeeds only when a helper is
	// parked on the receive, so a dispatch can never queue behind a
	// helper that is busy running someone else's chunks.
	chunkWork = make(chan *chunkTask)
	for w := 0; w < workers; w++ {
		go func() {
			for t := range chunkWork {
				t.run()
				t.wg.Done()
			}
		}()
	}
}

// ForChunked partitions [0, n) into contiguous chunks of at least grain
// iterations (grain <= 0 selects an automatic grain) and runs body(lo, hi)
// for each chunk across the default number of workers. The caller always
// participates; helper workers are persistent and enlisted with
// non-blocking sends, so nested or concurrent calls never deadlock —
// when every helper is busy the caller simply runs all chunks itself.
func ForChunked(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := Workers()
	if grain <= 0 {
		grain = n / (4 * workers)
		if grain < 1 {
			grain = 1
		}
	}
	chunks := (n + grain - 1) / grain
	if chunks <= 1 || workers <= 1 {
		body(0, n)
		return
	}
	chunkWorkOnce.Do(startChunkWorkers)
	t := chunkTaskPool.Get().(*chunkTask)
	t.body, t.n, t.grain, t.chunks, t.next = body, n, grain, int64(chunks), 0
	helpers := workers - 1
	if helpers > chunks-1 {
		helpers = chunks - 1
	}
	for h := 0; h < helpers; h++ {
		t.wg.Add(1)
		select {
		case chunkWork <- t:
		default:
			// Every helper is mid-dispatch for someone else; don't
			// queue behind them — the caller covers the rest.
			t.wg.Done()
			h = helpers
		}
	}
	t.run()
	t.wg.Wait()
	t.body = nil
	chunkTaskPool.Put(t)
}

// Map applies f to every index in [0, n) and collects the results in order.
func Map[T any](n int, f func(i int) T) []T {
	out := make([]T, n)
	For(n, func(i int) { out[i] = f(i) })
	return out
}

// ReduceFloat64 combines f(i) for i in [0, n) with merge, a commutative
// and associative operation with the given identity. Work is distributed
// over per-worker partial reductions (the combination order is therefore
// not deterministic for non-exact merges such as floating-point
// addition; callers needing bit-for-bit reproducibility should reduce
// sequentially). It returns identity for n <= 0.
func ReduceFloat64(n int, identity float64, f func(i int) float64, merge func(a, b float64) float64) float64 {
	if n <= 0 {
		return identity
	}
	workers := Workers()
	if n < 64 || workers <= 1 {
		acc := identity
		for i := 0; i < n; i++ {
			acc = merge(acc, f(i))
		}
		return acc
	}
	partial := make([]float64, workers)
	var next int64
	const grain = 64
	chunks := (n + grain - 1) / grain
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(slot int) {
			defer wg.Done()
			local := identity
			for {
				c := int(atomic.AddInt64(&next, 1)) - 1
				if c >= chunks {
					break
				}
				lo, hi := c*grain, (c+1)*grain
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					local = merge(local, f(i))
				}
			}
			partial[slot] = local
		}(w)
	}
	wg.Wait()
	acc := identity
	for _, v := range partial {
		acc = merge(acc, v)
	}
	return acc
}

// maxNaNIgnore returns the larger argument, ignoring NaNs (unlike
// math.Max, which propagates them) — the historical semantics of
// MaxFloat64's comparison loop.
func maxNaNIgnore(a, b float64) float64 {
	if b > a {
		return b
	}
	return a
}

// MaxFloat64 computes max over f(i) for i in [0, n) in parallel. It returns
// negative infinity for n <= 0.
func MaxFloat64(n int, f func(i int) float64) float64 {
	return ReduceFloat64(n, math.Inf(-1), f, maxNaNIgnore)
}

// SumFloat64 computes the sum of f(i) for i in [0, n) in parallel with
// per-worker partial sums (deterministic per worker count is not
// guaranteed bit-for-bit; callers needing exact reproducibility should use
// a sequential loop).
func SumFloat64(n int, f func(i int) float64) float64 {
	return ReduceFloat64(n, 0, f, func(a, b float64) float64 { return a + b })
}

// Pool is a reusable fixed-size worker pool for heterogeneous tasks. Tasks
// are closures; Wait blocks until all submitted tasks finish. A Pool may be
// reused across Wait cycles but is not safe for concurrent Submit/Wait
// races from multiple producers.
type Pool struct {
	tasks chan func()
	wg    sync.WaitGroup
	once  sync.Once
	size  int
}

// NewPool creates a pool with the given number of workers (<= 0 selects the
// default degree of parallelism).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = Workers()
	}
	p := &Pool{tasks: make(chan func(), 4*workers), size: workers}
	for i := 0; i < workers; i++ {
		go func() {
			for task := range p.tasks {
				task()
				p.wg.Done()
			}
		}()
	}
	return p
}

// Size reports the number of workers.
func (p *Pool) Size() int { return p.size }

// Submit enqueues a task. It must not be called after Close.
func (p *Pool) Submit(task func()) {
	p.wg.Add(1)
	p.tasks <- task
}

// Wait blocks until every submitted task has completed.
func (p *Pool) Wait() { p.wg.Wait() }

// ForCtx partitions [0, n) into contiguous chunks of at least grain
// iterations (grain <= 0 selects an automatic grain) and runs body(lo,
// hi) for each chunk on the pool's workers, honouring ctx: once ctx is
// cancelled or past its deadline no further chunk starts, and ForCtx
// returns ctx.Err() after the in-flight chunks finish. Long-running
// bodies should additionally poll ctx between iterations so a chunk in
// progress also stops promptly.
//
// Unlike fire-and-forget Submit loops, ForCtx always joins its chunks
// before returning — cancellation stops the shards instead of
// abandoning goroutines that keep burning the pool for a caller that
// already hung up. It blocks until completion or cancellation and is
// safe for concurrent use by multiple producers (each call tracks its
// own chunks).
func (p *Pool) ForCtx(ctx context.Context, n, grain int, body func(lo, hi int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if grain <= 0 {
		grain = n / (4 * p.size)
		if grain < 1 {
			grain = 1
		}
	}
	chunks := (n + grain - 1) / grain
	workers := p.size
	if chunks < workers {
		workers = chunks
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		p.Submit(func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				c := int(atomic.AddInt64(&next, 1)) - 1
				if c >= chunks {
					return
				}
				lo := c * grain
				hi := lo + grain
				if hi > n {
					hi = n
				}
				body(lo, hi)
			}
		})
	}
	wg.Wait()
	return ctx.Err()
}

// ForCtx64 is ForCtx over an int64 index space, for iteration counts
// that overflow int on 32-bit platforms — the fault-configuration
// sweeps count configurations in int64. Semantics match ForCtx exactly:
// chunked, pool-sharded, joins before returning, returns ctx.Err().
func (p *Pool) ForCtx64(ctx context.Context, n, grain int64, body func(lo, hi int64)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if grain <= 0 {
		grain = n / int64(4*p.size)
		if grain < 1 {
			grain = 1
		}
	}
	chunks := (n + grain - 1) / grain
	workers := int64(p.size)
	if chunks < workers {
		workers = chunks
	}
	var next int64
	var wg sync.WaitGroup
	for w := int64(0); w < workers; w++ {
		wg.Add(1)
		p.Submit(func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				c := atomic.AddInt64(&next, 1) - 1
				if c >= chunks {
					return
				}
				lo := c * grain
				hi := lo + grain
				if hi > n {
					hi = n
				}
				body(lo, hi)
			}
		})
	}
	wg.Wait()
	return ctx.Err()
}

// Close shuts the pool down after draining outstanding tasks.
func (p *Pool) Close() {
	p.once.Do(func() {
		p.wg.Wait()
		close(p.tasks)
	})
}
