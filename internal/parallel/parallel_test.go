package parallel

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 1000, 4097} {
		hits := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

func TestForChunkedCoversAllIndices(t *testing.T) {
	for _, n := range []int{1, 5, 100, 1023} {
		for _, grain := range []int{0, 1, 7, 100, 5000} {
			hits := make([]int32, n)
			ForChunked(n, grain, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
					return
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d grain=%d: index %d visited %d times", n, grain, i, h)
				}
			}
		}
	}
}

func TestForChunkedZeroN(t *testing.T) {
	called := false
	ForChunked(0, 10, func(lo, hi int) { called = true })
	if called {
		t.Fatal("body called for n=0")
	}
}

func TestMapOrder(t *testing.T) {
	out := Map(100, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("Map[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMaxFloat64(t *testing.T) {
	vals := []float64{3, -1, 7.5, 2, 7.49, -100}
	got := MaxFloat64(len(vals), func(i int) float64 { return vals[i] })
	if got != 7.5 {
		t.Fatalf("MaxFloat64 = %v, want 7.5", got)
	}
}

func TestMaxFloat64Large(t *testing.T) {
	const n = 10000
	got := MaxFloat64(n, func(i int) float64 { return float64(i % 997) })
	if got != 996 {
		t.Fatalf("MaxFloat64 = %v, want 996", got)
	}
}

func TestMaxFloat64Empty(t *testing.T) {
	got := MaxFloat64(0, func(i int) float64 { return 1 })
	if !math.IsInf(got, -1) {
		t.Fatalf("MaxFloat64 on empty = %v", got)
	}
}

func TestSumFloat64MatchesSequential(t *testing.T) {
	f := func(nRaw uint16) bool {
		n := int(nRaw % 5000)
		seq := 0.0
		for i := 0; i < n; i++ {
			seq += float64(i)
		}
		par := SumFloat64(n, func(i int) float64 { return float64(i) })
		diff := par - seq
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-6*(seq+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPoolRunsAllTasks(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var count int64
	for i := 0; i < 500; i++ {
		p.Submit(func() { atomic.AddInt64(&count, 1) })
	}
	p.Wait()
	if count != 500 {
		t.Fatalf("pool ran %d/500 tasks", count)
	}
}

func TestPoolReuseAcrossWaits(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var count int64
	for round := 0; round < 3; round++ {
		for i := 0; i < 50; i++ {
			p.Submit(func() { atomic.AddInt64(&count, 1) })
		}
		p.Wait()
	}
	if count != 150 {
		t.Fatalf("pool ran %d/150 tasks across waits", count)
	}
}

func TestPoolDefaultSize(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if p.Size() != Workers() {
		t.Fatalf("default pool size %d, want %d", p.Size(), Workers())
	}
}

func BenchmarkForOverhead(b *testing.B) {
	buf := make([]float64, 1<<14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		For(len(buf), func(j int) { buf[j] = float64(j) * 1.5 })
	}
}

// TestForCtxCompletes runs a full sweep: every index is visited exactly
// once and the error is nil.
func TestForCtxCompletes(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const n = 1000
	var hits [n]int32
	if err := p.ForCtx(context.Background(), n, 7, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	}); err != nil {
		t.Fatalf("ForCtx = %v", err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

// TestForCtxCancelStopsShards cancels mid-sweep: ForCtx must return
// ctx.Err(), stop scheduling chunks, and join every in-flight chunk
// before returning (no goroutine keeps touching the counter after).
func TestForCtxCancelStopsShards(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	var done int64
	const n = 1 << 20
	err := p.ForCtx(ctx, n, 16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if atomic.AddInt64(&done, 1) == 512 {
				cancel()
			}
		}
	})
	if err != context.Canceled {
		t.Fatalf("ForCtx = %v, want context.Canceled", err)
	}
	after := atomic.LoadInt64(&done)
	if after == n {
		t.Fatal("cancellation did not stop the sweep")
	}
	// ForCtx returned, so all chunks joined: the counter must be frozen.
	time.Sleep(20 * time.Millisecond)
	if got := atomic.LoadInt64(&done); got != after {
		t.Fatalf("work continued after ForCtx returned: %d -> %d", after, got)
	}
}

// TestForCtxDeadline bounds a sweep whose body out-sleeps the deadline.
func TestForCtxDeadline(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := p.ForCtx(ctx, 1000, 1, func(lo, hi int) {
		time.Sleep(time.Millisecond)
	})
	if err != context.DeadlineExceeded {
		t.Fatalf("ForCtx = %v, want context.DeadlineExceeded", err)
	}
}

// TestForCtxConcurrentProducers drives two overlapping sweeps on one
// pool: each must see exactly its own iterations.
func TestForCtxConcurrentProducers(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var a, b int64
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		p.ForCtx(context.Background(), 500, 3, func(lo, hi int) { atomic.AddInt64(&a, int64(hi-lo)) })
	}()
	go func() {
		defer wg.Done()
		p.ForCtx(context.Background(), 700, 5, func(lo, hi int) { atomic.AddInt64(&b, int64(hi-lo)) })
	}()
	wg.Wait()
	if a != 500 || b != 700 {
		t.Fatalf("sweeps saw %d/%d iterations, want 500/700", a, b)
	}
}
