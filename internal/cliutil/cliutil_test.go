package cliutil

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/activation"
	"repro/internal/nn"
	"repro/internal/rng"
)

func TestParseWidths(t *testing.T) {
	got, err := ParseWidths("16, 8,4")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 16 || got[1] != 8 || got[2] != 4 {
		t.Fatalf("ParseWidths = %v", got)
	}
	for _, bad := range []string{"", "0", "-3", "a", "4,,2"} {
		if _, err := ParseWidths(bad); err == nil {
			t.Fatalf("ParseWidths(%q) accepted", bad)
		}
	}
}

func TestParseFaultsUniform(t *testing.T) {
	got, err := ParseFaults("2", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 2 || got[2] != 2 {
		t.Fatalf("uniform broadcast = %v", got)
	}
}

func TestParseFaultsPerLayer(t *testing.T) {
	got, err := ParseFaults("1,0,3", 3)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 0 || got[2] != 3 {
		t.Fatalf("per layer = %v", got)
	}
	if _, err := ParseFaults("1,2", 3); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if _, err := ParseFaults("-1", 2); err == nil {
		t.Fatal("negative accepted")
	}
	if _, err := ParseFaults("1,x", 2); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestClampFaults(t *testing.T) {
	faults := []int{5, 1}
	ClampFaults(faults, []int{3, 4})
	if faults[0] != 3 || faults[1] != 1 {
		t.Fatalf("ClampFaults = %v", faults)
	}
}

func TestSaveLoadNetworkRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "net.json")
	r := rng.New(1)
	net := nn.NewRandom(r, nn.Config{InputDim: 2, Widths: []int{4}, Act: activation.NewSigmoid(1.5), Bias: true}, 1)
	if err := SaveNetwork(path, net); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadNetwork(path)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.3, 0.7}
	if math.Abs(net.Forward(x)-restored.Forward(x)) > 1e-15 {
		t.Fatal("round trip changed the function")
	}
}

func TestLoadNetworkErrors(t *testing.T) {
	if _, err := LoadNetwork("/nonexistent/net.json"); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadNetwork(bad); err == nil {
		t.Fatal("bad JSON accepted")
	}
}
