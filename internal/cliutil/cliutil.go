// Package cliutil holds the argument-parsing helpers shared by the
// command-line tools, factored out of package main so they are unit
// testable.
package cliutil

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/conv"
	"repro/internal/nn"
)

// ParseWidths parses "16" or "16,8,4" into positive layer widths.
func ParseWidths(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("cliutil: bad width %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseFaults parses a fault distribution: a single integer is broadcast
// uniformly over the layers, a comma-separated list must match the layer
// count. Entries must be non-negative.
func ParseFaults(s string, layers int) ([]int, error) {
	parts := strings.Split(s, ",")
	if len(parts) == 1 {
		v, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil || v < 0 {
			return nil, fmt.Errorf("cliutil: bad fault count %q", s)
		}
		out := make([]int, layers)
		for i := range out {
			out[i] = v
		}
		return out, nil
	}
	if len(parts) != layers {
		return nil, fmt.Errorf("cliutil: %d fault entries for %d layers", len(parts), layers)
	}
	out := make([]int, layers)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 0 {
			return nil, fmt.Errorf("cliutil: bad fault count %q", p)
		}
		out[i] = v
	}
	return out, nil
}

// ClampFaults limits each entry to the layer width.
func ClampFaults(faults, widths []int) {
	for i := range faults {
		if i < len(widths) && faults[i] > widths[i] {
			faults[i] = widths[i]
		}
	}
}

// LoadNetwork reads a JSON-serialised network from disk.
func LoadNetwork(path string) (*nn.Network, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var net nn.Network
	if err := json.Unmarshal(data, &net); err != nil {
		return nil, fmt.Errorf("cliutil: parsing %s: %w", path, err)
	}
	return &net, nil
}

// SaveNetwork writes a network as indented JSON.
func SaveNetwork(path string, net *nn.Network) error {
	return SaveModel(path, net)
}

// SaveModel writes any model (dense or conv) as indented JSON through
// its architecture's codec.
func SaveModel(path string, m nn.Model) error {
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadModel reads any architecture-tagged model document from disk:
// untagged dense networks, "conv1d" and "conv2d" nets.
func LoadModel(path string) (nn.Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := conv.ParseModel(data)
	if err != nil {
		return nil, fmt.Errorf("cliutil: parsing %s: %w", path, err)
	}
	return m, nil
}
