package core_test

import (
	"fmt"

	"repro/internal/core"
)

// The worked example of DESIGN.md: a 2-layer shape with one Byzantine
// neuron in layer 1 and two in layer 2.
func ExampleFep() {
	shape := core.Shape{
		Widths: []int{2, 3},              // N_1, N_2
		MaxW:   []float64{0.5, 1.5, 2.0}, // w_m^{(1..3)}, last = output synapses
		K:      2,                        // Lipschitz constant of ϕ
		ActCap: 1,                        // sup |ϕ|
	}
	fep := core.Fep(shape, []int{1, 2}, 1.5)
	fmt.Printf("Fep = %.1f\n", fep)
	// Output: Fep = 15.0
}

func ExampleTheorem1MaxCrashes() {
	// A single-layer network that ε'-approximates its target at 0.1 and
	// must stay 0.5-accurate; its largest output weight is 0.1.
	n := core.Theorem1MaxCrashes(0.5, 0.1, 0.1)
	fmt.Printf("tolerated crashes: %d\n", n)
	// Output: tolerated crashes: 4
}

func ExampleCrashTolerates() {
	shape := core.Shape{
		Widths: []int{8},
		MaxW:   []float64{1.0, 0.05},
		K:      1,
		ActCap: 1,
	}
	// Two crashed neurons cost at most 2 x 0.05; with slack 0.15 the
	// distribution is tolerated.
	fmt.Println(core.CrashTolerates(shape, []int{2}, 0.25, 0.10))
	fmt.Println(core.CrashTolerates(shape, []int{4}, 0.25, 0.10))
	// Output:
	// true
	// false
}

func ExampleRequiredSignals() {
	shape := core.Shape{
		Widths: []int{10, 8},
		MaxW:   []float64{1, 0.1, 0.1},
		K:      1,
		ActCap: 1,
	}
	// With two tolerated faults per layer, consumers need only
	// N_l - f_l signals before proceeding (Corollary 2).
	fmt.Println(core.RequiredSignals(shape, []int{2, 2}))
	// Output: [8 6]
}

func ExampleMixedFep() {
	shape := core.Shape{
		Widths: []int{2, 3},
		MaxW:   []float64{0.5, 1.5, 2.0},
		K:      2,
		ActCap: 1,
	}
	d := core.MixedDistribution{
		Crash:     []int{1, 0},
		Byzantine: []int{0, 1},
		Synapses:  []int{0, 1, 1},
	}
	fmt.Printf("MixedFep = %.0f\n", core.MixedFep(shape, d, 1))
	// Output: MixedFep = 19
}
