package core

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestMixedFepReducesToPureBounds(t *testing.T) {
	r := rng.New(21)
	for trial := 0; trial < 200; trial++ {
		L := r.Intn(3) + 1
		widths := make([]int, L)
		maxw := make([]float64, L+1)
		for i := range widths {
			widths[i] = r.Intn(5) + 1
		}
		for i := range maxw {
			maxw[i] = r.Range(0.1, 2)
		}
		s := Shape{Widths: widths, MaxW: maxw, K: r.Range(0.3, 2.5), ActCap: 1}
		c := r.Range(0.1, 2)

		byz := make([]int, L)
		crash := make([]int, L)
		syn := make([]int, L+1)
		for l := 0; l < L; l++ {
			byz[l] = r.Intn(widths[l] + 1)
			crash[l] = r.Intn(widths[l] + 1 - byz[l])
			syn[l] = r.Intn(3)
		}
		syn[L] = r.Intn(2)

		// Pure Byzantine.
		a := MixedFep(s, MixedDistribution{Byzantine: byz}, c)
		b := Fep(s, byz, c)
		if math.Abs(a-b) > 1e-9*(b+1) {
			t.Fatalf("trial %d: mixed-byz %v != Fep %v", trial, a, b)
		}
		// Pure crash.
		a = MixedFep(s, MixedDistribution{Crash: crash}, c)
		b = CrashFep(s, crash)
		if math.Abs(a-b) > 1e-9*(b+1) {
			t.Fatalf("trial %d: mixed-crash %v != CrashFep %v", trial, a, b)
		}
		// Pure synapse.
		a = MixedFep(s, MixedDistribution{Synapses: syn}, c)
		b = SynapseFep(s, syn, c)
		if math.Abs(a-b) > 1e-9*(b+1) {
			t.Fatalf("trial %d: mixed-syn %v != SynapseFep %v", trial, a, b)
		}
		// Full mix agrees with the suffix-product reference.
		d := MixedDistribution{Crash: crash, Byzantine: byz, Synapses: syn}
		a = MixedFep(s, d, c)
		b = mixedFepReference(s, d, c)
		if math.Abs(a-b) > 1e-9*(b+1) {
			t.Fatalf("trial %d: recursion %v != reference %v", trial, a, b)
		}
	}
}

func TestMixedFepHandExpanded(t *testing.T) {
	// handShape: L=2, N=(2,3), w=(0.5,1.5,2.0), K=2, ActCap=1.
	s := handShape()
	d := MixedDistribution{
		Crash:     []int{1, 0},
		Byzantine: []int{0, 1},
		Synapses:  []int{0, 1, 1},
	}
	c := 1.0
	// Layer 1: outErr = 1*1 (crash) = 1.
	// Layer 2: correct = (3-1)*K*w2*1 = 2*2*1.5 = 6; byz adds 1*c = 1;
	//          synapse adds 1*K*c = 2. outErr = 9.
	// Output: 9*w3 + 1*c = 18 + 1 = 19.
	got := MixedFep(s, d, c)
	if math.Abs(got-19) > 1e-12 {
		t.Fatalf("MixedFep = %v, want 19", got)
	}
}

func TestMixedFepPanics(t *testing.T) {
	s := handShape()
	for _, fn := range []func(){
		func() { MixedFep(s, MixedDistribution{Crash: []int{1}}, 1) },
		func() { MixedFep(s, MixedDistribution{Crash: []int{2, 0}, Byzantine: []int{1, 0}}, 1) },
		func() { MixedFep(s, MixedDistribution{Byzantine: []int{-1, 0}}, 1) },
		func() { MixedFep(s, MixedDistribution{}, -1) },
		func() { MixedFep(s, MixedDistribution{Synapses: []int{0, 0}}, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestMixedToleratesBoundary(t *testing.T) {
	s := handShape()
	d := MixedDistribution{Crash: []int{1, 0}, Byzantine: []int{0, 1}}
	f := MixedFep(s, d, 1)
	if !MixedTolerates(s, d, 1, f+0.01, 0) {
		t.Fatal("should tolerate above MixedFep")
	}
	if MixedTolerates(s, d, 1, f-0.01, 0) {
		t.Fatal("should not tolerate below MixedFep")
	}
	if MixedTolerates(s, d, 1, 0.1, 0.2) {
		t.Fatal("eps < eps' must never be tolerated")
	}
}

func TestMixedFepSuperadditivityOfSources(t *testing.T) {
	// The mixed bound never exceeds the sum of the pure bounds computed
	// in isolation (excluding more neurons from propagation can only
	// help), and is at least the largest single-source bound when that
	// source alone is present... superadditivity does not hold in
	// general, but the mixed bound must dominate each pure bound with
	// the OTHER sources removed.
	r := rng.New(23)
	for trial := 0; trial < 100; trial++ {
		L := r.Intn(2) + 1
		widths := make([]int, L)
		maxw := make([]float64, L+1)
		for i := range widths {
			widths[i] = r.Intn(4) + 2
		}
		for i := range maxw {
			maxw[i] = r.Range(0.1, 1.5)
		}
		s := Shape{Widths: widths, MaxW: maxw, K: r.Range(0.3, 2), ActCap: 1}
		c := r.Range(0.1, 1.5)
		byz := make([]int, L)
		crash := make([]int, L)
		for l := 0; l < L; l++ {
			byz[l] = r.Intn(widths[l])
			crash[l] = r.Intn(widths[l] - byz[l])
		}
		d := MixedDistribution{Crash: crash, Byzantine: byz}
		mixed := MixedFep(s, d, c)
		pureSum := Fep(s, byz, c) + CrashFep(s, crash)
		if mixed > pureSum*(1+1e-9) {
			t.Fatalf("trial %d: mixed %v exceeds sum of pure bounds %v", trial, mixed, pureSum)
		}
	}
}
