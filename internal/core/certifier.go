package core

import (
	"fmt"
	"math"
)

// Certifier amortises repeated certificate queries against one shape:
// the intermediate buffers of every bound formula are preallocated, so
// steady-state queries allocate nothing. It exists for long-running
// query services that answer many bounds requests per network — the
// free functions (Fep, SynapseFep, ...) stay the convenient one-shot
// API and the Certifier computes bit-identical values.
//
// A Certifier is NOT safe for concurrent use: give each goroutine its
// own (they are cheap — two small slices).
type Certifier struct {
	s Shape
	// suffix receives the propagation products of Theorem 2 (length
	// L+2) and, for SynapseFep, the full-width products (length L+3).
	suffix []float64
	// signals backs RequiredSignals.
	signals []int
}

// NewCertifier validates the shape and returns a Certifier for it.
func NewCertifier(s Shape) (*Certifier, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	L := s.Layers()
	return &Certifier{
		s:       s,
		suffix:  make([]float64, L+3),
		signals: make([]int, L),
	}, nil
}

// Shape returns the shape the certifier was built for.
func (c *Certifier) Shape() Shape { return c.s }

// suffixProductsInto fills c.suffix[0..L+1] like Shape.suffixProducts,
// without allocating.
func (c *Certifier) suffixProductsInto(faults []int) []float64 {
	s, L := c.s, c.s.Layers()
	suffix := c.suffix[:L+2]
	suffix[L+1] = 1
	suffix[L] = s.MaxW[L]
	for l := L - 1; l >= 0; l-- {
		suffix[l] = float64(s.Widths[l]-faults[l]) * s.MaxW[l] * suffix[l+1]
	}
	return suffix
}

// Fep is Theorem 2 (identical to the package-level Fep) without
// allocations.
func (c *Certifier) Fep(faults []int, cap float64) float64 {
	if cap < 0 {
		panic("core: negative capacity")
	}
	s := c.s
	s.checkFaults(faults)
	L := s.Layers()
	suffix := c.suffixProductsInto(faults)
	total := 0.0
	for l := 1; l <= L; l++ {
		if faults[l-1] == 0 {
			continue
		}
		total += float64(faults[l-1]) * cap * math.Pow(s.K, float64(L-l)) * suffix[l]
	}
	return total
}

// CrashFep is the crash case (cap replaced by the activation maximum).
func (c *Certifier) CrashFep(faults []int) float64 {
	return c.Fep(faults, c.s.ActCap)
}

// SynapseFep is the Lemma 2 synapse bound (identical to the
// package-level SynapseFep) without allocations. faults has length L+1,
// the last entry counting faults on the output synapses.
func (c *Certifier) SynapseFep(faults []int, cap float64) float64 {
	s, L := c.s, c.s.Layers()
	if len(faults) != L+1 {
		panic(fmt.Sprintf("core: synapse distribution has %d entries, want L+1 = %d", len(faults), L+1))
	}
	if cap < 0 {
		panic("core: negative capacity")
	}
	for _, f := range faults {
		if f < 0 {
			panic("core: negative synapse fault count")
		}
	}
	suffix := c.suffix[:L+3]
	suffix[L+2] = 1
	suffix[L+1] = s.MaxW[L]
	for l := L; l >= 1; l-- {
		suffix[l] = float64(s.Widths[l-1]) * s.MaxW[l-1] * suffix[l+1]
	}
	total := 0.0
	for l := 1; l <= L; l++ {
		if faults[l-1] == 0 {
			continue
		}
		total += float64(faults[l-1]) * math.Pow(s.K, float64(L+1-l)) * suffix[l+1]
	}
	total += float64(faults[L])
	return cap * total
}

// Tolerates is Theorem 3's condition on the certifier's shape.
func (c *Certifier) Tolerates(faults []int, cap, eps, epsPrime float64) bool {
	if eps < epsPrime {
		return false
	}
	return c.Fep(faults, cap) <= eps-epsPrime
}

// CrashTolerates is the crash case of Theorem 3.
func (c *Certifier) CrashTolerates(faults []int, eps, epsPrime float64) bool {
	return c.Tolerates(faults, c.s.ActCap, eps, epsPrime)
}

// RequiredSignals is Corollary 2. The returned slice is owned by the
// certifier and overwritten by the next call — copy it to retain it.
func (c *Certifier) RequiredSignals(faults []int) []int {
	c.s.checkFaults(faults)
	for l, f := range faults {
		c.signals[l] = c.s.Widths[l] - f
	}
	return c.signals
}
