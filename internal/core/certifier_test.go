package core

import (
	"testing"
)

func certShape() Shape {
	return Shape{
		Widths: []int{8, 6, 4},
		MaxW:   []float64{1.3, 0.9, 1.1, 0.7},
		K:      1.25,
		ActCap: 1,
	}
}

// TestCertifierMatchesFreeFunctions pins bit-identical agreement with
// the one-shot API across fault distributions and capacities.
func TestCertifierMatchesFreeFunctions(t *testing.T) {
	s := certShape()
	c, err := NewCertifier(s)
	if err != nil {
		t.Fatal(err)
	}
	faultSets := [][]int{{0, 0, 0}, {1, 0, 0}, {0, 2, 1}, {3, 2, 4}, {8, 6, 4}}
	for _, faults := range faultSets {
		for _, cap := range []float64{0, 0.5, 1, 2.25} {
			if got, want := c.Fep(faults, cap), Fep(s, faults, cap); got != want {
				t.Fatalf("Certifier.Fep(%v, %v) = %v, want %v", faults, cap, got, want)
			}
			if got, want := c.Tolerates(faults, cap, 0.5, 0.1), Tolerates(s, faults, cap, 0.5, 0.1); got != want {
				t.Fatalf("Certifier.Tolerates(%v, %v) = %v, want %v", faults, cap, got, want)
			}
		}
		if got, want := c.CrashFep(faults), CrashFep(s, faults); got != want {
			t.Fatalf("Certifier.CrashFep(%v) = %v, want %v", faults, got, want)
		}
		if got, want := c.CrashTolerates(faults, 9, 0.1), CrashTolerates(s, faults, 9, 0.1); got != want {
			t.Fatalf("Certifier.CrashTolerates(%v) = %v, want %v", faults, got, want)
		}
		sig := c.RequiredSignals(faults)
		want := RequiredSignals(s, faults)
		for l := range want {
			if sig[l] != want[l] {
				t.Fatalf("Certifier.RequiredSignals(%v) = %v, want %v", faults, sig, want)
			}
		}
		synFaults := append(append([]int{}, faults...), 2)
		if got, want := c.SynapseFep(synFaults, 0.8), SynapseFep(s, synFaults, 0.8); got != want {
			t.Fatalf("Certifier.SynapseFep(%v) = %v, want %v", synFaults, got, want)
		}
	}
}

func TestCertifierRejectsInvalidShape(t *testing.T) {
	if _, err := NewCertifier(Shape{}); err == nil {
		t.Fatal("empty shape accepted")
	}
}

// TestCertifierSteadyStateAllocs is the contract a query service relies
// on: repeated certificate queries allocate nothing.
func TestCertifierSteadyStateAllocs(t *testing.T) {
	c, err := NewCertifier(certShape())
	if err != nil {
		t.Fatal(err)
	}
	faults := []int{2, 1, 1}
	synFaults := []int{2, 1, 1, 1}
	allocs := testing.AllocsPerRun(100, func() {
		_ = c.Fep(faults, 1)
		_ = c.CrashFep(faults)
		_ = c.SynapseFep(synFaults, 1)
		_ = c.Tolerates(faults, 1, 0.5, 0.1)
		_ = c.RequiredSignals(faults)
	})
	if allocs != 0 {
		t.Fatalf("certificate queries allocate %v per run, want 0", allocs)
	}
}
