package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/nn"
)

// NodeShape prices faults on arbitrary-topology models. The layered
// Shape compresses a network to per-layer widths and weight maxima,
// which is sound only when every fault's influence funnels through the
// strict layer chain; a skip connection routes a deviation AROUND the
// (N-f)·w_m products, so a layered Fep can undershoot on a graph.
// NodeShape instead computes, per node, the exact amplification factor
//
//	amp(v) = Σ_{edges v→u} |w_{vu}| · gain(u),
//	gain(u) = K·amp(u) for hidden u, 1 for the output node,
//
// by one reverse topological sweep over the model's edges: amp(v)
// bounds the output deviation caused by a unit deviation of v's emitted
// value, propagated along every path (Lipschitz per activation,
// triangle inequality across paths). A faulty node's emitted value
// deviates from its clean value by at most the model's cap c
// (injectors receive the CLEAN nominal), and faulty nodes downstream
// only block propagation, so summing c·amp over any fault set is a
// sound bound — the per-node analogue of Theorem 2 with the worst f_l
// nodes per level chosen by largest amplification.
//
// For strictly layered models NodeShape.Fep and Shape.Fep are
// incomparable in general: NodeShape drops the (N-f) discount (looser)
// but uses actual per-edge weights instead of per-layer maxima
// (tighter). Both are sound there; only NodeShape is sound for graphs.
//
// A NodeShape is immutable after construction and safe for concurrent
// use.
type NodeShape struct {
	widths []int
	k      float64
	actCap float64
	// amp[l-1][i] is node (l, i)'s amplification, l = 1..L.
	amp [][]float64
	// inAmp[i] is input i's amplification (the model's Lipschitz bound
	// per input coordinate — not fault-priced, inputs cannot fail).
	inAmp []float64
	// sorted[l-1] is amp[l-1] sorted descending; prefix[l-1][f] sums its
	// first f entries (the worst f faults of level l).
	sorted [][]float64
	prefix [][]float64
	// synPrefix[l-1][f], l = 1..L+1: prefix sums of the descending
	// multiset {receiverGain(to) × FanIn(to)} of edges into level l —
	// the worst f Byzantine synapses into that level.
	synPrefix [][]float64
}

// NodeShapeOf builds the per-node shape of any Model by one reverse
// topological sweep over its edges (DAG models enumerate real edges;
// layered models fall back to full previous-layer fan-in).
func NodeShapeOf(m nn.Model) (*NodeShape, error) {
	act := m.Activation()
	k := act.Lipschitz()
	if k <= 0 || math.IsNaN(k) {
		return nil, fmt.Errorf("core: Lipschitz constant %v", k)
	}
	L := m.NumLayers()
	if L == 0 {
		return nil, fmt.Errorf("core: model has no layers")
	}
	ns := &NodeShape{
		widths: make([]int, L),
		k:      k,
		actCap: math.Max(math.Abs(act.Min()), math.Abs(act.Max())),
		amp:    make([][]float64, L),
		inAmp:  make([]float64, m.Width(0)),
	}
	// amp[t] with a virtual amp for the output node seeded at 1.
	full := make([][]float64, L+2)
	for t := 1; t <= L; t++ {
		w := m.Width(t)
		if w <= 0 {
			return nil, fmt.Errorf("core: layer %d has width %d", t, w)
		}
		ns.widths[t-1] = w
		full[t] = make([]float64, w)
	}
	full[L+1] = []float64{1}
	ns.synPrefix = make([][]float64, L+1)
	for t := L + 1; t >= 1; t-- {
		wt := 1
		if t <= L {
			wt = m.Width(t)
		}
		var gains []float64
		for j := 0; j < wt; j++ {
			g := full[t][j]
			if t <= L {
				g *= k
			}
			d := nn.FanInOf(m, t, j)
			for e := 0; e < d; e++ {
				gains = append(gains, g)
				sl, si, w := nn.InEdgeOf(m, t, j, e)
				if math.IsNaN(w) {
					return nil, fmt.Errorf("core: NaN weight into layer %d", t)
				}
				aw := math.Abs(w) * g
				if sl == 0 {
					ns.inAmp[si] += aw
				} else {
					full[sl][si] += aw
				}
			}
		}
		// Worst-f synapse prefix sums for edges into level t.
		sort.Sort(sort.Reverse(sort.Float64Slice(gains)))
		pre := make([]float64, len(gains)+1)
		for i, g := range gains {
			pre[i+1] = pre[i] + g
		}
		ns.synPrefix[t-1] = pre
	}
	ns.sorted = make([][]float64, L)
	ns.prefix = make([][]float64, L)
	for l := 1; l <= L; l++ {
		ns.amp[l-1] = full[l]
		s := append([]float64(nil), full[l]...)
		sort.Sort(sort.Reverse(sort.Float64Slice(s)))
		ns.sorted[l-1] = s
		pre := make([]float64, len(s)+1)
		for i, a := range s {
			pre[i+1] = pre[i] + a
		}
		ns.prefix[l-1] = pre
	}
	return ns, nil
}

// Layers returns L.
func (ns *NodeShape) Layers() int { return len(ns.widths) }

// K returns the activation's Lipschitz constant.
func (ns *NodeShape) K() float64 { return ns.k }

// ActCap returns sup|ϕ|, the crash-case deviation cap.
func (ns *NodeShape) ActCap() float64 { return ns.actCap }

// Amp returns node (l, i)'s amplification factor.
func (ns *NodeShape) Amp(l, i int) float64 { return ns.amp[l-1][i] }

// InAmp returns input coordinate i's amplification factor.
func (ns *NodeShape) InAmp(i int) float64 { return ns.inAmp[i] }

// SynapseCount returns the number of synapses into layer l (1..L+1).
func (ns *NodeShape) SynapseCount(l int) int { return len(ns.synPrefix[l-1]) - 1 }

func (ns *NodeShape) checkFaults(faults []int) {
	if len(faults) != len(ns.widths) {
		panic(fmt.Sprintf("core: fault distribution has %d entries for %d layers", len(faults), len(ns.widths)))
	}
	for l, f := range faults {
		if f < 0 || f > ns.widths[l] {
			panic(fmt.Sprintf("core: f_%d = %d outside [0, N_%d=%d]", l+1, f, l+1, ns.widths[l]))
		}
	}
}

// Fep bounds the output deviation when faults[l-1] neurons of layer l
// each emit a value deviating by at most c: the worst faults[l-1] nodes
// per level by amplification, times c. O(L) per query after the O(E)
// construction — the same query cost as the layered Theorem 2.
func (ns *NodeShape) Fep(faults []int, c float64) float64 {
	ns.checkFaults(faults)
	if c < 0 {
		panic("core: negative capacity")
	}
	total := 0.0
	for l, f := range faults {
		total += ns.prefix[l][f]
	}
	return c * total
}

// CrashFep is Fep with the crash cap sup|ϕ| (a crashed node emits 0,
// deviating by at most the largest value a correct node can emit).
func (ns *NodeShape) CrashFep(faults []int) float64 {
	return ns.Fep(faults, ns.actCap)
}

// DeviationFep generalises Fep to heterogeneous per-fault caps:
// devs[l-1] lists one deviation cap per faulty node of layer l. The
// worst assignment pairs the largest caps with the largest
// amplifications (rearrangement inequality).
func (ns *NodeShape) DeviationFep(devs [][]float64) float64 {
	if len(devs) != len(ns.widths) {
		panic(fmt.Sprintf("core: DeviationFep has %d layers of caps for %d layers", len(devs), len(ns.widths)))
	}
	total := 0.0
	for l, d := range devs {
		if len(d) > ns.widths[l] {
			panic(fmt.Sprintf("core: %d caps for layer %d of width %d", len(d), l+1, ns.widths[l]))
		}
		caps := append([]float64(nil), d...)
		sort.Sort(sort.Reverse(sort.Float64Slice(caps)))
		for i, c := range caps {
			if c < 0 || math.IsNaN(c) {
				panic(fmt.Sprintf("core: deviation cap %v at layer %d", c, l+1))
			}
			total += c * ns.sorted[l][i]
		}
	}
	return total
}

// SynapseFep bounds the output deviation when faults[l-1] synapses into
// layer l (l = 1..L+1, the last entry the output synapses) each carry
// an error of at most c: an errored edge perturbs its receiver's sum by
// at most c, amplified by the receiver's gain (K·amp for hidden
// receivers, 1 for the output). The worst f edges per level are the
// top-f receiver gains counted with fan-in multiplicity.
func (ns *NodeShape) SynapseFep(faults []int, c float64) float64 {
	L := len(ns.widths)
	if len(faults) != L+1 {
		panic(fmt.Sprintf("core: synapse distribution has %d entries, want L+1 = %d", len(faults), L+1))
	}
	if c < 0 {
		panic("core: negative capacity")
	}
	total := 0.0
	for l, f := range faults {
		if f < 0 || f >= len(ns.synPrefix[l]) {
			panic(fmt.Sprintf("core: f_%d = %d outside [0, %d synapses]", l+1, f, len(ns.synPrefix[l])-1))
		}
		total += ns.synPrefix[l][f]
	}
	return c * total
}

// Tolerates is the Theorem 3 condition over the per-node bound: the
// fault distribution is tolerated iff Fep <= ε - ε'.
func (ns *NodeShape) Tolerates(faults []int, c, eps, epsPrime float64) bool {
	if eps < epsPrime {
		return false
	}
	return ns.Fep(faults, c) <= eps-epsPrime
}

// CrashTolerates is Tolerates with the crash cap.
func (ns *NodeShape) CrashTolerates(faults []int, eps, epsPrime float64) bool {
	return ns.Tolerates(faults, ns.actCap, eps, epsPrime)
}

// RequiredSignals is Corollary 2 unchanged: consumers of level l need
// only N_l - f_l signals before proceeding.
func (ns *NodeShape) RequiredSignals(faults []int) []int {
	ns.checkFaults(faults)
	out := make([]int, len(ns.widths))
	for l, f := range faults {
		out[l] = ns.widths[l] - f
	}
	return out
}
