package core

import (
	"fmt"
	"math"

	"repro/internal/nn"
)

// DAGSubtreeBounder prices branch-and-bound pruning for the
// tree-structured exhaustive search over arbitrary-topology models. The
// layered SubtreeBounder compresses each layer to one propagation
// coefficient Coef(l), which is sound only when every path from a
// damaged layer to the output threads the strict layer chain — a skip
// edge routes a deviation AROUND the measured intermediate layers, so
// the layered bound can undershoot and pruning with it would be
// unsound. This bounder keeps one coefficient PER NODE instead (the
// NodeShape construction restricted to free suffixes), so skip edges
// are priced exactly along their own paths.
//
// Write δ_u(x) ≥ 0 for the absolute deviation of node u's emitted value
// from the clean trace on input x. At a depth-d tree node the levels
// 1..d are damaged and measured (δ exact), the levels > d are free. For
// any completion of the free levels, a correct free node is K-Lipschitz
// in its received sum and a faulty free node emits inj(clean) — a
// deviation that is exact and independent of upstream damage. Unrolling
// those two facts along every path gives
//
//	|Fneu(x) - Ffail(x)| <= Σ_{lvl(u) <= d} coef_d(u)·δ_u(x)
//	                      + Σ_{l > d} topf_l(x)
//
// where coef_d(u) — Coef(d, lvl(u))[idx(u)] — sums |w| products times
// K per correct intermediate node over every path from u to the output
// that stays strictly inside the free levels (paths through other
// measured nodes are already accounted by THEIR δ), and topf_l(x)
// bounds Σ amp(u)·dev_u(x) over any admissible choice of the f_l faulty
// nodes of free level l, with amp(u) the all-levels-free amplification
// — exactly NodeShape's Amp, exposed here so callers price the tails
// and the leaf layer's own combinations with the same coefficients.
//
// Soundness is what makes pruning free: the bound dominates every leaf
// of the subtree in real arithmetic, so skipping a subtree whose bound
// is STRICTLY below an attained error (modulo the caller's rounding
// slack) can never discard a configuration attaining the maximum, and
// ties are never pruned. On a strictly layered model coef_d(u) is zero
// for every u at levels < d — all paths thread the measured level d —
// recovering the layered bound's structure with per-edge weights
// instead of per-layer maxima.
type DAGSubtreeBounder struct {
	layers   int
	maxDepth int
	// amp[l-1][i]: node (l, i)'s all-levels-free amplification (the
	// NodeShape amp — one reverse sweep with every level free).
	amp [][]float64
	// coef[d][v-1][i]: node (v, i)'s amplification through the free
	// levels > d only, for 1 <= v <= d <= maxDepth.
	coef [][][]float64
}

// NewDAGSubtreeBounder builds per-node propagation coefficients for a
// fault distribution (faults[l-1] faulty neurons in layer l) over any
// Model — one reverse topological sweep per damaged depth, O(dl·E)
// total. Like NewSubtreeBounder it validates and returns errors: the
// tree engine is reachable from serve requests.
func NewDAGSubtreeBounder(m nn.Model, faults []int) (*DAGSubtreeBounder, error) {
	act := m.Activation()
	k := act.Lipschitz()
	if k <= 0 || math.IsNaN(k) {
		return nil, fmt.Errorf("core: Lipschitz constant %v", k)
	}
	L := m.NumLayers()
	if len(faults) != L {
		return nil, fmt.Errorf("core: fault distribution has %d entries for %d layers", len(faults), L)
	}
	maxDepth := 0
	for l := 1; l <= L; l++ {
		w := m.Width(l)
		if w <= 0 {
			return nil, fmt.Errorf("core: layer %d has width %d", l, w)
		}
		if f := faults[l-1]; f < 0 || f > w {
			return nil, fmt.Errorf("core: f_%d = %d outside [0, N_%d=%d]", l, f, l, w)
		}
		if faults[l-1] > 0 {
			maxDepth = l
		}
	}
	b := &DAGSubtreeBounder{layers: L, maxDepth: maxDepth}
	full, err := b.sweep(m, k, 0)
	if err != nil {
		return nil, err
	}
	b.amp = full
	b.coef = make([][][]float64, maxDepth+1)
	for d := 1; d <= maxDepth; d++ {
		restricted, err := b.sweep(m, k, d)
		if err != nil {
			return nil, err
		}
		b.coef[d] = restricted[:d]
	}
	return b, nil
}

// sweep computes, for every node, the amplification of a unit deviation
// of its emitted value into the output along paths whose INTERMEDIATE
// nodes all sit at levels > d (d = 0 frees every level: the NodeShape
// amp). One reverse pass: nodes at levels <= d accumulate incoming
// amplification but forward nothing — their deviations are measured,
// not propagated.
func (b *DAGSubtreeBounder) sweep(m nn.Model, k float64, d int) ([][]float64, error) {
	L := b.layers
	full := make([][]float64, L+2)
	for t := 1; t <= L; t++ {
		full[t] = make([]float64, m.Width(t))
	}
	full[L+1] = []float64{1}
	for t := L + 1; t > d; t-- {
		wt := 1
		if t <= L {
			wt = m.Width(t)
		}
		for j := 0; j < wt; j++ {
			g := full[t][j]
			if t <= L {
				g *= k
			}
			if g == 0 {
				continue
			}
			deg := nn.FanInOf(m, t, j)
			for e := 0; e < deg; e++ {
				sl, si, w := nn.InEdgeOf(m, t, j, e)
				if math.IsNaN(w) {
					return nil, fmt.Errorf("core: NaN weight into layer %d", t)
				}
				if sl == 0 {
					continue // inputs cannot deviate
				}
				full[sl][si] += math.Abs(w) * g
			}
		}
	}
	return full[1 : L+1], nil
}

// Layers returns L.
func (b *DAGSubtreeBounder) Layers() int { return b.layers }

// MaxDepth returns the deepest 1-based layer hosting faults (0 when the
// distribution is empty); Coef is defined for depths 1..MaxDepth.
func (b *DAGSubtreeBounder) MaxDepth() int { return b.maxDepth }

// Amp returns level l's all-levels-free per-node amplifications
// (l = 1..L) — the coefficients pricing faults at FREE levels: a faulty
// node's exact deviation propagates through downstream levels that are
// all free at any bound depth above it. The slice is owned by the
// bounder; callers must not mutate it.
func (b *DAGSubtreeBounder) Amp(l int) []float64 { return b.amp[l-1] }

// Coef returns level v's per-node coefficients for a bound at depth d
// (1 <= v <= d <= MaxDepth): entry i multiplies the measured deviation
// of node (v, i). The slice is owned by the bounder; callers must not
// mutate it.
func (b *DAGSubtreeBounder) Coef(d, v int) []float64 { return b.coef[d][v-1] }
