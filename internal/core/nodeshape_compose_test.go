package core_test

// Soundness tests for the per-node certification layer: NodeShape
// prices faults on arbitrary-topology models (where the layered Shape
// algebra is unsound), and Compose stitches independently certified
// spans into a bound for the whole network. Both are checked the same
// way as the layered Fep: measured damaged-network errors must never
// exceed the closed-form bounds.

import (
	"math"
	"testing"

	"repro/internal/activation"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/rng"
)

func randomInputs(r *rng.Rand, d, n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		x := make([]float64, d)
		r.Floats(x, 0, 1)
		out[i] = x
	}
	return out
}

func randomAct(r *rng.Rand) activation.Func {
	switch r.Intn(3) {
	case 0:
		return activation.NewSigmoid(r.Range(0.25, 3))
	case 1:
		return activation.NewTanh(r.Range(0.25, 2))
	default:
		return activation.NewHardSigmoid(r.Range(0.5, 2))
	}
}

func randomSkipNet(r *rng.Rand) *graph.Net {
	L := r.Intn(3) + 1
	widths := make([]int, L)
	for i := range widths {
		widths[i] = r.Intn(5) + 2
	}
	return graph.NewSmallWorld(r, r.Intn(4)+1, widths, randomAct(r), 2, r.Range(0, 0.8))
}

func randomFaults(r *rng.Rand, m nn.Model) []int {
	f := make([]int, m.NumLayers())
	for l := range f {
		f[l] = r.Intn(m.Width(l+1) + 1)
	}
	return f
}

func signedByzantine(r *rng.Rand, p fault.Plan, c float64) fault.Byzantine {
	inj := fault.Byzantine{C: c, Sem: core.DeviationCap, Sign: map[fault.NeuronFault]float64{}}
	for _, f := range p.Neurons {
		if r.Bool(0.5) {
			inj.Sign[f] = -1
		}
	}
	return inj
}

func TestNodeShapeFepSoundOnSkipGraphs(t *testing.T) {
	r := rng.New(211)
	for trial := 0; trial < 200; trial++ {
		g := randomSkipNet(r)
		ns, err := core.NodeShapeOf(g)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		faults := randomFaults(r, g)
		c := r.Range(0.1, 2)
		bound := ns.Fep(faults, c)
		plan := fault.RandomNeuronPlan(r, g, faults)
		inputs := randomInputs(r, g.InputDim, 15)

		measured := fault.MaxError(g, plan, signedByzantine(r, plan, c), inputs)
		if measured > bound*(1+1e-9)+1e-12 {
			t.Fatalf("trial %d: byzantine error %v exceeds NodeShape.Fep %v (faults %v)",
				trial, measured, bound, faults)
		}
		measured = fault.MaxErrorSeq(g, plan, fault.RandomByzantine{C: c, Sem: core.DeviationCap, R: r.Split()}, inputs)
		if measured > bound*(1+1e-9)+1e-12 {
			t.Fatalf("trial %d: random byzantine error %v exceeds NodeShape.Fep %v",
				trial, measured, bound)
		}
	}
}

func TestNodeShapeCrashFepSound(t *testing.T) {
	r := rng.New(223)
	for trial := 0; trial < 200; trial++ {
		g := randomSkipNet(r)
		ns, err := core.NodeShapeOf(g)
		if err != nil {
			t.Fatal(err)
		}
		faults := randomFaults(r, g)
		plan := fault.RandomNeuronPlan(r, g, faults)
		inputs := randomInputs(r, g.InputDim, 15)
		bound := ns.CrashFep(faults)
		measured := fault.MaxError(g, plan, fault.Crash{}, inputs)
		if measured > bound*(1+1e-9)+1e-12 {
			t.Fatalf("trial %d: crash error %v exceeds NodeShape.CrashFep %v (faults %v)",
				trial, measured, bound, faults)
		}
	}
}

func TestNodeShapeSynapseFepSound(t *testing.T) {
	r := rng.New(227)
	for trial := 0; trial < 200; trial++ {
		g := randomSkipNet(r)
		ns, err := core.NodeShapeOf(g)
		if err != nil {
			t.Fatal(err)
		}
		L := g.NumLayers()
		faults := make([]int, L+1)
		for l := 1; l <= L+1; l++ {
			if n := ns.SynapseCount(l); n > 0 {
				faults[l-1] = r.Intn(min(n, 4) + 1)
			}
		}
		c := r.Range(0.1, 2)
		bound := ns.SynapseFep(faults, c)
		plan := fault.RandomSynapsePlan(r, g, faults)
		inputs := randomInputs(r, g.InputDim, 10)
		// DeviationCap synapse faults land an additive ±c on the sum.
		measured := fault.MaxError(g, plan, fault.Byzantine{C: c, Sem: core.DeviationCap}, inputs)
		if measured > bound*(1+1e-9)+1e-12 {
			t.Fatalf("trial %d: synapse error %v exceeds NodeShape.SynapseFep %v (faults %v)",
				trial, measured, bound, faults)
		}
	}
}

// TestNodeShapeDeviationFepUniform pins the heterogeneous-cap bound to
// the uniform one when every cap is the same c.
func TestNodeShapeDeviationFepUniform(t *testing.T) {
	r := rng.New(229)
	for trial := 0; trial < 100; trial++ {
		g := randomSkipNet(r)
		ns, err := core.NodeShapeOf(g)
		if err != nil {
			t.Fatal(err)
		}
		faults := randomFaults(r, g)
		c := r.Range(0.1, 2)
		devs := make([][]float64, len(faults))
		for l, f := range faults {
			devs[l] = make([]float64, f)
			for i := range devs[l] {
				devs[l][i] = c
			}
		}
		got, want := ns.DeviationFep(devs), ns.Fep(faults, c)
		if math.Abs(got-want) > 1e-12*(1+want) {
			t.Fatalf("trial %d: DeviationFep %v != Fep %v for uniform caps", trial, got, want)
		}
	}
}

// TestComposeStitchedBoundSound is the acceptance criterion for the
// compositional certifier: certify the two halves of a network
// independently, Compose the certificates, and the stitched Fep must
// dominate the measured error of the monolith under any admissible
// fault assignment split across the halves.
func TestComposeStitchedBoundSound(t *testing.T) {
	r := rng.New(233)
	for trial := 0; trial < 150; trial++ {
		L := r.Intn(2) + 2 // at least two layers so a proper cut exists
		widths := make([]int, L)
		for i := range widths {
			widths[i] = r.Intn(5) + 2
		}
		var m nn.Model
		if r.Bool(0.5) {
			m = nn.NewRandom(r, nn.Config{
				InputDim: r.Intn(3) + 1,
				Widths:   widths,
				Act:      randomAct(r),
				Bias:     r.Bool(0.5),
			}, r.Range(0.2, 1.5))
		} else {
			m = graph.NewSmallWorld(r, r.Intn(3)+1, widths, randomAct(r), 2, r.Range(0, 0.6))
		}
		cuts := core.Cuts(m)
		var inner []int
		for _, v := range cuts {
			if v >= 1 && v <= L-1 {
				inner = append(inner, v)
			}
		}
		if len(inner) == 0 {
			continue // every interior level is spanned by a skip edge
		}
		cut := inner[r.Intn(len(inner))]
		faults := randomFaults(r, m)
		c := r.Range(0.1, 1.5)

		a, err := core.CertifySpan(m, 1, cut, faults[:cut], c)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		b, err := core.CertifySpan(m, cut+1, L+1, faults[cut:], c)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		st, err := core.Compose(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := st.Validate(); err != nil {
			t.Fatalf("trial %d: stitched certificate invalid: %v", trial, err)
		}
		if st.Out != 1 || st.In != m.Width(0) {
			t.Fatalf("trial %d: stitched certificate %dx%d", trial, st.In, st.Out)
		}
		bound := st.Fep[0]

		plan := fault.RandomNeuronPlan(r, m, faults)
		inputs := randomInputs(r, m.Width(0), 12)
		measured := fault.MaxError(m, plan, signedByzantine(r, plan, c), inputs)
		if measured > bound*(1+1e-9)+1e-12 {
			t.Fatalf("trial %d: monolith error %v exceeds stitched bound %v (cut %d, faults %v)",
				trial, measured, bound, cut, faults)
		}
		measured = fault.MaxErrorSeq(m, plan, fault.RandomByzantine{C: c, Sem: core.DeviationCap, R: r.Split()}, inputs)
		if measured > bound*(1+1e-9)+1e-12 {
			t.Fatalf("trial %d: monolith random error %v exceeds stitched bound %v",
				trial, measured, bound)
		}
	}
}

func TestCuts(t *testing.T) {
	r := rng.New(239)
	// Strictly layered models can be cut at every level.
	d := nn.NewRandom(r, nn.Config{InputDim: 2, Widths: []int{3, 4, 3}, Act: activation.NewSigmoid(1)}, 1)
	cuts := core.Cuts(d)
	if len(cuts) != 3 || cuts[0] != 1 || cuts[1] != 2 || cuts[2] != 3 {
		t.Fatalf("dense cuts = %v, want [1 2 3]", cuts)
	}
	// A skip edge removes exactly the levels it jumps over.
	for trial := 0; trial < 50; trial++ {
		g := randomSkipNet(r)
		got := map[int]bool{}
		for _, v := range core.Cuts(g) {
			got[v] = true
		}
		L := g.NumLayers()
		for v := 1; v <= L; v++ {
			crossed := false
			for t2 := v + 1; t2 <= L+1; t2++ {
				for to := 0; to < g.Width(t2); to++ {
					for e := 0; e < g.FanIn(t2, to); e++ {
						if sl, _, _ := g.InEdge(t2, to, e); sl < v {
							crossed = true
						}
					}
				}
			}
			if got[v] == crossed {
				t.Fatalf("trial %d: cut %d reported %v, crossing edges %v", trial, v, got[v], crossed)
			}
		}
	}
}

func TestCertifySpanRejectsCrossingEdges(t *testing.T) {
	r := rng.New(241)
	for trial := 0; trial < 100; trial++ {
		g := randomSkipNet(r)
		L := g.NumLayers()
		if L < 2 {
			continue
		}
		cuts := map[int]bool{}
		for _, v := range core.Cuts(g) {
			cuts[v] = true
		}
		for v := 1; v <= L-1; v++ {
			if cuts[v] {
				continue
			}
			faults := make([]int, L-v)
			if _, err := core.CertifySpan(g, v+1, L+1, faults, 0.5); err == nil {
				t.Fatalf("trial %d: span above non-cut %d certified", trial, v)
			}
		}
	}
}
