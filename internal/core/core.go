// Package core implements the paper's primary contribution: the Forward
// Error Propagation quantity Fep (Theorem 2) and the fault-tolerance
// bounds built on it — Theorem 1 (single-layer crashes), Theorem 3
// (multilayer Byzantine neurons), Theorem 4 (Byzantine synapses, via
// Lemma 2), Theorem 5 (per-neuron implementation error, e.g. reduced
// precision), Lemma 1 (unbounded transmission), and Corollaries 1-2
// (reduced over-provisioning and the boosting signal counts).
//
// All bounds are pure functions of a Shape: the per-layer widths N_l, the
// per-layer maximal absolute weights w_m^{(l)}, and the Lipschitz constant
// K of the activation. Computing a bound costs O(L) — the point the paper
// makes against experimentally assessing robustness over the combinatorial
// explosion of failure configurations.
package core

import (
	"fmt"
	"math"

	"repro/internal/nn"
)

// Shape captures the topology parameters every bound depends on.
type Shape struct {
	// Widths holds N_1..N_L, the neurons per hidden layer.
	Widths []int
	// MaxW holds w_m^{(1)}..w_m^{(L+1)}: MaxW[l-1] is the maximum
	// absolute weight of the synapses into layer l; the last entry is
	// the output synapses.
	MaxW []float64
	// K is the Lipschitz constant of the activation function.
	K float64
	// ActCap is sup|ϕ|, the largest value a correct neuron can emit
	// (1 for sigmoid and tanh). It replaces the capacity C in the crash
	// case of Theorem 3.
	ActCap float64
}

// ShapeOf extracts the Shape of a dense network.
func ShapeOf(n *nn.Network) Shape { return ShapeOfModel(n) }

// ShapeOfModel extracts the Shape of any Model. Because Model.MaxWeight
// runs over the layer's DISTINCT weights, a convolutional model yields
// w_m^{(l)} over only its R(l) receptive-field values — Section VI's
// less restrictive bounds fall out of the same Fep formulas with no
// dense lowering: the certifier consumes this shape directly.
func ShapeOfModel(m nn.Model) Shape {
	act := m.Activation()
	L := m.NumLayers()
	widths := make([]int, L)
	maxw := make([]float64, L+1)
	for l := 1; l <= L; l++ {
		widths[l-1] = m.Width(l)
		maxw[l-1] = m.MaxWeight(l)
	}
	maxw[L] = m.MaxWeight(L + 1)
	return Shape{
		Widths: widths,
		MaxW:   maxw,
		K:      act.Lipschitz(),
		ActCap: math.Max(math.Abs(act.Min()), math.Abs(act.Max())),
	}
}

// Layers returns L.
func (s Shape) Layers() int { return len(s.Widths) }

// Validate reports structural problems with the shape.
func (s Shape) Validate() error {
	if len(s.Widths) == 0 {
		return fmt.Errorf("core: shape has no layers")
	}
	if len(s.MaxW) != len(s.Widths)+1 {
		return fmt.Errorf("core: shape has %d weight maxima for %d layers (want L+1)", len(s.MaxW), len(s.Widths))
	}
	for l, w := range s.Widths {
		if w <= 0 {
			return fmt.Errorf("core: layer %d has width %d", l+1, w)
		}
	}
	for l, w := range s.MaxW {
		if w < 0 || math.IsNaN(w) {
			return fmt.Errorf("core: w_m^{(%d)} = %v", l+1, w)
		}
	}
	if s.K <= 0 || math.IsNaN(s.K) {
		return fmt.Errorf("core: Lipschitz constant %v", s.K)
	}
	return nil
}

// checkFaults validates a per-layer fault distribution against the shape.
func (s Shape) checkFaults(faults []int) {
	if len(faults) != s.Layers() {
		panic(fmt.Sprintf("core: fault distribution has %d entries for %d layers", len(faults), s.Layers()))
	}
	for l, f := range faults {
		if f < 0 || f > s.Widths[l] {
			panic(fmt.Sprintf("core: f_%d = %d outside [0, N_%d=%d]", l+1, f, l+1, s.Widths[l]))
		}
	}
}

// suffixProducts returns suffix[l] = Π_{l'=l+1..L+1} (N_{l'} - f_{l'}) ·
// w_m^{(l')} for l = 0..L+1, with the paper's convention N_{L+1} = 1,
// f_{L+1} = 0 (the output node). suffix[L+1] = 1; suffix[L] = w_m^{(L+1)}.
// Indexing: suffix[l] is the propagation factor applied to an error
// leaving layer l.
func (s Shape) suffixProducts(faults []int) []float64 {
	L := s.Layers()
	suffix := make([]float64, L+2)
	suffix[L+1] = 1
	// Output node: (N_{L+1} - f_{L+1}) w_m^{(L+1)} = w_m^{(L+1)}.
	suffix[L] = s.MaxW[L]
	for l := L - 1; l >= 0; l-- {
		factor := float64(s.Widths[l]-faults[l]) * s.MaxW[l]
		suffix[l] = factor * suffix[l+1]
	}
	return suffix
}

// FepGeneral is Theorem 2 generalised to per-layer error magnitudes: if
// f_l neurons of layer l each broadcast y + λ with |λ| <= mags[l-1], then
// the output deviates by at most
//
//	Σ_{l=1..L} f_l · mags_l · K^{L-l} · Π_{l'=l+1..L+1} (N_{l'}-f_{l'}) w_m^{(l')}.
//
// The paper's Fep is the special case mags_l = C for all l.
func FepGeneral(s Shape, faults []int, mags []float64) float64 {
	s.checkFaults(faults)
	if len(mags) != s.Layers() {
		panic("core: FepGeneral magnitude vector length mismatch")
	}
	L := s.Layers()
	suffix := s.suffixProducts(faults)
	total := 0.0
	for l := 1; l <= L; l++ {
		if faults[l-1] == 0 || mags[l-1] == 0 {
			continue
		}
		term := float64(faults[l-1]) * mags[l-1] * math.Pow(s.K, float64(L-l)) * suffix[l]
		total += term
	}
	return total
}

// DeviationFep generalises Theorem 2 to heterogeneous per-fault
// deviation caps, the form consumed by the fault-model registry:
// devs[l-1] lists one worst-case output-deviation cap per faulty neuron
// of layer l (so layer l has len(devs[l-1]) faults), and the output
// deviates by at most
//
//	Σ_{l=1..L} Σ_i devs_l[i] · K^{L-l} · Π_{l'=l+1..L+1} (N_{l'}-f_{l'}) w_m^{(l')}.
//
// Fep is the special case where every cap equals c; FepGeneral the case
// where caps are uniform within each layer. Heterogeneity is what mixed
// model streams need: a crashed neuron caps at ActCap while a stuck or
// noisy neighbour in the same layer caps at its own model's deviation.
func DeviationFep(s Shape, devs [][]float64) float64 {
	L := s.Layers()
	if len(devs) != L {
		panic(fmt.Sprintf("core: DeviationFep has %d layers of caps for %d layers", len(devs), L))
	}
	faults := make([]int, L)
	for l, d := range devs {
		faults[l] = len(d)
	}
	s.checkFaults(faults)
	suffix := s.suffixProducts(faults)
	total := 0.0
	for l := 1; l <= L; l++ {
		sum := 0.0
		for _, d := range devs[l-1] {
			if d < 0 || math.IsNaN(d) {
				panic(fmt.Sprintf("core: deviation cap %v at layer %d", d, l))
			}
			sum += d
		}
		if sum == 0 {
			continue
		}
		total += sum * math.Pow(s.K, float64(L-l)) * suffix[l]
	}
	return total
}

// Fep computes the Forward Error Propagation of Theorem 2 for Byzantine
// neurons whose output deviation is bounded by c per neuron:
//
//	Fep = c Σ_{l=1..L} f_l K^{L-l} Π_{l'=l+1..L+1} (N_{l'}-f_{l'}) w_m^{(l')}.
func Fep(s Shape, faults []int, c float64) float64 {
	if c < 0 {
		panic("core: negative capacity")
	}
	mags := make([]float64, s.Layers())
	for i := range mags {
		mags[i] = c
	}
	return FepGeneral(s, faults, mags)
}

// CrashFep is the crash case of Theorem 3: the deviation of a crashed
// neuron is bounded by the maximum of the activation function, so C is
// replaced by ActCap (Section IV-B).
func CrashFep(s Shape, faults []int) float64 {
	return Fep(s, faults, s.ActCap)
}

// CapSemantics selects how the synaptic capacity bounds a Byzantine value.
type CapSemantics int

const (
	// DeviationCap bounds |transmitted - nominal| <= C. This is what the
	// algebra of Theorem 2 controls, and what the measured-vs-bound
	// invariant tests use.
	DeviationCap CapSemantics = iota
	// TransmissionCap bounds |transmitted| <= C verbatim from
	// Assumption 1. Since nominal outputs satisfy |y| <= ActCap, the
	// worst-case deviation is C + ActCap.
	TransmissionCap
)

// EffectiveDeviation converts a capacity under the given semantics into
// the per-neuron deviation bound fed into Fep.
func EffectiveDeviation(c float64, sem CapSemantics, actCap float64) float64 {
	if sem == TransmissionCap {
		return c + actCap
	}
	return c
}

// Theorem1MaxCrashes returns the largest Nfail with Nfail <= (ε-ε')/wm,
// the single-layer crash tolerance of Theorem 1. wm is the maximal output
// weight. It returns 0 when eps < epsPrime or wm = 0 cannot be divided
// (wm = 0 means every weight is zero: then infinitely many crashes are
// tolerated and the function returns the layer-size-free math.MaxInt).
func Theorem1MaxCrashes(eps, epsPrime, wm float64) int {
	if eps < epsPrime {
		return 0
	}
	if wm == 0 {
		return math.MaxInt
	}
	n := math.Floor((eps - epsPrime) / wm)
	if n < 0 {
		return 0
	}
	if n > float64(math.MaxInt32) {
		return math.MaxInt32
	}
	return int(n)
}

// Theorem1ErrorBound returns the guaranteed output accuracy after nFail
// single-layer crashes: ε' + nFail·wm (the quantity compared against ε in
// the proof of Theorem 1).
func Theorem1ErrorBound(epsPrime, wm float64, nFail int) float64 {
	return epsPrime + float64(nFail)*wm
}

// Tolerates is Theorem 3: the Byzantine distribution faults (per-neuron
// deviation <= c) is tolerated by an ε'-approximation that must remain an
// ε-approximation iff Fep <= ε - ε'.
func Tolerates(s Shape, faults []int, c, eps, epsPrime float64) bool {
	if eps < epsPrime {
		return false
	}
	return Fep(s, faults, c) <= eps-epsPrime
}

// CrashTolerates is the crash case of Theorem 3.
func CrashTolerates(s Shape, faults []int, eps, epsPrime float64) bool {
	return Tolerates(s, faults, s.ActCap, eps, epsPrime)
}

// SynapseFep bounds the output deviation caused by Byzantine synapses via
// the Lemma 2 reduction: an error bounded by c at a synapse into hidden
// layer l becomes, after the K-Lipschitz squashing, an error of at most
// K·c at the receiving neuron's output, and an error at a synapse into
// the output node adds at most c directly. Unlike neuron failures, the
// receiving neurons remain CORRECT — they still propagate upstream errors
// — so the propagation products run over the full layer widths:
//
//	SynapseFep = c [ Σ_{l=1..L} f_l K^{L+1-l} Π_{l'=l+1..L+1} N_{l'} w_m^{(l')} + f_{L+1} ].
//
// faults[l-1] counts failing synapses into layer l for l = 1..L+1 (the
// last entry is the output synapses). Several faults may hit the same
// receiving neuron; errors add inside its sum before the single
// K-Lipschitz squashing, so the bound is linear in f_l either way.
func SynapseFep(s Shape, faults []int, c float64) float64 {
	L := s.Layers()
	if len(faults) != L+1 {
		panic(fmt.Sprintf("core: synapse distribution has %d entries, want L+1 = %d", len(faults), L+1))
	}
	if c < 0 {
		panic("core: negative capacity")
	}
	for _, f := range faults {
		if f < 0 {
			panic("core: negative synapse fault count")
		}
	}
	// Full-width suffix products: suffix[l] = Π_{l'=l..L+1} N_{l'} w_m^{(l')}
	// with N_{L+1} = 1.
	suffix := make([]float64, L+3)
	suffix[L+2] = 1
	suffix[L+1] = s.MaxW[L]
	for l := L; l >= 1; l-- {
		suffix[l] = float64(s.Widths[l-1]) * s.MaxW[l-1] * suffix[l+1]
	}
	total := 0.0
	for l := 1; l <= L; l++ {
		if faults[l-1] == 0 {
			continue
		}
		total += float64(faults[l-1]) * math.Pow(s.K, float64(L+1-l)) * suffix[l+1]
	}
	total += float64(faults[L])
	return c * total
}

// SynapseFepPaper is the verbatim Theorem 4 expression,
//
//	C Σ_{l=1..L+1} f_l K^{L+1-l} w_m^{(l)} Π_{l'=l+1..L+1} (N_{l'}-f_{l'}) w_m^{(l')},
//
// which carries an extra w_m^{(l)} factor relative to the Lemma 2
// reduction (the paper's L+1-network construction places the faulty
// synapse before the weight multiplication). It is provided to reproduce
// the paper's numbers; SynapseFep is the sound bound under the deviation
// semantics used by the fault injector. The Π factor uses the convention
// that f_{l'} counts faults at layer l' as in Theorem 3; entries beyond
// the layer width are clamped so the product never goes negative.
func SynapseFepPaper(s Shape, faults []int, c float64) float64 {
	L := s.Layers()
	if len(faults) != L+1 {
		panic(fmt.Sprintf("core: synapse distribution has %d entries, want L+1 = %d", len(faults), L+1))
	}
	// Effective per-layer (N - f) factors, clamped at zero.
	nf := make([]float64, L+2) // index by layer 1..L+1
	for l := 1; l <= L; l++ {
		v := float64(s.Widths[l-1] - faults[l-1])
		if v < 0 {
			v = 0
		}
		nf[l] = v
	}
	nf[L+1] = math.Max(0, float64(1-faults[L]))
	// Suffix products Π_{l'=l..L+1} nf[l'] w_m^{(l')}.
	suffix := make([]float64, L+3)
	suffix[L+2] = 1
	for l := L + 1; l >= 1; l-- {
		suffix[l] = nf[l] * s.MaxW[l-1] * suffix[l+1]
	}
	total := 0.0
	for l := 1; l <= L+1; l++ {
		if faults[l-1] == 0 {
			continue
		}
		term := float64(faults[l-1]) * math.Pow(s.K, float64(L+1-l)) * s.MaxW[l-1] * suffix[l+1]
		total += term
	}
	return c * total
}

// SynapseTolerates is Theorem 4's tolerance condition under the Lemma 2
// reduction.
func SynapseTolerates(s Shape, faults []int, c, eps, epsPrime float64) bool {
	if eps < epsPrime {
		return false
	}
	return SynapseFep(s, faults, c) <= eps-epsPrime
}

// PrecisionBound is Theorem 5: if the implementation induces an error of
// at most lambda[l-1] at every neuron of layer l, the output deviates by
// at most
//
//	Σ_{l=1..L} K^{L-l} λ_l Π_{l'=l..L} N_{l'} w_m^{(l'+1)}.
func PrecisionBound(s Shape, lambda []float64) float64 {
	L := s.Layers()
	if len(lambda) != L {
		panic(fmt.Sprintf("core: lambda has %d entries for %d layers", len(lambda), L))
	}
	// Suffix products Π_{l'=l..L} N_{l'} w_m^{(l'+1)} indexed by l.
	suffix := make([]float64, L+2)
	suffix[L+1] = 1
	for l := L; l >= 1; l-- {
		suffix[l] = float64(s.Widths[l-1]) * s.MaxW[l] * suffix[l+1]
	}
	total := 0.0
	for l := 1; l <= L; l++ {
		if lambda[l-1] < 0 {
			panic("core: negative lambda")
		}
		total += math.Pow(s.K, float64(L-l)) * lambda[l-1] * suffix[l]
	}
	return total
}

// LayerTerm returns layer l's contribution to Fep (1-indexed): the
// marginal forward error propagated from that layer's faults. Useful to
// see the K^{L-l} depth dependency in isolation.
func LayerTerm(s Shape, faults []int, c float64, l int) float64 {
	s.checkFaults(faults)
	if l < 1 || l > s.Layers() {
		panic("core: LayerTerm layer out of range")
	}
	suffix := s.suffixProducts(faults)
	return c * float64(faults[l-1]) * math.Pow(s.K, float64(s.Layers()-l)) * suffix[l]
}

// RequiredSignals is Corollary 2: given a tolerated crash distribution
// faults, consumers of layer l's outputs (layer l+1, or the output node
// for l = L) need to wait for only N_l - f_l signals before proceeding,
// treating the stragglers as crashed. The returned slice is indexed like
// faults (entry l-1 is for layer l).
func RequiredSignals(s Shape, faults []int) []int {
	s.checkFaults(faults)
	out := make([]int, s.Layers())
	for l, f := range faults {
		out[l] = s.Widths[l] - f
	}
	return out
}

// UniformWeightFor is the constructive side of Corollary 1: the largest
// uniform per-layer weight bound w such that a network with the given
// widths and all |weights| <= w tolerates the fault distribution with
// per-neuron deviation c and accuracy slack budget = ε - ε'. Found by
// bisection (Fep is monotone increasing in uniform w). Returns 0 if even
// w -> 0 fails (only possible for budget < 0).
func UniformWeightFor(widths []int, faults []int, k, c, budget float64) float64 {
	if budget < 0 {
		return 0
	}
	if budget == 0 {
		return 0
	}
	shapeFor := func(w float64) Shape {
		mw := make([]float64, len(widths)+1)
		for i := range mw {
			mw[i] = w
		}
		return Shape{Widths: widths, MaxW: mw, K: k, ActCap: 1}
	}
	feasible := func(w float64) bool {
		return Fep(shapeFor(w), faults, c) <= budget
	}
	// Exponential search for an infeasible upper bracket.
	lo, hi := 0.0, 1.0
	for feasible(hi) {
		lo = hi
		hi *= 2
		if hi > 1e12 {
			return hi // any realistic weight is tolerated
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if feasible(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// TotalFaults sums a distribution.
func TotalFaults(faults []int) int {
	t := 0
	for _, f := range faults {
		t += f
	}
	return t
}
