package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/nn"
)

// SubnetCert is a compositional certificate for a slice of a network:
// a stage with In inputs and Out outputs such that, for any input and
// any admissible fault configuration inside the stage,
//
//	|out_k(x, faults) - out_k(x, clean)| <= Fep[k], and
//	|out_k(x') - out_k(x)| <= Σ_i Gain[k][i] · |x'_i - x_i|
//
// for the CLEAN stage. Gain is a weight-only Lipschitz bound and Fep a
// weight-only fault bound, so both hold uniformly over inputs — the
// property composition needs.
type SubnetCert struct {
	In, Out int
	// Gain[k][i] bounds output k's sensitivity to input i.
	Gain [][]float64
	// Fep[k] bounds output k's deviation from the stage's own faults.
	Fep []float64
}

// Validate checks the certificate's dimensions and value sanity.
func (c SubnetCert) Validate() error {
	if c.In <= 0 || c.Out <= 0 {
		return fmt.Errorf("core: subnet certificate %dx%d", c.In, c.Out)
	}
	if len(c.Gain) != c.Out || len(c.Fep) != c.Out {
		return fmt.Errorf("core: subnet certificate has %d gain rows, %d Fep entries for %d outputs", len(c.Gain), len(c.Fep), c.Out)
	}
	for k, row := range c.Gain {
		if len(row) != c.In {
			return fmt.Errorf("core: gain row %d has %d entries for %d inputs", k, len(row), c.In)
		}
		for _, g := range row {
			if g < 0 || math.IsNaN(g) {
				return fmt.Errorf("core: negative or NaN gain in row %d", k)
			}
		}
	}
	for k, f := range c.Fep {
		if f < 0 || math.IsNaN(f) {
			return fmt.Errorf("core: negative or NaN Fep entry %d", k)
		}
	}
	return nil
}

// Compose stitches two independently certified stages, b after a, into
// a certificate for the composite. The composite gain is the product of
// the stage gains, and the composite fault bound is
//
//	Fep[k] = b.Fep[k] + Σ_j b.Gain[k][j] · a.Fep[j]:
//
// b's own faults deviate its output by b.Fep even on a's faulted
// output (b.Fep is input-uniform), and a's fault deviation — at most
// a.Fep[j] per input j of b — passes through b's clean Lipschitz gain.
// The triangle inequality over the two hybrids makes the sum a sound
// bound for the stitched network, which the composition tests assert
// against the monolith's measured error.
func Compose(a, b SubnetCert) (SubnetCert, error) {
	if err := a.Validate(); err != nil {
		return SubnetCert{}, err
	}
	if err := b.Validate(); err != nil {
		return SubnetCert{}, err
	}
	if a.Out != b.In {
		return SubnetCert{}, fmt.Errorf("core: Compose: first stage has %d outputs, second expects %d inputs", a.Out, b.In)
	}
	out := SubnetCert{
		In:   a.In,
		Out:  b.Out,
		Gain: make([][]float64, b.Out),
		Fep:  make([]float64, b.Out),
	}
	for k := 0; k < b.Out; k++ {
		row := make([]float64, a.In)
		fep := b.Fep[k]
		for j := 0; j < a.Out; j++ {
			g := b.Gain[k][j]
			if g == 0 {
				continue
			}
			fep += g * a.Fep[j]
			for i := 0; i < a.In; i++ {
				row[i] += g * a.Gain[j][i]
			}
		}
		out.Gain[k] = row
		out.Fep[k] = fep
	}
	return out, nil
}

// CertifySpan certifies levels lo..hi of a model as a standalone stage:
// inputs are level lo-1's outputs, outputs level hi's (hi = L+1 is the
// output node, making Out = 1). faults[t-lo] is the neuron-fault budget
// of level t for the hidden levels of the span (the output node hosts
// no neuron faults), and c caps each faulty node's emitted deviation.
//
// The span must be closed under the cut: no edge into the span may
// originate below level lo-1 (use Cuts to find the levels where a model
// can be split). Gain runs a forward sensitivity sweep from the cut and
// Fep a reverse amplification sweep per output, each restricted to the
// span's edges — the same per-node algebra as NodeShape.
func CertifySpan(m nn.Model, lo, hi int, faults []int, c float64) (SubnetCert, error) {
	L := m.NumLayers()
	if lo < 1 || hi > L+1 || lo > hi {
		return SubnetCert{}, fmt.Errorf("core: CertifySpan span [%d, %d] outside [1, %d]", lo, hi, L+1)
	}
	if c < 0 {
		return SubnetCert{}, fmt.Errorf("core: negative capacity")
	}
	hidHi := hi
	if hidHi > L {
		hidHi = L
	}
	if len(faults) != hidHi-lo+1 {
		return SubnetCert{}, fmt.Errorf("core: CertifySpan has %d fault budgets for hidden levels %d..%d", len(faults), lo, hidHi)
	}
	for t := lo; t <= hidHi; t++ {
		if f := faults[t-lo]; f < 0 || f > m.Width(t) {
			return SubnetCert{}, fmt.Errorf("core: f_%d = %d outside [0, %d]", t, f, m.Width(t))
		}
	}
	k := m.Activation().Lipschitz()
	in := m.Width(lo - 1)
	outW := m.Width(hi)
	// Forward gain sweep: gain[v][j][i] bounds node (v, j)'s sensitivity
	// to cut input i.
	gain := make([][][]float64, hi+1)
	gain[lo-1] = make([][]float64, in)
	for i := 0; i < in; i++ {
		row := make([]float64, in)
		row[i] = 1
		gain[lo-1][i] = row
	}
	for t := lo; t <= hi; t++ {
		wt := m.Width(t)
		gain[t] = make([][]float64, wt)
		for j := 0; j < wt; j++ {
			row := make([]float64, in)
			d := nn.FanInOf(m, t, j)
			for e := 0; e < d; e++ {
				sl, si, w := nn.InEdgeOf(m, t, j, e)
				if sl < lo-1 {
					return SubnetCert{}, fmt.Errorf("core: CertifySpan: edge into level %d from level %d crosses the cut at %d", t, sl, lo-1)
				}
				aw := math.Abs(w)
				if aw == 0 {
					continue
				}
				src := gain[sl][si]
				for i := 0; i < in; i++ {
					row[i] += aw * src[i]
				}
			}
			if t <= L {
				for i := range row {
					row[i] *= k
				}
			}
			gain[t][j] = row
		}
	}
	cert := SubnetCert{In: in, Out: outW, Gain: gain[hi], Fep: make([]float64, outW)}
	// Reverse amplification sweep per span output: ampTo[v][j] bounds
	// output `o`'s deviation per unit deviation of node (v, j)'s emitted
	// value, within the span.
	amp := make([][]float64, hi+1)
	for o := 0; o < outW; o++ {
		for t := lo; t <= hi; t++ {
			if amp[t] == nil {
				amp[t] = make([]float64, m.Width(t))
			} else {
				for j := range amp[t] {
					amp[t][j] = 0
				}
			}
		}
		amp[hi][o] = 1
		for t := hi; t >= lo; t-- {
			for j := 0; j < m.Width(t); j++ {
				g := amp[t][j]
				if t <= L {
					g *= k
				}
				if g == 0 {
					continue
				}
				d := nn.FanInOf(m, t, j)
				for e := 0; e < d; e++ {
					sl, si, w := nn.InEdgeOf(m, t, j, e)
					if sl >= lo {
						amp[sl][si] += math.Abs(w) * g
					}
				}
			}
		}
		total := 0.0
		scratch := make([]float64, 0, 64)
		for t := lo; t <= hidHi; t++ {
			f := faults[t-lo]
			if f == 0 {
				continue
			}
			scratch = append(scratch[:0], amp[t]...)
			sort.Sort(sort.Reverse(sort.Float64Slice(scratch)))
			for i := 0; i < f; i++ {
				total += scratch[i]
			}
		}
		cert.Fep[o] = c * total
	}
	return cert, nil
}

// Cuts returns the levels v (1 <= v <= L) at which the model can be
// split into the spans [1..v] and [v+1..L+1] with no edge crossing the
// cut — the valid CertifySpan boundaries. Strictly layered models can
// be cut everywhere; skip connections remove the levels they jump over.
func Cuts(m nn.Model) []int {
	L := m.NumLayers()
	// crossing[v] counts edges (sl -> t) with sl < v < t, built as a
	// difference array over the cut positions each edge invalidates.
	diff := make([]int, L+2)
	for t := 1; t <= L+1; t++ {
		for j := 0; j < m.Width(t); j++ {
			d := nn.FanInOf(m, t, j)
			for e := 0; e < d; e++ {
				sl, _, _ := nn.InEdgeOf(m, t, j, e)
				if sl+1 <= t-1 {
					diff[sl+1]++
					diff[t]--
				}
			}
		}
	}
	var cuts []int
	run := 0
	for v := 1; v <= L; v++ {
		run += diff[v]
		if run == 0 {
			cuts = append(cuts, v)
		}
	}
	return cuts
}
