package core

import (
	"math"

	"repro/internal/parallel"
)

// MaxSingleLayerFaults returns the largest f such that faults concentrated
// entirely at the given layer (1-indexed) are tolerated: Fep <= budget.
// Fep is monotone increasing in f when only one layer fails, so binary
// search applies.
func MaxSingleLayerFaults(s Shape, c, budget float64, layer int) int {
	if layer < 1 || layer > s.Layers() {
		panic("core: MaxSingleLayerFaults layer out of range")
	}
	lo, hi := 0, s.Widths[layer-1]
	for lo < hi {
		mid := (lo + hi + 1) / 2
		faults := make([]int, s.Layers())
		faults[layer-1] = mid
		if Fep(s, faults, c) <= budget {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// MaxUniformFaults returns the largest f such that the uniform
// distribution (f, f, ..., f) — clamped to each layer's width — satisfies
// Fep <= budget.
func MaxUniformFaults(s Shape, c, budget float64) int {
	maxW := 0
	for _, w := range s.Widths {
		if w > maxW {
			maxW = w
		}
	}
	uniform := func(f int) []int {
		faults := make([]int, s.Layers())
		for l, w := range s.Widths {
			faults[l] = f
			if f > w {
				faults[l] = w
			}
		}
		return faults
	}
	// Fep is NOT monotone in joint fault additions (failing neurons stop
	// propagating earlier errors), so scan rather than bisect.
	best := 0
	for f := 0; f <= maxW; f++ {
		if Fep(s, uniform(f), c) <= budget {
			best = f
		}
	}
	return best
}

// GreedyMaxFaults grows a fault distribution one neuron at a time, always
// choosing the layer whose extra fault keeps Fep smallest, until no
// single addition stays within budget. It returns the distribution and
// its Fep. Greedy is not guaranteed optimal (Fep is non-monotone across
// layers); use ExactMaxFaults for ground truth on small shapes.
func GreedyMaxFaults(s Shape, c, budget float64) ([]int, float64) {
	L := s.Layers()
	faults := make([]int, L)
	current := 0.0
	for {
		bestLayer := -1
		bestFep := math.Inf(1)
		for l := 0; l < L; l++ {
			if faults[l] >= s.Widths[l] {
				continue
			}
			faults[l]++
			f := Fep(s, faults, c)
			faults[l]--
			if f <= budget && f < bestFep {
				bestFep = f
				bestLayer = l
			}
		}
		if bestLayer < 0 {
			return faults, current
		}
		faults[bestLayer]++
		current = bestFep
	}
}

// ExactMaxFaults enumerates every per-layer fault distribution (there are
// Π(N_l+1) of them) in parallel and returns one maximising the total
// number of faulty neurons subject to Fep <= budget, together with that
// total. Intended for small shapes; the configuration count is returned
// so callers can report the combinatorial cost the paper highlights.
func ExactMaxFaults(s Shape, c, budget float64) (best []int, total int, configs int64) {
	L := s.Layers()
	configs = 1
	for _, w := range s.Widths {
		configs *= int64(w + 1)
	}
	// Decode a configuration index into a fault vector using mixed radix.
	decode := func(idx int64, out []int) {
		for l := 0; l < L; l++ {
			radix := int64(s.Widths[l] + 1)
			out[l] = int(idx % radix)
			idx /= radix
		}
	}
	type result struct {
		faults []int
		total  int
	}
	workers := parallel.Workers()
	partial := make([]result, workers)
	chunk := (configs + int64(workers) - 1) / int64(workers)
	done := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		go func(slot int) {
			defer func() { done <- struct{}{} }()
			lo := int64(slot) * chunk
			hi := lo + chunk
			if hi > configs {
				hi = configs
			}
			buf := make([]int, L)
			localBest := result{total: -1}
			for idx := lo; idx < hi; idx++ {
				decode(idx, buf)
				t := TotalFaults(buf)
				if t <= localBest.total {
					continue
				}
				if Fep(s, buf, c) <= budget {
					localBest.total = t
					localBest.faults = append([]int(nil), buf...)
				}
			}
			partial[slot] = localBest
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	bestRes := result{total: -1}
	for _, r := range partial {
		if r.total > bestRes.total {
			bestRes = r
		}
	}
	if bestRes.total < 0 {
		return make([]int, L), 0, configs
	}
	return bestRes.faults, bestRes.total, configs
}
