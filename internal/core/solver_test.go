package core

import (
	"testing"

	"repro/internal/rng"
)

func solverShape() Shape {
	return Shape{
		Widths: []int{4, 3, 5},
		MaxW:   []float64{0.6, 0.4, 0.3, 0.5},
		K:      1.2,
		ActCap: 1,
	}
}

func TestMaxSingleLayerFaultsFrontier(t *testing.T) {
	s := solverShape()
	c, budget := 1.0, 2.0
	for layer := 1; layer <= s.Layers(); layer++ {
		f := MaxSingleLayerFaults(s, c, budget, layer)
		faults := make([]int, s.Layers())
		faults[layer-1] = f
		if Fep(s, faults, c) > budget {
			t.Fatalf("layer %d: returned f=%d violates budget", layer, f)
		}
		if f < s.Widths[layer-1] {
			faults[layer-1] = f + 1
			if Fep(s, faults, c) <= budget {
				t.Fatalf("layer %d: f=%d not maximal", layer, f)
			}
		}
	}
}

func TestMaxSingleLayerFaultsZeroBudget(t *testing.T) {
	s := solverShape()
	if f := MaxSingleLayerFaults(s, 1, 0, 1); f != 0 {
		t.Fatalf("zero budget tolerates %d faults", f)
	}
}

func TestMaxSingleLayerDeeperLayersTolerateMore(t *testing.T) {
	// With K > 1 and uniform widths/weights, later layers (closer to
	// the output, smaller K exponent... careful: propagation also
	// multiplies by (N w) per layer). Use weights small enough that the
	// per-layer factor K*N*w > 1, making early-layer faults costlier.
	s := Shape{Widths: []int{6, 6, 6}, MaxW: []float64{0.5, 0.5, 0.5, 0.5}, K: 2, ActCap: 1}
	budget := 2.0
	f1 := MaxSingleLayerFaults(s, 1, budget, 1)
	f3 := MaxSingleLayerFaults(s, 1, budget, 3)
	if f3 < f1 {
		t.Fatalf("layer 3 tolerates %d < layer 1 %d despite cheaper propagation", f3, f1)
	}
}

func TestMaxUniformFaultsRespectsBudget(t *testing.T) {
	s := solverShape()
	c, budget := 1.0, 3.0
	f := MaxUniformFaults(s, c, budget)
	faults := make([]int, s.Layers())
	for l, w := range s.Widths {
		faults[l] = f
		if f > w {
			faults[l] = w
		}
	}
	if Fep(s, faults, c) > budget {
		t.Fatalf("uniform f=%d violates budget", f)
	}
}

func TestGreedyMaxFaultsFeasible(t *testing.T) {
	s := solverShape()
	c, budget := 1.0, 2.5
	faults, fep := GreedyMaxFaults(s, c, budget)
	if fep > budget {
		t.Fatalf("greedy returned infeasible distribution: Fep=%v", fep)
	}
	if got := Fep(s, faults, c); got != fep {
		t.Fatalf("reported Fep %v != recomputed %v", fep, got)
	}
	// Greedy must be saturated: no single extra fault fits.
	for l := 0; l < s.Layers(); l++ {
		if faults[l] >= s.Widths[l] {
			continue
		}
		faults[l]++
		if Fep(s, faults, c) <= budget {
			t.Fatalf("greedy not saturated at layer %d", l+1)
		}
		faults[l]--
	}
}

func TestGreedyZeroBudget(t *testing.T) {
	s := solverShape()
	faults, fep := GreedyMaxFaults(s, 1, 0)
	if TotalFaults(faults) != 0 || fep != 0 {
		t.Fatalf("zero budget produced faults %v", faults)
	}
}

func TestExactMaxFaultsSmall(t *testing.T) {
	s := Shape{Widths: []int{2, 2}, MaxW: []float64{0.5, 0.5, 0.5}, K: 1, ActCap: 1}
	best, total, configs := ExactMaxFaults(s, 1, 1.0)
	if configs != 9 {
		t.Fatalf("configs = %d, want (2+1)*(2+1) = 9", configs)
	}
	if Fep(s, best, 1) > 1.0 {
		t.Fatal("exact solution infeasible")
	}
	if TotalFaults(best) != total {
		t.Fatal("total mismatch")
	}
	// Verify optimality by direct enumeration.
	bestTotal := -1
	for f1 := 0; f1 <= 2; f1++ {
		for f2 := 0; f2 <= 2; f2++ {
			if Fep(s, []int{f1, f2}, 1) <= 1.0 && f1+f2 > bestTotal {
				bestTotal = f1 + f2
			}
		}
	}
	if total != bestTotal {
		t.Fatalf("exact total %d != brute force %d", total, bestTotal)
	}
}

func TestExactAtLeastGreedy(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 50; trial++ {
		L := r.Intn(3) + 1
		widths := make([]int, L)
		maxw := make([]float64, L+1)
		for i := range widths {
			widths[i] = r.Intn(4) + 1
		}
		for i := range maxw {
			maxw[i] = r.Range(0.1, 1)
		}
		s := Shape{Widths: widths, MaxW: maxw, K: r.Range(0.5, 2), ActCap: 1}
		budget := r.Range(0, 3)
		gFaults, _ := GreedyMaxFaults(s, 1, budget)
		_, eTotal, _ := ExactMaxFaults(s, 1, budget)
		if TotalFaults(gFaults) > eTotal {
			t.Fatalf("greedy %v beat exact %d — exact is broken", gFaults, eTotal)
		}
	}
}

func TestExactInfeasibleBudget(t *testing.T) {
	s := solverShape()
	best, total, _ := ExactMaxFaults(s, 1, -1)
	if total != 0 || TotalFaults(best) != 0 {
		t.Fatal("negative budget must yield the empty distribution")
	}
}
