package core

import (
	"math"
	"testing"
)

func pruneShape() Shape {
	return Shape{
		Widths: []int{5, 4, 3},
		MaxW:   []float64{0.9, 1.1, 0.7, 1.3},
		K:      0.25,
		ActCap: 1,
	}
}

// TestSubtreeBounderRootMatchesFep: the d = 0 bound with uniform caps
// is Fep itself — the tree's root node prices exactly the closed-form
// bound, so pruning starts from the paper's own certificate.
func TestSubtreeBounderRootMatchesFep(t *testing.T) {
	s := pruneShape()
	faults := []int{1, 2, 1}
	const c = 0.8
	b, err := NewSubtreeBounder(s, faults)
	if err != nil {
		t.Fatal(err)
	}
	topf := make([]float64, s.Layers())
	for l, f := range faults {
		topf[l] = float64(f) * c
	}
	got := b.Bound(0, 0, b.Tail(0, topf))
	want := Fep(s, faults, c)
	if math.Abs(got-want) > 1e-12*math.Max(1, want) {
		t.Fatalf("root bound %v != Fep %v", got, want)
	}
}

// TestSubtreeBounderCoefs: spot-check the propagation factors against
// their definition.
func TestSubtreeBounderCoefs(t *testing.T) {
	s := pruneShape()
	faults := []int{1, 1, 1}
	b, err := NewSubtreeBounder(s, faults)
	if err != nil {
		t.Fatal(err)
	}
	L := s.Layers()
	if b.Layers() != L {
		t.Fatalf("Layers = %d, want %d", b.Layers(), L)
	}
	// Coef(L) = w_m^{(L+1)}: a deviation at the last hidden layer only
	// crosses the output synapses.
	if b.Coef(L) != s.MaxW[L] {
		t.Fatalf("Coef(L) = %v, want %v", b.Coef(L), s.MaxW[L])
	}
	// Coef(L-1) = K · (N_L - f_L) w_m^{(L)} · w_m^{(L+1)}.
	want := s.K * float64(s.Widths[L-1]-faults[L-1]) * s.MaxW[L-1] * s.MaxW[L]
	if math.Abs(b.Coef(L-1)-want) > 1e-15 {
		t.Fatalf("Coef(L-1) = %v, want %v", b.Coef(L-1), want)
	}
	// Bound is linear in delta with slope Coef(d).
	if got := b.Bound(1, 2, 0.5); math.Abs(got-(2*b.Coef(1)+0.5)) > 1e-15 {
		t.Fatalf("Bound(1, 2, 0.5) = %v", got)
	}
}

// TestSubtreeBounderValidates: the bounder is reachable from serve
// requests and must error, not panic.
func TestSubtreeBounderValidates(t *testing.T) {
	s := pruneShape()
	if _, err := NewSubtreeBounder(s, []int{1, 2}); err == nil {
		t.Fatal("short fault vector must error")
	}
	if _, err := NewSubtreeBounder(s, []int{1, 2, 9}); err == nil {
		t.Fatal("oversized fault count must error")
	}
	if _, err := NewSubtreeBounder(Shape{}, []int{}); err == nil {
		t.Fatal("invalid shape must error")
	}
}
