package core

import (
	"fmt"
	"math"
)

// MixedDistribution describes simultaneous failures of different kinds:
// per layer l, Crash[l-1] crashed neurons, Byzantine[l-1] Byzantine
// neurons (deviation <= C), and Synapses[l-1] Byzantine synapses into
// layer l (Synapses has length L+1; the last entry addresses the output
// synapses). Any slice may be nil, meaning zero everywhere.
type MixedDistribution struct {
	Crash     []int
	Byzantine []int
	Synapses  []int
}

// normalise returns defensive full-length copies.
func (d MixedDistribution) normalise(L int) (crash, byz, syn []int, err error) {
	fill := func(src []int, want int, name string) ([]int, error) {
		if src == nil {
			return make([]int, want), nil
		}
		if len(src) != want {
			return nil, fmt.Errorf("core: %s distribution has %d entries, want %d", name, len(src), want)
		}
		out := make([]int, want)
		copy(out, src)
		return out, nil
	}
	if crash, err = fill(d.Crash, L, "crash"); err != nil {
		return
	}
	if byz, err = fill(d.Byzantine, L, "byzantine"); err != nil {
		return
	}
	syn, err = fill(d.Synapses, L+1, "synapse")
	return
}

// MixedFep bounds the output deviation under a mixed distribution, by the
// same induction as Theorem 2 with three error sources per layer:
//
//	outErr_l <= (N_l - fc_l - fb_l)·K·w_m^{(l)}·outErr_{l-1}
//	          + fc_l·ActCap + fb_l·C + fs_l·K·C
//
// Crashed and Byzantine neurons stop propagating upstream error (their
// deviation is capped regardless of inputs); neurons receiving faulty
// synapses remain correct propagators and contribute the Lemma 2 term.
// Output synapse faults add fs_{L+1}·C after the final weighting. The
// result coincides with Fep/CrashFep/SynapseFep when only one source is
// non-zero.
func MixedFep(s Shape, d MixedDistribution, c float64) float64 {
	L := s.Layers()
	crash, byz, syn, err := d.normalise(L)
	if err != nil {
		panic(err.Error())
	}
	if c < 0 {
		panic("core: negative capacity")
	}
	outErr := 0.0
	for l := 1; l <= L; l++ {
		fc, fb, fs := crash[l-1], byz[l-1], syn[l-1]
		if fc < 0 || fb < 0 || fs < 0 {
			panic("core: negative fault count")
		}
		if fc+fb > s.Widths[l-1] {
			panic(fmt.Sprintf("core: %d faulty neurons exceed layer %d width %d", fc+fb, l, s.Widths[l-1]))
		}
		correct := float64(s.Widths[l-1]-fc-fb) * s.K * s.MaxW[l-1] * outErr
		outErr = correct +
			float64(fc)*s.ActCap +
			float64(fb)*c +
			float64(fs)*s.K*c
	}
	return outErr*s.MaxW[L] + float64(syn[L])*c
}

// MixedTolerates is Theorem 3 extended to mixed distributions.
func MixedTolerates(s Shape, d MixedDistribution, c, eps, epsPrime float64) bool {
	if eps < epsPrime {
		return false
	}
	return MixedFep(s, d, c) <= eps-epsPrime
}

// mixedFepReference recomputes MixedFep as the sum of the three pure
// bounds with shared exclusion factors; kept for documentation — the
// direct recursion above is authoritative.
func mixedFepReference(s Shape, d MixedDistribution, c float64) float64 {
	L := s.Layers()
	crash, byz, syn, err := d.normalise(L)
	if err != nil {
		panic(err.Error())
	}
	// Suffix products with BOTH neuron fault kinds excluded.
	total := make([]int, L)
	for l := 0; l < L; l++ {
		total[l] = crash[l] + byz[l]
	}
	suffix := s.suffixProducts(total)
	out := 0.0
	for l := 1; l <= L; l++ {
		kPow := math.Pow(s.K, float64(L-l))
		out += float64(crash[l-1]) * s.ActCap * kPow * suffix[l]
		out += float64(byz[l-1]) * c * kPow * suffix[l]
	}
	// Synapse terms propagate through correct neurons; correctness here
	// means "not crash/byz faulty": use the same exclusion.
	for l := 1; l <= L; l++ {
		out += float64(syn[l-1]) * s.K * c * math.Pow(s.K, float64(L-l)) * suffix[l]
	}
	return out + float64(syn[L])*c
}
