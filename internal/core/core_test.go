package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/activation"
	"repro/internal/nn"
	"repro/internal/rng"
)

// handShape is the worked example used throughout:
// L = 2, N = (2, 3), w_m = (0.5, 1.5, 2.0), K = 2, ActCap = 1.
func handShape() Shape {
	return Shape{
		Widths: []int{2, 3},
		MaxW:   []float64{0.5, 1.5, 2.0},
		K:      2,
		ActCap: 1,
	}
}

func TestFepHandExpanded(t *testing.T) {
	s := handShape()
	// faults = (1, 2), C = 1.5.
	// suffix after output: w_m^{(3)} = 2.0
	// term l=2: f2 * K^0 * 2.0 = 2 * 2.0 = 4.0
	// term l=1: f1 * K^1 * (N2-f2) w_m^{(2)} * 2.0 = 1*2*(1*1.5)*2.0 = 6.0
	// Fep = 1.5 * 10.0 = 15.0
	got := Fep(s, []int{1, 2}, 1.5)
	if math.Abs(got-15.0) > 1e-12 {
		t.Fatalf("Fep = %v, want 15.0", got)
	}
}

func TestFepSingleLayerReducesToTheorem1Form(t *testing.T) {
	// For L = 1 and crash case (c = ActCap = 1), Fep = f * w_m^{(2)},
	// exactly the error term of Theorem 1's proof (Inequality 7).
	s := Shape{Widths: []int{10}, MaxW: []float64{3, 0.7}, K: 5, ActCap: 1}
	for f := 0; f <= 10; f++ {
		got := CrashFep(s, []int{f})
		want := float64(f) * 0.7
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("f=%d: CrashFep=%v want %v", f, got, want)
		}
	}
}

func TestFepZeroFaults(t *testing.T) {
	if Fep(handShape(), []int{0, 0}, 10) != 0 {
		t.Fatal("Fep with no faults must be 0")
	}
}

func TestFepDepthDependencyExponentialInK(t *testing.T) {
	// A single fault at layer l of an L-layer uniform shape contributes
	// proportionally to K^{L-l}: deeper (earlier) faults hurt more for
	// K > 1 (Theorem 2's "effect increases exponentially with depth").
	L := 5
	widths := make([]int, L)
	maxw := make([]float64, L+1)
	for i := range widths {
		widths[i] = 4
	}
	for i := range maxw {
		maxw[i] = 1
	}
	s := Shape{Widths: widths, MaxW: maxw, K: 2, ActCap: 1}
	var terms []float64
	for l := 1; l <= L; l++ {
		faults := make([]int, L)
		faults[l-1] = 1
		terms = append(terms, Fep(s, faults, 1))
	}
	for i := 0; i+1 < len(terms); i++ {
		// Moving the fault one layer earlier multiplies the bound by
		// K * (N_{l+1} - 0) * w = 2 * 4 = 8.
		ratio := terms[i] / terms[i+1]
		if math.Abs(ratio-8) > 1e-9 {
			t.Fatalf("depth ratio at layer %d = %v, want 8", i+1, ratio)
		}
	}
}

func TestFepMonotoneInCapacityKWeights(t *testing.T) {
	s := handShape()
	faults := []int{1, 1}
	base := Fep(s, faults, 1)
	if Fep(s, faults, 2) <= base {
		t.Fatal("Fep not monotone in C")
	}
	s2 := handShape()
	s2.K = 3
	if Fep(s2, faults, 1) <= base {
		t.Fatal("Fep not monotone in K")
	}
	s3 := handShape()
	s3.MaxW[1] = 2.5
	if Fep(s3, faults, 1) <= base {
		t.Fatal("Fep not monotone in w_m")
	}
}

func TestFepMonotoneInSingleLayerFaults(t *testing.T) {
	s := handShape()
	prev := -1.0
	for f := 0; f <= 3; f++ {
		v := Fep(s, []int{0, f}, 1)
		if v <= prev {
			t.Fatalf("Fep not strictly increasing in f at layer 2: f=%d", f)
		}
		prev = v
	}
}

func TestFepNonMonotoneAcrossLayers(t *testing.T) {
	// Documented subtlety: failing a neuron in a later layer removes it
	// from the propagation factor (N-f) of earlier faults, so Fep can
	// DECREASE when a fault is added. Construct such a case:
	// big earlier fault, small later weights.
	s := Shape{Widths: []int{10, 10}, MaxW: []float64{1, 1, 0.001}, K: 1, ActCap: 1}
	withoutLater := Fep(s, []int{10, 0}, 1)
	withLater := Fep(s, []int{10, 1}, 1)
	if withLater >= withoutLater {
		t.Fatalf("expected non-monotonicity: %v >= %v", withLater, withoutLater)
	}
}

func TestFepPanicsOnBadInput(t *testing.T) {
	s := handShape()
	for _, fn := range []func(){
		func() { Fep(s, []int{1}, 1) },                      // wrong length
		func() { Fep(s, []int{-1, 0}, 1) },                  // negative
		func() { Fep(s, []int{0, 4}, 1) },                   // exceeds width
		func() { Fep(s, []int{0, 0}, -1) },                  // negative capacity
		func() { FepGeneral(s, []int{0, 0}, []float64{1}) }, // mags length
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestShapeOf(t *testing.T) {
	r := rng.New(1)
	net := nn.NewRandom(r, nn.Config{InputDim: 3, Widths: []int{4, 2}, Act: activation.NewSigmoid(1.5)}, 1)
	s := ShapeOf(net)
	if s.K != 1.5 || s.ActCap != 1 {
		t.Fatalf("ShapeOf K=%v ActCap=%v", s.K, s.ActCap)
	}
	if len(s.Widths) != 2 || s.Widths[0] != 4 || s.Widths[1] != 2 {
		t.Fatalf("ShapeOf widths %v", s.Widths)
	}
	if len(s.MaxW) != 3 {
		t.Fatalf("ShapeOf MaxW %v", s.MaxW)
	}
	for l := 1; l <= 3; l++ {
		if s.MaxW[l-1] != net.MaxWeight(l) {
			t.Fatalf("MaxW[%d] mismatch", l-1)
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestShapeValidate(t *testing.T) {
	bad := []Shape{
		{},
		{Widths: []int{2}, MaxW: []float64{1}, K: 1},
		{Widths: []int{0}, MaxW: []float64{1, 1}, K: 1},
		{Widths: []int{2}, MaxW: []float64{1, -1}, K: 1},
		{Widths: []int{2}, MaxW: []float64{1, 1}, K: 0},
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Fatalf("bad shape %d accepted", i)
		}
	}
}

func TestTheorem1MaxCrashes(t *testing.T) {
	if got := Theorem1MaxCrashes(0.5, 0.1, 0.1); got != 4 {
		t.Fatalf("Theorem1MaxCrashes = %d, want 4", got)
	}
	if got := Theorem1MaxCrashes(0.1, 0.5, 0.1); got != 0 {
		t.Fatal("eps < eps' should tolerate 0")
	}
	if got := Theorem1MaxCrashes(0.5, 0.1, 0); got != math.MaxInt {
		t.Fatal("zero weights should tolerate everything")
	}
	// Exactly at the boundary: (0.4 - 0.2) / 0.2 = 1 (within float fuzz).
	got := Theorem1MaxCrashes(0.4, 0.2, 0.2)
	if got != 1 && got != 0 {
		t.Fatalf("boundary case = %d", got)
	}
}

func TestTheorem1ErrorBound(t *testing.T) {
	if Theorem1ErrorBound(0.1, 0.05, 3) != 0.25 {
		t.Fatal("Theorem1ErrorBound wrong")
	}
}

func TestToleratesConsistentWithFep(t *testing.T) {
	s := handShape()
	faults := []int{1, 1}
	f := Fep(s, faults, 1)
	if !Tolerates(s, faults, 1, f+0.01, 0.0) {
		t.Fatal("should tolerate with slack above Fep")
	}
	if Tolerates(s, faults, 1, f-0.01, 0.0) {
		t.Fatal("should not tolerate with slack below Fep")
	}
	if Tolerates(s, faults, 1, 0.1, 0.2) {
		t.Fatal("eps < eps' must never be tolerated")
	}
}

func TestEffectiveDeviation(t *testing.T) {
	if EffectiveDeviation(2, DeviationCap, 1) != 2 {
		t.Fatal("DeviationCap should pass through")
	}
	if EffectiveDeviation(2, TransmissionCap, 1) != 3 {
		t.Fatal("TransmissionCap should add ActCap")
	}
}

func TestSynapseFepHandExpanded(t *testing.T) {
	s := handShape() // K=2
	// Synapse faults: 1 into layer 1, 0 into layer 2, 2 output synapses.
	// Hidden part: neuron-equivalent error K*C = 2*1 = 2 at 1 neuron of
	// layer 1: term = 1 * 2 * K^{2-1} * (N2-0) w2 * w3 = 2*2*4.5*... wait:
	// FepGeneral: f1=1, mag=2, K^{L-1}=2, suffix(2) = (3-0)*1.5*2.0 = 9.
	// term = 1*2*2*9 = 36. Output synapses: 2 * C = 2.
	got := SynapseFep(s, []int{1, 0, 2}, 1)
	want := 36.0 + 2.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("SynapseFep = %v, want %v", got, want)
	}
}

func TestSynapseFepMoreSynapsesThanNeurons(t *testing.T) {
	// 5 faulty synapses into a 2-neuron layer must not be cheaper than 2.
	s := Shape{Widths: []int{2}, MaxW: []float64{1, 1}, K: 1, ActCap: 1}
	few := SynapseFep(s, []int{2, 0}, 1)
	many := SynapseFep(s, []int{5, 0}, 1)
	if many < few {
		t.Fatalf("piling synapse faults reduced the bound: %v < %v", many, few)
	}
}

func TestSynapseFepPaperFormula(t *testing.T) {
	// Verbatim Theorem 4 on the hand shape, faults (1, 0, 0), C = 1:
	// l=1 term: f1 K^{L+1-1} w_m^{(1)} Π_{l'=2..3}(N-f)w
	//         = 1 * 2^2 * 0.5 * (3*1.5)*(1*2.0) = 4*0.5*9 = 18.
	got := SynapseFepPaper(handShape(), []int{1, 0, 0}, 1)
	if math.Abs(got-18) > 1e-12 {
		t.Fatalf("SynapseFepPaper = %v, want 18", got)
	}
}

func TestSynapseToleratesBoundary(t *testing.T) {
	s := handShape()
	faults := []int{1, 0, 0}
	f := SynapseFep(s, faults, 1)
	if !SynapseTolerates(s, faults, 1, f+0.01, 0) {
		t.Fatal("should tolerate")
	}
	if SynapseTolerates(s, faults, 1, f-0.01, 0) {
		t.Fatal("should not tolerate")
	}
}

func TestPrecisionBoundHandExpanded(t *testing.T) {
	s := handShape()
	// lambda = (0.1, 0.2):
	// l=1: K^{1} * 0.1 * (N1 w2)(N2 w3) = 2*0.1*(2*1.5)*(3*2.0) = 3.6
	// l=2: K^{0} * 0.2 * (N2 w3) = 0.2*6 = 1.2
	got := PrecisionBound(s, []float64{0.1, 0.2})
	if math.Abs(got-4.8) > 1e-12 {
		t.Fatalf("PrecisionBound = %v, want 4.8", got)
	}
}

func TestPrecisionBoundMatchesFullLayerFep(t *testing.T) {
	// Fep with every neuron of a single layer failing equals
	// PrecisionBound with lambda concentrated at that layer — the two
	// theorems share their propagation skeleton.
	r := rng.New(5)
	f := func(seed uint16) bool {
		rr := rng.New(uint64(seed) + 99)
		L := rr.Intn(3) + 1
		widths := make([]int, L)
		maxw := make([]float64, L+1)
		for i := range widths {
			widths[i] = rr.Intn(5) + 1
		}
		for i := range maxw {
			maxw[i] = rr.Range(0.1, 2)
		}
		s := Shape{Widths: widths, MaxW: maxw, K: rr.Range(0.2, 3), ActCap: 1}
		layer := rr.Intn(L)
		c := rr.Range(0.1, 2)

		faults := make([]int, L)
		faults[layer] = widths[layer]
		fep := Fep(s, faults, c)

		lambda := make([]float64, L)
		lambda[layer] = c
		pb := PrecisionBound(s, lambda)
		return math.Abs(fep-pb) <= 1e-9*(fep+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestPrecisionBoundZero(t *testing.T) {
	if PrecisionBound(handShape(), []float64{0, 0}) != 0 {
		t.Fatal("zero lambdas must give zero bound")
	}
}

func TestLayerTermsSumToFep(t *testing.T) {
	s := handShape()
	faults := []int{2, 1}
	c := 1.3
	sum := 0.0
	for l := 1; l <= s.Layers(); l++ {
		sum += LayerTerm(s, faults, c, l)
	}
	if math.Abs(sum-Fep(s, faults, c)) > 1e-12 {
		t.Fatalf("layer terms sum %v != Fep %v", sum, Fep(s, faults, c))
	}
}

func TestRequiredSignals(t *testing.T) {
	s := handShape()
	got := RequiredSignals(s, []int{1, 2})
	if got[0] != 1 || got[1] != 1 {
		t.Fatalf("RequiredSignals = %v", got)
	}
}

func TestUniformWeightFor(t *testing.T) {
	widths := []int{5, 5}
	faults := []int{1, 1}
	k, c, budget := 1.0, 1.0, 0.5
	w := UniformWeightFor(widths, faults, k, c, budget)
	if w <= 0 {
		t.Fatal("expected positive feasible weight")
	}
	// At the returned weight the distribution must be tolerated...
	mw := []float64{w, w, w}
	s := Shape{Widths: widths, MaxW: mw, K: k, ActCap: 1}
	if Fep(s, faults, c) > budget*(1+1e-9) {
		t.Fatalf("returned weight infeasible: Fep=%v", Fep(s, faults, c))
	}
	// ...and 1% more must not be.
	for i := range mw {
		mw[i] = w * 1.01
	}
	s2 := Shape{Widths: widths, MaxW: mw, K: k, ActCap: 1}
	if Fep(s2, faults, c) <= budget {
		t.Fatal("bisection did not find the frontier")
	}
}

func TestUniformWeightForDegenerate(t *testing.T) {
	if UniformWeightFor([]int{3}, []int{1}, 1, 1, -1) != 0 {
		t.Fatal("negative budget should give 0")
	}
	if UniformWeightFor([]int{3}, []int{0}, 1, 1, 0.5) < 1e11 {
		t.Fatal("no faults should allow any weight")
	}
}

func TestFepScalesLinearlyInCProperty(t *testing.T) {
	f := func(seed uint16, scaleRaw uint8) bool {
		rr := rng.New(uint64(seed))
		L := rr.Intn(3) + 1
		widths := make([]int, L)
		maxw := make([]float64, L+1)
		faults := make([]int, L)
		for i := range widths {
			widths[i] = rr.Intn(6) + 1
			faults[i] = rr.Intn(widths[i] + 1)
		}
		for i := range maxw {
			maxw[i] = rr.Range(0, 2)
		}
		s := Shape{Widths: widths, MaxW: maxw, K: rr.Range(0.1, 4), ActCap: 1}
		alpha := float64(scaleRaw%9) + 1
		a := Fep(s, faults, 1)
		b := Fep(s, faults, alpha)
		return math.Abs(b-alpha*a) <= 1e-9*(b+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTotalFaults(t *testing.T) {
	if TotalFaults([]int{1, 2, 3}) != 6 {
		t.Fatal("TotalFaults wrong")
	}
}

func TestFepAgainstBruteForceRecursion(t *testing.T) {
	// Independent implementation of Theorem 2 by direct recursion over
	// the induction in the paper's proof: E_{L+1} = f_{L+1} w C +
	// (N_{L+1} - f_{L+1}) K E_L. Here expressed top-down per layer.
	bruteFep := func(s Shape, faults []int, c float64) float64 {
		L := s.Layers()
		e := 0.0 // error entering the current layer's sums
		for l := 1; l <= L; l++ {
			// Errors at the outputs of layer l: faulty neurons emit
			// deviation c; correct neurons squash the incoming error.
			incoming := e // error in each neuron's received sum
			correct := float64(s.Widths[l-1]-faults[l-1]) * s.K * incoming
			faulty := float64(faults[l-1]) * c
			// Each unit of output error is multiplied by at most the
			// next weight bound when summed into the next layer.
			e = (correct + faulty) * s.MaxW[l]
		}
		return e
	}
	r := rng.New(77)
	for trial := 0; trial < 500; trial++ {
		L := r.Intn(4) + 1
		widths := make([]int, L)
		maxw := make([]float64, L+1)
		faults := make([]int, L)
		for i := range widths {
			widths[i] = r.Intn(5) + 1
			faults[i] = r.Intn(widths[i] + 1)
		}
		for i := range maxw {
			maxw[i] = r.Range(0, 2)
		}
		s := Shape{Widths: widths, MaxW: maxw, K: r.Range(0.1, 3), ActCap: 1}
		c := r.Range(0, 2)
		a := Fep(s, faults, c)
		b := bruteFep(s, faults, c)
		if math.Abs(a-b) > 1e-9*(math.Abs(a)+1) {
			t.Fatalf("trial %d: Fep=%v recursion=%v (shape %+v faults %v c %v)", trial, a, b, s, faults, c)
		}
	}
}

func TestDeviationFepUniformReducesToFep(t *testing.T) {
	r := rng.New(101)
	for trial := 0; trial < 200; trial++ {
		L := r.Intn(4) + 1
		widths := make([]int, L)
		maxw := make([]float64, L+1)
		faults := make([]int, L)
		for i := range widths {
			widths[i] = r.Intn(5) + 1
			faults[i] = r.Intn(widths[i] + 1)
		}
		for i := range maxw {
			maxw[i] = r.Range(0, 2)
		}
		s := Shape{Widths: widths, MaxW: maxw, K: r.Range(0.1, 3), ActCap: 1}
		c := r.Range(0, 2)
		devs := make([][]float64, L)
		for l := range devs {
			devs[l] = make([]float64, faults[l])
			for i := range devs[l] {
				devs[l][i] = c
			}
		}
		a, b := DeviationFep(s, devs), Fep(s, faults, c)
		if math.Abs(a-b) > 1e-12*(math.Abs(b)+1) {
			t.Fatalf("trial %d: DeviationFep %v != Fep %v", trial, a, b)
		}
	}
}

func TestDeviationFepHeterogeneousIsPerFaultSum(t *testing.T) {
	s := Shape{Widths: []int{4, 3}, MaxW: []float64{1.5, 0.5, 2}, K: 2, ActCap: 1}
	devs := [][]float64{{0.3, 0.7}, {1.1}}
	// Per-fault sum: each fault alone with its own cap, same exclusion
	// counts as the combined plan.
	faults := []int{2, 1}
	want := 0.0
	for l := 1; l <= 2; l++ {
		for _, d := range devs[l-1] {
			// FepGeneral with magnitude d in layer l only counts
			// faults[l-1] identical faults there; one fault's share is
			// the term divided by the count (same combined suffix).
			term := FepGeneral(s, faults, perLayerMag(2, l, d))
			want += term / float64(faults[l-1])
		}
	}
	got := DeviationFep(s, devs)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("DeviationFep %v != per-fault sum %v", got, want)
	}
}

// perLayerMag builds a magnitude vector with d at layer l (1-based).
func perLayerMag(L, l int, d float64) []float64 {
	mags := make([]float64, L)
	mags[l-1] = d
	return mags
}

func TestDeviationFepPanics(t *testing.T) {
	s := Shape{Widths: []int{3}, MaxW: []float64{1, 1}, K: 1, ActCap: 1}
	for name, fn := range map[string]func(){
		"layer mismatch": func() { DeviationFep(s, [][]float64{{1}, {1}}) },
		"too many":       func() { DeviationFep(s, [][]float64{{1, 1, 1, 1}}) },
		"negative cap":   func() { DeviationFep(s, [][]float64{{-1}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
