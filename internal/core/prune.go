package core

import (
	"fmt"
	"math"
)

// SubtreeBounder prices the branch-and-bound pruning of the
// tree-structured exhaustive search (fault.WorstCase): given a node of
// the configuration tree — the layers 1..d already damaged, the layers
// d+1..L still free — it bounds the output deviation of EVERY leaf
// configuration below that node, so a subtree whose bound is strictly
// below the incumbent worst error can be skipped without evaluating a
// single leaf.
//
// The bound is the Fep recurrence of Theorem 2 started from a measured
// prefix instead of a per-fault cap. Write Δ_l(x) for the l1 deviation
// of the damaged layer-l outputs from the clean trace on input x, and
// topf_l(x) for the largest possible sum of |injected - clean| over any
// admissible choice of f_l faulty neurons of layer l (exact per input,
// because the engine hands every injector the CLEAN nominal output, so
// a faulty neuron's deviation is independent of upstream damage). Then
// for any completion of the free layers:
//
//	Δ_{l}(x) <= (N_l - f_l) · K · w_m^{(l)} · Δ_{l-1}(x) + topf_l(x)
//
// — the N_l - f_l correct neurons are K-Lipschitz in their received
// sums, each received sum moves by at most w_m^{(l)} · Δ_{l-1}(x), and
// the f_l faulty neurons contribute their exact deviations — and the
// output moves by at most w_m^{(L+1)} · Δ_L(x). Unrolling from depth d:
//
//	|Fneu(x) - Ffail(x)| <= Coef(d) · Δ_d(x) + Σ_{l=d+1..L} Coef(l) · topf_l(x)
//
// with Coef(l) = K^{L-l} · Π_{l'=l+1..L+1} (N_{l'} - f_{l'}) w_m^{(l')}
// — exactly the propagation factors of Fep/DeviationFep (Coef(l) is the
// multiplier DeviationFep applies to layer l's deviation caps, and
// Bound(0, 0, Tail(0, caps)) reproduces DeviationFep itself, the d = 0
// root of the tree where nothing is damaged yet).
//
// Soundness is what makes pruning free: the bound dominates every leaf
// of the subtree, so skipping a subtree whose bound is STRICTLY below
// an attained error can never discard a configuration attaining the
// maximum, and ties are never pruned.
type SubtreeBounder struct {
	coef []float64
}

// NewSubtreeBounder builds the propagation coefficients for a fault
// distribution (faults[l-1] faulty neurons in layer l). Unlike the
// panicking bound helpers this validates and returns errors: the tree
// engine is reachable from serve requests.
func NewSubtreeBounder(s Shape, faults []int) (*SubtreeBounder, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(faults) != s.Layers() {
		return nil, fmt.Errorf("core: fault distribution has %d entries for %d layers", len(faults), s.Layers())
	}
	for l, f := range faults {
		if f < 0 || f > s.Widths[l] {
			return nil, fmt.Errorf("core: f_%d = %d outside [0, N_%d=%d]", l+1, f, l+1, s.Widths[l])
		}
	}
	L := s.Layers()
	suffix := s.suffixProducts(faults)
	coef := make([]float64, L+1)
	for d := 0; d <= L; d++ {
		coef[d] = math.Pow(s.K, float64(L-d)) * suffix[d]
	}
	return &SubtreeBounder{coef: coef}, nil
}

// Coef returns K^{L-d} · Π_{l=d+1..L+1} (N_l - f_l) w_m^{(l)}: the
// factor by which an l1 deviation of the layer-d outputs can grow on
// its way to the output node (d = 0..L; Coef(L) = w_m^{(L+1)}).
func (b *SubtreeBounder) Coef(d int) float64 { return b.coef[d] }

// Layers returns L.
func (b *SubtreeBounder) Layers() int { return len(b.coef) - 1 }

// Bound combines a node's measured prefix deviation with the free-layer
// tail: Coef(d)·delta + tail dominates |Fneu - Ffail| for every leaf
// below a depth-d node whose damaged outputs deviate by delta (l1) and
// whose free layers are priced by tail (see Tail).
func (b *SubtreeBounder) Bound(d int, delta, tail float64) float64 {
	return b.coef[d]*delta + tail
}

// Tail prices the free layers below depth d: Σ_{l=d+1..L} Coef(l) ·
// topf[l-1], where topf[l-1] bounds the summed deviation of any
// admissible choice of layer-l faults (0 for fault-free layers). Tail(0,
// caps) with topf[l-1] = f_l · c reproduces Fep(s, faults, c) up to
// floating-point association.
func (b *SubtreeBounder) Tail(d int, topf []float64) float64 {
	t := 0.0
	for l := d + 1; l < len(b.coef); l++ {
		t += b.coef[l] * topf[l-1]
	}
	return t
}
