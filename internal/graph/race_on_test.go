//go:build race

package graph_test

// raceEnabled: see race_off_test.go.
const raceEnabled = true
