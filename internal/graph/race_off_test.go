//go:build !race

package graph_test

// raceEnabled reports whether the race detector instruments this build;
// allocation-count assertions are skipped under it (the instrumented
// sync.Pool allocates on Get, which is a property of the detector, not
// of the engine).
const raceEnabled = false
