package graph_test

// The graph engine's load-bearing property is bit-identity on
// layer-expressible graphs: a Net whose every level reads only the
// previous one must produce EXACTLY the floats of its lowered dense
// twin — through clean evaluation, every registered fault model, the
// compiled plan engine, the batched engine and the worst-case search.
// Skip graphs have no dense oracle, so they are checked against a
// naive reference evaluator written directly over the CSR arrays.

import (
	"context"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/activation"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/rng"
)

func randomInputs(r *rng.Rand, d, n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		x := make([]float64, d)
		r.Floats(x, 0, 1)
		out[i] = x
	}
	return out
}

func randomAct(r *rng.Rand) activation.Func {
	switch r.Intn(3) {
	case 0:
		return activation.NewSigmoid(r.Range(0.25, 3))
	case 1:
		return activation.NewTanh(r.Range(0.25, 2))
	default:
		return activation.NewHardSigmoid(r.Range(0.5, 2))
	}
}

func randomWidths(r *rng.Rand) []int {
	L := r.Intn(3) + 1
	widths := make([]int, L)
	for i := range widths {
		widths[i] = r.Intn(6) + 2
	}
	return widths
}

// mapPlanToDense rewrites a graph plan's synapse ordinals into the
// sender indices the lowered dense twin addresses synapses by.
func mapPlanToDense(g *graph.Net, p fault.Plan) fault.Plan {
	out := fault.Plan{Neurons: append([]fault.NeuronFault(nil), p.Neurons...)}
	for _, f := range p.Synapses {
		_, si, _ := g.InEdge(f.Layer, f.To, f.From)
		out.Synapses = append(out.Synapses, fault.SynapseFault{Layer: f.Layer, To: f.To, From: si})
	}
	return out
}

// randomGraphPlan draws neuron and synapse faults addressed in the
// graph's own terms (synapse From = in-edge ordinal).
func randomGraphPlan(r *rng.Rand, g *graph.Net) fault.Plan {
	L := g.NumLayers()
	perNeuron := make([]int, L)
	for l := 1; l <= L; l++ {
		perNeuron[l-1] = r.Intn(g.Width(l) + 1)
	}
	perSyn := make([]int, L+1)
	for l := 1; l <= L+1; l++ {
		total := 0
		for to := 0; to < g.Width(l); to++ {
			total += g.FanIn(l, to)
		}
		if total > 3 {
			total = 3
		}
		perSyn[l-1] = r.Intn(total + 1)
	}
	p := fault.RandomNeuronPlan(r, g, perNeuron)
	p.Synapses = fault.RandomSynapsePlan(r, g, perSyn).Synapses
	return p
}

func TestFromNetworkBitIdentity(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 100; trial++ {
		d := nn.NewRandom(r, nn.Config{
			InputDim: r.Intn(4) + 1,
			Widths:   randomWidths(r),
			Act:      randomAct(r),
			Bias:     r.Bool(0.5),
		}, r.Range(0.2, 2))
		g := graph.FromNetwork(d)
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: twin invalid: %v", trial, err)
		}
		var sc nn.Scratch
		for _, x := range randomInputs(r, d.InputDim, 5) {
			want := d.Forward(x)
			got := nn.ForwardModel(g, &sc, x)
			if got != want {
				t.Fatalf("trial %d: twin forward %v != dense %v", trial, got, want)
			}
			trD, trG := nn.TraceModel(d, x), nn.TraceModel(g, x)
			if trD.Output != trG.Output {
				t.Fatalf("trial %d: trace outputs differ", trial)
			}
			for l := range trD.Outputs {
				for i := range trD.Outputs[l] {
					if trD.Outputs[l][i] != trG.Outputs[l][i] {
						t.Fatalf("trial %d: trace layer %d neuron %d differs", trial, l+1, i)
					}
				}
			}
		}
		low, err := g.Lower()
		if err != nil {
			t.Fatalf("trial %d: twin does not lower: %v", trial, err)
		}
		for _, x := range randomInputs(r, d.InputDim, 3) {
			if low.Forward(x) != d.Forward(x) {
				t.Fatalf("trial %d: Lower round-trip drifted", trial)
			}
		}
	}
}

// TestFaultBitIdentityAllModels is the acceptance criterion: on a
// layer-expressible sparse graph, every registered fault model must
// price out bit-identically to the lowered dense oracle through the
// compiled plan engine. Stochastic models get one same-seeded stream
// per engine; bitwise agreement then also proves both engines consume
// randomness in the same order.
func TestFaultBitIdentityAllModels(t *testing.T) {
	r := rng.New(13)
	for trial := 0; trial < 40; trial++ {
		in := r.Intn(4) + 1
		g := graph.NewSparse(r, in, randomWidths(r), randomAct(r), r.Range(0.3, 1))
		low, err := g.Lower()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		planG := randomGraphPlan(r, g)
		planD := mapPlanToDense(g, planG)
		if err := planG.Validate(g); err != nil {
			t.Fatalf("trial %d: graph plan invalid: %v", trial, err)
		}
		if err := planD.Validate(low); err != nil {
			t.Fatalf("trial %d: dense plan invalid: %v", trial, err)
		}
		inputs := randomInputs(r, in, 4)
		trsG := fault.CleanTraces(g, inputs)
		trsD := fault.CleanTraces(low, inputs)
		seed := r.Uint64()
		for _, m := range fault.Models() {
			mk := func(net nn.Model) fault.Injector {
				inj, err := m.New(fault.Params{
					C: 0.7, Value: 0.4, Prob: 0.6,
					Bits: 8, Bit: trial % 8,
					Net: net, R: rng.New(seed),
				})
				if err != nil {
					t.Fatalf("trial %d: %s: %v", trial, m.Name, err)
				}
				return inj
			}
			injG, injD := mk(g), mk(low)
			cpG := fault.Compile(g, planG)
			cpD := fault.Compile(low, planD)
			for i := range inputs {
				eg := cpG.ErrorOnTrace(injG, trsG[i])
				ed := cpD.ErrorOnTrace(injD, trsD[i])
				if eg != ed {
					t.Fatalf("trial %d: model %s input %d: graph %v != dense %v",
						trial, m.Name, i, eg, ed)
				}
			}
			// The fused path (no precomputed trace) must agree too.
			injG, injD = mk(g), mk(low)
			for i, x := range inputs {
				if eg, ed := cpG.ErrorOn(injG, x), cpD.ErrorOn(injD, x); eg != ed {
					t.Fatalf("trial %d: model %s input %d fused: graph %v != dense %v",
						trial, m.Name, i, eg, ed)
				}
			}
		}
	}
}

// TestBatchPlanDAGFusedLanes spot-checks the fused level-scheduled
// batch path on random skip graphs (the exhaustive per-model matrix
// lives in batch_test.go).
func TestBatchPlanDAGFusedLanes(t *testing.T) {
	r := rng.New(17)
	for trial := 0; trial < 30; trial++ {
		in := r.Intn(4) + 1
		g := graph.NewSmallWorld(r, in, randomWidths(r), randomAct(r), 2, r.Range(0, 1))
		inputs := randomInputs(r, in, 3)
		trs := fault.CleanTraces(g, inputs)
		bp := fault.CompileBatch(g, 4)
		plans := make([]fault.Plan, 3)
		for p := range plans {
			plans[p] = randomGraphPlan(r, g)
		}
		bp.Reset(plans)
		injs := []fault.Injector{fault.Crash{}, fault.SignFlip{}, fault.StuckAt{V: 0.3}}
		out := make([]float64, 3)
		for _, tr := range trs {
			bp.ErrorsOnTrace(injs, tr, out)
			for p := range plans {
				want := fault.Compile(g, plans[p]).ErrorOnTrace(injs[p], tr)
				if out[p] != want {
					t.Fatalf("trial %d: lane %d batched %v != scalar %v", trial, p, out[p], want)
				}
			}
		}
	}
}

// naiveEval is an independent reference evaluator over the raw CSR
// arrays: plain left-to-right accumulation, no lane tricks. It is NOT
// bit-identical to the kernels, so comparisons use a tolerance.
func naiveEval(g *graph.Net, p fault.Plan, inj fault.Injector, x []float64) (clean, faulted float64) {
	L := g.NumLayers()
	act := g.Act
	byLayerN := make(map[int][]fault.NeuronFault)
	byLayerS := make(map[int][]fault.SynapseFault)
	for _, f := range p.Neurons {
		byLayerN[f.Layer] = append(byLayerN[f.Layer], f)
	}
	for _, f := range p.Synapses {
		byLayerS[f.Layer] = append(byLayerS[f.Layer], f)
	}
	sweep := func(damaged bool, cleanYs [][]float64) ([][]float64, float64) {
		ys := make([][]float64, L+1)
		ys[0] = x
		for l := 1; l <= L; l++ {
			lv := g.Levels[l-1]
			out := make([]float64, lv.N)
			for to := 0; to < lv.N; to++ {
				s := 0.0
				for e := lv.Ptr[to]; e < lv.Ptr[to+1]; e++ {
					s += lv.W[e] * ys[lv.SrcLevel[e]][lv.SrcIdx[e]]
				}
				if lv.Bias != nil {
					s += lv.Bias[to]
				}
				out[to] = s
			}
			if damaged {
				for _, f := range byLayerS[l] {
					e := lv.Ptr[f.To] + f.From
					out[f.To] += inj.SynapseDelta(f, lv.W[e]*ys[lv.SrcLevel[e]][lv.SrcIdx[e]])
				}
			}
			for i := range out {
				out[i] = act.Eval(out[i])
			}
			if damaged {
				for _, f := range byLayerN[l] {
					out[f.Index] = inj.NeuronValue(f, cleanYs[l][f.Index])
				}
			}
			ys[l] = out
		}
		ov := g.Output
		s := 0.0
		for e := ov.Ptr[0]; e < ov.Ptr[1]; e++ {
			s += ov.W[e] * ys[ov.SrcLevel[e]][ov.SrcIdx[e]]
		}
		if ov.Bias != nil {
			s += ov.Bias[0]
		}
		if damaged {
			for _, f := range byLayerS[L+1] {
				e := ov.Ptr[0] + f.From
				s += inj.SynapseDelta(f, ov.W[e]*ys[ov.SrcLevel[e]][ov.SrcIdx[e]])
			}
		}
		return ys, s
	}
	cleanYs, cleanOut := sweep(false, nil)
	_, faultedOut := sweep(true, cleanYs)
	return cleanOut, faultedOut
}

// TestSkipGraphMatchesNaiveReference checks the DAG engine on graphs
// with real skip connections against the naive evaluator.
func TestSkipGraphMatchesNaiveReference(t *testing.T) {
	r := rng.New(19)
	for trial := 0; trial < 60; trial++ {
		in := r.Intn(4) + 1
		g := graph.NewSmallWorld(r, in, randomWidths(r), randomAct(r), 2, r.Range(0.2, 0.9))
		plan := randomGraphPlan(r, g)
		var sc nn.Scratch
		for _, x := range randomInputs(r, in, 3) {
			wantClean, wantFaulted := naiveEval(g, plan, fault.SignFlip{}, x)
			gotClean := nn.ForwardModel(g, &sc, x)
			if math.Abs(gotClean-wantClean) > 1e-9*(1+math.Abs(wantClean)) {
				t.Fatalf("trial %d: clean %v != naive %v", trial, gotClean, wantClean)
			}
			gotFaulted := fault.Forward(g, plan, fault.SignFlip{}, x)
			if math.Abs(gotFaulted-wantFaulted) > 1e-9*(1+math.Abs(wantFaulted)) {
				t.Fatalf("trial %d: faulted %v != naive %v", trial, gotFaulted, wantFaulted)
			}
			wantErr := math.Abs(wantClean - wantFaulted)
			gotErr := fault.ErrorOn(g, plan, fault.SignFlip{}, x)
			if math.Abs(gotErr-wantErr) > 1e-9*(1+wantErr) {
				t.Fatalf("trial %d: error %v != naive %v", trial, gotErr, wantErr)
			}
		}
	}
}

// TestWorstCaseLayeredGraphMatchesDense runs the tree search on a
// layer-expressible graph and its dense twin: identical results,
// bit for bit, including the first-attaining index.
func TestWorstCaseLayeredGraphMatchesDense(t *testing.T) {
	r := rng.New(23)
	for trial := 0; trial < 20; trial++ {
		in := r.Intn(3) + 1
		widths := []int{r.Intn(3) + 2, r.Intn(3) + 2}
		g := graph.NewSparse(r, in, widths, randomAct(r), r.Range(0.5, 1))
		low, err := g.Lower()
		if err != nil {
			t.Fatal(err)
		}
		perLayer := []int{r.Intn(widths[0]) + 1, r.Intn(widths[1]) + 1}
		inputs := randomInputs(r, in, 3)
		resG, err := fault.ExhaustiveWorstCrash(g, perLayer, inputs, 0)
		if err != nil {
			t.Fatal(err)
		}
		resD, err := fault.ExhaustiveWorstCrash(low, perLayer, inputs, 0)
		if err != nil {
			t.Fatal(err)
		}
		if resG.WorstError != resD.WorstError {
			t.Fatalf("trial %d: graph worst %v != dense %v", trial, resG.WorstError, resD.WorstError)
		}
		if len(resG.WorstPlan.Neurons) != len(resD.WorstPlan.Neurons) {
			t.Fatalf("trial %d: worst plans differ", trial)
		}
		for i := range resG.WorstPlan.Neurons {
			if resG.WorstPlan.Neurons[i] != resD.WorstPlan.Neurons[i] {
				t.Fatalf("trial %d: worst plans differ at %d", trial, i)
			}
		}
	}
}

// TestWorstCaseDAGPruningSound is the soundness property test of the
// per-node branch-and-bound on arbitrary topologies: across layered,
// sparse and Watts–Strogatz graphs — including genuinely non-layered
// skip graphs, which historically fell back to an unpruned flat sweep —
// the pruned tree search must return the identical worst error AND the
// identical first-attaining plan (tree-order argmax) as a brute-force
// enumeration through the compiled scalar engine, with every tree
// position accounted for as visited or pruned.
func TestWorstCaseDAGPruningSound(t *testing.T) {
	r := rng.New(29)
	skewed, pruned := 0, int64(0)
	for trial := 0; trial < 30; trial++ {
		in := r.Intn(3) + 1
		widths := []int{3, 3}
		if trial%2 == 1 {
			widths = []int{4, 3, 4} // deeper: mid-spine bounds + dirty suffix levels
		}
		var g *graph.Net
		switch trial % 3 {
		case 0:
			g = graph.NewLayered(r, in, widths, randomAct(r))
		case 1:
			g = graph.NewSparse(r, in, widths, randomAct(r), r.Range(0.4, 1))
		default:
			g = graph.NewSmallWorld(r, in, widths, randomAct(r), 2, 0.6)
		}
		if !nn.IsLayered(g) {
			skewed++
		}
		perLayer := make([]int, len(widths))
		for l := range perLayer {
			perLayer[l] = r.Intn(2) + 1
		}
		if trial%5 == 0 {
			perLayer[len(perLayer)-1] = 0 // fault-free deepest layer: suffix propagation
		}
		inputs := randomInputs(r, in, 2)
		w, err := fault.NewWorstCase(g, perLayer, inputs, fault.WorstCaseOptions{
			Prune: true, Sequential: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := w.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if res.Visited+res.Pruned != w.Total() {
			t.Fatalf("trial %d: visited %d + pruned %d != total %d",
				trial, res.Visited, res.Pruned, w.Total())
		}
		pruned += res.Pruned
		// Brute force in the same tree order through the scalar engine.
		trs := fault.CleanTraces(g, inputs)
		bestErr, bestFlat := 0.0, int64(-1)
		for flat := int64(0); flat < w.Total(); flat++ {
			p := w.PlanAt(flat)
			cp := fault.Compile(g, p)
			worst := 0.0
			for _, tr := range trs {
				if e := cp.ErrorOnTrace(fault.Crash{}, tr); e > worst {
					worst = e
				}
			}
			if worst > bestErr {
				bestErr, bestFlat = worst, flat
			}
		}
		if res.WorstError != bestErr {
			t.Fatalf("trial %d: pruned search %v != brute force %v", trial, res.WorstError, bestErr)
		}
		if bestFlat >= 0 {
			want := w.PlanAt(bestFlat).Neurons
			if len(res.WorstPlan.Neurons) != len(want) {
				t.Fatalf("trial %d: worst plan differs", trial)
			}
			for i := range want {
				if res.WorstPlan.Neurons[i] != want[i] {
					t.Fatalf("trial %d: worst plan differs at %d", trial, i)
				}
			}
		}
	}
	if skewed == 0 {
		t.Fatal("no trial produced a non-layered graph; the DAG path went untested")
	}
	if pruned == 0 {
		t.Log("note: no configuration was pruned across all trials (bounds loose on these nets)")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := rng.New(31)
	for trial := 0; trial < 30; trial++ {
		in := r.Intn(4) + 1
		var g *graph.Net
		if r.Bool(0.5) {
			g = graph.NewSparse(r, in, randomWidths(r), randomAct(r), r.Range(0.3, 1))
		} else {
			g = graph.NewSmallWorld(r, in, randomWidths(r), randomAct(r), 2, r.Range(0, 1))
		}
		blob, err := json.Marshal(g)
		if err != nil {
			t.Fatal(err)
		}
		var back graph.Net
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var sc nn.Scratch
		for _, x := range randomInputs(r, in, 3) {
			if nn.ForwardModel(&back, &sc, x) != nn.ForwardModel(g, &sc, x) {
				t.Fatalf("trial %d: decoded net evaluates differently", trial)
			}
		}
		blob2, err := json.Marshal(&back)
		if err != nil {
			t.Fatal(err)
		}
		if string(blob) != string(blob2) {
			t.Fatalf("trial %d: re-marshal not stable", trial)
		}
	}
}

func TestUnmarshalRejectsMalformed(t *testing.T) {
	cases := []struct{ name, blob string }{
		{"wrong arch", `{"arch":"dense","input_dim":1}`},
		{"unknown field", `{"arch":"graph","input_dim":1,"bogus":1}`},
		{"no levels", `{"arch":"graph","input_dim":1,"activation":"relu","levels":[],"output":{"n":1,"ptr":[0,0],"src_level":[],"src_idx":[],"w":[]}}`},
		{"bad csr", `{"arch":"graph","input_dim":1,"activation":"relu","levels":[{"n":1,"ptr":[0],"src_level":[],"src_idx":[],"w":[]}],"output":{"n":1,"ptr":[0,0],"src_level":[],"src_idx":[],"w":[]}}`},
		{"edge from future", `{"arch":"graph","input_dim":1,"activation":"relu","levels":[{"n":1,"ptr":[0,1],"src_level":[1],"src_idx":[0],"w":[1]}],"output":{"n":1,"ptr":[0,1],"src_level":[1],"src_idx":[0],"w":[1]}}`},
		{"nan weight", `{"arch":"graph","input_dim":1,"activation":"relu","levels":[{"n":1,"ptr":[0,1],"src_level":[0],"src_idx":[0],"w":["NaN"]}],"output":{"n":1,"ptr":[0,1],"src_level":[1],"src_idx":[0],"w":[1]}}`},
	}
	for _, tc := range cases {
		var g graph.Net
		if err := json.Unmarshal([]byte(tc.blob), &g); err == nil {
			t.Errorf("%s: unmarshal accepted malformed input", tc.name)
		}
	}
}

func TestGenerators(t *testing.T) {
	r := rng.New(37)
	// Determinism: the same seed reproduces the same graph bytes.
	g1 := graph.NewSmallWorld(rng.New(7), 3, []int{4, 4}, activation.NewSigmoid(1), 2, 0.5)
	g2 := graph.NewSmallWorld(rng.New(7), 3, []int{4, 4}, activation.NewSigmoid(1), 2, 0.5)
	b1, _ := json.Marshal(g1)
	b2, _ := json.Marshal(g2)
	if string(b1) != string(b2) {
		t.Fatal("NewSmallWorld is not deterministic for a fixed seed")
	}
	for trial := 0; trial < 30; trial++ {
		in := r.Intn(4) + 1
		widths := randomWidths(r)
		act := randomAct(r)
		// beta = 0 keeps the lattice banded: layer-expressible.
		g := graph.NewSmallWorld(r, in, widths, act, 2, 0)
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if _, err := g.Lower(); err != nil {
			t.Fatalf("trial %d: beta=0 lattice should lower: %v", trial, err)
		}
		if !nn.IsLayered(g) {
			t.Fatalf("trial %d: beta=0 lattice should be layered", trial)
		}
		// Sparse graphs keep at least one in-edge per node.
		s := graph.NewSparse(r, in, widths, act, r.Range(0, 1))
		for l := 1; l <= s.NumLayers()+1; l++ {
			for to := 0; to < s.Width(l); to++ {
				if s.FanIn(l, to) < 1 {
					t.Fatalf("trial %d: node (%d,%d) has no in-edges", trial, l, to)
				}
			}
		}
	}
}

// TestOutgoingScorer pins the OutgoingScorer fast path to the generic
// scan on layer-expressible graphs (adversarial plans must agree with
// the lowered network's).
func TestOutgoingScorer(t *testing.T) {
	r := rng.New(41)
	for trial := 0; trial < 30; trial++ {
		in := r.Intn(4) + 1
		g := graph.NewSparse(r, in, randomWidths(r), randomAct(r), r.Range(0.3, 1))
		low, err := g.Lower()
		if err != nil {
			t.Fatal(err)
		}
		for l := 1; l <= g.NumLayers(); l++ {
			for idx := 0; idx < g.Width(l); idx++ {
				got := g.OutgoingWeight(l, idx)
				want := 0.0
				if l == low.Layers() {
					want = math.Abs(low.Output[idx])
				} else {
					for j := 0; j < low.Width(l+1); j++ {
						if w := math.Abs(low.Hidden[l].At(j, idx)); w > want {
							want = w
						}
					}
				}
				if got != want {
					t.Fatalf("trial %d: OutgoingWeight(%d,%d) = %v, generic scan %v",
						trial, l, idx, got, want)
				}
			}
		}
	}
}
