package graph

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/activation"
	"repro/internal/nn"
	"repro/internal/rng"
)

// edge is a generator-side in-edge before CSR packing.
type edge struct {
	srcLevel, srcIdx int
	w                float64
}

// packLevel builds a CSR Level from per-node edge lists, sorting each
// node's edges into the ascending (srcLevel, srcIdx) order the kernels
// require.
func packLevel(perNode [][]edge, bias []float64) *Level {
	lv := &Level{N: len(perNode), Ptr: make([]int, len(perNode)+1), Bias: bias}
	total := 0
	for _, es := range perNode {
		total += len(es)
	}
	lv.SrcLevel = make([]int, 0, total)
	lv.SrcIdx = make([]int, 0, total)
	lv.W = make([]float64, 0, total)
	for to, es := range perNode {
		sort.Slice(es, func(i, j int) bool {
			if es[i].srcLevel != es[j].srcLevel {
				return es[i].srcLevel < es[j].srcLevel
			}
			return es[i].srcIdx < es[j].srcIdx
		})
		for _, e := range es {
			lv.SrcLevel = append(lv.SrcLevel, e.srcLevel)
			lv.SrcIdx = append(lv.SrcIdx, e.srcIdx)
			lv.W = append(lv.W, e.w)
		}
		lv.Ptr[to+1] = len(lv.W)
	}
	return lv
}

// FromNetwork returns the exact graph twin of a dense network: every
// weight entry (zeros included) becomes an edge, so forward evaluation
// is bit-identical by construction and Lower round-trips.
func FromNetwork(d *nn.Network) *Net {
	L := len(d.Hidden)
	n := &Net{InputDim: d.InputDim, Act: d.Act, Levels: make([]*Level, L)}
	for l := 1; l <= L; l++ {
		m := d.Hidden[l-1]
		perNode := make([][]edge, m.Rows)
		for to := 0; to < m.Rows; to++ {
			row := m.Row(to)
			es := make([]edge, m.Cols)
			for from, w := range row {
				es[from] = edge{srcLevel: l - 1, srcIdx: from, w: w}
			}
			perNode[to] = es
		}
		var bias []float64
		if d.Biases != nil && d.Biases[l-1] != nil {
			bias = append([]float64(nil), d.Biases[l-1]...)
		}
		n.Levels[l-1] = packLevel(perNode, bias)
	}
	out := make([]edge, len(d.Output))
	for from, w := range d.Output {
		out[from] = edge{srcLevel: L, srcIdx: from, w: w}
	}
	n.Output = packLevel([][]edge{out}, []float64{d.OutputBias})
	return n
}

// widthOf returns the width of level v for generators working from a
// widths slice (v = 0 is the input).
func widthOf(in int, widths []int, v int) int {
	if v == 0 {
		return in
	}
	return widths[v-1]
}

// scale is the uniform weight half-range for a node with the given
// fan-in (the usual 1/sqrt(fanIn) variance control).
func scale(fanIn int) float64 {
	if fanIn == 0 {
		return 0
	}
	return 1 / math.Sqrt(float64(fanIn))
}

// NewLayered generates a fully connected layered graph — the dense
// special case, useful as a seeded starting point and in tests.
func NewLayered(r *rng.Rand, in int, widths []int, act activation.Func) *Net {
	return NewSparse(r, in, widths, act, 1)
}

// NewSparse generates a layered graph where every node reads a random
// subset of the previous level: density is the expected fraction of the
// previous level each node connects to, clamped so every node keeps at
// least one in-edge. The result is layer-expressible (Lower succeeds).
func NewSparse(r *rng.Rand, in int, widths []int, act activation.Func, density float64) *Net {
	if len(widths) == 0 {
		panic("graph: NewSparse needs at least one hidden level")
	}
	n := &Net{InputDim: in, Act: act, Levels: make([]*Level, len(widths))}
	for l := 1; l <= len(widths); l++ {
		prev := widthOf(in, widths, l-1)
		deg := int(math.Round(density * float64(prev)))
		if deg < 1 {
			deg = 1
		}
		if deg > prev {
			deg = prev
		}
		s := scale(deg)
		perNode := make([][]edge, widths[l-1])
		for to := range perNode {
			es := make([]edge, 0, deg)
			for _, from := range r.Sample(prev, deg) {
				es = append(es, edge{srcLevel: l - 1, srcIdx: from, w: r.Range(-s, s)})
			}
			perNode[to] = es
		}
		bias := make([]float64, widths[l-1])
		r.Floats(bias, -0.1, 0.1)
		n.Levels[l-1] = packLevel(perNode, bias)
	}
	last := widths[len(widths)-1]
	out := make([]edge, 0, last)
	s := scale(last)
	for from := 0; from < last; from++ {
		out = append(out, edge{srcLevel: len(widths), srcIdx: from, w: r.Range(-s, s)})
	}
	n.Output = packLevel([][]edge{out}, []float64{r.Range(-0.1, 0.1)})
	return n
}

// NewSmallWorld generates a feed-forward Watts–Strogatz graph: every
// node starts from a ring-lattice wiring mapped onto the previous level
// — k sources nearest its relative position (cf. rng.WattsStrogatz, the
// classic undirected form) — and each edge is then rewired with
// probability beta to a uniformly
// random node of ANY earlier level, creating the long-range skip
// connections that give small-world graphs their short paths. beta = 0
// is a banded layered graph (layer-expressible); beta > 0 is generally
// not expressible as layers and exercises the DAG engine.
func NewSmallWorld(r *rng.Rand, in int, widths []int, act activation.Func, k int, beta float64) *Net {
	if len(widths) == 0 {
		panic("graph: NewSmallWorld needs at least one hidden level")
	}
	if k < 1 {
		panic("graph: NewSmallWorld needs k >= 1")
	}
	if beta < 0 || beta > 1 {
		panic(fmt.Sprintf("graph: NewSmallWorld beta %v outside [0,1]", beta))
	}
	n := &Net{InputDim: in, Act: act, Levels: make([]*Level, len(widths))}
	for l := 1; l <= len(widths); l++ {
		prev := widthOf(in, widths, l-1)
		deg := k
		if deg > prev {
			deg = prev
		}
		s := scale(deg)
		perNode := make([][]edge, widths[l-1])
		for to := range perNode {
			// k nearest previous-level nodes around the node's relative
			// position (the lattice step of Watts–Strogatz, feed-forward).
			center := to * prev / widths[l-1]
			have := make(map[[2]int]bool, deg)
			es := make([]edge, 0, deg)
			for d := 0; len(es) < deg; d++ {
				from := ((center+lattice(d))%prev + prev) % prev
				key := [2]int{l - 1, from}
				if have[key] {
					continue
				}
				have[key] = true
				es = append(es, edge{srcLevel: l - 1, srcIdx: from, w: r.Range(-s, s)})
			}
			// Rewiring step: with probability beta an edge jumps to a
			// uniformly random node of a uniformly random earlier level.
			for i := range es {
				if !r.Bool(beta) {
					continue
				}
				v := r.Intn(l) // 0..l-1
				idx := r.Intn(widthOf(in, widths, v))
				key := [2]int{v, idx}
				if have[key] {
					continue // keep the original edge rather than duplicate
				}
				delete(have, [2]int{es[i].srcLevel, es[i].srcIdx})
				have[key] = true
				es[i].srcLevel, es[i].srcIdx = v, idx
			}
			perNode[to] = es
		}
		bias := make([]float64, widths[l-1])
		r.Floats(bias, -0.1, 0.1)
		n.Levels[l-1] = packLevel(perNode, bias)
	}
	last := widths[len(widths)-1]
	out := make([]edge, 0, last)
	s := scale(last)
	for from := 0; from < last; from++ {
		out = append(out, edge{srcLevel: len(widths), srcIdx: from, w: r.Range(-s, s)})
	}
	n.Output = packLevel([][]edge{out}, []float64{r.Range(-0.1, 0.1)})
	return n
}

// lattice maps 0,1,2,3,... to the offsets 0,+1,-1,+2,-2,... — the
// nearest-first spiral around a lattice position.
func lattice(d int) int {
	if d%2 == 1 {
		return (d + 1) / 2
	}
	return -d / 2
}
