package graph_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/activation"
	"repro/internal/graph"
	"repro/internal/rng"
)

// FuzzGraphJSON drives arbitrary bytes through the graph codec. The
// codec is the trust boundary for uploaded documents, so decoding must
// never panic, anything it accepts must satisfy the full structural
// Validate contract, and the encoding must be a stable fixed point.
func FuzzGraphJSON(f *testing.F) {
	r := rng.New(7)
	for _, g := range []*graph.Net{
		graph.NewLayered(r.Split(), 2, []int{3, 2}, activation.NewSigmoid(1)),
		graph.NewSparse(r.Split(), 3, []int{4, 3}, activation.Identity{}, 0.5),
		graph.NewSmallWorld(r.Split(), 2, []int{5, 4, 3}, activation.NewTanh(1), 2, 0.7),
	} {
		if doc, err := json.Marshal(g); err == nil {
			f.Add(doc)
		}
	}
	f.Add([]byte(`{"arch":"graph","input_dim":0,"activation":"identity","levels":[],"output":{}}`))
	f.Add([]byte(`{"arch":"graph","levels":[{"n":1,"ptr":[0,2],"src_level":[0,1],"src_idx":[0,0],"w":[1,1]}]}`))
	f.Add([]byte(`[]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var g graph.Net
		if err := json.Unmarshal(data, &g); err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("codec accepted a graph that fails Validate: %v", err)
		}
		doc, err := json.Marshal(&g)
		if err != nil {
			t.Fatalf("accepted graph failed to marshal: %v", err)
		}
		var g2 graph.Net
		if err := json.Unmarshal(doc, &g2); err != nil {
			t.Fatalf("re-marshalled graph rejected: %v", err)
		}
		doc2, err := json.Marshal(&g2)
		if err != nil {
			t.Fatalf("round-tripped graph failed to marshal: %v", err)
		}
		if !bytes.Equal(doc, doc2) {
			t.Fatalf("encoding not stable:\n%s\n%s", doc, doc2)
		}
	})
}
