package graph

import (
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/activation"
	"repro/internal/nn"
)

// Arch is the architecture tag of serialised graph documents.
const Arch = "graph"

type jsonNet struct {
	Arch       string   `json:"arch"`
	InputDim   int      `json:"input_dim"`
	Activation string   `json:"activation"`
	Levels     []*Level `json:"levels"`
	Output     *Level   `json:"output"`
}

// MarshalJSON serialises the net with its architecture tag and the
// activation by name. Float64 JSON encoding round-trips exactly, so a
// loaded net's forward outputs are bit-identical to the saved one's.
func (n *Net) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonNet{
		Arch:       Arch,
		InputDim:   n.InputDim,
		Activation: n.Act.Name(),
		Levels:     n.Levels,
		Output:     n.Output,
	})
}

// UnmarshalJSON restores a net serialised by MarshalJSON. Unknown
// fields are errors (see nn.Network.UnmarshalJSON for the rationale),
// and the document must pass full structural validation — the codec is
// the trust boundary for stored and posted models.
func (n *Net) UnmarshalJSON(data []byte) error {
	var j jsonNet
	if err := nn.StrictUnmarshal(data, &j); err != nil {
		return err
	}
	if j.Arch != Arch {
		return fmt.Errorf("graph: document arch %q, want %q", j.Arch, Arch)
	}
	act, err := activation.FromName(j.Activation)
	if err != nil {
		return err
	}
	n.InputDim = j.InputDim
	n.Act = act
	n.Levels = j.Levels
	n.Output = j.Output
	n.once = sync.Once{}
	n.meta = nil
	n.outMax = nil
	n.compileErr = nil
	return n.Validate()
}
