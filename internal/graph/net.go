// Package graph implements arbitrary-topology feed-forward models: a
// Net groups neurons into topological levels but lets a neuron read
// from ANY earlier level (skip connections), with per-edge weights
// stored in compressed sparse rows. Strictly layered dense and
// convolutional nets become special cases of this wiring; a graph whose
// every level reads only the preceding one lowers to a dense nn.Network
// (Lower) that stays the bit-identical test oracle.
//
// # Memory model
//
// The layered engine keeps two rolling vectors alive; a DAG cannot,
// because a later level may read any earlier one. The graph engine
// therefore schedules levels topologically and keeps every level's
// output resident for the duration of one forward pass — O(Σ N_l) live
// floats (see nn.forwardDAG). Within a level, each node accumulates its
// in-edges in ascending (srcLevel, srcIdx) order over the virtual
// concatenation of its level's source levels, replaying the dense
// kernel's four-lane order (tensor.Dot) on that concatenation: edge
// columns below concatWidth&^3 feed lane col&3, the tail feeds lane 0,
// and the bias joins after the lane reduction. Absent edges contribute
// exact zeros in the dense oracle, so skipping them never changes a
// lane (the same +0/-0 argument tensor.ConvAcc relies on) and
// graph-native evaluation is bit-identical to the lowered network.
package graph

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/activation"
	"repro/internal/tensor"
)

// Level is one topological level of a Net in CSR form: node `to` owns
// edges Ptr[to]..Ptr[to+1], and edge e reads node SrcIdx[e] of level
// SrcLevel[e] with weight W[e]. A node's edges must be sorted strictly
// ascending by (SrcLevel, SrcIdx) — the order the kernels accumulate
// in. Bias is optional (nil = no biases on this level).
type Level struct {
	N        int       `json:"n"`
	Ptr      []int     `json:"ptr"`
	SrcLevel []int     `json:"src_level"`
	SrcIdx   []int     `json:"src_idx"`
	W        []float64 `json:"w"`
	Bias     []float64 `json:"bias,omitempty"`
}

// Edges returns the number of edges into the level.
func (lv *Level) Edges() int { return len(lv.W) }

// Net is a feed-forward DAG with L hidden levels and one linear output
// node. Level 0 is the input (InputDim nodes), levels 1..L are hidden
// (squashed by Act), and Output is level L+1 (exactly one node, no
// activation). A Net must not be mutated after first use: derived
// metadata (source-level sets, concatenation columns, per-level weight
// maxima) is compiled lazily and cached.
type Net struct {
	InputDim int
	Act      activation.Func
	Levels   []*Level
	Output   *Level

	once       sync.Once
	meta       []levelMeta // meta[l-1] for level l = 1..L+1
	outMax     [][]float64 // outMax[l-1][i]: max |w| over edges leaving node (l, i)
	compileErr error
}

// levelMeta is the compiled per-level evaluation metadata.
type levelMeta struct {
	srcLevels []int // sorted distinct source levels
	offsets   []int // concat offset of each srcLevels entry
	concatW   int   // total width of the virtual source concatenation
	cut       int   // concatW &^ 3 — the dense kernel's lane boundary
	col       []int // per-edge concat column
	maxW      float64
	prevOnly  bool       // srcLevels ⊆ {l-1}: LayerSums/OutputSum are valid
	csr       tensor.CSR // zero-copy view over the level's edge arrays
}

// level returns level l's CSR block (1 <= l <= L+1).
func (n *Net) level(l int) *Level {
	if l == len(n.Levels)+1 {
		return n.Output
	}
	return n.Levels[l-1]
}

// width returns the node count of level v (0 <= v <= L+1).
func (n *Net) width(v int) int {
	switch {
	case v == 0:
		return n.InputDim
	case v <= len(n.Levels):
		return n.Levels[v-1].N
	default:
		return 1
	}
}

// compile builds the per-level metadata once; subsequent calls are free.
func (n *Net) compile() error {
	n.once.Do(func() { n.compileErr = n.doCompile() })
	return n.compileErr
}

// mustCompile is compile for methods without an error return (the Model
// kernels); construction and codec paths surface the error via Validate.
func (n *Net) mustCompile() {
	if err := n.compile(); err != nil {
		panic("graph: " + err.Error())
	}
}

func (n *Net) doCompile() error {
	if n.InputDim <= 0 {
		return fmt.Errorf("graph: input dimension %d", n.InputDim)
	}
	if n.Act == nil {
		return fmt.Errorf("graph: nil activation")
	}
	if len(n.Levels) == 0 {
		return fmt.Errorf("graph: no hidden levels")
	}
	if n.Output == nil {
		return fmt.Errorf("graph: nil output level")
	}
	if n.Output.N != 1 {
		return fmt.Errorf("graph: output level has %d nodes, want 1", n.Output.N)
	}
	L := len(n.Levels)
	for l := 1; l <= L; l++ {
		if n.Levels[l-1] == nil {
			return fmt.Errorf("graph: level %d is nil", l)
		}
		if n.Levels[l-1].N <= 0 {
			return fmt.Errorf("graph: level %d has %d nodes", l, n.Levels[l-1].N)
		}
	}
	n.meta = make([]levelMeta, L+1)
	n.outMax = make([][]float64, L)
	for l := 1; l <= L; l++ {
		n.outMax[l-1] = make([]float64, n.Levels[l-1].N)
	}
	for l := 1; l <= L+1; l++ {
		if err := n.compileLevel(l); err != nil {
			return err
		}
	}
	return nil
}

func (n *Net) compileLevel(l int) error {
	lv := n.level(l)
	m := &n.meta[l-1]
	if len(lv.Ptr) != lv.N+1 || lv.Ptr[0] != 0 {
		return fmt.Errorf("graph: level %d has malformed row pointers", l)
	}
	ne := lv.Ptr[lv.N]
	if len(lv.SrcLevel) != ne || len(lv.SrcIdx) != ne || len(lv.W) != ne {
		return fmt.Errorf("graph: level %d edge arrays disagree with Ptr[N]=%d", l, ne)
	}
	if lv.Bias != nil && len(lv.Bias) != lv.N {
		return fmt.Errorf("graph: level %d has %d biases for %d nodes", l, len(lv.Bias), lv.N)
	}
	for _, b := range lv.Bias {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return fmt.Errorf("graph: level %d has non-finite bias", l)
		}
	}
	seen := make([]bool, l) // source levels present
	for to := 0; to < lv.N; to++ {
		if lv.Ptr[to] > lv.Ptr[to+1] {
			return fmt.Errorf("graph: level %d has decreasing row pointers at node %d", l, to)
		}
		prevL, prevI := -1, -1
		for e := lv.Ptr[to]; e < lv.Ptr[to+1]; e++ {
			sl, si := lv.SrcLevel[e], lv.SrcIdx[e]
			if sl < 0 || sl >= l {
				return fmt.Errorf("graph: level %d node %d reads level %d (want 0..%d)", l, to, sl, l-1)
			}
			if si < 0 || si >= n.width(sl) {
				return fmt.Errorf("graph: level %d node %d reads node %d of level %d (width %d)", l, to, si, sl, n.width(sl))
			}
			if sl < prevL || (sl == prevL && si <= prevI) {
				return fmt.Errorf("graph: level %d node %d edges not sorted ascending by (level, index)", l, to)
			}
			if math.IsNaN(lv.W[e]) || math.IsInf(lv.W[e], 0) {
				return fmt.Errorf("graph: level %d node %d has non-finite weight", l, to)
			}
			prevL, prevI = sl, si
			seen[sl] = true
			if a := math.Abs(lv.W[e]); a > m.maxW {
				m.maxW = a
			}
			if sl >= 1 {
				if a := math.Abs(lv.W[e]); a > n.outMax[sl-1][si] {
					n.outMax[sl-1][si] = a
				}
			}
		}
	}
	m.srcLevels = make([]int, 0, 2)
	for v := 0; v < l; v++ {
		if seen[v] {
			m.srcLevels = append(m.srcLevels, v)
		}
	}
	m.offsets = make([]int, len(m.srcLevels))
	off := 0
	for i, v := range m.srcLevels {
		m.offsets[i] = off
		off += n.width(v)
	}
	m.concatW = off
	m.cut = off &^ 3
	m.prevOnly = len(m.srcLevels) == 0 || (len(m.srcLevels) == 1 && m.srcLevels[0] == l-1)
	m.col = make([]int, ne)
	for e := 0; e < ne; e++ {
		i := sort.SearchInts(m.srcLevels, lv.SrcLevel[e])
		m.col[e] = m.offsets[i] + lv.SrcIdx[e]
	}
	m.csr = tensor.CSR{
		Rows: lv.N,
		Ptr:  lv.Ptr,
		Lvl:  lv.SrcLevel,
		Idx:  lv.SrcIdx,
		Col:  m.col,
		W:    lv.W,
		Cut:  m.cut,
	}
	return nil
}

// Validate checks structural consistency (CSR invariants, edge ranges
// and ordering, finite weights) and compiles the evaluation metadata.
func (n *Net) Validate() error { return n.compile() }

// NumLayers returns L, the number of hidden levels.
func (n *Net) NumLayers() int { return len(n.Levels) }

// Width returns the node count of level l (Model convention: 0 is the
// input, L+1 the output node).
func (n *Net) Width(l int) int {
	if l < 0 || l > len(n.Levels)+1 {
		panic(fmt.Sprintf("graph: Width(%d) out of range", l))
	}
	return n.width(l)
}

// Activation returns ϕ.
func (n *Net) Activation() activation.Func { return n.Act }

// MaxWeight returns w_m^{(l)} over the level's edges, biases excluded
// per the Model contract.
func (n *Net) MaxWeight(l int) float64 {
	n.mustCompile()
	return n.meta[l-1].maxW
}

// Weight returns the weight of the edge from node `from` of level l-1
// into node `to` of level l, or 0 when no such edge exists. Skip edges
// (source level < l-1) are NOT addressable here — engines evaluating
// graphs use the DAGModel ordinal addressing (InEdge) instead.
func (n *Net) Weight(l, to, from int) float64 {
	lv := n.level(l)
	if l == len(n.Levels)+1 {
		to = 0
	}
	lo, hi := lv.Ptr[to], lv.Ptr[to+1]
	// Edges are sorted by (SrcLevel, SrcIdx); find (l-1, from).
	i := lo + sort.Search(hi-lo, func(k int) bool {
		e := lo + k
		return lv.SrcLevel[e] > l-1 || (lv.SrcLevel[e] == l-1 && lv.SrcIdx[e] >= from)
	})
	if i < hi && lv.SrcLevel[i] == l-1 && lv.SrcIdx[i] == from {
		return lv.W[i]
	}
	return 0
}

// SrcLevels returns the sorted distinct source levels of level l.
func (n *Net) SrcLevels(l int) []int {
	n.mustCompile()
	return n.meta[l-1].srcLevels
}

// FanIn returns the in-degree of node `to` of level l.
func (n *Net) FanIn(l, to int) int {
	lv := n.level(l)
	if l == len(n.Levels)+1 {
		to = 0
	}
	return lv.Ptr[to+1] - lv.Ptr[to]
}

// InEdge returns the k-th in-edge of node `to` of level l in ascending
// (srcLevel, srcIdx) order.
func (n *Net) InEdge(l, to, k int) (srcLevel, srcIdx int, w float64) {
	lv := n.level(l)
	if l == len(n.Levels)+1 {
		to = 0
	}
	e := lv.Ptr[to] + k
	return lv.SrcLevel[e], lv.SrcIdx[e], lv.W[e]
}

// nodeSum accumulates node `to`'s in-edges over the full level outputs
// ys in the dense kernel's lane order (no bias).
func nodeSum(lv *Level, m *levelMeta, to int, ys [][]float64) float64 {
	var s0, s1, s2, s3 float64
	cut := m.cut
	for e := lv.Ptr[to]; e < lv.Ptr[to+1]; e++ {
		v := lv.W[e] * ys[lv.SrcLevel[e]][lv.SrcIdx[e]]
		if c := m.col[e]; c < cut {
			switch c & 3 {
			case 0:
				s0 += v
			case 1:
				s1 += v
			case 2:
				s2 += v
			case 3:
				s3 += v
			}
		} else {
			s0 += v
		}
	}
	return s0 + s1 + s2 + s3
}

// nodeSumPrev is nodeSum for a prevOnly level, reading the previous
// level's outputs directly (edge column == SrcIdx there).
func nodeSumPrev(lv *Level, m *levelMeta, to int, y []float64) float64 {
	var s0, s1, s2, s3 float64
	cut := m.cut
	for e := lv.Ptr[to]; e < lv.Ptr[to+1]; e++ {
		v := lv.W[e] * y[lv.SrcIdx[e]]
		if c := lv.SrcIdx[e]; c < cut {
			switch c & 3 {
			case 0:
				s0 += v
			case 1:
				s1 += v
			case 2:
				s2 += v
			case 3:
				s3 += v
			}
		} else {
			s0 += v
		}
	}
	return s0 + s1 + s2 + s3
}

// LevelSums computes level l's pre-activation sums into dst from every
// level's outputs (ys[v] holds level v, ys[0] the input). skip follows
// the Model contract's skip-rows convention.
func (n *Net) LevelSums(l int, dst []float64, ys [][]float64, skip []int) {
	n.mustCompile()
	lv := n.Levels[l-1]
	m := &n.meta[l-1]
	si := 0
	for to := 0; to < lv.N; to++ {
		if si < len(skip) && skip[si] == to {
			si++
			continue
		}
		s := nodeSum(lv, m, to, ys)
		if lv.Bias != nil {
			s += lv.Bias[to]
		}
		dst[to] = s
	}
}

// LevelSumsLanes computes level l's pre-activation sums for every lane
// k into dsts[k] from that lane's per-level outputs srcs[k] (srcs[k][v]
// holds level v, srcs[k][0] the input), biases included — the
// multi-lane nn.LevelLaneSummer kernel. Each node's edge list streams
// from memory once per lane pair instead of once per lane, and every
// lane is bit-identical to a LevelSums call over the same sources.
func (n *Net) LevelSumsLanes(l int, dsts [][]float64, srcs [][][]float64) {
	n.mustCompile()
	lv := n.Levels[l-1]
	n.meta[l-1].csr.GatherLanesAddTo(dsts, srcs, lv.Bias)
}

// LayerSumsLanes is the multi-lane nn.LaneSummer kernel for prevOnly
// levels (panics otherwise, like LayerSums): dsts[k] = s^{(l)}(ys[k])
// with biases, each lane bit-identical to LayerSums.
func (n *Net) LayerSumsLanes(l int, dsts, ys [][]float64) {
	n.mustCompile()
	lv := n.Levels[l-1]
	m := &n.meta[l-1]
	if !m.prevOnly {
		panic(fmt.Sprintf("graph: LayerSumsLanes on level %d, which reads levels %v — evaluate via LevelSumsLanes", l, m.srcLevels))
	}
	m.csr.GatherLanesFlatAddTo(dsts, ys, lv.Bias)
}

// LayerSums is the layered Model kernel; it is only valid for levels
// that read nothing but level l-1 and panics otherwise — engines that
// support arbitrary topology use LevelSums via the DAGModel interface.
func (n *Net) LayerSums(l int, dst, y []float64, skip []int) {
	n.mustCompile()
	lv := n.Levels[l-1]
	m := &n.meta[l-1]
	if !m.prevOnly {
		panic(fmt.Sprintf("graph: LayerSums on level %d, which reads levels %v — evaluate via DAGModel.LevelSums", l, m.srcLevels))
	}
	si := 0
	for to := 0; to < lv.N; to++ {
		if si < len(skip) && skip[si] == to {
			si++
			continue
		}
		s := nodeSumPrev(lv, m, to, y)
		if lv.Bias != nil {
			s += lv.Bias[to]
		}
		dst[to] = s
	}
}

// LayerSums2 is the fused two-input sweep (clean+faulted evaluation),
// bit-identical to two LayerSums calls; prevOnly levels only.
func (n *Net) LayerSums2(l int, dst1, y1, dst2, y2 []float64) {
	n.mustCompile()
	lv := n.Levels[l-1]
	m := &n.meta[l-1]
	if !m.prevOnly {
		panic(fmt.Sprintf("graph: LayerSums2 on level %d, which reads levels %v — evaluate via DAGModel.LevelSums", l, m.srcLevels))
	}
	cut := m.cut
	for to := 0; to < lv.N; to++ {
		var a0, a1, a2, a3 float64
		var b0, b1, b2, b3 float64
		for e := lv.Ptr[to]; e < lv.Ptr[to+1]; e++ {
			w := lv.W[e]
			idx := lv.SrcIdx[e]
			v1 := w * y1[idx]
			v2 := w * y2[idx]
			if idx < cut {
				switch idx & 3 {
				case 0:
					a0 += v1
					b0 += v2
				case 1:
					a1 += v1
					b1 += v2
				case 2:
					a2 += v1
					b2 += v2
				case 3:
					a3 += v1
					b3 += v2
				}
			} else {
				a0 += v1
				b0 += v2
			}
		}
		s1 := a0 + a1 + a2 + a3
		s2 := b0 + b1 + b2 + b3
		if lv.Bias != nil {
			s1 += lv.Bias[to]
			s2 += lv.Bias[to]
		}
		dst1[to] = s1
		dst2[to] = s2
	}
}

// outputBias returns the output node's bias (0 when absent; the output
// sum always adds it, matching the dense engine's OutputBias).
func (n *Net) outputBias() float64 {
	if n.Output.Bias != nil {
		return n.Output.Bias[0]
	}
	return 0
}

// OutputSum evaluates the linear output node on the last hidden level's
// outputs; valid only when the output reads nothing but level L.
func (n *Net) OutputSum(y []float64) float64 {
	n.mustCompile()
	L := len(n.Levels)
	m := &n.meta[L]
	if !m.prevOnly {
		panic(fmt.Sprintf("graph: OutputSum on an output reading levels %v — evaluate via DAGModel.OutputSumLevels", m.srcLevels))
	}
	return nodeSumPrev(n.Output, m, 0, y) + n.outputBias()
}

// OutputSumLevels evaluates the linear output node over every level's
// outputs.
func (n *Net) OutputSumLevels(ys [][]float64) float64 {
	n.mustCompile()
	return nodeSum(n.Output, &n.meta[len(n.Levels)], 0, ys) + n.outputBias()
}

// OutgoingWeight scores node `idx` of level l by its largest outgoing
// absolute weight over ALL out-edges — the next level, skip edges and
// the output node alike (fault.OutgoingScorer). For layer-expressible
// graphs this equals the generic next-layer scan, so adversarial plans
// agree with the lowered dense oracle's; for skip graphs it is the
// strictly better adversary.
func (n *Net) OutgoingWeight(l, idx int) float64 {
	n.mustCompile()
	return n.outMax[l-1][idx]
}
