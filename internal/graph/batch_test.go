package graph_test

// The batched engine's graph matrix: on a genuinely non-layered skip
// graph, the fused level-scheduled multi-lane path must be
// bit-identical to the one-at-a-time scalar engine for EVERY
// registered fault model, across ragged lane counts and lanes with
// different divergence depths — and, like the dense engine, must not
// allocate in steady state.

import (
	"testing"

	"repro/internal/activation"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/rng"
)

// batchSkipNet builds a skip graph with real cross-level edges (the
// DAG batch path; asserted non-layered) wide enough for the fixed
// plans below, plus a shared input set.
func batchSkipNet(t *testing.T, seed uint64) (*graph.Net, [][]float64) {
	t.Helper()
	r := rng.New(seed)
	g := graph.NewSmallWorld(r, 3, []int{9, 7, 5}, activation.NewSigmoid(1), 2, 0.6)
	if nn.IsLayered(g) {
		t.Fatal("generator produced a layered graph; the DAG path would go untested — pick another seed")
	}
	inputs := make([][]float64, 6)
	for i := range inputs {
		x := make([]float64, 3)
		r.Floats(x, 0, 1)
		inputs[i] = x
	}
	return g, inputs
}

// lastEdge addresses node (l, to)'s last in-edge — a synapse fault
// valid on any generated topology, and on a rewired graph often a
// skip edge.
func lastEdge(g *graph.Net, l, to int) fault.SynapseFault {
	return fault.SynapseFault{Layer: l, To: to, From: g.FanIn(l, to) - 1}
}

// graphBatchPlans mirrors the dense matrix's lane mix on the graph's
// own addressing: an empty plan (never diverges), a deep-only plan,
// shallow plans, and plans with synapse faults either side of the
// output stage (in-edge ordinals, so faults can land on skip edges).
func graphBatchPlans(t *testing.T, r *rng.Rand, g *graph.Net) []fault.Plan {
	t.Helper()
	plans := []fault.Plan{
		{},
		{Neurons: []fault.NeuronFault{{Layer: 3, Index: 4}}},
		fault.RandomNeuronPlan(r, g, []int{2, 1, 1}),
		{Neurons: []fault.NeuronFault{{Layer: 1, Index: 0}, {Layer: 1, Index: 8}}},
		{Synapses: []fault.SynapseFault{lastEdge(g, 4, 0)}},
		{Neurons: []fault.NeuronFault{{Layer: 2, Index: 6}},
			Synapses: []fault.SynapseFault{lastEdge(g, 1, 2), lastEdge(g, 3, 1)}},
		fault.RandomNeuronPlan(r, g, []int{1, 1, 0}),
		randomGraphPlan(r, g),
	}
	for i, p := range plans {
		if err := p.Validate(g); err != nil {
			t.Fatalf("plan %d invalid on the generated graph: %v", i, err)
		}
	}
	return plans
}

// TestGraphBatchMatchesScalarAllModels ports the batched engine's
// ground-truth gate to arbitrary topologies: for every registered
// fault model, per-lane errors off the fused DAG sweep must be
// bit-identical to the scalar compiled engine — full and partial
// batches, lanes diverging at different levels, skip-edge synapse
// faults included. Stochastic models run on twin-seeded streams, so
// agreement also proves lane interleaving preserves each lane's draw
// order.
func TestGraphBatchMatchesScalarAllModels(t *testing.T) {
	g, inputs := batchSkipNet(t, 211)
	traces := fault.CleanTraces(g, inputs)
	r := rng.New(223)
	plans := graphBatchPlans(t, r, g)

	for _, m := range fault.Models() {
		build := func(seed uint64) fault.Injector {
			inj, err := m.New(fault.Params{C: 0.8, Sem: core.DeviationCap, Value: 0.4, Prob: 0.5, Bits: 8, Bit: 6, Net: g, R: rng.New(seed)})
			if err != nil {
				t.Fatalf("%s: %v", m.Name, err)
			}
			return inj
		}
		for _, lanes := range []int{1, 3, len(plans)} {
			bp := fault.CompileBatch(g, len(plans))
			bp.Reset(plans[:lanes])
			injs := make([]fault.Injector, lanes)
			oracle := make([]fault.Injector, lanes)
			scalars := make([]*fault.CompiledPlan, lanes)
			for p := 0; p < lanes; p++ {
				injs[p] = build(uint64(1000 + p))
				oracle[p] = build(uint64(1000 + p))
				scalars[p] = fault.Compile(g, plans[p])
			}
			out := make([]float64, lanes)
			for _, tr := range traces {
				bp.ErrorsOnTrace(injs, tr, out)
				for p := 0; p < lanes; p++ {
					want := scalars[p].ErrorOnTrace(oracle[p], tr)
					if out[p] != want {
						t.Fatalf("%s lanes=%d lane %d: batched %v != scalar %v", m.Name, lanes, p, out[p], want)
					}
				}
			}
		}
	}
}

// TestGraphBatchSteadyStateAllocs extends the batched engine's
// zero-allocation contract to graph models: once compiled and loaded,
// Reset + a full trace sweep over the level-scheduled lanes path must
// not allocate.
func TestGraphBatchSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-instrumented sync.Pool allocates on Get; the contract is measured without the detector")
	}
	g, inputs := batchSkipNet(t, 227)
	traces := fault.CleanTraces(g, inputs)
	r := rng.New(229)
	plans := graphBatchPlans(t, r, g)
	bp := fault.CompileBatch(g, len(plans))
	injs := make([]fault.Injector, len(plans))
	for p := range injs {
		injs[p] = fault.Crash{}
	}
	out := make([]float64, len(plans))
	run := func() {
		bp.Reset(plans)
		for _, tr := range traces {
			bp.ErrorsOnTrace(injs, tr, out)
		}
	}
	run()
	if allocs := testing.AllocsPerRun(50, run); allocs != 0 {
		t.Errorf("batched graph sweep: %v allocs per run, want 0", allocs)
	}
}
