package graph

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Lower returns the dense nn.Network computing the same function, or an
// error when the graph is not layer-expressible (some level reads a
// level other than the preceding one). Absent edges become exact zero
// entries, and the dense kernels accumulate rows in the same four-lane
// order the graph kernels replay, so the lowered network's outputs are
// bit-identical to graph-native evaluation — Lower is the test oracle
// for every engine path.
func (n *Net) Lower() (*nn.Network, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	L := len(n.Levels)
	for l := 1; l <= L+1; l++ {
		if !n.meta[l-1].prevOnly {
			return nil, fmt.Errorf("graph: not layer-expressible: level %d reads levels %v", l, n.meta[l-1].srcLevels)
		}
	}
	d := &nn.Network{
		InputDim: n.InputDim,
		Act:      n.Act,
		Hidden:   make([]*tensor.Matrix, L),
	}
	anyBias := false
	biases := make([][]float64, L)
	for l := 1; l <= L; l++ {
		lv := n.Levels[l-1]
		m := tensor.NewMatrix(lv.N, n.width(l-1))
		for to := 0; to < lv.N; to++ {
			for e := lv.Ptr[to]; e < lv.Ptr[to+1]; e++ {
				m.Set(to, lv.SrcIdx[e], lv.W[e])
			}
		}
		d.Hidden[l-1] = m
		if lv.Bias != nil {
			biases[l-1] = append([]float64(nil), lv.Bias...)
			anyBias = true
		}
	}
	if anyBias {
		d.Biases = biases
	}
	d.Output = make([]float64, n.width(L))
	for e := n.Output.Ptr[0]; e < n.Output.Ptr[1]; e++ {
		d.Output[n.Output.SrcIdx[e]] = n.Output.W[e]
	}
	d.OutputBias = n.outputBias()
	return d, nil
}
