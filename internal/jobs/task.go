package jobs

import (
	"context"
	"encoding/json"
	"time"
)

// Task is the handle an Exec receives for one attempt: the attempt
// context, the request, progress reporting, and durable checkpointing.
type Task struct {
	m   *Manager
	j   *job
	ctx context.Context
}

// Ctx is the attempt context: cancelled on job cancellation, graceful
// drain, or the per-attempt deadline. Long campaigns must poll it and,
// when it fires, checkpoint and return ctx.Err().
func (t *Task) Ctx() context.Context { return t.ctx }

// ID returns the job ID.
func (t *Task) ID() string { return t.j.rec.ID }

// Kind returns the job kind.
func (t *Task) Kind() string { return t.j.rec.Kind }

// Attempt returns the current attempt number (1-based).
func (t *Task) Attempt() int {
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	return t.j.rec.Attempts
}

// Request returns the submitted request payload.
func (t *Task) Request() json.RawMessage {
	return t.j.rec.Request
}

// Progress updates the job's completed/total counters (in job-defined
// units) and notifies watchers. It is cheap: nothing is persisted —
// durability comes from Checkpoint.
func (t *Task) Progress(completed, total int64) {
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	t.j.rec.Completed = completed
	t.j.rec.Total = total
	t.m.notifyLocked(t.j)
}

// Checkpoint durably persists partial campaign state (atomically
// replacing the previous checkpoint) and records the progress
// watermark, so a killed worker or process resumes here instead of
// recomputing. Call it at interval boundaries where v fully describes
// the completed prefix.
func (t *Task) Checkpoint(v any, completed, total int64) error {
	if err := t.m.st.PutJobCheckpoint(t.j.rec.ID, v); err != nil {
		return Transient(err)
	}
	t.m.mu.Lock()
	defer t.m.mu.Unlock()
	t.j.rec.Checkpoints++
	t.j.rec.Completed = completed
	t.j.rec.Total = total
	if !t.m.killed {
		t.m.persist(&t.j.rec)
	}
	t.m.notifyLocked(t.j)
	return nil
}

// RestoreCheckpoint loads the job's latest durable checkpoint into v,
// reporting whether one exists. Execs call it first and resume from
// the restored prefix.
func (t *Task) RestoreCheckpoint(v any) (bool, error) {
	ok, err := t.m.st.JobCheckpoint(t.j.rec.ID, v)
	if err != nil {
		return false, Transient(err)
	}
	return ok, nil
}

// Created returns the job's submission time.
func (t *Task) Created() time.Time { return t.j.rec.Created }
