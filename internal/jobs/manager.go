package jobs

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"time"

	"repro/internal/store"
)

// Exec executes one job attempt. It receives a Task handle for context,
// progress, and checkpointing, and returns the job's result (persisted
// as a content-addressed artifact) or an error. On ctx interruption it
// must checkpoint what it can and return ctx.Err(); errors wrapped with
// Transient are retried with backoff, everything else fails the job.
type Exec func(t *Task) (any, error)

// Config sizes a Manager.
type Config struct {
	// Store persists job records, checkpoints, memoized completions and
	// result artifacts. Required.
	Store *store.Store
	// Exec runs one attempt of any job kind. Required.
	Exec Exec
	// Workers bounds concurrent job execution (default 2).
	Workers int
	// QueueDepth bounds jobs accepted but not yet running; a full queue
	// rejects submissions with ErrQueueFull (default 64).
	QueueDepth int
	// Deadline bounds one attempt (0 = unbounded). A deadline hit counts
	// as transient: the next attempt resumes from the last checkpoint,
	// so bounded attempts still make monotonic progress.
	Deadline time.Duration
	// MaxAttempts bounds execution attempts per process (default 3).
	MaxAttempts int
	// Backoff is the base retry delay, doubled per attempt with jitter
	// (default 50ms, capped at 64x).
	Backoff time.Duration
	// Logf, when non-nil, receives operational messages (persist
	// failures, recovered panics).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	} else if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = 50 * time.Millisecond
	}
	return c
}

// job is the in-memory side of a Record: its mutable state plus the
// control handles (attempt cancellation, watcher channels).
type job struct {
	rec       Record
	cancel    context.CancelFunc // set while an attempt runs
	cancelled bool               // user requested cancellation

	watchers map[int]chan Record
	nextW    int
}

// Manager runs the job tier: a bounded queue feeding a fixed worker
// pool, with durable records in the store. Create with New (which also
// recovers and re-queues jobs a previous process left behind), stop
// with Close (graceful drain) or Kill (crash semantics, for tests).
type Manager struct {
	cfg Config
	st  *store.Store

	rootCtx     context.Context // Kill cancels: abandon without persisting
	rootCancel  context.CancelFunc
	drainCtx    context.Context // Close cancels: checkpoint, persist, exit
	drainCancel context.CancelFunc

	queue chan string
	wg    sync.WaitGroup

	mu         sync.Mutex
	jobs       map[string]*job
	order      []string          // creation order, for List
	activeMemo map[string]string // memo key -> in-flight job ID
	draining   bool
	killed     bool
}

// New builds a Manager and recovers persisted jobs: records left
// queued, running, or checkpointed by a previous process are re-queued
// (running ones become checkpointed/queued first — the process that ran
// them is gone), terminal records stay loadable for Get/List/Result.
func New(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	if cfg.Store == nil {
		return nil, fmt.Errorf("jobs: Config.Store is required")
	}
	if cfg.Exec == nil {
		return nil, fmt.Errorf("jobs: Config.Exec is required")
	}
	m := &Manager{
		cfg:        cfg,
		st:         cfg.Store,
		jobs:       map[string]*job{},
		activeMemo: map[string]string{},
	}
	m.rootCtx, m.rootCancel = context.WithCancel(context.Background())
	m.drainCtx, m.drainCancel = context.WithCancel(m.rootCtx)

	recovered, err := m.recover()
	if err != nil {
		return nil, err
	}
	// The queue must hold every recovered job on top of the configured
	// depth, or restart recovery would deadlock on its own backpressure.
	m.queue = make(chan string, cfg.QueueDepth+len(recovered))
	for _, id := range recovered {
		m.queue <- id
	}
	for w := 0; w < cfg.Workers; w++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// recover loads persisted records, normalising interrupted ones:
// running/checkpointed become checkpointed when a checkpoint exists
// (else queued), and are returned for re-queueing in creation order.
func (m *Manager) recover() ([]string, error) {
	ids, err := m.st.JobRecordIDs()
	if err != nil {
		return nil, err
	}
	var requeue []string
	for _, id := range ids {
		var rec Record
		ok, err := m.st.JobRecord(id, &rec)
		if err != nil {
			m.logf("jobs: skipping unreadable record %s: %v", id, err)
			continue
		}
		if !ok || rec.ID != id {
			continue
		}
		if !rec.State.Terminal() {
			var stub json.RawMessage
			has, _ := m.st.JobCheckpoint(id, &stub)
			if has {
				rec.State = StateCheckpointed
			} else {
				rec.State = StateQueued
			}
			m.persist(&rec)
			requeue = append(requeue, id)
			if rec.MemoKey != "" {
				m.activeMemo[rec.MemoKey] = id
			}
		}
		m.jobs[id] = &job{rec: rec}
		m.order = append(m.order, id)
	}
	sort.Slice(m.order, func(i, j int) bool {
		a, b := m.jobs[m.order[i]].rec, m.jobs[m.order[j]].rec
		if !a.Created.Equal(b.Created) {
			return a.Created.Before(b.Created)
		}
		return a.ID < b.ID
	})
	sort.Slice(requeue, func(i, j int) bool {
		a, b := m.jobs[requeue[i]].rec, m.jobs[requeue[j]].rec
		if !a.Created.Equal(b.Created) {
			return a.Created.Before(b.Created)
		}
		return a.ID < b.ID
	})
	return requeue, nil
}

func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// persist writes a record to the store (best effort: the in-memory
// state is authoritative for this process; persistence is for the
// next one).
func (m *Manager) persist(rec *Record) {
	if err := m.st.PutJobRecord(rec.ID, rec); err != nil {
		m.logf("jobs: persisting %s: %v", rec.ID, err)
	}
}

// Submit accepts a job for asynchronous execution. When memoKey is
// non-empty the request is first checked against the memo index (a
// completed identical request returns its Record with Memoized set, no
// recomputation) and against in-flight jobs (an identical queued or
// running job is returned instead of a duplicate — concurrent callers
// coalesce onto one campaign). A full queue returns ErrQueueFull.
func (m *Manager) Submit(kind string, req []byte, memoKey string) (Record, error) {
	if kind == "" {
		return Record{}, fmt.Errorf("jobs: empty kind")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return Record{}, ErrDraining
	}
	if memoKey != "" {
		if id, ok := m.activeMemo[memoKey]; ok {
			if j, ok := m.jobs[id]; ok && !j.rec.State.Terminal() {
				return j.rec, nil
			}
		}
		var done Record
		if ok, err := m.st.Memo(memoKey, &done); err == nil && ok {
			done.Memoized = true
			return done, nil
		}
	}
	if len(m.queue) >= cap(m.queue) {
		return Record{}, ErrQueueFull
	}
	rec := Record{
		ID:      newID(),
		Kind:    kind,
		MemoKey: memoKey,
		Request: append([]byte(nil), req...),
		State:   StateQueued,
		Created: time.Now().UTC(),
	}
	j := &job{rec: rec}
	m.jobs[rec.ID] = j
	m.order = append(m.order, rec.ID)
	if memoKey != "" {
		m.activeMemo[memoKey] = rec.ID
	}
	m.persist(&rec)
	select {
	case m.queue <- rec.ID:
	default:
		// cap re-checked above under mu; only recovery overfill could
		// race here, and those slots are never returned.
		delete(m.jobs, rec.ID)
		m.order = m.order[:len(m.order)-1]
		if memoKey != "" {
			delete(m.activeMemo, memoKey)
		}
		return Record{}, ErrQueueFull
	}
	return rec, nil
}

// RetryAfter suggests how long a rejected client should wait before
// resubmitting: one attempt-deadline's worth of drain if configured,
// else a constant.
func (m *Manager) RetryAfter() time.Duration {
	if m.cfg.Deadline > 0 && m.cfg.Deadline < 10*time.Second {
		return m.cfg.Deadline
	}
	return time.Second
}

// Get returns a job's current record.
func (m *Manager) Get(id string) (Record, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Record{}, ErrNotFound
	}
	return j.rec, nil
}

// List returns all records in creation order.
func (m *Manager) List() []Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Record, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id].rec)
	}
	return out
}

// Stats summarises the tier for health reporting.
type Stats struct {
	Workers    int           `json:"workers"`
	QueueDepth int           `json:"queue_depth"`
	QueueLen   int           `json:"queue_len"`
	States     map[State]int `json:"states,omitempty"`
}

// Stats reports queue occupancy and per-state job counts.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Stats{
		Workers:    m.cfg.Workers,
		QueueDepth: m.cfg.QueueDepth,
		QueueLen:   len(m.queue),
		States:     map[State]int{},
	}
	for _, id := range m.order {
		st.States[m.jobs[id].rec.State]++
	}
	return st
}

// Result returns the stored result bytes for a completed job.
func (m *Manager) Result(id string) ([]byte, Record, error) {
	rec, err := m.Get(id)
	if err != nil {
		return nil, Record{}, err
	}
	if rec.State != StateDone || rec.ResultID == "" {
		return nil, rec, ErrNotDone
	}
	data, _, err := m.st.Raw(rec.ResultID)
	if err != nil {
		return nil, rec, err
	}
	return data, rec, nil
}

// Cancel stops a job: queued jobs finalise immediately, running jobs
// have their attempt context cancelled and finalise when the worker
// observes it. Cancelling a terminal job returns its record unchanged
// with ok=false.
func (m *Manager) Cancel(id string) (Record, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Record{}, false, ErrNotFound
	}
	if j.rec.State.Terminal() {
		return j.rec, false, nil
	}
	j.cancelled = true
	if j.cancel != nil {
		j.cancel() // the worker finalises
		return j.rec, true, nil
	}
	m.finalizeLocked(j, StateCancelled, "")
	return j.rec, true, nil
}

// Watch subscribes to a job's record updates. The current record is
// delivered immediately, every subsequent update follows, and the
// channel closes after the terminal record. stop unsubscribes early.
func (m *Manager) Watch(id string) (<-chan Record, func(), error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, nil, ErrNotFound
	}
	ch := make(chan Record, 16)
	ch <- j.rec
	if j.rec.State.Terminal() {
		close(ch)
		return ch, func() {}, nil
	}
	if j.watchers == nil {
		j.watchers = map[int]chan Record{}
	}
	w := j.nextW
	j.nextW++
	j.watchers[w] = ch
	stop := func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		if c, ok := j.watchers[w]; ok {
			delete(j.watchers, w)
			close(c)
		}
	}
	return ch, stop, nil
}

// notifyLocked pushes the current record to every watcher (dropping the
// oldest buffered update when a watcher lags — the latest state wins),
// closing them on terminal records. m.mu must be held.
func (m *Manager) notifyLocked(j *job) {
	for w, ch := range j.watchers {
		select {
		case ch <- j.rec:
		default:
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- j.rec:
			default:
			}
		}
		if j.rec.State.Terminal() {
			delete(j.watchers, w)
			close(ch)
		}
	}
}

// finalizeLocked moves a job to a terminal state, persists it, releases
// its memo reservation and notifies watchers. m.mu must be held.
func (m *Manager) finalizeLocked(j *job, s State, errMsg string) {
	j.rec.State = s
	j.rec.Error = errMsg
	j.rec.Finished = time.Now().UTC()
	if j.rec.MemoKey != "" && m.activeMemo[j.rec.MemoKey] == j.rec.ID {
		delete(m.activeMemo, j.rec.MemoKey)
	}
	if !m.killed {
		m.persist(&j.rec)
		if s != StateDone {
			// Terminal without result: the checkpoint has no future use.
			if err := m.st.DeleteJobCheckpoint(j.rec.ID); err != nil {
				m.logf("jobs: deleting checkpoint %s: %v", j.rec.ID, err)
			}
		}
	}
	m.notifyLocked(j)
}

// Close drains the tier gracefully: submissions are rejected, running
// attempts are interrupted (their Exec checkpoints and returns), every
// interrupted or queued job is persisted as checkpointed/queued for the
// next process, and the workers exit. ctx bounds the wait.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()
	m.drainCancel()
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("jobs: drain interrupted: %w", ctx.Err())
	}
}

// Kill abandons the tier with crash semantics: worker contexts are
// cancelled and NO state transition is persisted — on-disk records keep
// saying "running" with their last checkpoint, exactly as after a
// SIGKILL. The next New on the same store recovers and resumes them.
// This is the crash-injection hook for tests.
func (m *Manager) Kill() {
	m.mu.Lock()
	m.draining = true
	m.killed = true
	m.mu.Unlock()
	m.rootCancel()
	m.wg.Wait()
}

// worker runs jobs off the queue until drain or kill.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.drainCtx.Done():
			return
		case id := <-m.queue:
			m.runJob(id)
		}
	}
}

// runJob executes one job's attempt loop: run, classify the outcome,
// retry transient failures with exponential backoff + jitter, finalise.
func (m *Manager) runJob(id string) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok || j.rec.State.Terminal() {
		m.mu.Unlock()
		return
	}
	if j.cancelled {
		m.finalizeLocked(j, StateCancelled, "")
		m.mu.Unlock()
		return
	}
	m.mu.Unlock()

	for {
		// Drain may have begun while this job waited in backoff.
		if m.drainCtx.Err() != nil {
			m.parkInterrupted(j)
			return
		}
		m.mu.Lock()
		j.rec.State = StateRunning
		j.rec.Attempts++
		if j.rec.Started.IsZero() {
			j.rec.Started = time.Now().UTC()
		}
		attempt := j.rec.Attempts
		var actx context.Context
		var cancel context.CancelFunc
		if m.cfg.Deadline > 0 {
			actx, cancel = context.WithTimeout(m.drainCtx, m.cfg.Deadline)
		} else {
			actx, cancel = context.WithCancel(m.drainCtx)
		}
		j.cancel = cancel
		m.persist(&j.rec)
		m.notifyLocked(j)
		m.mu.Unlock()

		result, err := m.runAttempt(&Task{m: m, j: j, ctx: actx})
		deadlined := actx.Err() == context.DeadlineExceeded
		cancel()
		m.mu.Lock()
		j.cancel = nil
		switch {
		case m.killed:
			// Crash semantics: persist nothing, exit silently.
			m.mu.Unlock()
			return
		case j.cancelled:
			m.finalizeLocked(j, StateCancelled, "")
			m.mu.Unlock()
			return
		case m.drainCtx.Err() != nil:
			m.parkInterruptedLocked(j)
			m.mu.Unlock()
			return
		case err == nil:
			m.completeLocked(j, result)
			m.mu.Unlock()
			return
		case (deadlined || IsTransient(err)) && attempt < m.cfg.MaxAttempts:
			if j.rec.Checkpoints > 0 {
				j.rec.State = StateCheckpointed
			} else {
				j.rec.State = StateQueued
			}
			j.rec.Error = "" // transient; cleared unless it becomes final
			m.persist(&j.rec)
			m.notifyLocked(j)
			m.mu.Unlock()
			if !m.backoff(attempt) {
				m.parkInterrupted(j)
				return
			}
		default:
			m.finalizeLocked(j, StateFailed, err.Error())
			m.mu.Unlock()
			return
		}
	}
}

// runAttempt invokes Exec, converting panics into transient errors — a
// crashed worker is precisely the reoccurring failure the tier is built
// to absorb, and the retry resumes from the last checkpoint.
func (m *Manager) runAttempt(t *Task) (result any, err error) {
	defer func() {
		if p := recover(); p != nil {
			m.logf("jobs: worker panic on %s: %v", t.j.rec.ID, p)
			err = Transient(fmt.Errorf("worker crashed: %v", p))
		}
	}()
	return m.cfg.Exec(t)
}

// completeLocked persists the result artifact, memoizes the completed
// record under its request hash, and finalises. m.mu must be held.
func (m *Manager) completeLocked(j *job, result any) {
	entry, err := m.st.Put(store.KindResult, result, map[string]string{
		"job": j.rec.ID, "kind": j.rec.Kind,
	})
	if err != nil {
		m.finalizeLocked(j, StateFailed, fmt.Sprintf("persisting result: %v", err))
		return
	}
	j.rec.ResultID = entry.ID
	if j.rec.Total > 0 {
		j.rec.Completed = j.rec.Total
	}
	j.rec.State = StateDone
	j.rec.Finished = time.Now().UTC()
	if err := m.st.DeleteJobCheckpoint(j.rec.ID); err != nil {
		m.logf("jobs: deleting checkpoint %s: %v", j.rec.ID, err)
	}
	if j.rec.MemoKey != "" {
		if err := m.st.PutMemo(j.rec.MemoKey, j.rec); err != nil {
			m.logf("jobs: memoizing %s: %v", j.rec.ID, err)
		}
		if m.activeMemo[j.rec.MemoKey] == j.rec.ID {
			delete(m.activeMemo, j.rec.MemoKey)
		}
	}
	m.persist(&j.rec)
	m.notifyLocked(j)
}

// parkInterrupted persists a drain-interrupted job as checkpointed (or
// queued when no checkpoint exists yet) so the next process resumes it.
func (m *Manager) parkInterrupted(j *job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.parkInterruptedLocked(j)
}

func (m *Manager) parkInterruptedLocked(j *job) {
	if m.killed || j.rec.State.Terminal() {
		return
	}
	if j.rec.Checkpoints > 0 {
		j.rec.State = StateCheckpointed
	} else {
		j.rec.State = StateQueued
	}
	m.persist(&j.rec)
	m.notifyLocked(j)
}

// backoff sleeps the exponential, jittered retry delay for the given
// attempt number, returning false if drain/kill interrupted the wait.
func (m *Manager) backoff(attempt int) bool {
	d := m.cfg.Backoff << uint(attempt-1)
	if max := m.cfg.Backoff << 6; d > max {
		d = max
	}
	// Full jitter over [d/2, d): retries from simultaneously-failing
	// workers decorrelate instead of stampeding back together.
	d = d/2 + time.Duration(rand.Int64N(int64(d/2)+1))
	select {
	case <-time.After(d):
		return true
	case <-m.drainCtx.Done():
		return false
	}
}
