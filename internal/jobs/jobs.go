// Package jobs is the fault-tolerant asynchronous job tier: a bounded
// worker pool with queue-depth backpressure, per-attempt deadlines,
// retry with exponential backoff and jitter, durable checkpoint/resume
// through the artifact store, and request-hash memoization of completed
// results.
//
// The tier exists because the service it carries proves *networks*
// survive failures but must also survive its own (Sardi et al.'s
// reoccurring-catastrophic-failure regime, applied to the serving
// tier): a worker killed mid-campaign — panic, deadline, SIGKILL —
// leaves behind a durable record and its latest checkpoint, and the
// next attempt (or the next process) resumes from that checkpoint
// instead of recomputing. Because campaign trials are deterministic per
// trial index, a resumed job's result is bit-identical to an
// uninterrupted run's.
//
// Lifecycle (DESIGN.md §7):
//
//	queued ──▶ running ──▶ done
//	  ▲          │  ▲        (failed | cancelled)
//	  │          ▼  │
//	  └──── checkpointed      (crash / drain; resume re-runs)
//
// A record is persisted on every state transition and on every
// checkpoint, through atomic writes — a crash never leaves a partial
// record, so restart recovery either sees the previous state or the
// new one.
package jobs

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"time"
)

// State is a job's lifecycle position.
type State string

const (
	// StateQueued: accepted, waiting for a worker slot.
	StateQueued State = "queued"
	// StateRunning: a worker is executing an attempt.
	StateRunning State = "running"
	// StateCheckpointed: not currently executing, but durable partial
	// state exists (the process drained or crashed mid-campaign); the
	// job is re-queued and the next attempt resumes from the checkpoint.
	StateCheckpointed State = "checkpointed"
	// StateDone: completed; ResultID names the result artifact.
	StateDone State = "done"
	// StateFailed: exhausted its attempts or hit a permanent error.
	StateFailed State = "failed"
	// StateCancelled: stopped by explicit request.
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Record is the durable description of one job — what Submit accepted,
// where it is in the lifecycle, and how it got there.
type Record struct {
	ID      string          `json:"id"`
	Kind    string          `json:"kind"`
	MemoKey string          `json:"memo_key,omitempty"`
	Request json.RawMessage `json:"request,omitempty"`
	State   State           `json:"state"`

	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitempty"`
	Finished time.Time `json:"finished,omitempty"`

	// Attempts counts execution attempts so far (retries included).
	Attempts int `json:"attempts,omitempty"`
	// Error carries the final failure message for StateFailed.
	Error string `json:"error,omitempty"`

	// Completed/Total report progress in job-defined units (trials for
	// Monte Carlo campaigns, experiments for experiment sets).
	Completed int64 `json:"completed,omitempty"`
	Total     int64 `json:"total,omitempty"`
	// Checkpoints counts durable checkpoints written so far.
	Checkpoints int `json:"checkpoints,omitempty"`

	// ResultID is the content address of the result artifact once done.
	ResultID string `json:"result_id,omitempty"`
	// Memoized marks a submission answered from the memo index without
	// recomputation.
	Memoized bool `json:"memoized,omitempty"`
}

// ErrQueueFull is returned by Submit when the queue is at capacity —
// the backpressure signal (HTTP maps it to 429 + Retry-After).
var ErrQueueFull = errors.New("jobs: queue full")

// ErrDraining is returned by Submit during graceful shutdown.
var ErrDraining = errors.New("jobs: manager draining")

// ErrNotFound is returned for unknown job IDs.
var ErrNotFound = errors.New("jobs: no such job")

// ErrNotDone is returned by Result for jobs without a result yet.
var ErrNotDone = errors.New("jobs: job has no result yet")

// TransientError marks a failure worth retrying: the computation is
// deterministic, so only environmental failures (I/O, deadline, a
// crashed worker) are — wrong requests are not.
type TransientError struct{ Err error }

func (e *TransientError) Error() string { return e.Err.Error() }
func (e *TransientError) Unwrap() error { return e.Err }

// Transient wraps err as retryable. A nil err stays nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &TransientError{Err: err}
}

// IsTransient reports whether err is marked retryable (worker panics
// and attempt deadlines are classified transient by the manager
// itself).
func IsTransient(err error) bool {
	var te *TransientError
	return errors.As(err, &te)
}

// newID returns a fresh 128-bit random job ID in lowercase hex — the
// same alphabet as content addresses, so store-keyed records share one
// validation path.
func newID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("jobs: id entropy: %v", err))
	}
	return hex.EncodeToString(b[:])
}
