package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/store"
)

// campaignReq is the synthetic long-running campaign the tests run: N
// deterministic units accumulated sequentially, so any resumed prefix
// must reproduce the uninterrupted sum bit-for-bit.
type campaignReq struct {
	N    int64  `json:"n"`
	Seed uint64 `json:"seed"`
}

type campaignCkpt struct {
	Sum  float64 `json:"sum"`
	Done int64   `json:"done"`
}

// campaignExec builds an Exec for the synthetic campaign. hook, when
// non-nil, runs before each unit — the fault-injection point (block,
// panic, fail).
func campaignExec(checkpointEvery int64, hook func(t *Task, i int64) error) Exec {
	return func(t *Task) (any, error) {
		var req campaignReq
		if err := json.Unmarshal(t.Request(), &req); err != nil {
			return nil, err
		}
		var c campaignCkpt
		if _, err := t.RestoreCheckpoint(&c); err != nil {
			return nil, err
		}
		for i := c.Done; i < req.N; i++ {
			if err := t.Ctx().Err(); err != nil {
				t.Checkpoint(&c, c.Done, req.N)
				return nil, err
			}
			if hook != nil {
				if err := hook(t, i); err != nil {
					return nil, err
				}
			}
			c.Sum += math.Sin(float64(i)*1e-3 + float64(req.Seed))
			c.Done = i + 1
			if c.Done%checkpointEvery == 0 {
				if err := t.Checkpoint(&c, c.Done, req.N); err != nil {
					return nil, err
				}
			}
		}
		return map[string]any{"sum": c.Sum, "units": c.Done}, nil
	}
}

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func mustSubmit(t *testing.T, m *Manager, kind string, req any, memoKey string) Record {
	t.Helper()
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := m.Submit(kind, data, memoKey)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

// waitTerminal watches a job until it reaches a terminal state.
func waitTerminal(t *testing.T, m *Manager, id string) Record {
	t.Helper()
	ch, stop, err := m.Watch(id)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	deadline := time.After(30 * time.Second)
	var last Record
	for {
		select {
		case rec, ok := <-ch:
			if !ok {
				return last
			}
			last = rec
			if rec.State.Terminal() {
				return rec
			}
		case <-deadline:
			t.Fatalf("job %s never terminated (last state %s)", id, last.State)
		}
	}
}

func TestLifecycleAndResult(t *testing.T) {
	st := openStore(t, t.TempDir())
	m, err := New(Config{Store: st, Exec: campaignExec(8, nil), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())

	rec := mustSubmit(t, m, "campaign", campaignReq{N: 40, Seed: 7}, "")
	if rec.State != StateQueued || rec.ID == "" {
		t.Fatalf("submitted record = %+v", rec)
	}
	final := waitTerminal(t, m, rec.ID)
	if final.State != StateDone {
		t.Fatalf("final state = %s (error %q)", final.State, final.Error)
	}
	if final.ResultID == "" || final.Attempts != 1 || final.Completed != 40 || final.Total != 40 {
		t.Fatalf("final record = %+v", final)
	}
	if final.Checkpoints != 5 {
		t.Fatalf("checkpoints = %d, want 5 (40 units / every 8)", final.Checkpoints)
	}
	data, got, err := m.Result(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateDone {
		t.Fatalf("Result record state = %s", got.State)
	}
	var payload struct {
		Sum   float64 `json:"sum"`
		Units int64   `json:"units"`
	}
	if err := json.Unmarshal(data, &payload); err != nil {
		t.Fatal(err)
	}
	if payload.Units != 40 {
		t.Fatalf("result payload = %+v", payload)
	}
	// Completion cleans the checkpoint up: the result supersedes it.
	var ck campaignCkpt
	if ok, _ := st.JobCheckpoint(rec.ID, &ck); ok {
		t.Fatal("checkpoint survived completion")
	}
	// The record is durable.
	var onDisk Record
	if ok, err := st.JobRecord(rec.ID, &onDisk); err != nil || !ok || onDisk.State != StateDone {
		t.Fatalf("persisted record = %+v, %v, %v", onDisk, ok, err)
	}
}

func TestMemoizationAndInFlightDedupe(t *testing.T) {
	st := openStore(t, t.TempDir())
	var runs atomic.Int64
	release := make(chan struct{})
	exec := campaignExec(8, func(tk *Task, i int64) error {
		if i == 0 {
			runs.Add(1)
			select {
			case <-release:
			case <-tk.Ctx().Done():
				return tk.Ctx().Err()
			}
		}
		return nil
	})
	m, err := New(Config{Store: st, Exec: exec, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())

	key, err := store.MemoKey(campaignReq{N: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	first := mustSubmit(t, m, "campaign", campaignReq{N: 16, Seed: 3}, key)

	// In-flight dedupe: an identical submission coalesces onto the
	// running job instead of queueing a duplicate campaign.
	dup := mustSubmit(t, m, "campaign", campaignReq{N: 16, Seed: 3}, key)
	if dup.ID != first.ID {
		t.Fatalf("in-flight duplicate got its own job: %s vs %s", dup.ID, first.ID)
	}
	close(release)
	final := waitTerminal(t, m, first.ID)
	if final.State != StateDone {
		t.Fatalf("final state = %s (%s)", final.State, final.Error)
	}

	// Completed memoization: identical requests return the completed
	// record, flagged, without recomputation.
	memo := mustSubmit(t, m, "campaign", campaignReq{N: 16, Seed: 3}, key)
	if !memo.Memoized || memo.State != StateDone || memo.ResultID != final.ResultID {
		t.Fatalf("memoized record = %+v", memo)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("campaign executed %d times, want 1", got)
	}

	// The memo index is durable: a fresh manager on the same store
	// answers from it too.
	m2, err := New(Config{Store: openStore(t, st.Root()), Exec: exec, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close(context.Background())
	memo2 := mustSubmit(t, m2, "campaign", campaignReq{N: 16, Seed: 3}, key)
	if !memo2.Memoized || memo2.ResultID != final.ResultID {
		t.Fatalf("cross-process memo = %+v", memo2)
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	st := openStore(t, t.TempDir())
	release := make(chan struct{})
	exec := campaignExec(8, func(tk *Task, i int64) error {
		select {
		case <-release:
			return nil
		case <-tk.Ctx().Done():
			return tk.Ctx().Err()
		}
	})
	m, err := New(Config{Store: st, Exec: exec, Workers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())

	// Worker 1 picks up job 1 and blocks; job 2 occupies the only queue
	// slot. A worker needs a beat to dequeue job 1.
	j1 := mustSubmit(t, m, "campaign", campaignReq{N: 4, Seed: 1}, "")
	waitForState(t, m, j1.ID, StateRunning)
	j2 := mustSubmit(t, m, "campaign", campaignReq{N: 4, Seed: 2}, "")

	if _, err := m.Submit("campaign", []byte(`{"n":4,"seed":3}`), ""); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submission = %v, want ErrQueueFull", err)
	}
	if m.RetryAfter() <= 0 {
		t.Fatal("RetryAfter must be positive")
	}
	close(release)
	if rec := waitTerminal(t, m, j1.ID); rec.State != StateDone {
		t.Fatalf("job 1 = %s", rec.State)
	}
	if rec := waitTerminal(t, m, j2.ID); rec.State != StateDone {
		t.Fatalf("job 2 = %s", rec.State)
	}
	// Pressure released: submissions flow again.
	j4 := mustSubmit(t, m, "campaign", campaignReq{N: 4, Seed: 4}, "")
	if rec := waitTerminal(t, m, j4.ID); rec.State != StateDone {
		t.Fatalf("job 4 = %s", rec.State)
	}
}

func waitForState(t *testing.T, m *Manager, id string, want State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		rec, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if rec.State == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	rec, _ := m.Get(id)
	t.Fatalf("job %s stuck in %s, want %s", id, rec.State, want)
}

func TestRetryTransientWithBackoff(t *testing.T) {
	st := openStore(t, t.TempDir())
	var calls atomic.Int64
	exec := campaignExec(4, func(tk *Task, i int64) error {
		if i == 2 && calls.Add(1) <= 2 {
			return Transient(fmt.Errorf("flaky shard"))
		}
		return nil
	})
	m, err := New(Config{Store: st, Exec: exec, Workers: 1, MaxAttempts: 3, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	rec := mustSubmit(t, m, "campaign", campaignReq{N: 8, Seed: 5}, "")
	final := waitTerminal(t, m, rec.ID)
	if final.State != StateDone || final.Attempts != 3 {
		t.Fatalf("final = %+v, want done after 3 attempts", final)
	}
	if final.Error != "" {
		t.Fatalf("transient error leaked into the final record: %q", final.Error)
	}
}

func TestPermanentErrorFailsWithoutRetry(t *testing.T) {
	st := openStore(t, t.TempDir())
	exec := campaignExec(4, func(tk *Task, i int64) error {
		return fmt.Errorf("bad request shape")
	})
	m, err := New(Config{Store: st, Exec: exec, Workers: 1, MaxAttempts: 5, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	rec := mustSubmit(t, m, "campaign", campaignReq{N: 8, Seed: 5}, "")
	final := waitTerminal(t, m, rec.ID)
	if final.State != StateFailed || final.Attempts != 1 || final.Error != "bad request shape" {
		t.Fatalf("final = %+v, want failed on attempt 1", final)
	}
}

func TestWorkerPanicIsTransient(t *testing.T) {
	st := openStore(t, t.TempDir())
	var panicked atomic.Bool
	exec := campaignExec(4, func(tk *Task, i int64) error {
		if i == 5 && panicked.CompareAndSwap(false, true) {
			panic("worker dies mid-campaign")
		}
		return nil
	})
	m, err := New(Config{Store: st, Exec: exec, Workers: 1, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	rec := mustSubmit(t, m, "campaign", campaignReq{N: 12, Seed: 6}, "")
	final := waitTerminal(t, m, rec.ID)
	if final.State != StateDone || final.Attempts != 2 {
		t.Fatalf("final = %+v, want done on attempt 2", final)
	}
}

func TestAttemptDeadlineResumesFromCheckpoint(t *testing.T) {
	st := openStore(t, t.TempDir())
	var stalled atomic.Bool
	exec := campaignExec(1, func(tk *Task, i int64) error {
		// First attempt checkpoints unit 0 then stalls until the
		// deadline; the retry must resume past it.
		if i == 1 && stalled.CompareAndSwap(false, true) {
			<-tk.Ctx().Done()
			return tk.Ctx().Err()
		}
		return nil
	})
	m, err := New(Config{Store: st, Exec: exec, Workers: 1,
		Deadline: 100 * time.Millisecond, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())
	rec := mustSubmit(t, m, "campaign", campaignReq{N: 4, Seed: 8}, "")
	final := waitTerminal(t, m, rec.ID)
	if final.State != StateDone || final.Attempts != 2 {
		t.Fatalf("final = %+v, want done on attempt 2 after deadline", final)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	st := openStore(t, t.TempDir())
	started := make(chan struct{}, 1)
	exec := campaignExec(8, func(tk *Task, i int64) error {
		if i == 0 {
			select {
			case started <- struct{}{}:
			default:
			}
		}
		<-tk.Ctx().Done()
		return tk.Ctx().Err()
	})
	m, err := New(Config{Store: st, Exec: exec, Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(context.Background())

	running := mustSubmit(t, m, "campaign", campaignReq{N: 4, Seed: 1}, "")
	<-started
	queued := mustSubmit(t, m, "campaign", campaignReq{N: 4, Seed: 2}, "")

	if rec, ok, err := m.Cancel(queued.ID); err != nil || !ok || rec.State != StateCancelled {
		t.Fatalf("cancel queued = %+v, %v, %v", rec, ok, err)
	}
	if _, ok, err := m.Cancel(running.ID); err != nil || !ok {
		t.Fatalf("cancel running = %v, %v", ok, err)
	}
	if rec := waitTerminal(t, m, running.ID); rec.State != StateCancelled {
		t.Fatalf("running job = %s, want cancelled", rec.State)
	}
	// Cancelling a terminal job is a no-op reporting ok=false.
	if _, ok, err := m.Cancel(queued.ID); err != nil || ok {
		t.Fatalf("double cancel = %v, %v", ok, err)
	}
	if _, _, err := m.Cancel("00ff00ff00ff"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancel unknown = %v", err)
	}
}

// TestCrashResumeBitIdentical is the acceptance test for the tier's
// fault tolerance: a process killed mid-campaign (crash semantics — no
// state transition persisted, only the durable checkpoint) restarts,
// resumes from the checkpoint, and produces a result byte-identical to
// an uninterrupted run of the same request.
func TestCrashResumeBitIdentical(t *testing.T) {
	req := campaignReq{N: 64, Seed: 42}

	// Reference: uninterrupted run in its own store.
	refStore := openStore(t, t.TempDir())
	mRef, err := New(Config{Store: refStore, Exec: campaignExec(8, nil), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer mRef.Close(context.Background())
	refRec := mustSubmit(t, mRef, "campaign", req, "")
	refFinal := waitTerminal(t, mRef, refRec.ID)
	refBytes, _, err := mRef.Result(refRec.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Victim: same campaign, killed after its third checkpoint.
	dir := t.TempDir()
	st1 := openStore(t, dir)
	blocked := make(chan struct{}, 1)
	exec1 := campaignExec(8, func(tk *Task, i int64) error {
		if i == 24 { // checkpoints at 8, 16, 24 have been written
			select {
			case blocked <- struct{}{}:
			default:
			}
			<-tk.Ctx().Done() // hang until the crash
			return tk.Ctx().Err()
		}
		return nil
	})
	m1, err := New(Config{Store: st1, Exec: exec1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	victim := mustSubmit(t, m1, "campaign", req, "")
	<-blocked
	m1.Kill() // SIGKILL semantics: on-disk record still says "running"

	var onDisk Record
	if ok, err := st1.JobRecord(victim.ID, &onDisk); err != nil || !ok {
		t.Fatalf("record lost in crash: %v %v", ok, err)
	}
	if onDisk.State != StateRunning {
		t.Fatalf("crashed record state = %s, want running (nothing persisted at kill)", onDisk.State)
	}
	var ck campaignCkpt
	if ok, _ := st1.JobCheckpoint(victim.ID, &ck); !ok || ck.Done != 24 {
		t.Fatalf("checkpoint = %+v, want prefix of 24 units", ck)
	}

	// Restart: a fresh manager over the same store recovers the job and
	// resumes it from the checkpoint — without the hook, so it runs out.
	st2 := openStore(t, dir)
	m2, err := New(Config{Store: st2, Exec: campaignExec(8, nil), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close(context.Background())
	resumed, err := m2.Get(victim.ID)
	if err != nil {
		t.Fatalf("restarted manager lost the job: %v", err)
	}
	if resumed.State == StateRunning {
		t.Fatalf("recovered state = %s before a worker picked it up", resumed.State)
	}
	final := waitTerminal(t, m2, victim.ID)
	if final.State != StateDone {
		t.Fatalf("resumed job = %s (%s)", final.State, final.Error)
	}
	gotBytes, _, err := m2.Result(victim.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, refBytes) {
		t.Fatalf("resumed result differs from uninterrupted run:\n%s\nvs\n%s", gotBytes, refBytes)
	}
	if final.ResultID != refFinal.ResultID {
		t.Fatalf("content addresses differ: %s vs %s", final.ResultID, refFinal.ResultID)
	}
}

// TestGracefulDrainParksAndResumes: Close interrupts a running
// campaign, which checkpoints and is persisted as checkpointed; a new
// manager resumes and completes it.
func TestGracefulDrainParksAndResumes(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	reached := make(chan struct{}, 1)
	slow := campaignExec(4, func(tk *Task, i int64) error {
		if i >= 8 {
			select {
			case reached <- struct{}{}:
			default:
			}
			select {
			case <-tk.Ctx().Done():
				return tk.Ctx().Err()
			case <-time.After(10 * time.Second):
				return fmt.Errorf("drain never arrived")
			}
		}
		return nil
	})
	m1, err := New(Config{Store: st, Exec: slow, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec := mustSubmit(t, m1, "campaign", campaignReq{N: 32, Seed: 9}, "")
	<-reached
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m1.Close(ctx); err != nil {
		t.Fatalf("drain = %v", err)
	}
	// Draining rejects new work.
	if _, err := m1.Submit("campaign", []byte(`{"n":1}`), ""); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining = %v", err)
	}
	var parked Record
	if ok, err := st.JobRecord(rec.ID, &parked); err != nil || !ok {
		t.Fatalf("parked record: %v %v", ok, err)
	}
	if parked.State != StateCheckpointed {
		t.Fatalf("parked state = %s, want checkpointed", parked.State)
	}

	m2, err := New(Config{Store: openStore(t, dir), Exec: campaignExec(4, nil), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close(context.Background())
	final := waitTerminal(t, m2, rec.ID)
	if final.State != StateDone {
		t.Fatalf("resumed after drain = %s (%s)", final.State, final.Error)
	}
}
