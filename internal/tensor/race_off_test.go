//go:build !race

package tensor

// raceEnabled reports whether the race detector instruments this build;
// the allocation assertions skip under -race, whose instrumented
// sync.Pool allocates on Get.
const raceEnabled = false
