package tensor

import (
	"fmt"

	"repro/internal/parallel"
)

// Multi-lane fused kernels: one sweep over the matrix serves K
// right-hand sides at once. The batched plan evaluator leans on these —
// when P damaged sweeps share a weight matrix, the matrix streams from
// L2 once per P lanes instead of once per lane, which is the structural
// win past the scalar load-port floor (BENCH_1.json's floor analysis).
//
// Every lane reproduces the exact four-way accumulation order of Dot,
// so lane k of MulVecLanesAddTo is bit-identical to a MulVecAddTo call
// with the same right-hand side: batching changes cache behaviour, never
// results.

// MulVecLanesAddTo computes ys[k] = M xs[k] + b for every lane k in one
// sweep over the matrix. b may be nil. len(ys) must equal len(xs); each
// xs[k] has length Cols, each ys[k] length Rows. Outputs must not alias
// any input. Lanes may share a right-hand side (xs[i] and xs[j] may be
// the same slice), which the batched evaluator uses for lanes that
// diverge at the same layer of one clean trace.
//
// Large matrices distribute row ranges over goroutines, like
// MulVecAddTo.
func (m *Matrix) MulVecLanesAddTo(ys, xs [][]float64, b []float64) {
	if len(ys) != len(xs) {
		panic(fmt.Sprintf("tensor: MulVecLanesAddTo %d outputs for %d lanes", len(ys), len(xs)))
	}
	for k := range xs {
		if len(xs[k]) != m.Cols {
			panic(fmt.Sprintf("tensor: MulVecLanesAddTo lane %d dim mismatch: %dx%d by %d", k, m.Rows, m.Cols, len(xs[k])))
		}
		if len(ys[k]) != m.Rows {
			panic(fmt.Sprintf("tensor: MulVecLanesAddTo lane %d output length %d, want %d", k, len(ys[k]), m.Rows))
		}
	}
	if b != nil && len(b) != m.Rows {
		panic("tensor: MulVecLanesAddTo bias length mismatch")
	}
	if len(xs) == 0 {
		return
	}
	if m.Rows*m.Cols >= 1<<15 {
		d := mvPool.Get().(*mvDispatch)
		d.kind, d.m, d.ys, d.xs, d.b = mvLanes, m, ys, xs, b
		parallel.ForChunked(m.Rows, 16, d.run)
		d.release()
		return
	}
	m.mulVecLanesAddRange(ys, xs, b, 0, m.Rows)
}

// mulVecLanesAddRange is the serial core: rows outer, lanes inner in
// pairs, so a row is loaded from the matrix once per pair and stays hot
// in L1 for every lane. Pairs — not wider groups — are the sweet spot:
// dotPair's 8 accumulators plus 4 row values fit the 16 vector
// registers, while a 4-lane kernel's 16 accumulators spill to the stack
// and lose more to store/reload traffic than the shared row loads save
// (measured 20-30% slower than pairs from L1 through DRAM-resident
// sizes on the BENCH_1 reference machine). Per (row, lane) the
// accumulation is Dot's four-way order, keeping each lane bit-identical
// to the single-lane kernel.
func (m *Matrix) mulVecLanesAddRange(ys, xs [][]float64, b []float64, lo, hi int) {
	cols := m.Cols
	data := m.Data
	for r := lo; r < hi; r++ {
		row := data[r*cols : r*cols+cols]
		k := 0
		for ; k+2 <= len(xs); k += 2 {
			ys[k][r] = dotPair(row, xs[k], xs[k+1], &ys[k+1][r])
		}
		if k < len(xs) {
			ys[k][r] = Dot(row, xs[k])
		}
		if b != nil {
			for k := range ys {
				ys[k][r] += b[r]
			}
		}
	}
}

// l2Block is the k/j tile edge of MatMulBlockedInto: a 128x128 float64
// tile of B is 128 KiB, sized so one B tile plus the C and A rows
// sweeping it stay resident in a typical 256 KiB - 1 MiB L2 while the
// i loop streams over it.
const l2Block = 128

// MatMulBlockedInto computes C = A B into a caller-provided C using an
// i-k-j kernel tiled for L2 (tile edge l2Block): each B tile is loaded
// once and every row of A sweeps it before it is evicted. Row chunks
// distribute over goroutines for large products. For every (i, j) the
// additions over k happen in ascending k order exactly as in the naive
// triple loop, so the result is bit-identical to matMulNaive (and to
// MatMul, which wraps this).
func MatMulBlockedInto(c, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulBlockedInto dim mismatch: %dx%d by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulBlockedInto output is %dx%d, want %dx%d", c.Rows, c.Cols, a.Rows, b.Cols))
	}
	Fill(c.Data, 0)
	blocked := func(lo, hi int) {
		for k0 := 0; k0 < a.Cols; k0 += l2Block {
			k1 := k0 + l2Block
			if k1 > a.Cols {
				k1 = a.Cols
			}
			for j0 := 0; j0 < b.Cols; j0 += l2Block {
				j1 := j0 + l2Block
				if j1 > b.Cols {
					j1 = b.Cols
				}
				for i := lo; i < hi; i++ {
					ci := c.Row(i)[j0:j1]
					ai := a.Row(i)
					for k := k0; k < k1; k++ {
						Axpy(ai[k], b.Row(k)[j0:j1], ci)
					}
				}
			}
		}
	}
	if a.Rows*a.Cols*b.Cols >= 1<<17 {
		parallel.ForChunked(a.Rows, 32, blocked)
		return
	}
	blocked(0, a.Rows)
}
