package tensor

import (
	"fmt"
	"math"

	"repro/internal/parallel"
	"repro/internal/rng"
)

// Matrix is a dense row-major matrix. Row r occupies
// Data[r*Cols : (r+1)*Cols].
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zeroed rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("tensor: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must all share a length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for r, row := range rows {
		if len(row) != cols {
			panic("tensor: FromRows ragged input")
		}
		copy(m.Row(r), row)
	}
	return m
}

// At returns the element at row r, column c.
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set stores v at row r, column c.
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Row returns a mutable view of row r.
func (m *Matrix) Row(r int) []float64 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MaxAbs returns the largest absolute entry (0 for an empty matrix).
func (m *Matrix) MaxAbs() float64 { return MaxAbs(m.Data) }

// Apply replaces each entry x with f(x) in place.
func (m *Matrix) Apply(f func(float64) float64) { Apply(m.Data, f) }

// Scale multiplies every entry by alpha in place.
func (m *Matrix) Scale(alpha float64) { Scale(alpha, m.Data) }

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for c, v := range row {
			out.Data[c*out.Cols+r] = v
		}
	}
	return out
}

// EqualApprox reports elementwise equality within tol.
func (m *Matrix) EqualApprox(other *Matrix, tol float64) bool {
	return m.Rows == other.Rows && m.Cols == other.Cols &&
		EqualApprox(m.Data, other.Data, tol)
}

// String renders small matrices for debugging.
func (m *Matrix) String() string {
	s := fmt.Sprintf("Matrix %dx%d", m.Rows, m.Cols)
	if m.Rows*m.Cols <= 64 {
		for r := 0; r < m.Rows; r++ {
			s += fmt.Sprintf("\n  %v", m.Row(r))
		}
	}
	return s
}

// MulVec computes y = M x. It panics on dimension mismatch. The rows are
// processed in parallel for large matrices.
func (m *Matrix) MulVec(x []float64) []float64 {
	y := make([]float64, m.Rows)
	m.MulVecTo(y, x)
	return y
}

// MulVecTo computes y = M x into a caller-provided y of length Rows.
func (m *Matrix) MulVecTo(y, x []float64) { m.MulVecAddTo(y, x, nil) }

// MulVecAddTo computes y = M x + b in one sweep over the matrix (the
// fused matvec-plus-bias kernel of the forward pass). b may be nil, in
// which case it computes a plain matvec. y must not alias x or b. Large
// matrices distribute row ranges over goroutines.
func (m *Matrix) MulVecAddTo(y, x, b []float64) {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("tensor: MulVecAddTo dim mismatch: %dx%d by %d", m.Rows, m.Cols, len(x)))
	}
	if len(y) != m.Rows {
		panic("tensor: MulVecAddTo output length mismatch")
	}
	if b != nil && len(b) != m.Rows {
		panic("tensor: MulVecAddTo bias length mismatch")
	}
	if m.Rows*m.Cols >= 1<<15 {
		d := mvPool.Get().(*mvDispatch)
		d.kind, d.m, d.y1, d.x1, d.b = mvSingle, m, y, x, b
		parallel.ForChunked(m.Rows, 16, d.run)
		d.release()
		return
	}
	m.mulVecAddRange(y, x, b, 0, m.Rows)
}

// MulVecAddRange computes y[lo:hi] = (M x + b)[lo:hi]: the row-range
// variant of MulVecAddTo, for callers that sweep a matrix in segments.
func (m *Matrix) MulVecAddRange(y, x, b []float64, lo, hi int) {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("tensor: MulVecAddRange dim mismatch: %dx%d by %d", m.Rows, m.Cols, len(x)))
	}
	if len(y) != m.Rows || lo < 0 || hi > m.Rows || lo > hi {
		panic("tensor: MulVecAddRange bad output or range")
	}
	if b != nil && len(b) != m.Rows {
		panic("tensor: MulVecAddRange bias length mismatch")
	}
	m.mulVecAddRange(y, x, b, lo, hi)
}

// mulVecAddRange is the serial matvec kernel: two rows per iteration
// share the loads of x, and each row keeps the exact four-way
// accumulation order of Dot, so results are bit-identical to calling Dot
// row by row.
func (m *Matrix) mulVecAddRange(y, x, b []float64, lo, hi int) {
	cols := m.Cols
	data := m.Data
	r := lo
	for ; r+2 <= hi; r += 2 {
		row0 := data[r*cols : r*cols+cols]
		row1 := data[(r+1)*cols : (r+1)*cols+cols]
		x := x[:len(row0)]
		var a0, a1, a2, a3, c0, c1, c2, c3 float64
		i := 0
		for ; i+4 <= len(row0); i += 4 {
			x0, x1, x2, x3 := x[i], x[i+1], x[i+2], x[i+3]
			a0 += row0[i] * x0
			a1 += row0[i+1] * x1
			a2 += row0[i+2] * x2
			a3 += row0[i+3] * x3
			c0 += row1[i] * x0
			c1 += row1[i+1] * x1
			c2 += row1[i+2] * x2
			c3 += row1[i+3] * x3
		}
		for ; i < len(row0); i++ {
			a0 += row0[i] * x[i]
			c0 += row1[i] * x[i]
		}
		y[r] = a0 + a1 + a2 + a3
		y[r+1] = c0 + c1 + c2 + c3
		if b != nil {
			y[r] += b[r]
			y[r+1] += b[r+1]
		}
	}
	for ; r < hi; r++ {
		row := data[r*cols : r*cols+cols]
		x := x[:len(row)]
		var s0, s1, s2, s3 float64
		i := 0
		for ; i+4 <= len(row); i += 4 {
			s0 += row[i] * x[i]
			s1 += row[i+1] * x[i+1]
			s2 += row[i+2] * x[i+2]
			s3 += row[i+3] * x[i+3]
		}
		for ; i < len(row); i++ {
			s0 += row[i] * x[i]
		}
		y[r] = s0 + s1 + s2 + s3
		if b != nil {
			y[r] += b[r]
		}
	}
}

// MulVec2AddTo computes y1 = M x1 + b and y2 = M x2 + b in a single sweep
// over the matrix: both dot products per row read the row while it is hot
// in cache. This is the kernel behind the fused clean+faulted forward
// pass. b may be nil. Outputs must not alias any input.
func (m *Matrix) MulVec2AddTo(y1, x1, y2, x2, b []float64) {
	if len(x1) != m.Cols || len(x2) != m.Cols {
		panic(fmt.Sprintf("tensor: MulVec2AddTo dim mismatch: %dx%d by %d/%d", m.Rows, m.Cols, len(x1), len(x2)))
	}
	if len(y1) != m.Rows || len(y2) != m.Rows {
		panic("tensor: MulVec2AddTo output length mismatch")
	}
	if b != nil && len(b) != m.Rows {
		panic("tensor: MulVec2AddTo bias length mismatch")
	}
	if m.Rows*m.Cols >= 1<<15 {
		d := mvPool.Get().(*mvDispatch)
		d.kind, d.m, d.y1, d.x1, d.y2, d.x2, d.b = mvPair, m, y1, x1, y2, x2, b
		parallel.ForChunked(m.Rows, 16, d.run)
		d.release()
		return
	}
	m.mulVec2AddRange(y1, x1, y2, x2, b, 0, m.Rows)
}

// mulVec2AddRange is the serial row-range core of MulVec2AddTo (a named
// method rather than a closure so the serial path stays allocation-free).
func (m *Matrix) mulVec2AddRange(y1, x1, y2, x2, b []float64, lo, hi int) {
	for r := lo; r < hi; r++ {
		row := m.Row(r)
		s1 := dotPair(row, x1, x2, &y2[r])
		y1[r] = s1
		if b != nil {
			y1[r] += b[r]
			y2[r] += b[r]
		}
	}
}

// dotPair accumulates Dot(row, x1) (returned) and Dot(row, x2) (stored in
// *d2) with the exact same accumulation order as Dot, sharing the row
// loads between the two products.
func dotPair(row, x1, x2 []float64, d2 *float64) float64 {
	x1 = x1[:len(row)]
	x2 = x2[:len(row)]
	var a0, a1, a2, a3 float64
	var b0, b1, b2, b3 float64
	i := 0
	for ; i+4 <= len(row); i += 4 {
		r0, r1, r2, r3 := row[i], row[i+1], row[i+2], row[i+3]
		a0 += r0 * x1[i]
		a1 += r1 * x1[i+1]
		a2 += r2 * x1[i+2]
		a3 += r3 * x1[i+3]
		b0 += r0 * x2[i]
		b1 += r1 * x2[i+1]
		b2 += r2 * x2[i+2]
		b3 += r3 * x2[i+3]
	}
	for ; i < len(row); i++ {
		a0 += row[i] * x1[i]
		b0 += row[i] * x2[i]
	}
	*d2 = b0 + b1 + b2 + b3
	return a0 + a1 + a2 + a3
}

// MulVecT computes y = Mᵀ x (x has length Rows, result length Cols)
// without materialising the transpose.
func (m *Matrix) MulVecT(x []float64) []float64 {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("tensor: MulVecT dim mismatch: %dx%d by %d", m.Rows, m.Cols, len(x)))
	}
	y := make([]float64, m.Cols)
	for r := 0; r < m.Rows; r++ {
		Axpy(x[r], m.Row(r), y)
	}
	return y
}

// AddOuterScaled accumulates M += alpha * u vᵀ (rank-1 update).
func (m *Matrix) AddOuterScaled(alpha float64, u, v []float64) {
	if len(u) != m.Rows || len(v) != m.Cols {
		panic("tensor: AddOuterScaled dim mismatch")
	}
	for r := 0; r < m.Rows; r++ {
		Axpy(alpha*u[r], v, m.Row(r))
	}
}

// gemmBlock is the cache-block edge for MatMul.
const gemmBlock = 64

// MatMul returns C = A B using the cache-blocked i-k-j kernel of
// MatMulBlockedInto. For every (i, j) the additions over k happen in
// ascending order, so the result is bit-identical to the naive triple
// loop at any tile size.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul dim mismatch: %dx%d by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewMatrix(a.Rows, b.Cols)
	MatMulBlockedInto(c, a, b)
	return c
}

// MatMulTransBInto computes C = A Bᵀ into a caller-provided C
// (A.Rows x B.Rows; A.Cols must equal B.Cols). With both operands
// row-major this is the natural batched-forward kernel: row i of A is an
// input, row j of B a neuron's weights, and C[i][j] their dot product —
// every access is sequential. Row blocks are distributed over goroutines
// for large products.
func MatMulTransBInto(c, a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransB dim mismatch: %dx%d by (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if c.Rows != a.Rows || c.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransB output is %dx%d, want %dx%d", c.Rows, c.Cols, a.Rows, b.Rows))
	}
	blocked := func(lo, hi int) {
		// Tile over B's rows so a block of weights stays cached while
		// each input row sweeps it.
		for j0 := 0; j0 < b.Rows; j0 += gemmBlock {
			j1 := j0 + gemmBlock
			if j1 > b.Rows {
				j1 = b.Rows
			}
			for i := lo; i < hi; i++ {
				ai := a.Row(i)
				ci := c.Row(i)
				for j := j0; j < j1; j++ {
					ci[j] = Dot(ai, b.Row(j))
				}
			}
		}
	}
	if a.Rows*a.Cols*b.Rows >= 1<<17 {
		parallel.ForChunked(a.Rows, gemmBlock/4, blocked)
		return
	}
	blocked(0, a.Rows)
}

// matMulNaive is the reference triple loop used by tests.
func matMulNaive(a, b *Matrix) *Matrix {
	c := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			s := 0.0
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

// RandomMatrix returns a rows x cols matrix with entries uniform in
// [-scale, scale).
func RandomMatrix(r *rng.Rand, rows, cols int, scale float64) *Matrix {
	m := NewMatrix(rows, cols)
	r.Floats(m.Data, -scale, scale)
	return m
}

// GlorotMatrix returns a rows x cols matrix with the Glorot/Xavier uniform
// initialisation bound sqrt(6/(rows+cols)), the usual choice for sigmoid
// networks.
func GlorotMatrix(r *rng.Rand, rows, cols int) *Matrix {
	bound := math.Sqrt(6.0 / float64(rows+cols))
	return RandomMatrix(r, rows, cols, bound)
}

// Frobenius returns the Frobenius norm of m.
func (m *Matrix) Frobenius() float64 { return Norm2(m.Data) }
