package tensor

import (
	"fmt"
	"math"

	"repro/internal/parallel"
	"repro/internal/rng"
)

// Matrix is a dense row-major matrix. Row r occupies
// Data[r*Cols : (r+1)*Cols].
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zeroed rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("tensor: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must all share a length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for r, row := range rows {
		if len(row) != cols {
			panic("tensor: FromRows ragged input")
		}
		copy(m.Row(r), row)
	}
	return m
}

// At returns the element at row r, column c.
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set stores v at row r, column c.
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Row returns a mutable view of row r.
func (m *Matrix) Row(r int) []float64 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MaxAbs returns the largest absolute entry (0 for an empty matrix).
func (m *Matrix) MaxAbs() float64 { return MaxAbs(m.Data) }

// Apply replaces each entry x with f(x) in place.
func (m *Matrix) Apply(f func(float64) float64) { Apply(m.Data, f) }

// Scale multiplies every entry by alpha in place.
func (m *Matrix) Scale(alpha float64) { Scale(alpha, m.Data) }

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for c, v := range row {
			out.Data[c*out.Cols+r] = v
		}
	}
	return out
}

// EqualApprox reports elementwise equality within tol.
func (m *Matrix) EqualApprox(other *Matrix, tol float64) bool {
	return m.Rows == other.Rows && m.Cols == other.Cols &&
		EqualApprox(m.Data, other.Data, tol)
}

// String renders small matrices for debugging.
func (m *Matrix) String() string {
	s := fmt.Sprintf("Matrix %dx%d", m.Rows, m.Cols)
	if m.Rows*m.Cols <= 64 {
		for r := 0; r < m.Rows; r++ {
			s += fmt.Sprintf("\n  %v", m.Row(r))
		}
	}
	return s
}

// MulVec computes y = M x. It panics on dimension mismatch. The rows are
// processed in parallel for large matrices.
func (m *Matrix) MulVec(x []float64) []float64 {
	y := make([]float64, m.Rows)
	m.MulVecTo(y, x)
	return y
}

// MulVecTo computes y = M x into a caller-provided y of length Rows.
func (m *Matrix) MulVecTo(y, x []float64) {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("tensor: MulVec dim mismatch: %dx%d by %d", m.Rows, m.Cols, len(x)))
	}
	if len(y) != m.Rows {
		panic("tensor: MulVecTo output length mismatch")
	}
	if m.Rows*m.Cols >= 1<<15 {
		parallel.ForChunked(m.Rows, 16, func(lo, hi int) {
			for r := lo; r < hi; r++ {
				y[r] = Dot(m.Row(r), x)
			}
		})
		return
	}
	for r := 0; r < m.Rows; r++ {
		y[r] = Dot(m.Row(r), x)
	}
}

// MulVecT computes y = Mᵀ x (x has length Rows, result length Cols)
// without materialising the transpose.
func (m *Matrix) MulVecT(x []float64) []float64 {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("tensor: MulVecT dim mismatch: %dx%d by %d", m.Rows, m.Cols, len(x)))
	}
	y := make([]float64, m.Cols)
	for r := 0; r < m.Rows; r++ {
		Axpy(x[r], m.Row(r), y)
	}
	return y
}

// AddOuterScaled accumulates M += alpha * u vᵀ (rank-1 update).
func (m *Matrix) AddOuterScaled(alpha float64, u, v []float64) {
	if len(u) != m.Rows || len(v) != m.Cols {
		panic("tensor: AddOuterScaled dim mismatch")
	}
	for r := 0; r < m.Rows; r++ {
		Axpy(alpha*u[r], v, m.Row(r))
	}
}

// gemmBlock is the cache-block edge for MatMul.
const gemmBlock = 64

// MatMul returns C = A B using a cache-blocked i-k-j kernel with the row
// blocks distributed over goroutines.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul dim mismatch: %dx%d by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewMatrix(a.Rows, b.Cols)
	rowBlocks := (a.Rows + gemmBlock - 1) / gemmBlock
	parallel.For(rowBlocks, func(rb int) {
		i0 := rb * gemmBlock
		i1 := i0 + gemmBlock
		if i1 > a.Rows {
			i1 = a.Rows
		}
		for k0 := 0; k0 < a.Cols; k0 += gemmBlock {
			k1 := k0 + gemmBlock
			if k1 > a.Cols {
				k1 = a.Cols
			}
			for i := i0; i < i1; i++ {
				ci := c.Row(i)
				ai := a.Row(i)
				for k := k0; k < k1; k++ {
					Axpy(ai[k], b.Row(k), ci)
				}
			}
		}
	})
	return c
}

// matMulNaive is the reference triple loop used by tests.
func matMulNaive(a, b *Matrix) *Matrix {
	c := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			s := 0.0
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

// RandomMatrix returns a rows x cols matrix with entries uniform in
// [-scale, scale).
func RandomMatrix(r *rng.Rand, rows, cols int, scale float64) *Matrix {
	m := NewMatrix(rows, cols)
	r.Floats(m.Data, -scale, scale)
	return m
}

// GlorotMatrix returns a rows x cols matrix with the Glorot/Xavier uniform
// initialisation bound sqrt(6/(rows+cols)), the usual choice for sigmoid
// networks.
func GlorotMatrix(r *rng.Rand, rows, cols int) *Matrix {
	bound := math.Sqrt(6.0 / float64(rows+cols))
	return RandomMatrix(r, rows, cols, bound)
}

// Frobenius returns the Frobenius norm of m.
func (m *Matrix) Frobenius() float64 { return Norm2(m.Data) }
