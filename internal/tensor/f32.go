package tensor

import "fmt"

// The float32 lane: single-precision mirrors of the fused kernels for
// inference-grade workloads. Semantically this is a reduced-precision
// implementation in the sense of Section V-A — quant certifies the
// accuracy lost (quant.Float32Lane), so nothing here promises
// bit-identity with the float64 kernels; what is pinned by tests is
// that these kernels are bit-identical to a naive float32 evaluation
// with the same four-way accumulation order.

// Dot32 returns the inner product of a and b in float32 arithmetic with
// Dot's four-way accumulation order. It panics if lengths differ.
func Dot32(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: Dot32 length mismatch %d vs %d", len(a), len(b)))
	}
	b = b[:len(a)] // bounds-check elimination hint
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return s0 + s1 + s2 + s3
}

// Matrix32 is a dense row-major float32 matrix — the storage half of
// the inference lane (half the memory traffic of Matrix for the same
// shape, which is what matters on the load-port-bound sweeps).
type Matrix32 struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix32 returns a zeroed rows x cols float32 matrix.
func NewMatrix32(rows, cols int) *Matrix32 {
	if rows < 0 || cols < 0 {
		panic("tensor: negative matrix dimension")
	}
	return &Matrix32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// ToMatrix32 rounds m to single precision.
func ToMatrix32(m *Matrix) *Matrix32 {
	out := NewMatrix32(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = float32(v)
	}
	return out
}

// Row returns a mutable view of row r.
func (m *Matrix32) Row(r int) []float32 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// At returns the element at row r, column c.
func (m *Matrix32) At(r, c int) float32 { return m.Data[r*m.Cols+c] }

// MulVecAddTo computes y = M x + b in one sweep (b may be nil): the
// float32 twin of Matrix.MulVecAddTo, serial — inference-lane sweeps
// run inside already-sharded workers.
func (m *Matrix32) MulVecAddTo(y, x, b []float32) {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("tensor: Matrix32 MulVecAddTo dim mismatch: %dx%d by %d", m.Rows, m.Cols, len(x)))
	}
	if len(y) != m.Rows {
		panic("tensor: Matrix32 MulVecAddTo output length mismatch")
	}
	if b != nil && len(b) != m.Rows {
		panic("tensor: Matrix32 MulVecAddTo bias length mismatch")
	}
	for r := 0; r < m.Rows; r++ {
		y[r] = Dot32(m.Row(r), x)
		if b != nil {
			y[r] += b[r]
		}
	}
}

// MulVecLanesAddTo computes ys[k] = M xs[k] + b for every lane k in one
// sweep over the matrix: the float32 twin of the multi-lane kernel.
func (m *Matrix32) MulVecLanesAddTo(ys, xs [][]float32, b []float32) {
	if len(ys) != len(xs) {
		panic(fmt.Sprintf("tensor: Matrix32 MulVecLanesAddTo %d outputs for %d lanes", len(ys), len(xs)))
	}
	for k := range xs {
		if len(xs[k]) != m.Cols || len(ys[k]) != m.Rows {
			panic(fmt.Sprintf("tensor: Matrix32 MulVecLanesAddTo lane %d shape mismatch", k))
		}
	}
	if b != nil && len(b) != m.Rows {
		panic("tensor: Matrix32 MulVecLanesAddTo bias length mismatch")
	}
	cols := m.Cols
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*cols : r*cols+cols]
		k := 0
		for ; k+2 <= len(xs); k += 2 {
			d0, d1 := dotPair32(row, xs[k], xs[k+1])
			ys[k][r] = d0
			ys[k+1][r] = d1
		}
		if k < len(xs) {
			ys[k][r] = Dot32(row, xs[k])
		}
		if b != nil {
			for k := range ys {
				ys[k][r] += b[r]
			}
		}
	}
}

// dotPair32 accumulates two float32 dot products against one row with
// Dot32's accumulation order, sharing the row loads.
func dotPair32(row, x1, x2 []float32) (d1, d2 float32) {
	x1 = x1[:len(row)]
	x2 = x2[:len(row)]
	var a0, a1, a2, a3 float32
	var b0, b1, b2, b3 float32
	i := 0
	for ; i+4 <= len(row); i += 4 {
		r0, r1, r2, r3 := row[i], row[i+1], row[i+2], row[i+3]
		a0 += r0 * x1[i]
		a1 += r1 * x1[i+1]
		a2 += r2 * x1[i+2]
		a3 += r3 * x1[i+3]
		b0 += r0 * x2[i]
		b1 += r1 * x2[i+1]
		b2 += r2 * x2[i+2]
		b3 += r3 * x2[i+3]
	}
	for ; i < len(row); i++ {
		a0 += row[i] * x1[i]
		b0 += row[i] * x2[i]
	}
	return a0 + a1 + a2 + a3, b0 + b1 + b2 + b3
}

// ToFloat32 rounds x to single precision into a new slice.
func ToFloat32(x []float64) []float32 {
	out := make([]float32, len(x))
	for i, v := range x {
		out[i] = float32(v)
	}
	return out
}

// ToFloat64 widens x into a new float64 slice.
func ToFloat64(x []float32) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = float64(v)
	}
	return out
}
