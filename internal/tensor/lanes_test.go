package tensor

import (
	"testing"

	"repro/internal/rng"
)

// randomShapes sweeps ragged and aligned dimensions around the kernel
// unroll width (4) and the L2 tile edge, the places a blocked or
// multi-lane kernel can diverge from its scalar reference.
var laneShapes = []struct{ rows, cols int }{
	{1, 1}, {1, 3}, {3, 1}, {4, 4}, {5, 7}, {7, 5},
	{8, 8}, {16, 13}, {13, 16}, {31, 33}, {64, 64},
	{127, 129}, {129, 127}, {128, 128},
}

// TestMulVecLanesMatchesSingleLane is the bit-identity property the
// batched fault engine rests on: for every lane count (below, at, and
// above the quad/pair groupings) and every ragged shape, lane k of
// MulVecLanesAddTo must equal the single-lane MulVecAddTo on the same
// input exactly — not approximately.
func TestMulVecLanesMatchesSingleLane(t *testing.T) {
	r := rng.New(71)
	for _, sh := range laneShapes {
		m := RandomMatrix(r, sh.rows, sh.cols, 1.5)
		b := make([]float64, sh.rows)
		r.Floats(b, -1, 1)
		for lanes := 1; lanes <= 9; lanes++ {
			xs := make([][]float64, lanes)
			ys := make([][]float64, lanes)
			for k := range xs {
				xs[k] = make([]float64, sh.cols)
				r.Floats(xs[k], -2, 2)
				ys[k] = make([]float64, sh.rows)
			}
			m.MulVecLanesAddTo(ys, xs, b)
			want := make([]float64, sh.rows)
			for k := range xs {
				m.MulVecAddTo(want, xs[k], b)
				for j := range want {
					if ys[k][j] != want[j] {
						t.Fatalf("%dx%d lanes=%d lane %d row %d: %v != single-lane %v",
							sh.rows, sh.cols, lanes, k, j, ys[k][j], want[j])
					}
				}
			}
			// nil bias path.
			m.MulVecLanesAddTo(ys, xs, nil)
			for k := range xs {
				m.MulVecAddTo(want, xs[k], nil)
				for j := range want {
					if ys[k][j] != want[j] {
						t.Fatalf("%dx%d lanes=%d lane %d row %d (nil bias): %v != %v",
							sh.rows, sh.cols, lanes, k, j, ys[k][j], want[j])
					}
				}
			}
		}
	}
}

// TestMatMulBlockedMatchesNaive pins the cache-blocked GEMM to the
// naive triple loop bit for bit across shapes straddling the tile edge.
// Blocking reorders which (i,j) cell is touched when, but every cell
// still accumulates its k-terms in ascending order, so the sums are
// identical floating-point expressions.
func TestMatMulBlockedMatchesNaive(t *testing.T) {
	r := rng.New(73)
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {3, 5, 2}, {17, 9, 23}, {64, 64, 64},
		{127, 128, 129}, {130, 127, 126}, {200, 50, 3},
	}
	for _, sh := range shapes {
		a := RandomMatrix(r, sh.m, sh.k, 1)
		b := RandomMatrix(r, sh.k, sh.n, 1)
		want := matMulNaive(a, b)
		got := NewMatrix(sh.m, sh.n)
		MatMulBlockedInto(got, a, b)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("%dx%dx%d: blocked[%d]=%v != naive %v", sh.m, sh.k, sh.n, i, got.Data[i], want.Data[i])
			}
		}
		// MatMul routes through the blocked kernel; same contract.
		if got2 := MatMul(a, b); !got2.EqualApprox(want, 0) {
			t.Fatalf("%dx%dx%d: MatMul != naive", sh.m, sh.k, sh.n)
		}
	}
}

// TestMulVecLanesValidation pins the shape panics.
func TestMulVecLanesValidation(t *testing.T) {
	m := NewMatrix(2, 3)
	for _, tc := range []struct {
		name string
		run  func()
	}{
		{"lane count mismatch", func() {
			m.MulVecLanesAddTo(make([][]float64, 2), make([][]float64, 1), nil)
		}},
		{"short x", func() {
			m.MulVecLanesAddTo([][]float64{make([]float64, 2)}, [][]float64{make([]float64, 2)}, nil)
		}},
		{"short y", func() {
			m.MulVecLanesAddTo([][]float64{make([]float64, 1)}, [][]float64{make([]float64, 3)}, nil)
		}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			tc.run()
		}()
	}
}

// f32Ref is the scalar float32 reference: plain 4-way-unrolled dot per
// row, mirroring Dot's accumulation shape.
func f32Ref(m *Matrix32, y, x, b []float32) {
	for rIdx := 0; rIdx < m.Rows; rIdx++ {
		row := m.Row(rIdx)
		s := Dot32(row, x)
		if b != nil {
			s += b[rIdx]
		}
		y[rIdx] = s
	}
}

// TestF32LanesMatchSingle pins the float32 multi-lane kernel to the
// single-lane float32 path, lane by lane, bit for bit. (The float32
// lane is not bit-identical to float64 — that gap is certified by
// quant.Float32Lane — but within float32 the lanes must agree.)
func TestF32LanesMatchSingle(t *testing.T) {
	r := rng.New(79)
	for _, sh := range laneShapes {
		m64 := RandomMatrix(r, sh.rows, sh.cols, 1.5)
		m := ToMatrix32(m64)
		b64 := make([]float64, sh.rows)
		r.Floats(b64, -1, 1)
		b := ToFloat32(b64)
		for lanes := 1; lanes <= 5; lanes++ {
			xs := make([][]float32, lanes)
			ys := make([][]float32, lanes)
			for k := range xs {
				x64 := make([]float64, sh.cols)
				r.Floats(x64, -2, 2)
				xs[k] = ToFloat32(x64)
				ys[k] = make([]float32, sh.rows)
			}
			m.MulVecLanesAddTo(ys, xs, b)
			want := make([]float32, sh.rows)
			for k := range xs {
				f32Ref(m, want, xs[k], b)
				for j := range want {
					if ys[k][j] != want[j] {
						t.Fatalf("f32 %dx%d lanes=%d lane %d row %d: %v != %v",
							sh.rows, sh.cols, lanes, k, j, ys[k][j], want[j])
					}
				}
				m.MulVecAddTo(want, xs[k], b)
				for j := range want {
					if ys[k][j] != want[j] {
						t.Fatalf("f32 MulVecAddTo %dx%d lane %d row %d: %v != %v",
							sh.rows, sh.cols, k, j, ys[k][j], want[j])
					}
				}
			}
		}
	}
}

// TestFloat32Converters round-trips the slice converters.
func TestFloat32Converters(t *testing.T) {
	xs := []float64{0.5, -1.25, 3, 0}
	f := ToFloat32(xs)
	back := ToFloat64(f)
	for i := range xs {
		if back[i] != xs[i] { // all exactly representable
			t.Fatalf("round trip [%d]: %v != %v", i, back[i], xs[i])
		}
	}
	m := ToMatrix32(FromRows([][]float64{{1, 2}, {3, 4}}))
	if m.At(1, 0) != 3 {
		t.Fatalf("ToMatrix32 At(1,0) = %v", m.At(1, 0))
	}
}
