package tensor

import (
	"runtime"
	"testing"

	"repro/internal/rng"
)

// dispatchFixture returns a matrix past the 1<<15 parallel threshold
// plus operands for every matvec kernel, and a run function exercising
// all three in one shot.
func dispatchFixture() (run func(), sink *float64) {
	r := rng.New(7)
	m := RandomMatrix(r, 256, 256, 1) // 65536 elements >= 1<<15
	x1 := make([]float64, 256)
	x2 := make([]float64, 256)
	b := make([]float64, 256)
	r.Floats(x1, -1, 1)
	r.Floats(x2, -1, 1)
	r.Floats(b, -1, 1)
	y1 := make([]float64, 256)
	y2 := make([]float64, 256)
	const lanes = 4
	xs := make([][]float64, lanes)
	ys := make([][]float64, lanes)
	for k := range xs {
		xs[k] = make([]float64, 256)
		ys[k] = make([]float64, 256)
		r.Floats(xs[k], -1, 1)
	}
	var s float64
	return func() {
		m.MulVecAddTo(y1, x1, b)
		m.MulVec2AddTo(y1, x1, y2, x2, b)
		m.MulVecLanesAddTo(ys, xs, b)
		s += y1[0] + y2[0] + ys[0][0]
	}, &s
}

// TestParallelMatvecSteadyStateAllocs is the regression test for the 4
// allocs/op BENCH_9 measured on the lowered dense path: above the
// parallel threshold each matvec used to allocate its dispatch closure
// (and, under real parallelism, the per-call goroutine state). The
// pooled dispatch must make the steady state allocation-free.
// AllocsPerRun pins GOMAXPROCS to 1, which exercises the pooled
// dispatch structs on the serial path.
func TestParallelMatvecSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-instrumented sync.Pool allocates on Get")
	}
	run, sink := dispatchFixture()
	for i := 0; i < 10; i++ {
		run() // warm the dispatch pool
	}
	if allocs := testing.AllocsPerRun(100, run); allocs != 0 {
		t.Fatalf("parallel matvec steady state allocates %.1f/op, want 0", allocs)
	}
	_ = *sink
}

// TestParallelMatvecDispatchAllocsParallel covers the path AllocsPerRun
// cannot (it pins GOMAXPROCS to 1): with real helper workers enlisted,
// the persistent-worker dispatch must still be allocation-free per
// call. Measured by Mallocs delta because the goroutine hand-off happens
// on other Ps.
func TestParallelMatvecDispatchAllocsParallel(t *testing.T) {
	if raceEnabled {
		t.Skip("race-instrumented sync.Pool allocates on Get")
	}
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	run, sink := dispatchFixture()
	for i := 0; i < 50; i++ {
		run() // boot the persistent workers, warm every pool shard
	}
	const iters = 200
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < iters; i++ {
		run()
	}
	runtime.ReadMemStats(&after)
	perOp := float64(after.Mallocs-before.Mallocs) / iters
	// Allow a whisker of slack for pool-shard misses when the runtime
	// migrates goroutines between Ps mid-measurement.
	if perOp > 0.5 {
		t.Fatalf("parallel matvec dispatch allocates %.2f/op under GOMAXPROCS=4, want ~0", perOp)
	}
	_ = *sink
}
