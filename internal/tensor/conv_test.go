package tensor

import (
	"testing"

	"repro/internal/rng"
)

// denseRowFor materialises the virtual dense row a ConvAcc accumulates:
// width w, kernel k placed at columns off..off+len(k)-1.
func denseRowFor(w int, k []float64, off int) []float64 {
	row := make([]float64, w)
	copy(row[off:], k)
	return row
}

// TestConvAccMatchesDotBitExact sweeps widths, kernel sizes and offsets
// (including segments straddling the w&^3 cleanup cut) and requires the
// sparse accumulation to equal Dot on the lowered dense row bit for bit.
func TestConvAccMatchesDotBitExact(t *testing.T) {
	r := rng.New(1)
	for _, w := range []int{1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33} {
		x := make([]float64, w)
		r.Floats(x, -1, 1)
		for klen := 1; klen <= w; klen++ {
			k := make([]float64, klen)
			r.Floats(k, -1, 1)
			for off := 0; off+klen <= w; off++ {
				acc := NewConvAcc(w)
				acc.Add(k, x, off)
				got := acc.Sum()
				want := Dot(denseRowFor(w, k, off), x)
				if got != want {
					t.Fatalf("w=%d klen=%d off=%d: sparse %v != dense %v", w, klen, off, got, want)
				}
			}
		}
	}
}

// TestConvAccMultiSegment covers the 2-D layout: several disjoint
// ascending segments forming one virtual row.
func TestConvAccMultiSegment(t *testing.T) {
	r := rng.New(2)
	const w = 29
	x := make([]float64, w)
	r.Floats(x, -1, 1)
	k1 := make([]float64, 3)
	k2 := make([]float64, 3)
	k3 := make([]float64, 4)
	r.Floats(k1, -1, 1)
	r.Floats(k2, -1, 1)
	r.Floats(k3, -1, 1)

	acc := NewConvAcc(w)
	acc.Add(k1, x, 2)
	acc.Add(k2, x, 11)
	acc.Add(k3, x, 25) // straddles the cut (28) tail
	got := acc.Sum()

	row := make([]float64, w)
	copy(row[2:], k1)
	copy(row[11:], k2)
	copy(row[25:], k3)
	want := Dot(row, x)
	if got != want {
		t.Fatalf("multi-segment sparse %v != dense %v", got, want)
	}

	// Reset reuses the accumulator for the next row.
	acc.Reset()
	acc.Add(k2, x, 0)
	if acc.Sum() != Dot(denseRowFor(w, k2, 0), x) {
		t.Fatal("Reset did not clear the lanes")
	}
}

// TestConvAcc2MatchesTwoPasses requires the fused accumulator to equal
// two independent single passes bit for bit.
func TestConvAcc2MatchesTwoPasses(t *testing.T) {
	r := rng.New(3)
	for _, w := range []int{4, 9, 16, 21} {
		x1 := make([]float64, w)
		x2 := make([]float64, w)
		r.Floats(x1, -1, 1)
		r.Floats(x2, -1, 1)
		k := make([]float64, 5)
		if w < 5 {
			k = k[:w]
		}
		r.Floats(k, -1, 1)
		for off := 0; off+len(k) <= w; off++ {
			fused := NewConvAcc2(w)
			fused.Add(k, x1, x2, off)
			g1, g2 := fused.Sums()

			a := NewConvAcc(w)
			a.Add(k, x1, off)
			b := NewConvAcc(w)
			b.Add(k, x2, off)
			if g1 != a.Sum() || g2 != b.Sum() {
				t.Fatalf("w=%d off=%d: fused (%v,%v) != single (%v,%v)", w, off, g1, g2, a.Sum(), b.Sum())
			}
		}
	}
}

// TestConvAccAllocs pins the accumulators as allocation-free.
func TestConvAccAllocs(t *testing.T) {
	x := make([]float64, 16)
	k := []float64{1, 2, 3}
	allocs := testing.AllocsPerRun(100, func() {
		acc := NewConvAcc(16)
		acc.Add(k, x, 4)
		_ = acc.Sum()
		fused := NewConvAcc2(16)
		fused.Add(k, x, x, 4)
		fused.Sums()
	})
	if allocs != 0 {
		t.Fatalf("ConvAcc allocates %v per run", allocs)
	}
}
