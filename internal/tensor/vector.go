// Package tensor implements the dense linear algebra needed by the neural
// substrate: vectors, row-major matrices, and cache-blocked, goroutine
// parallel matrix kernels. It is a deliberately small BLAS-like core built
// on the standard library only; float64 throughout.
package tensor

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b. It panics if lengths differ.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	b = b[:len(a)] // bounds-check elimination hint
	// Four-way unrolled accumulation: better ILP, and the split
	// accumulators reduce sequential rounding dependence.
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return s0 + s1 + s2 + s3
}

// Axpy computes y += alpha*x in place. It panics if lengths differ.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("tensor: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	y = y[:len(x)] // bounds-check elimination hint
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// AddConst adds c to every element of x in place.
func AddConst(c float64, x []float64) {
	for i := range x {
		x[i] += c
	}
}

// Add computes dst = a + b elementwise. dst may alias a or b.
func Add(dst, a, b []float64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("tensor: Add length mismatch")
	}
	for i := range a {
		dst[i] = a[i] + b[i]
	}
}

// Sub computes dst = a - b elementwise. dst may alias a or b.
func Sub(dst, a, b []float64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("tensor: Sub length mismatch")
	}
	for i := range a {
		dst[i] = a[i] - b[i]
	}
}

// Hadamard computes dst = a .* b elementwise. dst may alias a or b.
func Hadamard(dst, a, b []float64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("tensor: Hadamard length mismatch")
	}
	for i := range a {
		dst[i] = a[i] * b[i]
	}
}

// MaxAbs returns max_i |x[i]|, or 0 for an empty slice.
func MaxAbs(x []float64) float64 {
	m := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Sum returns the sum of x.
func Sum(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	return math.Sqrt(Dot(x, x))
}

// Clone returns a copy of x.
func Clone(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Apply replaces each x[i] with f(x[i]) in place.
func Apply(x []float64, f func(float64) float64) {
	for i := range x {
		x[i] = f(x[i])
	}
}

// EqualApprox reports whether a and b are equal within tol elementwise.
func EqualApprox(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

// ArgMaxAbs returns the index of the element with the largest absolute
// value, or -1 for an empty slice. Ties resolve to the lowest index.
func ArgMaxAbs(x []float64) int {
	best, bestV := -1, -1.0
	for i, v := range x {
		if a := math.Abs(v); a > bestV {
			best, bestV = i, a
		}
	}
	return best
}

// Linspace returns n evenly spaced points from lo to hi inclusive.
// n must be >= 2.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("tensor: Linspace needs n >= 2")
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}

// Logspace returns n logarithmically spaced points from lo to hi inclusive
// (both must be positive).
func Logspace(lo, hi float64, n int) []float64 {
	if lo <= 0 || hi <= 0 {
		panic("tensor: Logspace needs positive bounds")
	}
	pts := Linspace(math.Log(lo), math.Log(hi), n)
	Apply(pts, math.Exp)
	return pts
}
