package tensor

import (
	"fmt"

	"repro/internal/parallel"
)

// CSR is a compressed-sparse-row gather view over a virtual column
// concatenation: row r owns edges Ptr[r]..Ptr[r+1], and edge e reads
// source value number Idx[e] of source block Lvl[e] with weight W[e].
// Col[e] is the edge's column in the virtual concatenation of the
// source blocks and Cut its four-lane boundary (concat width &^ 3):
// columns below Cut feed accumulator Col&3, the tail feeds accumulator
// 0, exactly the dense kernel's (Dot's) four-way order on that
// concatenation. The sparse-DAG engine builds these views zero-copy
// over its per-level edge arrays.
type CSR struct {
	Rows int
	Ptr  []int
	Lvl  []int // nil for single-block views (GatherLanesFlat)
	Idx  []int
	Col  []int
	W    []float64
	Cut  int
}

// csrParallelMin is the edges×lanes work floor past which the lanes
// gather distributes row ranges over goroutines — same order as the
// dense kernels' 1<<15 element threshold.
const csrParallelMin = 1 << 15

// GatherLanesAddTo computes, for every lane k,
//
//	ys[k][r] = Σ_e W[e]·srcs[k][Lvl[e]][Idx[e]]  (+ b[r])
//
// in one sweep over the edge list: each row's indices and weights are
// loaded once and applied across the lanes in paired-accumulator
// groups, mirroring MulVecLanesAddTo's register discipline (two lanes x
// four accumulators fill the vector registers without spilling). Per
// (row, lane) the accumulation replays the four-way order keyed by
// Col/Cut, so lane k is bit-identical to a scalar gather of the same
// row over srcs[k]. b may be nil. Outputs must not alias any source.
func (c *CSR) GatherLanesAddTo(ys [][]float64, srcs [][][]float64, b []float64) {
	if len(ys) != len(srcs) {
		panic(fmt.Sprintf("tensor: GatherLanesAddTo %d outputs for %d lanes", len(ys), len(srcs)))
	}
	for k := range ys {
		if len(ys[k]) != c.Rows {
			panic(fmt.Sprintf("tensor: GatherLanesAddTo lane %d output length %d, want %d", k, len(ys[k]), c.Rows))
		}
	}
	if b != nil && len(b) != c.Rows {
		panic("tensor: GatherLanesAddTo bias length mismatch")
	}
	if len(srcs) == 0 {
		return
	}
	if len(c.W)*len(srcs) >= csrParallelMin {
		d := mvPool.Get().(*mvDispatch)
		d.kind, d.csr, d.ys, d.srcs, d.b = mvCSRLanes, c, ys, srcs, b
		parallel.ForChunked(c.Rows, 16, d.run)
		d.release()
		return
	}
	c.gatherLanesRange(ys, srcs, b, 0, c.Rows)
}

// gatherLanesRange is the serial core of GatherLanesAddTo: rows outer,
// lanes inner in pairs, so a row's edge list (Idx, Col, W) is streamed
// once per pair while both lanes' gathers ride the same loads.
func (c *CSR) gatherLanesRange(ys [][]float64, srcs [][][]float64, b []float64, lo, hi int) {
	cut := c.Cut
	for r := lo; r < hi; r++ {
		start, end := c.Ptr[r], c.Ptr[r+1]
		k := 0
		for ; k+2 <= len(srcs); k += 2 {
			sa, sb := srcs[k], srcs[k+1]
			var a0, a1, a2, a3 float64
			var b0, b1, b2, b3 float64
			for e := start; e < end; e++ {
				w := c.W[e]
				lvl, idx := c.Lvl[e], c.Idx[e]
				va := w * sa[lvl][idx]
				vb := w * sb[lvl][idx]
				if col := c.Col[e]; col < cut {
					switch col & 3 {
					case 0:
						a0 += va
						b0 += vb
					case 1:
						a1 += va
						b1 += vb
					case 2:
						a2 += va
						b2 += vb
					case 3:
						a3 += va
						b3 += vb
					}
				} else {
					a0 += va
					b0 += vb
				}
			}
			ys[k][r] = a0 + a1 + a2 + a3
			ys[k+1][r] = b0 + b1 + b2 + b3
		}
		if k < len(srcs) {
			s := srcs[k]
			var a0, a1, a2, a3 float64
			for e := start; e < end; e++ {
				v := c.W[e] * s[c.Lvl[e]][c.Idx[e]]
				if col := c.Col[e]; col < cut {
					switch col & 3 {
					case 0:
						a0 += v
					case 1:
						a1 += v
					case 2:
						a2 += v
					case 3:
						a3 += v
					}
				} else {
					a0 += v
				}
			}
			ys[k][r] = a0 + a1 + a2 + a3
		}
		if b != nil {
			for k := range ys {
				ys[k][r] += b[r]
			}
		}
	}
}

// GatherLanesFlatAddTo is GatherLanesAddTo for a single-block view:
// every edge reads xs[k][Idx[e]] and its accumulator column is Idx[e]
// itself (Lvl and Col are ignored and may be nil). This is the
// prev-level-only fast path — the sparse analogue of MulVecLanesAddTo —
// and each lane is bit-identical to the single-lane flat gather.
func (c *CSR) GatherLanesFlatAddTo(ys, xs [][]float64, b []float64) {
	if len(ys) != len(xs) {
		panic(fmt.Sprintf("tensor: GatherLanesFlatAddTo %d outputs for %d lanes", len(ys), len(xs)))
	}
	for k := range ys {
		if len(ys[k]) != c.Rows {
			panic(fmt.Sprintf("tensor: GatherLanesFlatAddTo lane %d output length %d, want %d", k, len(ys[k]), c.Rows))
		}
	}
	if b != nil && len(b) != c.Rows {
		panic("tensor: GatherLanesFlatAddTo bias length mismatch")
	}
	if len(xs) == 0 {
		return
	}
	if len(c.W)*len(xs) >= csrParallelMin {
		d := mvPool.Get().(*mvDispatch)
		d.kind, d.csr, d.ys, d.xs, d.b = mvCSRFlatLanes, c, ys, xs, b
		parallel.ForChunked(c.Rows, 16, d.run)
		d.release()
		return
	}
	c.gatherLanesFlatRange(ys, xs, b, 0, c.Rows)
}

// gatherLanesFlatRange is the serial core of GatherLanesFlatAddTo.
func (c *CSR) gatherLanesFlatRange(ys, xs [][]float64, b []float64, lo, hi int) {
	cut := c.Cut
	for r := lo; r < hi; r++ {
		start, end := c.Ptr[r], c.Ptr[r+1]
		k := 0
		for ; k+2 <= len(xs); k += 2 {
			xa, xb := xs[k], xs[k+1]
			var a0, a1, a2, a3 float64
			var b0, b1, b2, b3 float64
			for e := start; e < end; e++ {
				w := c.W[e]
				idx := c.Idx[e]
				va := w * xa[idx]
				vb := w * xb[idx]
				if idx < cut {
					switch idx & 3 {
					case 0:
						a0 += va
						b0 += vb
					case 1:
						a1 += va
						b1 += vb
					case 2:
						a2 += va
						b2 += vb
					case 3:
						a3 += va
						b3 += vb
					}
				} else {
					a0 += va
					b0 += vb
				}
			}
			ys[k][r] = a0 + a1 + a2 + a3
			ys[k+1][r] = b0 + b1 + b2 + b3
		}
		if k < len(xs) {
			x := xs[k]
			var a0, a1, a2, a3 float64
			for e := start; e < end; e++ {
				v := c.W[e] * x[c.Idx[e]]
				if idx := c.Idx[e]; idx < cut {
					switch idx & 3 {
					case 0:
						a0 += v
					case 1:
						a1 += v
					case 2:
						a2 += v
					case 3:
						a3 += v
					}
				} else {
					a0 += v
				}
			}
			ys[k][r] = a0 + a1 + a2 + a3
		}
		if b != nil {
			for k := range ys {
				ys[k][r] += b[r]
			}
		}
	}
}
