package tensor

import "sync"

// Parallel-dispatch pooling for the matvec kernels. Handing
// parallel.ForChunked a fresh closure per call would heap-allocate the
// closure and its captures on every large matvec — the 4 allocs/op
// BENCH_9 measured on the lowered dense path. Instead each kernel binds
// its operands into a pooled dispatch struct whose range closure is
// built once per pooled instance (capturing only the struct pointer),
// so the steady state allocates nothing.

const (
	mvSingle       = iota // mulVecAddRange
	mvPair                // mulVec2AddRange
	mvLanes               // mulVecLanesAddRange
	mvCSRLanes            // gatherLanesRange
	mvCSRFlatLanes        // gatherLanesFlatRange
)

// mvDispatch rebinds one parallel matvec's operands per call.
type mvDispatch struct {
	kind   int
	m      *Matrix
	y1, x1 []float64
	y2, x2 []float64
	b      []float64
	ys, xs [][]float64
	csr    *CSR
	srcs   [][][]float64
	run    func(lo, hi int)
}

var mvPool = sync.Pool{New: func() any {
	d := new(mvDispatch)
	d.run = func(lo, hi int) {
		switch d.kind {
		case mvSingle:
			d.m.mulVecAddRange(d.y1, d.x1, d.b, lo, hi)
		case mvPair:
			d.m.mulVec2AddRange(d.y1, d.x1, d.y2, d.x2, d.b, lo, hi)
		case mvLanes:
			d.m.mulVecLanesAddRange(d.ys, d.xs, d.b, lo, hi)
		case mvCSRLanes:
			d.csr.gatherLanesRange(d.ys, d.srcs, d.b, lo, hi)
		case mvCSRFlatLanes:
			d.csr.gatherLanesFlatRange(d.ys, d.xs, d.b, lo, hi)
		}
	}
	return d
}}

// release clears every operand reference (so pooled instances never pin
// caller memory) and returns the dispatch to the pool.
func (d *mvDispatch) release() {
	d.m, d.csr = nil, nil
	d.y1, d.x1, d.y2, d.x2, d.b = nil, nil, nil, nil, nil
	d.ys, d.xs, d.srcs = nil, nil, nil
	mvPool.Put(d)
}
