package tensor

// Convolution kernels: sparse-row dot products that replay the EXACT
// accumulation order of Dot / MulVecAddTo over a virtual dense row.
//
// The dense matvec kernel accumulates a width-w row into four lanes —
// column c of the unrolled body lands in lane c mod 4, and the final
// w mod 4 columns (the cleanup loop) all land in lane 0 — then reduces
// lane0+lane1+lane2+lane3. Zero entries contribute exact zeros, so a
// convolutional layer (whose lowered dense row is zero outside the
// receptive field) can skip them entirely: replaying only the nonzero
// terms into the same lanes in ascending column order reproduces the
// dense result bit for bit. That identity is what lets the native conv
// forward pass stay bit-identical to evaluating the Lower/Lower2D
// network while doing R(l) multiplies per neuron instead of N_{l-1}.

// ConvAcc accumulates one virtual dense row of width w from contiguous
// nonzero segments. Segments must be added in ascending column order
// (which conv layers do naturally: channel-major, then window rows).
// The zero value is unusable; construct with NewConvAcc.
type ConvAcc struct {
	lanes [4]float64
	// cut is the first cleanup column, w &^ 3: columns at or beyond it
	// fold into lane 0, exactly like Dot's remainder loop.
	cut int
}

// NewConvAcc returns an accumulator for rows of width w.
func NewConvAcc(w int) ConvAcc { return ConvAcc{cut: w &^ 3} }

// Reset clears the lanes for the next row (the width is retained).
func (a *ConvAcc) Reset() { a.lanes = [4]float64{} }

// Add accumulates k[i]·x[off+i] for every kernel value, at absolute
// columns off..off+len(k)-1 of the virtual row.
func (a *ConvAcc) Add(k, x []float64, off int) {
	x = x[off : off+len(k)]
	if off+len(k) <= a.cut {
		// Entire segment inside the unrolled body: branch-free lanes.
		for i, kv := range k {
			a.lanes[(off+i)&3] += kv * x[i]
		}
		return
	}
	for i, kv := range k {
		if c := off + i; c < a.cut {
			a.lanes[c&3] += kv * x[i]
		} else {
			a.lanes[0] += kv * x[i]
		}
	}
}

// Sum reduces the lanes in Dot's order.
func (a *ConvAcc) Sum() float64 {
	return a.lanes[0] + a.lanes[1] + a.lanes[2] + a.lanes[3]
}

// ConvAcc2 is ConvAcc over two input vectors sharing the kernel loads —
// the sparse counterpart of MulVec2AddTo's fused clean+faulted sweep.
// Each output is bit-identical to a standalone ConvAcc pass.
type ConvAcc2 struct {
	l1, l2 [4]float64
	cut    int
}

// NewConvAcc2 returns a fused accumulator for rows of width w.
func NewConvAcc2(w int) ConvAcc2 { return ConvAcc2{cut: w &^ 3} }

// Reset clears both lane sets.
func (a *ConvAcc2) Reset() {
	a.l1 = [4]float64{}
	a.l2 = [4]float64{}
}

// Add accumulates k[i]·x1[off+i] and k[i]·x2[off+i] in one sweep.
func (a *ConvAcc2) Add(k, x1, x2 []float64, off int) {
	x1 = x1[off : off+len(k)]
	x2 = x2[off : off+len(k)]
	if off+len(k) <= a.cut {
		for i, kv := range k {
			lane := (off + i) & 3
			a.l1[lane] += kv * x1[i]
			a.l2[lane] += kv * x2[i]
		}
		return
	}
	for i, kv := range k {
		lane := 0
		if c := off + i; c < a.cut {
			lane = c & 3
		}
		a.l1[lane] += kv * x1[i]
		a.l2[lane] += kv * x2[i]
	}
}

// Sums reduces both lane sets.
func (a *ConvAcc2) Sums() (s1, s2 float64) {
	return a.l1[0] + a.l1[1] + a.l1[2] + a.l1[3],
		a.l2[0] + a.l2[1] + a.l2[2] + a.l2[3]
}
