package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestMatrixAtSet(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 || m.Data[5] != 5 {
		t.Fatal("row-major layout broken")
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatal("FromRows wrong layout")
	}
}

func TestFromRowsEmpty(t *testing.T) {
	m := FromRows(nil)
	if m.Rows != 0 || m.Cols != 0 {
		t.Fatal("FromRows(nil) not empty")
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := rng.New(2)
	m := RandomMatrix(r, 7, 5, 1)
	tt := m.Transpose().Transpose()
	if !m.EqualApprox(tt, 0) {
		t.Fatal("transpose twice differs from original")
	}
}

func TestTransposeValues(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatalf("Transpose wrong: %v", tr)
	}
}

func TestMulVecSmall(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	y := m.MulVec([]float64{1, 1})
	if !EqualApprox(y, []float64{3, 7, 11}, 1e-12) {
		t.Fatalf("MulVec = %v", y)
	}
}

func TestMulVecLargeParallelPath(t *testing.T) {
	r := rng.New(3)
	m := RandomMatrix(r, 300, 200, 1) // 60000 elements: parallel path
	x := make([]float64, 200)
	r.Floats(x, -1, 1)
	y := m.MulVec(x)
	for i := 0; i < m.Rows; i++ {
		want := 0.0
		for j := 0; j < m.Cols; j++ {
			want += m.At(i, j) * x[j]
		}
		if !almostEqual(y[i], want, 1e-9) {
			t.Fatalf("row %d: got %v want %v", i, y[i], want)
		}
	}
}

func TestMulVecT(t *testing.T) {
	r := rng.New(4)
	m := RandomMatrix(r, 13, 9, 1)
	x := make([]float64, 13)
	r.Floats(x, -1, 1)
	got := m.MulVecT(x)
	want := m.Transpose().MulVec(x)
	if !EqualApprox(got, want, 1e-10) {
		t.Fatalf("MulVecT %v != transpose MulVec %v", got, want)
	}
}

func TestAddOuterScaled(t *testing.T) {
	m := NewMatrix(2, 2)
	m.AddOuterScaled(2, []float64{1, 3}, []float64{5, 7})
	want := FromRows([][]float64{{10, 14}, {30, 42}})
	if !m.EqualApprox(want, 1e-12) {
		t.Fatalf("AddOuterScaled = %v", m)
	}
}

func TestMatMulMatchesNaive(t *testing.T) {
	r := rng.New(5)
	dims := [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 5, 5}, {17, 9, 13}, {70, 65, 80}, {130, 70, 129}}
	for _, d := range dims {
		a := RandomMatrix(r, d[0], d[1], 1)
		b := RandomMatrix(r, d[1], d[2], 1)
		fast := MatMul(a, b)
		slow := matMulNaive(a, b)
		if !fast.EqualApprox(slow, 1e-9) {
			t.Fatalf("MatMul %v disagrees with naive", d)
		}
	}
}

func TestMatMulDimPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(NewMatrix(2, 3), NewMatrix(4, 2))
}

func TestMatMulIdentity(t *testing.T) {
	r := rng.New(6)
	a := RandomMatrix(r, 8, 8, 1)
	id := NewMatrix(8, 8)
	for i := 0; i < 8; i++ {
		id.Set(i, i, 1)
	}
	if !MatMul(a, id).EqualApprox(a, 1e-12) {
		t.Fatal("A*I != A")
	}
	if !MatMul(id, a).EqualApprox(a, 1e-12) {
		t.Fatal("I*A != A")
	}
}

func TestMatMulAssociativityProperty(t *testing.T) {
	r := rng.New(8)
	f := func(x, y, z uint8) bool {
		n1, n2, n3, n4 := int(x%6)+1, int(y%6)+1, int(z%6)+1, int(x%5)+1
		a := RandomMatrix(r, n1, n2, 1)
		b := RandomMatrix(r, n2, n3, 1)
		c := RandomMatrix(r, n3, n4, 1)
		left := MatMul(MatMul(a, b), c)
		right := MatMul(a, MatMul(b, c))
		return left.EqualApprox(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulVecConsistencyProperty(t *testing.T) {
	// (A B) x == A (B x)
	r := rng.New(10)
	f := func(x, y, z uint8) bool {
		n1, n2, n3 := int(x%8)+1, int(y%8)+1, int(z%8)+1
		a := RandomMatrix(r, n1, n2, 1)
		b := RandomMatrix(r, n2, n3, 1)
		v := make([]float64, n3)
		r.Floats(v, -1, 1)
		left := MatMul(a, b).MulVec(v)
		right := a.MulVec(b.MulVec(v))
		return EqualApprox(left, right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGlorotBound(t *testing.T) {
	r := rng.New(12)
	m := GlorotMatrix(r, 30, 20)
	bound := math.Sqrt(6.0 / 50.0)
	if m.MaxAbs() > bound {
		t.Fatalf("Glorot entry %v exceeds bound %v", m.MaxAbs(), bound)
	}
	if m.MaxAbs() < bound/10 {
		t.Fatal("Glorot entries suspiciously tiny")
	}
}

func TestCloneApplyScale(t *testing.T) {
	m := FromRows([][]float64{{1, -2}, {3, -4}})
	c := m.Clone()
	c.Apply(math.Abs)
	c.Scale(2)
	if m.At(0, 1) != -2 {
		t.Fatal("Clone aliases")
	}
	if c.At(0, 1) != 4 || c.At(1, 1) != 8 {
		t.Fatalf("Apply/Scale wrong: %v", c)
	}
}

func TestFrobenius(t *testing.T) {
	m := FromRows([][]float64{{3, 0}, {0, 4}})
	if !almostEqual(m.Frobenius(), 5, 1e-12) {
		t.Fatal("Frobenius wrong")
	}
}

func BenchmarkMatMul128(b *testing.B) {
	r := rng.New(1)
	a := RandomMatrix(r, 128, 128, 1)
	c := RandomMatrix(r, 128, 128, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(a, c)
	}
}

func BenchmarkMulVec1024(b *testing.B) {
	r := rng.New(1)
	m := RandomMatrix(r, 1024, 1024, 1)
	x := make([]float64, 1024)
	r.Floats(x, -1, 1)
	y := make([]float64, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVecTo(y, x)
	}
}

// TestMulVecAddToMatchesMulVec checks the fused matvec+bias kernel (and
// its paired-row inner loop) against Dot row by row, bit for bit, across
// odd/even row counts and column tails.
func TestMulVecAddToMatchesMulVec(t *testing.T) {
	r := rng.New(21)
	for _, rows := range []int{1, 2, 3, 8, 17} {
		for _, cols := range []int{1, 3, 4, 7, 16, 65} {
			m := RandomMatrix(r, rows, cols, 1)
			x := make([]float64, cols)
			r.Floats(x, -1, 1)
			b := make([]float64, rows)
			r.Floats(b, -1, 1)
			y := make([]float64, rows)
			m.MulVecAddTo(y, x, nil)
			for i := 0; i < rows; i++ {
				if want := Dot(m.Row(i), x); y[i] != want {
					t.Fatalf("%dx%d row %d: %v != %v", rows, cols, i, y[i], want)
				}
			}
			m.MulVecAddTo(y, x, b)
			for i := 0; i < rows; i++ {
				if want := Dot(m.Row(i), x) + b[i]; y[i] != want {
					t.Fatalf("%dx%d row %d with bias: %v != %v", rows, cols, i, y[i], want)
				}
			}
		}
	}
}

// TestMulVecAddRange checks the row-range variant leaves rows outside the
// range untouched.
func TestMulVecAddRange(t *testing.T) {
	r := rng.New(22)
	m := RandomMatrix(r, 9, 5, 1)
	x := make([]float64, 5)
	r.Floats(x, -1, 1)
	y := make([]float64, 9)
	Fill(y, -7)
	m.MulVecAddRange(y, x, nil, 2, 6)
	for i := 0; i < 9; i++ {
		if i >= 2 && i < 6 {
			if want := Dot(m.Row(i), x); y[i] != want {
				t.Fatalf("row %d: %v != %v", i, y[i], want)
			}
		} else if y[i] != -7 {
			t.Fatalf("row %d outside range was written", i)
		}
	}
}

// TestMulVec2AddTo checks the dual-input fused sweep against two separate
// matvecs, bit for bit.
func TestMulVec2AddTo(t *testing.T) {
	r := rng.New(23)
	for _, cols := range []int{1, 4, 6, 33} {
		m := RandomMatrix(r, 7, cols, 1)
		x1 := make([]float64, cols)
		x2 := make([]float64, cols)
		b := make([]float64, 7)
		r.Floats(x1, -1, 1)
		r.Floats(x2, -1, 1)
		r.Floats(b, -1, 1)
		y1 := make([]float64, 7)
		y2 := make([]float64, 7)
		m.MulVec2AddTo(y1, x1, y2, x2, b)
		for i := 0; i < 7; i++ {
			if y1[i] != Dot(m.Row(i), x1)+b[i] || y2[i] != Dot(m.Row(i), x2)+b[i] {
				t.Fatalf("cols %d row %d differs", cols, i)
			}
		}
	}
}

// TestMatMulTransBInto checks C = A Bᵀ against MatMul with an explicit
// transpose.
func TestMatMulTransBInto(t *testing.T) {
	r := rng.New(24)
	for _, dims := range [][3]int{{3, 4, 5}, {1, 7, 2}, {70, 33, 66}} {
		a := RandomMatrix(r, dims[0], dims[1], 1)
		b := RandomMatrix(r, dims[2], dims[1], 1)
		c := NewMatrix(dims[0], dims[2])
		MatMulTransBInto(c, a, b)
		want := MatMul(a, b.Transpose())
		if !c.EqualApprox(want, 1e-12) {
			t.Fatalf("dims %v: mismatch", dims)
		}
	}
}
