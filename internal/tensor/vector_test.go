package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDotBasic(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotUnrolledMatchesNaive(t *testing.T) {
	r := rng.New(1)
	for n := 0; n < 40; n++ {
		a := make([]float64, n)
		b := make([]float64, n)
		r.Floats(a, -1, 1)
		r.Floats(b, -1, 1)
		naive := 0.0
		for i := range a {
			naive += a[i] * b[i]
		}
		if !almostEqual(Dot(a, b), naive, 1e-12*float64(n+1)) {
			t.Fatalf("n=%d: Dot=%v naive=%v", n, Dot(a, b), naive)
		}
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAxpy(t *testing.T) {
	y := []float64{1, 1, 1}
	Axpy(2, []float64{1, 2, 3}, y)
	want := []float64{3, 5, 7}
	if !EqualApprox(y, want, 0) {
		t.Fatalf("Axpy = %v, want %v", y, want)
	}
}

func TestScaleAddConst(t *testing.T) {
	x := []float64{1, -2}
	Scale(3, x)
	AddConst(1, x)
	if x[0] != 4 || x[1] != -5 {
		t.Fatalf("got %v", x)
	}
}

func TestAddSubHadamard(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	dst := make([]float64, 3)
	Add(dst, a, b)
	if !EqualApprox(dst, []float64{5, 7, 9}, 0) {
		t.Fatalf("Add = %v", dst)
	}
	Sub(dst, a, b)
	if !EqualApprox(dst, []float64{-3, -3, -3}, 0) {
		t.Fatalf("Sub = %v", dst)
	}
	Hadamard(dst, a, b)
	if !EqualApprox(dst, []float64{4, 10, 18}, 0) {
		t.Fatalf("Hadamard = %v", dst)
	}
}

func TestMaxAbs(t *testing.T) {
	if MaxAbs(nil) != 0 {
		t.Fatal("MaxAbs(nil) != 0")
	}
	if MaxAbs([]float64{-3, 2, 1}) != 3 {
		t.Fatal("MaxAbs wrong")
	}
}

func TestSumNorm(t *testing.T) {
	x := []float64{3, 4}
	if Sum(x) != 7 {
		t.Fatal("Sum wrong")
	}
	if !almostEqual(Norm2(x), 5, 1e-12) {
		t.Fatal("Norm2 wrong")
	}
}

func TestCloneIndependent(t *testing.T) {
	x := []float64{1, 2}
	y := Clone(x)
	y[0] = 9
	if x[0] != 1 {
		t.Fatal("Clone aliases input")
	}
}

func TestApplyFill(t *testing.T) {
	x := []float64{1, 4, 9}
	Apply(x, math.Sqrt)
	if !EqualApprox(x, []float64{1, 2, 3}, 1e-12) {
		t.Fatalf("Apply = %v", x)
	}
	Fill(x, 7)
	if !EqualApprox(x, []float64{7, 7, 7}, 0) {
		t.Fatalf("Fill = %v", x)
	}
}

func TestArgMaxAbs(t *testing.T) {
	if ArgMaxAbs(nil) != -1 {
		t.Fatal("empty ArgMaxAbs should be -1")
	}
	if got := ArgMaxAbs([]float64{1, -5, 5, 2}); got != 1 {
		t.Fatalf("ArgMaxAbs = %d, want 1 (first of tie)", got)
	}
}

func TestLinspace(t *testing.T) {
	pts := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	if !EqualApprox(pts, want, 1e-12) {
		t.Fatalf("Linspace = %v", pts)
	}
}

func TestLinspaceEndpoints(t *testing.T) {
	pts := Linspace(-3, 7, 113)
	if pts[0] != -3 || pts[len(pts)-1] != 7 {
		t.Fatalf("Linspace endpoints %v..%v", pts[0], pts[len(pts)-1])
	}
}

func TestLogspace(t *testing.T) {
	pts := Logspace(0.1, 10, 3)
	want := []float64{0.1, 1, 10}
	if !EqualApprox(pts, want, 1e-9) {
		t.Fatalf("Logspace = %v", pts)
	}
}

func TestDotLinearityProperty(t *testing.T) {
	r := rng.New(7)
	f := func(alpha float64, nRaw uint8) bool {
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) || math.Abs(alpha) > 1e6 {
			return true
		}
		n := int(nRaw%32) + 1
		a := make([]float64, n)
		b := make([]float64, n)
		r.Floats(a, -1, 1)
		r.Floats(b, -1, 1)
		scaled := Clone(a)
		Scale(alpha, scaled)
		lhs := Dot(scaled, b)
		rhs := alpha * Dot(a, b)
		return almostEqual(lhs, rhs, 1e-7*(math.Abs(rhs)+1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCauchySchwarzProperty(t *testing.T) {
	r := rng.New(9)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		a := make([]float64, n)
		b := make([]float64, n)
		r.Floats(a, -2, 2)
		r.Floats(b, -2, 2)
		return math.Abs(Dot(a, b)) <= Norm2(a)*Norm2(b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
