package metrics

import (
	"math"
	"strings"
	"testing"
	"unicode/utf8"

	"repro/internal/rng"
)

func TestSupDistance(t *testing.T) {
	f := func(x []float64) float64 { return x[0] }
	g := func(x []float64) float64 { return x[0] * x[0] }
	pts := Grid(1, 101)
	// sup |x - x^2| on [0,1] = 1/4 at x = 1/2.
	got := SupDistance(f, g, pts)
	if math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("SupDistance = %v, want 0.25", got)
	}
}

func TestGridShape(t *testing.T) {
	pts := Grid(2, 3)
	if len(pts) != 9 {
		t.Fatalf("Grid(2,3) has %d points", len(pts))
	}
	seen := map[[2]float64]bool{}
	for _, p := range pts {
		if len(p) != 2 {
			t.Fatal("wrong dimension")
		}
		for _, v := range p {
			if v < 0 || v > 1 {
				t.Fatalf("grid point %v outside [0,1]", v)
			}
		}
		seen[[2]float64{p[0], p[1]}] = true
	}
	if len(seen) != 9 {
		t.Fatal("grid points not distinct")
	}
	if !seen[[2]float64{0, 0}] || !seen[[2]float64{1, 1}] {
		t.Fatal("grid must include corners")
	}
}

func TestGridPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Grid(0, 3) },
		func() { Grid(1, 1) },
		func() { Grid(30, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestRandomPoints(t *testing.T) {
	r := rng.New(1)
	pts := RandomPoints(r, 3, 100)
	if len(pts) != 100 {
		t.Fatal("wrong count")
	}
	for _, p := range pts {
		if len(p) != 3 {
			t.Fatal("wrong dim")
		}
		for _, v := range p {
			if v < 0 || v >= 1 {
				t.Fatalf("point %v outside [0,1)", v)
			}
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.Median != 2.5 {
		t.Fatalf("Summarize = %+v", s)
	}
	want := math.Sqrt(1.25)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Fatalf("Std = %v, want %v", s.Std, want)
	}
	odd := Summarize([]float64{5, 1, 3})
	if odd.Median != 3 {
		t.Fatalf("odd median = %v", odd.Median)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Fatal("empty stats wrong")
	}
}

func TestLogLogSlopeRecoversExponent(t *testing.T) {
	// y = 3 x^2.5 exactly.
	var x, y []float64
	for _, v := range []float64{0.1, 0.5, 1, 2, 7, 20} {
		x = append(x, v)
		y = append(y, 3*math.Pow(v, 2.5))
	}
	got := LogLogSlope(x, y)
	if math.Abs(got-2.5) > 1e-9 {
		t.Fatalf("LogLogSlope = %v, want 2.5", got)
	}
}

func TestLogLogSlopeSkipsNonPositive(t *testing.T) {
	got := LogLogSlope([]float64{0, 1, 2}, []float64{5, 1, 2})
	if math.IsNaN(got) {
		t.Fatal("should fit on the two positive pairs")
	}
	if math.IsNaN(LogLogSlope([]float64{0}, []float64{1})) == false {
		t.Fatal("single usable pair should give NaN")
	}
}

func TestLeastSquares(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 2x + 1
	slope, intercept := LeastSquares(x, y)
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-1) > 1e-12 {
		t.Fatalf("LeastSquares = %v, %v", slope, intercept)
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if p := Pearson(x, []float64{2, 4, 6, 8}); math.Abs(p-1) > 1e-12 {
		t.Fatalf("perfect correlation = %v", p)
	}
	if p := Pearson(x, []float64{8, 6, 4, 2}); math.Abs(p+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation = %v", p)
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("err", 4)
	s.Add(1, 2)
	s.Add(3, 4)
	if s.Len() != 2 || s.X[1] != 3 || s.Y[1] != 4 {
		t.Fatalf("Series = %+v", s)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "k", "err")
	tb.AddNumericRow(1, 0.5)
	tb.AddRow("2", "big")
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== demo ==", "k", "err", "0.5", "big"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// TestTableRenderAlignsMultiByteCells is the regression test for the
// byte-counted width bug: ε' is two runes but four UTF-8 bytes, which
// used to widen its column and shift every subsequent cell.
func TestTableRenderAlignsMultiByteCells(t *testing.T) {
	tb := NewTable("", "ε'", "measured×", "note")
	tb.AddRow("0.1", "12.5", "αβγ")
	tb.AddRow("10000", "3", "plain")
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), sb.String())
	}
	// Every line must have the same on-screen width (in runes), and the
	// separator between columns must start at the same rune offset on
	// every line — byte-based padding breaks both for ε', ×, and αβγ.
	width := utf8.RuneCountInString(lines[0])
	for i, line := range lines {
		if got := utf8.RuneCountInString(line); got != width {
			t.Fatalf("line %d is %d runes wide, want %d:\n%s", i, got, width, sb.String())
		}
	}
	// The rule row's dashes measure each column's width in runes.
	rule := strings.Split(lines[1], "  ")
	if len(rule[0]) != 5 { // "10000" is the widest first-column cell
		t.Fatalf("first rule segment %q, want 5 dashes", rule[0])
	}
	if len(rule[1]) != 9 { // "measured×" is 9 runes
		t.Fatalf("second rule segment %q, want 9 dashes", rule[1])
	}
}

func TestTableArityPanic(t *testing.T) {
	tb := NewTable("x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tb.AddRow("only-one")
}

func TestTableCSVQuoting(t *testing.T) {
	tb := NewTable("", "name", "value")
	tb.AddRow(`with,comma`, `with"quote`)
	var sb strings.Builder
	if err := tb.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"with,comma"`) || !strings.Contains(out, `"with""quote"`) {
		t.Fatalf("CSV quoting wrong:\n%s", out)
	}
}

func TestSeriesTable(t *testing.T) {
	a := NewSeries("a", 2)
	b := NewSeries("b", 2)
	a.Add(1, 10)
	a.Add(2, 20)
	b.Add(1, 30)
	b.Add(2, 40)
	tb := SeriesTable("joint", "x", a, b)
	if len(tb.Rows) != 2 || len(tb.Columns) != 3 {
		t.Fatalf("SeriesTable shape wrong: %+v", tb)
	}
}

func TestSeriesTableMisaligned(t *testing.T) {
	a := NewSeries("a", 1)
	b := NewSeries("b", 1)
	a.Add(1, 10)
	b.Add(2, 30)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on misaligned X")
		}
	}()
	SeriesTable("bad", "x", a, b)
}

func TestFmtNum(t *testing.T) {
	cases := map[float64]string{
		0:          "0",
		math.NaN(): "NaN",
	}
	for v, want := range cases {
		if got := fmtNum(v); got != want {
			t.Fatalf("fmtNum(%v) = %q, want %q", v, got, want)
		}
	}
	if got := fmtNum(123456789); !strings.Contains(got, "e") {
		t.Fatalf("large numbers should use scientific notation: %q", got)
	}
	if got := fmtNum(0.0000123); !strings.Contains(got, "e") {
		t.Fatalf("tiny numbers should use scientific notation: %q", got)
	}
}
