package metrics

import (
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// Table is a titled grid of cells rendered as aligned text, CSV or JSON
// — the form in which the experiment harness reports the rows the
// paper's figures plot. The JSON field names are part of the
// `paperrepro -json` output contract.
type Table struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row of raw cells; it panics on arity mismatch.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("metrics: row has %d cells for %d columns", len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// AddNumericRow formats float64 cells and appends them.
func (t *Table) AddNumericRow(cells ...float64) {
	row := make([]string, len(cells))
	for i, v := range cells {
		row[i] = fmtNum(v)
	}
	t.AddRow(row...)
}

// Render writes the table as aligned text. Column widths and padding
// count runes, not bytes, so multi-byte cells (ε', Σ, ×) line up.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = utf8.RuneCountInString(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if n := utf8.RuneCountInString(cell); n > widths[i] {
				widths[i] = n
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			// fmt's %-*s pads by byte count; pad by runes instead.
			for pad := widths[i] - utf8.RuneCountInString(cell); pad > 0; pad-- {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	rule := make([]string, len(t.Columns))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV (RFC-4180 quoting for cells that need
// it).
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// SeriesTable lays several series with a shared X column out as one table
// (series are sampled at identical X values; it panics otherwise).
func SeriesTable(title, xLabel string, series ...*Series) *Table {
	if len(series) == 0 {
		panic("metrics: SeriesTable with no series")
	}
	cols := []string{xLabel}
	for _, s := range series {
		cols = append(cols, s.Label)
		if s.Len() != series[0].Len() {
			panic("metrics: SeriesTable with unequal series lengths")
		}
	}
	t := NewTable(title, cols...)
	for i := 0; i < series[0].Len(); i++ {
		row := []float64{series[0].X[i]}
		for _, s := range series {
			if s.X[i] != series[0].X[i] {
				panic("metrics: SeriesTable with misaligned X values")
			}
			row = append(row, s.Y[i])
		}
		t.AddNumericRow(row...)
	}
	return t
}
