// Package metrics provides the measurement and reporting utilities shared
// by the experiment harness: sup-norm estimation over input samplers,
// summary statistics, log-log slope fitting (to verify the polynomial
// dependency of the error on the Lipschitz constant, Figure 3), and
// aligned text/CSV rendering of the series and tables the paper reports.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/parallel"
	"repro/internal/rng"
)

// SupDistance estimates sup_x |f(x) - g(x)| over the given sample points,
// evaluated in parallel. With dense samplers this is the empirical ε' of
// Definition 1.
func SupDistance(f, g func([]float64) float64, points [][]float64) float64 {
	return parallel.MaxFloat64(len(points), func(i int) float64 {
		return math.Abs(f(points[i]) - g(points[i]))
	})
}

// Grid returns the regular lattice of perDim^d points covering [0,1]^d
// (endpoints included). It panics if the lattice would exceed 2^22 points.
func Grid(d, perDim int) [][]float64 {
	if d <= 0 || perDim < 2 {
		panic("metrics: Grid requires d >= 1 and perDim >= 2")
	}
	total := 1
	for i := 0; i < d; i++ {
		total *= perDim
		if total > 1<<22 {
			panic("metrics: Grid too large")
		}
	}
	pts := make([][]float64, total)
	for i := range pts {
		p := make([]float64, d)
		idx := i
		for j := 0; j < d; j++ {
			p[j] = float64(idx%perDim) / float64(perDim-1)
			idx /= perDim
		}
		pts[i] = p
	}
	return pts
}

// RandomPoints returns n uniform points in [0,1]^d.
func RandomPoints(r *rng.Rand, d, n int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = make([]float64, d)
		r.Floats(pts[i], 0, 1)
	}
	return pts
}

// Stats summarises a sample.
type Stats struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	Median    float64
}

// Summarize computes summary statistics of xs (zero value for empty).
func Summarize(xs []float64) Stats {
	if len(xs) == 0 {
		return Stats{}
	}
	s := Stats{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, v := range xs {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(len(xs))
	varSum := 0.0
	for _, v := range xs {
		d := v - s.Mean
		varSum += d * d
	}
	s.Std = math.Sqrt(varSum / float64(len(xs)))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// LogLogSlope fits y ≈ a·x^b by least squares on (log x, log y) and
// returns the exponent b. Pairs with non-positive coordinates are
// skipped; it returns NaN with fewer than two usable pairs. Figure 3's
// claim — error polynomial in K — is "LogLogSlope over the K sweep is
// finite and modest" (an exponential dependency would curve upward).
func LogLogSlope(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("metrics: LogLogSlope length mismatch")
	}
	var lx, ly []float64
	for i := range x {
		if x[i] > 0 && y[i] > 0 {
			lx = append(lx, math.Log(x[i]))
			ly = append(ly, math.Log(y[i]))
		}
	}
	if len(lx) < 2 {
		return math.NaN()
	}
	slope, _ := LeastSquares(lx, ly)
	return slope
}

// LeastSquares fits y ≈ slope·x + intercept.
func LeastSquares(x, y []float64) (slope, intercept float64) {
	n := float64(len(x))
	if len(x) != len(y) || len(x) < 2 {
		panic("metrics: LeastSquares needs >= 2 points of equal length")
	}
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN(), math.NaN()
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept
}

// Pearson returns the linear correlation coefficient of x and y.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		panic("metrics: Pearson needs >= 2 points of equal length")
	}
	sx := Summarize(x)
	sy := Summarize(y)
	if sx.Std == 0 || sy.Std == 0 {
		return math.NaN()
	}
	cov := 0.0
	for i := range x {
		cov += (x[i] - sx.Mean) * (y[i] - sy.Mean)
	}
	cov /= float64(len(x))
	return cov / (sx.Std * sy.Std)
}

// Series is one named curve of an experiment figure.
type Series struct {
	Label string
	X, Y  []float64
}

// NewSeries pre-sizes a series.
func NewSeries(label string, capacity int) *Series {
	return &Series{Label: label, X: make([]float64, 0, capacity), Y: make([]float64, 0, capacity)}
}

// Add appends one point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// FormatNum renders a float the way tables do (compact, scientific
// notation for extreme magnitudes).
func FormatNum(v float64) string { return fmtNum(v) }

func fmtNum(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e5 || math.Abs(v) < 1e-3:
		return fmt.Sprintf("%.4e", v)
	default:
		return fmt.Sprintf("%.5g", v)
	}
}
