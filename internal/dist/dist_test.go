package dist

import (
	"math"
	"strings"
	"testing"

	"repro/internal/activation"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/nn"
	"repro/internal/rng"
)

func testNet(seed uint64, widths []int) *nn.Network {
	return nn.NewRandom(rng.New(seed), nn.Config{
		InputDim: 2,
		Widths:   widths,
		Act:      activation.NewSigmoid(1),
	}, 0.6)
}

// TestRunAgreesWithInjectorCrash pins the concurrent runtime against the
// synchronous engine for crash failures, where the two semantics
// coincide exactly.
func TestRunAgreesWithInjectorCrash(t *testing.T) {
	net := testNet(3, []int{6, 5})
	r := rng.New(5)
	for trial := 0; trial < 5; trial++ {
		p := fault.RandomNeuronPlan(r, net, []int{2, 1})
		x := []float64{r.Float64(), r.Float64()}
		res, err := Run(net, p, nil, SynapseDeviation{}, x)
		if err != nil {
			t.Fatal(err)
		}
		want := fault.Forward(net, p, fault.Crash{}, x)
		if math.Abs(res.Output-want) > 1e-12 {
			t.Fatalf("trial %d: concurrent %v != injector %v", trial, res.Output, want)
		}
	}
}

// TestRunInjectorStrategyNominalFree checks that any nominal-free
// registry model driven through InjectorStrategy agrees exactly with
// the synchronous engine — the runtime's computed value is never read,
// so the missing clean-execution oracle cannot matter.
func TestRunInjectorStrategyNominalFree(t *testing.T) {
	net := testNet(7, []int{5, 4})
	r := rng.New(11)
	p := fault.RandomNeuronPlan(r, net, []int{1, 1})
	x := []float64{0.3, 0.8}
	for _, inj := range []fault.Injector{
		fault.StuckAt{V: 0.45},
		fault.Byzantine{C: 0.9, Sem: core.TransmissionCap},
	} {
		res, err := Run(net, p, InjectorStrategy{Inj: inj}, SynapseDeviation{}, x)
		if err != nil {
			t.Fatal(err)
		}
		want := fault.Forward(net, p, inj, x)
		if math.Abs(res.Output-want) > 1e-12 {
			t.Fatalf("%T: concurrent %v != injector %v", inj, res.Output, want)
		}
	}
}

// TestStreamModelRegistry runs a schedule mixing five registry models
// and checks every round's measured error against its heterogeneous
// certificate.
func TestStreamModelRegistry(t *testing.T) {
	net := testNet(13, []int{7, 6})
	schedule := []FailureEvent{
		{Round: 0, Neuron: fault.NeuronFault{Layer: 1, Index: 0}},                    // legacy crash
		{Round: 1, Neuron: fault.NeuronFault{Layer: 2, Index: 1}, Byzantine: true},   // legacy byzantine
		{Round: 2, Neuron: fault.NeuronFault{Layer: 1, Index: 3}, Model: "stuck"},    // latched
		{Round: 3, Neuron: fault.NeuronFault{Layer: 2, Index: 4}, Model: "noise"},    // stochastic
		{Round: 4, Neuron: fault.NeuronFault{Layer: 1, Index: 5}, Model: "signflip"}, // polarity
	}
	r := rng.New(17)
	inputs := make([][]float64, 8)
	for i := range inputs {
		inputs[i] = []float64{r.Float64(), r.Float64()}
	}
	results, err := Stream(net, inputs, schedule, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(inputs) {
		t.Fatalf("%d results for %d rounds", len(results), len(inputs))
	}
	for _, res := range results {
		if res.Err > res.Certified*(1+1e-9) {
			t.Fatalf("round %d: error %v above certificate %v", res.Round, res.Err, res.Certified)
		}
		if res.Round >= 4 && res.Faulty != 5 {
			t.Fatalf("round %d: %d faulty, want 5", res.Round, res.Faulty)
		}
	}
	// The last round certifies strictly more damage potential than the
	// first (certificates are NOT monotone in general — each new fault
	// also shrinks the (N-f) exclusion factors — but over this schedule
	// the accumulated caps dominate).
	if results[len(results)-1].Certified <= results[0].Certified {
		t.Fatalf("certificate did not grow over the schedule: %v -> %v",
			results[0].Certified, results[len(results)-1].Certified)
	}
}

// TestStreamDeterministic pins reproducibility: the same schedule with
// stochastic models yields identical streams on repeated runs (the
// internal rng is seeded deterministically).
func TestStreamDeterministic(t *testing.T) {
	net := testNet(19, []int{5})
	schedule := []FailureEvent{
		{Round: 0, Neuron: fault.NeuronFault{Layer: 1, Index: 1}, Model: "intermittent"},
		{Round: 1, Neuron: fault.NeuronFault{Layer: 1, Index: 3}, Model: "noise"},
	}
	inputs := [][]float64{{0.2, 0.4}, {0.6, 0.1}, {0.9, 0.9}}
	a, err := Stream(net, inputs, schedule, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Stream(net, inputs, schedule, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Err != b[i].Err {
			t.Fatalf("round %d: runs diverged (%v vs %v)", i, a[i].Err, b[i].Err)
		}
	}
}

func TestStreamUnknownModel(t *testing.T) {
	net := testNet(23, []int{4})
	schedule := []FailureEvent{{Round: 0, Neuron: fault.NeuronFault{Layer: 1, Index: 0}, Model: "gremlin"}}
	_, err := Stream(net, [][]float64{{0.5, 0.5}}, schedule, 1)
	if err == nil || !strings.Contains(err.Error(), "gremlin") {
		t.Fatalf("expected unknown-model error, got %v", err)
	}
	if !strings.Contains(err.Error(), "crash") {
		t.Fatalf("error should list registered names, got %v", err)
	}
}

// TestStreamEventParamsOverride checks that per-event Params are
// honoured: a stuck-at event with an explicit value behaves as that
// value, not the capacity default.
func TestStreamEventParamsOverride(t *testing.T) {
	net := testNet(29, []int{4})
	nf := fault.NeuronFault{Layer: 1, Index: 2}
	x := [][]float64{{0.3, 0.6}}
	run := func(v float64) float64 {
		schedule := []FailureEvent{{
			Round:  0,
			Neuron: nf,
			Model:  "stuck",
			Params: &fault.Params{Value: v},
		}}
		res, err := Stream(net, x, schedule, 1)
		if err != nil {
			t.Fatal(err)
		}
		return res[0].Err
	}
	// Stuck at the clean output = no error; stuck elsewhere = error.
	clean := net.ForwardTrace(x[0]).Outputs[0][nf.Index]
	if e := run(clean); e > 1e-12 {
		t.Fatalf("stuck at the clean output should be error-free, got %v", e)
	}
	if e := run(clean + 0.4); e < 1e-6 {
		t.Fatalf("stuck off the clean output should show error, got %v", e)
	}
}

// TestDegradationPointModels checks the forecast agrees with the
// certificates the stream actually emits.
func TestDegradationPointModels(t *testing.T) {
	net := testNet(31, []int{6, 6})
	s := core.ShapeOf(net)
	var schedule []FailureEvent
	models := []string{"crash", "stuck", "signflip", "byzantine", "noise", "intermittent"}
	idx := 0
	for round := 0; round < 12; round += 2 {
		schedule = append(schedule, FailureEvent{
			Round:  round,
			Neuron: fault.NeuronFault{Layer: idx%2 + 1, Index: idx},
			Model:  models[idx%len(models)],
		})
		idx++
	}
	epsPrime := 0.05
	eps := epsPrime + 1.5*core.CrashFep(s, []int{1, 0})
	dp, err := DegradationPoint(net, 12, schedule, 1, eps, epsPrime)
	if err != nil {
		t.Fatal(err)
	}
	if dp < 0 {
		t.Skip("schedule stays certified for this topology; nothing to cross-check")
	}
	// Recompute the certificate at dp-1 and dp directly.
	resolved, err := resolveSchedule(net, schedule, 1)
	if err != nil {
		t.Fatal(err)
	}
	budget := eps - epsPrime
	if dp > 0 {
		if got := core.DeviationFep(s, deviationsAt(resolved, dp-1, net.Layers())); got > budget {
			t.Fatalf("round %d already over budget (%v > %v) but forecast says %d", dp-1, got, budget, dp)
		}
	}
	if got := core.DeviationFep(s, deviationsAt(resolved, dp, net.Layers())); got <= budget {
		t.Fatalf("round %d within budget (%v <= %v) but forecast says degradation", dp, got, budget)
	}
}

// TestSimulateBoostingCertified checks the virtual-time boosting path
// end to end: certified waits produce outputs within the certificate.
func TestSimulateBoostingCertified(t *testing.T) {
	net := testNet(37, []int{8, 8})
	s := core.ShapeOf(net)
	faults := []int{1, 1}
	epsPrime := 0.05
	eps := epsPrime + core.CrashFep(s, faults)*1.01
	waits, err := CertifiedWaits(net, faults, eps, epsPrime)
	if err != nil {
		t.Fatal(err)
	}
	lat := HeavyTail{Base: 1, TailProb: 0.3, TailScale: 20}
	r := rng.New(41)
	for trial := 0; trial < 5; trial++ {
		x := []float64{r.Float64(), r.Float64()}
		res, err := Simulate(net, x, lat, waits, rng.New(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		if e := math.Abs(res.Output - net.Forward(x)); e > eps-epsPrime+1e-9 {
			t.Fatalf("trial %d: boosted error %v above certified slack %v", trial, e, eps-epsPrime)
		}
	}
}
