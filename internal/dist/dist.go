// Package dist treats the network as a distributed system, as the paper
// does (Section II): neurons are processes, synapses are channels. It
// provides three runtimes:
//
//   - Run — a concurrent goroutine-per-neuron message-passing evaluation
//     with crash and Byzantine processes, used to check that the fault
//     injector's synchronous semantics agree with a genuinely concurrent
//     execution;
//   - Simulate — a virtual-time (discrete-event) evaluation with
//     per-neuron computation latencies, implementing the boosting scheme
//     of Corollary 2: consumers proceed after N_l - f_l signals, treating
//     stragglers as crashed;
//   - Stream — a long-running evaluation over a stream of inputs while
//     failures accumulate on a schedule, emitting the per-round Fep
//     certificate next to the measured error.
package dist

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/fault"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// LatencyModel draws per-neuron computation latencies (virtual time).
type LatencyModel interface {
	Sample(r *rng.Rand) float64
}

// HeavyTail is a two-point straggler model: latency is uniform in
// [Base/2, 3Base/2), and with probability TailProb it is additionally
// multiplied by TailScale — the heavy tail the boosting scheme cuts off.
type HeavyTail struct {
	Base, TailProb, TailScale float64
}

// Sample draws one latency.
func (h HeavyTail) Sample(r *rng.Rand) float64 {
	d := h.Base * (0.5 + r.Float64())
	if r.Bool(h.TailProb) {
		d *= h.TailScale
	}
	return d
}

// BoostResult reports one virtual-time evaluation.
type BoostResult struct {
	// Output is the value the output node computes (with stragglers
	// treated as crashed when waits are in force).
	Output float64
	// FinishTime is the virtual time at which the output is available.
	FinishTime float64
	// Resets counts straggler signals that arrived after their layer was
	// released — the computations the boosting scheme wasted.
	Resets int
}

// CertifiedWaits derives the boosting wait counts of Corollary 2 from a
// crash distribution: if the distribution is tolerated at accuracy eps by
// an epsPrime-approximation, consumers of layer l need await only
// N_l - faults[l-1] signals. It errors if the distribution is not
// tolerated (waiting that aggressively would void the certificate).
func CertifiedWaits(n *nn.Network, faults []int, eps, epsPrime float64) ([]int, error) {
	s := core.ShapeOf(n)
	if len(faults) != s.Layers() {
		return nil, fmt.Errorf("dist: %d fault entries for %d layers", len(faults), s.Layers())
	}
	if !core.CrashTolerates(s, faults, eps, epsPrime) {
		return nil, fmt.Errorf("dist: crash distribution %v not tolerated at eps=%g, eps'=%g (Fep %g)",
			faults, eps, epsPrime, core.CrashFep(s, faults))
	}
	return core.RequiredSignals(s, faults), nil
}

// Simulate runs one evaluation in virtual time: every neuron of layer l
// starts once its layer's inputs are released and finishes after a
// latency drawn from lat. With waits == nil each layer is released only
// when all its neurons have finished; otherwise layer l is released as
// soon as waits[l-1] of its neurons have finished, and the stragglers are
// treated as crashed (Corollary 2's boosting scheme — the error is then
// bounded by the crash Fep of the induced fault distribution).
func Simulate(n *nn.Network, x []float64, lat LatencyModel, waits []int, r *rng.Rand) (BoostResult, error) {
	if err := n.Validate(); err != nil {
		return BoostResult{}, err
	}
	if len(x) != n.InputDim {
		return BoostResult{}, fmt.Errorf("dist: input length %d, want %d", len(x), n.InputDim)
	}
	L := n.Layers()
	if waits != nil {
		if len(waits) != L {
			return BoostResult{}, fmt.Errorf("dist: %d wait entries for %d layers", len(waits), L)
		}
		for l, w := range waits {
			if w < 1 || w > n.Width(l+1) {
				return BoostResult{}, fmt.Errorf("dist: wait %d out of range 1..%d for layer %d", w, n.Width(l+1), l+1)
			}
		}
	}

	sim := des.New()
	resets := 0
	finishTime := math.NaN()
	var dropped []fault.NeuronFault

	// Each layer is scheduled from within its predecessor's release event,
	// so the event queue interleaves stragglers of layer l with the
	// computations of layer l+1 — one coherent virtual timeline.
	var scheduleLayer func(l int)
	scheduleLayer = func(l int) {
		if l > L {
			// The output node computes as soon as its inputs are released.
			sim.Schedule(lat.Sample(r), func() { finishTime = sim.Now() })
			return
		}
		width := n.Width(l)
		need := width
		if waits != nil {
			need = waits[l-1]
		}
		arrived := 0
		for j := 0; j < width; j++ {
			j := j
			sim.Schedule(lat.Sample(r), func() {
				arrived++
				switch {
				case arrived == need:
					scheduleLayer(l + 1)
				case arrived > need:
					// Straggler: its layer was already released, so its
					// signal is discarded — the consumers read it as
					// crashed.
					resets++
					dropped = append(dropped, fault.NeuronFault{Layer: l, Index: j})
				}
			})
		}
	}
	scheduleLayer(1)
	sim.Run()
	out := fault.Forward(n, fault.Plan{Neurons: dropped}, fault.Crash{}, x)
	return BoostResult{Output: out, FinishTime: finishTime, Resets: resets}, nil
}

// ByzStrategy decides what a Byzantine process sends on each outgoing
// channel — unlike the synchronous injector it may equivocate, sending
// different values to different receivers. computed is the value the
// process actually computed from its (possibly already damaged) inputs;
// to is the receiving neuron's index in the next layer (0 for the output
// node).
type ByzStrategy interface {
	Value(f fault.NeuronFault, to int, computed float64) float64
}

// Equivocate is the classic two-faced traitor: it adds +C on channels to
// even-indexed receivers and -C on channels to odd-indexed ones.
type Equivocate struct {
	C float64
}

// Value implements ByzStrategy.
func (e Equivocate) Value(_ fault.NeuronFault, to int, computed float64) float64 {
	if to%2 == 0 {
		return computed + e.C
	}
	return computed - e.C
}

// InjectorStrategy adapts any registry fault model (fault.Injector) to
// the concurrent runtime, letting Run consume models uniformly with the
// synchronous engine. The adapted process does not equivocate — it sends
// the same value on every channel. Note the semantic difference from the
// synchronous injector: the runtime has no clean-execution oracle, so
// the injector receives the value the process COMPUTED from its possibly
// already-damaged inputs, not the fault-free nominal. For nominal-free
// models (crash, stuck, transmission-capped Byzantine) the two coincide
// exactly; for the rest this is the "local" reading of the same model.
type InjectorStrategy struct {
	Inj fault.Injector
}

// Value implements ByzStrategy by delegating to the wrapped injector.
func (s InjectorStrategy) Value(f fault.NeuronFault, _ int, computed float64) float64 {
	return s.Inj.NeuronValue(f, computed)
}

// SynapseDeviation perturbs individual channels: Delta[f] is added to the
// value received over the faulty synapse f. The zero value deviates
// nothing.
type SynapseDeviation struct {
	Delta map[fault.SynapseFault]float64
}

// Result reports one concurrent evaluation.
type Result struct {
	// Output is the value computed by the output-node process.
	Output float64
	// Messages counts channel sends that actually occurred (crashed
	// processes stop sending).
	Messages int
}

// message is one value on a synapse channel. Silent marks a crashed
// sender: the receiver reads the channel as 0 (Definition 2).
type message struct {
	from   int
	value  float64
	silent bool
}

// Run evaluates the network as a concurrent system with one goroutine per
// neuron communicating over channels. Neurons in p.Neurons crash when byz
// is nil and follow byz otherwise; syn perturbs individual channels. The
// result agrees with the synchronous injector semantics (fault.Forward
// with Crash) for crash failures.
func Run(n *nn.Network, p fault.Plan, byz ByzStrategy, syn SynapseDeviation, x []float64) (Result, error) {
	if err := n.Validate(); err != nil {
		return Result{}, err
	}
	if err := p.Validate(n); err != nil {
		return Result{}, err
	}
	if len(x) != n.InputDim {
		return Result{}, fmt.Errorf("dist: input length %d, want %d", len(x), n.InputDim)
	}
	L := n.Layers()
	faulty := make(map[fault.NeuronFault]bool, len(p.Neurons))
	for _, f := range p.Neurons {
		faulty[f] = true
	}

	// inbox[l][j] feeds neuron j of layer l (layer L has index L-1); the
	// final slot is the output node's inbox.
	inbox := make([][]chan message, L)
	for l := 1; l <= L; l++ {
		inbox[l-1] = make([]chan message, n.Width(l))
		for j := range inbox[l-1] {
			inbox[l-1][j] = make(chan message, n.Width(l-1))
		}
	}
	outBox := make(chan message, n.Width(L))
	sent := make(chan int, n.Neurons()+1)

	// send broadcasts a layer-l neuron's emission to all its receivers.
	send := func(l, j int, f fault.NeuronFault, value float64, crashed bool) {
		count := 0
		emit := func(to int, ch chan message) {
			m := message{from: j, value: value, silent: crashed}
			if !crashed && byz != nil && faulty[f] {
				m.value = byz.Value(f, to, value)
			}
			ch <- m
			if !m.silent {
				count++
			}
		}
		if l == L {
			emit(0, outBox)
		} else {
			for to, ch := range inbox[l] {
				emit(to, ch)
			}
		}
		sent <- count
	}

	for l := 1; l <= L; l++ {
		m := n.Hidden[l-1]
		for j := 0; j < m.Rows; j++ {
			l, j, m := l, j, m
			go func() {
				var vec []float64
				if l == 1 {
					vec = x
				} else {
					// Drain this neuron's own inbox (inbox[l-1] feeds
					// layer l); reading the previous layer's inbox here
					// deadlocked every network with more than one
					// hidden layer.
					vec = receive(n.Width(l-1), inbox[l-1][j])
				}
				s := tensor.Dot(m.Row(j), vec)
				if n.Biases != nil && n.Biases[l-1] != nil {
					s += n.Biases[l-1][j]
				}
				s += syn.deltaInto(l, j)
				y := n.Act.Eval(s)
				f := fault.NeuronFault{Layer: l, Index: j}
				crashed := byz == nil && faulty[f]
				send(l, j, f, y, crashed)
			}()
		}
	}

	vec := receive(n.Width(L), outBox)
	out := tensor.Dot(n.Output, vec) + n.OutputBias + syn.deltaInto(L+1, 0)
	messages := 0
	for i := 0; i < n.Neurons(); i++ {
		messages += <-sent
	}
	return Result{Output: out, Messages: messages}, nil
}

// receive collects one message per upstream neuron from ch; silent
// channels read as 0 (Definition 2).
func receive(fromWidth int, ch chan message) []float64 {
	vec := make([]float64, fromWidth)
	for i := 0; i < fromWidth; i++ {
		m := <-ch
		if !m.silent {
			vec[m.from] = m.value
		}
	}
	return vec
}

// deltaInto sums the channel deviations landing on the receiving sum of
// neuron to in layer l (l = L+1 addresses the output node).
func (s SynapseDeviation) deltaInto(l, to int) float64 {
	d := 0.0
	for f, v := range s.Delta {
		if f.Layer == l && f.To == to {
			d += v
		}
	}
	return d
}

// FailureEvent is one entry of a failure schedule: starting at Round,
// the given neuron is faulty. The failure behaviour is selected by
// Model, a fault-model registry name ("crash", "stuck", "noise", ...);
// an empty Model falls back to the legacy pair — crash by default,
// Byzantine-extreme (bounded by the stream's capacity) when Byzantine is
// set. Params optionally overrides the model parameters for this event;
// when nil, Stream derives defaults from its capacity argument.
type FailureEvent struct {
	Round     int
	Neuron    fault.NeuronFault
	Byzantine bool
	Model     string
	Params    *fault.Params
}

// modelName resolves the event's registry key.
func (ev FailureEvent) modelName() string {
	if ev.Model != "" {
		return ev.Model
	}
	if ev.Byzantine {
		return "byzantine"
	}
	return "crash"
}

// StreamResult reports one round of a failure stream.
type StreamResult struct {
	// Round is the 0-based round index; Faulty the number of failures
	// active during it.
	Round, Faulty int
	// Err is the measured |Fneu - Ffail| on the round's input; Certified
	// is the closed-form mixed Fep certificate for the active
	// distribution. Err <= Certified always (Theorem 2).
	Err, Certified float64
}

// eventParams derives the model parameters for one event: the event's
// explicit Params when present, otherwise stream defaults anchored on
// the capacity (deviation semantics, stuck value and noise amplitude at
// the capacity, coin-flip intermittence, 8-bit sign flips).
func eventParams(ev FailureEvent, n *nn.Network, capacity float64) fault.Params {
	if ev.Params != nil {
		return *ev.Params
	}
	return fault.Params{
		C:     capacity,
		Sem:   core.DeviationCap,
		Value: capacity,
		Prob:  0.5,
		Bits:  8,
		Bit:   7,
		Net:   n,
	}
}

// resolvedEvent is one schedule entry bound to its model: the injector
// that realises it and the worst-case deviation cap that certifies it.
type resolvedEvent struct {
	ev  FailureEvent
	inj fault.Injector
	dev float64
}

// resolveSchedule instantiates every event's fault model once (events
// persist across rounds, so stochastic models keep one stream each,
// split deterministically from the stream seed).
func resolveSchedule(n *nn.Network, schedule []FailureEvent, capacity float64) ([]resolvedEvent, error) {
	s := core.ShapeOf(n)
	r := rng.New(0x57ea8d)
	out := make([]resolvedEvent, 0, len(schedule))
	for i, ev := range schedule {
		name := ev.modelName()
		m, ok := fault.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("dist: event %d: unknown fault model %q (registered: %v)", i, name, fault.ModelNames())
		}
		p := eventParams(ev, n, capacity)
		if !m.Deterministic && p.R == nil {
			p.R = r.Split()
		}
		inj, err := m.New(p)
		if err != nil {
			return nil, fmt.Errorf("dist: event %d (%s): %w", i, name, err)
		}
		out = append(out, resolvedEvent{ev: ev, inj: inj, dev: m.NeuronDeviation(p, s)})
	}
	return out, nil
}

// Stream processes one input per round while the schedule's failures
// accumulate, measuring each round's error and emitting the matching
// closed-form certificate (core.DeviationFep over the active models'
// deviation caps — heterogeneous schedules mixing crash, stuck, noisy
// and Byzantine neurons are certified by the one recursion). capacity
// parameterises the default models: Byzantine/noise deviations, stuck
// values (crash failures ignore it).
func Stream(n *nn.Network, inputs [][]float64, schedule []FailureEvent, capacity float64) ([]StreamResult, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	s := core.ShapeOf(n)
	L := n.Layers()
	sorted := append([]FailureEvent(nil), schedule...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Round < sorted[j].Round })
	resolved, err := resolveSchedule(n, sorted, capacity)
	if err != nil {
		return nil, err
	}
	results := make([]StreamResult, 0, len(inputs))
	for round, x := range inputs {
		var plan fault.Plan
		inj := fault.Dispatch{Neurons: map[fault.NeuronFault]fault.Injector{}}
		for _, re := range resolved {
			if re.ev.Round > round {
				continue
			}
			plan.Neurons = append(plan.Neurons, re.ev.Neuron)
			inj.Neurons[re.ev.Neuron] = re.inj
		}
		if err := plan.Validate(n); err != nil {
			return nil, fmt.Errorf("dist: round %d: %w", round, err)
		}
		results = append(results, StreamResult{
			Round:     round,
			Faulty:    len(plan.Neurons),
			Err:       fault.ErrorOn(n, plan, inj, x),
			Certified: core.DeviationFep(s, deviationsAt(resolved, round, L)),
		})
	}
	return results, nil
}

// deviationsAt collects the per-layer deviation caps of the events
// active at the given round.
func deviationsAt(resolved []resolvedEvent, round, L int) [][]float64 {
	devs := make([][]float64, L)
	for _, re := range resolved {
		if re.ev.Round > round {
			continue
		}
		devs[re.ev.Neuron.Layer-1] = append(devs[re.ev.Neuron.Layer-1], re.dev)
	}
	return devs
}

// DegradationPoint forecasts, without running anything, the first round
// at which the schedule's accumulated failures are no longer tolerated at
// accuracy eps by an epsPrime-approximation (-1 if the whole horizon
// stays certified) — the operator-side use of the O(L) bound. Like
// Stream, it reads each event's fault model from the registry, and like
// Stream it errors on schedules naming unknown models (a configuration
// mistake must not read as round-0 degradation).
func DegradationPoint(n *nn.Network, rounds int, schedule []FailureEvent, c, eps, epsPrime float64) (int, error) {
	s := core.ShapeOf(n)
	L := n.Layers()
	resolved, err := resolveSchedule(n, schedule, c)
	if err != nil {
		return 0, err
	}
	if eps < epsPrime {
		return 0, nil
	}
	for round := 0; round < rounds; round++ {
		if core.DeviationFep(s, deviationsAt(resolved, round, L)) > eps-epsPrime {
			return round, nil
		}
	}
	return -1, nil
}
