package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seed diverged at draw %d", i)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds agree on %d/100 draws", same)
	}
}

func TestStreamIndependence(t *testing.T) {
	a := NewStream(7, 1)
	b := NewStream(7, 2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different ids agree on %d/100 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	child := parent.Split()
	// Parent continues; child's draws should not replicate parent's.
	same := 0
	for i := 0; i < 200; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split child mirrors parent on %d/200 draws", same)
	}
}

func TestSplitDeterminism(t *testing.T) {
	c1 := New(5).Split()
	c2 := New(5).Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(17)
	for n := 1; n <= 20; n++ {
		seen := make(map[int]bool)
		for i := 0; i < 200*n; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
			seen[v] = true
		}
		if len(seen) != n {
			t.Fatalf("Intn(%d) only produced %d distinct values", n, len(seen))
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(23)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(31)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(37)
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%50) + 1
		k := int(kRaw) % (n + 1)
		s := r.Sample(n, k)
		if len(s) != k {
			return false
		}
		seen := make(map[int]bool)
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleCoverage(t *testing.T) {
	// Every element must be reachable by sampling.
	r := New(41)
	counts := make([]int, 10)
	for i := 0; i < 2000; i++ {
		for _, v := range r.Sample(10, 3) {
			counts[v]++
		}
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("element %d never sampled", i)
		}
	}
}

func TestRange(t *testing.T) {
	r := New(43)
	for i := 0; i < 1000; i++ {
		v := r.Range(-2, 3)
		if v < -2 || v >= 3 {
			t.Fatalf("Range(-2,3) = %v out of bounds", v)
		}
	}
}

func TestFloats(t *testing.T) {
	r := New(47)
	buf := make([]float64, 100)
	r.Floats(buf, 1, 2)
	for _, v := range buf {
		if v < 1 || v >= 2 {
			t.Fatalf("Floats produced %v outside [1,2)", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(53)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) empirical probability %v", p)
	}
}

func TestUniformBits(t *testing.T) {
	// Each of the 64 bit positions should be set roughly half the time.
	r := New(59)
	const n = 20000
	var counts [64]int
	for i := 0; i < n; i++ {
		v := r.Uint64()
		for b := 0; b < 64; b++ {
			if v&(1<<uint(b)) != 0 {
				counts[b]++
			}
		}
	}
	for b, c := range counts {
		p := float64(c) / n
		if p < 0.45 || p > 0.55 {
			t.Fatalf("bit %d set with probability %v", b, p)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.NormFloat64()
	}
	_ = sink
}

func TestWattsStrogatz(t *testing.T) {
	// beta = 0 is exactly the ring lattice.
	lat := New(1).WattsStrogatz(10, 4, 0)
	if len(lat) != 10*4/2 {
		t.Fatalf("lattice has %d edges, want %d", len(lat), 20)
	}
	wantLat := map[[2]int]bool{}
	for i := 0; i < 10; i++ {
		for j := 1; j <= 2; j++ {
			a, b := i, (i+j)%10
			if a > b {
				a, b = b, a
			}
			wantLat[[2]int{a, b}] = true
		}
	}
	for _, e := range lat {
		if !wantLat[e] {
			t.Fatalf("beta=0 produced non-lattice edge %v", e)
		}
	}
	// Any beta: edge count preserved, no self-loops, no duplicates,
	// endpoints normalised, deterministic for a fixed seed.
	for _, beta := range []float64{0.1, 0.5, 1} {
		es := New(7).WattsStrogatz(30, 6, beta)
		if len(es) != 30*6/2 {
			t.Fatalf("beta=%v: %d edges, want %d", beta, len(es), 90)
		}
		seen := map[[2]int]bool{}
		for _, e := range es {
			if e[0] >= e[1] {
				t.Fatalf("beta=%v: unnormalised or self-loop edge %v", beta, e)
			}
			if e[0] < 0 || e[1] >= 30 {
				t.Fatalf("beta=%v: endpoint out of range %v", beta, e)
			}
			if seen[e] {
				t.Fatalf("beta=%v: duplicate edge %v", beta, e)
			}
			seen[e] = true
		}
		again := New(7).WattsStrogatz(30, 6, beta)
		for i := range es {
			if es[i] != again[i] {
				t.Fatalf("beta=%v: not deterministic at edge %d", beta, i)
			}
		}
	}
	// beta = 1 should actually move edges off the lattice.
	moved := 0
	for _, e := range New(3).WattsStrogatz(50, 4, 1) {
		d := e[1] - e[0]
		if d != 1 && d != 2 && d != 48 && d != 49 {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("beta=1 rewired nothing")
	}
	// Malformed parameters panic.
	for _, fn := range []func(){
		func() { New(1).WattsStrogatz(2, 2, 0) },
		func() { New(1).WattsStrogatz(10, 3, 0) },
		func() { New(1).WattsStrogatz(10, 10, 0) },
		func() { New(1).WattsStrogatz(10, 4, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("malformed WattsStrogatz parameters did not panic")
				}
			}()
			fn()
		}()
	}
}
