// Package rng provides a deterministic, splittable pseudo-random number
// generator for reproducible parallel experiments.
//
// The generator is PCG-XSL-RR 128/64 (O'Neill, 2014) implemented with
// 64-bit limbs from math/bits. Unlike math/rand's global source, every
// stream is an explicit value, two streams with different increments are
// statistically independent, and Split derives child streams whose
// sequences do not overlap with the parent. All experiment and test code
// in this repository draws randomness exclusively through this package so
// that any run is reproducible from a single root seed.
package rng

import (
	"math"
	"math/bits"
)

// mulHi128 multiplier for the PCG 128-bit LCG step
// (0x2360ed051fc65da44385df649fccf645).
const (
	mulHi = 0x2360ed051fc65da4
	mulLo = 0x4385df649fccf645
)

// Rand is a deterministic PCG-XSL-RR 128/64 stream. The zero value is not
// valid; construct streams with New or Split.
type Rand struct {
	stateHi, stateLo uint64
	incHi, incLo     uint64 // odd; selects the stream
	haveGauss        bool
	gauss            float64
}

// New returns a stream seeded from seed on the default stream sequence.
func New(seed uint64) *Rand {
	return NewStream(seed, 0xda3e39cb94b95bdb)
}

// NewStream returns a stream seeded from seed on the sequence selected by
// stream. Different stream values yield independent sequences.
func NewStream(seed, stream uint64) *Rand {
	r := &Rand{}
	// The increment must be odd. Spread the stream id over both limbs.
	r.incHi = stream
	r.incLo = stream<<1 | 1
	// Standard PCG seeding: advance once, add seed, advance again.
	r.stateHi, r.stateLo = 0, 0
	r.step()
	r.stateLo, r.stateHi = add128(r.stateHi, r.stateLo, 0, seed)
	r.step()
	return r
}

// add128 returns (hi,lo) + (bhi,blo) as lo, hi (note the return order is
// lo, hi to keep carry handling local).
func add128(hi, lo, bhi, blo uint64) (uint64, uint64) {
	sumLo, carry := bits.Add64(lo, blo, 0)
	sumHi, _ := bits.Add64(hi, bhi, carry)
	return sumLo, sumHi
}

// step advances the 128-bit LCG state.
func (r *Rand) step() {
	// state = state*mul + inc (128-bit).
	hi, lo := bits.Mul64(r.stateLo, mulLo)
	hi += r.stateHi*mulLo + r.stateLo*mulHi
	lo, carry := bits.Add64(lo, r.incLo, 0)
	hi, _ = bits.Add64(hi, r.incHi, carry)
	r.stateHi, r.stateLo = hi, lo
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	r.step()
	// XSL-RR output: xor-shift-low then random rotate.
	x := r.stateHi ^ r.stateLo
	rot := uint(r.stateHi >> 58)
	return bits.RotateLeft64(x, -int(rot))
}

// Split derives a child stream whose sequence is independent from the
// remainder of the parent's. The parent remains usable.
func (r *Rand) Split() *Rand {
	seed := r.Uint64()
	stream := r.Uint64()
	return NewStream(seed, stream)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Range returns a uniform float64 in [lo, hi).
func (r *Rand) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	v := r.Uint64()
	hi, lo := bits.Mul64(v, uint64(n))
	if lo < uint64(n) {
		threshold := -uint64(n) % uint64(n)
		for lo < threshold {
			v = r.Uint64()
			hi, lo = bits.Mul64(v, uint64(n))
		}
	}
	return int(hi)
}

// Int63 returns a non-negative int64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (Box-Muller with caching).
func (r *Rand) NormFloat64() float64 {
	if r.haveGauss {
		r.haveGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.haveGauss = true
	return u * f
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle randomises the order of n elements using swap (Fisher-Yates).
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns k distinct indices drawn uniformly from [0, n) in
// selection order. It panics if k > n or k < 0.
func (r *Rand) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Sample with k out of range")
	}
	// Partial Fisher-Yates over an index array.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
		out[i] = idx[i]
	}
	return out
}

// Floats fills dst with uniform values in [lo, hi).
func (r *Rand) Floats(dst []float64, lo, hi float64) {
	for i := range dst {
		dst[i] = r.Range(lo, hi)
	}
}

// WattsStrogatz generates the classic small-world graph on n ring
// nodes (Watts & Strogatz 1998): start from a ring lattice where every
// node connects to its k nearest neighbours (k even, k/2 per side),
// then rewire each lattice edge (i, i+j mod n) with probability beta —
// keeping endpoint i, redrawing the other endpoint uniformly while
// rejecting self-loops and duplicate edges. Edges are undirected and
// returned once each as [2]int{lo, hi}; the edge count n·k/2 is
// preserved exactly. beta = 0 returns the pure lattice, beta = 1 an
// Erdős–Rényi-like random graph with the lattice's edge budget.
//
// This is the reference topology generator the paper-style robustness
// sweeps contrast with layered stacks; graph.NewSmallWorld applies the
// same rewiring idea to DAG levels, where edges must stay acyclic.
func (r *Rand) WattsStrogatz(n, k int, beta float64) [][2]int {
	if n < 3 {
		panic("rng: WattsStrogatz needs n >= 3")
	}
	if k < 2 || k%2 != 0 || k >= n {
		panic("rng: WattsStrogatz needs even k with 2 <= k < n")
	}
	if beta < 0 || beta > 1 || beta != beta {
		panic("rng: WattsStrogatz beta outside [0, 1]")
	}
	norm := func(a, b int) [2]int {
		if a < b {
			return [2]int{a, b}
		}
		return [2]int{b, a}
	}
	have := make(map[[2]int]bool, n*k/2)
	edges := make([][2]int, 0, n*k/2)
	for i := 0; i < n; i++ {
		for j := 1; j <= k/2; j++ {
			have[norm(i, (i+j)%n)] = true
		}
	}
	for i := 0; i < n; i++ {
		for j := 1; j <= k/2; j++ {
			e := norm(i, (i+j)%n)
			if beta > 0 && r.Float64() < beta {
				// Redraw the far endpoint; keep the lattice edge if no
				// legal target exists after a bounded number of tries
				// (possible only in near-complete graphs).
				for try := 0; try < 2*n; try++ {
					m := r.Intn(n)
					cand := norm(i, m)
					if m == i || have[cand] {
						continue
					}
					delete(have, e)
					have[cand] = true
					e = cand
					break
				}
			}
			edges = append(edges, e)
		}
	}
	return edges
}
