// Package activation implements the squashing functions of the paper's
// computation model (Section II-A). Every function carries its Lipschitz
// constant K — the quantity the Forward Error Propagation bound depends on
// — together with its range, so that the bound code can query sup|ϕ|
// (which replaces the capacity C in the crash case) directly from the
// function rather than assuming sigmoid.
//
// The paper tunes K by composing: sigmoid is 1/4-Lipschitz, so
// x ↦ sigmoid(4Kx) is K-Lipschitz (Figure 2). Sigmoid(K) implements
// exactly that family.
package activation

import (
	"fmt"
	"math"
)

// Func is a neural activation (squashing) function with known analytic
// properties.
type Func interface {
	// Eval returns ϕ(x).
	Eval(x float64) float64
	// Deriv returns ϕ'(x); used by backpropagation.
	Deriv(x float64) float64
	// Lipschitz returns the (smallest) Lipschitz constant K of ϕ.
	Lipschitz() float64
	// Min and Max bound the range of ϕ. MaxAbs of the range bounds the
	// value a crashed neuron stops contributing (C in the crash case of
	// Theorem 3 is max(|Min|, |Max|)).
	Min() float64
	Max() float64
	// Name identifies the function in tables and serialised networks.
	Name() string
}

// RangeAbs returns sup_x |ϕ(x)|, the effective per-neuron output cap used
// for crash failures (Section IV-B: "C can be replaced by the maximum of
// the activation function").
func RangeAbs(f Func) float64 {
	return math.Max(math.Abs(f.Min()), math.Abs(f.Max()))
}

// Sigmoid is the K-tuned logistic function ϕ(x) = 1/(1+exp(-4Kx)).
// It is K-Lipschitz, strictly increasing, with range (0, 1), and satisfies
// the hypotheses of the universality theorem for every K > 0.
type Sigmoid struct {
	K float64
}

// NewSigmoid returns the K-tuned sigmoid; K must be positive.
func NewSigmoid(k float64) Sigmoid {
	if k <= 0 {
		panic("activation: sigmoid requires K > 0")
	}
	return Sigmoid{K: k}
}

// StandardSigmoid is the untuned logistic function (K = 1/4).
func StandardSigmoid() Sigmoid { return Sigmoid{K: 0.25} }

func (s Sigmoid) Eval(x float64) float64 {
	return 1 / (1 + math.Exp(-4*s.K*x))
}

func (s Sigmoid) Deriv(x float64) float64 {
	y := s.Eval(x)
	return 4 * s.K * y * (1 - y)
}

func (s Sigmoid) Lipschitz() float64 { return s.K }
func (s Sigmoid) Min() float64       { return 0 }
func (s Sigmoid) Max() float64       { return 1 }
func (s Sigmoid) Name() string       { return fmt.Sprintf("sigmoid(K=%g)", s.K) }

// Tanh is the K-tuned hyperbolic tangent ϕ(x) = tanh(Kx), K-Lipschitz with
// range (-1, 1).
type Tanh struct {
	K float64
}

// NewTanh returns the K-tuned tanh; K must be positive.
func NewTanh(k float64) Tanh {
	if k <= 0 {
		panic("activation: tanh requires K > 0")
	}
	return Tanh{K: k}
}

func (t Tanh) Eval(x float64) float64 { return math.Tanh(t.K * x) }

func (t Tanh) Deriv(x float64) float64 {
	y := math.Tanh(t.K * x)
	return t.K * (1 - y*y)
}

func (t Tanh) Lipschitz() float64 { return t.K }
func (t Tanh) Min() float64       { return -1 }
func (t Tanh) Max() float64       { return 1 }
func (t Tanh) Name() string       { return fmt.Sprintf("tanh(K=%g)", t.K) }

// HardSigmoid is the piecewise-linear saturating ramp
// ϕ(x) = clamp(Kx + 1/2, 0, 1). It is exactly K-Lipschitz and attains its
// bounds, which makes the tightness experiments sharp: the equality cases
// of Theorem 2 require activations to reach sup ϕ, which smooth sigmoids
// only approach asymptotically.
type HardSigmoid struct {
	K float64
}

// NewHardSigmoid returns the ramp with slope K; K must be positive.
func NewHardSigmoid(k float64) HardSigmoid {
	if k <= 0 {
		panic("activation: hard sigmoid requires K > 0")
	}
	return HardSigmoid{K: k}
}

func (h HardSigmoid) Eval(x float64) float64 {
	y := h.K*x + 0.5
	if y < 0 {
		return 0
	}
	if y > 1 {
		return 1
	}
	return y
}

func (h HardSigmoid) Deriv(x float64) float64 {
	y := h.K*x + 0.5
	if y <= 0 || y >= 1 {
		return 0
	}
	return h.K
}

func (h HardSigmoid) Lipschitz() float64 { return h.K }
func (h HardSigmoid) Min() float64       { return 0 }
func (h HardSigmoid) Max() float64       { return 1 }
func (h HardSigmoid) Name() string       { return fmt.Sprintf("hardsigmoid(K=%g)", h.K) }

// ReLU is the rectifier max(0, x). It is 1-Lipschitz but unbounded above;
// it violates the boundedness hypothesis of the universality theorem and
// of the crash-case substitution C = sup ϕ, so bound code must treat
// ReLU networks through explicit activation caps. It is provided because
// the trade-off discussion (Section V-C) is often asked about for modern
// rectifier networks.
type ReLU struct{}

func (ReLU) Eval(x float64) float64 {
	if x < 0 {
		return 0
	}
	return x
}

func (ReLU) Deriv(x float64) float64 {
	if x < 0 {
		return 0
	}
	return 1
}

func (ReLU) Lipschitz() float64 { return 1 }
func (ReLU) Min() float64       { return 0 }
func (ReLU) Max() float64       { return math.Inf(1) }
func (ReLU) Name() string       { return "relu" }

// Identity is ϕ(x) = x, used for linear layers in tests.
type Identity struct{}

func (Identity) Eval(x float64) float64  { return x }
func (Identity) Deriv(x float64) float64 { return 1 }
func (Identity) Lipschitz() float64      { return 1 }
func (Identity) Min() float64            { return math.Inf(-1) }
func (Identity) Max() float64            { return math.Inf(1) }
func (Identity) Name() string            { return "identity" }

// Eval applies f to every element of src, writing into dst (which may
// alias src). It panics if lengths differ. The known concrete functions
// are special-cased so the hot loop runs without an interface dispatch
// per element; each fast path performs the exact arithmetic of the
// corresponding Eval method, so results are bit-identical.
func Eval(f Func, dst, src []float64) {
	if len(dst) != len(src) {
		panic("activation: Eval length mismatch")
	}
	dst = dst[:len(src)]
	switch g := f.(type) {
	case Sigmoid:
		k := -4 * g.K
		for i, v := range src {
			dst[i] = 1 / (1 + math.Exp(k*v))
		}
	case Tanh:
		for i, v := range src {
			dst[i] = math.Tanh(g.K * v)
		}
	case HardSigmoid:
		for i, v := range src {
			y := g.K*v + 0.5
			if y < 0 {
				y = 0
			} else if y > 1 {
				y = 1
			}
			dst[i] = y
		}
	case ReLU:
		for i, v := range src {
			if v < 0 {
				v = 0
			}
			dst[i] = v
		}
	case Identity:
		copy(dst, src)
	default:
		for i, v := range src {
			dst[i] = f.Eval(v)
		}
	}
}

// FromName reconstructs an activation from its serialised name.
func FromName(name string) (Func, error) {
	var k float64
	switch {
	case name == "relu":
		return ReLU{}, nil
	case name == "identity":
		return Identity{}, nil
	case scanK(name, "sigmoid(K=%g)", &k):
		return NewSigmoid(k), nil
	case scanK(name, "tanh(K=%g)", &k):
		return NewTanh(k), nil
	case scanK(name, "hardsigmoid(K=%g)", &k):
		return NewHardSigmoid(k), nil
	}
	return nil, fmt.Errorf("activation: unknown function %q", name)
}

func scanK(name, format string, k *float64) bool {
	n, err := fmt.Sscanf(name, format, k)
	return err == nil && n == 1 && *k > 0
}
