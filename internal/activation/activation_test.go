package activation

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

var allFuncs = []Func{
	StandardSigmoid(),
	NewSigmoid(1),
	NewSigmoid(4),
	NewTanh(1),
	NewTanh(0.5),
	NewHardSigmoid(1),
	NewHardSigmoid(2.5),
	ReLU{},
	Identity{},
}

func TestRangeRespected(t *testing.T) {
	r := rng.New(1)
	for _, f := range allFuncs {
		for i := 0; i < 2000; i++ {
			x := r.Range(-50, 50)
			y := f.Eval(x)
			if y < f.Min()-1e-12 || y > f.Max()+1e-12 {
				t.Fatalf("%s: ϕ(%v)=%v outside [%v,%v]", f.Name(), x, y, f.Min(), f.Max())
			}
		}
	}
}

func TestEmpiricalLipschitzWithinK(t *testing.T) {
	// |ϕ(x)-ϕ(y)| <= K|x-y| on random pairs — the property all bounds
	// rest on.
	r := rng.New(2)
	for _, f := range allFuncs {
		k := f.Lipschitz()
		for i := 0; i < 5000; i++ {
			x := r.Range(-10, 10)
			y := r.Range(-10, 10)
			lhs := math.Abs(f.Eval(x) - f.Eval(y))
			rhs := k*math.Abs(x-y) + 1e-12
			if lhs > rhs {
				t.Fatalf("%s: |ϕ(%v)-ϕ(%v)|=%v > K|x-y|=%v", f.Name(), x, y, lhs, rhs)
			}
		}
	}
}

func TestLipschitzIsAttainedNearZero(t *testing.T) {
	// The slope at 0 equals K for the sigmoid family — K is the
	// *smallest* Lipschitz constant, so it should be nearly achieved.
	for _, f := range []Func{NewSigmoid(0.25), NewSigmoid(1), NewSigmoid(3), NewTanh(2), NewHardSigmoid(1.5)} {
		h := 1e-6
		slope := (f.Eval(h) - f.Eval(-h)) / (2 * h)
		if math.Abs(slope-f.Lipschitz()) > 1e-4*f.Lipschitz() {
			t.Fatalf("%s: slope at 0 is %v, want K=%v", f.Name(), slope, f.Lipschitz())
		}
	}
}

func TestDerivMatchesFiniteDifference(t *testing.T) {
	r := rng.New(3)
	for _, f := range allFuncs {
		for i := 0; i < 500; i++ {
			x := r.Range(-4, 4)
			// Skip kink points of piecewise functions.
			if math.Abs(x) < 1e-3 {
				continue
			}
			if h, ok := f.(HardSigmoid); ok {
				// Skip near the ramp corners.
				if math.Abs(h.K*x+0.5) < 1e-3 || math.Abs(h.K*x-0.5) < 1e-3 {
					continue
				}
			}
			const h = 1e-6
			fd := (f.Eval(x+h) - f.Eval(x-h)) / (2 * h)
			if math.Abs(fd-f.Deriv(x)) > 1e-4*(math.Abs(fd)+1) {
				t.Fatalf("%s: Deriv(%v)=%v, finite diff %v", f.Name(), x, f.Deriv(x), fd)
			}
		}
	}
}

func TestSigmoidMonotone(t *testing.T) {
	s := NewSigmoid(2)
	// Strictly increasing in the numerically unsaturated region, and
	// never decreasing anywhere.
	prev := math.Inf(-1)
	for x := -2.0; x <= 2; x += 0.01 {
		y := s.Eval(x)
		if y <= prev {
			t.Fatalf("sigmoid not strictly increasing at %v", x)
		}
		prev = y
	}
	prev = math.Inf(-1)
	for x := -50.0; x <= 50; x += 0.25 {
		y := s.Eval(x)
		if y < prev {
			t.Fatalf("sigmoid decreasing at %v", x)
		}
		prev = y
	}
}

func TestSigmoidLimits(t *testing.T) {
	s := NewSigmoid(1)
	if s.Eval(-100) > 1e-10 || s.Eval(100) < 1-1e-10 {
		t.Fatal("sigmoid limits wrong")
	}
	if math.Abs(s.Eval(0)-0.5) > 1e-15 {
		t.Fatal("sigmoid(0) != 1/2")
	}
}

func TestStandardSigmoidIsQuarterLipschitz(t *testing.T) {
	s := StandardSigmoid()
	if s.Lipschitz() != 0.25 {
		t.Fatalf("standard sigmoid K = %v, want 1/4", s.Lipschitz())
	}
	// 1/(1+e^{-x}) at x=1: standard logistic.
	want := 1 / (1 + math.Exp(-1))
	if math.Abs(s.Eval(1)-want) > 1e-15 {
		t.Fatalf("standard sigmoid(1) = %v, want %v", s.Eval(1), want)
	}
}

func TestKTuningSharpensDiscrimination(t *testing.T) {
	// Figure 2: larger K means a steeper profile.
	x := 0.2
	prev := 0.0
	for _, k := range []float64{0.25, 0.5, 1, 2, 4} {
		y := NewSigmoid(k).Eval(x)
		if y <= prev {
			t.Fatalf("sigmoid(K=%v)(%v)=%v not steeper than previous %v", k, x, y, prev)
		}
		prev = y
	}
}

func TestRangeAbs(t *testing.T) {
	if RangeAbs(NewSigmoid(1)) != 1 {
		t.Fatal("sigmoid RangeAbs != 1")
	}
	if RangeAbs(NewTanh(1)) != 1 {
		t.Fatal("tanh RangeAbs != 1")
	}
	if !math.IsInf(RangeAbs(ReLU{}), 1) {
		t.Fatal("ReLU RangeAbs should be +Inf")
	}
}

func TestEvalVector(t *testing.T) {
	src := []float64{-1, 0, 1}
	dst := make([]float64, 3)
	Eval(NewHardSigmoid(1), dst, src)
	want := []float64{0, 0.5, 1}
	for i := range want {
		if math.Abs(dst[i]-want[i]) > 1e-15 {
			t.Fatalf("Eval = %v, want %v", dst, want)
		}
	}
}

func TestEvalAliasing(t *testing.T) {
	x := []float64{-5, 5}
	Eval(NewHardSigmoid(1), x, x)
	if x[0] != 0 || x[1] != 1 {
		t.Fatalf("in-place Eval = %v", x)
	}
}

func TestFromNameRoundTrip(t *testing.T) {
	for _, f := range allFuncs {
		got, err := FromName(f.Name())
		if err != nil {
			t.Fatalf("FromName(%q): %v", f.Name(), err)
		}
		if got.Name() != f.Name() {
			t.Fatalf("round trip %q -> %q", f.Name(), got.Name())
		}
		if got.Lipschitz() != f.Lipschitz() {
			t.Fatalf("%q: K changed in round trip", f.Name())
		}
	}
}

func TestFromNameUnknown(t *testing.T) {
	if _, err := FromName("swish"); err == nil {
		t.Fatal("expected error for unknown activation")
	}
}

func TestInvalidKPanics(t *testing.T) {
	for _, mk := range []func(){
		func() { NewSigmoid(0) },
		func() { NewSigmoid(-1) },
		func() { NewTanh(0) },
		func() { NewHardSigmoid(-2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("constructor accepted non-positive K")
				}
			}()
			mk()
		}()
	}
}

func TestTanhOddSymmetryProperty(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		th := NewTanh(1.7)
		return math.Abs(th.Eval(x)+th.Eval(-x)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSigmoidComplementSymmetryProperty(t *testing.T) {
	// ϕ(x) + ϕ(-x) = 1 for the logistic family.
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		s := NewSigmoid(0.8)
		return math.Abs(s.Eval(x)+s.Eval(-x)-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
