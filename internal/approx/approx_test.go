package approx

import (
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/rng"
)

func TestAllTargetsMapIntoUnitInterval(t *testing.T) {
	r := rng.New(1)
	for _, target := range Standard() {
		for i := 0; i < 3000; i++ {
			x := make([]float64, target.Dim())
			r.Floats(x, 0, 1)
			y := target.Eval(x)
			if y < 0 || y > 1 || math.IsNaN(y) {
				t.Fatalf("%s(%v) = %v outside [0,1]", target.Name(), x, y)
			}
		}
	}
}

func TestTargetDimsAndNames(t *testing.T) {
	seen := map[string]bool{}
	for _, target := range Standard() {
		if target.Dim() < 1 {
			t.Fatalf("%s has dimension %d", target.Name(), target.Dim())
		}
		if target.Name() == "" {
			t.Fatal("target with empty name")
		}
		if seen[target.Name()] {
			t.Fatalf("duplicate target name %s", target.Name())
		}
		seen[target.Name()] = true
	}
}

func TestSine1DValues(t *testing.T) {
	s := Sine1D(1)
	if math.Abs(s.Eval([]float64{0})-0.5) > 1e-12 {
		t.Fatal("sine at 0 should be 1/2")
	}
	if math.Abs(s.Eval([]float64{0.25})-1) > 1e-12 {
		t.Fatal("sine at quarter period should be 1")
	}
	if math.Abs(s.Eval([]float64{0.75})-0) > 1e-12 {
		t.Fatal("sine at three-quarter period should be 0")
	}
}

func TestXORLikeCorners(t *testing.T) {
	x := XORLike()
	cases := map[[2]float64]float64{
		{0, 0}: 0,
		{1, 1}: 0,
		{0, 1}: 1,
		{1, 0}: 1,
	}
	for in, want := range cases {
		if got := x.Eval(in[:]); math.Abs(got-want) > 1e-12 {
			t.Fatalf("XOR(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestBumpPeaksAtCentre(t *testing.T) {
	b := Bump(2, 0.5, 0.2)
	centre := b.Eval([]float64{0.5, 0.5})
	if math.Abs(centre-1) > 1e-12 {
		t.Fatalf("bump centre = %v, want 1", centre)
	}
	off := b.Eval([]float64{0.9, 0.1})
	if off >= centre {
		t.Fatal("bump should decay away from centre")
	}
}

func TestSmoothStepMonotone(t *testing.T) {
	s := SmoothStep(10)
	prev := -1.0
	for x := 0.0; x <= 1; x += 0.01 {
		y := s.Eval([]float64{x})
		if y < prev {
			t.Fatalf("smoothstep decreasing at %v", x)
		}
		prev = y
	}
	if s.Eval([]float64{0.5}) != 0.5 {
		t.Fatal("smoothstep midpoint should be 1/2")
	}
}

func TestRidgeDimension(t *testing.T) {
	r := Ridge([]float64{0.2, 0.3, 0.5})
	if r.Dim() != 3 {
		t.Fatal("ridge dimension wrong")
	}
	if v := r.Eval([]float64{0, 0, 0}); math.Abs(v-0.5) > 1e-12 {
		t.Fatalf("ridge at origin = %v, want 0.5", v)
	}
}

func TestControlSurfaceSmoothness(t *testing.T) {
	// Finite-difference Lipschitz probe: the control surface must be
	// modestly smooth (no jumps), as befits a physical response map.
	cs := ControlSurface()
	r := rng.New(2)
	for i := 0; i < 2000; i++ {
		x := make([]float64, 3)
		r.Floats(x, 0, 1)
		y := append([]float64(nil), x...)
		j := r.Intn(3)
		const h = 1e-4
		if y[j]+h > 1 {
			continue
		}
		y[j] += h
		slope := math.Abs(cs.Eval(y)-cs.Eval(x)) / h
		if slope > 10 {
			t.Fatalf("control surface slope %v too steep at %v", slope, x)
		}
	}
}

func TestNewWrapsClosure(t *testing.T) {
	target := New("custom", 2, func(x []float64) float64 { return x[0] * x[1] })
	if target.Name() != "custom" || target.Dim() != 2 {
		t.Fatal("New metadata wrong")
	}
	if target.Eval([]float64{0.5, 0.5}) != 0.25 {
		t.Fatal("New eval wrong")
	}
}

func TestMSEAgainstKnownValue(t *testing.T) {
	target := New("const0", 1, func([]float64) float64 { return 0 })
	// Network approximated by another constant: reuse SupDistance/MSE
	// machinery through a trivial wrapper target comparison: build the
	// points and compute by hand.
	pts := metrics.Grid(1, 11)
	// MSE of f=0 against g=0.3 is 0.09.
	g := New("const3", 1, func([]float64) float64 { return 0.3 })
	s := 0.0
	for _, x := range pts {
		d := target.Eval(x) - g.Eval(x)
		s += d * d
	}
	if math.Abs(s/float64(len(pts))-0.09) > 1e-12 {
		t.Fatal("hand MSE wrong — test harness broken")
	}
}
