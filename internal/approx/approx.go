// Package approx supplies the approximation-theory side of the paper's
// setup: a library of continuous target functions F in
// A = C([0,1]^d, [0,1]) (Definition 1), empirical sup-norm distances for
// measuring the ε' an over-provisioned network attains, and a probe for
// the minimal width Nmin(ε) whose Θ(1/ε) behaviour (Barron) underlies the
// over-provisioning discussion of Section II-C.
package approx

import (
	"fmt"
	"math"

	"repro/internal/metrics"
	"repro/internal/nn"
)

// Target is a continuous function from [0,1]^d to [0,1].
type Target interface {
	Eval(x []float64) float64
	Dim() int
	Name() string
}

// funcTarget adapts a closure.
type funcTarget struct {
	f    func([]float64) float64
	dim  int
	name string
}

func (t funcTarget) Eval(x []float64) float64 { return t.f(x) }
func (t funcTarget) Dim() int                 { return t.dim }
func (t funcTarget) Name() string             { return t.name }

// New wraps a closure as a Target.
func New(name string, dim int, f func([]float64) float64) Target {
	return funcTarget{f: f, dim: dim, name: name}
}

// clamp01 keeps numerical compositions inside the codomain.
func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Sine1D is (1 + sin(2π·cycles·x)) / 2 — the classic smooth benchmark.
func Sine1D(cycles float64) Target {
	return New(fmt.Sprintf("sine1d(cycles=%g)", cycles), 1, func(x []float64) float64 {
		return (1 + math.Sin(2*math.Pi*cycles*x[0])) / 2
	})
}

// Bump is a Gaussian bump centred at c with width sigma, in any dimension.
func Bump(dim int, c, sigma float64) Target {
	return New(fmt.Sprintf("bump%dd(c=%g,s=%g)", dim, c, sigma), dim, func(x []float64) float64 {
		d2 := 0.0
		for _, v := range x {
			d2 += (v - c) * (v - c)
		}
		return math.Exp(-d2 / (2 * sigma * sigma))
	})
}

// SmoothStep is the logistic step 1/(1+exp(-sharpness(x-1/2))) in 1-D: a
// discrimination task whose difficulty grows with sharpness (the K
// trade-off of Section V-C in target form).
func SmoothStep(sharpness float64) Target {
	return New(fmt.Sprintf("smoothstep(s=%g)", sharpness), 1, func(x []float64) float64 {
		return 1 / (1 + math.Exp(-sharpness*(x[0]-0.5)))
	})
}

// Ridge is (1 + sin(π Σ a_i x_i)) / 2, a ridge function — the functional
// family for which Barron's Θ(1/ε) approximation rates are sharp.
func Ridge(a []float64) Target {
	coeffs := append([]float64(nil), a...)
	return New(fmt.Sprintf("ridge(d=%d)", len(coeffs)), len(coeffs), func(x []float64) float64 {
		s := 0.0
		for i, v := range x {
			s += coeffs[i] * v
		}
		return (1 + math.Sin(math.Pi*s)) / 2
	})
}

// XORLike is the smooth exclusive-or surface x(1-y) + y(1-x) on [0,1]^2 —
// the function whose inapproximability by single perceptrons triggered
// the first AI winter (Section I).
func XORLike() Target {
	return New("xorlike", 2, func(x []float64) float64 {
		return x[0]*(1-x[1]) + x[1]*(1-x[0])
	})
}

// Franke2D is the standard Franke surface rescaled into [0,1]: a mix of
// four Gaussian modes used widely as a 2-D regression benchmark.
func Franke2D() Target {
	return New("franke2d", 2, func(p []float64) float64 {
		x, y := p[0], p[1]
		f := 0.75*math.Exp(-((9*x-2)*(9*x-2)+(9*y-2)*(9*y-2))/4) +
			0.75*math.Exp(-((9*x+1)*(9*x+1))/49-((9*y+1)*(9*y+1))/10) +
			0.5*math.Exp(-((9*x-7)*(9*x-7)+(9*y-3)*(9*y-3))/4) -
			0.2*math.Exp(-((9*x-4)*(9*x-4)+(9*y-7)*(9*y-7)))
		return clamp01(f)
	})
}

// ControlSurface is a smooth 3-input flight-control-like response map
// (angle of attack, airspeed, elevator command -> normalised actuator
// output) used by the critical-application examples the paper motivates.
func ControlSurface() Target {
	return New("controlsurface", 3, func(p []float64) float64 {
		aoa, speed, cmd := p[0], p[1], p[2]
		raw := 0.4*math.Sin(math.Pi*aoa)*(0.5+0.5*speed) +
			0.3*cmd*cmd +
			0.3/(1+math.Exp(-6*(cmd-aoa)))
		return clamp01(raw)
	})
}

// Standard returns the named standard targets used across experiments.
func Standard() []Target {
	return []Target{
		Sine1D(1),
		Sine1D(2),
		SmoothStep(8),
		Bump(1, 0.5, 0.15),
		XORLike(),
		Franke2D(),
		Ridge([]float64{0.7, 0.3}),
		ControlSurface(),
	}
}

// SupDistance measures the empirical sup-norm distance between a target
// and a network over the given points: the ε' of Definition 1 (up to
// sampling density).
func SupDistance(target Target, net *nn.Network, points [][]float64) float64 {
	return metrics.SupDistance(target.Eval, net.Forward, points)
}

// MSE returns the mean squared error of the network against the target
// over the points.
func MSE(target Target, net *nn.Network, points [][]float64) float64 {
	if len(points) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range points {
		d := target.Eval(x) - net.Forward(x)
		s += d * d
	}
	return s / float64(len(points))
}
