package approx

import (
	"math"
	"testing"

	"repro/internal/metrics"
)

func TestStaircaseApproximates(t *testing.T) {
	target := Sine1D(1)
	pts := metrics.Grid(1, 401)
	prev := math.Inf(1)
	for _, n := range []int{8, 16, 32, 64} {
		net, err := Staircase(target, n, 12*float64(n))
		if err != nil {
			t.Fatal(err)
		}
		sup := SupDistance(target, net, pts)
		if sup >= prev {
			t.Fatalf("n=%d: ε' %v did not improve on %v", n, sup, prev)
		}
		prev = sup
	}
	if prev > 0.06 {
		t.Fatalf("64-neuron staircase ε' = %v too coarse", prev)
	}
}

func TestStaircaseEpsilonScalesInverseN(t *testing.T) {
	target := Sine1D(1)
	pts := metrics.Grid(1, 801)
	var ns, sups []float64
	for _, n := range []int{8, 16, 32, 64, 128} {
		net, err := Staircase(target, n, 12*float64(n))
		if err != nil {
			t.Fatal(err)
		}
		ns = append(ns, float64(n))
		sups = append(sups, SupDistance(target, net, pts))
	}
	slope := metrics.LogLogSlope(ns, sups)
	// Barron-style 1/n decay: slope close to -1.
	if slope > -0.7 || slope < -1.3 {
		t.Fatalf("ε'(n) log-log slope %v, want about -1", slope)
	}
}

func TestStaircaseOutputWeightsShrink(t *testing.T) {
	target := Sine1D(1)
	for _, n := range []int{8, 32, 128} {
		net, err := Staircase(target, n, 10*float64(n))
		if err != nil {
			t.Fatal(err)
		}
		wm := net.MaxWeight(2)
		// Increments of a Lipschitz target: at most Lip/n = π/n.
		bound := math.Pi / float64(n)
		if wm > bound*1.01 {
			t.Fatalf("n=%d: w_m %v exceeds Lip/n %v", n, wm, bound)
		}
		if wm != StaircaseMaxIncrement(target, n) {
			t.Fatalf("n=%d: MaxWeight(2) %v != StaircaseMaxIncrement %v", n, wm, StaircaseMaxIncrement(target, n))
		}
	}
}

func TestStaircaseToleranceGrowsWithWidth(t *testing.T) {
	// The Corollary 1 payoff: at fixed ε, wider constructions tolerate
	// more crashes because both ε' and w_m shrink.
	target := Sine1D(1)
	pts := metrics.Grid(1, 401)
	eps := 0.3
	prev := -1
	for _, n := range []int{8, 16, 32, 64} {
		net, err := Staircase(target, n, 12*float64(n))
		if err != nil {
			t.Fatal(err)
		}
		epsPrime := SupDistance(target, net, pts)
		tol := int((eps - epsPrime) / net.MaxWeight(2))
		if tol < prev {
			t.Fatalf("n=%d: tolerance %d fell below %d", n, tol, prev)
		}
		prev = tol
	}
	if prev < 4 {
		t.Fatalf("64-neuron staircase tolerates only %d crashes at ε=0.3", prev)
	}
}

func TestStaircaseValidation(t *testing.T) {
	if _, err := Staircase(XORLike(), 8, 50); err == nil {
		t.Fatal("2-D target accepted")
	}
	if _, err := Staircase(Sine1D(1), 1, 50); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := Staircase(Sine1D(1), 8, 0); err == nil {
		t.Fatal("zero steepness accepted")
	}
}
