package approx

import (
	"fmt"

	"repro/internal/activation"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Staircase builds a single-layer neural approximation of a 1-D target
// constructively, in the style of the universality theorem's proof: the
// j-th hidden neuron is a steep sigmoid step centred at x_j = j/n, and
// its output weight is the target increment F(x_j) - F(x_{j-1}). The
// network computes a smooth staircase through n+1 samples of F.
//
// The construction is the concrete face of the over-provisioning
// discussion (Section II-C) and of Corollary 1:
//
//   - accuracy: the sup error ε'(n) decays like Lip(F)/n plus the step
//     smoothing, so more neurons mean a finer approximation (Barron's
//     Θ(1/ε) in its simplest form);
//   - robustness: every output weight is an increment of size about
//     Lip(F)/n, so w_m shrinks as 1/n and Theorem 1's tolerated crash
//     count (ε-ε')/w_m GROWS roughly linearly with n — over-provisioning
//     converted into certified fault tolerance with no training at all.
//
// steep controls how hard each step saturates (larger = sharper staircase
// but the activation's Lipschitz constant grows proportionally).
func Staircase(target Target, n int, steep float64) (*nn.Network, error) {
	if target.Dim() != 1 {
		return nil, fmt.Errorf("approx: Staircase needs a 1-D target, got %dd", target.Dim())
	}
	if n < 2 {
		return nil, fmt.Errorf("approx: Staircase needs n >= 2 neurons, got %d", n)
	}
	if steep <= 0 {
		return nil, fmt.Errorf("approx: Staircase needs steep > 0")
	}
	hidden := tensor.NewMatrix(n, 1)
	bias := make([]float64, n)
	out := make([]float64, n)
	prev := target.Eval([]float64{0})
	for j := 0; j < n; j++ {
		// Neuron j: ϕ(steep·(x - x_j)) with ϕ the K-tuned sigmoid of
		// unit K; the slope comes from the incoming weight, keeping the
		// activation itself 1-Lipschitz.
		xj := (float64(j) + 0.5) / float64(n)
		hidden.Set(j, 0, steep)
		bias[j] = -steep * xj
		cur := target.Eval([]float64{float64(j+1) / float64(n)})
		out[j] = cur - prev
		prev = cur
	}
	net := &nn.Network{
		InputDim:   1,
		Act:        activation.NewSigmoid(1),
		Hidden:     []*tensor.Matrix{hidden},
		Biases:     [][]float64{bias},
		Output:     out,
		OutputBias: target.Eval([]float64{0}),
	}
	return net, net.Validate()
}

// StaircaseMaxIncrement returns the largest |F(x_j) - F(x_{j-1})| of the
// construction — the w_m^{(2)} Theorem 1 sees — without building the
// network.
func StaircaseMaxIncrement(target Target, n int) float64 {
	prev := target.Eval([]float64{0})
	m := 0.0
	for j := 1; j <= n; j++ {
		cur := target.Eval([]float64{float64(j) / float64(n)})
		d := cur - prev
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
		prev = cur
	}
	return m
}
