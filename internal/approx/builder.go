package approx

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/nn"
)

// BuildRobust is Corollary 1 as a constructor: given a 1-D target, a
// required accuracy eps and a crash budget faults (number of crashed
// neurons to mask), it searches for the narrowest staircase construction
// whose measured ε' and output weights certify the budget via Theorem 1,
// and returns the network with its certificate. The search doubles the
// width until feasible (the corollary guarantees feasibility for any
// eps' < eps), up to maxWidth.
func BuildRobust(target Target, faults int, eps float64, maxWidth int) (*nn.Network, Certificate, error) {
	if target.Dim() != 1 {
		return nil, Certificate{}, fmt.Errorf("approx: BuildRobust needs a 1-D target")
	}
	if faults < 0 || eps <= 0 {
		return nil, Certificate{}, fmt.Errorf("approx: BuildRobust needs faults >= 0 and eps > 0")
	}
	if maxWidth < 2 {
		maxWidth = 2
	}
	pts := metrics.Grid(1, 401)
	for n := 4; n <= maxWidth; n *= 2 {
		net, err := Staircase(target, n, 12*float64(n))
		if err != nil {
			return nil, Certificate{}, err
		}
		cert := Certify(target, net, eps, pts)
		if cert.MaxCrashes >= faults {
			return net, cert, nil
		}
	}
	return nil, Certificate{}, fmt.Errorf("approx: no construction up to width %d certifies %d crashes at eps=%v", maxWidth, faults, eps)
}

// Certificate records the robustness guarantee of a single-layer
// approximation (Theorem 1).
type Certificate struct {
	// EpsPrime is the measured sup-norm accuracy of the clean network.
	EpsPrime float64
	// Eps is the accuracy the certificate preserves under crashes.
	Eps float64
	// WM is the maximal output weight w_m^{(2)}.
	WM float64
	// MaxCrashes is floor((Eps-EpsPrime)/WM), the certified tolerance.
	MaxCrashes int
	// Width is N, the number of hidden neurons.
	Width int
}

// Certify measures a single-layer network against the target and wraps
// Theorem 1 into a Certificate. Networks with more than one layer are
// rejected (use core.CrashTolerates for the multilayer condition).
func Certify(target Target, net *nn.Network, eps float64, pts [][]float64) Certificate {
	if net.Layers() != 1 {
		panic("approx: Certify expects a single hidden layer")
	}
	epsPrime := SupDistance(target, net, pts)
	wm := net.MaxWeight(2)
	return Certificate{
		EpsPrime:   epsPrime,
		Eps:        eps,
		WM:         wm,
		MaxCrashes: core.Theorem1MaxCrashes(eps, epsPrime, wm),
		Width:      net.Width(1),
	}
}

// NminProbe estimates Nmin(eps) — the smallest staircase width achieving
// sup error <= eps on the target — by doubling then bisecting. It is the
// empirical counterpart of the paper's Section II-C discussion: with
// Barron's Θ(1/ε), the returned width grows linearly in 1/eps.
func NminProbe(target Target, eps float64, maxWidth int) (int, error) {
	if target.Dim() != 1 {
		return 0, fmt.Errorf("approx: NminProbe needs a 1-D target")
	}
	if eps <= 0 {
		return 0, fmt.Errorf("approx: NminProbe needs eps > 0")
	}
	pts := metrics.Grid(1, 401)
	achieves := func(n int) bool {
		net, err := Staircase(target, n, 12*float64(n))
		if err != nil {
			return false
		}
		return SupDistance(target, net, pts) <= eps
	}
	hi := 4
	for !achieves(hi) {
		hi *= 2
		if hi > maxWidth {
			return 0, fmt.Errorf("approx: eps=%v not reached within width %d", eps, maxWidth)
		}
	}
	lo := hi / 2
	if lo < 2 {
		lo = 2
	}
	// Bisect for the frontier (achieves is monotone in n for the
	// staircase family up to smoothing noise; bisection returns a valid,
	// near-minimal width either way).
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if achieves(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}
