package approx

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/metrics"
)

func TestBuildRobustDeliversCertifiedNetwork(t *testing.T) {
	target := Sine1D(1)
	net, cert, err := BuildRobust(target, 3, 0.3, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if cert.MaxCrashes < 3 {
		t.Fatalf("certificate %d below requested 3", cert.MaxCrashes)
	}
	// Validate the certificate empirically: kill cert.MaxCrashes heaviest
	// neurons, sup error against the target must stay within eps.
	pts := metrics.Grid(1, 401)
	plan := fault.AdversarialNeuronPlan(net, []int{cert.MaxCrashes})
	worst := metrics.SupDistance(target.Eval, func(x []float64) float64 {
		return fault.Forward(net, plan, fault.Crash{}, x)
	}, pts)
	if worst > cert.Eps {
		t.Fatalf("certified network broke eps: %v > %v", worst, cert.Eps)
	}
}

func TestBuildRobustMoreFaultsNeedWiderNets(t *testing.T) {
	target := Sine1D(1)
	_, certSmall, err := BuildRobust(target, 1, 0.3, 1024)
	if err != nil {
		t.Fatal(err)
	}
	_, certBig, err := BuildRobust(target, 8, 0.3, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if certBig.Width <= certSmall.Width {
		t.Fatalf("8-fault construction (width %d) not wider than 1-fault (width %d)", certBig.Width, certSmall.Width)
	}
}

func TestBuildRobustRejectsImpossible(t *testing.T) {
	if _, _, err := BuildRobust(Sine1D(1), 1000, 0.05, 64); err == nil {
		t.Fatal("expected failure for tiny width limit")
	}
	if _, _, err := BuildRobust(XORLike(), 1, 0.3, 64); err == nil {
		t.Fatal("expected rejection of 2-D target")
	}
	if _, _, err := BuildRobust(Sine1D(1), -1, 0.3, 64); err == nil {
		t.Fatal("expected rejection of negative faults")
	}
}

func TestCertifyPanicsOnMultilayer(t *testing.T) {
	target := Sine1D(1)
	net, _ := Staircase(target, 8, 100)
	// Fake a 2-layer network by stacking the same layer.
	two := net.Clone()
	two.Hidden = append(two.Hidden, two.Hidden[0].Clone())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Certify(target, two, 0.3, metrics.Grid(1, 11))
}

func TestNminProbeInverseEps(t *testing.T) {
	target := Sine1D(1)
	var prev int
	var ns []float64
	var invEps []float64
	for _, eps := range []float64{0.2, 0.1, 0.05, 0.025} {
		n, err := NminProbe(target, eps, 1<<14)
		if err != nil {
			t.Fatal(err)
		}
		if n < prev {
			t.Fatalf("Nmin(%v) = %d decreased below %d", eps, n, prev)
		}
		prev = n
		ns = append(ns, float64(n))
		invEps = append(invEps, 1/eps)
	}
	// Θ(1/ε): Nmin should grow roughly linearly in 1/ε — log-log slope
	// near 1.
	slope := metrics.LogLogSlope(invEps, ns)
	if slope < 0.6 || slope > 1.5 {
		t.Fatalf("Nmin(1/eps) log-log slope %v, want about 1", slope)
	}
}

func TestNminProbeValidation(t *testing.T) {
	if _, err := NminProbe(XORLike(), 0.1, 64); err == nil {
		t.Fatal("2-D target accepted")
	}
	if _, err := NminProbe(Sine1D(1), 0, 64); err == nil {
		t.Fatal("zero eps accepted")
	}
	if _, err := NminProbe(Sine1D(8), 0.001, 8); err == nil {
		t.Fatal("unreachable eps within width limit accepted")
	}
}
