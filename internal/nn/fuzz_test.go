package nn_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/activation"
	"repro/internal/nn"
	"repro/internal/rng"
)

// FuzzNetworkJSON exercises the dense codec with arbitrary bytes:
// decoding must never panic, an accepted network must pass Validate,
// and the encoding must be a stable fixed point under round trips.
func FuzzNetworkJSON(f *testing.F) {
	r := rng.New(5)
	for _, cfg := range []nn.Config{
		{InputDim: 2, Widths: []int{3, 2}, Act: activation.NewSigmoid(1), Bias: true},
		{InputDim: 1, Widths: []int{1}, Act: activation.NewTanh(2)},
		{InputDim: 4, Widths: []int{5, 4, 3}, Act: activation.NewHardSigmoid(1), Bias: true},
	} {
		if doc, err := json.Marshal(nn.NewRandom(r.Split(), cfg, 0.5)); err == nil {
			f.Add(doc)
		}
	}
	f.Add([]byte(`{"input_dim":-1}`))
	f.Add([]byte(`{"input_dim":1,"activation":"sigmoid(K=1)","layers":[]}`))
	f.Add([]byte(`null`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var n nn.Network
		if err := json.Unmarshal(data, &n); err != nil {
			return
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("codec accepted a network that fails Validate: %v", err)
		}
		doc, err := json.Marshal(&n)
		if err != nil {
			t.Fatalf("accepted network failed to marshal: %v", err)
		}
		var n2 nn.Network
		if err := json.Unmarshal(doc, &n2); err != nil {
			t.Fatalf("re-marshalled network rejected: %v", err)
		}
		doc2, err := json.Marshal(&n2)
		if err != nil {
			t.Fatalf("round-tripped network failed to marshal: %v", err)
		}
		if !bytes.Equal(doc, doc2) {
			t.Fatalf("encoding not stable:\n%s\n%s", doc, doc2)
		}
	})
}
