package nn

import (
	"repro/internal/activation"
	"repro/internal/tensor"
)

// DAGModel widens Model to arbitrary feed-forward DAGs: neurons are
// still grouped into topological levels 1..L (level 0 is the input,
// level L+1 the output node), but a neuron may read from ANY earlier
// level, not just the previous one. Strictly layered models are the
// special case where every SrcLevels(l) is {l-1}.
//
// Addressing convention: because a node's inputs no longer form one
// contiguous previous layer, its in-edges are addressed by ORDINAL —
// the k-th edge in ascending (srcLevel, srcIdx) order, the same order
// the accumulation kernels traverse. Engines evaluating a DAGModel must
// route per-edge reads through InEdge/FanIn (never Weight, whose
// (to, from) addressing is only meaningful for the previous level), and
// fault.SynapseFault.From is that ordinal for DAG models.
type DAGModel interface {
	Model
	// SrcLevels returns the sorted distinct source levels feeding layer
	// l (1 <= l <= L+1). The slice is owned by the model; callers must
	// not mutate it.
	SrcLevels(l int) []int
	// FanIn returns the in-degree of neuron `to` of layer l
	// (1 <= l <= L+1; the output node is l = L+1, to = 0).
	FanIn(l, to int) int
	// InEdge returns the k-th in-edge of neuron `to` of layer l
	// (0 <= k < FanIn(l, to)): the source level and index plus the edge
	// weight, in ascending (srcLevel, srcIdx) order.
	InEdge(l, to, k int) (srcLevel, srcIdx int, w float64)
	// LevelSums computes layer l's pre-activation sums into dst from
	// the outputs of every level: ys[v] holds level v's outputs
	// (ys[0] is the input; only levels in SrcLevels(l) are read). skip
	// follows the LayerSums convention. For a layer whose only source
	// is l-1 the result is bit-identical to LayerSums(l, dst, ys[l-1],
	// skip).
	LevelSums(l int, dst []float64, ys [][]float64, skip []int)
	// OutputSumLevels evaluates the linear output node over every
	// level's outputs (bit-identical to OutputSum(ys[L]) when the
	// output reads only level L).
	OutputSumLevels(ys [][]float64) float64
}

// AsDAG returns m's DAG view when it has one.
func AsDAG(m Model) (DAGModel, bool) {
	dm, ok := m.(DAGModel)
	return dm, ok
}

// IsLayered reports whether m is expressible as a strict layer chain:
// every hidden layer and the output read only the immediately preceding
// level. Non-DAG models are layered by construction.
func IsLayered(m Model) bool {
	dm, ok := m.(DAGModel)
	if !ok {
		return true
	}
	for l := 1; l <= m.NumLayers()+1; l++ {
		src := dm.SrcLevels(l)
		if len(src) > 1 || (len(src) == 1 && src[0] != l-1) {
			return false
		}
	}
	return true
}

// FanInOf returns the in-degree of neuron `to` of layer l for any
// Model: DAG models answer exactly; layered models have full fan-in
// Width(l-1).
func FanInOf(m Model, l, to int) int {
	if dm, ok := m.(DAGModel); ok {
		return dm.FanIn(l, to)
	}
	return m.Width(l - 1)
}

// InEdgeOf returns the k-th in-edge of neuron `to` of layer l for any
// Model: layered models map ordinal k to source (l-1, k).
func InEdgeOf(m Model, l, to, k int) (srcLevel, srcIdx int, w float64) {
	if dm, ok := m.(DAGModel); ok {
		return dm.InEdge(l, to, k)
	}
	return l - 1, k, m.Weight(l, to, k)
}

// ensureLevels sizes sc.levels for L+1 level pointers (grow-only).
func (sc *Scratch) ensureLevels(L int) [][]float64 {
	if cap(sc.levels) < L+1 {
		sc.levels = make([][]float64, L+1)
	}
	sc.levels = sc.levels[:L+1]
	return sc.levels
}

// forwardDAG is ForwardModel's level-scheduled path: every level is
// computed once, in topological order, and stays resident so later
// levels can read it (the graph memory model — O(total widths) live
// state instead of the layered engine's two rolling vectors).
func forwardDAG(m DAGModel, sc *Scratch, x []float64) float64 {
	sc.ensure(m)
	L := m.NumLayers()
	ys := sc.ensureLevels(L)
	ys[0] = x
	for l := 1; l <= L; l++ {
		s := sc.outs[l-1]
		m.LevelSums(l, s, ys, nil)
		activation.Eval(m.Activation(), s, s)
		ys[l] = s
	}
	return m.OutputSumLevels(ys)
}

// traceDAG is TraceModel's level-scheduled path; the returned Trace
// owns its buffers.
func traceDAG(m DAGModel, x []float64) *Trace {
	L := m.NumLayers()
	tr := &Trace{
		Input:   tensor.Clone(x),
		Sums:    make([][]float64, L),
		Outputs: make([][]float64, L),
	}
	ys := make([][]float64, L+1)
	ys[0] = x
	for l := 1; l <= L; l++ {
		s := make([]float64, m.Width(l))
		m.LevelSums(l, s, ys, nil)
		tr.Sums[l-1] = s
		out := make([]float64, len(s))
		activation.Eval(m.Activation(), out, s)
		tr.Outputs[l-1] = out
		ys[l] = out
	}
	tr.Output = m.OutputSumLevels(ys)
	return tr
}
