package nn

// EnsureLayerSlices sizes bufs as per-layer buffers for m: on return
// bufs has exactly NumLayers entries and bufs[l-1] holds lanes*Width(l)
// float64s. Growth is reuse-friendly (backing arrays are kept when
// capacity allows), so steady-state callers allocate nothing. This is
// the one sizing loop behind Scratch, BatchScratch and the compiled
// fault engine's evaluation buffers — a new engine should call it
// instead of adding another copy.
func EnsureLayerSlices(m Model, lanes int, bufs [][]float64) [][]float64 {
	L := m.NumLayers()
	if cap(bufs) < L {
		next := make([][]float64, L)
		copy(next, bufs)
		bufs = next
	}
	bufs = bufs[:L]
	for l := 1; l <= L; l++ {
		bufs[l-1] = grow(bufs[l-1], lanes*m.Width(l))
	}
	return bufs
}
