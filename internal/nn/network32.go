package nn

import (
	"sync"

	"repro/internal/activation"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Network32 is the single-precision inference lane of a Network: the
// same topology with weights, biases and arithmetic in float32 (half
// the memory traffic on the load-port-bound sweeps). Activations are
// evaluated through the shared float64 activation.Func and rounded to
// float32 — one rounding per neuron, covered by the quant.Float32Lane
// error certificate. Nothing here is bit-identical to the float64
// engine by design; quant certifies the gap instead.
type Network32 struct {
	InputDim   int
	Act        activation.Func
	Hidden     []*tensor.Matrix32
	Biases     [][]float32
	Output     []float32
	OutputBias float32
}

// NewNetwork32 rounds n to single precision.
func NewNetwork32(n *Network) *Network32 {
	out := &Network32{
		InputDim:   n.InputDim,
		Act:        n.Act,
		Hidden:     make([]*tensor.Matrix32, len(n.Hidden)),
		Output:     tensor.ToFloat32(n.Output),
		OutputBias: float32(n.OutputBias),
	}
	for l, m := range n.Hidden {
		out.Hidden[l] = tensor.ToMatrix32(m)
	}
	if n.Biases != nil {
		out.Biases = make([][]float32, len(n.Biases))
		for l, b := range n.Biases {
			if b != nil {
				out.Biases[l] = tensor.ToFloat32(b)
			}
		}
	}
	return out
}

// Layers returns L.
func (n *Network32) Layers() int { return len(n.Hidden) }

func (n *Network32) bias(l int) []float32 {
	if n.Biases == nil {
		return nil
	}
	return n.Biases[l]
}

// Scratch32 holds the per-layer float32 buffers of an inference-lane
// forward pass. Not safe for concurrent use; buffers are grow-only.
type Scratch32 struct {
	outs [][]float32
	in   []float32
}

func grow32(buf []float32, want int) []float32 {
	if cap(buf) < want {
		return make([]float32, want)
	}
	return buf[:want]
}

func (sc *Scratch32) ensure(n *Network32) {
	L := n.Layers()
	if cap(sc.outs) < L {
		sc.outs = make([][]float32, L)
	}
	sc.outs = sc.outs[:L]
	for l, m := range n.Hidden {
		sc.outs[l] = grow32(sc.outs[l], m.Rows)
	}
	sc.in = grow32(sc.in, n.InputDim)
}

var scratch32Pool = sync.Pool{New: func() any { return new(Scratch32) }}

// GetScratch32 borrows a pooled Scratch32 sized for n; return it with
// PutScratch32.
func GetScratch32(n *Network32) *Scratch32 {
	sc := scratch32Pool.Get().(*Scratch32)
	sc.ensure(n)
	return sc
}

// PutScratch32 returns a Scratch32 to the pool.
func PutScratch32(sc *Scratch32) { scratch32Pool.Put(sc) }

// ForwardInto evaluates the inference lane on a float32 input using
// sc's buffers: zero steady-state allocations.
func (n *Network32) ForwardInto(sc *Scratch32, x []float32) float32 {
	sc.ensure(n)
	y := x
	for l, m := range n.Hidden {
		s := sc.outs[l]
		m.MulVecAddTo(s, y, n.bias(l))
		for j, v := range s {
			s[j] = float32(n.Act.Eval(float64(v)))
		}
		y = s
	}
	return tensor.Dot32(n.Output, y) + n.OutputBias
}

// Forward evaluates the inference lane on a float64 input (rounded on
// entry) and widens the result — the drop-in signature for callers
// holding float64 data.
func (n *Network32) Forward(x []float64) float64 {
	sc := GetScratch32(n)
	sc.ensure(n)
	xs := sc.in[:0]
	for _, v := range x {
		xs = append(xs, float32(v))
	}
	f := n.ForwardInto(sc, xs)
	PutScratch32(sc)
	return float64(f)
}

// ForwardBatch evaluates many float64 inputs in parallel on pooled
// per-worker scratch.
func (n *Network32) ForwardBatch(xs [][]float64) []float64 {
	out := make([]float64, len(xs))
	parallel.ForChunked(len(xs), 8, func(lo, hi int) {
		sc := GetScratch32(n)
		for i := lo; i < hi; i++ {
			sc.ensure(n)
			x := sc.in[:0]
			for _, v := range xs[i] {
				x = append(x, float32(v))
			}
			out[i] = float64(n.ForwardInto(sc, x))
		}
		PutScratch32(sc)
	})
	return out
}
