package nn

import (
	"testing"

	"repro/internal/activation"
	"repro/internal/rng"
)

func scratchNets(r *rng.Rand) []*Network {
	return []*Network{
		NewRandom(r, Config{InputDim: 3, Widths: []int{8, 6, 4}, Act: activation.NewSigmoid(1)}, 0.7),
		NewRandom(r, Config{InputDim: 2, Widths: []int{5, 5}, Act: activation.NewTanh(0.5), Bias: true}, 0.6),
	}
}

// TestForwardIntoMatchesForward checks bit-for-bit agreement between the
// allocating and scratch-backed forward passes.
func TestForwardIntoMatchesForward(t *testing.T) {
	r := rng.New(7)
	for _, net := range scratchNets(r) {
		sc := NewScratch(net)
		for i := 0; i < 20; i++ {
			x := make([]float64, net.InputDim)
			r.Floats(x, 0, 1)
			if got, want := net.ForwardInto(sc, x), net.Forward(x); got != want {
				t.Fatalf("ForwardInto %v != Forward %v", got, want)
			}
		}
	}
}

// TestForwardTraceIntoMatchesForwardTrace checks every recorded quantity
// bit for bit.
func TestForwardTraceIntoMatchesForwardTrace(t *testing.T) {
	r := rng.New(8)
	for _, net := range scratchNets(r) {
		sc := NewScratch(net)
		x := make([]float64, net.InputDim)
		r.Floats(x, 0, 1)
		got := net.ForwardTraceInto(sc, x)
		want := net.ForwardTrace(x)
		if got.Output != want.Output {
			t.Fatalf("trace output %v != %v", got.Output, want.Output)
		}
		for l := range want.Sums {
			for j := range want.Sums[l] {
				if got.Sums[l][j] != want.Sums[l][j] {
					t.Fatalf("sum (%d,%d) differs", l, j)
				}
				if got.Outputs[l][j] != want.Outputs[l][j] {
					t.Fatalf("output (%d,%d) differs", l, j)
				}
			}
		}
		for i := range want.Input {
			if got.Input[i] != want.Input[i] {
				t.Fatalf("input %d differs", i)
			}
		}
	}
}

// TestForwardIntoZeroAllocs asserts the scratch paths allocate nothing
// in the steady state.
func TestForwardIntoZeroAllocs(t *testing.T) {
	r := rng.New(9)
	net := NewRandom(r, Config{InputDim: 4, Widths: []int{16, 16}, Act: activation.NewSigmoid(1), Bias: true}, 0.5)
	sc := NewScratch(net)
	x := []float64{0.1, 0.9, 0.4, 0.6}
	net.ForwardInto(sc, x)
	if allocs := testing.AllocsPerRun(100, func() { net.ForwardInto(sc, x) }); allocs != 0 {
		t.Errorf("ForwardInto: %v allocs per run, want 0", allocs)
	}
	net.ForwardTraceInto(sc, x)
	if allocs := testing.AllocsPerRun(100, func() { net.ForwardTraceInto(sc, x) }); allocs != 0 {
		t.Errorf("ForwardTraceInto: %v allocs per run, want 0", allocs)
	}
}

// TestForwardBatchGEMMRejectsBadInput pins the dimension check on the
// GEMM path: a wrong-length input must panic like the matvec path does,
// not be silently zero-padded.
func TestForwardBatchGEMMRejectsBadInput(t *testing.T) {
	r := rng.New(12)
	net := NewRandom(r, Config{InputDim: 3, Widths: []int{4}, Act: activation.NewSigmoid(1)}, 0.5)
	xs := make([][]float64, gemmBatchMin+4)
	for i := range xs {
		xs[i] = make([]float64, 3)
	}
	xs[5] = []float64{0.1, 0.2} // too short
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong-length batch input")
		}
	}()
	net.ForwardBatch(xs)
}

// TestForwardBatchPathsMatchForward covers both the pooled small-batch
// path and the GEMM large-batch path, bit for bit.
func TestForwardBatchPathsMatchForward(t *testing.T) {
	r := rng.New(10)
	for _, net := range scratchNets(r) {
		for _, batch := range []int{1, 3, gemmBatchMin - 1, gemmBatchMin, 64} {
			xs := make([][]float64, batch)
			for i := range xs {
				xs[i] = make([]float64, net.InputDim)
				r.Floats(xs[i], 0, 1)
			}
			got := net.ForwardBatch(xs)
			for i, x := range xs {
				if want := net.Forward(x); got[i] != want {
					t.Fatalf("batch %d input %d: %v != %v", batch, i, got[i], want)
				}
			}
		}
	}
}
