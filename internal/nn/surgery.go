package nn

import (
	"fmt"
	"sort"

	"repro/internal/tensor"
)

// RemoveNeurons returns a new network with the given hidden neurons
// physically removed: their rows disappear from their layer's weight
// matrix and the corresponding columns disappear from the next layer's
// (or from the output weights). The result computes exactly what the
// original computes when those neurons crash — the paper's Section I
// observation that maskable neurons "could have been eliminated from the
// design" made executable, and a differential oracle for the crash
// injector.
//
// Every layer must keep at least one neuron. neurons is a map from layer
// (1..L) to the indices to remove within that layer.
func RemoveNeurons(n *Network, neurons map[int][]int) (*Network, error) {
	for layer, idxs := range neurons {
		if layer < 1 || layer > n.Layers() {
			return nil, fmt.Errorf("nn: RemoveNeurons layer %d out of range", layer)
		}
		seen := map[int]bool{}
		for _, i := range idxs {
			if i < 0 || i >= n.Width(layer) {
				return nil, fmt.Errorf("nn: RemoveNeurons index %d out of range for layer %d", i, layer)
			}
			if seen[i] {
				return nil, fmt.Errorf("nn: RemoveNeurons duplicate index %d in layer %d", i, layer)
			}
			seen[i] = true
		}
		if len(idxs) >= n.Width(layer) {
			return nil, fmt.Errorf("nn: RemoveNeurons would empty layer %d", layer)
		}
	}

	out := n.Clone()
	// Process layers in order; removing rows of layer l shifts the
	// column space of layer l+1.
	for layer := 1; layer <= n.Layers(); layer++ {
		idxs := append([]int(nil), neurons[layer]...)
		if len(idxs) == 0 {
			continue
		}
		sort.Ints(idxs)
		keep := keepMask(out.Hidden[layer-1].Rows, idxs)

		// Drop rows from this layer's weights and biases.
		out.Hidden[layer-1] = dropRows(out.Hidden[layer-1], keep)
		if out.Biases != nil && out.Biases[layer-1] != nil {
			out.Biases[layer-1] = dropElems(out.Biases[layer-1], keep)
		}
		// Drop the matching columns downstream.
		if layer == out.Layers() {
			out.Output = dropElems(out.Output, keep)
		} else {
			out.Hidden[layer] = dropCols(out.Hidden[layer], keep)
		}
	}
	return out, out.Validate()
}

// SplitNeurons over-provisions layer l by replacing every neuron with k
// functionally identical copies: each copy keeps the original incoming
// weights (so it computes the same output y) while the outgoing weights
// are divided by k (so the downstream sums are unchanged). The transform
// preserves the computed function EXACTLY — ε' does not move — while
// w_m^{(l+1)} shrinks by the factor k, which multiplies the tolerated
// fault counts of Theorems 1 and 3 accordingly: Corollary 1's
// over-provisioning made mechanical, applicable to any trained network
// without retraining. The price is k times the neurons (and synapses) in
// that layer — exactly the robustness/cost trade the paper discusses.
func SplitNeurons(n *Network, layer, k int) (*Network, error) {
	if layer < 1 || layer > n.Layers() {
		return nil, fmt.Errorf("nn: SplitNeurons layer %d out of range", layer)
	}
	if k < 1 {
		return nil, fmt.Errorf("nn: SplitNeurons factor %d < 1", k)
	}
	out := n.Clone()
	if k == 1 {
		return out, nil
	}
	src := out.Hidden[layer-1]
	width := src.Rows

	// Duplicate incoming rows: copies are interleaved (j-th original
	// becomes copies k*j .. k*j+k-1).
	grown := tensor.NewMatrix(width*k, src.Cols)
	for j := 0; j < width; j++ {
		for c := 0; c < k; c++ {
			copy(grown.Row(j*k+c), src.Row(j))
		}
	}
	out.Hidden[layer-1] = grown
	if out.Biases != nil && out.Biases[layer-1] != nil {
		b := make([]float64, width*k)
		for j, v := range out.Biases[layer-1] {
			for c := 0; c < k; c++ {
				b[j*k+c] = v
			}
		}
		out.Biases[layer-1] = b
	}

	// Downstream weights: each column is split into k columns of w/k.
	if layer == out.Layers() {
		split := make([]float64, width*k)
		for j, w := range out.Output {
			for c := 0; c < k; c++ {
				split[j*k+c] = w / float64(k)
			}
		}
		out.Output = split
	} else {
		next := out.Hidden[layer]
		splitNext := tensor.NewMatrix(next.Rows, width*k)
		for r := 0; r < next.Rows; r++ {
			srcRow := next.Row(r)
			dstRow := splitNext.Row(r)
			for j, w := range srcRow {
				for c := 0; c < k; c++ {
					dstRow[j*k+c] = w / float64(k)
				}
			}
		}
		out.Hidden[layer] = splitNext
	}
	return out, out.Validate()
}

func keepMask(n int, remove []int) []bool {
	keep := make([]bool, n)
	for i := range keep {
		keep[i] = true
	}
	for _, i := range remove {
		keep[i] = false
	}
	return keep
}

func dropRows(m *tensor.Matrix, keep []bool) *tensor.Matrix {
	var rows [][]float64
	for r := 0; r < m.Rows; r++ {
		if keep[r] {
			rows = append(rows, tensor.Clone(m.Row(r)))
		}
	}
	return tensor.FromRows(rows)
}

func dropCols(m *tensor.Matrix, keep []bool) *tensor.Matrix {
	var rows [][]float64
	for r := 0; r < m.Rows; r++ {
		src := m.Row(r)
		row := make([]float64, 0, len(src))
		for c, v := range src {
			if keep[c] {
				row = append(row, v)
			}
		}
		rows = append(rows, row)
	}
	return tensor.FromRows(rows)
}

func dropElems(xs []float64, keep []bool) []float64 {
	out := make([]float64, 0, len(xs))
	for i, v := range xs {
		if keep[i] {
			out = append(out, v)
		}
	}
	return out
}
